package search

import (
	"context"
	"fmt"
	"iter"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Public aliases: the facade speaks the same vocabulary as the core so
// results and policies flow between layers without conversion.
type (
	// NodeID identifies a repository (dense 0-based index).
	NodeID = topology.NodeID
	// Key identifies one content item.
	Key = core.Key
	// Hit is one positive answer: holder, forward-path hops, and the
	// delay until the reply reached the origin.
	Hit = core.Result
	// DelayFunc samples one-way hop delays in seconds.
	DelayFunc = core.DelayFunc
)

// Network is the view of a repository network an Engine searches: the
// neighbor graph plus local content membership. Implementations must be
// safe for concurrent use if the Engine is shared across goroutines —
// static topologies and read-only content trivially are.
type Network interface {
	// Out returns the outgoing neighbors of id; the Engine does not
	// mutate the returned slice.
	Out(id NodeID) []NodeID
	// Online reports whether a node currently participates.
	Online(id NodeID) bool
	// HasContent reports whether node id holds key locally.
	HasContent(id NodeID, key Key) bool
}

// Over combines a topology view and a content oracle into a Network —
// the bridge for applications that keep the two concerns on separate
// types (every simulator in this repository does).
func Over(g core.Graph, c core.Content) Network {
	return composite{g, c}
}

type composite struct {
	core.Graph
	core.Content
}

// OverContent wraps a bare content oracle into a Network whose topology
// half is empty — the natural companion to WithSnapshotStore, where the
// graph comes from the pinned snapshot and the Network's topology
// methods are never consulted.
func OverContent(c core.Content) Network {
	return composite{emptyGraph{}, c}
}

// emptyGraph is the placeholder topology half of OverContent.
type emptyGraph struct{}

func (emptyGraph) Out(NodeID) []NodeID { return nil }
func (emptyGraph) Online(NodeID) bool  { return true }

// Query is one search request. The zero value of every field defers to
// the Engine's configured default, so steady-state callers populate
// only Key and Origin.
type Query struct {
	// ID tags the query in observer callbacks and error messages; the
	// cascade itself keys duplicate suppression on per-call state, so
	// uniqueness is not required for correctness. Stochastic policies,
	// however, derive their per-query rng stream from (ID, Origin, Key)
	// alone — a caller retrying the same query under random-<k> must
	// vary ID to vary the random forwarding decisions (as with
	// Exploration.ID).
	ID uint64
	// Key is the content item requested.
	Key Key
	// Origin is the issuing repository.
	Origin NodeID
	// TTL bounds propagation in hops; 0 uses the Engine default
	// (WithTTL).
	TTL int
	// MaxResults terminates the search at this many results; 0 uses the
	// Engine default, negative means explicitly unlimited.
	MaxResults int
	// ForwardWhenHit makes serving nodes keep propagating; false defers
	// to the Engine default (WithForwardWhenHit).
	ForwardWhenHit bool
	// OnMessage, when non-nil, observes every query propagation of this
	// call, replacing the Engine-wide WithOnMessage observer.
	OnMessage func(from, to NodeID)
	// OnReplyHop, when non-nil, observes every reverse-route reply hop
	// of this call, replacing the Engine-wide WithOnReplyHop observer.
	OnReplyHop func(from, to NodeID)
}

// Result is everything one search produced. It is owned by the caller:
// unlike core.Outcome's pooled buffers, Hits never aliases Engine
// state.
type Result struct {
	// Hits lists every positive answer in arrival order.
	Hits []Hit
	// Messages counts query propagations (including duplicates
	// discarded on arrival); ReplyMessages counts reverse-route reply
	// hops.
	Messages, ReplyMessages uint64
	// Visited is the number of distinct repositories that processed the
	// query (excluding the origin).
	Visited int
	// FirstResultDelay is the smallest hit delay, 0 when no hits.
	FirstResultDelay float64
	// Epoch is the snapshot-store epoch that served the query — the
	// whole cascade ran on this one pinned snapshot, never a mix of two.
	// Zero unless the Engine was built with WithSnapshotStore.
	Epoch uint64
}

// Found reports whether at least one result was obtained.
func (r *Result) Found() bool { return len(r.Hits) > 0 }

// Exploration is a metadata-only census of the TTL-hop neighborhood
// (Algo 2): visited repositories report which of Keys they hold, and
// nothing is fetched.
type Exploration struct {
	// ID distinguishes repeated exploration rounds: stochastic policies
	// derive their per-call stream from (engine seed, Origin, ID), so a
	// periodic census must vary ID (a round counter) or it will probe
	// the same random neighbors every time.
	ID uint64
	// Keys is the set of items to probe for.
	Keys []Key
	// Origin is the initiating repository.
	Origin NodeID
	// TTL bounds propagation; 0 uses the Engine default.
	TTL int
	// OnMessage and OnReplyHop observe this call's traffic (exploration
	// messages are usually metered separately from queries).
	OnMessage  func(from, to NodeID)
	OnReplyHop func(from, to NodeID)
}

// Engine is the concurrency-safe entry point to the cascade core: one
// Engine per searched network, shared by any number of goroutines. All
// configuration is frozen at New; per-call working memory comes from an
// internal sync.Pool of core.Scratch, so a steady-state query costs a
// small constant number of allocations (see BenchmarkEnginePooled).
//
// Concurrency safety extends exactly as far as the injected
// dependencies': the Network, DelayFunc, policy and observers are
// invoked concurrently iff the caller searches concurrently. The
// single-threaded simulators share one Engine with their single loop;
// serving frontends inject immutable views.
type Engine struct {
	template  core.Cascade // copied per call, never mutated after New
	deepening *core.IterativeDeepening

	ttl            int
	maxResults     int
	forwardWhenHit bool
	seed           uint64
	batchWorkers   int
	hint           int
	nodes          int // node count when the graph knows one; 0 = unknown
	store          *topology.SnapshotStore

	// newPolicy, when non-nil, builds a fresh per-query policy from a
	// derived seed (stochastic registry families); otherwise
	// template.Forward is shared by all calls.
	newPolicy func(seed uint64) core.ForwardPolicy

	scratch sync.Pool
}

// config collects option state before validation.
type config struct {
	forward    core.ForwardPolicy
	policyName string
	env        PolicyEnv

	ttl            int
	maxResults     int
	forwardWhenHit bool
	deepening      *core.IterativeDeepening
	delay          DelayFunc
	ledger         func(id NodeID) *stats.Ledger
	index          core.Index
	onMessage      func(from, to NodeID)
	onReplyHop     func(from, to NodeID)
	seed           uint64
	batchWorkers   int
	hint           int
	snapshot       int
	store          *topology.SnapshotStore

	err error
}

// Option configures an Engine at construction.
type Option func(*config)

// WithPolicy selects the forward policy by registry name ("flood",
// "random-2", "directed-bft-3", "digest-guided", or any name added via
// RegisterPolicy). Stochastic families are instantiated per query with
// a deterministic stream derived from WithSeed, so shared-Engine
// results do not depend on goroutine interleaving.
func WithPolicy(name string) Option {
	return func(c *config) { c.policyName = name; c.forward = nil }
}

// WithForward installs a concrete policy instance, bypassing the
// registry — the escape hatch for policies carrying closures or shared
// state (a simulator's RandomK over its own rng stream). The caller
// owns that instance's concurrency story.
func WithForward(p core.ForwardPolicy) Option {
	return func(c *config) { c.forward = p; c.policyName = "" }
}

// WithTTL sets the default hop bound applied to queries that leave
// Query.TTL zero.
func WithTTL(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("search: negative default TTL %d", n))
			return
		}
		c.ttl = n
	}
}

// WithMaxResults sets the default terminating result count for queries
// that leave Query.MaxResults zero.
func WithMaxResults(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("search: negative default MaxResults %d", n))
			return
		}
		c.maxResults = n
	}
}

// WithForwardWhenHit makes serving nodes keep propagating queries by
// default (music-sharing semantics; the paper's dynamic variant stops
// at serving nodes to limit messages).
func WithForwardWhenHit(on bool) Option {
	return func(c *config) { c.forwardWhenHit = on }
}

// WithDeepening replaces single TTL-bound searches with iterative
// deepening: successive cascades at the given strictly-increasing
// depths until the query is satisfied, waiting cycleTimeout simulated
// seconds between cycles. Query/default TTLs are ignored; depths
// govern.
func WithDeepening(depths []int, cycleTimeout float64) Option {
	return func(c *config) {
		if len(depths) == 0 {
			c.fail(fmt.Errorf("search: WithDeepening needs at least one depth"))
			return
		}
		for i, d := range depths {
			if d < 1 || (i > 0 && d <= depths[i-1]) {
				c.fail(fmt.Errorf("search: deepening schedule %v not strictly increasing from 1", depths))
				return
			}
		}
		c.deepening = &core.IterativeDeepening{
			Depths:       append([]int(nil), depths...),
			CycleTimeout: cycleTimeout,
		}
	}
}

// WithDelay installs the per-hop delay model; the default is zero
// delay (hop-count-only searches).
func WithDelay(d DelayFunc) Option {
	return func(c *config) { c.delay = d }
}

// WithLedgers exposes per-node statistics ledgers to history-based
// policies (directed-bft).
func WithLedgers(f func(id NodeID) *stats.Ledger) Option {
	return func(c *config) { c.ledger = f }
}

// WithIndex enables the Local Indices technique: visited nodes answer
// on behalf of peers within the index radius. Callers typically
// shorten the TTL by Index.Radius().
func WithIndex(ix core.Index) Option {
	return func(c *config) { c.index = ix }
}

// WithDigest supplies the digest oracle (and optional fallback policy)
// the "digest-guided" registry family requires.
func WithDigest(mayHold func(id NodeID, key Key) bool, fallback core.ForwardPolicy) Option {
	return func(c *config) { c.env.MayHold = mayHold; c.env.Fallback = fallback }
}

// WithBenefit sets the peer-ranking function for history-based registry
// families; the default is stats.Cumulative (the paper's Σ B/R).
func WithBenefit(b stats.Benefit) Option {
	return func(c *config) { c.env.Benefit = b }
}

// WithOnMessage installs an Engine-wide propagation observer,
// overridden per call by Query.OnMessage.
func WithOnMessage(f func(from, to NodeID)) Option {
	return func(c *config) { c.onMessage = f }
}

// WithOnReplyHop installs an Engine-wide reply-hop observer, overridden
// per call by Query.OnReplyHop.
func WithOnReplyHop(f func(from, to NodeID)) Option {
	return func(c *config) { c.onReplyHop = f }
}

// WithSeed sets the base seed from which per-query streams for
// stochastic policies — and Batch cell seeds — are derived via
// runner.DeriveSeed. The default is 1.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithBatchWorkers bounds Batch's worker group; <= 0 (the default)
// means GOMAXPROCS.
func WithBatchWorkers(n int) Option {
	return func(c *config) { c.batchWorkers = n }
}

// WithScratchHint pre-sizes pooled scratches for networks of n nodes,
// avoiding growth pauses on first cascades. Pass the network size.
func WithScratchHint(n int) Option {
	return func(c *config) { c.hint = n }
}

// WithSnapshot freezes the network's adjacency over nodes [0, n) into
// a read-optimized CSR snapshot (topology.CSR) at construction and
// runs every search on it, engaging the cascade core's devirtualized
// fast path: neighbor lookup becomes two loads from flat arrays and
// the per-arrival liveness call disappears. Queries are ≥2x faster on
// flood-class cascades (BenchmarkCascadeHotPath) with identical
// outcomes.
//
// The snapshot is immutable: topology changes made to the underlying
// Network after New are invisible to the Engine — serve from a
// topology.SnapshotStore (WithSnapshotStore) when the graph must keep
// changing under live queries — and every node is treated as
// permanently online. New returns an
// error if any node is offline at freeze time, because the snapshot
// could not represent it. WithSnapshot also pre-sizes the scratch pool
// for n nodes unless WithScratchHint set a different hint.
//
// Engines whose Network was built with Over over a *topology.CSR get
// the fast path automatically; WithSnapshot is for callers holding
// only a mutable or interface-shaped view.
func WithSnapshot(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.fail(fmt.Errorf("search: WithSnapshot over %d nodes", n))
			return
		}
		c.snapshot = n
	}
}

// WithSnapshotStore serves every search from a live
// topology.SnapshotStore instead of a fixed graph: each call — Do,
// Stream, Batch, Explore and every Saturator query — pins the store's
// current epoch for exactly the duration of its cascade, so a query
// always runs on one internally-consistent CSR snapshot even while the
// store's writer publishes churn epochs concurrently. The pin engages
// the same devirtualized fast path as WithSnapshot; Result.Epoch
// records which epoch served each query.
//
// The Network passed to New supplies only the content oracle
// (HasContent); its topology methods are never consulted — the pinned
// snapshot is the graph. As with WithSnapshot, snapshots treat every
// node as online: liveness churn must be expressed as topology deltas
// (isolate on logoff) applied through the store's writer.
//
// WithSnapshotStore and WithSnapshot are mutually exclusive. Scratch
// pre-sizing defaults to the store's node count.
func WithSnapshotStore(store *topology.SnapshotStore) Option {
	return func(c *config) {
		if store == nil {
			c.fail(fmt.Errorf("search: WithSnapshotStore with nil store"))
			return
		}
		c.store = store
	}
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// New builds an Engine over net. Without options the Engine floods with
// zero delay and the queries' own TTLs; every aspect is overridable:
//
//	eng, err := search.New(net,
//	    search.WithPolicy("directed-bft-3"),
//	    search.WithLedgers(ledgerOf),
//	    search.WithTTL(7))
func New(net Network, opts ...Option) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("search: New with nil Network")
	}
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}

	e := &Engine{
		deepening:      cfg.deepening,
		ttl:            cfg.ttl,
		maxResults:     cfg.maxResults,
		forwardWhenHit: cfg.forwardWhenHit,
		seed:           cfg.seed,
		batchWorkers:   cfg.batchWorkers,
		hint:           cfg.hint,
	}
	graph := graphOf(net)
	if cfg.store != nil {
		if cfg.snapshot > 0 {
			return nil, fmt.Errorf("search: WithSnapshotStore and WithSnapshot are mutually exclusive")
		}
		e.store = cfg.store
		// The template's graph is a placeholder: runWith and Explore
		// replace it with the pinned epoch's snapshot on every call.
		graph = nil
		e.nodes = e.store.Len()
		if e.hint == 0 {
			e.hint = e.nodes
		}
	}
	if cfg.snapshot > 0 {
		n := cfg.snapshot
		for i := 0; i < n; i++ {
			if !net.Online(NodeID(i)) {
				return nil, fmt.Errorf("search: WithSnapshot: node %d is offline; snapshots freeze fully-online networks", i)
			}
		}
		csr, err := topology.FreezeView(n, net.Out)
		if err != nil {
			return nil, fmt.Errorf("search: WithSnapshot: %w", err)
		}
		graph = csr
		if e.hint == 0 {
			e.hint = n
		}
	}
	e.template = core.Cascade{
		Graph:      graph,
		Content:    netContent{net},
		Forward:    core.Flood{},
		Index:      cfg.index,
		Delay:      cfg.delay,
		OnMessage:  cfg.onMessage,
		OnReplyHop: cfg.onReplyHop,
	}
	if cfg.ledger != nil {
		e.template.Ledger = cfg.ledger
	}

	switch {
	case cfg.forward != nil:
		e.template.Forward = cfg.forward
	case cfg.policyName != "":
		spec, k, err := resolvePolicy(cfg.policyName)
		if err != nil {
			return nil, err
		}
		if spec.Stochastic {
			env := cfg.env
			e.newPolicy = func(seed uint64) core.ForwardPolicy {
				env := env
				env.Intn = rng.New(seed).Intn
				p, err := spec.New(k, env)
				if err != nil {
					panic(err) // validated at New below; cannot fail here
				}
				return p
			}
			// Surface missing-dependency errors now, not per query.
			probe := cfg.env
			probe.Intn = func(n int) int { return 0 }
			if _, err := spec.New(k, probe); err != nil {
				return nil, err
			}
		} else {
			p, err := spec.New(k, cfg.env)
			if err != nil {
				return nil, err
			}
			e.template.Forward = p
		}
	}

	// Take the node count from the graph when it knows one (a frozen
	// *topology.CSR does): it pre-sizes pooled scratches and their
	// event queues (no growth pauses on first queries) and
	// bounds-checks query origins up front — flat-array graphs would
	// otherwise panic on an out-of-range origin.
	if sized, ok := graph.(interface{ Len() int }); ok {
		e.nodes = sized.Len()
		if e.hint == 0 {
			e.hint = e.nodes
		}
	}
	hint := e.hint
	e.scratch.New = func() any { return core.NewScratch(hint) }
	return e, nil
}

// graphOf returns the core.Graph view of net. Networks assembled with
// Over keep their original graph half un-wrapped, so a caller passing a
// frozen *topology.CSR (or any concrete graph the core fast-paths)
// reaches the cascade without an interface indirection in between.
func graphOf(net Network) core.Graph {
	if comp, ok := net.(composite); ok {
		return comp.Graph
	}
	return netGraph{net}
}

// netGraph and netContent split a Network back into the core's two
// interfaces without re-wrapping user closures.
type netGraph struct{ n Network }

func (g netGraph) Out(id NodeID) []NodeID { return g.n.Out(id) }
func (g netGraph) Online(id NodeID) bool  { return g.n.Online(id) }

type netContent struct{ n Network }

func (c netContent) HasContent(id NodeID, key Key) bool { return c.n.HasContent(id, key) }

// Store returns the snapshot store the Engine serves from, or nil for
// fixed-graph Engines. Callers publish churn through it; the Engine
// only ever reads.
func (e *Engine) Store() *topology.SnapshotStore { return e.store }

// Policy returns the shared forward policy, or nil when the Engine
// instantiates a stochastic policy per query.
func (e *Engine) Policy() core.ForwardPolicy {
	if e.newPolicy != nil {
		return nil
	}
	return e.template.Forward
}

// querySeed derives the deterministic per-query seed: a pure function
// of the Engine seed and the query's identifying fields, so outcomes
// are independent of call order, goroutine interleaving and Batch
// worker count. Engines with a shared (non-stochastic) policy skip the
// derivation — it would be dead weight on the zero-alloc hot path.
func (e *Engine) querySeed(q *Query) uint64 {
	if e.newPolicy == nil {
		return 0
	}
	return runner.DeriveSeed(e.seed, "query",
		strconv.FormatUint(q.ID, 10),
		strconv.FormatInt(int64(q.Origin), 10),
		strconv.FormatUint(uint64(q.Key), 10))
}

// coreQuery applies Engine defaults and validates.
func (e *Engine) coreQuery(q *Query) (core.Query, error) {
	cq := core.Query{
		ID:             core.QueryID(q.ID),
		Key:            q.Key,
		Origin:         q.Origin,
		TTL:            q.TTL,
		MaxResults:     q.MaxResults,
		ForwardWhenHit: q.ForwardWhenHit || e.forwardWhenHit,
	}
	if cq.TTL == 0 {
		cq.TTL = e.ttl
	}
	switch {
	case cq.MaxResults == 0:
		cq.MaxResults = e.maxResults
	case cq.MaxResults < 0:
		cq.MaxResults = 0 // explicitly unlimited
	}
	if err := cq.Validate(); err != nil {
		return core.Query{}, err
	}
	if e.nodes > 0 && int(cq.Origin) >= e.nodes {
		return core.Query{}, fmt.Errorf("search: query %d origin %d outside the %d-node network", q.ID, q.Origin, e.nodes)
	}
	return cq, nil
}

// run executes one search on a scratch borrowed from the Engine's
// pool. onHit, when non-nil, observes hits as they arrive and stops the
// cascade by returning false. The returned Result is caller-owned.
func (e *Engine) run(ctx context.Context, q *Query, seed uint64, onHit func(Hit) bool) (Result, error) {
	s := e.scratch.Get().(*core.Scratch)
	res, err := e.runWith(ctx, q, seed, s, onHit)
	e.scratch.Put(s)
	return res, err
}

// runWith is run over an explicit Scratch — the pinned-affinity entry
// point Saturator workers use to bypass the pool on the hot path. The
// returned Result never aliases s (hits are copied out), so s is free
// for the next query the moment runWith returns.
func (e *Engine) runWith(ctx context.Context, q *Query, seed uint64, s *core.Scratch, onHit func(Hit) bool) (Result, error) {
	cq, err := e.coreQuery(q)
	if err != nil {
		return Result{}, err
	}

	c := e.template // value copy: per-call state never touches the shared template
	var epoch uint64
	if e.store != nil {
		// Pin one epoch for the whole cascade: the writer may publish any
		// number of fresh snapshots meanwhile, but this query's graph is
		// immutable until the deferred release.
		pin := e.store.Acquire()
		defer pin.Release()
		c.Graph = pin.Graph()
		epoch = pin.Epoch()
	}
	if e.newPolicy != nil {
		c.Forward = e.newPolicy(seed)
	}
	if q.OnMessage != nil {
		c.OnMessage = q.OnMessage
	}
	if q.OnReplyHop != nil {
		c.OnReplyHop = q.OnReplyHop
	}
	stopped := false
	if done := ctx.Done(); done != nil || onHit != nil {
		c.Halt = func() bool {
			if stopped {
				return true
			}
			if done != nil {
				select {
				case <-done:
					return true
				default:
				}
			}
			return false
		}
	}
	if onHit != nil {
		c.OnResult = func(r core.Result) {
			// One arrival can produce several results back-to-back (index
			// answers) with no Halt poll in between — once the consumer
			// stops, it must never be called again.
			if stopped {
				return
			}
			if !onHit(r) {
				stopped = true
			}
		}
	}

	var out *core.Outcome
	if e.deepening != nil {
		out = e.deepening.RunScratch(&c, &cq, s)
	} else {
		out = c.RunScratch(&cq, s)
	}
	res := Result{
		Messages:         out.Messages,
		ReplyMessages:    out.ReplyMessages,
		Visited:          out.Visited,
		FirstResultDelay: out.FirstResultDelay,
		Epoch:            epoch,
	}
	// Streaming consumers already received every hit through onHit;
	// copying the pooled buffer for them would be a dead allocation.
	// The copy detaches the Result from s (out.Results aliases it).
	if len(out.Results) > 0 && onHit == nil {
		res.Hits = append([]Hit(nil), out.Results...)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Do executes one search to completion and returns its outcome. It
// returns ctx.Err() when the context is canceled mid-cascade (the
// cascade stops at the next hop) and a validation error for malformed
// queries; both leave the Engine reusable.
func (e *Engine) Do(ctx context.Context, q Query) (Result, error) {
	return e.run(ctx, &q, e.querySeed(&q), nil)
}

// Stream executes one search, yielding each hit the moment its reply
// reaches the origin — hundreds of simulated milliseconds before deep
// cascades finish. Breaking out of the loop stops the cascade at the
// next hop. A cancellation or validation error is yielded as the final
// pair's error; hits always carry a nil error.
//
// With WithDeepening the search only knows its final result set after
// the satisfied iteration, so hits are yielded when the schedule
// completes rather than incrementally.
func (e *Engine) Stream(ctx context.Context, q Query) iter.Seq2[Hit, error] {
	seed := e.querySeed(&q)
	return func(yield func(Hit, error) bool) {
		if e.deepening != nil {
			res, err := e.run(ctx, &q, seed, nil)
			if err != nil {
				yield(Hit{}, err)
				return
			}
			for _, h := range res.Hits {
				if !yield(h, nil) {
					return
				}
			}
			return
		}
		broke := false
		_, err := e.run(ctx, &q, seed, func(h Hit) bool {
			if !yield(h, nil) {
				broke = true
				return false
			}
			return true
		})
		if err != nil && !broke {
			yield(Hit{}, err)
		}
	}
}

// Batch executes the queries concurrently on a bounded worker group
// (WithBatchWorkers) and returns one Result per query, in input order.
// Each query's stochastic-policy stream is derived from the Engine seed
// and the query alone, so results are byte-identical to issuing the
// same queries sequentially through Do, at any worker count. The first
// query error aborts the batch; a canceled context returns ctx.Err().
func (e *Engine) Batch(ctx context.Context, qs []Query) ([]Result, error) {
	cells := make([]runner.Cell, len(qs))
	for i := range qs {
		q := qs[i]
		cells[i] = runner.Cell{
			Experiment: "search",
			Name:       strconv.Itoa(i),
			Seed:       e.querySeed(&q),
			Run: func(ctx context.Context, seed uint64) (any, error) {
				r, err := e.run(ctx, &q, seed, nil)
				if err != nil {
					return nil, err
				}
				return r, nil
			},
		}
	}
	rs, err := runner.Run(ctx, cells, runner.Options{Workers: e.batchWorkers})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(qs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("search: batch query %d: %s", i, r.Err)
		}
		out[i] = r.Value.(Result)
	}
	return out, nil
}

// Explore runs one metadata-only census round (Algo 2) and returns the
// findings. The outcome is caller-owned (deep-copied out of pooled
// memory); feed it to core.RecordFindings to fold into a ledger.
func (e *Engine) Explore(ctx context.Context, x Exploration) (*core.ExploreOutcome, error) {
	ttl := x.TTL
	if ttl == 0 {
		ttl = e.ttl
	}
	if ttl < 0 {
		return nil, fmt.Errorf("search: negative exploration TTL %d", x.TTL)
	}
	if x.Origin < 0 || (e.nodes > 0 && int(x.Origin) >= e.nodes) {
		return nil, fmt.Errorf("search: exploration %d origin %d outside the network", x.ID, x.Origin)
	}

	c := e.template
	if e.store != nil {
		pin := e.store.Acquire()
		defer pin.Release()
		c.Graph = pin.Graph()
	}
	if e.newPolicy != nil {
		c.Forward = e.newPolicy(runner.DeriveSeed(e.seed, "explore",
			strconv.FormatUint(x.ID, 10),
			strconv.FormatInt(int64(x.Origin), 10)))
	}
	if x.OnMessage != nil {
		c.OnMessage = x.OnMessage
	}
	if x.OnReplyHop != nil {
		c.OnReplyHop = x.OnReplyHop
	}
	if done := ctx.Done(); done != nil {
		c.Halt = func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}

	s := e.scratch.Get().(*core.Scratch)
	out := c.ExploreScratch(&core.Exploration{Keys: x.Keys, Origin: x.Origin, TTL: ttl}, s)
	cp := &core.ExploreOutcome{Messages: out.Messages, ReplyMessages: out.ReplyMessages}
	if len(out.Findings) > 0 {
		cp.Findings = append([]core.Finding(nil), out.Findings...)
		held := 0
		for _, f := range out.Findings {
			held += len(f.Held)
		}
		backing := make([]Key, 0, held)
		for i := range cp.Findings {
			n := len(backing)
			backing = append(backing, cp.Findings[i].Held...)
			cp.Findings[i].Held = backing[n:len(backing):len(backing)]
		}
	}
	e.scratch.Put(s)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cp, nil
}
