package daemon

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// mesh is a transport-free cluster of gossip states for the property
// tests: exchanges are direct method calls instead of HTTP.
type mesh struct {
	gs     []*Gossip
	byName map[string]*Gossip
	// reach simulates partitions: reach[i][j] reports whether member i
	// can currently talk to member j. nil means full connectivity.
	reach func(from, to string) bool
}

func newMesh(n int) *mesh {
	m := &mesh{byName: make(map[string]*Gossip, n)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%02d", i)
		g := NewGossip(Member{Name: name, HTTP: name + ":0", BaseID: i, Nodes: 1})
		m.gs = append(m.gs, g)
		m.byName[name] = g
	}
	return m
}

// round runs one gossip round for every member, mirroring the server's
// loop: beat, contact the seed list plus a random fanout of known
// peers, push-pull with each reachable one.
func (m *mesh) round(seeds []string, fanout int, stream *rng.Stream) {
	for _, g := range m.gs {
		g.Beat()
		self := g.Self().Name
		targets := map[string]struct{}{}
		for _, s := range seeds {
			targets[s] = struct{}{}
		}
		for _, p := range g.Targets(fanout, stream.Intn) {
			targets[p.Name] = struct{}{}
		}
		delete(targets, self)
		for name := range targets {
			peer, ok := m.byName[name]
			if !ok || (m.reach != nil && !m.reach(self, name)) {
				continue
			}
			g.Absorb(peer.Exchange(g.Snapshot()))
		}
	}
}

// converged reports whether every member of gs sees want members.
func converged(gs []*Gossip, want int) bool {
	for _, g := range gs {
		if len(g.Snapshot()) != want {
			return false
		}
	}
	return true
}

// roundsToConverge drives rounds until every member's view holds want
// members, returning the round count (or failing past maxRounds).
func (m *mesh) roundsToConverge(t *testing.T, seeds []string, fanout, want, maxRounds int, stream *rng.Stream) int {
	t.Helper()
	for r := 1; r <= maxRounds; r++ {
		m.round(seeds, fanout, stream)
		if converged(m.gs, want) {
			return r
		}
	}
	for _, g := range m.gs {
		if len(g.Snapshot()) != want {
			t.Logf("%s sees %d/%d members", g.Self().Name, len(g.Snapshot()), want)
		}
	}
	t.Fatalf("no convergence to %d members within %d rounds", want, maxRounds)
	return 0
}

// TestGossipConvergesFromSingleSeed is the bootstrap property: N
// members that each know only one seed address reach full membership
// in a small, bounded number of push-pull rounds.
func TestGossipConvergesFromSingleSeed(t *testing.T) {
	for _, n := range []int{4, 16, 48} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m := newMesh(n)
			stream := rng.New(uint64(n))
			rounds := m.roundsToConverge(t, []string{"m00"}, 2, n, 10, stream)
			// Push-pull through a shared seed is near-instant: the seed
			// learns everyone in round 1, everyone learns the rest by
			// round 2; leave slack for unlucky orderings.
			if rounds > 4 {
				t.Fatalf("n=%d converged in %d rounds, want <= 4", n, rounds)
			}
		})
	}
}

// TestGossipConvergesSeedless checks the steady-state regime: once
// everyone knows *someone* (a chain: i knows i-1), fanout-2 push-pull
// alone reaches full membership in O(log n)-ish rounds with no seed
// list at all.
func TestGossipConvergesSeedless(t *testing.T) {
	const n = 32
	m := newMesh(n)
	for i := 1; i < n; i++ {
		m.gs[i].Absorb(View{m.gs[i-1].Self().Name: m.gs[i-1].Self()})
	}
	stream := rng.New(99)
	rounds := m.roundsToConverge(t, nil, 2, n, 40, stream)
	t.Logf("seedless chain of %d converged in %d rounds", n, rounds)
}

// TestGossipPartitionRejoin: two halves converge independently while
// partitioned, see only their own half, and heal to full membership in
// bounded rounds once the partition lifts.
func TestGossipPartitionRejoin(t *testing.T) {
	const n = 16
	m := newMesh(n)
	side := func(name string) int {
		if name < "m08" {
			return 0
		}
		return 1
	}
	m.reach = func(from, to string) bool { return side(from) == side(to) }

	stream := rng.New(7)
	for r := 0; r < 10; r++ {
		// Each side bootstraps off its own seed; cross-side contact is
		// attempted (the seed lists name both) but the partition drops it.
		m.round([]string{"m00", "m08"}, 2, stream)
	}
	for _, g := range m.gs {
		if got := len(g.Snapshot()); got != n/2 {
			t.Fatalf("%s sees %d members under partition, want %d", g.Self().Name, got, n/2)
		}
	}

	m.reach = nil // heal
	rounds := m.roundsToConverge(t, []string{"m00", "m08"}, 2, n, 10, stream)
	t.Logf("rejoined to %d members in %d rounds after heal", n, rounds)
}

// TestViewMergeNewerBeatWins: merge adopts unknown members and only
// replaces known ones when the incoming heartbeat is strictly newer.
func TestViewMergeNewerBeatWins(t *testing.T) {
	v := View{
		"a": {Name: "a", Beat: 5, HTTP: "old"},
		"b": {Name: "b", Beat: 2},
	}
	changed := v.Merge(View{
		"a": {Name: "a", Beat: 7, HTTP: "new"}, // newer: replaces
		"b": {Name: "b", Beat: 2, HTTP: "x"},   // equal: kept
		"c": {Name: "c", Beat: 1},              // unknown: adopted
	})
	if !changed {
		t.Fatal("merge with newer and unknown entries reported no change")
	}
	if v["a"].HTTP != "new" || v["a"].Beat != 7 {
		t.Fatalf("newer beat did not replace: %+v", v["a"])
	}
	if v["b"].HTTP != "" {
		t.Fatalf("equal beat replaced entry: %+v", v["b"])
	}
	if _, ok := v["c"]; !ok {
		t.Fatal("unknown member not adopted")
	}
	if v.Merge(View{"a": {Name: "a", Beat: 3}}) {
		t.Fatal("stale merge reported a change")
	}
}

// TestGossipTargetsExcludesSelf: peer sampling never returns the local
// member and respects the fanout bound.
func TestGossipTargetsExcludesSelf(t *testing.T) {
	m := newMesh(8)
	g := m.gs[3]
	for _, peer := range m.gs {
		g.Absorb(View{peer.Self().Name: peer.Self()})
	}
	stream := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		targets := g.Targets(3, stream.Intn)
		if len(targets) != 3 {
			t.Fatalf("got %d targets, want 3", len(targets))
		}
		seen := map[string]bool{}
		for _, p := range targets {
			if p.Name == "m03" {
				t.Fatal("Targets returned self")
			}
			if seen[p.Name] {
				t.Fatalf("duplicate target %s", p.Name)
			}
			seen[p.Name] = true
		}
	}
	if got := g.Targets(99, stream.Intn); len(got) != 7 {
		t.Fatalf("oversized fanout returned %d peers, want all 7 others", len(got))
	}
}

// TestGossipVersionMonotone: every local view change bumps the epoch.
func TestGossipVersionMonotone(t *testing.T) {
	g := NewGossip(Member{Name: "a"})
	v0 := g.Version()
	g.Beat()
	v1 := g.Version()
	if v1 <= v0 {
		t.Fatalf("Beat did not bump version: %d -> %d", v0, v1)
	}
	g.Absorb(View{"b": {Name: "b", Beat: 1}})
	v2 := g.Version()
	if v2 <= v1 {
		t.Fatalf("Absorb of a new member did not bump version: %d -> %d", v1, v2)
	}
	g.Absorb(View{"b": {Name: "b", Beat: 1}})
	if got := g.Version(); got != v2 {
		t.Fatalf("no-op absorb bumped version: %d -> %d", v2, got)
	}
}
