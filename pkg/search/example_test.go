package search_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/pkg/search"
)

// ringNet is the doc-example network: ten repositories in a ring,
// where node 5 holds the hot item.
type ringNet struct{}

const hotItem search.Key = 42

func (ringNet) Out(id search.NodeID) []search.NodeID {
	return []search.NodeID{(id + 1) % 10, (id + 9) % 10}
}
func (ringNet) Online(search.NodeID) bool { return true }
func (ringNet) HasContent(id search.NodeID, key search.Key) bool {
	return id == 5 && key == hotItem
}

// Example constructs an Engine over a ten-node ring and runs one
// search: the hot item sits five hops from the origin.
func Example() {
	eng, err := search.New(ringNet{},
		search.WithPolicy("flood"),
		search.WithTTL(7),
		search.WithDelay(func(_, _ search.NodeID) float64 { return 0.1 }))
	if err != nil {
		panic(err)
	}
	res, err := eng.Do(context.Background(), search.Query{Key: hotItem, Origin: 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d result(s), holder %d, %d hops, first after %.0f ms\n",
		len(res.Hits), res.Hits[0].Holder, res.Hits[0].Hops, res.FirstResultDelay*1000)
	// Output:
	// 1 result(s), holder 5, 5 hops, first after 1000 ms
}

// ExampleEngine_Stream consumes hits incrementally; breaking out of
// the loop stops the cascade at the next hop.
func ExampleEngine_Stream() {
	eng, err := search.New(ringNet{}, search.WithTTL(7))
	if err != nil {
		panic(err)
	}
	for hit, err := range eng.Stream(context.Background(), search.Query{Key: hotItem, Origin: 0}) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("hit: node %d at %d hops\n", hit.Holder, hit.Hops)
		break // first answer is enough; the flood stops here
	}
	// Output:
	// hit: node 5 at 5 hops
}

// ExampleEngine_Batch fans a query list out over a bounded worker
// group; results come back in input order, identical at any worker
// count.
func ExampleEngine_Batch() {
	eng, err := search.New(ringNet{},
		search.WithTTL(7),
		search.WithBatchWorkers(4))
	if err != nil {
		panic(err)
	}
	queries := []search.Query{
		{ID: 1, Key: hotItem, Origin: 0},
		{ID: 2, Key: hotItem, Origin: 4},
		{ID: 3, Key: 777, Origin: 0}, // nobody holds this
	}
	results, err := eng.Batch(context.Background(), queries)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("query %d: found=%v in %d messages\n", queries[i].ID, r.Found(), r.Messages)
	}
	// Output:
	// query 1: found=true in 10 messages
	// query 2: found=true in 8 messages
	// query 3: found=false in 11 messages
}

// ExampleWithSnapshotStore serves queries through a snapshot store
// while the topology churns: every query pins one immutable CSR
// epoch, and publishing a re-frozen epoch is an atomic swap that
// never pauses serving.
func ExampleWithSnapshotStore() {
	// A mutable ten-node ring; node 5 holds the hot item.
	net := topology.NewNetwork(topology.Symmetric, 10, 4, 4)
	for i := 0; i < 10; i++ {
		net.Connect(topology.NodeID(i), topology.NodeID((i+1)%10))
	}
	store := topology.NewSnapshotStore(net) // epoch 1 = Freeze(net)

	eng, err := search.New(
		search.OverContent(core.ContentFunc(func(id search.NodeID, key search.Key) bool {
			return id == 5 && key == hotItem
		})),
		search.WithSnapshotStore(store),
		search.WithTTL(7))
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	res, err := eng.Do(ctx, search.Query{Key: hotItem, Origin: 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %d: holder %d at %d hops\n", res.Epoch, res.Hits[0].Holder, res.Hits[0].Hops)

	// Churn: wire a shortcut from the origin to the holder, publish a
	// new epoch. In-flight queries keep the epoch they pinned; the next
	// query sees the swap.
	store.Apply([]topology.Delta{{Op: topology.OpConnect, Src: 0, Dst: 5}})
	res, err = eng.Do(ctx, search.Query{Key: hotItem, Origin: 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %d: holder %d at %d hops\n", res.Epoch, res.Hits[0].Holder, res.Hits[0].Hops)
	// Output:
	// epoch 1: holder 5 at 5 hops
	// epoch 2: holder 5 at 1 hops
}

// ExampleEngine_Saturate keeps a resident worker shard serving across
// an epoch swap: the workers stay up while the store publishes, and
// the next batch runs on the fresh epoch.
func ExampleEngine_Saturate() {
	net := topology.NewNetwork(topology.Symmetric, 10, 4, 4)
	for i := 0; i < 10; i++ {
		net.Connect(topology.NodeID(i), topology.NodeID((i+1)%10))
	}
	store := topology.NewSnapshotStore(net)

	eng, err := search.New(
		search.OverContent(core.ContentFunc(func(id search.NodeID, key search.Key) bool {
			return id == 5 && key == hotItem
		})),
		search.WithSnapshotStore(store),
		search.WithTTL(7))
	if err != nil {
		panic(err)
	}
	sat, err := eng.Saturate(search.WithWorkers(2))
	if err != nil {
		panic(err)
	}
	defer sat.Close()

	queries := []search.Query{
		{ID: 1, Key: hotItem, Origin: 0},
		{ID: 2, Key: hotItem, Origin: 3},
	}
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		results, err := sat.Run(ctx, queries)
		if err != nil {
			panic(err)
		}
		for i, r := range results {
			fmt.Printf("query %d: %d hops on epoch %d\n", queries[i].ID, r.Hits[0].Hops, r.Epoch)
		}
		// Zero-downtime churn between rounds: the workers never drain.
		store.Apply([]topology.Delta{{Op: topology.OpConnect, Src: 0, Dst: 5}})
	}
	// Output:
	// query 1: 5 hops on epoch 1
	// query 2: 2 hops on epoch 1
	// query 1: 1 hops on epoch 2
	// query 2: 2 hops on epoch 2
}

// ExamplePolicyByName resolves forward policies from configuration
// strings — every built-in policy name round-trips.
func ExamplePolicyByName() {
	for _, name := range []string{"flood", "directed-bft-3"} {
		p, err := search.PolicyByName(name, search.PolicyEnv{})
		if err != nil {
			panic(err)
		}
		fmt.Println(p.Name())
	}
	_, err := search.PolicyByName("carrier-pigeon", search.PolicyEnv{})
	fmt.Println("err:", err != nil)
	// Output:
	// flood
	// directed-bft-3
	// err: true
}
