// Package repro is a reproduction of "A General Framework for
// Searching in Distributed Data Repositories" (Bakiras, Kalnis,
// Loukopoulos, Ng — IPDPS 2003).
//
// The public API is pkg/search: a pooled, context-aware, streaming
// query facade (Do/Stream/Batch/Saturate) over the cascade core, with
// a string-keyed forward-policy registry and zero-downtime serving
// under churn (WithSnapshotStore: queries pin immutable snapshot
// epochs that a writer swaps atomically). The implementation lives
// under internal/: the framework core (search, exploration, neighbor
// update) in internal/core, its substrates (simulator, network model,
// topology with CSR snapshots and the epoch store, statistics,
// digests, workloads) in sibling packages, the shared session driver
// in internal/driver, and three case-study bindings (gnutella,
// webcache, peerolap) — all of which search through the facade.
// internal/runner shards independent experiment cells across a worker
// pool with deterministic results at any worker count. cmd/repro
// regenerates every figure of the paper's evaluation; bench_test.go in
// this directory does the same under `go test -bench`. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro
