package experiments

import (
	"reflect"
	"testing"
)

// TestChurnServeModesAgree is the differential check backing the
// churnserve family's determinism contract: the stopworld baseline and
// the epochswap store path consume the identical delta stream, end on
// the identical adjacency, and produce byte-identical deterministic
// summaries — only the Mode tag differs. The during-churn throughput
// numbers are wall-clock side measurements and are not compared.
func TestChurnServeModesAgree(t *testing.T) {
	cfg := DefaultScaleConfig(3000, 300, 7)
	const (
		epochs = 4
		deltas = 30
		probes = 200
	)
	stop, stopSample, err := RunChurnServe(cfg, epochs, deltas, probes, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	swap, swapSample, err := RunChurnServe(cfg, epochs, deltas, probes, 2, true)
	if err != nil {
		t.Fatal(err)
	}

	if stop.Mode != "stopworld" || swap.Mode != "epochswap" {
		t.Fatalf("mode tags: %q / %q", stop.Mode, swap.Mode)
	}
	a, b := *stop, *swap
	a.Mode, b.Mode = "", ""
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("deterministic summaries diverged:\nstopworld: %+v\nepochswap: %+v", a, b)
	}
	if stop.FinalEdges == 0 {
		t.Fatal("final adjacency empty")
	}
	if stop.ProbeQueries != probes || stop.ProbeMessages == 0 {
		t.Fatalf("probe batch did not run: %+v", stop)
	}

	// The store path publishes exactly one epoch per delta batch; the
	// baseline never publishes (its freezes are all downtime).
	if swapSample.Publishes != epochs {
		t.Fatalf("epochswap published %d epochs, want %d", swapSample.Publishes, epochs)
	}
	if stopSample.Publishes != 0 {
		t.Fatalf("stopworld published %d epochs, want 0", stopSample.Publishes)
	}
	if stopSample.Queries != cfg.Queries || swapSample.Queries != cfg.Queries {
		t.Fatalf("samples drained %d/%d queries, want %d",
			stopSample.Queries, swapSample.Queries, cfg.Queries)
	}
}

func TestChurnServeValidates(t *testing.T) {
	cfg := DefaultScaleConfig(3000, 300, 7)
	if _, _, err := RunChurnServe(cfg, 0, 30, 200, 2, false); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, _, err := RunChurnServe(cfg, 4, 0, 200, 2, false); err == nil {
		t.Fatal("zero deltas accepted")
	}
	if _, _, err := RunChurnServe(cfg, 4, 30, 0, 2, false); err == nil {
		t.Fatal("zero probes accepted")
	}
	small := cfg
	small.Queries = 2
	if _, _, err := RunChurnServe(small, 4, 30, 200, 2, false); err == nil {
		t.Fatal("fewer queries than epochs accepted")
	}
}
