package perf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseBench converts `go test -bench -benchmem` text output into a
// Report. A benchmark line looks like
//
//	BenchmarkFig1-8   1   185114118 ns/op   3566 dynamic-hits   21403896 B/op   335142 allocs/op
//
// i.e. a name (with -GOMAXPROCS suffix), an iteration count, then
// value/unit pairs. The GOMAXPROCS suffix is stripped so baselines
// compare across machines; custom b.ReportMetric units are kept
// verbatim. Sub-benchmarks keep their slash-separated names. Non-bench
// lines (goos, pkg, PASS, ok ...) are ignored.
func ParseBench(r io.Reader) (*Report, error) {
	rep := NewReport("go-bench")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		metrics := make(map[string]float64, (len(fields)-2)/2)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perf: bad value %q on line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
		rep.Add(name, metrics)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
