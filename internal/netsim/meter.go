package netsim

import "fmt"

// MessageKind classifies metered traffic. The paper's "query overhead"
// figures count query propagations; invitation/eviction control traffic
// is metered separately so the reconfiguration cost can be reported.
type MessageKind uint8

const (
	// MsgQuery is a search-query propagation (one hop = one message).
	MsgQuery MessageKind = iota
	// MsgReply is a result or NOT-FOUND reply traveling back.
	MsgReply
	// MsgExplore is an exploration (metadata-only) propagation.
	MsgExplore
	// MsgInvite is a symmetric-update invitation.
	MsgInvite
	// MsgEvict is a symmetric-update eviction notice.
	MsgEvict
	// MsgInviteReply is the positive/negative answer to an invitation.
	MsgInviteReply
	numMessageKinds
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case MsgQuery:
		return "query"
	case MsgReply:
		return "reply"
	case MsgExplore:
		return "explore"
	case MsgInvite:
		return "invite"
	case MsgEvict:
		return "evict"
	case MsgInviteReply:
		return "invite-reply"
	default:
		return fmt.Sprintf("MessageKind(%d)", uint8(k))
	}
}

// Meter accumulates message counts bucketed per simulated hour, one
// series per message kind. It backs Figures 1(b) and 2(b).
type Meter struct {
	bucketSec float64
	counts    [numMessageKinds][]uint64
}

// NewMeter returns a meter with the given bucket width in simulated
// seconds (the paper buckets per hour: 3600).
func NewMeter(bucketSec float64) *Meter {
	if bucketSec <= 0 {
		panic(fmt.Sprintf("netsim: non-positive meter bucket %v", bucketSec))
	}
	return &Meter{bucketSec: bucketSec}
}

// Count records n messages of the given kind at simulated time now.
func (m *Meter) Count(kind MessageKind, now float64, n uint64) {
	if kind >= numMessageKinds {
		panic(fmt.Sprintf("netsim: unknown message kind %d", kind))
	}
	b := int(now / m.bucketSec)
	if b < 0 {
		panic(fmt.Sprintf("netsim: negative meter time %v", now))
	}
	s := m.counts[kind]
	for len(s) <= b {
		s = append(s, 0)
	}
	s[b] += n
	m.counts[kind] = s
}

// Series returns the per-bucket counts for one message kind. The
// returned slice is a copy.
func (m *Meter) Series(kind MessageKind) []uint64 {
	out := make([]uint64, len(m.counts[kind]))
	copy(out, m.counts[kind])
	return out
}

// Total returns the sum over all buckets for one message kind.
func (m *Meter) Total(kind MessageKind) uint64 {
	var t uint64
	for _, v := range m.counts[kind] {
		t += v
	}
	return t
}

// TotalAll returns the sum over all buckets and kinds.
func (m *Meter) TotalAll() uint64 {
	var t uint64
	for k := MessageKind(0); k < numMessageKinds; k++ {
		t += m.Total(k)
	}
	return t
}

// Bucket returns the count of one kind in one bucket (0 when the bucket
// was never touched).
func (m *Meter) Bucket(kind MessageKind, b int) uint64 {
	if b < 0 || b >= len(m.counts[kind]) {
		return 0
	}
	return m.counts[kind][b]
}

// Buckets returns the number of buckets touched so far across kinds.
func (m *Meter) Buckets() int {
	n := 0
	for k := MessageKind(0); k < numMessageKinds; k++ {
		if len(m.counts[k]) > n {
			n = len(m.counts[k])
		}
	}
	return n
}
