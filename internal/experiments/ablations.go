package experiments

import (
	"context"
	"fmt"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/peerolap"
	"repro/internal/webcache"
	"repro/internal/workload"

	"repro/internal/runner"
)

// This file implements the ablation experiments of DESIGN.md: the
// orthogonal techniques of [10] composed with reconfiguration, the
// asymmetric-vs-symmetric update regimes, benefit-function sensitivity,
// and the two additional case studies (web caching, PeerOlap). Like the
// figures, each decomposes into runner cells plus an assemble step.

// VariantRow summarizes one gnutella variant run.
type VariantRow struct {
	Name     string
	Hits     float64
	Messages uint64
	// MeanFirstResultMs is the average first-result delay over
	// satisfied queries, in milliseconds.
	MeanFirstResultMs float64
}

// variantCells wraps a set of named gnutella configurations.
func variantCells(experiment string, names []string, cfgs []gnutella.Config) []runner.Cell {
	cells := make([]runner.Cell, len(cfgs))
	for i := range cfgs {
		cells[i] = gnutellaCell(experiment, names[i], cfgs[i])
	}
	return cells
}

// AssembleVariants tabulates variant cells in submission order.
func AssembleVariants(rs []runner.Result) ([]VariantRow, error) {
	rows := make([]VariantRow, len(rs))
	for i := range rs {
		m, err := gnutellaValue(rs, i)
		if err != nil {
			return nil, err
		}
		rows[i] = VariantRow{
			Name:              rs[i].Cell,
			Hits:              m.HitsTotal,
			Messages:          m.QueryMsgsTotal,
			MeanFirstResultMs: m.FirstResultMsMean,
		}
	}
	return rows, nil
}

// VariantTable renders variant rows.
func VariantTable(title string, rows []VariantRow) *metrics.Table {
	t := metrics.NewTable(title, "variant", "total hits", "query messages", "first result (ms)")
	for _, r := range rows {
		t.AddRow(r.Name, r.Hits, r.Messages, r.MeanFirstResultMs)
	}
	return t
}

// DirectedBFTCells builds the forward-policy comparison cells.
func DirectedBFTCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	base := scale.config(gnutella.Dynamic, 3, seed)
	directed := base
	directed.Variant.Forward = gnutella.ForwardDirected2
	random := base
	random.Variant.Forward = gnutella.ForwardRandom2
	return variantCells(experiment,
		[]string{"flood", "directed-bft-2", "random-2"},
		[]gnutella.Config{base, directed, random})
}

// DirectedBFT compares flooding, Directed BFT (K=2) and random-2
// forwarding on the dynamic system — technique (ii) of [10], which the
// paper says can be employed "to further reduce the query cost".
func DirectedBFT(scale Scale, seed uint64) []VariantRow {
	return must(AssembleVariants(runLocal(DirectedBFTCells("directed", scale, seed))))
}

// IterDeepeningCells builds the deepening-schedule comparison cells.
func IterDeepeningCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	base := scale.config(gnutella.Dynamic, 3, seed)
	deep := base
	deep.Variant.IterativeDeepening = []int{1, 3}
	deep.Variant.DeepeningTimeout = 2.0
	return variantCells(experiment,
		[]string{"flood-ttl3", "deepening-1-3"},
		[]gnutella.Config{base, deep})
}

// IterDeepening compares one full-depth flood against the iterative
// deepening schedule {1, TTL} — technique (i) of [10].
func IterDeepening(scale Scale, seed uint64) []VariantRow {
	return must(AssembleVariants(runLocal(IterDeepeningCells("iterdeep", scale, seed))))
}

// LocalIndicesCells builds the local-indices comparison cells.
func LocalIndicesCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	base := scale.config(gnutella.Dynamic, 2, seed)
	indexed := base
	indexed.Variant.UseLocalIndices = true
	return variantCells(experiment,
		[]string{"flood-ttl2", "local-indices-r1"},
		[]gnutella.Config{base, indexed})
}

// LocalIndices compares the plain dynamic flood against technique
// (iii) of [10]: radius-1 local indices with the flood shortened by one
// hop. Same nominal coverage, one hop less propagation.
func LocalIndices(scale Scale, seed uint64) []VariantRow {
	return must(AssembleVariants(runLocal(LocalIndicesCells("localindex", scale, seed))))
}

// AsymmetricUpdateCells builds the update-regime comparison cells.
func AsymmetricUpdateCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	static := scale.config(gnutella.Static, 2, seed)
	symmetric := scale.config(gnutella.Dynamic, 2, seed)
	asymmetric := symmetric
	asymmetric.Variant.Update = gnutella.AsymmetricUpdate
	return variantCells(experiment,
		[]string{"static", "dynamic-symmetric", "dynamic-asymmetric"},
		[]gnutella.Config{static, symmetric, asymmetric})
}

// AsymmetricUpdate compares the paper's symmetric (Algo 4) update with
// the unilateral asymmetric (Algo 3) regime on the same workload.
func AsymmetricUpdate(scale Scale, seed uint64) []VariantRow {
	return must(AssembleVariants(runLocal(AsymmetricUpdateCells("asym", scale, seed))))
}

// BenefitFunctionsCells builds the benefit-sensitivity cells.
func BenefitFunctionsCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	br := scale.config(gnutella.Dynamic, 2, seed)
	hits := br
	hits.Variant.Benefit = gnutella.BenefitHitCount
	lat := br
	lat.Variant.Benefit = gnutella.BenefitHitsPerLatency
	return variantCells(experiment,
		[]string{"B/R (paper)", "hit-count", "hits-per-latency"},
		[]gnutella.Config{br, hits, lat})
}

// BenefitFunctions measures the sensitivity of the dynamic gain to the
// benefit definition (Section 3.4: "the benefit function should capture
// the general goals and characteristics of the system").
func BenefitFunctions(scale Scale, seed uint64) []VariantRow {
	return must(AssembleVariants(runLocal(BenefitFunctionsCells("benefit", scale, seed))))
}

// DriftRow is one sampled hour of the preference-drift experiment.
type DriftRow struct {
	Hour                    int
	StaticHits, DynamicHits float64
	DynamicDecayHits        float64
}

// DriftCells builds the three drift cells: static, dynamic, and
// dynamic with hourly ledger decay.
func DriftCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	duration := scale.config(gnutella.Static, 2, seed).DurationHours
	at := duration / 2
	mk := func(mode gnutella.Mode, decay float64) gnutella.Config {
		c := scale.config(mode, 2, seed)
		c.DriftAtHour = at
		c.DriftFraction = 1.0
		c.LedgerDecayPerHour = decay
		return c
	}
	return variantCells(experiment,
		[]string{"static", "dynamic", "dynamic-decay"},
		[]gnutella.Config{mk(gnutella.Static, 0), mk(gnutella.Dynamic, 0), mk(gnutella.Dynamic, 0.7)})
}

// AssembleDrift builds the hourly drift rows from DriftCells results.
func AssembleDrift(scale Scale, seed uint64, rs []runner.Result) ([]DriftRow, error) {
	sm, err := gnutellaValue(rs, 0)
	if err != nil {
		return nil, err
	}
	dm, err := gnutellaValue(rs, 1)
	if err != nil {
		return nil, err
	}
	dd, err := gnutellaValue(rs, 2)
	if err != nil {
		return nil, err
	}
	duration := scale.config(gnutella.Static, 2, seed).DurationHours
	var rows []DriftRow
	for h := 0; h < duration; h++ {
		rows = append(rows, DriftRow{
			Hour:             h,
			StaticHits:       bucketF(sm.HitsHourly, h),
			DynamicHits:      bucketF(dm.HitsHourly, h),
			DynamicDecayHits: bucketF(dd.HitsHourly, h),
		})
	}
	return rows, nil
}

// Drift evaluates the framework's central motivation — following
// "changes in access patterns": at mid-run every user's music
// preferences change; the static network cannot react, the dynamic one
// re-adapts, and hourly ledger decay (aging out stale statistics)
// accelerates the recovery.
func Drift(scale Scale, seed uint64) []DriftRow {
	return must(AssembleDrift(scale, seed, runLocal(DriftCells("drift", scale, seed))))
}

// DriftTable renders the drift series.
func DriftTable(rows []DriftRow) *metrics.Table {
	t := metrics.NewTable("Extension: preference drift at mid-run (hits per hour, hops=2)",
		"hour", "static", "dynamic", "dynamic+decay")
	for _, r := range rows {
		t.AddRow(r.Hour, r.StaticHits, r.DynamicHits, r.DynamicDecayHits)
	}
	return t
}

// WebCacheRow is one row of the web-caching experiment; it is also the
// JSON `value` schema of webcache cells in cells.json.
type WebCacheRow struct {
	Name             string  `json:"name"`
	NeighborHitRatio float64 `json:"neighbor_hit_ratio"`
	MeanLatencyMs    float64 `json:"mean_latency_ms"`
	OriginFetches    float64 `json:"origin_fetches"`
}

// webcacheConfig scales one web-caching configuration.
func webcacheConfig(scale Scale, mode webcache.Mode, digests bool, seed uint64) webcache.Config {
	c := webcache.DefaultConfig(mode)
	if scale == CI {
		c.Web = workload.WebConfig{
			Pages: 5000, Interests: 10, PopularityTheta: 0.9,
			Proxies: 30, LocalFraction: 0.7, RequestsPerHour: 600,
		}
		c.CacheCapacity = 100
		c.DurationHours = 12
	}
	c.UseDigests = digests
	c.Seed = seed
	return c
}

// WebCacheCells builds the three web-caching cells.
func WebCacheCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	type variant struct {
		name    string
		mode    webcache.Mode
		digests bool
	}
	variants := []variant{
		{"static", webcache.Static, false},
		{"dynamic", webcache.Dynamic, false},
		{"dynamic+digests", webcache.Dynamic, true},
	}
	cells := make([]runner.Cell, len(variants))
	for i, v := range variants {
		cfg := webcacheConfig(scale, v.mode, v.digests, seed)
		name := v.name
		cells[i] = runner.Cell{
			Experiment: experiment,
			Name:       name,
			Seed:       cfg.Seed,
			Run: func(_ context.Context, seed uint64) (any, error) {
				c := cfg
				c.Seed = seed
				m := webcache.New(c).Run()
				half := c.DurationHours / 2
				return &WebCacheRow{
					Name:             name,
					NeighborHitRatio: m.NeighborHitRatio(half, c.DurationHours),
					MeanLatencyMs:    m.Latency.Mean() * 1000,
					OriginFetches:    m.OriginFetches.Total(),
				}, nil
			},
		}
	}
	return cells
}

// AssembleWebCache tabulates web-caching cells.
func AssembleWebCache(rs []runner.Result) ([]WebCacheRow, error) {
	rows := make([]WebCacheRow, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		row, ok := r.Value.(*WebCacheRow)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *WebCacheRow",
				r.Experiment, r.Cell, r.Value)
		}
		rows[i] = *row
	}
	return rows, nil
}

// WebCache compares static and dynamic Squid-like proxy cooperation,
// with and without digest guidance.
func WebCache(scale Scale, seed uint64) []WebCacheRow {
	return must(AssembleWebCache(runLocal(WebCacheCells("webcache", scale, seed))))
}

// WebCacheTable renders the web-caching rows.
func WebCacheTable(rows []WebCacheRow) *metrics.Table {
	t := metrics.NewTable("Case study: distributed web caching (Squid-like, hops=1)",
		"variant", "neighbor-hit ratio", "mean latency (ms)", "origin fetches")
	for _, r := range rows {
		t.AddRow(r.Name, r.NeighborHitRatio, r.MeanLatencyMs, r.OriginFetches)
	}
	return t
}

// PeerOlapRow is one row of the PeerOlap experiment; it is also the
// JSON `value` schema of peerolap cells in cells.json.
type PeerOlapRow struct {
	Name            string  `json:"name"`
	MeanQueryCostS  float64 `json:"mean_query_cost_s"`
	PeerHitRatio    float64 `json:"peer_hit_ratio"`
	WarehouseChunks float64 `json:"warehouse_chunks"`
}

// peerolapConfig scales one PeerOlap configuration.
func peerolapConfig(scale Scale, mode peerolap.Mode, seed uint64) peerolap.Config {
	c := peerolap.DefaultConfig(mode)
	if scale == CI {
		c.Olap = workload.OlapConfig{
			Chunks: 4800, Regions: 12, PopularityTheta: 0.9,
			Peers: 60, LocalFraction: 0.8, ChunksPerQueryMean: 4,
			QueriesPerHour: 30,
		}
		c.CacheChunks = 150
		c.DurationHours = 16
	}
	c.Seed = seed
	return c
}

// PeerOlapCells builds the two PeerOlap cells.
func PeerOlapCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	type variant struct {
		name string
		mode peerolap.Mode
	}
	variants := []variant{{"static", peerolap.Static}, {"dynamic", peerolap.Dynamic}}
	cells := make([]runner.Cell, len(variants))
	for i, v := range variants {
		cfg := peerolapConfig(scale, v.mode, seed)
		name := v.name
		cells[i] = runner.Cell{
			Experiment: experiment,
			Name:       name,
			Seed:       cfg.Seed,
			Run: func(_ context.Context, seed uint64) (any, error) {
				c := cfg
				c.Seed = seed
				m := peerolap.New(c).Run()
				half := c.DurationHours / 2
				return &PeerOlapRow{
					Name:            name,
					MeanQueryCostS:  m.QueryCost.Mean(),
					PeerHitRatio:    m.PeerHitRatio(half, c.DurationHours),
					WarehouseChunks: m.WarehouseChunks.Total(),
				}, nil
			},
		}
	}
	return cells
}

// AssemblePeerOlap tabulates PeerOlap cells.
func AssemblePeerOlap(rs []runner.Result) ([]PeerOlapRow, error) {
	rows := make([]PeerOlapRow, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		row, ok := r.Value.(*PeerOlapRow)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *PeerOlapRow",
				r.Experiment, r.Cell, r.Value)
		}
		rows[i] = *row
	}
	return rows, nil
}

// PeerOlap compares static and dynamic chunk-cache cooperation.
func PeerOlap(scale Scale, seed uint64) []PeerOlapRow {
	return must(AssemblePeerOlap(runLocal(PeerOlapCells("peerolap", scale, seed))))
}

// PeerOlapTable renders the PeerOlap rows.
func PeerOlapTable(rows []PeerOlapRow) *metrics.Table {
	t := metrics.NewTable("Case study: PeerOlap chunk caching",
		"variant", "mean query cost (s)", "peer-hit ratio", "warehouse chunks")
	for _, r := range rows {
		t.AddRow(r.Name, r.MeanQueryCostS, r.PeerHitRatio, r.WarehouseChunks)
	}
	return t
}
