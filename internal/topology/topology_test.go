package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNeighborListBasics(t *testing.T) {
	l := NewNeighborList(3)
	if l.Len() != 0 || l.Full() {
		t.Fatal("new list must be empty and not full")
	}
	if !l.Add(1) || !l.Add(2) || !l.Add(3) {
		t.Fatal("adds under capacity must succeed")
	}
	if l.Add(4) {
		t.Fatal("add over capacity must fail")
	}
	if l.Add(2) {
		t.Fatal("duplicate add must fail")
	}
	if !l.Contains(2) || l.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if !l.Remove(2) || l.Remove(2) {
		t.Fatal("Remove semantics wrong")
	}
	if got := l.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("order not preserved: %v", got)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestNeighborListUnbounded(t *testing.T) {
	l := NewNeighborList(0)
	for i := 0; i < 1000; i++ {
		if !l.Add(NodeID(i)) {
			t.Fatalf("unbounded list refused add %d", i)
		}
	}
	if l.Full() {
		t.Fatal("unbounded list reports Full")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewNeighborList(2)
	l.Add(1)
	s := l.Snapshot()
	s[0] = 99
	if !l.Contains(1) || l.Contains(99) {
		t.Fatal("Snapshot must not alias the backing array")
	}
}

func TestRelationString(t *testing.T) {
	for _, r := range []Relation{AllToAll, PureAsymmetric, Symmetric} {
		if r.String() == "" {
			t.Fatalf("relation %d has empty string", r)
		}
	}
}

func TestAllToAllConstruction(t *testing.T) {
	net := NewNetwork(AllToAll, 5, 4, 4) // caps ignored for all-to-all
	for i := 0; i < 5; i++ {
		out, in := net.Degree(NodeID(i))
		if out != 4 || in != 4 {
			t.Fatalf("node %d degree (%d,%d), want (4,4)", i, out, in)
		}
		if net.Node(NodeID(i)).Out.Contains(NodeID(i)) {
			t.Fatal("self-loop in all-to-all")
		}
	}
	if !net.Consistent() {
		t.Fatal("all-to-all network inconsistent")
	}
}

func TestConnectAsymmetric(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 4, 2, 0)
	if !net.Connect(0, 1) || !net.Connect(0, 2) {
		t.Fatal("connects under capacity failed")
	}
	if net.Connect(0, 3) {
		t.Fatal("connect over out-capacity succeeded")
	}
	if net.Connect(0, 1) {
		t.Fatal("duplicate connect succeeded")
	}
	if net.Connect(1, 1) {
		t.Fatal("self connect succeeded")
	}
	// Asymmetric: reverse edge must NOT appear.
	if net.Node(1).Out.Contains(0) {
		t.Fatal("asymmetric connect created reverse out-edge")
	}
	if !net.Node(1).In.Contains(0) {
		t.Fatal("incoming list not updated")
	}
	if !net.Consistent() {
		t.Fatalf("audit: %v", net.AuditConsistency())
	}
}

func TestPureAsymmetricUnboundedIncoming(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 10, 1, 5 /* forced to 0 */)
	for i := 1; i < 10; i++ {
		if !net.Connect(NodeID(i), 0) {
			t.Fatalf("node %d could not attach to hub", i)
		}
	}
	if _, in := net.Degree(0); in != 9 {
		t.Fatalf("hub in-degree %d, want 9", in)
	}
}

func TestConnectSymmetricCreatesBothEdges(t *testing.T) {
	net := NewNetwork(Symmetric, 4, 2, 2)
	if !net.Connect(0, 1) {
		t.Fatal("symmetric connect failed")
	}
	if !net.Node(1).Out.Contains(0) || !net.Node(0).In.Contains(1) {
		t.Fatal("symmetric connect must create the reverse edge")
	}
	if !net.Consistent() {
		t.Fatalf("audit: %v", net.AuditConsistency())
	}
}

func TestConnectSymmetricRespectsPeerCapacity(t *testing.T) {
	net := NewNetwork(Symmetric, 5, 2, 2)
	net.Connect(1, 0)
	net.Connect(2, 0) // node 0 now full
	if net.Connect(3, 0) {
		t.Fatal("connect to full symmetric peer succeeded")
	}
	out, in := net.Degree(3)
	if out != 0 || in != 0 {
		t.Fatal("failed connect must not leave partial edges")
	}
	if !net.Consistent() {
		t.Fatal("inconsistent after refused connect")
	}
}

func TestDisconnect(t *testing.T) {
	net := NewNetwork(Symmetric, 3, 2, 2)
	net.Connect(0, 1)
	if !net.Disconnect(0, 1) {
		t.Fatal("disconnect failed")
	}
	if net.Disconnect(0, 1) {
		t.Fatal("double disconnect succeeded")
	}
	for _, n := range []NodeID{0, 1} {
		out, in := net.Degree(n)
		if out != 0 || in != 0 {
			t.Fatalf("node %d still has edges after disconnect", n)
		}
	}
	if !net.Consistent() {
		t.Fatal("inconsistent after disconnect")
	}
}

func TestIsolate(t *testing.T) {
	net := NewNetwork(Symmetric, 5, 4, 4)
	net.Connect(0, 1)
	net.Connect(0, 2)
	net.Connect(3, 0)
	net.Isolate(0)
	out, in := net.Degree(0)
	if out != 0 || in != 0 {
		t.Fatalf("isolated node has degree (%d,%d)", out, in)
	}
	if !net.Consistent() {
		t.Fatalf("audit after isolate: %v", net.AuditConsistency())
	}
	// Other nodes must not reference 0 anywhere.
	for i := 1; i < 5; i++ {
		n := net.Node(NodeID(i))
		if n.Out.Contains(0) || n.In.Contains(0) {
			t.Fatalf("node %d still references isolated node", i)
		}
	}
}

func TestAuditDetectsViolation(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 3, 2, 0)
	net.Connect(0, 1)
	// Corrupt: remove the incoming entry behind the network's back.
	net.Node(1).In.Remove(0)
	bad := net.AuditConsistency()
	if len(bad) != 1 || bad[0].Src != 0 || bad[0].Dst != 1 || bad[0].Reverse {
		t.Fatalf("audit = %v", bad)
	}
	if bad[0].String() == "" {
		t.Fatal("violation must render")
	}
}

func TestAuditDetectsDanglingIncoming(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 3, 2, 0)
	net.Node(2).In.Add(0) // 0 never connected
	bad := net.AuditConsistency()
	if len(bad) != 1 || !bad[0].Reverse {
		t.Fatalf("audit = %v", bad)
	}
}

func TestAuditDetectsAsymmetryInSymmetricRegime(t *testing.T) {
	net := NewNetwork(Symmetric, 3, 2, 2)
	net.Connect(0, 1)
	net.Node(1).Out.Remove(0) // break symmetry only
	if net.Consistent() {
		t.Fatal("symmetric regime must flag one-way edges")
	}
}

func TestEdgeCount(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 4, 3, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	net.Connect(3, 0)
	if net.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", net.EdgeCount())
	}
}

func TestNewNetworkPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNetwork(0) did not panic")
		}
	}()
	NewNetwork(Symmetric, 0, 4, 4)
}

func TestRandomWireDegreesAndConsistency(t *testing.T) {
	s := rng.New(1)
	net := NewNetwork(Symmetric, 100, 4, 4)
	RandomWire(net, 4, s.Intn)
	if !net.Consistent() {
		t.Fatalf("random wiring inconsistent: %v", net.AuditConsistency()[:3])
	}
	for i := 0; i < 100; i++ {
		out, in := net.Degree(NodeID(i))
		if out > 4 || in > 4 {
			t.Fatalf("node %d degree (%d,%d) exceeds cap", i, out, in)
		}
		if out != in {
			t.Fatalf("symmetric node %d has out=%d in=%d", i, out, in)
		}
	}
	// Most nodes should have reached full degree.
	full := 0
	for i := 0; i < 100; i++ {
		if out, _ := net.Degree(NodeID(i)); out == 4 {
			full++
		}
	}
	if full < 80 {
		t.Fatalf("only %d/100 nodes reached full degree", full)
	}
}

func TestRandomAttachSkipsSelfAndRespectsK(t *testing.T) {
	s := rng.New(2)
	net := NewNetwork(PureAsymmetric, 10, 5, 0)
	cands := []NodeID{0, 1, 2, 3, 4}
	n := RandomAttach(net, 0, cands, 3, s.Intn)
	if n != 3 {
		t.Fatalf("attached %d, want 3", n)
	}
	if net.Node(0).Out.Contains(0) {
		t.Fatal("attached to self")
	}
}

func TestRandomAttachZeroK(t *testing.T) {
	s := rng.New(3)
	net := NewNetwork(PureAsymmetric, 3, 2, 0)
	if RandomAttach(net, 0, []NodeID{1, 2}, 0, s.Intn) != 0 {
		t.Fatal("k=0 must attach nothing")
	}
}

func TestOnlineFilter(t *testing.T) {
	ids := []NodeID{0, 1, 2, 3}
	got := OnlineFilter(ids, func(id NodeID) bool { return id%2 == 0 })
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("OnlineFilter = %v", got)
	}
}

// Property: any sequence of Connect/Disconnect/Isolate keeps the
// network consistent in every regime. This is the paper's core
// structural invariant.
func TestQuickOperationsPreserveConsistency(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		s := rng.New(seed)
		for _, rel := range []Relation{PureAsymmetric, Symmetric} {
			net := NewNetwork(rel, 12, 3, 3)
			for _, op := range ops {
				a := NodeID(int(op) % 12)
				b := NodeID(int(op>>4) % 12)
				switch op % 5 {
				case 0, 1:
					net.Connect(a, b)
				case 2:
					net.Disconnect(a, b)
				case 3:
					net.Isolate(a)
				case 4:
					net.Connect(NodeID(s.Intn(12)), b)
				}
				if !net.Consistent() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric regime keeps out == in as sets after arbitrary
// operations.
func TestQuickSymmetricOutEqualsIn(t *testing.T) {
	f := func(ops []uint16) bool {
		net := NewNetwork(Symmetric, 10, 3, 3)
		for _, op := range ops {
			a := NodeID(int(op) % 10)
			b := NodeID(int(op>>4) % 10)
			if op%3 == 0 {
				net.Disconnect(a, b)
			} else {
				net.Connect(a, b)
			}
		}
		for i := 0; i < 10; i++ {
			n := net.Node(NodeID(i))
			if n.Out.Len() != n.In.Len() {
				return false
			}
			for _, v := range n.Out.IDs() {
				if !n.In.Contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConnectDisconnect(b *testing.B) {
	net := NewNetwork(Symmetric, 1000, 4, 4)
	for i := 0; i < b.N; i++ {
		a := NodeID(i % 1000)
		c := NodeID((i*7 + 1) % 1000)
		net.Connect(a, c)
		net.Disconnect(a, c)
	}
}

func BenchmarkAudit(b *testing.B) {
	s := rng.New(1)
	net := NewNetwork(Symmetric, 1000, 4, 4)
	RandomWire(net, 4, s.Intn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !net.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}
