package core

import (
	"repro/internal/eventq"
	"repro/internal/topology"
)

// Scratch is the pooled working state of one cascade or exploration.
// NodeIDs are dense 0-based indices (see topology.NodeID), so all
// per-node query state lives in flat slices indexed by node instead of
// maps: a visited check is one bounds check and one epoch compare, and
// starting a new cascade is a single counter increment instead of a
// fresh map allocation.
//
// A Scratch is owned by one caller (one simulation loop) and reused
// across cascades — the simulator in internal/gnutella carries one per
// Sim and drives hundreds of thousands of queries through it without
// per-query allocation. It is NOT safe for concurrent use; parallelism
// lives one level up, in internal/runner, where every cell owns its own
// Sim and therefore its own Scratch.
//
// Outcomes returned by RunScratch/ExploreScratch alias the Scratch's
// pooled buffers: they are valid until the next call with the same
// Scratch. Run/Explore (nil scratch) keep the historical own-everything
// semantics.
type Scratch struct {
	// epoch brands the slot arrays: a slot belongs to the current
	// cascade iff slot.epoch == epoch (and analogously idxEpoch for the
	// index-answered set). Bumping epoch invalidates every slot in O(1).
	epoch  uint32
	visits []visitSlot

	// bits is the dense-flood visited bitset: bit id set ⇔ id was
	// visited in the current cascade. It replaces the per-arrival slot
	// load of the epoch-stamped check when the cascade expects to touch
	// a large fraction of a big network (see denseFlood): duplicate
	// arrivals — the bulk of a flood's queue traffic — then probe one
	// bit (512 nodes per cache line) instead of a 24-byte slot (2-3 per
	// line). The slot array still records parent/hops/delay for visited
	// nodes; bits only answer the membership question. Cleared wholesale
	// at the start of each cascade that engages it (O(n/64) memclr —
	// amortized by the dense visit count the heuristic requires).
	bits []uint64

	// queue orders in-flight query copies by (arrival time, push seq) —
	// the monotone bucketed queue of internal/eventq, which realizes
	// the exact total order of the historical binary heap (and falls
	// back to one for unbucketable delay distributions), so cascades
	// pop identical sequences whichever representation serves them.
	queue eventq.Monotone[arrivalPayload]

	// Pooled result and working buffers, reused across cascades.
	results  []Result
	findings []Finding
	heldBuf  []Key
	fwd      []topology.NodeID
}

// visitSlot is the per-node state of the current cascade: the reverse
// route for replies plus the epoch stamps that say which cascade (if
// any) the data belongs to.
type visitSlot struct {
	epoch        uint32 // slot is visited in the cascade iff == Scratch.epoch
	idxEpoch     uint32 // node was answered for via a local index iff == Scratch.epoch
	hops         int32
	parent       topology.NodeID
	forwardDelay float64
}

// queueHint bounds the event-queue pre-size: the queue holds in-flight
// message copies (the cascade frontier), which is governed by fan-out
// and TTL, not the network size — a TTL-4 degree-4 flood keeps a few
// hundred in flight whether the network has 1k or 1M nodes.
const queueHint = 1024

// NewScratch returns a Scratch pre-sized for networks of n nodes: the
// per-node slot array holds n entries and the event queue's backing
// array is sized for a deep flood's frontier, so first cascades pay no
// growth pauses. Slots still grow on demand — n is a capacity hint, not
// a limit.
func NewScratch(n int) *Scratch {
	if n < 0 {
		n = 0
	}
	s := &Scratch{visits: make([]visitSlot, n)}
	if n > 0 {
		hint := n
		if hint > queueHint {
			hint = queueHint
		}
		s.queue.Grow(hint)
	}
	return s
}

// begin opens a new cascade: every slot of the previous one is
// invalidated by the epoch bump.
func (s *Scratch) begin() {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap after ~4e9 cascades: hard-reset stamps
		for i := range s.visits {
			s.visits[i] = visitSlot{}
		}
		s.epoch = 1
	}
	s.queue.Reset()
}

// slot returns the state cell of id, growing the slot array as needed.
func (s *Scratch) slot(id topology.NodeID) *visitSlot {
	if int(id) >= len(s.visits) {
		n := int(id) + 1
		if n < 2*len(s.visits) {
			n = 2 * len(s.visits)
		}
		grown := make([]visitSlot, n)
		copy(grown, s.visits)
		s.visits = grown
	}
	return &s.visits[id]
}

// visited reports whether id was processed in the current cascade.
func (s *Scratch) visited(id topology.NodeID) bool {
	return int(id) < len(s.visits) && s.visits[id].epoch == s.epoch
}

// beginBits opens the bitset for a cascade over (at least) n nodes:
// every previously set bit is cleared and capacity for n is ensured, so
// testBit/setBit never observe stale membership. Growth beyond n (the
// generic-graph case, where ids are unbounded) happens in setBit; fresh
// words come zeroed from make.
func (s *Scratch) beginBits(n int) {
	clear(s.bits)
	s.ensureBits(n)
}

// ensureBits grows the bitset to cover node ids < n, zero-filled.
func (s *Scratch) ensureBits(n int) {
	need := (n + 63) / 64
	if need <= len(s.bits) {
		return
	}
	if need < 2*len(s.bits) {
		need = 2 * len(s.bits)
	}
	grown := make([]uint64, need)
	copy(grown, s.bits)
	s.bits = grown
}

// setBit marks id visited in the bitset, growing it as needed.
func (s *Scratch) setBit(id topology.NodeID) {
	w := int(id) >> 6
	if w >= len(s.bits) {
		s.ensureBits(int(id) + 1)
	}
	s.bits[w] |= 1 << (uint(id) & 63)
}

// testBit reports bitset membership; ids beyond the array are unvisited.
func (s *Scratch) testBit(id topology.NodeID) bool {
	w := int(id) >> 6
	return w < len(s.bits) && s.bits[w]&(1<<(uint(id)&63)) != 0
}

// arrivalPayload is the queue payload of one in-flight query copy; the
// arrival time and the deterministic tiebreak live in the queue's keys.
type arrivalPayload struct {
	node topology.NodeID
	from topology.NodeID // forwarding neighbor (reverse-route next hop)
	hops int32
}

// arrival is one in-flight copy of the query as the cascade loop sees
// it: the queue key (time) plus the payload.
type arrival struct {
	time float64
	node topology.NodeID
	from topology.NodeID
	hops int32
}

// pushArrival schedules one query copy for arrival at time t.
func (s *Scratch) pushArrival(t float64, node, from topology.NodeID, hops int32) {
	s.queue.Push(t, arrivalPayload{node: node, from: from, hops: hops})
}

// popArrival removes and returns the earliest arrival; ok is false when
// no copies are in flight.
func (s *Scratch) popArrival() (arrival, bool) {
	t, p, ok := s.queue.Pop()
	if !ok {
		return arrival{}, false
	}
	return arrival{time: t, node: p.node, from: p.from, hops: p.hops}, true
}
