package faults

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// LossyPolicy decorates a core.ForwardPolicy with deterministic
// per-link message loss: each target the inner policy selects is then
// dropped with probability Rate, drawn from the same per-link
// (seed, from, to, sequence) streams a faults.Transport uses. Inside
// the single-threaded cascade the k-th forward on a link always meets
// the same fate, so experiment cells built on it remain pure functions
// of their seed — the property the `faults` family's byte-identity
// checks enforce.
//
// It is safe for concurrent use, but the decision streams are only
// run-to-run reproducible when Select calls arrive in a deterministic
// order (sequential query replay, as the experiment runner does).
type LossyPolicy struct {
	Inner core.ForwardPolicy
	Rate  float64
	Seed  uint64

	mu    sync.Mutex
	links map[linkKey]*linkState
}

// NewLossyPolicy wraps inner with a drop rate in [0,1).
func NewLossyPolicy(inner core.ForwardPolicy, rate float64, seed uint64) *LossyPolicy {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("faults: lossy rate %v outside [0,1)", rate))
	}
	return &LossyPolicy{
		Inner: inner,
		Rate:  rate,
		Seed:  seed,
		links: make(map[linkKey]*linkState),
	}
}

// Select implements core.ForwardPolicy: it asks Inner for targets,
// then deletes each one its link's drop stream condemns, compacting
// in place so the survivors stay in Inner's order.
func (p *LossyPolicy) Select(q *core.Query, at, from topology.NodeID, out []topology.NodeID, led *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	sel := p.Inner.Select(q, at, from, out, led, dst)
	if p.Rate <= 0 || len(sel) == 0 {
		return sel
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	keep := sel[:0]
	for _, to := range sel {
		k := linkKey{at, to}
		ls := p.links[k]
		if ls == nil {
			ls = &linkState{seed: mix64(p.Seed ^ mix64(uint64(at)<<32|uint64(uint32(to))))}
			p.links[k] = ls
		}
		ls.seq++
		if unit(mix64((ls.seed+ls.seq)^saltDrop)) < p.Rate {
			continue
		}
		keep = append(keep, to)
	}
	return keep
}

// Name implements core.ForwardPolicy.
func (p *LossyPolicy) Name() string {
	return fmt.Sprintf("lossy(%s,%g)", p.Inner.Name(), p.Rate)
}

// Reset rewinds every link's decision stream to the beginning, so one
// policy value can replay identical loss across repeated plans.
func (p *LossyPolicy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links = make(map[linkKey]*linkState)
}
