// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp fig1a [-scale full|ci] [-seed N] [-csv]
//
// Experiments: fig1a fig1b fig2a fig2b fig3a fig3b all
// plus the ablations: directed iterdeep asym benefit webcache peerolap.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig1a fig1b fig2a fig2b fig3a fig3b all directed iterdeep localindex asym benefit drift webcache peerolap")
		scale = flag.String("scale", "ci", "scale: full (paper, minutes) or ci (reduced, seconds)")
		seed  = flag.Uint64("seed", 1, "experiment seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	tables, err := run(*exp, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	fmt.Fprintf(os.Stderr, "[%s scale, seed %d, %.1fs]\n", sc, *seed, time.Since(start).Seconds())
}

// run dispatches one experiment name to its harness.
func run(exp string, sc experiments.Scale, seed uint64) ([]*metrics.Table, error) {
	switch exp {
	case "fig1a":
		return []*metrics.Table{experiments.Fig1(sc, seed).HitsTable("Figure 1(a): queries satisfied per hour (hops=2)")}, nil
	case "fig1b":
		return []*metrics.Table{experiments.Fig1(sc, seed).MsgsTable("Figure 1(b): query overhead per hour (hops=2)")}, nil
	case "fig1":
		f := experiments.Fig1(sc, seed)
		return []*metrics.Table{
			f.HitsTable("Figure 1(a): queries satisfied per hour (hops=2)"),
			f.MsgsTable("Figure 1(b): query overhead per hour (hops=2)"),
		}, nil
	case "fig2a":
		return []*metrics.Table{experiments.Fig2(sc, seed).HitsTable("Figure 2(a): queries satisfied per hour (hops=4)")}, nil
	case "fig2b":
		return []*metrics.Table{experiments.Fig2(sc, seed).MsgsTable("Figure 2(b): query overhead per hour (hops=4)")}, nil
	case "fig2":
		f := experiments.Fig2(sc, seed)
		return []*metrics.Table{
			f.HitsTable("Figure 2(a): queries satisfied per hour (hops=4)"),
			f.MsgsTable("Figure 2(b): query overhead per hour (hops=4)"),
		}, nil
	case "fig3a":
		return []*metrics.Table{experiments.Fig3aTable(experiments.Fig3a(sc, seed))}, nil
	case "fig3b":
		return []*metrics.Table{experiments.Fig3bTable(experiments.Fig3b(sc, seed))}, nil
	case "directed":
		return []*metrics.Table{experiments.VariantTable(
			"Ablation: Directed BFT vs flooding (dynamic, hops=3)",
			experiments.DirectedBFT(sc, seed))}, nil
	case "iterdeep":
		return []*metrics.Table{experiments.VariantTable(
			"Ablation: iterative deepening (dynamic, max depth 3)",
			experiments.IterDeepening(sc, seed))}, nil
	case "localindex":
		return []*metrics.Table{experiments.VariantTable(
			"Ablation: local indices r=1 (technique iii of [10], hops=2)",
			experiments.LocalIndices(sc, seed))}, nil
	case "asym":
		return []*metrics.Table{experiments.VariantTable(
			"Ablation: symmetric (Algo 4) vs asymmetric (Algo 3) updates (hops=2)",
			experiments.AsymmetricUpdate(sc, seed))}, nil
	case "benefit":
		return []*metrics.Table{experiments.VariantTable(
			"Ablation: benefit-function sensitivity (dynamic, hops=2)",
			experiments.BenefitFunctions(sc, seed))}, nil
	case "drift":
		return []*metrics.Table{experiments.DriftTable(experiments.Drift(sc, seed))}, nil
	case "webcache":
		return []*metrics.Table{experiments.WebCacheTable(experiments.WebCache(sc, seed))}, nil
	case "peerolap":
		return []*metrics.Table{experiments.PeerOlapTable(experiments.PeerOlap(sc, seed))}, nil
	case "all":
		var out []*metrics.Table
		for _, name := range []string{"fig1", "fig2", "fig3a", "fig3b", "directed", "iterdeep", "localindex", "asym", "benefit", "drift", "webcache", "peerolap"} {
			ts, err := run(name, sc, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("repro: unknown experiment %q", exp)
	}
}
