package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1010 {
		t.Fatalf("counter = %d, want %d", got, 8*1010)
	}
}

func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("queries")
	b := r.Counter("queries")
	if a != b {
		t.Fatal("same name resolved to different counters")
	}
	a.Add(3)
	snap := r.Snapshot()
	if snap["queries"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegistryHTTPExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	r.Counter("queries").Add(9)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]uint64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON body %q: %v", rec.Body.String(), err)
	}
	if got["hits"] != 7 || got["queries"] != 9 {
		t.Fatalf("exposed %v", got)
	}
}
