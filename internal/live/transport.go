// Package live runs the framework on real concurrent nodes instead of
// the discrete-event simulator: every node is a goroutine-driven actor
// with an inbox, and messages travel over a pluggable Transport — an
// in-process channel fabric for tests and single-binary demos, or
// TCP with gob encoding for multi-process deployments (cmd/dsearch).
//
// The protocol is the paper's Algo 5 adapted to a real network: queries
// flood with a TTL and duplicate suppression, hits reply directly to
// the origin (carrying the answering link's bandwidth class, as the
// Gnutella Ping-Pong protocol does), and neighbor updates use
// invitation/eviction messages with the always-accept policy.
package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgQuery MsgType = iota
	MsgHit
	MsgInvite
	MsgInviteReply
	MsgEvict
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgHit:
		return "hit"
	case MsgInvite:
		return "invite"
	case MsgInviteReply:
		return "invite-reply"
	case MsgEvict:
		return "evict"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Envelope is the wire message. All fields are exported and
// gob-encodable; unused fields stay zero.
type Envelope struct {
	Type MsgType
	From topology.NodeID

	// Query / Hit fields.
	QueryID core.QueryID
	Key     core.Key
	Origin  topology.NodeID
	TTL     int
	Hops    int
	// Class is the answering node's bandwidth class on hits.
	Class netsim.BandwidthClass

	// InviteReply field.
	Accept bool
}

// Transport delivers envelopes between nodes. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Send delivers env to node to. Delivery is asynchronous;
	// implementations may drop messages to unknown or stopped nodes
	// and report the failure.
	Send(to topology.NodeID, env Envelope) error
}

// ChanTransport is an in-process fabric: one buffered channel per node.
type ChanTransport struct {
	mu    sync.RWMutex
	boxes map[topology.NodeID]chan Envelope
}

// NewChanTransport returns an empty fabric.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{boxes: make(map[topology.NodeID]chan Envelope)}
}

// Register creates (or returns) the inbox for node id.
func (t *ChanTransport) Register(id topology.NodeID) chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if box, ok := t.boxes[id]; ok {
		return box
	}
	box := make(chan Envelope, 1024)
	t.boxes[id] = box
	return box
}

// Attach wires a node's inbox into the fabric, replacing any channel
// previously registered for its ID.
func (t *ChanTransport) Attach(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.boxes[n.ID()] = n.Inbox()
}

// Unregister removes a node's inbox; pending messages are dropped.
func (t *ChanTransport) Unregister(id topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.boxes, id)
}

// Send implements Transport. A full inbox drops the message (backpressure
// by loss, as UDP-era Gnutella did) rather than blocking the sender.
func (t *ChanTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.RLock()
	box, ok := t.boxes[to]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: no inbox for node %d", to)
	}
	select {
	case box <- env:
		return nil
	default:
		return fmt.Errorf("live: inbox of node %d is full", to)
	}
}

// TCPTransport sends envelopes over TCP connections with gob encoding.
// Every process registers its peers' listen addresses; connections are
// pooled per destination.
type TCPTransport struct {
	mu    sync.Mutex
	addrs map[topology.NodeID]string
	conns map[topology.NodeID]*tcpConn
}

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPTransport returns a transport with no known peers.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		addrs: make(map[topology.NodeID]string),
		conns: make(map[topology.NodeID]*tcpConn),
	}
}

// SetAddr registers the listen address of a peer.
func (t *TCPTransport) SetAddr(id topology.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
	if c, ok := t.conns[id]; ok {
		c.c.Close()
		delete(t.conns, id)
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	conn, ok := t.conns[to]
	if !ok {
		addr, known := t.addrs[to]
		if !known {
			return fmt.Errorf("live: no address for node %d", to)
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("live: dial node %d: %w", to, err)
		}
		conn = &tcpConn{c: c, enc: gob.NewEncoder(c)}
		t.conns[to] = conn
	}
	if err := conn.enc.Encode(env); err != nil {
		conn.c.Close()
		delete(t.conns, to)
		return fmt.Errorf("live: send to node %d: %w", to, err)
	}
	return nil
}

// Close shuts all pooled connections.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, c := range t.conns {
		c.c.Close()
		delete(t.conns, id)
	}
}

// Listen starts a TCP listener that decodes envelopes into deliver.
// It returns the bound address and a stop function.
func Listen(addr string, deliver func(Envelope)) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		done  = make(chan struct{})
	)
	track := func(c net.Conn) bool {
		mu.Lock()
		defer mu.Unlock()
		select {
		case <-done:
			return false
		default:
		}
		conns[c] = struct{}{}
		return true
	}
	untrack := func(c net.Conn) {
		mu.Lock()
		delete(conns, c)
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if !track(conn) {
				conn.Close()
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer untrack(c)
				defer c.Close()
				dec := gob.NewDecoder(c)
				for {
					var env Envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					deliver(env)
				}
			}(conn)
		}
	}()
	stop := func() {
		mu.Lock()
		close(done)
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		ln.Close()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}
