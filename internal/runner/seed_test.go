package runner

import (
	"testing"

	"repro/internal/rng"
)

// DeriveSeed is a cross-PR stability contract: every experiment cell's
// seed — and therefore every number in every cells.json — is a pure
// function of (base seed, labels). These tests pin the exact mapping so
// an accidental change to the hash (which would silently shift every
// artifact while still "looking deterministic") fails loudly.
//
// The derivation composes with internal/rng: DeriveSeed's splitmix64
// finalizer is the same mixer rng.Stream steps with, so feeding a
// derived seed into rng.New yields a stream independent of (and
// non-overlapping with, in practice) every other label's stream.

// TestDeriveSeedGolden pins the derivation for the seeds the scale
// family (and the figure experiments) actually use. If this test fails,
// every runs/<name>/cells.json changes identity: bump artifacts
// deliberately or fix the regression.
func TestDeriveSeedGolden(t *testing.T) {
	cases := []struct {
		base   uint64
		labels []string
		want   uint64
	}{
		{1, nil, 0x5ca6bbcbb1e85355},
		{1, []string{"scale", "n1000"}, 0x2f4c4934accbfc4f},
		{1, []string{"scale", "n10000"}, 0x5ae740e3e5db50f2},
		{1, []string{"scale", "n100000"}, 0xb25eb129315d03d9},
		{1, []string{"fig1", "static"}, 0x82e2b707dba72b84},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.labels...); got != c.want {
			t.Errorf("DeriveSeed(%d, %v) = %#x, want %#x", c.base, c.labels, got, c.want)
		}
	}
}

// TestDeriveSeedLengthPrefixing asserts the label framing: ("ab","c")
// and ("a","bc") concatenate identically but must hash differently
// (labels are length-prefixed byte streams, not joined strings).
func TestDeriveSeedLengthPrefixing(t *testing.T) {
	a := DeriveSeed(7, "ab", "c")
	b := DeriveSeed(7, "a", "bc")
	if a == b {
		t.Fatalf("DeriveSeed collides across label boundaries: %#x", a)
	}
	// Pin both so the framing itself is part of the contract.
	if a != 0x2a01a28e5711672d || b != 0xf3f29108a155f835 {
		t.Errorf("framing outputs moved: got %#x / %#x", a, b)
	}
}

// TestDeriveSeedNeverZero: 0 is a degenerate seed for some generators;
// the derivation promises to avoid it.
func TestDeriveSeedNeverZero(t *testing.T) {
	for base := uint64(0); base < 64; base++ {
		if DeriveSeed(base) == 0 || DeriveSeed(base, "x") == 0 {
			t.Fatalf("DeriveSeed produced 0 at base %d", base)
		}
	}
}

// TestDeriveSeedFeedsRNG is the cross-package regression test: a
// derived seed fed into rng.New must yield the pinned stream prefix.
// Together with TestDeriveSeedGolden this freezes the full path from
// (base seed, cell labels) to the random numbers a cell consumes —
// which is exactly why scale cells are identical at any worker count:
// nothing on this path can observe scheduling.
func TestDeriveSeedFeedsRNG(t *testing.T) {
	s := rng.New(DeriveSeed(1, "scale", "n1000"))
	if got := s.Uint64(); got != 0x2a6451078f08648f {
		t.Errorf("first output = %#x, want 0x2a6451078f08648f", got)
	}
	if got := s.Uint64(); got != 0xa240f4482604b92c {
		t.Errorf("second output = %#x, want 0xa240f4482604b92c", got)
	}
}

// TestDeriveSeedIndependence: distinct cells of one experiment, and the
// same cell under distinct base seeds, all get distinct seeds.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64][]string{}
	for _, base := range []uint64{1, 2, 3} {
		for _, exp := range []string{"scale", "fig1", "fig2"} {
			for _, cell := range []string{"n1000", "n10000", "static", "dynamic"} {
				s := DeriveSeed(base, exp, cell)
				key := []string{exp, cell}
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: base %d %v vs %v", base, key, prev)
				}
				seen[s] = key
			}
		}
	}
}
