package faults

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/stats"
	"repro/internal/topology"
)

// sink records delivered envelopes.
type sink struct {
	mu   sync.Mutex
	got  []live.Envelope
	dest []topology.NodeID
}

func (s *sink) Send(to topology.NodeID, env live.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, env)
	s.dest = append(s.dest, to)
	return nil
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func TestDecisionTraceDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.2, Dup: 0.1, Reorder: 0.05}
	a := Wrap(&sink{}, cfg)
	b := Wrap(&sink{}, cfg)
	ta := a.DecisionTrace(3, 7, 200)
	tb := b.DecisionTrace(3, 7, 200)
	if ta != tb {
		t.Fatalf("same (seed, link) produced different traces:\n%s\n%s", ta, tb)
	}
	if !strings.ContainsRune(ta, 'D') {
		t.Fatalf("no drops in 200 decisions at rate 0.2: %s", ta)
	}
	// A different link draws an independent stream.
	if other := a.DecisionTrace(7, 3, 200); other == ta {
		t.Fatal("reverse link reproduced the forward link's trace")
	}
	// A different seed changes the pattern.
	c := Wrap(&sink{}, Config{Seed: 43, Drop: 0.2, Dup: 0.1, Reorder: 0.05})
	if tc := c.DecisionTrace(3, 7, 200); tc == ta {
		t.Fatal("different seed reproduced the trace")
	}
}

func TestDropRateEmpirical(t *testing.T) {
	const n, rate = 20000, 0.1
	s := &sink{}
	tr := Wrap(s, Config{Seed: 7, Drop: rate})
	for i := 0; i < n; i++ {
		if err := tr.Send(2, live.Envelope{From: 1}); err != nil {
			t.Fatal(err)
		}
	}
	dropped := tr.Stats().Dropped.Load()
	got := float64(dropped) / n
	if math.Abs(got-rate) > 0.01 {
		t.Fatalf("empirical drop rate %v, want %v ± 0.01", got, rate)
	}
	if s.count() != n-int(dropped) {
		t.Fatalf("delivered %d, want %d", s.count(), n-int(dropped))
	}
}

func TestCrashAndPartitionBlockTraffic(t *testing.T) {
	s := &sink{}
	tr := Wrap(s, Config{Seed: 1})
	tr.Crash(5)
	_ = tr.Send(5, live.Envelope{From: 1}) // to crashed
	_ = tr.Send(2, live.Envelope{From: 5}) // from crashed
	if s.count() != 0 {
		t.Fatalf("crashed node exchanged %d messages", s.count())
	}
	if got := tr.Crashed(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Crashed() = %v", got)
	}
	tr.Restart(5)
	_ = tr.Send(5, live.Envelope{From: 1})
	if s.count() != 1 {
		t.Fatal("restart did not unblock traffic")
	}

	tr.Partition([][]topology.NodeID{{1, 2}, {3, 4}})
	_ = tr.Send(3, live.Envelope{From: 1}) // cross-partition: blocked
	_ = tr.Send(2, live.Envelope{From: 1}) // same side: delivered
	_ = tr.Send(9, live.Envelope{From: 1}) // ungrouped node: blocked
	if s.count() != 2 {
		t.Fatalf("partition delivered %d messages, want 2", s.count())
	}
	tr.Heal()
	_ = tr.Send(3, live.Envelope{From: 1})
	if s.count() != 3 {
		t.Fatal("heal did not restore cross-partition traffic")
	}
	if b := tr.Stats().Blocked.Load(); b != 4 {
		t.Fatalf("Blocked = %d, want 4", b)
	}
}

func TestDuplicationDelivers(t *testing.T) {
	s := &sink{}
	tr := Wrap(s, Config{Seed: 11, Dup: 0.5})
	const n = 1000
	for i := 0; i < n; i++ {
		_ = tr.Send(2, live.Envelope{From: 1})
	}
	dups := int(tr.Stats().Duplicated.Load())
	if dups == 0 {
		t.Fatal("no duplicates at rate 0.5")
	}
	if s.count() != n+dups {
		t.Fatalf("delivered %d, want %d", s.count(), n+dups)
	}
}

func TestReorderEventuallyDelivers(t *testing.T) {
	s := &sink{}
	tr := Wrap(s, Config{Seed: 3, Reorder: 0.3, ReorderDelay: time.Millisecond})
	const n = 200
	for i := 0; i < n; i++ {
		_ = tr.Send(2, live.Envelope{From: 1})
	}
	if tr.Stats().Reordered.Load() == 0 {
		t.Fatal("no reorders at rate 0.3")
	}
	deadline := time.After(2 * time.Second)
	for s.count() < n {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d messages delivered", s.count(), n)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Drop: 1},
		{Dup: -0.1},
		{Reorder: 2},
		{DelayMin: 2 * time.Millisecond, DelayMax: time.Millisecond},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", c)
		}
	}
	if err := (Config{Seed: 1, Drop: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// fixedPolicy always forwards to the same targets.
type fixedPolicy struct{ to []topology.NodeID }

func (p fixedPolicy) Select(_ *core.Query, _, _ topology.NodeID, _ []topology.NodeID, _ *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	return append(dst, p.to...)
}
func (p fixedPolicy) Name() string { return "fixed" }

func TestLossyPolicyDeterministicAndRated(t *testing.T) {
	inner := fixedPolicy{to: []topology.NodeID{10, 11, 12, 13}}
	mk := func() *LossyPolicy { return NewLossyPolicy(inner, 0.25, 99) }
	run := func(p *LossyPolicy) []int {
		q := &core.Query{}
		counts := make([]int, 0, 512)
		for i := 0; i < 512; i++ {
			sel := p.Select(q, topology.NodeID(i%8), topology.None, nil, nil, nil)
			counts = append(counts, len(sel))
		}
		return counts
	}
	a, b := run(mk()), run(mk())
	total, kept := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d diverged: %d vs %d", i, a[i], b[i])
		}
		total += len(inner.to)
		kept += a[i]
	}
	rate := 1 - float64(kept)/float64(total)
	if math.Abs(rate-0.25) > 0.05 {
		t.Fatalf("empirical lossy rate %v, want 0.25 ± 0.05", rate)
	}
	// Reset rewinds the streams: a replay matches the first run.
	p := mk()
	first := run(p)
	p.Reset()
	second := run(p)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Reset replay diverged at %d", i)
		}
	}
	if name := p.Name(); name != "lossy(fixed,0.25)" {
		t.Fatalf("Name() = %q", name)
	}
}

func TestLossyPolicyZeroRatePassthrough(t *testing.T) {
	inner := fixedPolicy{to: []topology.NodeID{1, 2, 3}}
	p := NewLossyPolicy(inner, 0, 5)
	sel := p.Select(&core.Query{}, 0, topology.None, nil, nil, nil)
	if len(sel) != 3 {
		t.Fatalf("zero-rate policy dropped targets: %v", sel)
	}
}
