package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestTouchCreatesOnce(t *testing.T) {
	l := NewLedger()
	a := l.Touch(1)
	b := l.Touch(1)
	if a != b {
		t.Fatal("Touch must return the same record")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestGetMissingIsNil(t *testing.T) {
	if NewLedger().Get(5) != nil {
		t.Fatal("Get on missing peer must be nil")
	}
}

func TestReset(t *testing.T) {
	l := NewLedger()
	l.Touch(1).Benefit = 10
	l.Reset(1)
	if l.Get(1) != nil {
		t.Fatal("Reset must erase the record")
	}
}

func TestMeanLatency(t *testing.T) {
	r := &Record{}
	if r.MeanLatency() != 0 {
		t.Fatal("empty record mean latency must be 0")
	}
	r.Replies = 4
	r.LatencySum = 2.0
	if r.MeanLatency() != 0.5 {
		t.Fatalf("mean latency %v", r.MeanLatency())
	}
}

func TestPeersSorted(t *testing.T) {
	l := NewLedger()
	for _, id := range []topology.NodeID{5, 1, 9, 3} {
		l.Touch(id)
	}
	got := l.Peers()
	want := []topology.NodeID{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers = %v", got)
		}
	}
}

func TestDecay(t *testing.T) {
	l := NewLedger()
	r := l.Touch(1)
	r.Benefit, r.LatencySum, r.CostSaved = 10, 4, 8
	r.Hits = 3
	l.Decay(0.5)
	if r.Benefit != 5 || r.LatencySum != 2 || r.CostSaved != 4 {
		t.Fatalf("decay wrong: %+v", r)
	}
	if r.Hits != 3 {
		t.Fatal("decay must not touch integer counters")
	}
}

func TestDecayPanicsOutOfRange(t *testing.T) {
	for _, f := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Decay(%v) did not panic", f)
				}
			}()
			NewLedger().Decay(f)
		}()
	}
}

func TestBenefitImplementations(t *testing.T) {
	r := &Record{Benefit: 7, Hits: 3, Replies: 2, LatencySum: 1.0, CostSaved: 11}
	cases := []struct {
		b    Benefit
		want float64
	}{
		{Cumulative{}, 7},
		{HitCount{}, 3},
		{HitsPerLatency{}, 3 / 0.5},
		{CostSaved{}, 11},
	}
	for _, tc := range cases {
		if got := tc.b.Score(r); got != tc.want {
			t.Fatalf("%s.Score = %v, want %v", tc.b.Name(), got, tc.want)
		}
		if tc.b.Name() == "" {
			t.Fatal("benefit must have a name")
		}
	}
}

func TestHitsPerLatencyZeroLatency(t *testing.T) {
	r := &Record{Hits: 5}
	if got := (HitsPerLatency{}).Score(r); got != 5 {
		t.Fatalf("zero-latency score = %v, want hits", got)
	}
}

func TestRankDescendingWithTieBreak(t *testing.T) {
	l := NewLedger()
	l.Touch(3).Benefit = 5
	l.Touch(1).Benefit = 5
	l.Touch(2).Benefit = 9
	got := l.Rank(Cumulative{}, nil)
	if got[0].Peer != 2 || got[1].Peer != 1 || got[2].Peer != 3 {
		t.Fatalf("Rank = %v", got)
	}
}

func TestRankExcludes(t *testing.T) {
	l := NewLedger()
	l.Touch(1).Benefit = 5
	l.Touch(2).Benefit = 9
	got := l.Rank(Cumulative{}, func(id topology.NodeID) bool { return id == 2 })
	if len(got) != 1 || got[0].Peer != 1 {
		t.Fatalf("Rank with exclude = %v", got)
	}
}

func TestTopK(t *testing.T) {
	l := NewLedger()
	for i := 1; i <= 5; i++ {
		l.Touch(topology.NodeID(i)).Benefit = float64(i)
	}
	got := l.TopK(Cumulative{}, 2, nil)
	if len(got) != 2 || got[0] != 5 || got[1] != 4 {
		t.Fatalf("TopK = %v", got)
	}
	if n := len(l.TopK(Cumulative{}, 99, nil)); n != 5 {
		t.Fatalf("TopK with k>len returned %d", n)
	}
}

func TestLeast(t *testing.T) {
	l := NewLedger()
	l.Touch(1).Benefit = 5
	l.Touch(2).Benefit = 1
	l.Touch(3).Benefit = 9
	if got := l.Least(Cumulative{}, []topology.NodeID{1, 2, 3}); got != 2 {
		t.Fatalf("Least = %v", got)
	}
}

func TestLeastUnknownPeerScoresZero(t *testing.T) {
	l := NewLedger()
	l.Touch(1).Benefit = 5
	// Peer 7 has no record: score 0, must be least.
	if got := l.Least(Cumulative{}, []topology.NodeID{1, 7}); got != 7 {
		t.Fatalf("Least = %v, want unknown peer 7", got)
	}
}

func TestLeastEmpty(t *testing.T) {
	if got := NewLedger().Least(Cumulative{}, nil); got != topology.None {
		t.Fatalf("Least(empty) = %v", got)
	}
}

func TestLeastTieBreaksByID(t *testing.T) {
	l := NewLedger()
	l.Touch(4).Benefit = 1
	l.Touch(2).Benefit = 1
	if got := l.Least(Cumulative{}, []topology.NodeID{4, 2}); got != 2 {
		t.Fatalf("Least tie-break = %v, want 2", got)
	}
}

// Property: Rank returns a permutation of the non-excluded peers in
// non-increasing score order.
func TestQuickRankSorted(t *testing.T) {
	f := func(benefits []float64) bool {
		l := NewLedger()
		for i, b := range benefits {
			l.Touch(topology.NodeID(i)).Benefit = math.Abs(b)
		}
		ranked := l.Rank(Cumulative{}, nil)
		if len(ranked) != len(benefits) {
			return false
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score > ranked[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Least always returns a member of the candidate list with a
// minimal score.
func TestQuickLeastIsMinimal(t *testing.T) {
	f := func(benefits []float64) bool {
		if len(benefits) == 0 {
			return true
		}
		l := NewLedger()
		cands := make([]topology.NodeID, len(benefits))
		for i, b := range benefits {
			id := topology.NodeID(i)
			cands[i] = id
			l.Touch(id).Benefit = math.Abs(b)
		}
		least := l.Least(Cumulative{}, cands)
		leastScore := l.Get(least).Benefit
		for _, id := range cands {
			if l.Get(id).Benefit < leastScore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRank(b *testing.B) {
	l := NewLedger()
	for i := 0; i < 200; i++ {
		l.Touch(topology.NodeID(i)).Benefit = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Rank(Cumulative{}, nil)
	}
}

func TestHitRatePerLatency(t *testing.T) {
	b := HitRatePerLatency{}
	if b.Score(&Record{}) != 0 {
		t.Fatal("no replies must score 0")
	}
	// 3 hits over 4 replies, mean latency 0.5s -> (3/4)/0.5 = 1.5.
	r := &Record{Hits: 3, Replies: 4, LatencySum: 2}
	if got := b.Score(r); got != 1.5 {
		t.Fatalf("score = %v, want 1.5", got)
	}
	if b.Name() == "" {
		t.Fatal("benefit must have a name")
	}
}

func TestHitRatePerLatencySmoothingDampensFlukes(t *testing.T) {
	b := HitRatePerLatency{Smoothing: 8}
	fluke := &Record{Hits: 1, Replies: 1, LatencySum: 0.5}
	steady := &Record{Hits: 40, Replies: 100, LatencySum: 50}
	if b.Score(fluke) >= b.Score(steady) {
		t.Fatalf("one-off fluke (%v) outranked steady peer (%v)",
			b.Score(fluke), b.Score(steady))
	}
}

func TestHitRatePerLatencyZeroLatency(t *testing.T) {
	b := HitRatePerLatency{}
	r := &Record{Hits: 2, Replies: 4}
	if got := b.Score(r); got != 0.5 {
		t.Fatalf("zero-latency score = %v, want raw rate 0.5", got)
	}
}
