package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/perf"
)

// TestRunTrajectory drives the history reporting path end to end: an
// empty history (all no-prior), a refused append without a label, an
// append, and a second run whose movement is computed against the
// appended point.
func TestRunTrajectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_history.json")

	rep := perf.NewReport("go-bench")
	rep.Add("BenchmarkEngineSaturation/n100k/w8", map[string]float64{
		"ns/op": 1000, "queries/sec": 4e6,
	})

	// Report against a missing history: fine, everything is no-prior.
	if err := runTrajectory(rep, path, false, "", true, 1.10); err != nil {
		t.Fatalf("report-only against missing history: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("report-only run created the history file")
	}

	// Appending needs a label.
	if err := runTrajectory(rep, path, true, "", true, 1.10); err == nil {
		t.Fatal("append without -label succeeded")
	}

	if err := runTrajectory(rep, path, true, "pr6", true, 1.10); err != nil {
		t.Fatalf("append: %v", err)
	}
	h, err := perf.ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) != 1 || h.Latest().Label != "pr6" {
		t.Fatalf("history after append: %d points, latest %q", len(h.Points), h.Latest().Label)
	}

	// A second run compares against pr6 and stacks a second point.
	rep2 := perf.NewReport("go-bench")
	rep2.Add("BenchmarkEngineSaturation/n100k/w8", map[string]float64{
		"ns/op": 900, "queries/sec": 4.4e6,
	})
	if err := runTrajectory(rep2, path, true, "pr7", true, 1.10); err != nil {
		t.Fatalf("second append: %v", err)
	}
	h, err = perf.ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) != 2 || h.Latest().Label != "pr7" {
		t.Fatalf("history after second append: %d points, latest %q", len(h.Points), h.Latest().Label)
	}
}

// TestWorkingTreeStatus builds a throwaway git repository and checks the
// dirty/clean detection the -update refusal is built on.
func TestWorkingTreeStatus(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	dir := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	if err := os.WriteFile(filepath.Join(dir, "f.txt"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	status, err := workingTreeStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if status == "" {
		t.Fatal("untracked file: tree reported clean")
	}

	git("add", "f.txt")
	git("commit", "-q", "-m", "seed")
	status, err = workingTreeStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if status != "" {
		t.Fatalf("fresh commit: tree reported dirty:\n%s", status)
	}

	if err := os.WriteFile(filepath.Join(dir, "f.txt"), []byte("y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err = workingTreeStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if status == "" {
		t.Fatal("modified tracked file: tree reported clean")
	}

	// Outside any repository the check degrades to an error — perfcheck
	// then warns and proceeds rather than hard-failing. (Some CI images
	// nest TempDir under a repository, so an error here is not required,
	// only tolerated.)
	if _, err := workingTreeStatus(t.TempDir()); err == nil {
		t.Log("temp dir sits inside a git work tree; outside-repo case not exercised")
	}
}
