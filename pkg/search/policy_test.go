package search_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/pkg/search"
)

// fullEnv satisfies every built-in family's dependencies.
func fullEnv() search.PolicyEnv {
	return search.PolicyEnv{
		Intn:    rng.New(1).Intn,
		Benefit: stats.Cumulative{},
		MayHold: func(search.NodeID, search.Key) bool { return true },
	}
}

// TestPolicyRoundTrip: every built-in ForwardPolicy's Name() resolves
// back to a policy with the same name — the property that makes
// policies config- and flag-selectable.
func TestPolicyRoundTrip(t *testing.T) {
	builtins := []core.ForwardPolicy{
		core.Flood{},
		core.RandomK{K: 2, Intn: rng.New(1).Intn},
		core.RandomK{K: 7, Intn: rng.New(1).Intn},
		core.DirectedBFT{K: 2, Benefit: stats.Cumulative{}},
		core.DirectedBFT{K: 13, Benefit: stats.HitCount{}},
		core.DigestGuided{MayHold: func(search.NodeID, search.Key) bool { return true }},
	}
	for _, p := range builtins {
		name := p.Name()
		got, err := search.PolicyByName(name, fullEnv())
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if got.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q, want round-trip", name, got.Name())
		}
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	for _, name := range []string{"", "gossip", "flood-2", "random-x", "random--3", "directed-bft-0"} {
		if _, err := search.PolicyByName(name, fullEnv()); err == nil {
			t.Errorf("PolicyByName(%q) succeeded, want error", name)
		}
	}
}

// TestPolicyByNameBareParameterized: a parameterized family's bare name
// errors with a hint rather than building a degenerate K=0 policy.
func TestPolicyByNameBareParameterized(t *testing.T) {
	for _, name := range []string{"random", "directed-bft"} {
		_, err := search.PolicyByName(name, fullEnv())
		if err == nil || !strings.Contains(err.Error(), "parameter") {
			t.Errorf("PolicyByName(%q) = %v, want parameter-required error", name, err)
		}
	}
}

// TestPolicyMissingEnv: families with required dependencies fail
// cleanly when the environment lacks them.
func TestPolicyMissingEnv(t *testing.T) {
	if _, err := search.PolicyByName("random-2", search.PolicyEnv{}); err == nil {
		t.Error("random-2 without Intn succeeded, want error")
	}
	if _, err := search.PolicyByName("digest-guided", search.PolicyEnv{}); err == nil {
		t.Error("digest-guided without MayHold succeeded, want error")
	}
}

// TestPolicyDefaults: directed-bft defaults its benefit to Cumulative,
// and digest-guided threads the fallback through.
func TestPolicyDefaults(t *testing.T) {
	p, err := search.PolicyByName("directed-bft-3", search.PolicyEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := p.(core.DirectedBFT); !ok || d.K != 3 || d.Benefit == nil {
		t.Errorf("directed-bft-3 resolved to %#v, want K=3 with default benefit", p)
	}
	p, err = search.PolicyByName("digest-guided", search.PolicyEnv{
		MayHold:  func(search.NodeID, search.Key) bool { return false },
		Fallback: core.Flood{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := p.(core.DigestGuided); !ok || d.Fallback == nil {
		t.Errorf("digest-guided resolved to %#v, want fallback installed", p)
	}
}

func TestRegisterPolicyDuplicatePanics(t *testing.T) {
	spec := search.PolicySpec{
		New: func(int, search.PolicyEnv) (core.ForwardPolicy, error) { return core.Flood{}, nil },
	}
	search.RegisterPolicy("test-dup-policy", spec)
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterPolicy did not panic")
		}
	}()
	search.RegisterPolicy("test-dup-policy", spec)
}

func TestRegisterPolicyInvalidPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec search.PolicySpec
	}{
		{"", search.PolicySpec{New: func(int, search.PolicyEnv) (core.ForwardPolicy, error) { return core.Flood{}, nil }}},
		{"test-nil-ctor", search.PolicySpec{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPolicy(%q) with invalid spec did not panic", tc.name)
				}
			}()
			search.RegisterPolicy(tc.name, tc.spec)
		}()
	}
}

// TestPolicyNames: families appear sorted, with parameter placeholders.
func TestPolicyNames(t *testing.T) {
	names := search.PolicyNames()
	want := map[string]bool{
		"flood": false, "random-<k>": false, "directed-bft-<k>": false, "digest-guided": false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("PolicyNames() = %v, missing %q", names, n)
		}
	}
}

// TestEngineWithPolicyResolvesRegistry: WithPolicy surfaces resolution
// errors at New, not per query.
func TestEngineWithPolicyResolvesRegistry(t *testing.T) {
	net := newTestNet(16, 3)
	if _, err := search.New(net, search.WithPolicy("no-such-policy")); err == nil {
		t.Error("New(WithPolicy(unknown)) succeeded, want error")
	}
	if _, err := search.New(net, search.WithPolicy("digest-guided")); err == nil {
		t.Error("New(WithPolicy(digest-guided)) without WithDigest succeeded, want error")
	}
	eng, err := search.New(net, search.WithPolicy("directed-bft-2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Policy().Name(); got != "directed-bft-2" {
		t.Errorf("engine policy = %q, want directed-bft-2", got)
	}
	// Stochastic families are per-query: no shared instance to expose.
	eng, err = search.New(net, search.WithPolicy("random-2"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Policy() != nil {
		t.Error("stochastic policy exposed a shared instance")
	}
}
