// Package search is the public, stable API of this repository: a
// pooled, context-aware, streaming query facade over the cascade core
// that reproduces conf_ipps_BakirasKLN03's generic search framework.
//
// Everything below pkg/search lives in internal/ packages; this package
// is the supported way in. An Engine is constructed once per network
// with functional options and is safe for concurrent use:
//
//	eng, err := search.New(net,
//	    search.WithPolicy("directed-bft-3"),
//	    search.WithTTL(7))
//
// Three call shapes cover the workloads:
//
//   - Do: one-shot — run a search to completion, return the Result.
//   - Stream: incremental — an iter.Seq2 that yields each Hit the
//     moment its reply reaches the origin; break to stop the cascade.
//   - Batch: fan-out — many queries over a bounded worker group with
//     per-query deterministic seeds, byte-identical to sequential Do
//     at any worker count.
//   - Saturate: sustained serving — N resident workers with pinned
//     scratch state drain a batched admission queue; still
//     byte-identical to sequential Do.
//
// Every call accepts a context.Context; cancellation is checked
// between cascade hops, so even 100k-node floods stop promptly.
//
// # Serving under churn
//
// A static Engine reads one topology for its whole life (a live
// Network view, or an immutable CSR snapshot via WithSnapshot). For
// workloads where the topology churns while queries are in flight,
// WithSnapshotStore binds the Engine to a topology.SnapshotStore
// instead: every query — through Do, Stream, Batch or a Saturator —
// acquires one immutable snapshot epoch, runs entirely on it, and
// tags Result.Epoch with the epoch it saw. A single writer applies
// churn deltas through the store, which re-freezes into an off-duty
// buffer and publishes by atomic pointer swap: queries never wait for
// a re-freeze, and a query's outcome is byte-identical to a quiesced
// replay against its pinned epoch. See the WithSnapshotStore and
// Engine.Saturate examples, and DESIGN.md ("Snapshot lifecycle &
// epoch reclamation") for the reclamation protocol.
//
// # Policies
//
// Forward policies — which neighbors receive a query at each hop — are
// selected by name through a registry that round-trips every built-in
// core.ForwardPolicy ("flood", "random-<k>", "directed-bft-<k>",
// "digest-guided"), making them config- and flag-selectable;
// applications register their own families with RegisterPolicy.
// WithForward bypasses the registry for policy instances carrying
// shared state.
//
// # Pooling
//
// The Engine owns a sync.Pool of core.Scratch (the cascade's flat-slice
// working memory), so a steady-state query through the facade costs the
// same small constant number of heap allocations as the expert-only
// core.RunScratch path, while returned Results are always caller-owned
// — no aliasing contract to misuse. BenchmarkEnginePooled, gated in CI
// by cmd/perfcheck, holds this property.
package search
