package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue must return nil")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue must return nil")
	}
}

func TestOrdering(t *testing.T) {
	q := New()
	times := []float64{5, 1, 3, 2, 4, 0.5, 2.5}
	for _, tm := range times {
		q.Push(tm, tm)
	}
	sort.Float64s(times)
	for i, want := range times {
		it := q.Pop()
		if it == nil || it.Time != want {
			t.Fatalf("pop %d: got %v, want %v", i, it, want)
		}
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Push(1.0, i)
	}
	for i := 0; i < 100; i++ {
		it := q.Pop()
		if it.Value.(int) != i {
			t.Fatalf("tie broken out of insertion order: got %v at pop %d", it.Value, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New()
	q.Push(1, "a")
	if q.Peek().Value != "a" || q.Len() != 1 {
		t.Fatal("Peek modified the queue")
	}
}

func TestCancel(t *testing.T) {
	q := New()
	a := q.Push(1, "a")
	b := q.Push(2, "b")
	c := q.Push(3, "c")
	if !q.Cancel(b) {
		t.Fatal("Cancel of pending item returned false")
	}
	if q.Cancel(b) {
		t.Fatal("double Cancel returned true")
	}
	if got := q.Pop(); got != a {
		t.Fatalf("got %v, want a", got.Value)
	}
	if got := q.Pop(); got != c {
		t.Fatalf("got %v, want c", got.Value)
	}
	if q.Pop() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestCancelPopped(t *testing.T) {
	q := New()
	a := q.Push(1, "a")
	q.Pop()
	if q.Cancel(a) {
		t.Fatal("Cancel of popped item returned true")
	}
}

func TestCancelNil(t *testing.T) {
	if New().Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestReschedule(t *testing.T) {
	q := New()
	a := q.Push(1, "a")
	q.Push(2, "b")
	if !q.Reschedule(a, 5) {
		t.Fatal("Reschedule of pending item failed")
	}
	if got := q.Pop().Value; got != "b" {
		t.Fatalf("after reschedule, first pop = %v, want b", got)
	}
	if got := q.Pop().Value; got != "a" {
		t.Fatalf("second pop = %v, want a", got)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	q := New()
	q.Push(1, "a")
	b := q.Push(10, "b")
	q.Reschedule(b, 0.5)
	if got := q.Pop().Value; got != "b" {
		t.Fatalf("reschedule-earlier: first pop = %v, want b", got)
	}
}

func TestReschedulePopped(t *testing.T) {
	q := New()
	a := q.Push(1, "a")
	q.Pop()
	if q.Reschedule(a, 2) {
		t.Fatal("Reschedule of popped item returned true")
	}
}

func TestRandomizedHeapProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	q := New()
	var live []*Item
	for step := 0; step < 20000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // push
			live = append(live, q.Push(r.Float64()*1000, step))
		case op < 7 && len(live) > 0: // cancel random
			i := r.Intn(len(live))
			q.Cancel(live[i])
			live = append(live[:i], live[i+1:]...)
		case op < 8 && len(live) > 0: // reschedule random
			q.Reschedule(live[r.Intn(len(live))], r.Float64()*1000)
		default: // pop
			it := q.Pop()
			if it == nil {
				continue
			}
			for i, l := range live {
				if l == it {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	// Drain and verify total order.
	prev := -1.0
	for {
		it := q.Pop()
		if it == nil {
			break
		}
		if it.Time < prev {
			t.Fatalf("heap order violated: %v after %v", it.Time, prev)
		}
		prev = it.Time
	}
}

func TestQuickDrainIsSorted(t *testing.T) {
	f := func(times []float64) bool {
		q := New()
		for _, tm := range times {
			q.Push(tm, nil)
		}
		prev := 0.0
		first := true
		for {
			it := q.Pop()
			if it == nil {
				break
			}
			if !first && it.Time < prev {
				return false
			}
			prev, first = it.Time, false
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLenMatchesPushPop(t *testing.T) {
	f := func(times []float64, cancels uint8) bool {
		q := New()
		items := make([]*Item, 0, len(times))
		for _, tm := range times {
			items = append(items, q.Push(tm, nil))
		}
		n := len(times)
		for i := 0; i < int(cancels) && i < len(items); i++ {
			if q.Cancel(items[i]) {
				n--
			}
		}
		got := 0
		for q.Pop() != nil {
			got++
		}
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(r.Float64(), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
