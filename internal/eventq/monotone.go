package eventq

import "math"

// Monotone is a calendar-queue-style bucketed priority queue for
// *monotone* event streams: every Push time must be >= the time of the
// last Pop (delays are non-negative, so a cascade's arrival times never
// run backwards). It implements exactly the (time, seq) total order of
// Queue — ties in time break by insertion order — so a consumer popping
// from a Monotone sees the same sequence it would from a binary heap,
// but pays O(1) per operation on the common paths instead of O(log n)
// sift work.
//
// The queue moves through three internal representations, always
// forward, reset per use:
//
//   - sorted run: items live in one sorted slice, appended at the tail
//     (zero and constant delay models always append — pure FIFO) or
//     binary-inserted while the frontier is small, popped from the
//     head.
//   - buckets: when an out-of-order push finds a large pending set,
//     the run is redistributed into fixed-width time buckets (width
//     calibrated from the observed hop-delay scale, re-widened
//     geometrically if outgrown); each bucket is kept sorted by
//     (time, seq) with an append fast path, and pops walk the buckets
//     in order. Monotonicity guarantees the minimum always lives in
//     the lowest non-empty bucket, so pops never search globally.
//   - heap fallback: when a push's time lands beyond maxBuckets bucket
//     widths (an unbucketable delay distribution: enormous spread or
//     near-zero span inflating 1/width), everything pending is
//     heapified once and the queue degrades to the classic binary heap
//     for the rest of the run. Order is unchanged — the heap implements
//     the same (time, seq) order — only the constant factors move.
//
// Because all three representations realize one total order, switching
// between them is invisible to the consumer: outcomes are byte-identical
// whichever representation served a given run (asserted by the
// differential tests in this package and in internal/core).
//
// A Monotone is not safe for concurrent use, exactly like Queue.
type Monotone[T any] struct {
	mode   monoMode
	seq    uint64
	size   int
	last   float64 // time of the last Pop: the monotone floor for pushes
	maxLag float64 // max (push time - last) seen: the hop-delay scale
	regrew int     // re-bucketing rounds this run (bounded; then heap)

	// Sorted-run state: run[head:] is pending, sorted by (time, seq).
	run  []monoEntry[T]
	head int

	// Bucket state. Bucket i spans [start + i*width, start + (i+1)*width);
	// buckets[i][heads[i]:] is pending, sorted by (time, seq). cur is
	// the lowest bucket that may hold pending items; [usedLo, usedHi]
	// is the range of buckets filed into this run, so short cascades
	// clear a handful of buckets at Reset, not the whole array.
	width, invWidth float64
	start           float64
	buckets         [][]monoEntry[T]
	heads           []int
	cur             int
	usedLo, usedHi  int

	// Heap-fallback state: a binary min-heap on (time, seq).
	heap []monoEntry[T]
}

type monoEntry[T any] struct {
	time float64
	seq  uint64
	v    T
}

type monoMode uint8

const (
	monoRun monoMode = iota
	monoBuckets
	monoHeap
)

// runInsertMax is the largest pending count the sorted run absorbs
// out-of-order pushes into by binary insert; beyond it, an inversion
// spills to buckets. Small frontiers (shallow TTLs, sparse fan-out)
// never leave the run, paying one short memmove instead of bucket
// bookkeeping.
const runInsertMax = 64

// bucketsPerDelay is how many buckets one delay-depth is split into
// when the queue leaves the sorted run. The delay depth (the pending
// horizon beyond the last pop) estimates the per-hop delay scale, so
// buckets hold roughly a fan-out's worth of events divided by
// bucketsPerDelay — short enough that sorted inserts are appends or
// tiny memmoves.
const bucketsPerDelay = 32

// maxBuckets bounds the bucket array; a push that would index beyond it
// triggers the heap fallback. At the default width this covers a
// cascade ~512 delay-depths deep — far beyond any TTL-bounded search —
// so only genuinely unbucketable distributions (spreads that dwarf the
// initial delay estimate) degrade.
const maxBuckets = 1 << 14

// ForceHeapQueue, when true, makes every Monotone start (at Reset/first
// use) in its binary-heap fallback. It exists for the differential
// tests asserting bucketed and heap-ordered runs produce byte-identical
// outcomes; production code never sets it.
var ForceHeapQueue bool

// NewMonotone returns an empty queue whose sorted run is pre-sized to
// hold hint items without growing; hint <= 0 allocates lazily.
func NewMonotone[T any](hint int) *Monotone[T] {
	q := &Monotone[T]{}
	if hint > 0 {
		q.run = make([]monoEntry[T], 0, hint)
	}
	q.Reset()
	return q
}

// Len returns the number of pending items.
func (q *Monotone[T]) Len() int { return q.size }

// Grow ensures the sorted run can hold at least hint items without
// reallocating — the pre-sizing hook for pooled owners (core.Scratch).
func (q *Monotone[T]) Grow(hint int) {
	if hint <= cap(q.run) {
		return
	}
	grown := make([]monoEntry[T], len(q.run), hint)
	copy(grown, q.run)
	q.run = grown
}

// Mode reports the current internal representation ("run", "buckets" or
// "heap") — observability for tests and diagnostics only.
func (q *Monotone[T]) Mode() string {
	switch q.mode {
	case monoRun:
		return "run"
	case monoBuckets:
		return "buckets"
	default:
		return "heap"
	}
}

// Reset empties the queue, retaining every backing array for reuse.
// Sequence numbers restart at zero, so a Reset queue reproduces the
// exact pop order of a fresh one for the same push sequence.
func (q *Monotone[T]) Reset() {
	q.seq = 0
	q.size = 0
	q.last = 0
	q.maxLag = 0
	q.regrew = 0
	q.run = q.run[:0]
	q.head = 0
	q.clearUsedBuckets()
	q.cur = 0
	q.heap = q.heap[:0]
	q.mode = monoRun
	if ForceHeapQueue {
		q.mode = monoHeap
	}
}

// clearUsedBuckets empties exactly the buckets filed into since the
// last clear — short cascades touch a handful, so Reset stays O(events)
// rather than O(bucket array).
func (q *Monotone[T]) clearUsedBuckets() {
	// The i < len guard keeps the zero value (usedLo == usedHi == 0
	// with no bucket array yet) safe.
	for i := q.usedLo; i <= q.usedHi && i < len(q.buckets); i++ {
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
	}
	q.usedLo, q.usedHi = maxBuckets, -1
}

// Push schedules v at time t. t must be >= the time of the last Pop
// (the monotonicity contract); violating it corrupts the pop order.
func (q *Monotone[T]) Push(t float64, v T) {
	e := monoEntry[T]{time: t, seq: q.seq, v: v}
	q.seq++
	q.size++
	if lag := t - q.last; lag > q.maxLag {
		// Pushes happen at "now" == the last popped time, so the lag is
		// the event's scheduling delay; its maximum calibrates the
		// bucket width when the sorted run ends.
		q.maxLag = lag
	}
	switch q.mode {
	case monoRun:
		n := len(q.run)
		if n == q.head || t >= q.run[n-1].time {
			q.run = append(q.run, e)
			return
		}
		if n-q.head <= runInsertMax {
			// Small frontier: a binary insert into the sorted run beats
			// any bucket machinery — one short memmove, O(1) pops.
			lo, hi := q.head, n
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if entryLess(e, q.run[mid]) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			q.run = append(q.run, monoEntry[T]{})
			copy(q.run[lo+1:], q.run[lo:])
			q.run[lo] = e
			return
		}
		q.toBuckets(e)
	case monoBuckets:
		q.bucketPush(e)
	default:
		q.heapPush(e)
	}
}

// Pop removes and returns the pending item with the least (time, seq),
// reporting ok=false when the queue is empty.
func (q *Monotone[T]) Pop() (t float64, v T, ok bool) {
	if q.size == 0 {
		var zero T
		return 0, zero, false
	}
	q.size--
	switch q.mode {
	case monoRun:
		e := q.run[q.head]
		q.head++
		if q.head == len(q.run) { // drained: reclaim the buffer in O(1)
			q.run = q.run[:0]
			q.head = 0
		}
		q.last = e.time
		return e.time, e.v, true
	case monoBuckets:
		for q.heads[q.cur] == len(q.buckets[q.cur]) {
			q.cur++
		}
		e := q.buckets[q.cur][q.heads[q.cur]]
		q.heads[q.cur]++
		q.last = e.time
		return e.time, e.v, true
	default:
		e := q.heapPop()
		q.last = e.time
		return e.time, e.v, true
	}
}

// toBuckets leaves the sorted run: the pending items plus the
// out-of-order newcomer are redistributed into buckets. The width is
// the hop-delay scale observed so far (the max push lag, necessarily
// positive when an inversion occurred) split into bucketsPerDelay
// buckets; re-bucketing widens it geometrically if the run outgrows
// the window.
func (q *Monotone[T]) toBuckets(e monoEntry[T]) {
	pending := q.run[q.head:]
	// The window floor is the monotone floor itself: no push can ever
	// land below the last popped time, so bucket indices stay >= 0 even
	// for later pushes of the same fan-out burst as e.
	q.start = q.last
	q.width = q.maxLag / bucketsPerDelay
	q.invWidth = 1 / q.width
	q.cur = maxBuckets // the first filing clamps it to its bucket
	q.mode = monoBuckets
	q.bucketPush(e)
	for _, p := range pending {
		if q.mode != monoBuckets { // a redistribution overflowed to heap
			q.heapPush(p)
			continue
		}
		q.bucketPush(p)
	}
	q.run = q.run[:0]
	q.head = 0
}

// bucketPush files e into its time bucket, keeping the bucket sorted by
// (time, seq). Out-of-window times re-bucket with a wider width, and
// genuinely unbucketable ones degrade the queue to the heap.
func (q *Monotone[T]) bucketPush(e monoEntry[T]) {
	f := (e.time - q.start) * q.invWidth
	if !(f >= 0) { // NaN-proof: catches NaN and below-window times
		q.toHeap(e)
		return
	}
	if f >= maxBuckets {
		q.rebucket(e)
		return
	}
	idx := int(f)
	for idx >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
		q.heads = append(q.heads, 0)
	}
	if idx < q.cur {
		// Monotonicity puts e no earlier than the last pop, which lived
		// in a bucket q.cur may since have advanced past; re-open it.
		q.cur = idx
	}
	if idx < q.usedLo {
		q.usedLo = idx
	}
	if idx > q.usedHi {
		q.usedHi = idx
	}
	b := q.buckets[idx]
	if cap(b) == 0 {
		// First use of this bucket: skip the 1-2-4 growth chain — the
		// steady occupancy is a fan-out's worth of events.
		b = make([]monoEntry[T], 0, 8)
	}
	if n := len(b); n == q.heads[idx] || !entryLess(e, b[n-1]) {
		q.buckets[idx] = append(b, e)
		return
	}
	// Binary insert above the bucket's pop cursor (everything below it
	// is already popped and dead).
	lo, hi := q.heads[idx], len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryLess(e, b[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b = append(b, monoEntry[T]{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	q.buckets[idx] = b
}

// maxRegrow bounds re-bucketing rounds per run; a distribution that
// keeps outgrowing geometrically widened windows is heap business.
const maxRegrow = 8

// rebucket widens the window to cover e and everything pending —
// filling half the bucket range, so the width grows at least
// geometrically — and redistributes. Distributions that defeat even
// that (or non-finite times) degrade to the heap.
func (q *Monotone[T]) rebucket(e monoEntry[T]) {
	q.regrew++
	if q.regrew > maxRegrow || math.IsInf(e.time, 0) {
		q.toHeap(e)
		return
	}
	spill := q.run[:0] // the run buffer is idle in bucket mode
	top := e.time
	for i := q.usedLo; i <= q.usedHi; i++ {
		for _, p := range q.buckets[i][q.heads[i]:] {
			if p.time > top {
				top = p.time
			}
			spill = append(spill, p)
		}
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
	}
	q.usedLo, q.usedHi = maxBuckets, -1
	q.cur = maxBuckets
	q.width = (top - q.start) / (maxBuckets / 2)
	q.invWidth = 1 / q.width
	q.bucketPush(e) // cannot overflow: top maps to maxBuckets/2
	for _, p := range spill {
		if q.mode != monoBuckets {
			q.heapPush(p)
			continue
		}
		q.bucketPush(p)
	}
	q.run = spill[:0] // keep the (possibly grown) spill capacity pooled
}

// toHeap abandons the buckets: every pending item plus e is heapified
// once and the queue runs on the binary heap from here on.
func (q *Monotone[T]) toHeap(e monoEntry[T]) {
	q.heap = append(q.heap[:0], e)
	if q.mode == monoBuckets {
		for i := q.usedLo; i <= q.usedHi; i++ {
			q.heap = append(q.heap, q.buckets[i][q.heads[i]:]...)
			q.buckets[i] = q.buckets[i][:0]
			q.heads[i] = 0
		}
		q.usedLo, q.usedHi = maxBuckets, -1
	}
	q.mode = monoHeap
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

func entryLess[T any](a, b monoEntry[T]) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Monotone[T]) heapPush(e monoEntry[T]) {
	q.heap = append(q.heap, e)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Monotone[T]) heapPop() monoEntry[T] {
	e := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return e
}

func (q *Monotone[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && entryLess(q.heap[right], q.heap[left]) {
			smallest = right
		}
		if !entryLess(q.heap[smallest], q.heap[i]) {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
