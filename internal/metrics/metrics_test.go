package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(3600)
	s.Incr(0)
	s.Incr(3599)
	s.Add(3600, 2)
	if s.Bucket(0) != 2 || s.Bucket(1) != 2 {
		t.Fatalf("buckets: %v %v", s.Bucket(0), s.Bucket(1))
	}
	if s.Bucket(-1) != 0 || s.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets must read 0")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Total() != 4 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestSeriesWindow(t *testing.T) {
	s := NewSeries(1)
	for i := 0; i < 10; i++ {
		s.Add(float64(i), 1)
	}
	if got := s.Window(2, 5); got != 3 {
		t.Fatalf("Window(2,5) = %v", got)
	}
	if got := s.Window(8, 99); got != 2 {
		t.Fatalf("Window beyond end = %v", got)
	}
	if got := s.Window(-5, 2); got != 2 {
		t.Fatalf("Window with negative from = %v", got)
	}
}

func TestSeriesValuesCopy(t *testing.T) {
	s := NewSeries(1)
	s.Incr(0)
	v := s.Values()
	v[0] = 99
	if s.Bucket(0) != 1 {
		t.Fatal("Values must return a copy")
	}
}

func TestSeriesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero width":    func() { NewSeries(0) },
		"negative time": func() { NewSeries(1).Incr(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("empty Welford must read 0")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Population variance of this classic set is 4; unbiased = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Observe(3)
	if w.Mean() != 3 || w.Var() != 0 || w.Min() != 3 || w.Max() != 3 {
		t.Fatal("single-sample aggregate wrong")
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip degenerate fuzz inputs
			}
			w.Observe(x)
			sum += x
		}
		if len(xs) > 0 {
			naive := sum / float64(len(xs))
			scale := math.Max(1, math.Abs(naive))
			ok = math.Abs(w.Mean()-naive) < 1e-6*scale
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1)
	h.Observe(99)
	if h.N() != 12 {
		t.Fatalf("N = %d", h.N())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Fatalf("out of range = %d/%d", under, over)
	}
	for i, c := range h.Counts() {
		if c != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, c)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want ~50", med)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 99 || q > 100 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero buckets": func() { NewHistogram(0, 1, 0) },
		"inverted":     func() { NewHistogram(2, 1, 4) },
		"bad quantile": func() { NewHistogram(0, 1, 4).Quantile(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 1(a)", "hour", "static", "dynamic")
	tb.AddRow(12, 1700.0, 1800.0)
	tb.AddRow(27, 1750.0, 2100.5)
	s := tb.String()
	for _, want := range []string{"Figure 1(a)", "hour", "static", "dynamic", "1700", "2100.500"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("v,1", 2)
	csv := tb.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "v;1,2") {
		t.Fatalf("CSV cell quoting wrong:\n%s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Fatalf("FormatFloat(3) = %s", FormatFloat(3))
	}
	if FormatFloat(3.14159) != "3.142" {
		t.Fatalf("FormatFloat(pi) = %s", FormatFloat(3.14159))
	}
}

func TestSampleHours(t *testing.T) {
	got := SampleHours(12, 15, 87)
	want := []int{12, 27, 42, 57, 72, 87}
	if len(got) != len(want) {
		t.Fatalf("SampleHours = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SampleHours = %v", got)
		}
	}
}

func TestSampleHoursPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("step 0 did not panic")
		}
	}()
	SampleHours(0, 0, 10)
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{1, 1, 2, 3}) {
		t.Fatal("monotone slice misjudged")
	}
	if Monotone([]float64{1, 3, 2}) {
		t.Fatal("non-monotone slice misjudged")
	}
	if !Monotone(nil) {
		t.Fatal("empty slice is monotone")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3, 5}) != 1 {
		t.Fatal("ArgMax must return first maximum")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(empty) must be -1")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 {
		t.Fatal("Median must not mutate input")
	}
}

func BenchmarkWelford(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 1000))
	}
}

func BenchmarkSeriesAdd(b *testing.B) {
	s := NewSeries(3600)
	for i := 0; i < b.N; i++ {
		s.Incr(float64(i % 345600))
	}
}
