package driver

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/search"
)

// noContent is the trivial oracle for sessions that only exercise the
// timeline.
var noContent = core.ContentFunc(func(topology.NodeID, core.Key) bool { return false })

// allContent answers everywhere.
var allContent = core.ContentFunc(func(topology.NodeID, core.Key) bool { return true })

func baseSpec(nodes int) Spec {
	return Spec{
		Nodes:    nodes,
		Relation: topology.Symmetric,
		OutCap:   4,
		InCap:    4,
		Duration: 3600,
		Content:  noContent,
	}
}

func TestSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"zero nodes":      func(s *Spec) { s.Nodes = 0 },
		"zero duration":   func(s *Spec) { s.Duration = 0 },
		"no content":      func(s *Spec) { s.Content = nil },
		"orphan arrivals": func(s *Spec) { s.Arrivals = Poisson{RatePerHour: 1} },
		"bad arrivals": func(s *Spec) {
			s.Arrivals = Poisson{}
			s.OnQuery = func(topology.NodeID, float64) {}
		},
		"bad churn": func(s *Spec) { s.Churn = &workload.ChurnConfig{MeanOnline: -1, MeanOffline: 1} },
		"bad flash": func(s *Spec) {
			s.Arrivals = FlashCrowd{BaseRatePerHour: 1, Peak: 0.5, DurationHours: 1}
			s.OnQuery = func(topology.NodeID, float64) {}
		},
	} {
		spec := baseSpec(10)
		mutate(&spec)
		if _, err := New(spec, rng.New(1)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := New(baseSpec(10), rng.New(1)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestChurnStationaryDistribution is the stationary-distribution
// property test of the session's churn bookkeeping: with on/off means
// (m_on, m_off) the time-average online fraction must converge to
// m_on/(m_on+m_off), both for the symmetric 0.5 case and an asymmetric
// split. The driver initializes nodes in the stationary distribution,
// so no warmup discard is needed.
func TestChurnStationaryDistribution(t *testing.T) {
	for _, tc := range []struct {
		name            string
		onMean, offMean float64
	}{
		{"half", 3 * 3600, 3 * 3600},
		{"three-quarters", 3 * 3600, 3600},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nodes = 300
			const horizon = 200 * 3600.0
			churn := &workload.ChurnConfig{MeanOnline: tc.onMean, MeanOffline: tc.offMean}
			spec := baseSpec(nodes)
			spec.Duration = horizon
			spec.Churn = churn

			var onTime float64
			last := make([]float64, nodes)
			wasOn := make([]bool, nodes)
			track := func(id topology.NodeID, on bool, now float64) {
				if wasOn[id] {
					onTime += now - last[id]
				}
				wasOn[id] = on
				last[id] = now
			}
			// Hooks fire only once Run starts, after s is bound.
			var s *Session
			spec.OnLogin = func(id topology.NodeID) { track(id, true, s.Now()) }
			spec.OnLogoff = func(id topology.NodeID, now float64) { track(id, false, now) }
			s, err := New(spec, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			for i := 0; i < nodes; i++ {
				if wasOn[i] {
					onTime += horizon - last[i]
				}
				if wasOn[i] != s.IsOnline(topology.NodeID(i)) {
					t.Fatalf("node %d hook state diverged from session mask", i)
				}
			}
			want := churn.StationaryOnlineProbability()
			got := onTime / (nodes * horizon)
			if math.Abs(got-want) > 0.02 {
				t.Fatalf("online fraction %v, want ~%v", got, want)
			}
			if s.Logins() == 0 || s.Logoffs() == 0 {
				t.Fatalf("no transitions counted: %d/%d", s.Logins(), s.Logoffs())
			}
		})
	}
}

// TestPoissonMatchesScheduleQueries pins the wrapper's draw-for-draw
// equivalence with the historical inline arrival loops: same stream,
// same fire times.
func TestPoissonMatchesScheduleQueries(t *testing.T) {
	const horizon = 50 * 3600.0
	runA := func() []float64 {
		e := sim.New()
		e.SetHorizon(horizon)
		var fires []float64
		resume := Poisson{RatePerHour: 4}.Schedule(e, rng.New(42),
			func() bool { return true },
			func(now float64) { fires = append(fires, now) })
		resume()
		e.RunUntil(horizon)
		return fires
	}
	e := sim.New()
	e.SetHorizon(horizon)
	var fires []float64
	resume := workload.ScheduleQueries(e, rng.New(42), workload.QueryConfig{RatePerHour: 4},
		func() bool { return true },
		func(now float64) { fires = append(fires, now) })
	resume()
	e.RunUntil(horizon)

	got := runA()
	if len(got) != len(fires) {
		t.Fatalf("fire counts diverged: %d vs %d", len(got), len(fires))
	}
	for i := range got {
		if got[i] != fires[i] {
			t.Fatalf("fire %d diverged: %v vs %v", i, got[i], fires[i])
		}
	}
}

// TestFlashCrowdRampsRate checks the thinning sampler: the in-window
// arrival rate must be about Peak times the off-window rate, and the
// process must suspend/resume like every arrival process.
func TestFlashCrowdRampsRate(t *testing.T) {
	f := FlashCrowd{BaseRatePerHour: 10, Peak: 5, StartHour: 100, DurationHours: 100}
	const horizon = 300 * 3600.0
	e := sim.New()
	e.SetHorizon(horizon)
	var inWindow, outWindow int
	resume := f.Schedule(e, rng.New(7),
		func() bool { return true },
		func(now float64) {
			if f.InWindow(now) {
				inWindow++
			} else {
				outWindow++
			}
		})
	resume()
	e.RunUntil(horizon)

	// 100h in-window at 50/h vs 200h off-window at 10/h.
	ratio := float64(inWindow) / 100 / (float64(outWindow) / 200)
	if math.Abs(ratio-5) > 0.5 {
		t.Fatalf("in/out rate ratio %v, want ~5 (in %d, out %d)", ratio, inWindow, outWindow)
	}
}

// TestSessionTimeline drives a small full session: placement, queries,
// churn bookkeeping, trace emission, search dispatch.
func TestSessionTimeline(t *testing.T) {
	const nodes = 50
	var queried int
	buf := &trace.Buffer{}
	spec := baseSpec(nodes)
	spec.Duration = 20 * 3600
	spec.Place = RandomWire(4)
	spec.Arrivals = Poisson{RatePerHour: 2}
	spec.Churn = &workload.ChurnConfig{MeanOnline: 3600, MeanOffline: 3600}
	spec.Content = allContent
	spec.TTL = 2
	spec.Trace = buf
	var s *Session
	spec.OnQuery = func(id topology.NodeID, now float64) {
		queried++
		out := s.Do(search.Query{ID: s.NextQueryID(), Key: 1, Origin: id})
		if out.Messages == 0 && s.OnlineCount() > 1 {
			// With everyone holding everything, a wired online node
			// must reach someone — unless its neighbors are offline.
			for _, nb := range s.Network().Out(id) {
				if s.IsOnline(nb) {
					t.Fatalf("query from %d with online neighbor %d sent no messages", id, nb)
				}
			}
		}
	}
	s, err := New(spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if queried == 0 {
		t.Fatal("no queries fired")
	}
	if s.Logins() == 0 || s.Logoffs() == 0 {
		t.Fatal("no churn bookkeeping")
	}
	logins := 0
	for _, ev := range buf.Events() {
		if ev.Kind == trace.KindLogin {
			logins++
		}
	}
	if uint64(logins) != s.Logins() {
		t.Fatalf("trace has %d logins, session counted %d", logins, s.Logins())
	}
	if s.Network().EdgeCount() == 0 {
		t.Fatal("placement wired nothing")
	}
}

// TestSessionWithoutChurnStartsArmed checks the no-churn path: every
// node is online from t=0 and arrival processes run immediately.
func TestSessionWithoutChurnStartsArmed(t *testing.T) {
	spec := baseSpec(20)
	spec.Arrivals = Poisson{RatePerHour: 6}
	fired := make(map[topology.NodeID]bool)
	spec.OnQuery = func(id topology.NodeID, _ float64) { fired[id] = true }
	s, err := New(spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.OnlineCount() != 20 {
		t.Fatalf("OnlineCount = %d before run", s.OnlineCount())
	}
	s.Run()
	if len(fired) < 18 {
		t.Fatalf("only %d/20 nodes fired in an hour at 6/h", len(fired))
	}
	if s.Logins() != 0 || s.Logoffs() != 0 {
		t.Fatal("no-churn session counted transitions")
	}
}

// TestQueryStreamSharedWithArrivals documents the contract that the
// application samples query content from the same per-node stream the
// arrival process draws from.
func TestQueryStreamSharedWithArrivals(t *testing.T) {
	spec := baseSpec(4)
	spec.Arrivals = Poisson{RatePerHour: 1}
	spec.OnQuery = func(topology.NodeID, float64) {}
	s, err := New(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.QueryStream(0) == s.QueryStream(1) {
		t.Fatal("nodes share a query stream")
	}
	if s.QueryStream(2) == nil || s.TopoStream() == nil || s.DelayStream() == nil {
		t.Fatal("missing streams")
	}
}
