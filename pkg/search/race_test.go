package search_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/pkg/search"
)

// TestEngineConcurrentByteIdentical hammers one shared Engine from 32
// goroutines and asserts every outcome is byte-identical to a
// sequential run of the same queries — the facade-level extension of
// the core's Scratch-reuse byte-identity property. Run under -race
// this also proves the pooled hot path is data-race free, including
// the per-query instantiation of the stochastic random-2 policy.
func TestEngineConcurrentByteIdentical(t *testing.T) {
	const (
		goroutines = 32
		queries    = 512
	)
	net := newTestNet(256, 4)
	mk := func() *search.Engine {
		eng, err := search.New(net,
			search.WithPolicy("random-2"),
			search.WithSeed(42),
			search.WithTTL(9),
			search.WithDelay(stepDelay),
			search.WithForwardWhenHit(true))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	qs := make([]search.Query, queries)
	for i := range qs {
		qs[i] = search.Query{
			ID:     uint64(i),
			Key:    search.Key(i * 5),
			Origin: search.NodeID((i * 13) % 256),
		}
	}

	// Sequential reference on a dedicated engine.
	want := make([][]byte, queries)
	ref := mk()
	for i, q := range qs {
		r, err := ref.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
	}

	// 32 goroutines share ONE engine, interleaving Do and Stream over
	// strided disjoint slices of the query list.
	shared := mk()
	got := make([][]byte, queries)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < queries; i += goroutines {
				var (
					r   search.Result
					err error
				)
				if i%4 == 3 {
					// Every fourth query goes through Stream to cover the
					// incremental path under contention.
					for h, serr := range shared.Stream(context.Background(), qs[i]) {
						if serr != nil {
							err = serr
							break
						}
						r.Hits = append(r.Hits, h)
					}
					if err == nil {
						// Stream carries only hits; fetch the full outcome
						// for the comparison via Do.
						r, err = shared.Do(context.Background(), qs[i])
					}
				} else {
					r, err = shared.Do(context.Background(), qs[i])
				}
				if err != nil {
					errs <- err
					return
				}
				got[i], err = json.Marshal(r)
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := range qs {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("query %d diverged under concurrency:\n  concurrent: %s\n  sequential: %s",
				i, got[i], want[i])
		}
	}
}

// TestEngineConcurrentBatch drives Batch from multiple goroutines at
// once (each batch its own bounded worker group) and checks agreement
// with the sequential reference.
func TestEngineConcurrentBatch(t *testing.T) {
	net := newTestNet(128, 4)
	eng, err := search.New(net,
		search.WithPolicy("random-3"),
		search.WithSeed(9),
		search.WithTTL(7),
		search.WithBatchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]search.Query, 64)
	for i := range qs {
		qs[i] = search.Query{ID: uint64(i), Key: search.Key(i * 11), Origin: search.NodeID(i % 128)}
	}
	want, err := eng.Batch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := eng.Batch(context.Background(), qs)
			if err != nil {
				t.Error(err)
				return
			}
			gotJSON, _ := json.Marshal(got)
			if string(gotJSON) != string(wantJSON) {
				t.Error("concurrent Batch diverged from reference")
			}
		}()
	}
	wg.Wait()
}
