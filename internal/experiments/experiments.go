// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4.3) plus the ablations listed in
// DESIGN.md.
//
// Each experiment decomposes into runner.Cells — one isolated
// simulation per cell — via its *Cells constructor, and reassembles
// the finished results into paper-shaped rows via its assemble
// function. The typed Fig*/ablation entry points (Fig1, Fig3a,
// DirectedBFT, ...) bundle both steps over a default worker pool; the
// CLI (cmd/repro) instead merges the cells of many experiments into
// one pooled runner.Run so the whole evaluation shards across cores.
// See EXPERIMENTS.md for the experiment ↔ paper-figure map and the
// artifact schema.
//
// Seeding: all cells of one experiment share the experiment seed, so
// static/dynamic comparisons are paired (identical workload streams) —
// the paper's methodology. Cells never draw seeds from shared state at
// run time, which is what keeps results independent of the worker
// count.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/runner"
)

// Scale selects the experiment size.
type Scale uint8

const (
	// Full is the paper's scale: 2,000 users, 200,000 songs, 4 days.
	Full Scale = iota
	// CI is a 10x-reduced scale with the same shape: 200 users, 20,000
	// songs, 24 hours. Suitable for tests and benchmarks.
	CI
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Full:
		return "full"
	case CI:
		return "ci"
	default:
		return fmt.Sprintf("Scale(%d)", uint8(s))
	}
}

// ParseScale converts a CLI flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "full":
		return Full, nil
	case "ci":
		return CI, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want full or ci)", s)
	}
}

// config returns the mode/TTL configuration at the given scale.
func (s Scale) config(mode gnutella.Mode, ttl int, seed uint64) gnutella.Config {
	var c gnutella.Config
	if s == Full {
		c = gnutella.DefaultConfig(mode, ttl)
	} else {
		c = gnutella.CIConfig(mode, ttl)
	}
	c.Seed = seed
	return c
}

// reportHours returns the paper's sampling hours for the scale: from
// steady state to the end in five steps (full scale: 12, 27, 42, 57,
// 72, 87).
func (s Scale) reportHours() []int {
	if s == Full {
		return metrics.SampleHours(12, 15, 87)
	}
	return metrics.SampleHours(3, 4, 23)
}

// warmupHours returns the steady-state cutoff (results before it are
// discarded, "we present the results after the 12th hour").
func (s Scale) warmupHours() int {
	if s == Full {
		return 12
	}
	return 3
}

// GnutellaSummary is the JSON-stable output of one gnutella cell: the
// hourly series plus the scalar aggregates every figure and ablation
// is assembled from. This is the `value` schema of gnutella cells in
// runs/<name>/cells.json (see EXPERIMENTS.md).
type GnutellaSummary struct {
	// HitsHourly and QueryMsgsHourly are the per-simulated-hour series
	// behind Figures 1 and 2.
	HitsHourly      []float64 `json:"hits_hourly"`
	QueryMsgsHourly []uint64  `json:"query_msgs_hourly"`
	// HitsTotal and QueryMsgsTotal are whole-run totals.
	HitsTotal      float64 `json:"hits_total"`
	QueryMsgsTotal uint64  `json:"query_msgs_total"`
	// FirstResultMsMean is the mean first-result delay over satisfied
	// queries, in milliseconds (Figure 3(a)'s y-axis).
	FirstResultMsMean float64 `json:"first_result_ms_mean"`
	// TotalResults counts every obtained result (Figure 3(a)
	// annotations).
	TotalResults uint64 `json:"total_results"`
	// Reconfigurations counts neighborhood changes.
	Reconfigurations uint64 `json:"reconfigurations"`
}

// summarizeGnutella projects run metrics onto the JSON-stable form.
func summarizeGnutella(m *gnutella.Metrics) *GnutellaSummary {
	return &GnutellaSummary{
		HitsHourly:        m.Hits.Values(),
		QueryMsgsHourly:   m.Meter.Series(netsim.MsgQuery),
		HitsTotal:         m.Hits.Total(),
		QueryMsgsTotal:    m.Meter.Total(netsim.MsgQuery),
		FirstResultMsMean: m.FirstResultDelay.Mean() * 1000,
		TotalResults:      m.TotalResults,
		Reconfigurations:  m.Reconfigurations,
	}
}

// gnutellaCell wraps one gnutella configuration as a runner cell.
func gnutellaCell(experiment, name string, cfg gnutella.Config) runner.Cell {
	return runner.Cell{
		Experiment: experiment,
		Name:       name,
		Seed:       cfg.Seed,
		Run: func(_ context.Context, seed uint64) (any, error) {
			c := cfg
			c.Seed = seed
			return summarizeGnutella(gnutella.New(c).Run()), nil
		},
	}
}

// runLocal executes cells on the default pool (GOMAXPROCS workers) and
// panics on any cell failure — the typed Fig* wrappers keep the
// crash-loudly contract the package always had. The CLI drives the
// runner directly and handles failures gracefully instead.
func runLocal(cells []runner.Cell) []runner.Result {
	rs, _ := runner.Run(context.Background(), cells, runner.Options{})
	if err := runner.FirstError(rs); err != nil {
		panic(err)
	}
	return rs
}

// must unwraps an assemble result inside the typed wrappers.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// gnutellaValue extracts the summary of result i, validating shape.
func gnutellaValue(rs []runner.Result, i int) (*GnutellaSummary, error) {
	if i >= len(rs) {
		return nil, fmt.Errorf("experiments: missing cell %d (have %d results)", i, len(rs))
	}
	if rs[i].Err != "" {
		return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", rs[i].Experiment, rs[i].Cell, rs[i].Err)
	}
	g, ok := rs[i].Value.(*GnutellaSummary)
	if !ok {
		return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *GnutellaSummary",
			rs[i].Experiment, rs[i].Cell, rs[i].Value)
	}
	return g, nil
}

// bucketF and bucketU index an hourly series like metrics.Series
// (out-of-range buckets read as zero).
func bucketF(s []float64, b int) float64 {
	if b < 0 || b >= len(s) {
		return 0
	}
	return s[b]
}

func bucketU(s []uint64, b int) uint64 {
	if b < 0 || b >= len(s) {
		return 0
	}
	return s[b]
}

// windowF sums buckets [from, to).
func windowF(s []float64, from, to int) float64 {
	t := 0.0
	for b := from; b < to && b < len(s); b++ {
		if b >= 0 {
			t += s[b]
		}
	}
	return t
}

// HourlyRow is one sampled hour of a Figures 1/2 series.
type HourlyRow struct {
	Hour                    int
	StaticHits, DynamicHits float64
	StaticMsgs, DynamicMsgs float64
}

// FigSeries is the output of a Figure 1 or Figure 2 run.
type FigSeries struct {
	TTL  int
	Rows []HourlyRow
	// Totals over the post-warmup window.
	StaticHitsTotal, DynamicHitsTotal float64
	StaticMsgsTotal, DynamicMsgsTotal float64
}

// HitsTable renders the hits series (Figure 1(a) / 2(a)).
func (f *FigSeries) HitsTable(name string) *metrics.Table {
	t := metrics.NewTable(name, "hour", "Gnutella", "Dynamic_Gnutella")
	for _, r := range f.Rows {
		t.AddRow(r.Hour, r.StaticHits, r.DynamicHits)
	}
	return t
}

// MsgsTable renders the overhead series (Figure 1(b) / 2(b)).
func (f *FigSeries) MsgsTable(name string) *metrics.Table {
	t := metrics.NewTable(name, "hour", "Gnutella", "Dynamic_Gnutella")
	for _, r := range f.Rows {
		t.AddRow(r.Hour, r.StaticMsgs, r.DynamicMsgs)
	}
	return t
}

// FigHourlyCells returns the two paired cells (static, dynamic) of a
// Figure 1/2 experiment.
func FigHourlyCells(experiment string, scale Scale, ttl int, seed uint64) []runner.Cell {
	return []runner.Cell{
		gnutellaCell(experiment, "static", scale.config(gnutella.Static, ttl, seed)),
		gnutellaCell(experiment, "dynamic", scale.config(gnutella.Dynamic, ttl, seed)),
	}
}

// AssembleFigSeries builds the hourly series from the results of
// FigHourlyCells.
func AssembleFigSeries(scale Scale, ttl int, rs []runner.Result) (*FigSeries, error) {
	sm, err := gnutellaValue(rs, 0)
	if err != nil {
		return nil, err
	}
	dm, err := gnutellaValue(rs, 1)
	if err != nil {
		return nil, err
	}
	out := &FigSeries{TTL: ttl}
	for _, h := range scale.reportHours() {
		out.Rows = append(out.Rows, HourlyRow{
			Hour:        h,
			StaticHits:  bucketF(sm.HitsHourly, h),
			DynamicHits: bucketF(dm.HitsHourly, h),
			StaticMsgs:  float64(bucketU(sm.QueryMsgsHourly, h)),
			DynamicMsgs: float64(bucketU(dm.QueryMsgsHourly, h)),
		})
	}
	from := scale.warmupHours()
	end := len(sm.HitsHourly)
	if l := len(dm.HitsHourly); l > end {
		end = l
	}
	out.StaticHitsTotal = windowF(sm.HitsHourly, from, end)
	out.DynamicHitsTotal = windowF(dm.HitsHourly, from, end)
	for b := from; b < end; b++ {
		out.StaticMsgsTotal += float64(bucketU(sm.QueryMsgsHourly, b))
		out.DynamicMsgsTotal += float64(bucketU(dm.QueryMsgsHourly, b))
	}
	return out, nil
}

// FigHourly runs the Figure 1 (ttl=2) or Figure 2 (ttl=4) experiment:
// hits per hour and query messages per hour for both variants.
func FigHourly(scale Scale, ttl int, seed uint64) *FigSeries {
	cells := FigHourlyCells(fmt.Sprintf("fig-ttl%d", ttl), scale, ttl, seed)
	return must(AssembleFigSeries(scale, ttl, runLocal(cells)))
}

// Fig1 is Figure 1: hops = 2.
func Fig1(scale Scale, seed uint64) *FigSeries { return FigHourly(scale, 2, seed) }

// Fig2 is Figure 2: hops = 4.
func Fig2(scale Scale, seed uint64) *FigSeries { return FigHourly(scale, 4, seed) }

// Fig3aRow is one TTL column of Figure 3(a).
type Fig3aRow struct {
	TTL int
	// Mean delay (milliseconds, as the paper's y-axis) from query issue
	// to first result, over satisfied queries.
	StaticDelayMs, DynamicDelayMs float64
	// Total results obtained over the whole run (the numbers printed
	// above the paper's columns).
	StaticResults, DynamicResults uint64
}

// fig3aTTLs is the x-axis of Figure 3(a).
var fig3aTTLs = []int{1, 2, 3, 4}

// Fig3aCells returns the eight cells of the response-time experiment:
// TTL ∈ {1, 2, 3, 4}, both variants, pairwise ordered (static, dynamic).
func Fig3aCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	var cells []runner.Cell
	for _, ttl := range fig3aTTLs {
		cells = append(cells,
			gnutellaCell(experiment, fmt.Sprintf("static-ttl%d", ttl), scale.config(gnutella.Static, ttl, seed)),
			gnutellaCell(experiment, fmt.Sprintf("dynamic-ttl%d", ttl), scale.config(gnutella.Dynamic, ttl, seed)),
		)
	}
	return cells
}

// AssembleFig3a builds the rows from the results of Fig3aCells.
func AssembleFig3a(rs []runner.Result) ([]Fig3aRow, error) {
	rows := make([]Fig3aRow, len(fig3aTTLs))
	for i, ttl := range fig3aTTLs {
		sm, err := gnutellaValue(rs, 2*i)
		if err != nil {
			return nil, err
		}
		dm, err := gnutellaValue(rs, 2*i+1)
		if err != nil {
			return nil, err
		}
		rows[i] = Fig3aRow{
			TTL:            ttl,
			StaticDelayMs:  sm.FirstResultMsMean,
			DynamicDelayMs: dm.FirstResultMsMean,
			StaticResults:  sm.TotalResults,
			DynamicResults: dm.TotalResults,
		}
	}
	return rows, nil
}

// Fig3a runs the response-time experiment: TTL ∈ {1, 2, 3, 4}, both
// variants.
func Fig3a(scale Scale, seed uint64) []Fig3aRow {
	return must(AssembleFig3a(runLocal(Fig3aCells("fig3a", scale, seed))))
}

// Fig3aTable renders Figure 3(a).
func Fig3aTable(rows []Fig3aRow) *metrics.Table {
	t := metrics.NewTable("Figure 3(a): average response time for first result",
		"hops", "Gnutella delay (ms)", "Dynamic delay (ms)", "Gnutella results", "Dynamic results")
	for _, r := range rows {
		t.AddRow(r.TTL, r.StaticDelayMs, r.DynamicDelayMs, r.StaticResults, r.DynamicResults)
	}
	return t
}

// Fig3bRow is one reconfiguration-threshold column of Figure 3(b).
type Fig3bRow struct {
	Threshold int
	// DynamicHits is the total hits over the full run at this θ.
	DynamicHits float64
	// StaticHits is the flat baseline the paper draws across the chart.
	StaticHits float64
}

// fig3bThresholds is the x-axis of Figure 3(b).
var fig3bThresholds = []int{1, 2, 4, 8, 16}

// Fig3bCells returns the six cells of the reconfiguration-threshold
// sweep: the static baseline followed by θ ∈ {1, 2, 4, 8, 16} at TTL 2.
func Fig3bCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	cells := []runner.Cell{
		gnutellaCell(experiment, "static", scale.config(gnutella.Static, 2, seed)),
	}
	for _, th := range fig3bThresholds {
		cfg := scale.config(gnutella.Dynamic, 2, seed)
		cfg.ReconfigThreshold = th
		cells = append(cells, gnutellaCell(experiment, fmt.Sprintf("dynamic-theta%d", th), cfg))
	}
	return cells
}

// AssembleFig3b builds the rows from the results of Fig3bCells.
func AssembleFig3b(rs []runner.Result) ([]Fig3bRow, error) {
	sm, err := gnutellaValue(rs, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3bRow, len(fig3bThresholds))
	for i, th := range fig3bThresholds {
		dm, err := gnutellaValue(rs, i+1)
		if err != nil {
			return nil, err
		}
		rows[i] = Fig3bRow{Threshold: th, DynamicHits: dm.HitsTotal, StaticHits: sm.HitsTotal}
	}
	return rows, nil
}

// Fig3b runs the reconfiguration-threshold sweep: θ ∈ {1, 2, 4, 8, 16}
// at TTL 2, against the static baseline.
func Fig3b(scale Scale, seed uint64) []Fig3bRow {
	return must(AssembleFig3b(runLocal(Fig3bCells("fig3b", scale, seed))))
}

// Fig3bTable renders Figure 3(b).
func Fig3bTable(rows []Fig3bRow) *metrics.Table {
	t := metrics.NewTable("Figure 3(b): effect of reconfiguration period (total hits)",
		"threshold", "Gnutella", "Dynamic_Gnutella")
	for _, r := range rows {
		t.AddRow(r.Threshold, r.StaticHits, r.DynamicHits)
	}
	return t
}
