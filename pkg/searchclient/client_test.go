package searchclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestQueryRoundTrip(t *testing.T) {
	var gotPath string
	var gotReq QueryRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		if err := json.NewDecoder(r.Body).Decode(&gotReq); err != nil {
			t.Errorf("decode request: %v", err)
		}
		json.NewEncoder(w).Encode(QueryResponse{
			Origin: 3,
			Hits:   []Hit{{Holder: 9, Hops: 2, Class: "LAN"}},
		})
	}))
	defer ts.Close()

	origin := 3
	resp, err := New(ts.URL).Query(context.Background(), QueryRequest{
		Key: 42, TTL: 3, Origin: &origin, MaxHits: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/query" {
		t.Fatalf("posted to %s, want /v1/query", gotPath)
	}
	if gotReq.Key != 42 || gotReq.TTL != 3 || gotReq.Origin == nil || *gotReq.Origin != 3 {
		t.Fatalf("request did not round-trip: %+v", gotReq)
	}
	if !resp.Found() || resp.Hits[0].Holder != 9 || resp.Hits[0].Class != "LAN" {
		t.Fatalf("response did not round-trip: %+v", resp)
	}
}

func TestErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "origin 77 not hosted here"})
	}))
	defer ts.Close()

	_, err := New(ts.URL).Query(context.Background(), QueryRequest{Key: 1})
	var se *Error
	if !asErr(err, &se) {
		t.Fatalf("got %T (%v), want *Error", err, err)
	}
	if se.Status != http.StatusBadRequest || !strings.Contains(se.Message, "not hosted") {
		t.Fatalf("error envelope not decoded: %+v", se)
	}

	// Non-JSON error bodies degrade to the raw text.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain failure", http.StatusInternalServerError)
	}))
	defer ts2.Close()
	err = New(ts2.URL).Ready(context.Background())
	if !asErr(err, &se) || se.Message != "plain failure" {
		t.Fatalf("plain error body not surfaced: %v", err)
	}
}

func TestAddrNormalization(t *testing.T) {
	if got := New("127.0.0.1:7080").base; got != "http://127.0.0.1:7080" {
		t.Fatalf("host:port base = %q", got)
	}
	if got := New("http://x:1/").base; got != "http://x:1" {
		t.Fatalf("url base = %q", got)
	}
}

func asErr(err error, target **Error) bool {
	se, ok := err.(*Error)
	if ok {
		*target = se
	}
	return ok
}
