package topology

import (
	"fmt"
	"math"
)

// CSR is a read-optimized, immutable snapshot of a network's outgoing
// adjacency in compressed-sparse-row form: one flat edge array plus an
// offsets array, so the hot path's neighbor lookup is two loads from
// two contiguous slices instead of a pointer chase through per-node
// NeighborList backing arrays scattered across the heap.
//
// The mutable Network stays the build/reconfiguration representation;
// a CSR is frozen from it (Freeze/FreezeInto) and handed to the
// simulation hot path, which runs on the snapshot until the next
// reconfiguration epoch re-freezes. Freezing is O(nodes + edges) with
// at most two allocations — FreezeInto reuses a previous snapshot's
// backing arrays, so steady-state re-freezing allocates nothing.
//
// CSR implements core.Graph's shape with every node online: liveness
// is a property of the live simulation layered on top, not of the
// frozen adjacency. Callers with churn either re-freeze when liveness
// changes or keep the Network view.
type CSR struct {
	// offsets has len(n)+1 entries; node i's outgoing neighbors are
	// edges[offsets[i]:offsets[i+1]], in the Network's insertion order.
	offsets []int32
	edges   []NodeID
}

// Freeze snapshots the network's outgoing adjacency into a fresh CSR.
func (net *Network) Freeze() *CSR {
	return net.FreezeInto(nil)
}

// FreezeInto is Freeze reusing c's backing arrays (c may be nil); it
// returns the snapshot, which is c when c had capacity. The previous
// contents of c are invalidated — slices returned by c.Out before the
// call must not be retained across it.
func (net *Network) FreezeInto(c *CSR) *CSR {
	if c == nil {
		c = &CSR{}
	}
	n := len(net.nodes)
	total := 0
	for i := range net.nodes {
		total += net.nodes[i].Out.Len()
	}
	if total > math.MaxInt32 {
		panic(fmt.Sprintf("topology: %d edges overflow CSR int32 offsets", total))
	}
	c.offsets = growCap(c.offsets, n+1)
	c.edges = growCap(c.edges, total)
	off := int32(0)
	for i := range net.nodes {
		c.offsets[i] = off
		off += int32(copy(c.edges[off:], net.nodes[i].Out.IDs()))
	}
	c.offsets[n] = off
	return c
}

// FreezeView builds a CSR from any adjacency function over n dense
// node IDs — the bridge for graph views that are not a *Network (the
// pkg/search facade's WithSnapshot uses it). out must be pure for the
// duration of the call (it is invoked twice per node: a sizing pass
// and a fill pass). Unlike Network freezes, the view is arbitrary
// caller input, so violations — a negative n, or an edge pointing
// outside [0, n), which would otherwise panic mid-cascade when that
// neighbor is popped as an arrival — are reported as errors at freeze
// time.
func FreezeView(n int, out func(id NodeID) []NodeID) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("topology: FreezeView with n=%d", n)
	}
	c := &CSR{offsets: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		total += len(out(NodeID(i)))
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("topology: %d+ edges overflow CSR int32 offsets", total)
		}
	}
	c.edges = make([]NodeID, total)
	off := int32(0)
	for i := 0; i < n; i++ {
		c.offsets[i] = off
		for _, nb := range out(NodeID(i)) {
			if nb < 0 || int(nb) >= n {
				return nil, fmt.Errorf("topology: FreezeView: node %d lists neighbor %d outside [0, %d)", i, nb, n)
			}
			c.edges[off] = nb
			off++
		}
	}
	c.offsets[n] = off
	return c, nil
}

// growCap returns s resized to length n, reusing its backing array when
// it is large enough.
func growCap[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Clone returns a deep copy with fresh backing arrays — a snapshot of
// the snapshot, immune to a later FreezeInto over the receiver.
// Epoch-replay tests use it to keep every published adjacency
// comparable after its buffer re-enters rotation.
func (c *CSR) Clone() *CSR {
	return &CSR{
		offsets: append([]int32(nil), c.offsets...),
		edges:   append([]NodeID(nil), c.edges...),
	}
}

// Len returns the number of nodes in the snapshot.
func (c *CSR) Len() int { return len(c.offsets) - 1 }

// EdgeCount returns the total number of directed edges.
func (c *CSR) EdgeCount() int { return len(c.edges) }

// Out returns node id's outgoing neighbors in the source network's
// insertion order. The slice aliases the snapshot's flat edge array;
// callers must not mutate it.
func (c *CSR) Out(id NodeID) []NodeID {
	return c.edges[c.offsets[id]:c.offsets[id+1]]
}

// Online implements core.Graph: every snapshotted node participates.
// Liveness churn belongs to the mutable layer above; re-freeze (or keep
// the Network view) when it matters.
func (c *CSR) Online(NodeID) bool { return true }

// Degree returns the outgoing degree of id.
func (c *CSR) Degree(id NodeID) int {
	return int(c.offsets[id+1] - c.offsets[id])
}
