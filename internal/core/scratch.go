package core

import "repro/internal/topology"

// Scratch is the pooled working state of one cascade or exploration.
// NodeIDs are dense 0-based indices (see topology.NodeID), so all
// per-node query state lives in flat slices indexed by node instead of
// maps: a visited check is one bounds check and one epoch compare, and
// starting a new cascade is a single counter increment instead of a
// fresh map allocation.
//
// A Scratch is owned by one caller (one simulation loop) and reused
// across cascades — the simulator in internal/gnutella carries one per
// Sim and drives hundreds of thousands of queries through it without
// per-query allocation. It is NOT safe for concurrent use; parallelism
// lives one level up, in internal/runner, where every cell owns its own
// Sim and therefore its own Scratch.
//
// Outcomes returned by RunScratch/ExploreScratch alias the Scratch's
// pooled buffers: they are valid until the next call with the same
// Scratch. Run/Explore (nil scratch) keep the historical own-everything
// semantics.
type Scratch struct {
	// epoch brands the slot arrays: a slot belongs to the current
	// cascade iff slot.epoch == epoch (and analogously idxEpoch for the
	// index-answered set). Bumping epoch invalidates every slot in O(1).
	epoch  uint32
	visits []visitSlot
	heap   arrivalHeap

	// Pooled result and working buffers, reused across cascades.
	results  []Result
	findings []Finding
	heldBuf  []Key
	fwd      []topology.NodeID
}

// visitSlot is the per-node state of the current cascade: the reverse
// route for replies plus the epoch stamps that say which cascade (if
// any) the data belongs to.
type visitSlot struct {
	epoch        uint32 // slot is visited in the cascade iff == Scratch.epoch
	idxEpoch     uint32 // node was answered for via a local index iff == Scratch.epoch
	hops         int32
	parent       topology.NodeID
	forwardDelay float64
}

// NewScratch returns a Scratch pre-sized for networks of n nodes.
// Slots grow on demand, so n is a capacity hint, not a limit; pass the
// network size to avoid growth pauses on the first cascades.
func NewScratch(n int) *Scratch {
	if n < 0 {
		n = 0
	}
	return &Scratch{visits: make([]visitSlot, n)}
}

// begin opens a new cascade: every slot of the previous one is
// invalidated by the epoch bump.
func (s *Scratch) begin() {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap after ~4e9 cascades: hard-reset stamps
		for i := range s.visits {
			s.visits[i] = visitSlot{}
		}
		s.epoch = 1
	}
	s.heap.reset()
}

// slot returns the state cell of id, growing the slot array as needed.
func (s *Scratch) slot(id topology.NodeID) *visitSlot {
	if int(id) >= len(s.visits) {
		n := int(id) + 1
		if n < 2*len(s.visits) {
			n = 2 * len(s.visits)
		}
		grown := make([]visitSlot, n)
		copy(grown, s.visits)
		s.visits = grown
	}
	return &s.visits[id]
}

// visited reports whether id was processed in the current cascade.
func (s *Scratch) visited(id topology.NodeID) bool {
	return int(id) < len(s.visits) && s.visits[id].epoch == s.epoch
}

// arrival is one in-flight copy of the query.
type arrival struct {
	time float64
	seq  uint64 // tiebreaker: push order, for deterministic pop order
	node topology.NodeID
	from topology.NodeID // forwarding neighbor (reverse-route next hop)
	hops int32
}

// arrivalHeap is a binary min-heap of arrivals keyed on (time, seq) —
// the same total order as internal/eventq, so cascades pop identical
// sequences, but stored by value in one reusable backing array: pushing
// a message costs no allocation once the heap has reached its
// high-water capacity.
type arrivalHeap struct {
	items []arrival
	seq   uint64
}

func (h *arrivalHeap) reset() {
	h.items = h.items[:0]
	h.seq = 0
}

func (h *arrivalHeap) push(t float64, node, from topology.NodeID, hops int32) {
	h.items = append(h.items, arrival{time: t, seq: h.seq, node: node, from: from, hops: hops})
	h.seq++
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// pop removes and returns the earliest arrival; ok is false when empty.
func (h *arrivalHeap) pop() (a arrival, ok bool) {
	n := len(h.items)
	if n == 0 {
		return arrival{}, false
	}
	a = h.items[0]
	h.items[0] = h.items[n-1]
	h.items = h.items[:n-1]
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return a, true
}

func (h *arrivalHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}
