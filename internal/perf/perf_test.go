package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig1-8 	       1	 185114118 ns/op	      3566 dynamic-hits	21403896 B/op	  335142 allocs/op
BenchmarkRunnerWorkers/workers=4-8 	 2	 100 ns/op	 12 B/op	 3 allocs/op
PASS
ok  	repro	0.188s
`
	rep, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(rep.Entries))
	}
	e := rep.Get("BenchmarkFig1")
	if e == nil {
		t.Fatal("BenchmarkFig1 missing (GOMAXPROCS suffix not stripped?)")
	}
	if v, _ := e.Metric("allocs/op"); v != 335142 {
		t.Errorf("allocs/op = %v, want 335142", v)
	}
	if v, _ := e.Metric("dynamic-hits"); v != 3566 {
		t.Errorf("dynamic-hits = %v, want 3566", v)
	}
	sub := rep.Get("BenchmarkRunnerWorkers/workers=4")
	if sub == nil {
		t.Fatal("sub-benchmark missing")
	}
	if v, _ := sub.Metric("B/op"); v != 12 {
		t.Errorf("sub B/op = %v, want 12", v)
	}
}

func TestParseBenchIgnoresGarbage(t *testing.T) {
	rep, err := ParseBench(strings.NewReader("BenchmarkBroken not-a-number\nBenchmarkOdd 1 5 ns/op trailing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 0 {
		t.Fatalf("got %d entries, want 0", len(rep.Entries))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rep := NewReport("go-bench")
	rep.Add("B", map[string]float64{"allocs/op": 10})
	rep.Add("A", map[string]float64{"allocs/op": 5, "ns/op": 1.5})
	path := filepath.Join(t.TempDir(), "sub", "BENCH_test.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "go-bench" || len(got.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Entries[0].Name != "A" || got.Entries[1].Name != "B" {
		t.Errorf("entries not sorted by name: %+v", got.Entries)
	}
	if v, _ := got.Entries[0].Metric("ns/op"); v != 1.5 {
		t.Errorf("ns/op = %v, want 1.5", v)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &Report{Schema: "other/v9"}
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted wrong schema")
	}
}

func TestAddMerges(t *testing.T) {
	rep := NewReport("x")
	rep.Add("A", map[string]float64{"allocs/op": 5})
	rep.Add("A", map[string]float64{"B/op": 7})
	if len(rep.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(rep.Entries))
	}
	if v, _ := rep.Get("A").Metric("allocs/op"); v != 5 {
		t.Errorf("allocs/op lost on merge")
	}
	if v, _ := rep.Get("A").Metric("B/op"); v != 7 {
		t.Errorf("B/op missing after merge")
	}
}

func TestCompare(t *testing.T) {
	base := NewReport("go-bench")
	base.Add("Stable", map[string]float64{"allocs/op": 100})
	base.Add("Worse", map[string]float64{"allocs/op": 100})
	base.Add("Gone", map[string]float64{"allocs/op": 100})
	base.Add("Zero", map[string]float64{"allocs/op": 0})
	base.Add("NoMetric", map[string]float64{"ns/op": 5})

	cur := NewReport("go-bench")
	cur.Add("Stable", map[string]float64{"allocs/op": 199}) // < 2x: fine
	cur.Add("Worse", map[string]float64{"allocs/op": 201})  // > 2x: regression
	cur.Add("Zero", map[string]float64{"allocs/op": 3})     // 0 -> 3: regression
	cur.Add("New", map[string]float64{"allocs/op": 9999})   // no baseline: ignored

	regs := Compare(base, cur, 2, "allocs/op")
	want := map[string]bool{"Worse": true, "Gone": true, "Zero": true}
	if len(regs) != len(want) {
		t.Fatalf("got %d regressions (%v), want %d", len(regs), regs, len(want))
	}
	for _, g := range regs {
		if !want[g.Entry] {
			t.Errorf("unexpected regression %v", g)
		}
		if g.String() == "" {
			t.Error("empty String()")
		}
	}
}
