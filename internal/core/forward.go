package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// ForwardPolicy chooses which outgoing neighbors receive a query at
// each propagation step — the second main parameter of Algo 1 ("the
// set of neighbors where the request should be sent to"). The paper
// names three families: send-to-all, random, and history based; the
// Directed BFT technique of Yang & Garcia-Molina is the history-based
// representative.
type ForwardPolicy interface {
	// Select returns the subset of out to forward query q to. at is the
	// forwarding node, from is the node the query arrived from (the
	// origin passes topology.None), led is the forwarding node's
	// statistics ledger (may be nil for stateless policies).
	Select(q *Query, at, from topology.NodeID, out []topology.NodeID, led *stats.Ledger) []topology.NodeID
	// Name identifies the policy in experiment output.
	Name() string
}

// dropFrom filters from and the origin out of a neighbor list, reusing
// dst (which may be nil).
func dropFrom(dst, out []topology.NodeID, q *Query, from topology.NodeID) []topology.NodeID {
	for _, n := range out {
		if n == from || n == q.Origin {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}

// Flood forwards to every outgoing neighbor except the sender — the
// Gnutella baseline behavior and the paper's case-study choice.
type Flood struct{}

// Select implements ForwardPolicy.
func (Flood) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger) []topology.NodeID {
	return dropFrom(nil, out, q, from)
}

// Name implements ForwardPolicy.
func (Flood) Name() string { return "flood" }

// RandomK forwards to at most K uniformly chosen neighbors. With K >=
// len(out) it degenerates to Flood.
type RandomK struct {
	K int
	// Intn supplies uniform integers (rng.Stream.Intn). Must be non-nil.
	Intn func(n int) int
}

// Select implements ForwardPolicy.
func (p RandomK) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger) []topology.NodeID {
	cand := dropFrom(nil, out, q, from)
	if len(cand) <= p.K {
		return cand
	}
	// Partial Fisher-Yates: choose K of len(cand).
	for i := 0; i < p.K; i++ {
		j := i + p.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return cand[:p.K]
}

// Name implements ForwardPolicy.
func (p RandomK) Name() string { return fmt.Sprintf("random-%d", p.K) }

// DirectedBFT forwards to the K most beneficial neighbors according to
// the forwarding node's own statistics — technique (ii) of [10], which
// the paper notes is orthogonal to reconfiguration and can be employed
// to further reduce query cost.
type DirectedBFT struct {
	K       int
	Benefit stats.Benefit
}

// Select implements ForwardPolicy.
func (p DirectedBFT) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, led *stats.Ledger) []topology.NodeID {
	cand := dropFrom(nil, out, q, from)
	if len(cand) <= p.K || led == nil {
		return cand
	}
	// Rank candidates by ledger benefit; unknown peers score 0.
	type scored struct {
		id    topology.NodeID
		score float64
	}
	ss := make([]scored, len(cand))
	for i, id := range cand {
		s := 0.0
		if r := led.Get(id); r != nil {
			s = p.Benefit.Score(r)
		}
		ss[i] = scored{id, s}
	}
	// Insertion sort: lists are tiny (≤ neighbor cap).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && (ss[j].score > ss[j-1].score ||
			(ss[j].score == ss[j-1].score && ss[j].id < ss[j-1].id)); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	outK := make([]topology.NodeID, p.K)
	for i := 0; i < p.K; i++ {
		outK[i] = ss[i].id
	}
	return outK
}

// Name implements ForwardPolicy.
func (p DirectedBFT) Name() string { return fmt.Sprintf("directed-bft-%d", p.K) }

// DigestGuided forwards only to neighbors whose published digest may
// contain the key ("use summary info if available", Algo 1). Bloom
// digests have no false negatives, so skipped neighbors certainly do
// not hold the key locally; Fallback (usually Flood) handles the case
// where no digest matches, so deeper nodes stay reachable.
type DigestGuided struct {
	// MayHold reports whether node id's digest admits key. Nil digests
	// (unknown peers) should return true.
	MayHold func(id topology.NodeID, key Key) bool
	// Fallback is consulted when no neighbor's digest matches; nil
	// means "forward to none".
	Fallback ForwardPolicy
}

// Select implements ForwardPolicy.
func (p DigestGuided) Select(q *Query, at, from topology.NodeID, out []topology.NodeID, led *stats.Ledger) []topology.NodeID {
	var match []topology.NodeID
	for _, n := range dropFrom(nil, out, q, from) {
		if p.MayHold(n, q.Key) {
			match = append(match, n)
		}
	}
	if len(match) == 0 && p.Fallback != nil {
		return p.Fallback.Select(q, at, from, out, led)
	}
	return match
}

// Name implements ForwardPolicy.
func (p DigestGuided) Name() string { return "digest-guided" }
