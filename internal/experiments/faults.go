package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/pkg/search"
)

// The faults experiment family measures graceful degradation of the
// search protocol itself: how much hit rate and latency a network
// loses when messages are dropped and nodes are dead, as a function of
// the forward policy. It reuses the scale family's role-partitioned
// fixture and drives the deterministic engine, injecting faults with
// the same per-link decision-stream math the live fault plane
// (internal/faults) uses — faults.LossyPolicy drops forwarded copies
// link-by-link, and a crash mask removes a seed-chosen fraction of
// nodes from routing and serving. Every cell is a pure function of its
// config: the summaries land in cells.json byte-identically at any
// worker count, while wall-clock throughput (the degraded-mode
// queries/sec headline) goes to the BENCH_faults.json side channel.

// FaultsConfig parameterizes one faults cell.
type FaultsConfig struct {
	// Nodes, Degree, the role fractions, key space and query stream
	// mirror ScaleConfig — the fixture is shared.
	Nodes            int
	Degree           int
	ProviderFraction float64
	ClientFraction   float64
	Keys             int
	KeysPerProvider  int
	Theta            float64
	Queries          int
	TTL              int
	// Policy is the base forward policy (pkg/search registry name).
	Policy string
	// Drop is the per-forwarded-copy loss probability in [0,1).
	Drop float64
	// CrashFraction of the population is dead for the whole cell:
	// removed from every policy selection and never answering.
	CrashFraction float64
	// Seed determines wiring, roles, holdings, the crash set, the loss
	// streams and the query stream.
	Seed uint64
}

// DefaultFaultsConfig returns the canonical faults cell: the scale
// family's role split at the given size, with the fault knobs zeroed.
func DefaultFaultsConfig(nodes, queries int, seed uint64) FaultsConfig {
	sc := DefaultScaleConfig(nodes, queries, seed)
	return FaultsConfig{
		Nodes:            sc.Nodes,
		Degree:           sc.Degree,
		ProviderFraction: sc.ProviderFraction,
		ClientFraction:   sc.ClientFraction,
		Keys:             sc.Keys,
		KeysPerProvider:  sc.KeysPerProvider,
		Theta:            sc.Theta,
		Queries:          sc.Queries,
		TTL:              sc.TTL,
		Policy:           "flood",
		Seed:             seed,
	}
}

// scaleConfig converts to the shared fixture's config.
func (c FaultsConfig) scaleConfig() ScaleConfig {
	return ScaleConfig{
		Nodes:            c.Nodes,
		Degree:           c.Degree,
		ProviderFraction: c.ProviderFraction,
		ClientFraction:   c.ClientFraction,
		Keys:             c.Keys,
		KeysPerProvider:  c.KeysPerProvider,
		Theta:            c.Theta,
		Queries:          c.Queries,
		TTL:              c.TTL,
		Seed:             c.Seed,
	}
}

// Validate reports configuration errors.
func (c FaultsConfig) Validate() error {
	if err := c.scaleConfig().Validate(); err != nil {
		return err
	}
	switch {
	case c.Policy == "":
		return fmt.Errorf("experiments: faults cell without a policy")
	case c.Drop < 0 || c.Drop >= 1:
		return fmt.Errorf("experiments: faults drop rate %v outside [0,1)", c.Drop)
	case c.CrashFraction < 0 || c.CrashFraction >= 0.5:
		return fmt.Errorf("experiments: faults crash fraction %v outside [0,0.5)", c.CrashFraction)
	}
	return nil
}

// FaultsSummary is the deterministic (JSON-stable) output of one
// faults cell.
type FaultsSummary struct {
	Nodes  int     `json:"nodes"`
	Policy string  `json:"policy"`
	Drop   float64 `json:"drop"`
	Crash  float64 `json:"crash_fraction"`
	// Crashed is the number of dead nodes; LiveClients the clients that
	// survived to issue queries.
	Crashed     int `json:"crashed"`
	LiveClients int `json:"live_clients"`
	Queries     int `json:"queries"`
	Hits        int `json:"hits"`
	// HitRate = Hits/Queries under the cell's faults.
	HitRate       float64 `json:"hit_rate"`
	Messages      uint64  `json:"messages"`
	ReplyMessages uint64  `json:"reply_messages"`
	MsgsPerQuery  float64 `json:"msgs_per_query"`
	VisitedMean   float64 `json:"visited_mean"`
	DelayP50Ms    float64 `json:"delay_p50_ms"`
	DelayP95Ms    float64 `json:"delay_p95_ms"`
	DelayP99Ms    float64 `json:"delay_p99_ms"`
}

// FaultsPerfSample is the wall-clock side channel of one faults cell.
type FaultsPerfSample struct {
	WallSeconds float64
	Queries     int
	Events      uint64
}

// FaultsPerf collects the non-deterministic measurements of a faults
// run, keyed by cell name. Safe for concurrent cells.
type FaultsPerf struct {
	mu      sync.Mutex
	samples map[string]FaultsPerfSample
}

// NewFaultsPerf returns an empty collector.
func NewFaultsPerf() *FaultsPerf {
	return &FaultsPerf{samples: make(map[string]FaultsPerfSample)}
}

func (p *FaultsPerf) record(cell string, s FaultsPerfSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples[cell] = s
}

// Report renders the collected samples plus the deterministic per-cell
// metrics as a BENCH_faults.json document. The degraded-mode cells'
// queries/sec is the headline the perf history tracks.
func (p *FaultsPerf) Report(rs []runner.Result) (*perf.Report, error) {
	rep := perf.NewReport("faults-experiment")
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rs {
		if r.Experiment != "faults" {
			continue
		}
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: faults cell %s failed: %s", r.Cell, r.Err)
		}
		sum, ok := r.Value.(*FaultsSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: faults cell %s has value %T", r.Cell, r.Value)
		}
		m := map[string]float64{
			"hit-rate":     sum.HitRate,
			"msgs/query":   sum.MsgsPerQuery,
			"delay_p95_ms": sum.DelayP95Ms,
		}
		if s, ok := p.samples[r.Cell]; ok && s.WallSeconds > 0 && s.Queries > 0 {
			m["queries/sec"] = float64(s.Queries) / s.WallSeconds
			m["events/sec"] = float64(s.Events) / s.WallSeconds
			m["wall_seconds"] = s.WallSeconds
		}
		rep.Add("faults/"+r.Cell, m)
	}
	return rep, nil
}

// The faults grid: every policy at every drop × crash combination.
// The zero-fault cell of each policy is the retention baseline.
var (
	faultsPolicies = []string{"flood", "random-2"}
	faultsDrops    = []float64{0, 0.05, 0.15}
	faultsCrashes  = []float64{0, 0.10}
)

// faultsNodes and faultsQueries size the grid per scale tier.
func faultsNodes(s Scale) int {
	if s == Full {
		return 20_000
	}
	return 5_000
}

func faultsQueries(s Scale) int {
	if s == Full {
		return 5_000
	}
	return 1_000
}

// faultsCellName is "<policy>-d<drop%>-c<crash%>" ("flood-d05-c10").
func faultsCellName(policy string, drop, crash float64) string {
	return fmt.Sprintf("%s-d%02d-c%02d", policy, int(drop*100+0.5), int(crash*100+0.5))
}

// FaultsCells returns the grid plus the collector that receives each
// cell's wall-clock measurements. Cells are independent, so each draws
// its own stable seed from its labels (worker-count invariant).
func FaultsCells(experiment string, scale Scale, seed uint64) ([]runner.Cell, *FaultsPerf) {
	collector := NewFaultsPerf()
	var cells []runner.Cell
	for _, policy := range faultsPolicies {
		for _, crash := range faultsCrashes {
			for _, drop := range faultsDrops {
				name := faultsCellName(policy, drop, crash)
				cfg := DefaultFaultsConfig(faultsNodes(scale), faultsQueries(scale),
					runner.DeriveSeed(seed, experiment, name))
				cfg.Policy = policy
				cfg.Drop = drop
				cfg.CrashFraction = crash
				cellName := name
				cells = append(cells, runner.Cell{
					Experiment: experiment,
					Name:       name,
					Seed:       cfg.Seed,
					Run: func(_ context.Context, cellSeed uint64) (any, error) {
						c := cfg
						c.Seed = cellSeed
						sum, sample, err := RunFaults(c)
						if err != nil {
							return nil, err
						}
						collector.record(cellName, sample)
						return sum, nil
					},
				})
			}
		}
	}
	return cells, collector
}

// downMask removes dead nodes from every policy selection: the
// engine-level analogue of the live fault plane blocking a crashed
// node's links.
type downMask struct {
	inner core.ForwardPolicy
	down  []bool
}

func (p *downMask) Select(q *core.Query, at, from topology.NodeID,
	out []topology.NodeID, led *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	sel := p.inner.Select(q, at, from, out, led, dst)
	keep := sel[:0]
	for _, t := range sel {
		if !p.down[t] {
			keep = append(keep, t)
		}
	}
	return keep
}

func (p *downMask) Name() string { return "downmask(" + p.inner.Name() + ")" }

// RunFaults executes one faults cell: the scale fixture with a
// seed-chosen crash set masked out of routing and serving, the base
// policy wrapped in deterministic per-link loss, and the query stream
// driven from the surviving clients. The summary is a pure function of
// the config.
func RunFaults(cfg FaultsConfig) (*FaultsSummary, FaultsPerfSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, FaultsPerfSample{}, err
	}
	fx, err := buildScaleFixture(cfg.scaleConfig())
	if err != nil {
		return nil, FaultsPerfSample{}, err
	}
	// Stream-split order after the fixture's own is load-bearing for
	// byte identity: classes, policy, crash — in that order.
	classes := netsim.AssignClasses(fx.root.Split().Intn, cfg.Nodes)
	polStream := fx.root.Split()
	crashStream := fx.root.Split()

	// The crash set: a seed-chosen fraction of the whole population,
	// dead for the cell's entire lifetime.
	down := make([]bool, cfg.Nodes)
	crashed := int(float64(cfg.Nodes) * cfg.CrashFraction)
	if crashed > 0 {
		perm := crashStream.Perm(cfg.Nodes)
		for _, id := range perm[:crashed] {
			down[id] = true
		}
	}

	base, err := search.PolicyByName(cfg.Policy, search.PolicyEnv{Intn: polStream.Intn})
	if err != nil {
		return nil, FaultsPerfSample{}, err
	}
	var forward core.ForwardPolicy = &downMask{inner: base, down: down}
	if cfg.Drop > 0 {
		forward = faults.NewLossyPolicy(forward, cfg.Drop,
			runner.DeriveSeed(cfg.Seed, "faults", "loss"))
	}

	// Dead providers answer nothing.
	alive := fx.content()
	content := core.ContentFunc(func(id topology.NodeID, key core.Key) bool {
		return !down[id] && alive.HasContent(id, key)
	})

	csr := fx.net.Freeze()
	delayStream := fx.delay
	eng, err := search.New(
		search.Over(csr, content),
		search.WithForward(forward),
		search.WithSeed(cfg.Seed),
		search.WithTTL(cfg.TTL),
		search.WithScratchHint(cfg.Nodes),
		search.WithDelay(func(from, to topology.NodeID) float64 {
			return netsim.OneWayDelay(delayStream, classes[from], classes[to])
		}))
	if err != nil {
		return nil, FaultsPerfSample{}, err
	}

	// Queries originate only at surviving clients.
	liveClients := make([]topology.NodeID, 0, len(fx.clientIDs))
	for _, id := range fx.clientIDs {
		if !down[id] {
			liveClients = append(liveClients, id)
		}
	}
	if len(liveClients) == 0 {
		return nil, FaultsPerfSample{}, fmt.Errorf("experiments: faults cell crashed every client")
	}

	sum := &FaultsSummary{
		Nodes:       cfg.Nodes,
		Policy:      cfg.Policy,
		Drop:        cfg.Drop,
		Crash:       cfg.CrashFraction,
		Crashed:     crashed,
		LiveClients: len(liveClients),
		Queries:     cfg.Queries,
	}
	delays := make([]float64, 0, cfg.Queries)
	visitedSum := 0
	ctx := context.Background()
	start := time.Now()
	for q := 0; q < cfg.Queries; q++ {
		origin := liveClients[fx.query.Intn(len(liveClients))]
		key := core.Key(fx.zipf.Index(fx.query))
		outcome, err := eng.Do(ctx, search.Query{
			ID:     uint64(q + 1),
			Key:    key,
			Origin: origin,
		})
		if err != nil {
			return nil, FaultsPerfSample{}, err
		}
		sum.Messages += outcome.Messages
		sum.ReplyMessages += outcome.ReplyMessages
		visitedSum += outcome.Visited
		if outcome.Found() {
			sum.Hits++
			delays = append(delays, outcome.FirstResultDelay)
		}
	}
	wall := time.Since(start)

	sum.HitRate = float64(sum.Hits) / float64(sum.Queries)
	sum.MsgsPerQuery = float64(sum.Messages) / float64(sum.Queries)
	sum.VisitedMean = float64(visitedSum) / float64(sum.Queries)
	sort.Float64s(delays)
	sum.DelayP50Ms = quantileMs(delays, 0.50)
	sum.DelayP95Ms = quantileMs(delays, 0.95)
	sum.DelayP99Ms = quantileMs(delays, 0.99)

	sample := FaultsPerfSample{
		WallSeconds: wall.Seconds(),
		Queries:     cfg.Queries,
		Events:      sum.Messages + sum.ReplyMessages,
	}
	return sum, sample, nil
}

// AssembleFaults validates the results of FaultsCells into summaries,
// in grid order.
func AssembleFaults(rs []runner.Result) ([]*FaultsSummary, error) {
	out := make([]*FaultsSummary, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		sum, ok := r.Value.(*FaultsSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *FaultsSummary",
				r.Experiment, r.Cell, r.Value)
		}
		out[i] = sum
	}
	return out, nil
}

// FaultsTable renders the grid with each row's hit-rate retention
// against its policy's zero-fault baseline.
func FaultsTable(sums []*FaultsSummary) *metrics.Table {
	baseline := map[string]float64{}
	for _, s := range sums {
		if s.Drop == 0 && s.Crash == 0 {
			baseline[s.Policy] = s.HitRate
		}
	}
	t := metrics.NewTable("Faults: hit-rate retention under message loss x node crashes",
		"policy", "drop", "crash", "hit_rate", "retention", "msgs/query", "p95_ms")
	for _, s := range sums {
		retention := 0.0
		if b := baseline[s.Policy]; b > 0 {
			retention = s.HitRate / b
		}
		t.AddRow(s.Policy, s.Drop, s.Crash, s.HitRate, retention, s.MsgsPerQuery, s.DelayP95Ms)
	}
	return t
}

// faultsDefinition wires the faults family into the registry.
func faultsDefinition(scale Scale, seed uint64) Definition {
	cells, collector := FaultsCells("faults", scale, seed)
	return Definition{
		Name:  "faults",
		About: "Robustness: hit-rate retention under drop-rate x crash-rate x policy",
		Cells: cells,
		Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
			sums, err := AssembleFaults(rs)
			if err != nil {
				return nil, err
			}
			return []*metrics.Table{FaultsTable(sums)}, nil
		},
		Perf: collector.Report,
	}
}
