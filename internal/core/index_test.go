package core

import (
	"testing"

	"repro/internal/topology"
)

// neighborIndex is an exact radius-1 index over the test graph: every
// node indexes its direct out-neighbors' content.
func neighborIndex(g *testGraph, content Content) IndexFunc {
	return func(at topology.NodeID, key Key) []topology.NodeID {
		var out []topology.NodeID
		for _, nb := range g.net.Out(at) {
			if g.Online(nb) && content.HasContent(nb, key) {
				out = append(out, nb)
			}
		}
		return out
	}
}

func TestIndexOriginAnswersWithZeroMessages(t *testing.T) {
	g := star(5)
	content := holders(3)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	// TTL 0: with the radius-1 index, the origin still covers its
	// direct neighbors without a single message.
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 0})
	if !o.Hit() || o.Results[0].Holder != 3 {
		t.Fatalf("outcome: %+v", o)
	}
	if o.Messages != 0 {
		t.Fatalf("index lookup cost %d messages", o.Messages)
	}
}

func TestIndexShortensEffectiveSearch(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 with content at 3. Without an index, TTL 3
	// is needed; with a radius-1 index, TTL 2 suffices (node 2 answers
	// on behalf of 3).
	g := chain(4)
	content := holders(3)
	plain := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	if o := plain.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2}); o.Hit() {
		t.Fatal("plain TTL 2 should miss the 3-hop holder")
	}
	indexed := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	o := indexed.Run(&Query{ID: 2, Key: 1, Origin: 0, TTL: 2})
	if !o.Hit() || o.Results[0].Holder != 3 {
		t.Fatalf("indexed TTL 2 outcome: %+v", o)
	}
	if o.Results[0].Hops != 3 {
		t.Fatalf("indexed result hops = %d, want 3 (2 flood + 1 index)", o.Results[0].Hops)
	}
}

func TestIndexDeduplicatesHolders(t *testing.T) {
	// Diamond: 0 -> {1, 2} -> 3; both 1 and 2 index holder 3. The
	// search must report 3 exactly once.
	net := topology.NewNetwork(topology.PureAsymmetric, 4, 4, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	net.Connect(1, 3)
	net.Connect(2, 3)
	g := &testGraph{net: net, offline: map[topology.NodeID]bool{}}
	content := holders(3)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2, ForwardWhenHit: true})
	count := 0
	for _, r := range o.Results {
		if r.Holder == 3 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("holder 3 reported %d times: %+v", count, o.Results)
	}
}

func TestIndexDoesNotDoubleReportVisitedHolder(t *testing.T) {
	// 0 -> 1 -> 2, content at 1 and 2. The origin's index answers for
	// 1; the flood then visits 1, which must not produce a second
	// result for itself.
	g := chain(3)
	content := holders(1, 2)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2, ForwardWhenHit: true})
	seen := map[topology.NodeID]int{}
	for _, r := range o.Results {
		seen[r.Holder]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("holder counts: %v (results %+v)", seen, o.Results)
	}
}

func TestIndexStopsPropagationOnHit(t *testing.T) {
	// Stop-at-server semantics extend to index hits: a node whose index
	// answered does not forward (ForwardWhenHit false).
	g := chain(4)
	content := holders(2)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 3})
	// Node 1's index answers for node 2; the query must not travel
	// further (1 message: 0->1).
	if !o.Hit() {
		t.Fatal("no hit")
	}
	if o.Messages != 1 {
		t.Fatalf("messages = %d, want 1", o.Messages)
	}
}

func TestIndexRespectsMaxResults(t *testing.T) {
	g := star(6)
	content := holders(1, 2, 3, 4, 5)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content)}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 1, MaxResults: 2})
	if len(o.Results) != 2 {
		t.Fatalf("MaxResults violated: %+v", o.Results)
	}
	if o.Messages != 0 {
		t.Fatalf("index satisfied query still sent %d messages", o.Messages)
	}
}

func TestIndexFuncRadius(t *testing.T) {
	var f IndexFunc = func(topology.NodeID, Key) []topology.NodeID { return nil }
	if f.Radius() != 1 {
		t.Fatalf("IndexFunc radius = %d", f.Radius())
	}
}

func TestIndexDelayChargesExtraHop(t *testing.T) {
	g := chain(3) // 0 -> 1 -> 2, content at 2, indexed by 1
	content := holders(2)
	c := &Cascade{Graph: g, Content: content, Forward: Flood{},
		Index: neighborIndex(g, content),
		Delay: func(_, _ topology.NodeID) float64 { return 0.1 },
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 1})
	if !o.Hit() {
		t.Fatal("no hit")
	}
	// Forward 0->1 (0.1) + reverse 1->0 (0.1) + index ping 1->2 (0.1).
	if d := o.Results[0].Delay; d < 0.299 || d > 0.301 {
		t.Fatalf("indexed result delay = %v, want 0.3", d)
	}
}
