// Package searchclient is the thin HTTP/JSON client for a running
// dsearchd cluster daemon — the public companion to pkg/search: where
// search is the in-process engine API, searchclient talks to the
// long-running service (cmd/dsearchd) that owns engine lifecycle,
// membership and serving.
//
// The client is deliberately thin: one struct, one method per
// endpoint, no retries, no connection management beyond net/http's.
// The types in this package are the wire contract — the daemon
// marshals exactly these structs, so any other consumer (curl, a
// dashboard) can rely on the same JSON shapes.
//
//	c := searchclient.New("127.0.0.1:7080")
//	resp, err := c.Query(ctx, searchclient.QueryRequest{Key: 42})
//	if err == nil && resp.Found() { ... }
package searchclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one dsearchd process. Methods are safe for
// concurrent use (the underlying http.Client is).
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client (custom timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at addr ("host:port" or a full
// "http://..." base URL).
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base: strings.TrimSuffix(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// QueryRequest is the body of POST /v1/query. Zero-valued fields
// defer to the daemon's configuration.
type QueryRequest struct {
	// Key is the content item searched for.
	Key uint64 `json:"key"`
	// TTL overrides the daemon's search depth when positive.
	TTL int `json:"ttl,omitempty"`
	// Policy names a pkg/search registry policy applied at the origin
	// hop of this query only; forwarding nodes keep their configured
	// policies (each live hop is autonomous). Empty uses the daemon's.
	Policy string `json:"policy,omitempty"`
	// Origin pins the originating node ID; nil lets the daemon pick a
	// local node round-robin. The node must be hosted by the daemon
	// receiving the request.
	Origin *int `json:"origin,omitempty"`
	// TimeoutMillis bounds the hit-collection window; 0 uses the
	// daemon's default window.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
	// MaxHits ends collection early after that many hits (1 turns the
	// query into an existence probe that returns in a flood
	// round-trip); 0 collects for the full window.
	MaxHits int `json:"max_hits,omitempty"`
}

// Hit is one positive answer of a query.
type Hit struct {
	// Holder is the answering node; Hops the forward distance the
	// query traveled; Class the answering link's advertised bandwidth
	// class ("56K", "cable", "LAN").
	Holder int    `json:"holder"`
	Hops   int    `json:"hops"`
	Class  string `json:"class"`
}

// QueryResponse is the body answering POST /v1/query.
type QueryResponse struct {
	// Origin is the node that originated the search.
	Origin int `json:"origin"`
	// Hits lists the collected answers in arrival order.
	Hits []Hit `json:"hits"`
	// ElapsedMillis is the server-side collection time.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// Found reports whether the query produced at least one hit.
func (r *QueryResponse) Found() bool { return len(r.Hits) > 0 }

// MemberInfo describes one cluster member in GET /v1/cluster.
type MemberInfo struct {
	Name   string `json:"name"`
	HTTP   string `json:"http"`
	BaseID int    `json:"base_id"`
	Nodes  int    `json:"nodes"`
}

// NodeInfo describes one locally hosted node.
type NodeInfo struct {
	ID     int `json:"id"`
	Degree int `json:"degree"`
}

// ClusterInfo is the body of GET /v1/cluster.
type ClusterInfo struct {
	// Self names the answering member; Epoch is its membership-view
	// version (monotone per process — it bumps on every view change).
	Self  string `json:"self"`
	Epoch uint64 `json:"epoch"`
	// State is the lifecycle state: "starting", "ready", "paused",
	// "draining" or "stopped".
	State string `json:"state"`
	// Members is the full membership view, sorted by name.
	Members []MemberInfo `json:"members"`
	// LocalNodes lists the answering member's nodes with their current
	// neighbor degrees.
	LocalNodes []NodeInfo `json:"local_nodes"`
}

// Stats is the body of GET /v1/stats: counter name to value.
type Stats map[string]uint64

// Error is a non-2xx daemon response.
type Error struct {
	// Status is the HTTP status code; Message the daemon's error text.
	Status  int
	Message string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("searchclient: %d %s", e.Status, e.Message)
}

// Query runs one search through the daemon.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.post(ctx, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cluster fetches the membership view.
func (c *Client) Cluster(ctx context.Context) (*ClusterInfo, error) {
	var info ClusterInfo
	if err := c.get(ctx, "/v1/cluster", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the counter snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	if err := c.get(ctx, "/v1/stats", &s); err != nil {
		return nil, err
	}
	return s, nil
}

// Pause stops query admission (in-flight queries finish; new ones are
// rejected until Resume).
func (c *Client) Pause(ctx context.Context) error {
	return c.post(ctx, "/v1/control/pause", nil, nil)
}

// Resume re-opens query admission after Pause.
func (c *Client) Resume(ctx context.Context) error {
	return c.post(ctx, "/v1/control/resume", nil, nil)
}

// Reconfig triggers one Algo 5 neighborhood reconfiguration on every
// node the daemon hosts.
func (c *Client) Reconfig(ctx context.Context) error {
	return c.post(ctx, "/v1/control/reconfig", nil, nil)
}

// Ready reports nil when the daemon admits queries (GET /v1/readyz).
func (c *Client) Ready(ctx context.Context) error {
	return c.get(ctx, "/v1/readyz", nil)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, out)
}

// errBody is the daemon's error envelope: {"error": "..."}.
type errBody struct {
	Error string `json:"error"`
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb errBody
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &Error{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("searchclient: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}
