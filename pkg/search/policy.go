package search

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
)

// PolicyEnv supplies the runtime dependencies a registered policy
// family may need. Engines fill it from their options; direct
// PolicyByName callers fill only what their policy consumes (a
// stateless family like "flood" needs nothing).
type PolicyEnv struct {
	// Intn supplies uniform integers for stochastic families
	// ("random-<k>"). The Engine derives a fresh deterministic stream
	// per query (see WithSeed), so concurrent searches never contend on
	// — or nondeterministically interleave — one generator.
	Intn func(n int) int
	// Benefit ranks peers for history-based families
	// ("directed-bft-<k>"); nil defaults to stats.Cumulative (the
	// paper's Σ B/R).
	Benefit stats.Benefit
	// MayHold backs the "digest-guided" family: does node id's
	// published digest admit key? Required by that family.
	MayHold func(id NodeID, key Key) bool
	// Fallback is the "digest-guided" family's policy of last resort
	// when no neighbor digest matches; nil means "forward to none".
	Fallback core.ForwardPolicy
}

// PolicySpec describes one registered policy family.
type PolicySpec struct {
	// New builds the policy. k is the parameter parsed from the name's
	// trailing "-<k>" (0 when the family name matched exactly). env
	// carries runtime dependencies; New must error — not panic — when a
	// required one is missing.
	New func(k int, env PolicyEnv) (core.ForwardPolicy, error)
	// Parameterized families require a "-<k>" suffix ("random-2"); the
	// bare family name is not a valid policy name.
	Parameterized bool
	// Stochastic families consume env.Intn. Engines instantiate them
	// once per query with a runner.DeriveSeed-derived stream so
	// outcomes are independent of call interleaving.
	Stochastic bool
}

var (
	policyMu  sync.RWMutex
	policyReg = map[string]PolicySpec{}
)

// RegisterPolicy adds a policy family under the given name. Names are
// resolved by PolicyByName either exactly or — for parameterized
// families — as "<family>-<k>". Registering an empty name, a nil
// constructor, or a name already taken panics: registration happens in
// init functions, where a clash is a programming error.
func RegisterPolicy(family string, spec PolicySpec) {
	if family == "" {
		panic("search: RegisterPolicy with empty family name")
	}
	if spec.New == nil {
		panic(fmt.Sprintf("search: RegisterPolicy(%q) with nil constructor", family))
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[family]; dup {
		panic(fmt.Sprintf("search: policy %q registered twice", family))
	}
	policyReg[family] = spec
}

// PolicyByName resolves a ForwardPolicy from its name — the exact
// string the policy's Name method reports, so every policy round-trips:
// PolicyByName(p.Name(), env).Name() == p.Name(). Built-in names are
// "flood", "random-<k>", "directed-bft-<k>" and "digest-guided";
// applications add more with RegisterPolicy. Unknown names and missing
// environment dependencies return errors.
func PolicyByName(name string, env PolicyEnv) (core.ForwardPolicy, error) {
	spec, k, err := resolvePolicy(name)
	if err != nil {
		return nil, err
	}
	return spec.New(k, env)
}

// resolvePolicy maps a name to its registered spec and parsed
// parameter, without constructing the policy.
func resolvePolicy(name string) (PolicySpec, int, error) {
	policyMu.RLock()
	defer policyMu.RUnlock()
	if spec, ok := policyReg[name]; ok {
		if spec.Parameterized {
			return PolicySpec{}, 0, fmt.Errorf("search: policy family %q requires a parameter, e.g. %q", name, name+"-2")
		}
		return spec, 0, nil
	}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if k, err := strconv.Atoi(name[i+1:]); err == nil && k > 0 {
			if spec, ok := policyReg[name[:i]]; ok && spec.Parameterized {
				return spec, k, nil
			}
		}
	}
	return PolicySpec{}, 0, fmt.Errorf("search: unknown policy %q (known: %s)", name, strings.Join(policyNamesLocked(), ", "))
}

// PolicyNames lists the registered families, sorted; parameterized
// families are shown with a "-<k>" placeholder.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	return policyNamesLocked()
}

func policyNamesLocked() []string {
	names := make([]string, 0, len(policyReg))
	for name, spec := range policyReg {
		if spec.Parameterized {
			name += "-<k>"
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// benefitOr returns env.Benefit or the paper's default ranking.
func benefitOr(env PolicyEnv) stats.Benefit {
	if env.Benefit != nil {
		return env.Benefit
	}
	return stats.Cumulative{}
}

// The built-in families mirror internal/core's ForwardPolicy
// implementations one-to-one; see each policy's documentation there.
func init() {
	RegisterPolicy("flood", PolicySpec{
		New: func(int, PolicyEnv) (core.ForwardPolicy, error) {
			return core.Flood{}, nil
		},
	})
	RegisterPolicy("random", PolicySpec{
		Parameterized: true,
		Stochastic:    true,
		New: func(k int, env PolicyEnv) (core.ForwardPolicy, error) {
			if env.Intn == nil {
				return nil, fmt.Errorf("search: policy random-%d needs PolicyEnv.Intn (or an Engine, which derives it from WithSeed)", k)
			}
			return core.RandomK{K: k, Intn: env.Intn}, nil
		},
	})
	RegisterPolicy("directed-bft", PolicySpec{
		Parameterized: true,
		New: func(k int, env PolicyEnv) (core.ForwardPolicy, error) {
			return core.DirectedBFT{K: k, Benefit: benefitOr(env)}, nil
		},
	})
	RegisterPolicy("digest-guided", PolicySpec{
		New: func(_ int, env PolicyEnv) (core.ForwardPolicy, error) {
			if env.MayHold == nil {
				return nil, fmt.Errorf("search: policy digest-guided needs PolicyEnv.MayHold (WithDigest on an Engine)")
			}
			return core.DigestGuided{MayHold: env.MayHold, Fallback: env.Fallback}, nil
		},
	})
}
