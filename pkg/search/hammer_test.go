package search_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/pkg/search"
)

// TestSaturationHammerByteIdentical is the concurrency battery for the
// shared-snapshot serving path: 32 goroutines drive mixed traffic — Do,
// Stream, Batch and Saturator.Run — against ONE engine over ONE frozen
// CSR snapshot, and every per-query outcome must be byte-identical to a
// sequential replay of the same queries with the same runner.DeriveSeed
// streams. Under -race (the CI race job runs this package) it also
// proves the whole serving surface — pool scratches, pinned worker
// scratches, the admission queue and the per-query stochastic policy
// instantiation — is data-race free.
func TestSaturationHammerByteIdentical(t *testing.T) {
	const (
		goroutines = 32
		queries    = 1024
		nodes      = 512
	)
	net := newTestNet(nodes, 4)
	mk := func() *search.Engine {
		eng, err := search.New(net,
			search.WithPolicy("random-2"),
			search.WithSeed(7),
			search.WithTTL(8),
			search.WithDelay(stepDelay),
			search.WithForwardWhenHit(true),
			search.WithSnapshot(nodes))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	qs := satQueries(queries, nodes)

	// Sequential replay on a dedicated engine: the ground truth.
	ref := mk()
	want := make([]string, queries)
	for i, q := range qs {
		r, err := ref.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(b)
	}

	// One shared engine + one shared saturator take all the traffic.
	shared := mk()
	sat, err := shared.Saturate(search.WithWorkers(8), search.WithAdmitBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	defer sat.Close()

	got := make([]string, queries)
	record := func(i int, r search.Result) error {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		got[i] = string(b)
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns the strided slice i ≡ g (mod 32) and
			// pushes it through one of the four call shapes.
			var mine []int
			for i := g; i < queries; i += goroutines {
				mine = append(mine, i)
			}
			switch g % 4 {
			case 0: // one-shot
				for _, i := range mine {
					r, err := shared.Do(context.Background(), qs[i])
					if err != nil {
						errs <- err
						return
					}
					if err := record(i, r); err != nil {
						errs <- err
						return
					}
				}
			case 1: // incremental: consume the stream, then fetch counts
				for _, i := range mine {
					var streamed []search.Hit
					for h, serr := range shared.Stream(context.Background(), qs[i]) {
						if serr != nil {
							errs <- serr
							return
						}
						streamed = append(streamed, h)
					}
					r, err := shared.Do(context.Background(), qs[i])
					if err != nil {
						errs <- err
						return
					}
					if len(streamed) != len(r.Hits) {
						t.Errorf("query %d: Stream yielded %d hits, Do %d", i, len(streamed), len(r.Hits))
					}
					if err := record(i, r); err != nil {
						errs <- err
						return
					}
				}
			case 2: // bounded-worker batch over the whole stride at once
				sub := make([]search.Query, len(mine))
				for k, i := range mine {
					sub[k] = qs[i]
				}
				rs, err := shared.Batch(context.Background(), sub)
				if err != nil {
					errs <- err
					return
				}
				for k, i := range mine {
					if err := record(i, rs[k]); err != nil {
						errs <- err
						return
					}
				}
			case 3: // saturation traffic through the shared worker shard
				sub := make([]search.Query, len(mine))
				for k, i := range mine {
					sub[k] = qs[i]
				}
				rs, err := sat.Run(context.Background(), sub)
				if err != nil {
					errs <- err
					return
				}
				for k, i := range mine {
					if err := record(i, rs[k]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("query %d diverged under mixed concurrent traffic:\n  concurrent: %s\n  sequential: %s",
				i, got[i], want[i])
		}
	}
}
