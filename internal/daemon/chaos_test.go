package daemon

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/pkg/searchclient"
)

// chaosSchedulePlan is the scripted outage of the chaos harness: five
// crash/restart pairs spread over three seconds.
func chaosSchedulePlan(nodes int) faults.CrashPlan {
	return faults.CrashPlan{
		Nodes:         nodes,
		Crashes:       5,
		SpanMillis:    3000,
		MinDownMillis: 300,
		MaxDownMillis: 900,
	}
}

// TestChaosScheduleByteIdentity: the acceptance bar for deterministic
// chaos — the same seed must regenerate the exact same fault schedule,
// byte for byte.
func TestChaosScheduleByteIdentity(t *testing.T) {
	plan := chaosSchedulePlan(50)
	a, err := faults.GenCrashSchedule(42, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.GenCrashSchedule(42, plan)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", aj, bj)
	}
	c, err := faults.GenCrashSchedule(43, plan)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := c.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(cj) == string(aj) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestChaosQueriesSurviveFaults is the chaos harness: a 50-node
// in-process cluster with 10% deterministic message drop serves the
// deterministic query plan while a scripted schedule crashes and
// restarts five nodes. At least 95% of queries must be answered within
// their deadline, every answered response must be internally coherent
// (Degraded iff it declares reasons, reasons from the documented set),
// responses produced while nodes were down must say so, and the
// cluster must come back clean once the schedule ends.
func TestChaosQueriesSurviveFaults(t *testing.T) {
	const (
		nodes, degree, ttl = 50, 3, 3
		keys, replicas     = 200, 3
		seed               = 42
		workers            = 32
		deadlineMillis     = 1000
	)
	srv, err := New(Config{
		Nodes: nodes, Degree: degree, TTL: ttl,
		Keys: keys, Replicas: replicas, Seed: seed,
		QueryWindowMillis: 50,
		Faults:            FaultsConfig{Drop: 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	sched, err := faults.GenCrashSchedule(seed, chaosSchedulePlan(nodes))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	schedDone := make(chan error, 1)
	go func() { schedDone <- sched.Run(ctx, srv) }()

	w := BuildWorld(seed, nodes, degree, keys, replicas)
	plan := w.QueryPlan(600)
	client := fanClient(srv.Addr(), workers)

	var answered, failed, degraded, hits atomic.Int64
	known := map[string]bool{
		searchclient.ReasonDeadline:      true,
		searchclient.ReasonOriginCrashed: true,
		searchclient.ReasonNoFanout:      true,
		searchclient.ReasonSuspects:      true,
		searchclient.ReasonCrashedNodes:  true,
	}
	var mu sync.Mutex
	var incoherent []string

	runPlan := func() {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, q := range plan {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, q QuerySpec) {
				defer wg.Done()
				defer func() { <-sem }()
				origin := int(q.Origin)
				resp, err := client.Query(ctx, searchclient.QueryRequest{
					Key:            uint64(q.Key),
					Origin:         &origin,
					MaxHits:        1,
					DeadlineMillis: deadlineMillis,
				})
				if err != nil {
					failed.Add(1)
					return
				}
				answered.Add(1)
				if resp.Found() {
					hits.Add(1)
				}
				if resp.Degraded != (len(resp.DegradedReasons) > 0) {
					mu.Lock()
					incoherent = append(incoherent, fmt.Sprintf(
						"query %d: degraded=%v with reasons %v", i, resp.Degraded, resp.DegradedReasons))
					mu.Unlock()
				}
				if resp.Degraded {
					degraded.Add(1)
					for _, r := range resp.DegradedReasons {
						if !known[r] {
							mu.Lock()
							incoherent = append(incoherent, fmt.Sprintf(
								"query %d: unknown degradation reason %q", i, r))
							mu.Unlock()
						}
					}
				}
			}(i, q)
		}
		wg.Wait()
	}

	// Keep replaying the plan until the scripted outage has fully
	// played out, so queries demonstrably overlap every crash window.
	runPlan()
	for {
		select {
		case err := <-schedDone:
			if err != nil {
				t.Fatalf("schedule run: %v", err)
			}
			goto schedOver
		default:
			runPlan()
		}
	}
schedOver:

	total := answered.Load() + failed.Load()
	if total == 0 {
		t.Fatal("no queries ran")
	}
	if coverage := float64(answered.Load()) / float64(total); coverage < 0.95 {
		t.Fatalf("only %.1f%% of %d queries answered within deadline (want >= 95%%)",
			coverage*100, total)
	}
	if len(incoherent) > 0 {
		t.Fatalf("%d incoherent responses, first: %s", len(incoherent), incoherent[0])
	}
	// Five crashes over the run: some responses must have been produced
	// while nodes were down, and say so.
	if degraded.Load() == 0 {
		t.Fatal("scripted crashes produced no degraded responses")
	}
	if hits.Load() == 0 {
		t.Fatal("no hits at all under 10% drop (cluster not actually serving)")
	}
	t.Logf("answered %d/%d (%d degraded, %d hits)",
		answered.Load(), total, degraded.Load(), hits.Load())

	// The fault plane actually dropped messages, and says so on the
	// stats surface.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["faults_dropped"] == 0 {
		t.Fatalf("faults_dropped = 0 under 10%% drop: %v", stats)
	}
	if stats["daemon_queries_degraded_total"] == 0 {
		t.Fatal("daemon_queries_degraded_total = 0")
	}

	// Every crash was lifted by its scripted restart: the cluster is
	// clean again — no crashed nodes in the view, fresh queries are not
	// degraded by crashes.
	info, err := client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range info.LocalNodes {
		if n.Crashed {
			t.Fatalf("node %d still crashed after the schedule healed", n.ID)
		}
	}
	resp, err := client.Query(ctx, searchclient.QueryRequest{Key: uint64(plan[0].Key), MaxHits: 1})
	if err != nil {
		t.Fatalf("post-heal query: %v", err)
	}
	for _, r := range resp.DegradedReasons {
		if r == searchclient.ReasonCrashedNodes || r == searchclient.ReasonOriginCrashed {
			t.Fatalf("post-heal response still crash-degraded: %v", resp.DegradedReasons)
		}
	}
}

// TestCrashRestartControlPlane exercises the fault-injection HTTP
// surface end to end: crash a pinned origin and the daemon reroutes
// and declares it; crash everything and the daemon 503s with a
// Retry-After; restart and service is clean again.
func TestCrashRestartControlPlane(t *testing.T) {
	const nodes = 4
	srv, err := New(Config{
		Nodes: nodes, Degree: 2, TTL: 2, Keys: 32, Replicas: 2, Seed: 3,
		QueryWindowMillis: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	client := searchclient.New(srv.Addr(), searchclient.WithRetry(0, 0))
	ctx := context.Background()

	if err := client.Crash(ctx, 0); err != nil {
		t.Fatalf("crash: %v", err)
	}
	info, err := client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sawCrashed := false
	for _, n := range info.LocalNodes {
		if n.ID == 0 && n.Crashed {
			sawCrashed = true
		}
	}
	if !sawCrashed {
		t.Fatalf("cluster view does not report node 0 crashed: %+v", info.LocalNodes)
	}

	// A query pinned to the crashed origin is rerouted and degraded.
	origin := 0
	resp, err := client.Query(ctx, searchclient.QueryRequest{
		Key: 1, Origin: &origin, MaxHits: 1,
	})
	if err != nil {
		t.Fatalf("query via crashed origin: %v", err)
	}
	if !resp.Degraded || resp.Origin == 0 {
		t.Fatalf("rerouted response: degraded=%v origin=%d", resp.Degraded, resp.Origin)
	}
	found := false
	for _, r := range resp.DegradedReasons {
		if r == searchclient.ReasonOriginCrashed {
			found = true
		}
	}
	if !found {
		t.Fatalf("rerouted response lacks %q: %v",
			searchclient.ReasonOriginCrashed, resp.DegradedReasons)
	}

	// Crashing a node this daemon does not host is the caller's error.
	if err := client.Crash(ctx, 99); err == nil {
		t.Fatal("crash of remote node accepted")
	}

	// Crash the rest: admission has nowhere to route, so queries are
	// 503 with a Retry-After hint.
	for id := 1; id < nodes; id++ {
		if err := client.Crash(ctx, id); err != nil {
			t.Fatalf("crash %d: %v", id, err)
		}
	}
	_, err = client.Query(ctx, searchclient.QueryRequest{Key: 1})
	var se *searchclient.Error
	if !asError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("query with all nodes down: got %v, want 503", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("503 carried no Retry-After: %+v", se)
	}

	// Restart everything: service is clean again.
	for id := 0; id < nodes; id++ {
		if err := client.Restart(ctx, id); err != nil {
			t.Fatalf("restart %d: %v", id, err)
		}
	}
	resp, err = client.Query(ctx, searchclient.QueryRequest{Key: 1, MaxHits: 1, TimeoutMillis: 50})
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	for _, r := range resp.DegradedReasons {
		if r == searchclient.ReasonCrashedNodes || r == searchclient.ReasonOriginCrashed {
			t.Fatalf("post-restart response still crash-degraded: %v", resp.DegradedReasons)
		}
	}

	// Deadline budgets flag what they cut: a 1ms budget on a full
	// window collection comes back degraded with the deadline reason,
	// not an error.
	resp, err = client.Query(ctx, searchclient.QueryRequest{
		Key: 1, TimeoutMillis: 500, DeadlineMillis: 1,
	})
	if err != nil {
		t.Fatalf("deadline query: %v", err)
	}
	sawDeadline := false
	for _, r := range resp.DegradedReasons {
		if r == searchclient.ReasonDeadline {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatalf("1ms budget not declared: degraded=%v reasons=%v",
			resp.Degraded, resp.DegradedReasons)
	}
}

// TestPartitionHealViaTarget drives the faults.Target surface of the
// server directly: a partition splits the shard into two halves that
// cannot hear each other, and heal restores full reachability.
func TestPartitionHealViaTarget(t *testing.T) {
	const nodes = 8
	srv, err := New(Config{
		Nodes: nodes, Degree: 3, TTL: 3, Keys: 32, Replicas: 2, Seed: 11,
		QueryWindowMillis: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	groupA := []int{0, 1, 2, 3}
	groupB := []int{4, 5, 6, 7}
	if err := srv.Partition([][]int{groupA, groupB}); err != nil {
		t.Fatal(err)
	}
	before := srv.FaultStats().Blocked.Load()

	client := searchclient.New(srv.Addr())
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		origin := i % nodes
		if _, err := client.Query(ctx, searchclient.QueryRequest{
			Key: uint64(i % 32), Origin: &origin,
		}); err != nil {
			t.Fatalf("query under partition: %v", err)
		}
	}
	if srv.FaultStats().Blocked.Load() == before {
		t.Fatal("partition blocked no cross-group traffic")
	}

	if err := srv.Heal(); err != nil {
		t.Fatal(err)
	}
	after := srv.FaultStats().Blocked.Load()
	for i := 0; i < 8; i++ {
		origin := i % nodes
		if _, err := client.Query(ctx, searchclient.QueryRequest{
			Key: uint64(i % 32), Origin: &origin, MaxHits: 1,
		}); err != nil {
			t.Fatalf("query after heal: %v", err)
		}
	}
	if srv.FaultStats().Blocked.Load() != after {
		t.Fatal("healed transport still blocking")
	}
}
