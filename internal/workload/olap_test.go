package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func smallOlapConfig() OlapConfig {
	return OlapConfig{
		Chunks:             2400,
		Regions:            12,
		PopularityTheta:    0.9,
		Peers:              20,
		LocalFraction:      0.8,
		ChunksPerQueryMean: 4,
		QueriesPerHour:     30,
	}
}

func TestOlapConfigValidation(t *testing.T) {
	if err := DefaultOlapConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OlapConfig{
		{},
		func() OlapConfig { c := smallOlapConfig(); c.Chunks = 2401; return c }(),
		func() OlapConfig { c := smallOlapConfig(); c.LocalFraction = -0.1; return c }(),
		func() OlapConfig { c := smallOlapConfig(); c.ChunksPerQueryMean = 0.5; return c }(),
		func() OlapConfig { c := smallOlapConfig(); c.QueriesPerHour = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestCubeMapping(t *testing.T) {
	c := NewCube(smallOlapConfig())
	if c.ChunksPerRegion() != 200 {
		t.Fatalf("chunks per region = %d", c.ChunksPerRegion())
	}
	ch := c.Chunk(5, 7)
	if c.Region(ch) != 5 {
		t.Fatalf("region round trip failed for chunk %d", ch)
	}
}

func TestCubeChunkPanics(t *testing.T) {
	c := NewCube(smallOlapConfig())
	for _, bad := range [][2]int{{-1, 1}, {12, 1}, {0, 0}, {0, 201}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Chunk(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			c.Chunk(bad[0], bad[1])
		}()
	}
}

func TestCubeAssignRegions(t *testing.T) {
	c := NewCube(smallOlapConfig())
	got := c.AssignRegions(rng.New(1))
	if len(got) != 20 {
		t.Fatalf("assigned %d regions", len(got))
	}
	for _, v := range got {
		if v < 0 || v >= 12 {
			t.Fatalf("region %d out of range", v)
		}
	}
}

func TestOlapQueryDistinctChunks(t *testing.T) {
	c := NewCube(smallOlapConfig())
	s := rng.New(2)
	for i := 0; i < 2000; i++ {
		q := c.SampleQuery(s, 3)
		if len(q) == 0 {
			t.Fatal("empty query")
		}
		seen := map[ChunkID]bool{}
		for _, ch := range q {
			if seen[ch] {
				t.Fatalf("duplicate chunk in query: %v", q)
			}
			seen[ch] = true
		}
	}
}

func TestOlapQuerySingleRegion(t *testing.T) {
	// Every chunk of one query stays in one region (drill-down
	// locality).
	c := NewCube(smallOlapConfig())
	s := rng.New(3)
	for i := 0; i < 2000; i++ {
		q := c.SampleQuery(s, 3)
		region := c.Region(q[0])
		for _, ch := range q[1:] {
			if c.Region(ch) != region {
				t.Fatalf("query spans regions: %v", q)
			}
		}
	}
}

func TestOlapQueryMeanSize(t *testing.T) {
	c := NewCube(smallOlapConfig())
	s := rng.New(4)
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += len(c.SampleQuery(s, 0))
	}
	mean := float64(total) / n
	if math.Abs(mean-4) > 0.3 {
		t.Fatalf("mean query size %v, want ~4", mean)
	}
}

func TestOlapQueryLocalFraction(t *testing.T) {
	c := NewCube(smallOlapConfig())
	s := rng.New(5)
	local := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Region(c.SampleQuery(s, 7)[0]) == 7 {
			local++
		}
	}
	frac := float64(local) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("local fraction %v, want ~0.8", frac)
	}
}

func TestQuickOlapQueriesInUniverse(t *testing.T) {
	f := func(seed uint64, region uint8) bool {
		c := NewCube(smallOlapConfig())
		s := rng.New(seed)
		for _, ch := range c.SampleQuery(s, int(region)%12) {
			if int(ch) < 0 || int(ch) >= 2400 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
