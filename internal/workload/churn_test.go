package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestChurnDefaults(t *testing.T) {
	c := DefaultChurnConfig()
	if c.MeanOnline != 10800 || c.MeanOffline != 10800 {
		t.Fatalf("default churn config drifted: %+v", c)
	}
	if c.StationaryOnlineProbability() != 0.5 {
		t.Fatalf("stationary probability = %v", c.StationaryOnlineProbability())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnValidate(t *testing.T) {
	if err := (ChurnConfig{MeanOnline: 0, MeanOffline: 1}).Validate(); err == nil {
		t.Fatal("zero mean accepted")
	}
}

func TestScheduleChurnRejectsInvalidConfig(t *testing.T) {
	e := sim.New()
	s := rng.New(1)
	err := ScheduleChurn(e, s, ChurnConfig{MeanOnline: -1, MeanOffline: 1}, func(bool, float64) {
		t.Fatal("set invoked for invalid config")
	})
	if err == nil {
		t.Fatal("invalid churn config accepted")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events scheduled despite the error", e.Pending())
	}
}

func TestChurnStationaryFraction(t *testing.T) {
	// Simulate many users over a long horizon; the average on-line
	// fraction must match the stationary probability.
	e := sim.New()
	cfg := DefaultChurnConfig()
	const users = 400
	const horizon = 96 * 3600.0
	e.SetHorizon(horizon)
	online := make([]bool, users)
	var onTime float64
	last := make([]float64, users)
	root := rng.New(42)
	for i := 0; i < users; i++ {
		i := i
		err := ScheduleChurn(e, root.Split(), cfg, func(on bool, now float64) {
			if online[i] {
				onTime += now - last[i]
			}
			online[i] = on
			last[i] = now
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(horizon)
	for i := 0; i < users; i++ {
		if online[i] {
			onTime += horizon - last[i]
		}
	}
	frac := onTime / (users * horizon)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("online fraction %v, want ~0.5", frac)
	}
}

func TestChurnAlternates(t *testing.T) {
	e := sim.New()
	e.SetHorizon(1e6)
	var states []bool
	if err := ScheduleChurn(e, rng.New(1), DefaultChurnConfig(), func(on bool, _ float64) {
		states = append(states, on)
	}); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(1e6)
	if len(states) < 10 {
		t.Fatalf("only %d transitions in 1e6s", len(states))
	}
	for i := 1; i < len(states); i++ {
		if states[i] == states[i-1] {
			t.Fatalf("non-alternating transition at %d", i)
		}
	}
}

func TestChurnBadConfigErrors(t *testing.T) {
	if err := ScheduleChurn(sim.New(), rng.New(1), ChurnConfig{}, func(bool, float64) {}); err == nil {
		t.Fatal("bad churn config accepted")
	}
}

func TestQueryConfigDefaults(t *testing.T) {
	c := DefaultQueryConfig()
	if c.RatePerHour != 12 {
		t.Fatalf("default rate drifted: %v", c.RatePerHour)
	}
	if c.MeanInterarrival() != 300 {
		t.Fatalf("mean interarrival = %v", c.MeanInterarrival())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (QueryConfig{}).Validate(); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestScheduleQueriesRate(t *testing.T) {
	e := sim.New()
	const horizon = 200 * 3600.0
	e.SetHorizon(horizon)
	fired := 0
	resume := ScheduleQueries(e, rng.New(2), DefaultQueryConfig(),
		func() bool { return true },
		func(float64) { fired++ })
	resume()
	e.RunUntil(horizon)
	want := 12.0 * 200
	if math.Abs(float64(fired)-want) > want*0.1 {
		t.Fatalf("fired %d queries, want ~%v", fired, want)
	}
}

func TestScheduleQueriesSuspendsOffline(t *testing.T) {
	e := sim.New()
	e.SetHorizon(100 * 3600)
	online := true
	fired := 0
	resume := ScheduleQueries(e, rng.New(3), DefaultQueryConfig(),
		func() bool { return online },
		func(float64) { fired++ })
	resume()
	e.RunUntil(10 * 3600)
	firedWhileOnline := fired
	if firedWhileOnline == 0 {
		t.Fatal("no queries while online")
	}
	online = false
	e.RunUntil(50 * 3600)
	if fired > firedWhileOnline+1 {
		t.Fatalf("queries fired while offline: %d -> %d", firedWhileOnline, fired)
	}
	// Resume after re-login.
	online = true
	resume()
	e.RunUntil(100 * 3600)
	if fired <= firedWhileOnline+1 {
		t.Fatal("queries did not resume after re-login")
	}
}

func TestScheduleQueriesResumeIdempotent(t *testing.T) {
	e := sim.New()
	e.SetHorizon(100 * 3600)
	fired := 0
	resume := ScheduleQueries(e, rng.New(4), DefaultQueryConfig(),
		func() bool { return true },
		func(float64) { fired++ })
	resume()
	resume() // double resume must not double the process
	resume()
	e.RunUntil(100 * 3600)
	want := 12.0 * 100
	if float64(fired) > want*1.2 {
		t.Fatalf("fired %d, want ~%v (double-armed?)", fired, want)
	}
}

func TestScheduleQueriesResumeWhileOfflineIsNoop(t *testing.T) {
	e := sim.New()
	e.SetHorizon(10 * 3600)
	fired := 0
	resume := ScheduleQueries(e, rng.New(5), DefaultQueryConfig(),
		func() bool { return false },
		func(float64) { fired++ })
	resume()
	e.RunUntil(10 * 3600)
	if fired != 0 {
		t.Fatalf("offline user fired %d queries", fired)
	}
}
