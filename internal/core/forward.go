package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// ForwardPolicy chooses which outgoing neighbors receive a query at
// each propagation step — the second main parameter of Algo 1 ("the
// set of neighbors where the request should be sent to"). The paper
// names three families: send-to-all, random, and history based; the
// Directed BFT technique of Yang & Garcia-Molina is the history-based
// representative.
type ForwardPolicy interface {
	// Select returns the subset of out to forward query q to. at is the
	// forwarding node, from is the node the query arrived from (the
	// origin passes topology.None), led is the forwarding node's
	// statistics ledger (may be nil for stateless policies). dst is a
	// zero-length scratch buffer the policy should build its result in
	// (append semantics) so hot callers amortize the allocation; it may
	// be nil, and implementations may still return freshly allocated
	// memory. Callers must treat the returned slice as invalidated by
	// the next Select call that is handed the same buffer.
	Select(q *Query, at, from topology.NodeID, out []topology.NodeID, led *stats.Ledger, dst []topology.NodeID) []topology.NodeID
	// Name identifies the policy in experiment output.
	Name() string
}

// dropFrom filters from and the origin out of a neighbor list, reusing
// dst (which may be nil).
func dropFrom(dst, out []topology.NodeID, q *Query, from topology.NodeID) []topology.NodeID {
	for _, n := range out {
		if n == from || n == q.Origin {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}

// Flood forwards to every outgoing neighbor except the sender — the
// Gnutella baseline behavior and the paper's case-study choice.
type Flood struct{}

// Select implements ForwardPolicy.
func (Flood) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	return dropFrom(dst, out, q, from)
}

// Name implements ForwardPolicy.
func (Flood) Name() string { return "flood" }

// RandomK forwards to at most K uniformly chosen neighbors. With K >=
// len(out) it degenerates to Flood.
type RandomK struct {
	K int
	// Intn supplies uniform integers (rng.Stream.Intn). Must be non-nil.
	Intn func(n int) int
}

// Select implements ForwardPolicy.
func (p RandomK) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	cand := dropFrom(dst, out, q, from)
	if len(cand) <= p.K {
		return cand
	}
	// Partial Fisher-Yates: choose K of len(cand).
	for i := 0; i < p.K; i++ {
		j := i + p.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return cand[:p.K]
}

// Name implements ForwardPolicy.
func (p RandomK) Name() string { return fmt.Sprintf("random-%d", p.K) }

// DirectedBFT forwards to the K most beneficial neighbors according to
// the forwarding node's own statistics — technique (ii) of [10], which
// the paper notes is orthogonal to reconfiguration and can be employed
// to further reduce query cost.
type DirectedBFT struct {
	K       int
	Benefit stats.Benefit
}

// Select implements ForwardPolicy.
func (p DirectedBFT) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, led *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	cand := dropFrom(dst, out, q, from)
	if len(cand) <= p.K || led == nil {
		return cand
	}
	// Rank candidates by ledger benefit (unknown peers score 0) with an
	// in-place insertion sort over cand and a stack-resident score
	// array — neighbor lists are tiny (the paper caps them at 4), and
	// the hot path must not allocate per propagation step.
	var stack [16]float64
	scores := stack[:0]
	if len(cand) > len(stack) {
		scores = make([]float64, 0, len(cand))
	}
	for _, id := range cand {
		s := 0.0
		if r := led.Get(id); r != nil {
			s = p.Benefit.Score(r)
		}
		scores = append(scores, s)
	}
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && (scores[j] > scores[j-1] ||
			(scores[j] == scores[j-1] && cand[j] < cand[j-1])); j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	return cand[:p.K]
}

// Name implements ForwardPolicy.
func (p DirectedBFT) Name() string { return fmt.Sprintf("directed-bft-%d", p.K) }

// DigestGuided forwards only to neighbors whose published digest may
// contain the key ("use summary info if available", Algo 1). Bloom
// digests have no false negatives, so skipped neighbors certainly do
// not hold the key locally; Fallback (usually Flood) handles the case
// where no digest matches, so deeper nodes stay reachable.
type DigestGuided struct {
	// MayHold reports whether node id's digest admits key. Nil digests
	// (unknown peers) should return true.
	MayHold func(id topology.NodeID, key Key) bool
	// Fallback is consulted when no neighbor's digest matches; nil
	// means "forward to none".
	Fallback ForwardPolicy
}

// Select implements ForwardPolicy.
func (p DigestGuided) Select(q *Query, at, from topology.NodeID, out []topology.NodeID, led *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	match := dst
	for _, n := range out {
		if n == from || n == q.Origin {
			continue
		}
		if p.MayHold(n, q.Key) {
			match = append(match, n)
		}
	}
	if len(match) == len(dst) && p.Fallback != nil {
		return p.Fallback.Select(q, at, from, out, led, dst)
	}
	return match
}

// Name implements ForwardPolicy.
func (p DigestGuided) Name() string { return "digest-guided" }
