// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4.3) plus the ablations listed in
// DESIGN.md. Each Fig* function runs the required simulations and
// returns the series in the same row shape the paper plots; the CLI
// (cmd/repro), the benchmark harness (bench_test.go) and the
// integration tests all consume these.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Scale selects the experiment size.
type Scale uint8

const (
	// Full is the paper's scale: 2,000 users, 200,000 songs, 4 days.
	Full Scale = iota
	// CI is a 10x-reduced scale with the same shape: 200 users, 20,000
	// songs, 24 hours. Suitable for tests and benchmarks.
	CI
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Full:
		return "full"
	case CI:
		return "ci"
	default:
		return fmt.Sprintf("Scale(%d)", uint8(s))
	}
}

// ParseScale converts a CLI flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "full":
		return Full, nil
	case "ci":
		return CI, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want full or ci)", s)
	}
}

// config returns the mode/TTL configuration at the given scale.
func (s Scale) config(mode gnutella.Mode, ttl int, seed uint64) gnutella.Config {
	var c gnutella.Config
	if s == Full {
		c = gnutella.DefaultConfig(mode, ttl)
	} else {
		c = gnutella.CIConfig(mode, ttl)
	}
	c.Seed = seed
	return c
}

// reportHours returns the paper's sampling hours for the scale: from
// steady state to the end in five steps (full scale: 12, 27, 42, 57,
// 72, 87).
func (s Scale) reportHours() []int {
	if s == Full {
		return metrics.SampleHours(12, 15, 87)
	}
	return metrics.SampleHours(3, 4, 23)
}

// warmupHours returns the steady-state cutoff (results before it are
// discarded, "we present the results after the 12th hour").
func (s Scale) warmupHours() int {
	if s == Full {
		return 12
	}
	return 3
}

// runPair executes the static and dynamic variants concurrently —
// independent simulations parallelize trivially.
func runPair(static, dynamic gnutella.Config) (sm, dm *gnutella.Metrics) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm = gnutella.New(static).Run()
	}()
	go func() {
		defer wg.Done()
		dm = gnutella.New(dynamic).Run()
	}()
	wg.Wait()
	return sm, dm
}

// HourlyRow is one sampled hour of a Figures 1/2 series.
type HourlyRow struct {
	Hour                    int
	StaticHits, DynamicHits float64
	StaticMsgs, DynamicMsgs float64
}

// FigSeries is the output of a Figure 1 or Figure 2 run.
type FigSeries struct {
	TTL  int
	Rows []HourlyRow
	// Totals over the post-warmup window.
	StaticHitsTotal, DynamicHitsTotal float64
	StaticMsgsTotal, DynamicMsgsTotal float64
}

// HitsTable renders the hits series (Figure 1(a) / 2(a)).
func (f *FigSeries) HitsTable(name string) *metrics.Table {
	t := metrics.NewTable(name, "hour", "Gnutella", "Dynamic_Gnutella")
	for _, r := range f.Rows {
		t.AddRow(r.Hour, r.StaticHits, r.DynamicHits)
	}
	return t
}

// MsgsTable renders the overhead series (Figure 1(b) / 2(b)).
func (f *FigSeries) MsgsTable(name string) *metrics.Table {
	t := metrics.NewTable(name, "hour", "Gnutella", "Dynamic_Gnutella")
	for _, r := range f.Rows {
		t.AddRow(r.Hour, r.StaticMsgs, r.DynamicMsgs)
	}
	return t
}

// FigHourly runs the Figure 1 (ttl=2) or Figure 2 (ttl=4) experiment:
// hits per hour and query messages per hour for both variants.
func FigHourly(scale Scale, ttl int, seed uint64) *FigSeries {
	sm, dm := runPair(scale.config(gnutella.Static, ttl, seed), scale.config(gnutella.Dynamic, ttl, seed))
	out := &FigSeries{TTL: ttl}
	for _, h := range scale.reportHours() {
		out.Rows = append(out.Rows, HourlyRow{
			Hour:        h,
			StaticHits:  sm.Hits.Bucket(h),
			DynamicHits: dm.Hits.Bucket(h),
			StaticMsgs:  float64(sm.Meter.Bucket(netsim.MsgQuery, h)),
			DynamicMsgs: float64(dm.Meter.Bucket(netsim.MsgQuery, h)),
		})
	}
	from := scale.warmupHours()
	end := sm.Hits.Len()
	if l := dm.Hits.Len(); l > end {
		end = l
	}
	out.StaticHitsTotal = sm.Hits.Window(from, end)
	out.DynamicHitsTotal = dm.Hits.Window(from, end)
	for b := from; b < end; b++ {
		out.StaticMsgsTotal += float64(sm.Meter.Bucket(netsim.MsgQuery, b))
		out.DynamicMsgsTotal += float64(dm.Meter.Bucket(netsim.MsgQuery, b))
	}
	return out
}

// Fig1 is Figure 1: hops = 2.
func Fig1(scale Scale, seed uint64) *FigSeries { return FigHourly(scale, 2, seed) }

// Fig2 is Figure 2: hops = 4.
func Fig2(scale Scale, seed uint64) *FigSeries { return FigHourly(scale, 4, seed) }

// Fig3aRow is one TTL column of Figure 3(a).
type Fig3aRow struct {
	TTL int
	// Mean delay (milliseconds, as the paper's y-axis) from query issue
	// to first result, over satisfied queries.
	StaticDelayMs, DynamicDelayMs float64
	// Total results obtained over the whole run (the numbers printed
	// above the paper's columns).
	StaticResults, DynamicResults uint64
}

// Fig3a runs the response-time experiment: TTL ∈ {1, 2, 3, 4}, both
// variants.
func Fig3a(scale Scale, seed uint64) []Fig3aRow {
	rows := make([]Fig3aRow, 4)
	var wg sync.WaitGroup
	for i, ttl := range []int{1, 2, 3, 4} {
		i, ttl := i, ttl
		wg.Add(1)
		go func() {
			defer wg.Done()
			sm, dm := runPair(scale.config(gnutella.Static, ttl, seed), scale.config(gnutella.Dynamic, ttl, seed))
			rows[i] = Fig3aRow{
				TTL:            ttl,
				StaticDelayMs:  sm.FirstResultDelay.Mean() * 1000,
				DynamicDelayMs: dm.FirstResultDelay.Mean() * 1000,
				StaticResults:  sm.TotalResults,
				DynamicResults: dm.TotalResults,
			}
		}()
	}
	wg.Wait()
	return rows
}

// Fig3aTable renders Figure 3(a).
func Fig3aTable(rows []Fig3aRow) *metrics.Table {
	t := metrics.NewTable("Figure 3(a): average response time for first result",
		"hops", "Gnutella delay (ms)", "Dynamic delay (ms)", "Gnutella results", "Dynamic results")
	for _, r := range rows {
		t.AddRow(r.TTL, r.StaticDelayMs, r.DynamicDelayMs, r.StaticResults, r.DynamicResults)
	}
	return t
}

// Fig3bRow is one reconfiguration-threshold column of Figure 3(b).
type Fig3bRow struct {
	Threshold int
	// DynamicHits is the total hits over the full run at this θ.
	DynamicHits float64
	// StaticHits is the flat baseline the paper draws across the chart.
	StaticHits float64
}

// Fig3b runs the reconfiguration-threshold sweep: θ ∈ {1, 2, 4, 8, 16}
// at TTL 2, against the static baseline.
func Fig3b(scale Scale, seed uint64) []Fig3bRow {
	thresholds := []int{1, 2, 4, 8, 16}
	rows := make([]Fig3bRow, len(thresholds))
	var staticHits float64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := gnutella.New(scale.config(gnutella.Static, 2, seed)).Run()
		staticHits = m.Hits.Total()
	}()
	for i, th := range thresholds {
		i, th := i, th
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := scale.config(gnutella.Dynamic, 2, seed)
			cfg.ReconfigThreshold = th
			m := gnutella.New(cfg).Run()
			rows[i] = Fig3bRow{Threshold: th, DynamicHits: m.Hits.Total()}
		}()
	}
	wg.Wait()
	for i := range rows {
		rows[i].StaticHits = staticHits
	}
	return rows
}

// Fig3bTable renders Figure 3(b).
func Fig3bTable(rows []Fig3bRow) *metrics.Table {
	t := metrics.NewTable("Figure 3(b): effect of reconfiguration period (total hits)",
		"threshold", "Gnutella", "Dynamic_Gnutella")
	for _, r := range rows {
		t.AddRow(r.Threshold, r.StaticHits, r.DynamicHits)
	}
	return t
}
