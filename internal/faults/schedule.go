package faults

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/runner"
)

// EventKind names one scripted fault action.
type EventKind string

// The scripted fault actions a Schedule can carry.
const (
	EventCrash     EventKind = "crash"
	EventRestart   EventKind = "restart"
	EventPartition EventKind = "partition"
	EventHeal      EventKind = "heal"
)

// Event is one scripted fault: at AtMillis after playback start, do
// Kind to Node (crash/restart) or Groups (partition).
type Event struct {
	AtMillis int64     `json:"at_ms"`
	Kind     EventKind `json:"kind"`
	Node     int       `json:"node,omitempty"`
	Groups   [][]int   `json:"groups,omitempty"`
}

// Schedule is an ordered fault script. It is a value object: generate
// it from a seed, marshal it, diff it, play it back.
type Schedule struct {
	Seed   uint64  `json:"seed"`
	Events []Event `json:"events"`
}

// MarshalCanonical renders the schedule as canonical indented JSON —
// the byte-for-byte artifact the reproducibility criterion is checked
// against.
func (s Schedule) MarshalCanonical() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Target is the surface a schedule plays against: the in-process
// fault Transport, a daemon.Server, or an HTTP shim over a real
// dsearchd process.
type Target interface {
	Crash(node int) error
	Restart(node int) error
	Partition(groups [][]int) error
	Heal() error
}

// Run plays the schedule against target in wall-clock time, sleeping
// between events and stopping early when ctx is done. It returns the
// first target error (playback stops there — a half-applied script is
// a test bug worth failing loudly on).
func (s Schedule) Run(ctx context.Context, target Target) error {
	start := time.Now()
	for _, ev := range s.Events {
		due := start.Add(time.Duration(ev.AtMillis) * time.Millisecond)
		if wait := time.Until(due); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		switch ev.Kind {
		case EventCrash:
			err = target.Crash(ev.Node)
		case EventRestart:
			err = target.Restart(ev.Node)
		case EventPartition:
			err = target.Partition(ev.Groups)
		case EventHeal:
			err = target.Heal()
		default:
			err = fmt.Errorf("faults: unknown event kind %q", ev.Kind)
		}
		if err != nil {
			return fmt.Errorf("faults: event %s at %dms: %w", ev.Kind, ev.AtMillis, err)
		}
	}
	return nil
}

// CrashPlan parameterizes GenCrashSchedule.
type CrashPlan struct {
	// Nodes is the population crashes are drawn from (IDs 0..Nodes-1).
	Nodes int
	// Crashes is how many crash/restart pairs to script.
	Crashes int
	// SpanMillis is the window crash times are drawn from.
	SpanMillis int64
	// MinDownMillis/MaxDownMillis bound each outage's length.
	MinDownMillis, MaxDownMillis int64
}

// GenCrashSchedule scripts plan.Crashes crash/restart pairs over
// distinct nodes, deterministically from seed. Crash instants are
// uniform over the span, outage lengths uniform over
// [MinDown, MaxDown], and events come out sorted by time (ties broken
// crash-before-restart, then by node) so the byte layout is canonical.
// The same (seed, plan) always yields the same bytes.
func GenCrashSchedule(seed uint64, plan CrashPlan) (Schedule, error) {
	if plan.Crashes > plan.Nodes {
		return Schedule{}, fmt.Errorf("faults: %d crashes over %d nodes", plan.Crashes, plan.Nodes)
	}
	if plan.SpanMillis <= 0 || plan.MinDownMillis <= 0 || plan.MaxDownMillis < plan.MinDownMillis {
		return Schedule{}, fmt.Errorf("faults: invalid crash plan %+v", plan)
	}
	derived := runner.DeriveSeed(seed, "faults", "crash-schedule")
	st := rng.New(derived)
	// Distinct victims via a partial Fisher-Yates over the id space.
	ids := make([]int, plan.Nodes)
	for i := range ids {
		ids[i] = i
	}
	events := make([]Event, 0, 2*plan.Crashes)
	for c := 0; c < plan.Crashes; c++ {
		j := c + st.Intn(plan.Nodes-c)
		ids[c], ids[j] = ids[j], ids[c]
		at := int64(st.Intn(int(plan.SpanMillis)))
		down := plan.MinDownMillis + int64(st.Intn(int(plan.MaxDownMillis-plan.MinDownMillis+1)))
		events = append(events,
			Event{AtMillis: at, Kind: EventCrash, Node: ids[c]},
			Event{AtMillis: at + down, Kind: EventRestart, Node: ids[c]},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].AtMillis != events[j].AtMillis {
			return events[i].AtMillis < events[j].AtMillis
		}
		if events[i].Kind != events[j].Kind {
			return events[i].Kind == EventCrash
		}
		return events[i].Node < events[j].Node
	})
	return Schedule{Seed: derived, Events: events}, nil
}
