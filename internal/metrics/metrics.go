// Package metrics provides the measurement plumbing shared by all
// experiments: per-hour time series (the x-axis of Figures 1 and 2),
// streaming mean/min/max aggregates (Figure 3(a)'s average first-result
// delay), histograms, and renderers that print paper-style tables to
// text and CSV.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a time series bucketed by fixed-width windows of simulated
// time (the paper buckets per hour).
type Series struct {
	bucketSec float64
	counts    []float64
}

// NewSeries returns a series with the given bucket width in seconds.
func NewSeries(bucketSec float64) *Series {
	if bucketSec <= 0 {
		panic(fmt.Sprintf("metrics: non-positive bucket width %v", bucketSec))
	}
	return &Series{bucketSec: bucketSec}
}

// Add accumulates v into the bucket containing time now.
func (s *Series) Add(now, v float64) {
	b := int(now / s.bucketSec)
	if b < 0 {
		panic(fmt.Sprintf("metrics: negative time %v", now))
	}
	for len(s.counts) <= b {
		s.counts = append(s.counts, 0)
	}
	s.counts[b] += v
}

// Incr is Add(now, 1).
func (s *Series) Incr(now float64) { s.Add(now, 1) }

// Bucket returns the accumulated value of bucket b (0 when untouched).
func (s *Series) Bucket(b int) float64 {
	if b < 0 || b >= len(s.counts) {
		return 0
	}
	return s.counts[b]
}

// Len returns the number of buckets touched.
func (s *Series) Len() int { return len(s.counts) }

// Total returns the sum over all buckets.
func (s *Series) Total() float64 {
	t := 0.0
	for _, v := range s.counts {
		t += v
	}
	return t
}

// Values returns a copy of all buckets.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.counts))
	copy(out, s.counts)
	return out
}

// Window returns the sum of buckets [from, to).
func (s *Series) Window(from, to int) float64 {
	t := 0.0
	for b := from; b < to && b < len(s.counts); b++ {
		if b >= 0 {
			t += s.counts[b]
		}
	}
	return t
}

// Welford is a streaming mean/variance/min/max aggregate.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe folds one sample into the aggregate.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 when n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observed sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observed sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Histogram is a fixed-width bucket histogram over [lo, hi); samples
// outside the range land in the under/overflow buckets.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []uint64
	under     uint64
	over      uint64
	aggregate Welford
}

// NewHistogram builds a histogram with n equal buckets spanning
// [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v)/%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]uint64, n)}
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(x float64) {
	h.aggregate.Observe(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		h.buckets[int((x-h.lo)/h.width)]++
	}
}

// N returns the total number of samples, including out-of-range ones.
func (h *Histogram) N() uint64 { return h.aggregate.N() }

// Mean returns the mean of all samples.
func (h *Histogram) Mean() float64 { return h.aggregate.Mean() }

// Quantile returns an approximate q-quantile (q in [0,1]) assuming
// uniform density within buckets. Out-of-range mass is attributed to
// the range boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	total := h.aggregate.N()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	acc := float64(h.under)
	if acc >= target {
		return h.lo
	}
	for i, c := range h.buckets {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		acc = next
	}
	return h.hi
}

// Counts returns a copy of the in-range bucket counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// Table renders experiment results in the row/column shape the paper
// reports. It exists so every experiment prints the same way in the CLI
// harness, the benchmarks and the tests.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise 3 significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed for our
// numeric content; commas in cells are replaced by semicolons).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(clean(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(clean(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SampleHours returns the paper's reporting hours: start, start+step,
// ... up to end inclusive (Figures 1-2 use 12, 27, 42, 57, 72, 87).
func SampleHours(start, step, end int) []int {
	if step <= 0 {
		panic(fmt.Sprintf("metrics: non-positive step %d", step))
	}
	var out []int
	for h := start; h <= end; h += step {
		out = append(out, h)
	}
	return out
}

// Monotone reports whether xs is non-decreasing.
func Monotone(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// ArgMax returns the index of the maximum element (first on ties), or
// -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Median returns the median of xs (0 for empty input). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}
