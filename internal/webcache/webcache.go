// Package webcache implements the distributed web-caching case study
// that motivates Sections 1–3 of the paper: Squid-like cooperating
// proxies with *pure asymmetric* neighbor relations, a one-hop search
// before falling back to the origin server, an explicit exploration
// process (Algo 2 — unlike Gnutella, search alone cannot discover
// distant proxies because misses go straight to the origin), and the
// unilateral neighbor update of Algo 3.
//
// The benefit function is the paper's web-proxy suggestion: "the number
// of retrieved pages, combined with the end-to-end latency".
//
// The timeline (placement, Poisson request arrivals, search dispatch)
// lives in internal/driver; this package keeps only the domain: the
// page workload, LRU caches with Bloom digests, and the
// explore/reconfigure processes.
package webcache

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/digest"
	"repro/internal/driver"
	"repro/internal/lru"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/pkg/search"
)

// Mode selects fixed random neighbors (baseline) or the framework's
// dynamic reconfiguration.
type Mode uint8

const (
	// Static keeps the initial random neighbor lists for the whole run.
	Static Mode = iota
	// Dynamic explores and reconfigures per Algos 2–3.
	Dynamic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Static:
		return "Static_Squid"
	case Dynamic:
		return "Dynamic_Squid"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes one web-caching run.
type Config struct {
	// Mode selects the baseline or the adaptive variant.
	Mode Mode
	// Web is the request workload.
	Web workload.WebConfig
	// Neighbors is the outgoing-list capacity (incoming is unbounded:
	// pure asymmetric, like top-level Squid proxies).
	Neighbors int
	// CacheCapacity is each proxy's LRU size in pages.
	CacheCapacity int
	// UseDigests guides the one-hop search by neighbor cache digests
	// ("use summary info if available").
	UseDigests bool
	// ExplorePeriodHours is the Algo 2 trigger period.
	ExplorePeriodHours float64
	// ExploreTTL is the exploration census depth.
	ExploreTTL int
	// ExploreProbes is how many recently missed pages one exploration
	// queries for.
	ExploreProbes int
	// ReconfigPeriodHours is the Algo 3 trigger period.
	ReconfigPeriodHours float64
	// OriginDelayMean is the mean origin-server fetch delay in seconds
	// (synthetic: the origin is far away; see DESIGN.md).
	OriginDelayMean float64
	// DurationHours is the simulated period.
	DurationHours int
	// Seed determines the run.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                mode,
		Web:                 workload.DefaultWebConfig(),
		Neighbors:           5,
		CacheCapacity:       500,
		UseDigests:          false,
		ExplorePeriodHours:  1,
		ExploreTTL:          2,
		ExploreProbes:       8,
		ReconfigPeriodHours: 2,
		OriginDelayMean:     1.0,
		DurationHours:       48,
		Seed:                1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Web.Validate(); err != nil {
		return err
	}
	switch {
	case c.Neighbors <= 0:
		return fmt.Errorf("webcache: non-positive neighbor capacity %d", c.Neighbors)
	case c.CacheCapacity <= 0:
		return fmt.Errorf("webcache: non-positive cache capacity %d", c.CacheCapacity)
	case c.Mode == Dynamic && (c.ExplorePeriodHours <= 0 || c.ReconfigPeriodHours <= 0):
		return fmt.Errorf("webcache: dynamic mode needs positive periods, got %+v", c)
	case c.Mode == Dynamic && c.ExploreTTL < 1:
		return fmt.Errorf("webcache: exploration TTL %d < 1", c.ExploreTTL)
	case c.OriginDelayMean <= 0:
		return fmt.Errorf("webcache: non-positive origin delay %v", c.OriginDelayMean)
	case c.DurationHours < 1:
		return fmt.Errorf("webcache: duration %d hours", c.DurationHours)
	}
	return nil
}

// Metrics aggregates one run.
type Metrics struct {
	// Requests, LocalHits, NeighborHits and OriginFetches are per-hour
	// series; every request falls in exactly one of the three outcomes.
	Requests, LocalHits, NeighborHits, OriginFetches *metrics.Series
	// Latency aggregates full request latencies in seconds.
	Latency metrics.Welford
	// Meter counts cooperation traffic (queries, explores, replies).
	Meter *netsim.Meter
	// Reconfigurations counts neighbor-list changes.
	Reconfigurations uint64
}

// NeighborHitRatio returns neighbor hits / requests over buckets
// [from, to).
func (m *Metrics) NeighborHitRatio(from, to int) float64 {
	req := m.Requests.Window(from, to)
	if req == 0 {
		return 0
	}
	return m.NeighborHits.Window(from, to) / req
}

// Sim is one bound web-caching run: the shared session driver plus the
// proxy-cache domain state.
type Sim struct {
	cfg       Config
	sess      *driver.Session
	space     *workload.WebSpace
	interests []int
	classes   []netsim.BandwidthClass
	caches    []*lru.LRU
	digests   []*digest.Bloom
	ledgers   []*stats.Ledger
	recent    [][]workload.PageID // recent misses, probe candidates
	met       *Metrics
	benefit   stats.Benefit
}

// New builds a run without starting it.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(cfg.Seed)
	space := workload.NewWebSpace(cfg.Web)
	n := cfg.Web.Proxies
	s := &Sim{
		cfg:       cfg,
		space:     space,
		interests: space.AssignInterests(root.Split()),
		classes:   netsim.AssignClasses(root.Split().Intn, n),
		caches:    make([]*lru.LRU, n),
		digests:   make([]*digest.Bloom, n),
		ledgers:   make([]*stats.Ledger, n),
		recent:    make([][]workload.PageID, n),
		benefit:   stats.HitRatePerLatency{Smoothing: 8},
		met: &Metrics{
			Requests:      metrics.NewSeries(3600),
			LocalHits:     metrics.NewSeries(3600),
			NeighborHits:  metrics.NewSeries(3600),
			OriginFetches: metrics.NewSeries(3600),
			Meter:         netsim.NewMeter(3600),
		},
	}
	for i := 0; i < n; i++ {
		s.caches[i] = lru.New(cfg.CacheCapacity)
		s.digests[i] = digest.NewBloom(cfg.CacheCapacity, 0.01)
		s.ledgers[i] = stats.NewLedger()
	}
	sess, err := driver.New(driver.Spec{
		Nodes:    n,
		Relation: topology.PureAsymmetric,
		OutCap:   cfg.Neighbors,
		Duration: float64(cfg.DurationHours) * 3600,
		// Initial random wiring for both variants; proxies never churn.
		Place:    driver.RandomWire(cfg.Neighbors),
		Arrivals: driver.Poisson{RatePerHour: cfg.Web.RequestsPerHour},
		Content:  core.ContentFunc(s.hasPage),
		Classes:  func(id topology.NodeID) netsim.BandwidthClass { return s.classes[id] },
		Search:   s.searchOptions,
		OnQuery:  s.handleRequest,
		After:    s.scheduleDynamicProcesses,
	}, root)
	if err != nil {
		panic(err)
	}
	s.sess = sess
	return s
}

// searchOptions assembles the facade. Policies are registry-selected
// by name — the digest-guided family gets its oracle via WithDigest.
// No fallback: a proxy that digests say cannot help is skipped; the
// origin server is the safety net.
func (s *Sim) searchOptions(*driver.Session) []search.Option {
	policy := search.WithPolicy("flood")
	var opts []search.Option
	if s.cfg.UseDigests {
		policy = search.WithPolicy("digest-guided")
		opts = append(opts, search.WithDigest(
			func(id topology.NodeID, key core.Key) bool {
				return s.digests[id].Contains(key)
			}, nil))
	}
	return append(opts,
		policy,
		// "most Squid implementations define the number of hops to
		// be 1"; the first result terminates the search.
		search.WithTTL(1),
		search.WithMaxResults(1))
}

func (s *Sim) hasPage(id topology.NodeID, key core.Key) bool {
	return s.caches[id].Contains(key)
}

// Engine exposes the simulator.
func (s *Sim) Engine() *sim.Engine { return s.sess.Engine() }

// Network exposes the neighbor graph.
func (s *Sim) Network() *topology.Network { return s.sess.Network() }

// Metrics returns the collected measurements.
func (s *Sim) Metrics() *Metrics { return s.met }

// Run executes the configured duration.
func (s *Sim) Run() *Metrics {
	s.sess.Run()
	return s.met
}

// scheduleDynamicProcesses arms Algo 2/3 tickers after the driver has
// armed every request process (so the stagger draws stay behind the
// placement draws on the topology stream).
func (s *Sim) scheduleDynamicProcesses() {
	if s.cfg.Mode != Dynamic {
		return
	}
	en := s.sess.Engine()
	topo := s.sess.TopoStream()
	for i := 0; i < s.cfg.Web.Proxies; i++ {
		id := topology.NodeID(i)
		// Stagger periodic processes so proxies do not reconfigure in
		// lockstep.
		off := topo.Float64()
		en.Ticker((off+0.02)*s.cfg.ExplorePeriodHours*3600, s.cfg.ExplorePeriodHours*3600,
			func(en *sim.Engine) { s.explore(id, en.Now()) })
		en.Ticker((off+0.51)*s.cfg.ReconfigPeriodHours*3600, s.cfg.ReconfigPeriodHours*3600,
			func(en *sim.Engine) { s.reconfigure(id) })
	}
}

// handleRequest serves one client request at proxy id (Algo 1's
// "On End-user Request Arrival" with the web-caching parameters:
// hops = 1, first result terminates, origin fallback).
func (s *Sim) handleRequest(id topology.NodeID, now float64) {
	page := s.space.SampleRequest(s.sess.QueryStream(id), s.interests[id])
	s.met.Requests.Incr(now)

	if s.caches[id].Get(page) {
		s.met.LocalHits.Incr(now)
		s.met.Latency.Observe(0.002) // LAN-local service time
		return
	}

	// Track which neighbors this query actually probed: ICP-style
	// cooperation answers every probe with HIT or MISS, and both
	// observations feed the benefit statistics.
	var probed []topology.NodeID
	outcome := s.sess.Do(search.Query{
		ID:     uint64(id)<<40 | uint64(s.met.Requests.Total()),
		Key:    page,
		Origin: id,
		OnMessage: func(from, to topology.NodeID) {
			s.met.Meter.Count(netsim.MsgQuery, now, 1)
			if from == id {
				probed = append(probed, to)
			}
		},
	})

	led := s.ledgers[id]
	holder := topology.None
	if outcome.Found() {
		holder = outcome.Hits[0].Holder
	}
	for _, nb := range probed {
		rec := led.Touch(nb)
		rec.Replies++
		rec.LatencySum += 2 * s.sess.SampleDelay(id, nb) // probe round trip
		rec.LastSeen = now
	}
	if outcome.Found() {
		res := outcome.Hits[0]
		s.met.NeighborHits.Incr(now)
		// Fetch costs one more round trip to the serving neighbor.
		fetch := 2 * s.sess.SampleDelay(id, res.Holder)
		s.met.Latency.Observe(res.Delay + fetch)
		rec := led.Touch(holder)
		rec.Hits++
		rec.Results++
	} else {
		// Origin fallback: the web server plays the alternative
		// repository role, so no deeper search is attempted.
		s.met.OriginFetches.Incr(now)
		d := s.sess.DelayStream().BoundedNormal(s.cfg.OriginDelayMean, 0.2,
			s.cfg.OriginDelayMean/2, s.cfg.OriginDelayMean*2)
		s.met.Latency.Observe(d)
		s.rememberMiss(id, page)
	}
	s.insert(id, page)
}

// rememberMiss records a missed page as an exploration probe candidate.
func (s *Sim) rememberMiss(id topology.NodeID, page workload.PageID) {
	r := s.recent[id]
	if len(r) >= 64 {
		copy(r, r[1:])
		r = r[:len(r)-1]
	}
	s.recent[id] = append(r, page)
}

// insert stores a fetched page locally and maintains the proxy digest.
func (s *Sim) insert(id topology.NodeID, page workload.PageID) {
	s.caches[id].Put(page)
	// Bloom filters cannot delete; the digest accumulates until its
	// periodic rebuild in explore (stale entries only cause harmless
	// extra probes).
	s.digests[id].Add(page)
}

// explore runs Algo 2 for one proxy: census the ExploreTTL-hop
// neighborhood for recently missed pages, record findings, refresh the
// local digest.
func (s *Sim) explore(id topology.NodeID, now float64) {
	// Rebuild the digest from live cache contents so remote peers see
	// bounded staleness.
	s.digests[id] = digest.NewBloom(s.cfg.CacheCapacity, 0.01)
	for _, k := range s.caches[id].Keys() {
		s.digests[id].Add(k)
	}

	probes := s.recent[id]
	if len(probes) == 0 {
		return
	}
	if len(probes) > s.cfg.ExploreProbes {
		probes = probes[len(probes)-s.cfg.ExploreProbes:]
	}
	out := s.sess.Explore(search.Exploration{
		Keys:   append([]workload.PageID(nil), probes...),
		Origin: id,
		TTL:    s.cfg.ExploreTTL,
		OnMessage: func(_, _ topology.NodeID) {
			s.met.Meter.Count(netsim.MsgExplore, now, 1)
		},
	})
	core.RecordFindings(s.ledgers[id], out, now, func(topology.NodeID) float64 { return 1 })
}

// reconfigure runs Algo 3 for one proxy: unilateral top-K update of the
// outgoing list by hits-per-latency benefit.
func (s *Sim) reconfigure(id topology.NodeID) {
	net := s.sess.Network()
	desired := core.PlanAsymmetric(s.ledgers[id], s.benefit, s.cfg.Neighbors,
		net.Node(id).Out.IDs(),
		func(p topology.NodeID) bool { return p != id })
	added, removed := core.ApplyOutList(net, id, desired)
	if len(added) > 0 || len(removed) > 0 {
		s.met.Reconfigurations++
	}
}
