package metrics

import (
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of fixed geometric buckets a
// LatencyHistogram carries. Bucket k covers [2^k, 2^(k+1)) microseconds,
// so 28 buckets span 1µs to ~4.5 minutes — every latency a serving
// plane can plausibly report, with ~2x resolution at every scale.
const latencyBuckets = 28

// LatencyHistogram is a fixed-bucket latency histogram safe for
// concurrent writers and readers without locks: every bucket is an
// atomic counter, so a serving hot path records one observation with a
// single atomic add and no allocation. It is the concurrency-safe
// sibling of Histogram, specialized to durations: buckets are fixed
// powers of two in microseconds, which keeps the memory footprint
// constant and the quantile estimate within 2x at every scale —
// exactly enough to tell a 100µs path from a 100ms one, which is what
// a tail-latency dashboard needs.
//
// The zero value is ready to use.
type LatencyHistogram struct {
	buckets [latencyBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// latencyBucket maps a duration to its bucket index.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[latencyBucket(d)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(uint64(d.Microseconds()))
}

// N returns the number of recorded samples.
func (h *LatencyHistogram) N() uint64 { return h.count.Load() }

// MeanMicros returns the mean sample in microseconds (0 when empty).
func (h *LatencyHistogram) MeanMicros() uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sumUS.Load() / n
}

// QuantileMicros returns an approximate q-quantile (q in [0,1]) in
// microseconds, assuming uniform density within each power-of-two
// bucket. Concurrent writers may skew an in-flight read by a few
// samples; the estimate is for dashboards, not invariants.
func (h *LatencyHistogram) QuantileMicros(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var counts [latencyBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	acc := 0.0
	for i, c := range counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			lo := float64(uint64(1) << i) // bucket i covers [2^i, 2^(i+1)) µs
			frac := (target - acc) / float64(c)
			return uint64(lo + frac*lo)
		}
		acc = next
	}
	return uint64(1) << (latencyBuckets - 1)
}

// Latency returns the histogram registered under name, creating it on
// first use. Like Counter, the returned pointer is stable: hot paths
// resolve once and Observe through the pointer.
func (r *Registry) Latency(name string) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.h[name]
	if !ok {
		if r.h == nil {
			r.h = make(map[string]*LatencyHistogram)
		}
		h = &LatencyHistogram{}
		r.h[name] = h
	}
	return h
}

// latencySnapshot folds every registered histogram into the snapshot
// map as <name>_count and <name>_{p50,p95,p99}_us — tail latency in
// the same uint64 counter map /v1/stats already serves.
func (r *Registry) latencySnapshot(out map[string]uint64) {
	for name, h := range r.h {
		if h.N() == 0 {
			continue // an untouched endpoint has no tail to report
		}
		out[name+"_count"] = h.N()
		out[name+"_p50_us"] = h.QuantileMicros(0.50)
		out[name+"_p95_us"] = h.QuantileMicros(0.95)
		out[name+"_p99_us"] = h.QuantileMicros(0.99)
	}
}
