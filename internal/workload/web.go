package workload

import (
	"fmt"

	"repro/internal/digest"
	"repro/internal/rng"
)

// PageID identifies a web object, globally: interest*pagesPerInterest +
// rank-1. It doubles as the content key for the web-cache case study.
type PageID = digest.Key

// WebConfig parameterizes the distributed web-caching workload (the
// Squid-like scenario of Sections 1–3): cooperating proxies whose
// client populations have skewed, community-correlated interests.
type WebConfig struct {
	// Pages is the universe of distinct objects.
	Pages int
	// Interests partitions pages into interest communities (the analog
	// of music genres: proxies serving similar populations benefit from
	// neighboring).
	Interests int
	// PopularityTheta is the within-interest Zipf skew.
	PopularityTheta float64
	// Proxies is the number of cooperating caches.
	Proxies int
	// LocalFraction is the share of a proxy's requests drawn from its
	// own interest community.
	LocalFraction float64
	// RequestsPerHour is each proxy's client request rate.
	RequestsPerHour float64
}

// DefaultWebConfig returns a laptop-scale configuration with strongly
// clustered interests.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		Pages:           50_000,
		Interests:       20,
		PopularityTheta: 0.9,
		Proxies:         100,
		LocalFraction:   0.7,
		RequestsPerHour: 2000,
	}
}

// Validate reports configuration errors.
func (c WebConfig) Validate() error {
	switch {
	case c.Pages <= 0 || c.Interests <= 0 || c.Proxies <= 0:
		return fmt.Errorf("workload: non-positive sizes in %+v", c)
	case c.Pages%c.Interests != 0:
		return fmt.Errorf("workload: %d pages not divisible into %d interests", c.Pages, c.Interests)
	case c.LocalFraction < 0 || c.LocalFraction > 1:
		return fmt.Errorf("workload: local fraction %v outside [0,1]", c.LocalFraction)
	case c.RequestsPerHour <= 0:
		return fmt.Errorf("workload: non-positive request rate %v", c.RequestsPerHour)
	}
	return nil
}

// WebSpace is the page universe plus popularity structure.
type WebSpace struct {
	cfg         WebConfig
	perInterest int
	pop         *rng.Zipf
}

// NewWebSpace builds the page universe.
func NewWebSpace(cfg WebConfig) *WebSpace {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	per := cfg.Pages / cfg.Interests
	return &WebSpace{cfg: cfg, perInterest: per, pop: rng.NewZipf(per, cfg.PopularityTheta)}
}

// Config returns the generating configuration.
func (w *WebSpace) Config() WebConfig { return w.cfg }

// PagesPerInterest returns the community partition size.
func (w *WebSpace) PagesPerInterest() int { return w.perInterest }

// Page maps (interest, rank) to a PageID; rank is 1-based.
func (w *WebSpace) Page(interest, rank int) PageID {
	if interest < 0 || interest >= w.cfg.Interests || rank < 1 || rank > w.perInterest {
		panic(fmt.Sprintf("workload: page (%d,%d) out of range", interest, rank))
	}
	return PageID(interest*w.perInterest + rank - 1)
}

// Interest returns the community of a page.
func (w *WebSpace) Interest(p PageID) int { return int(p) / w.perInterest }

// AssignInterests gives each proxy an interest community, uniformly.
func (w *WebSpace) AssignInterests(s *rng.Stream) []int {
	out := make([]int, w.cfg.Proxies)
	for i := range out {
		out[i] = s.Intn(w.cfg.Interests)
	}
	return out
}

// SampleRequest draws the page a proxy's client population asks for:
// the proxy's own interest with probability LocalFraction, otherwise a
// uniform other interest; the page within the interest follows the
// popularity Zipf.
func (w *WebSpace) SampleRequest(s *rng.Stream, interest int) PageID {
	if !s.Bernoulli(w.cfg.LocalFraction) {
		other := s.Intn(w.cfg.Interests - 1)
		if other >= interest {
			other++
		}
		interest = other
	}
	return w.Page(interest, w.pop.Rank(s))
}
