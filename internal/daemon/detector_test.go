package daemon

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// dirRound is one gossip round with direction-aware delivery: member i
// contacting j pushes only when send(i,j) holds, and absorbs the
// response only when send(j,i) holds — the asymmetric-loss model the
// symmetric mesh.round cannot express. tick additionally runs the
// failure detector each round.
func (m *mesh) dirRound(seeds []string, fanout int, stream *rng.Stream, send func(from, to string) bool, tick bool) {
	for _, g := range m.gs {
		g.Beat()
		self := g.Self().Name
		targets := map[string]struct{}{}
		for _, s := range seeds {
			targets[s] = struct{}{}
		}
		for _, p := range g.Targets(fanout, stream.Intn) {
			targets[p.Name] = struct{}{}
		}
		delete(targets, self)
		for name := range targets {
			peer, ok := m.byName[name]
			if !ok {
				continue
			}
			if send != nil && !send(self, name) {
				continue // push lost
			}
			resp := peer.Exchange(g.Snapshot())
			if send != nil && !send(name, self) {
				continue // response lost
			}
			g.Absorb(resp)
		}
	}
	if tick {
		for _, g := range m.gs {
			g.Tick()
		}
	}
}

// A member that stops beating is suspected after SuspectAfter silent
// rounds and evicted from every view after EvictAfter, with the
// tombstone reporting it dead.
func TestDetectorSuspectsThenEvicts(t *testing.T) {
	const n = 4
	m := newMesh(n)
	stream := rng.New(5)
	alive := m.gs[:n-1]
	silent := m.gs[n-1].Self().Name

	// Full convergence first, everyone beating.
	for r := 0; r < 4; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}
	for _, g := range alive {
		if got := g.Status(silent); got != StatusAlive {
			t.Fatalf("%s sees %s as %s before silence", g.Self().Name, silent, got)
		}
	}

	// Now m03 goes silent: only the first three run rounds.
	live := &mesh{gs: alive, byName: m.byName}
	det := DefaultDetection()
	sawSuspect := false
	for r := uint64(1); r <= det.EvictAfter+1; r++ {
		live.dirRound([]string{"m00"}, 2, stream, nil, true)
		if r >= det.SuspectAfter && r < det.EvictAfter {
			if got := alive[0].Status(silent); got == StatusSuspect {
				sawSuspect = true
			}
		}
	}
	if !sawSuspect {
		t.Fatal("silent member never reached suspect status")
	}
	for _, g := range alive {
		if _, ok := g.Snapshot()[silent]; ok {
			t.Fatalf("%s still holds the dead member in view", g.Self().Name)
		}
		if got := g.Status(silent); got != StatusDead {
			t.Fatalf("%s reports dead member as %s", g.Self().Name, got)
		}
	}
}

// An evicted member that kept beating behind its partition rejoins
// immediately once reachable: its heartbeat outruns the tombstone.
func TestDetectorRejoinAmnestyAfterPartition(t *testing.T) {
	const n = 4
	m := newMesh(n)
	stream := rng.New(11)
	flappy := m.gs[n-1].Self().Name

	for r := 0; r < 4; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}

	// Partition m03 both ways; everyone keeps beating and ticking.
	cut := func(a, b string) bool { return a != flappy && b != flappy }
	det := DefaultDetection()
	for r := uint64(0); r < det.EvictAfter+2; r++ {
		m.dirRound([]string{"m00"}, 2, stream, cut, true)
	}
	if _, ok := m.gs[0].Snapshot()[flappy]; ok {
		t.Fatal("partitioned member was not evicted")
	}
	// The flapping side evicted the healthy majority too — that is the
	// point of the test: the damage must not be permanent.
	if got := len(m.gs[n-1].Snapshot()); got != 1 {
		t.Fatalf("flapping member still sees %d members while cut off", got)
	}

	// Heal. Both sides' heartbeats kept advancing past the tombstoned
	// beats, so amnesty readmits everyone without waiting for expiry.
	for r := 0; r < 6; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}
	for _, g := range m.gs {
		if got := len(g.Snapshot()); got != n {
			t.Fatalf("%s sees %d/%d members after heal", g.Self().Name, got, n)
		}
		for name := range g.Snapshot() {
			if got := g.Status(name); got != StatusAlive {
				t.Fatalf("%s sees %s as %s after heal", g.Self().Name, name, got)
			}
		}
	}
}

// A member that restarts from beat zero is blocked by its own
// tombstone only until the amnesty window expires, then rejoins.
func TestDetectorRestartRejoinsAfterAmnestyExpiry(t *testing.T) {
	g := NewGossip(Member{Name: "a"})
	det := Detection{SuspectAfter: 1, EvictAfter: 2, Amnesty: 3}
	g.SetDetection(det)
	g.Absorb(View{"b": {Name: "b", Beat: 50}})
	g.Tick() // records baseline
	g.Tick()
	evicted := g.Tick()
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("Tick evicted %v, want [b]", evicted)
	}

	// The restarted b comes back with a tiny beat: rejected while the
	// tombstone lives.
	g.Absorb(View{"b": {Name: "b", Beat: 1}})
	if _, ok := g.Snapshot()["b"]; ok {
		t.Fatal("tombstone failed to block a stale rejoin")
	}
	// After Amnesty rounds the tombstone expires and the same entry is
	// welcome again.
	for i := uint64(0); i < det.Amnesty; i++ {
		g.Tick()
	}
	g.Absorb(View{"b": {Name: "b", Beat: 2}})
	if _, ok := g.Snapshot()["b"]; !ok {
		t.Fatal("expired tombstone still blocks rejoin")
	}
}

// One-way link loss between two non-seed members (m03 hears m04, m04
// never hears m03 directly) must not break convergence: m03's view and
// heartbeats reach m04 relayed through the seed, nobody is falsely
// evicted, and the view stays fully alive after heal.
func TestGossipAsymmetricPartitionConverges(t *testing.T) {
	const n = 6
	m := newMesh(n)
	stream := rng.New(23)
	oneWayLoss := func(from, to string) bool {
		return !(from == "m03" && to == "m04") // m03 -> m04 messages vanish
	}
	for r := 0; r < 8; r++ {
		m.dirRound([]string{"m00"}, 2, stream, oneWayLoss, true)
	}
	for _, g := range m.gs {
		if got := len(g.Snapshot()); got != n {
			t.Fatalf("%s sees %d/%d members under one-way loss", g.Self().Name, got, n)
		}
	}
	if got := m.byName["m04"].Status("m03"); got != StatusAlive {
		t.Fatalf("relayed heartbeats left m03 %s at m04", got)
	}

	// Heal and keep going: still converged, still all alive.
	for r := 0; r < 4; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}
	for _, g := range m.gs {
		for name := range g.Snapshot() {
			if got := g.Status(name); got != StatusAlive {
				t.Fatalf("%s sees %s as %s after heal", g.Self().Name, name, got)
			}
		}
	}
}

// One-way loss on the bootstrap path itself (the seed never hears the
// joiner) isolates the joiner — nobody can relay a member the cluster
// has never heard of — but the moment the link heals, the cluster
// converges to one consistent view including it.
func TestGossipAsymmetricSeedLossHeals(t *testing.T) {
	const n = 4
	m := newMesh(n)
	stream := rng.New(29)
	loss := func(from, to string) bool {
		return !(from == "m01" && to == "m00") // the joiner's pushes vanish
	}
	for r := 0; r < 8; r++ {
		m.dirRound([]string{"m00"}, 2, stream, loss, true)
	}
	if got := len(m.byName["m01"].Snapshot()); got != 1 {
		t.Fatalf("unreachable joiner sees %d members, want isolation", got)
	}
	for _, g := range m.gs {
		if g.Self().Name == "m01" {
			continue
		}
		if got := len(g.Snapshot()); got != n-1 {
			t.Fatalf("%s sees %d members, want %d (joiner unheard)", g.Self().Name, got, n-1)
		}
	}

	// Heal: the joiner's next push reaches the seed and full membership
	// follows in bounded rounds with everyone alive.
	for r := 0; r < 6; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}
	for _, g := range m.gs {
		if got := len(g.Snapshot()); got != n {
			t.Fatalf("%s sees %d/%d members after heal", g.Self().Name, got, n)
		}
		for name := range g.Snapshot() {
			if got := g.Status(name); got != StatusAlive {
				t.Fatalf("%s sees %s as %s after heal", g.Self().Name, name, got)
			}
		}
	}
}

// A repeatedly flapping node may evict and be evicted while cut off,
// but each heal must restore full mutual membership — no healthy peer
// stays permanently evicted anywhere.
func TestFlappingNodeNeverPermanentlyEvictsHealthyPeer(t *testing.T) {
	const n = 5
	m := newMesh(n)
	stream := rng.New(31)
	flappy := "m04"
	cut := func(a, b string) bool { return a != flappy && b != flappy }
	det := DefaultDetection()

	for r := 0; r < 4; r++ {
		m.dirRound([]string{"m00"}, 2, stream, nil, true)
	}
	for flap := 0; flap < 3; flap++ {
		for r := uint64(0); r < det.EvictAfter+2; r++ {
			m.dirRound([]string{"m00"}, 2, stream, cut, true)
		}
		for r := 0; r < 8; r++ {
			m.dirRound([]string{"m00"}, 2, stream, nil, true)
		}
		for _, g := range m.gs {
			if got := len(g.Snapshot()); got != n {
				t.Fatalf("flap %d: %s sees %d/%d members after heal",
					flap, g.Self().Name, got, n)
			}
		}
	}
}

// Statuses and Suspects track the detector verdicts coherently.
func TestStatusesAndSuspects(t *testing.T) {
	g := NewGossip(Member{Name: "a"})
	g.SetDetection(Detection{SuspectAfter: 2, EvictAfter: 10, Amnesty: 5})
	g.Absorb(View{"b": {Name: "b", Beat: 1}, "c": {Name: "c", Beat: 1}})
	g.Tick() // baseline for b and c
	// c keeps beating, b goes silent.
	for i := 0; i < 3; i++ {
		g.Absorb(View{"c": {Name: "c", Beat: uint64(2 + i)}})
		g.Tick()
	}
	st := g.Statuses()
	if st["a"] != StatusAlive || st["c"] != StatusAlive {
		t.Fatalf("healthy members misjudged: %v", st)
	}
	if st["b"] != StatusSuspect {
		t.Fatalf("silent member is %s, want suspect", st["b"])
	}
	if s := g.Suspects(); len(s) != 1 || s[0] != "b" {
		t.Fatalf("Suspects() = %v, want [b]", s)
	}
	if got := g.Status("nobody"); got != StatusDead {
		t.Fatalf("unknown member reported %s, want dead", got)
	}
}

// Sanity: fmt of statuses used in cluster JSON stays stable.
func TestMemberStatusStrings(t *testing.T) {
	for _, s := range []MemberStatus{StatusAlive, StatusSuspect, StatusDead} {
		if fmt.Sprint(s) == "" {
			t.Fatal("empty status string")
		}
	}
}
