// Command perfcheck turns `go test -bench` output into a BENCH_*.json
// artifact and gates CI on allocation regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x . | \
//	    go run ./cmd/perfcheck -out BENCH_ci.json -baseline BENCH_baseline.json
//
//	go run ./cmd/perfcheck -in bench.out -out BENCH_ci.json            # parse only
//	go run ./cmd/perfcheck -in bench.out -baseline BENCH_baseline.json # gate only
//	go run ./cmd/perfcheck -in bench.out -baseline BENCH_baseline.json -update
//
// The gate fails (exit 1) when any baseline benchmark worsens its
// allocs/op by more than -max-ratio (default 2), disappears, or drops
// the metric. Wall-clock metrics (ns/op) are *reported* — a per-entry
// baseline→current delta table on stderr — but never gated: CI
// machines are too noisy for time thresholds, while allocation counts
// are schedule-independent and stable.
//
// To refresh the baseline after an intentional change, run with
// -update (rewrites the -baseline file from the current run, skipping
// the gate) and commit the file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/perf"
)

func main() {
	var (
		in       = flag.String("in", "", "bench output file (default stdin)")
		out      = flag.String("out", "", "write parsed BENCH json here")
		baseline = flag.String("baseline", "", "checked-in baseline BENCH json to gate against")
		maxRatio = flag.Float64("max-ratio", 2, "fail when current allocs/op exceeds baseline*ratio")
		metric   = flag.String("metric", "allocs/op", "comma-free metric name to gate on")
		update   = flag.Bool("update", false, "rewrite the -baseline file from this run instead of gating")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, err := perf.ParseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(rep.Entries) == 0 {
		fatal(fmt.Errorf("perfcheck: no benchmark results in input"))
	}
	fmt.Fprintf(os.Stderr, "perfcheck: parsed %d benchmark entries\n", len(rep.Entries))

	if *out != "" {
		if err := rep.Write(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfcheck: wrote %s\n", *out)
	}

	if *baseline == "" {
		if *update {
			fatal(fmt.Errorf("perfcheck: -update needs -baseline to know which file to rewrite"))
		}
		return
	}
	if *update {
		if err := rep.Write(*baseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfcheck: baseline %s rewritten from this run (no gate)\n", *baseline)
		return
	}
	base, err := perf.Read(*baseline)
	if err != nil {
		fatal(err)
	}
	reportTimeDeltas(base, rep)
	regs := perf.Compare(base, rep, *maxRatio, *metric)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %d %s regression(s) beyond %.1fx:\n", len(regs), *metric, *maxRatio)
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", g)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perfcheck: %s within %.1fx of baseline for all %d entries\n",
		*metric, *maxRatio, len(base.Entries))
}

// reportTimeDeltas prints the per-entry ns/op movement against the
// baseline — informational only, never gated (wall-clock is machine-
// and schedule-dependent; the trajectory matters, not a threshold).
func reportTimeDeltas(base, cur *perf.Report) {
	dst := os.Stderr
	fmt.Fprintln(dst, "perfcheck: ns/op vs baseline (reported, never gated):")
	names := make([]string, 0, len(base.Entries))
	for _, e := range base.Entries {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv, ok := base.Get(name).Metric("ns/op")
		if !ok {
			continue
		}
		ce := cur.Get(name)
		if ce == nil {
			fmt.Fprintf(dst, "  %-40s %12.0f -> (missing)\n", name, bv)
			continue
		}
		cv, ok := ce.Metric("ns/op")
		if !ok {
			fmt.Fprintf(dst, "  %-40s %12.0f -> (no ns/op)\n", name, bv)
			continue
		}
		ratio := 0.0
		if bv > 0 {
			ratio = cv / bv
		}
		fmt.Fprintf(dst, "  %-40s %12.0f -> %12.0f  (%.2fx)\n", name, bv, cv, ratio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
