package live

import (
	"testing"
	"time"
)

// A Send stuck in dial backoff against a dead peer must return as soon
// as the transport closes — a draining daemon cannot wait out another
// peer's retry ladder.
func TestTCPCloseUnblocksDialBackoff(t *testing.T) {
	tr := NewTCPTransport()
	tr.DialBackoff = 10 * time.Second // long enough that only Close can end the wait
	tr.MaxDialAttempts = 4
	// A port nothing listens on: every dial fails instantly, so Send
	// parks in the first backoff sleep.
	tr.SetAddr(9, "127.0.0.1:1")

	errc := make(chan error, 1)
	go func() { errc <- tr.Send(9, Envelope{Type: MsgQuery, From: 1}) }()

	time.Sleep(50 * time.Millisecond) // let Send reach the backoff sleep
	start := time.Now()
	tr.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Send succeeded against a dead peer")
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("Send took %v to observe Close", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked after Close")
	}

	// After Close the transport fails fast instead of re-entering retry.
	start = time.Now()
	if err := tr.Send(9, Envelope{Type: MsgQuery, From: 1}); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("post-Close Send took %v", waited)
	}
}

// The jittered backoff stays inside [base/2, base] — enough spread to
// de-synchronize peers without stretching the retry ladder.
func TestTCPBackoffJitterBounds(t *testing.T) {
	tr := NewTCPTransport()
	base := 80 * time.Millisecond
	lo, hi := base, time.Duration(0)
	for i := 0; i < 1000; i++ {
		j := tr.jitter(base)
		if j < base/2 || j > base {
			t.Fatalf("jitter(%v) = %v outside [%v, %v]", base, j, base/2, base)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	if hi-lo < base/8 {
		t.Fatalf("jitter spread %v over 1000 draws — not spreading retries", hi-lo)
	}
}

// Cancel ends hit collection early and reports Stopped; Fanout counts
// the first-hop copies.
func TestQueryInfoCancelAndFanout(t *testing.T) {
	tr := NewChanTransport()
	origin := NewNode(Config{ID: 1, Neighbors: 4, TTL: 3, Transport: tr, Store: MapStore{}})
	tr.Attach(origin)
	origin.Start()
	defer origin.Stop()
	peer := NewNode(Config{ID: 2, Neighbors: 4, TTL: 3, Transport: tr, Store: MapStore{}})
	tr.Attach(peer)
	peer.Start()
	defer peer.Stop()
	origin.AddNeighbor(2)

	cancel := make(chan struct{})
	close(cancel) // fires immediately: collection must end without waiting out Timeout
	start := time.Now()
	hits, info := origin.QueryInfo(QueryOpts{Key: 404, Timeout: 10 * time.Second, Cancel: cancel})
	if len(hits) != 0 {
		t.Fatalf("got %d hits for a missing key", len(hits))
	}
	if !info.Stopped {
		t.Fatal("Cancel did not mark the query Stopped")
	}
	if info.Fanout != 1 {
		t.Fatalf("Fanout = %d, want 1", info.Fanout)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("canceled query waited out the timeout")
	}

	// Without Cancel the same query times out normally, not Stopped.
	_, info = origin.QueryInfo(QueryOpts{Key: 404, Timeout: 20 * time.Millisecond})
	if info.Stopped {
		t.Fatal("timed-out query wrongly marked Stopped")
	}
}

// An origin with no neighbors reports Fanout 0 — the isolated-node
// signal the daemon surfaces as a degraded response.
func TestQueryInfoZeroFanoutWhenIsolated(t *testing.T) {
	tr := NewChanTransport()
	n := NewNode(Config{ID: 1, Neighbors: 4, TTL: 3, Transport: tr, Store: MapStore{}})
	tr.Attach(n)
	n.Start()
	defer n.Stop()
	_, info := n.QueryInfo(QueryOpts{Key: 7, Timeout: 5 * time.Millisecond})
	if info.Fanout != 0 {
		t.Fatalf("Fanout = %d for an isolated node", info.Fanout)
	}
}
