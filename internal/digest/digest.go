// Package digest implements the summarized-information structures that
// Algo 1 of the paper refers to ("use summary info if available") and
// that Yang & Garcia-Molina's Local Indices technique requires: Bloom
// filters over content keys (the cache-digest approach used by Squid),
// and k-hop local indices that aggregate neighbors' digests.
//
// Digests let a search policy skip neighbors that certainly do not hold
// the requested key: Bloom filters have no false negatives, so skipping
// on a negative membership test never loses results.
package digest

import (
	"fmt"
	"math"
)

// Key is a content identifier (a song, page or chunk ID hashed by the
// application).
type Key uint64

// Bloom is a standard Bloom filter with k hash functions derived from
// one 64-bit mix via the Kirsch-Mitzenmacher double-hashing scheme.
type Bloom struct {
	bits  []uint64
	nbits uint64
	k     int
	count uint64 // inserted keys (approximate set size)
}

// NewBloom sizes a filter for the expected number of keys n at the
// target false-positive rate fp (0 < fp < 1).
func NewBloom(n int, fp float64) *Bloom {
	if n <= 0 {
		panic(fmt.Sprintf("digest: NewBloom with n=%d", n))
	}
	if fp <= 0 || fp >= 1 {
		panic(fmt.Sprintf("digest: NewBloom with fp=%v", fp))
	}
	// Optimal parameters: m = -n ln fp / (ln 2)^2, k = (m/n) ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), nbits: m, k: k}
}

// hash2 derives two independent 64-bit hashes from a key.
func hash2(key Key) (h1, h2 uint64) {
	z := uint64(key)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h1 = z ^ (z >> 31)
	z = h1 * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 29)) * 0xff51afd7ed558ccd
	h2 = z ^ (z >> 32)
	// h2 must be odd so the double-hash probes cover the bit space.
	h2 |= 1
	return
}

// Add inserts key.
func (b *Bloom) Add(key Key) {
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.count++
}

// Contains reports whether key may be present. False positives are
// possible; false negatives are not.
func (b *Bloom) Contains(key Key) bool {
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls (with multiplicity).
func (b *Bloom) Count() uint64 { return b.count }

// Bits returns the filter size in bits.
func (b *Bloom) Bits() uint64 { return b.nbits }

// K returns the number of hash probes per key.
func (b *Bloom) K() int { return b.k }

// FillRatio returns the fraction of set bits; the expected false
// positive rate is FillRatio^k.
func (b *Bloom) FillRatio() float64 {
	ones := 0
	for _, w := range b.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(b.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Union merges other into b in place. Both filters must have identical
// geometry (bits and k); Union panics otherwise because merging
// incompatible filters silently corrupts membership.
func (b *Bloom) Union(other *Bloom) {
	if b.nbits != other.nbits || b.k != other.k {
		panic(fmt.Sprintf("digest: union of incompatible filters (%d/%d bits, k %d/%d)",
			b.nbits, other.nbits, b.k, other.k))
	}
	for i := range b.bits {
		b.bits[i] |= other.bits[i]
	}
	b.count += other.count
}

// Clone returns a deep copy.
func (b *Bloom) Clone() *Bloom {
	bits := make([]uint64, len(b.bits))
	copy(bits, b.bits)
	return &Bloom{bits: bits, nbits: b.nbits, k: b.k, count: b.count}
}

// Clear resets the filter to empty.
func (b *Bloom) Clear() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.count = 0
}
