package searchclient

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestKeepAliveReuse pins the client's connection-pooling contract:
// sequential calls through one Client reuse a kept-alive connection
// instead of dialing per request. The server side counts fresh TCP
// connections via ConnState.
func TestKeepAliveReuse(t *testing.T) {
	var newConns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(QueryResponse{Origin: 1})
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(ts.URL)
	const calls = 64
	for i := 0; i < calls; i++ {
		if _, err := c.Query(context.Background(), QueryRequest{Key: uint64(i)}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// One connection should carry all sequential calls; allow a little
	// slack for an idle-timeout race but nothing near one-per-call.
	if got := newConns.Load(); got > 3 {
		t.Fatalf("keep-alive not reused: %d new connections for %d sequential calls", got, calls)
	}
}

// TestKeepAliveReuseConcurrent checks the pool is wide enough that a
// concurrent burst settles onto a bounded connection set instead of
// churning dials (the stdlib default of 2 idle conns per host would).
func TestKeepAliveReuseConcurrent(t *testing.T) {
	var newConns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(QueryResponse{Origin: 1})
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(ts.URL)
	const workers, rounds = 8, 32
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < rounds; i++ {
				if _, err := c.Query(context.Background(), QueryRequest{Key: 1}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("query: %v", err)
		}
	}
	// 8 workers need at most ~8 live conns; with MaxIdleConnsPerHost=32
	// every one of them goes back to the pool between rounds. Anything
	// beyond a small multiple of the worker count means churn.
	if got := newConns.Load(); got > workers*2 {
		t.Fatalf("connection churn: %d new connections for %d concurrent calls",
			got, workers*rounds)
	}
}

// TestQueryBatchPipelinedReassembly checks chunked pipelined batches
// come back in request order with per-item integrity, regardless of
// chunk boundaries and in-flight interleaving.
func TestQueryBatchPipelinedReassembly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var breq BatchQueryRequest
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var bresp BatchQueryResponse
		bresp.Results = make([]BatchItem, len(breq.Queries))
		for i, q := range breq.Queries {
			// Echo the key back as the origin so the caller can verify
			// slot i holds the answer to query i.
			bresp.Results[i].Origin = int(q.Key)
		}
		json.NewEncoder(w).Encode(bresp)
	}))
	defer ts.Close()

	c := New(ts.URL)
	const n = 100
	reqs := make([]QueryRequest, n)
	for i := range reqs {
		reqs[i].Key = uint64(i)
	}
	resp, err := c.QueryBatchPipelined(context.Background(), reqs, 7, 3)
	if err != nil {
		t.Fatalf("pipelined: %v", err)
	}
	if len(resp.Results) != n {
		t.Fatalf("got %d results, want %d", len(resp.Results), n)
	}
	for i, it := range resp.Results {
		if it.Origin != i {
			t.Fatalf("result %d reassembled out of order: origin %d", i, it.Origin)
		}
	}
}
