package core

import (
	"repro/internal/eventq"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Exploration implements Algo 2: a metadata-only query about a
// collection of data items that propagates like a search but fetches
// nothing — visited repositories "return statistics and summarized
// information", and the initiator uses the findings to update the
// ledger from which neighbor updates are computed.
//
// Unlike a search, an exploration never stops at serving nodes: its
// purpose is to census the neighborhood out to the TTL.
type Exploration struct {
	// Keys is the set of data items to query for (Algo 2: "select set
	// of data items to query for").
	Keys []Key
	// Origin is the initiating repository.
	Origin topology.NodeID
	// TTL bounds propagation depth.
	TTL int
}

// Finding is one visited repository's report.
type Finding struct {
	// Node is the reporting repository.
	Node topology.NodeID
	// Held lists which of the probed keys the repository holds.
	Held []Key
	// Hops is the forward-path distance from the initiator.
	Hops int
	// Delay is when the report arrived back at the initiator (seconds
	// after the exploration started), over the reverse route.
	Delay float64
}

// ExploreOutcome aggregates an exploration round.
type ExploreOutcome struct {
	// Findings holds one entry per visited repository, in arrival
	// order, including repositories that hold none of the keys (their
	// statistics still matter: a NOT-FOUND reply is information).
	Findings []Finding
	// Messages counts exploration propagations (metered as MsgExplore
	// by callers).
	Messages uint64
	// ReplyMessages counts report hops on reverse routes.
	ReplyMessages uint64
}

// Holders returns the nodes that reported holding key.
func (o *ExploreOutcome) Holders(key Key) []topology.NodeID {
	var out []topology.NodeID
	for _, f := range o.Findings {
		for _, k := range f.Held {
			if k == key {
				out = append(out, f.Node)
				break
			}
		}
	}
	return out
}

// Explore runs one exploration round over the cascade's topology view.
// The cascade's Forward policy selects propagation targets exactly as
// in search; OnMessage metering is the caller's (exploration traffic is
// usually metered as netsim.MsgExplore).
func (c *Cascade) Explore(x *Exploration) *ExploreOutcome {
	if c.Graph == nil || c.Content == nil || c.Forward == nil {
		panic("core: Cascade requires Graph, Content and Forward")
	}
	if x.TTL < 0 {
		panic("core: negative exploration TTL")
	}
	delay := c.Delay
	if delay == nil {
		delay = ZeroDelay
	}
	ledger := func(topology.NodeID) *stats.Ledger { return nil }
	if c.Ledger != nil {
		ledger = c.Ledger
	}
	// Exploration reuses the query-shaped forward policies; the pseudo
	// query carries no key semantics (policies only inspect Origin).
	pseudo := &Query{Origin: x.Origin, TTL: x.TTL}

	out := &ExploreOutcome{}
	visited := map[topology.NodeID]*visitState{x.Origin: {parent: topology.None}}
	pq := eventq.New()

	send := func(from, to topology.NodeID, t float64, hops int) {
		out.Messages++
		if c.OnMessage != nil {
			c.OnMessage(from, to)
		}
		pq.Push(t+delay(from, to), arrival{node: to, from: from, hops: hops})
	}

	if x.TTL >= 1 {
		for _, n := range c.Forward.Select(pseudo, x.Origin, topology.None, c.Graph.Out(x.Origin), ledger(x.Origin)) {
			send(x.Origin, n, 0, 1)
		}
	}

	for {
		item := pq.Pop()
		if item == nil {
			break
		}
		now := item.Time
		a := item.Value.(arrival)
		if _, dup := visited[a.node]; dup {
			continue
		}
		if !c.Graph.Online(a.node) {
			continue
		}
		visited[a.node] = &visitState{parent: a.from, forwardDelay: now, hops: a.hops}

		var held []Key
		for _, k := range x.Keys {
			if c.Content.HasContent(a.node, k) {
				held = append(held, k)
			}
		}
		// The report travels the reverse route regardless of outcome.
		replyDelay := 0.0
		node := a.node
		for node != x.Origin {
			s := visited[node]
			replyDelay += delay(node, s.parent)
			out.ReplyMessages++
			if c.OnReplyHop != nil {
				c.OnReplyHop(node, s.parent)
			}
			node = s.parent
		}
		out.Findings = append(out.Findings, Finding{
			Node:  a.node,
			Held:  held,
			Hops:  a.hops,
			Delay: now + replyDelay,
		})

		if a.hops >= x.TTL {
			continue
		}
		for _, n := range c.Forward.Select(pseudo, a.node, a.from, c.Graph.Out(a.node), ledger(a.node)) {
			send(a.node, n, now, a.hops+1)
		}
	}
	return out
}

// RecordFindings folds an exploration outcome into the initiator's
// ledger ("obtain results and update statistics"): every reporting node
// gets a reply observation; nodes holding probed keys get hit/result
// credit weighted by weight (the application's benefit increment, e.g.
// the bandwidth weight of the reporting link).
func RecordFindings(led *stats.Ledger, o *ExploreOutcome, now float64, weight func(topology.NodeID) float64) {
	for _, f := range o.Findings {
		r := led.Touch(f.Node)
		r.Replies++
		r.LatencySum += f.Delay
		r.LastSeen = now
		if len(f.Held) > 0 {
			r.Hits++
			r.Results += uint64(len(f.Held))
			if weight != nil {
				r.Benefit += weight(f.Node) * float64(len(f.Held))
			}
		}
	}
}
