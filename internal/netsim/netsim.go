// Package netsim models the network substrate of Section 4.2 of the
// paper: each user is connected through one of three access-link
// classes (56K modem, cable modem, LAN), and the one-way delay between
// two users is a truncated normal whose mean is governed by the slower
// endpoint (300 ms, 150 ms or 70 ms, σ = 20 ms).
//
// The package also provides message accounting (per-hour counters used
// for the "query overhead" figures) so that every case study meters
// traffic the same way.
package netsim

import "fmt"

// BandwidthClass is a user's access-link class. Ordering matters: a
// larger value is a faster link, and pairwise delay is governed by the
// minimum of the two endpoint classes.
type BandwidthClass uint8

// The three classes of Section 4.2, equally likely per user.
const (
	Modem56K BandwidthClass = iota // 56 kbit/s dial-up
	Cable                          // cable modem
	LAN                            // campus/office LAN
	numClasses
)

// String implements fmt.Stringer.
func (c BandwidthClass) String() string {
	switch c {
	case Modem56K:
		return "56K"
	case Cable:
		return "cable"
	case LAN:
		return "LAN"
	default:
		return fmt.Sprintf("BandwidthClass(%d)", uint8(c))
	}
}

// Weight returns the benefit weight B of the class, used by the
// paper's benefit function B/R. The paper only requires bandwidth
// ordering; we use relative weights 1:2:4.
func (c BandwidthClass) Weight() float64 {
	switch c {
	case Modem56K:
		return 1
	case Cable:
		return 2
	case LAN:
		return 4
	default:
		panic(fmt.Sprintf("netsim: unknown bandwidth class %d", c))
	}
}

// meanDelaySec maps the governing (slower) class to the mean one-way
// delay of Section 4.2.
func (c BandwidthClass) meanDelaySec() float64 {
	switch c {
	case Modem56K:
		return 0.300
	case Cable:
		return 0.150
	case LAN:
		return 0.070
	default:
		panic(fmt.Sprintf("netsim: unknown bandwidth class %d", c))
	}
}

// DelaySigma is the standard deviation of the one-way delay (Section
// 4.2: "the standard deviation is set to 20ms for all cases").
const DelaySigma = 0.020

// delayBound is the truncation half-width. The scanned paper's interval
// is unreadable; ±2.5σ (= 50 ms) keeps all delays strictly positive for
// every class — including LAN's 70 ms mean — while discarding only
// ≈1.2 % of the normal mass.
const delayBound = 2.5 * DelaySigma

// Sampler draws pairwise one-way delays. It is satisfied by
// *rng.Stream; the small interface keeps netsim decoupled from the rng
// package for testing.
type Sampler interface {
	BoundedNormal(mean, stddev, lo, hi float64) float64
}

// Govern returns the class that governs the delay between endpoints a
// and b: the slower of the two.
func Govern(a, b BandwidthClass) BandwidthClass {
	if a < b {
		return a
	}
	return b
}

// OneWayDelay samples the one-way delay in seconds between endpoints of
// classes a and b.
func OneWayDelay(s Sampler, a, b BandwidthClass) float64 {
	mean := Govern(a, b).meanDelaySec()
	return s.BoundedNormal(mean, DelaySigma, mean-delayBound, mean+delayBound)
}

// MeanOneWayDelay returns the analytic mean delay between classes a and
// b (useful for closed-form sanity checks in tests).
func MeanOneWayDelay(a, b BandwidthClass) float64 {
	return Govern(a, b).meanDelaySec()
}

// AssignClasses returns n bandwidth classes, each drawn equally likely
// among the three classes (Section 4.2: "each user is equally likely to
// be connected through a 56K modem, a cable modem or a LAN").
func AssignClasses(intn func(int) int, n int) []BandwidthClass {
	out := make([]BandwidthClass, n)
	for i := range out {
		out[i] = BandwidthClass(intn(int(numClasses)))
	}
	return out
}
