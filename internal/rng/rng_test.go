package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling child streams produced identical first output")
	}
	// Splitting must not change determinism of the parent continuation.
	p2 := New(7)
	p2.Split()
	p2.Split()
	parent2 := New(7)
	parent2.Split()
	parent2.Split()
	if p2.Uint64() != parent2.Uint64() {
		t.Fatal("parent stream after splits is not deterministic")
	}
}

func TestSplitN(t *testing.T) {
	kids := New(3).SplitN(16)
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("SplitN produced colliding child streams")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(19)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const mean, n = 3.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpPositive(t *testing.T) {
	s := New(29)
	for i := 0; i < 100000; i++ {
		if v := s.Exp(1); v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestNormalMoments(t *testing.T) {
	s := New(31)
	const mean, sd, n = 200.0, 50.0, 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mean, sd)
		sum += v
		sq += v * v
	}
	m := sum / n
	variance := sq/n - m*m
	if math.Abs(m-mean) > 1 {
		t.Fatalf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 1 {
		t.Fatalf("Normal stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestBoundedNormalRespectsBounds(t *testing.T) {
	s := New(37)
	lo, hi := 200.0, 400.0
	for i := 0; i < 100000; i++ {
		v := s.BoundedNormal(300, 20, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("BoundedNormal escaped [%v,%v]: %v", lo, hi, v)
		}
	}
}

func TestBoundedNormalPanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty interval did not panic")
		}
	}()
	New(1).BoundedNormal(0, 1, 5, 4)
}

func TestBoundedNormalPanicsOnFarInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal(">8σ interval did not panic")
		}
	}()
	New(1).BoundedNormal(0, 1, 100, 200)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(43)
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	got := Sample(s, xs, 10)
	if len(got) != 10 {
		t.Fatalf("Sample returned %d items, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("Sample returned duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestSampleAllWhenKTooLarge(t *testing.T) {
	s := New(47)
	xs := []int{1, 2, 3}
	got := Sample(s, xs, 10)
	if len(got) != 3 {
		t.Fatalf("Sample(k>len) returned %d items, want 3", len(got))
	}
}

func TestSampleUniform(t *testing.T) {
	// Every element should appear in a k-sample with probability k/n.
	s := New(53)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	for t := 0; t < trials; t++ {
		for _, v := range Sample(s, xs, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestPick(t *testing.T) {
	s := New(59)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[Pick(s, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(61)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestQuickFloat64InUnitInterval(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		s := New(seed)
		for i := 0; i < int(n); i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n)%1000 + 1
		s := New(seed)
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(200, 50)
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(3)
	}
}
