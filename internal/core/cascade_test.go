package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// testGraph adapts a topology.Network plus an online set to core.Graph.
type testGraph struct {
	net     *topology.Network
	offline map[topology.NodeID]bool
}

func (g *testGraph) Out(id topology.NodeID) []topology.NodeID { return g.net.Out(id) }
func (g *testGraph) Online(id topology.NodeID) bool           { return !g.offline[id] }

// chain builds 0 -> 1 -> 2 -> ... -> n-1 (asymmetric, so propagation is
// strictly forward).
func chain(n int) *testGraph {
	net := topology.NewNetwork(topology.PureAsymmetric, n, 4, 0)
	for i := 0; i < n-1; i++ {
		net.Connect(topology.NodeID(i), topology.NodeID(i+1))
	}
	return &testGraph{net: net, offline: map[topology.NodeID]bool{}}
}

// star builds 0 -> {1..n-1}.
func star(n int) *testGraph {
	net := topology.NewNetwork(topology.PureAsymmetric, n, n, 0)
	for i := 1; i < n; i++ {
		net.Connect(0, topology.NodeID(i))
	}
	return &testGraph{net: net, offline: map[topology.NodeID]bool{}}
}

func holders(ids ...topology.NodeID) Content {
	set := map[topology.NodeID]bool{}
	for _, id := range ids {
		set[id] = true
	}
	return ContentFunc(func(id topology.NodeID, _ Key) bool { return set[id] })
}

func TestCascadeFindsDirectNeighbor(t *testing.T) {
	g := star(5)
	c := &Cascade{Graph: g, Content: holders(3), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 42, Origin: 0, TTL: 1})
	if !o.Hit() || len(o.Results) != 1 || o.Results[0].Holder != 3 {
		t.Fatalf("outcome: %+v", o)
	}
	if o.Results[0].Hops != 1 {
		t.Fatalf("hops = %d", o.Results[0].Hops)
	}
	if o.Messages != 4 {
		t.Fatalf("messages = %d, want 4 (one per neighbor)", o.Messages)
	}
	if o.Visited != 4 {
		t.Fatalf("visited = %d", o.Visited)
	}
}

func TestCascadeTTLBoundsDepth(t *testing.T) {
	g := chain(6)
	c := &Cascade{Graph: g, Content: holders(4), Forward: Flood{}}
	// Holder at distance 4; TTL 3 must miss it.
	if o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 3}); o.Hit() {
		t.Fatal("TTL 3 reached distance-4 holder")
	}
	if o := c.Run(&Query{ID: 2, Key: 1, Origin: 0, TTL: 4}); !o.Hit() {
		t.Fatal("TTL 4 missed distance-4 holder")
	}
}

func TestCascadeTTLZeroSendsNothing(t *testing.T) {
	g := star(3)
	c := &Cascade{Graph: g, Content: holders(1), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 0})
	// TTL 0: the origin forwards (hop 1 arrivals exceed TTL... the
	// paper's TTL counts hops; TTL 0 means no propagation at all).
	if o.Hit() || o.Visited != 0 {
		t.Fatalf("TTL 0 outcome: %+v", o)
	}
}

func TestCascadeStopsAtServingNode(t *testing.T) {
	// 0 -> 1 -> 2, both 1 and 2 hold the key. With ForwardWhenHit
	// false, node 1 serves and does not forward; node 2 is never
	// reached.
	g := chain(3)
	c := &Cascade{Graph: g, Content: holders(1, 2), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 5})
	if len(o.Results) != 1 || o.Results[0].Holder != 1 {
		t.Fatalf("results: %+v", o.Results)
	}
	if o.Messages != 1 {
		t.Fatalf("messages = %d, want 1", o.Messages)
	}
}

func TestCascadeForwardWhenHit(t *testing.T) {
	g := chain(3)
	c := &Cascade{Graph: g, Content: holders(1, 2), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 5, ForwardWhenHit: true})
	if len(o.Results) != 2 {
		t.Fatalf("results: %+v", o.Results)
	}
}

func TestCascadeMaxResults(t *testing.T) {
	g := star(10)
	c := &Cascade{Graph: g, Content: holders(1, 2, 3, 4, 5, 6, 7, 8, 9), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 1, MaxResults: 3})
	if len(o.Results) != 3 {
		t.Fatalf("MaxResults violated: %d results", len(o.Results))
	}
}

func TestCascadeDuplicateSuppression(t *testing.T) {
	// Diamond: 0 -> {1, 2} -> 3. Node 3 receives the query twice but
	// must process it once; both transmissions count as messages.
	net := topology.NewNetwork(topology.PureAsymmetric, 4, 4, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	net.Connect(1, 3)
	net.Connect(2, 3)
	g := &testGraph{net: net, offline: map[topology.NodeID]bool{}}
	c := &Cascade{Graph: g, Content: holders(3), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2})
	if len(o.Results) != 1 {
		t.Fatalf("duplicate processing: %d results", len(o.Results))
	}
	if o.Messages != 4 {
		t.Fatalf("messages = %d, want 4 (both copies count)", o.Messages)
	}
	if o.Visited != 3 {
		t.Fatalf("visited = %d, want 3", o.Visited)
	}
}

func TestCascadeSkipsOfflineNodes(t *testing.T) {
	g := chain(3)
	g.offline[1] = true
	c := &Cascade{Graph: g, Content: holders(2), Forward: Flood{}}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 5})
	if o.Hit() {
		t.Fatal("query passed through an off-line node")
	}
	if o.Messages != 1 {
		t.Fatalf("messages = %d (the send still happens)", o.Messages)
	}
	if o.Visited != 0 {
		t.Fatalf("visited = %d", o.Visited)
	}
}

func TestCascadeDelayAccumulatesForwardAndReverse(t *testing.T) {
	g := chain(3)
	c := &Cascade{
		Graph: g, Content: holders(2), Forward: Flood{},
		Delay: func(_, _ topology.NodeID) float64 { return 0.1 },
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2})
	if !o.Hit() {
		t.Fatal("no hit")
	}
	// Forward 2 hops (0.2) + reverse 2 hops (0.2).
	if d := o.Results[0].Delay; d < 0.399 || d > 0.401 {
		t.Fatalf("delay = %v, want 0.4", d)
	}
	if o.FirstResultDelay != o.Results[0].Delay {
		t.Fatal("FirstResultDelay mismatch")
	}
	if o.ReplyMessages != 2 {
		t.Fatalf("reply messages = %d, want 2", o.ReplyMessages)
	}
}

func TestCascadeFirstResultDelayIsMinimum(t *testing.T) {
	// Star where two leaves hold the key at different delays.
	net := topology.NewNetwork(topology.PureAsymmetric, 3, 4, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	g := &testGraph{net: net, offline: map[topology.NodeID]bool{}}
	delays := map[topology.NodeID]float64{1: 0.5, 2: 0.1}
	c := &Cascade{
		Graph: g, Content: holders(1, 2), Forward: Flood{},
		Delay: func(_, to topology.NodeID) float64 {
			if d, ok := delays[to]; ok {
				return d
			}
			return delays[2] // reverse hops toward origin reuse leaf delay
		},
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 1})
	if len(o.Results) != 2 {
		t.Fatalf("results: %+v", o.Results)
	}
	if o.FirstResultDelay > o.Results[0].Delay && o.FirstResultDelay > o.Results[1].Delay {
		t.Fatal("FirstResultDelay is not the minimum")
	}
}

func TestCascadeMetersMessages(t *testing.T) {
	g := star(4)
	var sent, replied int
	c := &Cascade{
		Graph: g, Content: holders(2), Forward: Flood{},
		OnMessage:  func(_, _ topology.NodeID) { sent++ },
		OnReplyHop: func(_, _ topology.NodeID) { replied++ },
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 1})
	if uint64(sent) != o.Messages {
		t.Fatalf("OnMessage count %d != Messages %d", sent, o.Messages)
	}
	if uint64(replied) != o.ReplyMessages {
		t.Fatalf("OnReplyHop count %d != ReplyMessages %d", replied, o.ReplyMessages)
	}
}

func TestCascadePanicsOnInvalidQuery(t *testing.T) {
	g := star(2)
	c := &Cascade{Graph: g, Content: holders(), Forward: Flood{}}
	defer func() {
		if recover() == nil {
			t.Fatal("negative TTL did not panic")
		}
	}()
	c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: -1})
}

func TestCascadePanicsOnMissingPieces(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete cascade did not panic")
		}
	}()
	(&Cascade{}).Run(&Query{TTL: 1})
}

func TestQueryValidate(t *testing.T) {
	if err := (&Query{TTL: 1}).Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if err := (&Query{TTL: -1}).Validate(); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if err := (&Query{MaxResults: -1}).Validate(); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}

func TestIterativeDeepeningStopsEarly(t *testing.T) {
	g := chain(6)
	c := &Cascade{Graph: g, Content: holders(2), Forward: Flood{}}
	d := IterativeDeepening{Depths: []int{1, 2, 4}}
	o := d.Run(c, &Query{ID: 1, Key: 1, Origin: 0})
	if !o.Hit() {
		t.Fatal("deepening missed the holder")
	}
	// Depth 1 fails (1 msg), depth 2 succeeds (2 msgs) => 3 total;
	// depth 4 never runs.
	if o.Messages != 3 {
		t.Fatalf("messages = %d, want 3", o.Messages)
	}
}

func TestIterativeDeepeningExhaustsSchedule(t *testing.T) {
	g := chain(6)
	c := &Cascade{Graph: g, Content: holders(5), Forward: Flood{}}
	d := IterativeDeepening{Depths: []int{1, 2}}
	o := d.Run(c, &Query{ID: 1, Key: 1, Origin: 0})
	if o.Hit() {
		t.Fatal("holder at distance 5 found with max depth 2")
	}
	if o.Messages != 3 {
		t.Fatalf("messages = %d, want 1+2", o.Messages)
	}
}

func TestIterativeDeepeningCycleTimeout(t *testing.T) {
	g := chain(4)
	c := &Cascade{Graph: g, Content: holders(2), Forward: Flood{}}
	d := IterativeDeepening{Depths: []int{1, 2}, CycleTimeout: 1.5}
	o := d.Run(c, &Query{ID: 1, Key: 1, Origin: 0})
	if o.FirstResultDelay != 1.5 {
		t.Fatalf("first-result delay = %v, want 1.5 (one failed cycle)", o.FirstResultDelay)
	}
}

func TestIterativeDeepeningPanicsOnBadSchedule(t *testing.T) {
	g := chain(2)
	c := &Cascade{Graph: g, Content: holders(), Forward: Flood{}}
	for name, depths := range map[string][]int{
		"empty":          {},
		"non-increasing": {2, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s schedule did not panic", name)
				}
			}()
			IterativeDeepening{Depths: depths}.Run(c, &Query{ID: 1, Origin: 0})
		}()
	}
}

func TestDirectedBFTUsedInsideCascade(t *testing.T) {
	// Node 0 has neighbors 1 and 2; its ledger strongly favors 2. A
	// directed BFT with K=1 must reach only node 2's branch.
	net := topology.NewNetwork(topology.PureAsymmetric, 5, 4, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	net.Connect(1, 3)
	net.Connect(2, 4)
	g := &testGraph{net: net, offline: map[topology.NodeID]bool{}}
	led := stats.NewLedger()
	led.Touch(2).Benefit = 100
	c := &Cascade{
		Graph: g, Content: holders(4), Forward: DirectedBFT{K: 1, Benefit: stats.Cumulative{}},
		Ledger: func(id topology.NodeID) *stats.Ledger {
			if id == 0 {
				return led
			}
			return nil
		},
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2})
	if !o.Hit() || o.Results[0].Holder != 4 {
		t.Fatalf("directed BFT outcome: %+v", o)
	}
	if o.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (0->2->4)", o.Messages)
	}
}
