// Command gnusim runs one configurable simulation of the Section 4
// case study and prints a run summary plus (optionally) the hourly
// series as CSV. Unlike cmd/repro, which regenerates the paper's
// figures with fixed parameter sets, gnusim exposes every knob for
// exploratory runs.
//
// With -reps N the same configuration is replicated N times under
// seeds derived per replicate (internal/runner.DeriveSeed) and executed
// on the runner's worker pool; the summary then reports mean ± std over
// the replicates instead of a single run.
//
// Examples:
//
//	gnusim -mode dynamic -ttl 3 -theta 4 -hours 48
//	gnusim -mode dynamic -forward directed2 -localindex -csv > run.csv
//	gnusim -mode dynamic -reps 8 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	var (
		mode      = flag.String("mode", "dynamic", "protocol variant: static or dynamic")
		users     = flag.Int("users", 2000, "network size (2000 = paper scale)")
		songs     = flag.Int("songs", 0, "catalog size (0 = scale with users)")
		hours     = flag.Int("hours", 96, "simulated hours")
		ttl       = flag.Int("ttl", 2, "search hop limit")
		neighbors = flag.Int("neighbors", 4, "neighbor capacity")
		theta     = flag.Int("theta", 2, "reconfiguration threshold (requests)")
		swaps     = flag.Int("swaps", 1, "max neighbor swaps per reconfiguration (0 = unlimited)")
		update    = flag.String("update", "symmetric", "update regime: symmetric or asymmetric")
		benefit   = flag.String("benefit", "br", "benefit function: br, hits or latency")
		forward   = flag.String("forward", "flood", "forward policy: flood, directed2 or random2")
		localIdx  = flag.Bool("localindex", false, "enable radius-1 local indices")
		deepening = flag.Bool("deepening", false, "iterative deepening schedule {1, ttl}")
		trial     = flag.Float64("trial", 0, "invitation trial period in hours (0 = permanent accepts)")
		rate      = flag.Float64("rate", 12, "queries per on-line user per hour")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		reps      = flag.Int("reps", 1, "replicate the run under derived seeds, report mean ± std")
		workers   = flag.Int("workers", 0, "worker pool size for -reps (0 = GOMAXPROCS)")
		csv       = flag.Bool("csv", false, "emit the hourly series as CSV")
		traceFile = flag.String("trace", "", "write a JSONL protocol event trace to this file")
	)
	flag.Parse()

	cfg, err := buildConfig(*mode, *users, *songs, *hours, *ttl, *neighbors,
		*theta, *swaps, *update, *benefit, *forward, *localIdx, *deepening, *rate, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnusim:", err)
		os.Exit(2)
	}
	cfg.Variant.TrialPeriodHours = *trial
	if *reps > 1 {
		if *traceFile != "" || *csv {
			fmt.Fprintln(os.Stderr, "gnusim: -trace and -csv apply to single runs, not -reps sweeps")
			os.Exit(2)
		}
		os.Exit(runReplicates(cfg, *seed, *reps, *workers))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gnusim:", err)
			os.Exit(2)
		}
		defer f.Close()
		sink := trace.NewJSONL(f)
		cfg.Trace = sink
		defer func() {
			if err := sink.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "gnusim: trace:", err)
			} else {
				fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", sink.Written(), *traceFile)
			}
		}()
	}

	start := time.Now()
	s := gnutella.New(cfg)
	m := s.Run()
	elapsed := time.Since(start)

	if *csv {
		t := metrics.NewTable("", "hour", "queries", "hits", "messages")
		for h := 0; h < *hours; h++ {
			t.AddRow(h, m.Queries.Bucket(h), m.Hits.Bucket(h), m.Meter.Bucket(netsim.MsgQuery, h))
		}
		fmt.Print(t.CSV())
	}

	queries := m.Queries.Total()
	hits := m.Hits.Total()
	msgs := m.Meter.Total(netsim.MsgQuery)
	fmt.Fprintf(os.Stderr, "%s: %v queries, %v hits (%.1f%%), %d query messages (%.1f/query)\n",
		cfg.Mode, queries, hits, 100*hits/queries, msgs, float64(msgs)/queries)
	fmt.Fprintf(os.Stderr, "results: %d total; first-result delay %.0f ms (n=%d)\n",
		m.TotalResults, m.FirstResultDelay.Mean()*1000, m.FirstResultDelay.N())
	fmt.Fprintf(os.Stderr, "reconfigurations: %d; invites %d, evictions %d; logins %d\n",
		m.Reconfigurations, m.Meter.Total(netsim.MsgInvite), m.Meter.Total(netsim.MsgEvict), m.LoginCount)
	fmt.Fprintf(os.Stderr, "network consistent: %v; wall time %.1fs\n",
		s.Network().Consistent(), elapsed.Seconds())
}

// repSummary is the per-replicate output of a -reps sweep.
type repSummary struct {
	Hits          float64 `json:"hits"`
	Queries       float64 `json:"queries"`
	Messages      uint64  `json:"messages"`
	FirstResultMs float64 `json:"first_result_ms"`
	Reconfigs     uint64  `json:"reconfigurations"`
}

// runReplicates executes reps copies of cfg under derived seeds on the
// runner pool and prints per-replicate lines plus mean ± std
// aggregates. It returns the process exit code.
func runReplicates(cfg gnutella.Config, baseSeed uint64, reps, workers int) int {
	cells := make([]runner.Cell, reps)
	for i := 0; i < reps; i++ {
		name := fmt.Sprintf("rep%02d", i)
		cells[i] = runner.Cell{
			Experiment: "gnusim",
			Name:       name,
			Seed:       runner.DeriveSeed(baseSeed, "gnusim", name),
			Run: func(_ context.Context, seed uint64) (any, error) {
				c := cfg
				c.Seed = seed
				m := gnutella.New(c).Run()
				return &repSummary{
					Hits:          m.Hits.Total(),
					Queries:       m.Queries.Total(),
					Messages:      m.Meter.Total(netsim.MsgQuery),
					FirstResultMs: m.FirstResultDelay.Mean() * 1000,
					Reconfigs:     m.Reconfigurations,
				}, nil
			},
		}
	}

	start := time.Now()
	results, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers, Retries: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnusim:", err)
		return 1
	}

	var hits, msgs, first metrics.Welford
	code := 0
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintf(os.Stderr, "%s (seed %d): FAILED: %s\n", r.Cell, r.Seed, r.Err)
			code = 1
			continue
		}
		s := r.Value.(*repSummary)
		hits.Observe(s.Hits)
		msgs.Observe(float64(s.Messages))
		first.Observe(s.FirstResultMs)
		fmt.Fprintf(os.Stderr, "%s (seed %d): %v hits (%.1f%%), %d query messages, first result %.0f ms, %d reconfigs\n",
			r.Cell, r.Seed, s.Hits, 100*s.Hits/s.Queries, s.Messages, s.FirstResultMs, s.Reconfigs)
	}
	if hits.N() > 0 {
		fmt.Fprintf(os.Stderr, "%s over %d/%d replicates: hits %.1f ± %.1f [%v, %v]; messages %.0f ± %.0f; first result %.0f ± %.0f ms; wall %.1fs\n",
			cfg.Mode, hits.N(), reps,
			hits.Mean(), hits.Std(), hits.Min(), hits.Max(),
			msgs.Mean(), msgs.Std(),
			first.Mean(), first.Std(),
			time.Since(start).Seconds())
	}
	return code
}

// buildConfig assembles and validates the gnutella configuration.
func buildConfig(mode string, users, songs, hours, ttl, neighbors, theta, swaps int,
	update, benefit, forward string, localIdx, deepening bool, rate float64, seed uint64) (gnutella.Config, error) {
	var m gnutella.Mode
	switch mode {
	case "static":
		m = gnutella.Static
	case "dynamic":
		m = gnutella.Dynamic
	default:
		return gnutella.Config{}, fmt.Errorf("unknown mode %q", mode)
	}
	cfg := gnutella.DefaultConfig(m, ttl)
	if users != 2000 {
		scale := 2000 / users
		if scale < 1 {
			scale = 1
		}
		cfg.Music = cfg.Music.Scaled(scale)
		cfg.Music.Users = users
	}
	if songs > 0 {
		if songs%cfg.Music.Categories != 0 {
			return gnutella.Config{}, fmt.Errorf("songs %d not divisible by %d categories",
				songs, cfg.Music.Categories)
		}
		cfg.Music.Songs = songs
	}
	cfg.DurationHours = hours
	cfg.Neighbors = neighbors
	cfg.ReconfigThreshold = theta
	cfg.MaxSwaps = swaps
	cfg.Query.RatePerHour = rate
	cfg.Seed = seed

	switch update {
	case "symmetric":
		cfg.Variant.Update = gnutella.SymmetricUpdate
	case "asymmetric":
		cfg.Variant.Update = gnutella.AsymmetricUpdate
	default:
		return gnutella.Config{}, fmt.Errorf("unknown update regime %q", update)
	}
	switch benefit {
	case "br":
		cfg.Variant.Benefit = gnutella.BenefitBR
	case "hits":
		cfg.Variant.Benefit = gnutella.BenefitHitCount
	case "latency":
		cfg.Variant.Benefit = gnutella.BenefitHitsPerLatency
	default:
		return gnutella.Config{}, fmt.Errorf("unknown benefit %q", benefit)
	}
	switch forward {
	case "flood":
		cfg.Variant.Forward = gnutella.ForwardFlood
	case "directed2":
		cfg.Variant.Forward = gnutella.ForwardDirected2
	case "random2":
		cfg.Variant.Forward = gnutella.ForwardRandom2
	default:
		return gnutella.Config{}, fmt.Errorf("unknown forward policy %q", forward)
	}
	cfg.Variant.UseLocalIndices = localIdx
	if deepening && ttl > 1 {
		cfg.Variant.IterativeDeepening = []int{1, ttl}
		cfg.Variant.DeepeningTimeout = 2.0
	}
	return cfg, cfg.Validate()
}
