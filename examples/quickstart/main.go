// Quickstart: the framework in ~60 lines, through the public facade.
//
// Build a small repository network, search it with a pkg/search Engine
// (one-shot, then streaming), collect statistics, and let one node
// reconfigure its neighborhood with the symmetric updater (Algo 4).
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/pkg/search"
)

// env adapts the pieces to the framework's small interfaces.
type env struct {
	net     *topology.Network
	ledgers map[topology.NodeID]*stats.Ledger
	content map[topology.NodeID]map[core.Key]bool
}

func (e *env) Out(id topology.NodeID) []topology.NodeID { return e.net.Out(id) }
func (e *env) Online(topology.NodeID) bool              { return true }
func (e *env) HasContent(id topology.NodeID, k core.Key) bool {
	return e.content[id][k]
}
func (e *env) Net() *topology.Network                  { return e.net }
func (e *env) Ledger(id topology.NodeID) *stats.Ledger { return e.ledgers[id] }
func (e *env) ResetCounter(topology.NodeID)            {}
func (e *env) Control(kind netsim.MessageKind, from, to topology.NodeID) {
	fmt.Printf("  control: %v %d -> %d\n", kind, from, to)
}

func main() {
	// Ten repositories, symmetric relations, at most 2 neighbors each.
	e := &env{
		net:     topology.NewNetwork(topology.Symmetric, 10, 2, 2),
		ledgers: map[topology.NodeID]*stats.Ledger{},
		content: map[topology.NodeID]map[core.Key]bool{},
	}
	for i := topology.NodeID(0); i < 10; i++ {
		e.ledgers[i] = stats.NewLedger()
		e.content[i] = map[core.Key]bool{}
	}
	// Wire a ring: 0-1-2-...-9-0, and put the hot item on node 5.
	for i := 0; i < 10; i++ {
		e.net.Connect(topology.NodeID(i), topology.NodeID((i+1)%10))
	}
	const hotItem core.Key = 42
	e.content[5][hotItem] = true

	// The public facade: a pooled, concurrency-safe engine over the
	// network (flooding by registry name, 100 ms per hop).
	eng, err := search.New(e,
		search.WithPolicy("flood"),
		search.WithTTL(7),
		search.WithDelay(func(_, _ topology.NodeID) float64 { return 0.1 }))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// Node 0 searches for the hot item: 5 hops away around the ring.
	out, err := eng.Do(ctx, search.Query{ID: 1, Key: hotItem, Origin: 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("search: %d result(s), %d messages, first after %.1f ms\n",
		len(out.Hits), out.Messages, out.FirstResultDelay*1000)

	// Record what the search taught node 0 and reconfigure: node 5
	// should become a direct neighbor.
	for _, r := range out.Hits {
		rec := e.ledgers[0].Touch(r.Holder)
		rec.Hits++
		rec.Benefit += 1
	}
	updater := &core.SymmetricUpdater{
		Benefit:  stats.Cumulative{},
		Capacity: 2,
		Invite:   core.AlwaysAccept,
	}
	rep := updater.Reconfigure(e, 0)
	fmt.Printf("reconfigure: invited %v, evicted %v\n", rep.Accepted, rep.Evicted)
	fmt.Printf("node 0 neighbors: %v (consistent: %v)\n", e.net.Out(0), e.net.Consistent())

	// The same search is now a single hop — streamed this time, each
	// hit arriving the moment its reply reaches the origin.
	for hit, err := range eng.Stream(ctx, search.Query{ID: 2, Key: hotItem, Origin: 0}) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("search again: hit at node %d after %d hop(s), %.1f ms\n",
			hit.Holder, hit.Hops, hit.Delay*1000)
	}

	// Seeded randomness for everything else in the library:
	fmt.Printf("deterministic streams: %d == %d\n",
		rng.New(7).Uint64(), rng.New(7).Uint64())
}
