package faults

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCrashScheduleByteIdentity(t *testing.T) {
	plan := CrashPlan{Nodes: 50, Crashes: 5, SpanMillis: 2000, MinDownMillis: 100, MaxDownMillis: 400}
	a, err := GenCrashSchedule(42, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenCrashSchedule(42, plan)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.MarshalCanonical()
	jb, _ := b.MarshalCanonical()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", ja, jb)
	}
	c, err := GenCrashSchedule(43, plan)
	if err != nil {
		t.Fatal(err)
	}
	if jc, _ := c.MarshalCanonical(); bytes.Equal(ja, jc) {
		t.Fatal("different seed reproduced the schedule bytes")
	}
}

func TestCrashScheduleShape(t *testing.T) {
	plan := CrashPlan{Nodes: 20, Crashes: 6, SpanMillis: 1000, MinDownMillis: 50, MaxDownMillis: 200}
	s, err := GenCrashSchedule(7, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2*plan.Crashes {
		t.Fatalf("got %d events, want %d", len(s.Events), 2*plan.Crashes)
	}
	crashAt := map[int]int64{}
	victims := map[int]bool{}
	for i, ev := range s.Events {
		if i > 0 && ev.AtMillis < s.Events[i-1].AtMillis {
			t.Fatalf("events out of order at %d", i)
		}
		switch ev.Kind {
		case EventCrash:
			if victims[ev.Node] {
				t.Fatalf("node %d crashed twice", ev.Node)
			}
			victims[ev.Node] = true
			if ev.AtMillis >= plan.SpanMillis {
				t.Fatalf("crash at %dms outside span", ev.AtMillis)
			}
			crashAt[ev.Node] = ev.AtMillis
		case EventRestart:
			at, ok := crashAt[ev.Node]
			if !ok {
				t.Fatalf("restart of %d without crash", ev.Node)
			}
			down := ev.AtMillis - at
			if down < plan.MinDownMillis || down > plan.MaxDownMillis {
				t.Fatalf("outage %dms outside [%d,%d]", down, plan.MinDownMillis, plan.MaxDownMillis)
			}
		default:
			t.Fatalf("unexpected kind %q", ev.Kind)
		}
	}
	if len(victims) != plan.Crashes {
		t.Fatalf("%d distinct victims, want %d", len(victims), plan.Crashes)
	}
}

func TestCrashScheduleRejectsBadPlans(t *testing.T) {
	bad := []CrashPlan{
		{Nodes: 3, Crashes: 4, SpanMillis: 100, MinDownMillis: 1, MaxDownMillis: 2},
		{Nodes: 10, Crashes: 1, SpanMillis: 0, MinDownMillis: 1, MaxDownMillis: 2},
		{Nodes: 10, Crashes: 1, SpanMillis: 100, MinDownMillis: 5, MaxDownMillis: 2},
	}
	for _, p := range bad {
		if _, err := GenCrashSchedule(1, p); err == nil {
			t.Errorf("GenCrashSchedule accepted %+v", p)
		}
	}
}

// recorder captures played events in order.
type recorder struct {
	mu  sync.Mutex
	log []string
	err error
}

func (r *recorder) add(s string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, s)
	return r.err
}
func (r *recorder) Crash(n int) error         { return r.add(fmt.Sprintf("crash:%d", n)) }
func (r *recorder) Restart(n int) error       { return r.add(fmt.Sprintf("restart:%d", n)) }
func (r *recorder) Partition(g [][]int) error { return r.add(fmt.Sprintf("partition:%v", g)) }
func (r *recorder) Heal() error               { return r.add("heal") }

func TestScheduleRunPlaysInOrder(t *testing.T) {
	s := Schedule{Events: []Event{
		{AtMillis: 0, Kind: EventCrash, Node: 1},
		{AtMillis: 5, Kind: EventPartition, Groups: [][]int{{1}, {2}}},
		{AtMillis: 10, Kind: EventHeal},
		{AtMillis: 15, Kind: EventRestart, Node: 1},
	}}
	r := &recorder{}
	if err := s.Run(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	want := []string{"crash:1", "partition:[[1] [2]]", "heal", "restart:1"}
	if len(r.log) != len(want) {
		t.Fatalf("played %v, want %v", r.log, want)
	}
	for i := range want {
		if r.log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, r.log[i], want[i])
		}
	}
}

func TestScheduleRunStopsOnCancel(t *testing.T) {
	s := Schedule{Events: []Event{
		{AtMillis: 0, Kind: EventCrash, Node: 1},
		{AtMillis: 60_000, Kind: EventRestart, Node: 1},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	r := &recorder{}
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, r) }()
	for {
		r.mu.Lock()
		n := len(r.log)
		r.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestScheduleRunStopsOnTargetError(t *testing.T) {
	s := Schedule{Events: []Event{
		{AtMillis: 0, Kind: EventCrash, Node: 1},
		{AtMillis: 1, Kind: EventRestart, Node: 1},
	}}
	r := &recorder{err: fmt.Errorf("boom")}
	if err := s.Run(context.Background(), r); err == nil {
		t.Fatal("Run swallowed the target error")
	}
	if len(r.log) != 1 {
		t.Fatalf("played %d events after error, want 1", len(r.log))
	}
}
