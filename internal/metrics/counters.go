package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent callers, so one
// Counter can be shared by every node goroutine of a live process and
// read by an HTTP exposition handler without coordination.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Registry is a named set of counters and latency histograms with a
// JSON HTTP exposition — the measurement surface a long-running daemon
// serves on /v1/stats. Counters and histograms are created on first
// use and live for the registry's lifetime; both are safe to call from
// any goroutine.
type Registry struct {
	mu sync.Mutex
	m  map[string]*Counter
	h  map[string]*LatencyHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it at
// zero on first use. The returned pointer is stable: hot paths resolve
// once and Inc through the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.m[name]
	if !ok {
		c = &Counter{}
		r.m[name] = c
	}
	return c
}

// Snapshot returns the current value of every registered counter plus
// every touched latency histogram's count and p50/p95/p99 quantiles
// (as <name>_{count,p50_us,p95_us,p99_us}).
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.m)+4*len(r.h))
	for name, c := range r.m {
		out[name] = c.Load()
	}
	r.latencySnapshot(out)
	return out
}

// ServeHTTP implements http.Handler: the snapshot as a JSON object
// with sorted keys (encoding/json sorts map keys), one counter per
// field.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}
