package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/runner"
)

// ciFaultsConfig returns a small, fast cell for unit tests.
func ciFaultsConfig(seed uint64) FaultsConfig {
	return DefaultFaultsConfig(600, 300, seed)
}

func TestFaultsConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*FaultsConfig){
		"one node":      func(c *FaultsConfig) { c.Nodes = 1 },
		"zero degree":   func(c *FaultsConfig) { c.Degree = 0 },
		"no policy":     func(c *FaultsConfig) { c.Policy = "" },
		"zero ttl":      func(c *FaultsConfig) { c.TTL = 0 },
		"neg drop":      func(c *FaultsConfig) { c.Drop = -0.1 },
		"full drop":     func(c *FaultsConfig) { c.Drop = 1 },
		"neg crash":     func(c *FaultsConfig) { c.CrashFraction = -0.1 },
		"half crash":    func(c *FaultsConfig) { c.CrashFraction = 0.5 },
		"zero queries":  func(c *FaultsConfig) { c.Queries = 0 },
		"bogus policy":  func(c *FaultsConfig) { c.Policy = "carrier-pigeon" },
		"no clients":    func(c *FaultsConfig) { c.ClientFraction = 0 },
		"no key space":  func(c *FaultsConfig) { c.Keys = 0 },
		"no per-holder": func(c *FaultsConfig) { c.KeysPerProvider = 0 },
	} {
		c := ciFaultsConfig(1)
		mutate(&c)
		if _, _, err := RunFaults(c); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestFaultsCellIsPureFunctionOfConfig(t *testing.T) {
	cfg := ciFaultsConfig(7)
	cfg.Drop = 0.1
	cfg.CrashFraction = 0.1
	a, _, err := RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same config diverged:\n%s\n%s", aj, bj)
	}
	cfg.Seed = 8
	c, _, err := RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(cj) == string(aj) {
		t.Fatal("different seeds produced identical cells (suspicious)")
	}
}

// Faults must actually degrade the search: drop and crash each cost
// hit rate against the clean baseline, and the crash set removes the
// configured share of the population.
func TestFaultsDegradeHitRate(t *testing.T) {
	clean := ciFaultsConfig(3)
	base, _, err := RunFaults(clean)
	if err != nil {
		t.Fatal(err)
	}
	if base.Crashed != 0 || base.HitRate == 0 {
		t.Fatalf("clean cell: crashed=%d hit_rate=%v", base.Crashed, base.HitRate)
	}

	dropped := clean
	dropped.Drop = 0.4
	d, _, err := RunFaults(dropped)
	if err != nil {
		t.Fatal(err)
	}
	if d.HitRate >= base.HitRate {
		t.Fatalf("40%% drop did not degrade hit rate: %v -> %v", base.HitRate, d.HitRate)
	}
	// Dropped copies never propagate: message volume drops too.
	if d.Messages >= base.Messages {
		t.Fatalf("40%% drop did not reduce messages: %d -> %d", base.Messages, d.Messages)
	}

	crashed := clean
	crashed.CrashFraction = 0.3
	c, _, err := RunFaults(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(float64(clean.Nodes) * 0.3); c.Crashed != want {
		t.Fatalf("crashed %d nodes, want %d", c.Crashed, want)
	}
	if c.HitRate >= base.HitRate {
		t.Fatalf("30%% crashes did not degrade hit rate: %v -> %v", base.HitRate, c.HitRate)
	}
	if c.LiveClients >= base.LiveClients {
		t.Fatalf("crash set spared every client: %d -> %d", base.LiveClients, c.LiveClients)
	}
}

// TestFaultsWorkerCountInvariance is the family-level determinism
// check: the exact JSON the artifact writer would emit must not depend
// on the worker count.
func TestFaultsWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full CI-scale grid twice")
	}
	run := func(workers int) string {
		cells, _ := FaultsCells("faults", CI, 1)
		rs, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.FirstError(rs); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if run(1) != run(8) {
		t.Fatal("faults cells.json depends on the worker count")
	}
}

func TestFaultsCellsWellFormed(t *testing.T) {
	cells, _ := FaultsCells("faults", CI, 1)
	if len(cells) != len(faultsPolicies)*len(faultsDrops)*len(faultsCrashes) {
		t.Fatalf("grid has %d cells", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Name] {
			t.Fatalf("duplicate cell %q", c.Name)
		}
		seen[c.Name] = true
		if c.Seed != runner.DeriveSeed(1, "faults", c.Name) {
			t.Fatalf("cell %q seed not derived from its labels", c.Name)
		}
	}
	if !seen["flood-d00-c00"] || !seen["random-2-d15-c10"] {
		t.Fatal("expected grid corners missing")
	}
}
