package core

import "math"

// VisitedVariant names the visited-set representation a cascade runs
// on. Both variants realize the same membership semantics — outcomes
// are byte-identical whichever one served a run (asserted by the
// differential property suite in this package) — only the memory-access
// pattern differs.
type VisitedVariant int8

const (
	// VisitedAuto lets RunScratch pick per cascade: the bitset when the
	// denseFlood heuristic predicts the query will touch a large
	// fraction of a big snapshot, the epoch-stamped slots otherwise.
	VisitedAuto VisitedVariant = iota
	// VisitedSlots forces the epoch-stamped slot array.
	VisitedSlots
	// VisitedBits forces the bitset (where representable: cascades with
	// a local Index always use slots, whose idxEpoch stamp the index
	// bookkeeping needs).
	VisitedBits
)

// ForceVisited overrides the dense-flood visited-set heuristic for the
// differential tests in this package and pkg/search, exactly like
// eventq.ForceHeapQueue: production code leaves it VisitedAuto. Not
// safe to flip while cascades run concurrently.
var ForceVisited VisitedVariant

// denseBitsMinNodes is the smallest network the bitset heuristic
// considers: below it the whole slot array lives in cache anyway and
// the per-cascade bitset memclr is pure overhead.
const denseBitsMinNodes = 1 << 13

// denseFlood predicts whether a TTL-bounded cascade over an n-node,
// edges-edge snapshot will visit enough of the network that the bitset
// visited set wins: the O(n/64) per-cascade clear must be amortized by
// a visit count of the same order. The frontier of a flood grows
// roughly by the average out-degree per hop, so estimated coverage is
// avgDeg^ttl; the bitset engages when that estimate reaches a quarter
// of the network. Queries with a result cap usually terminate long
// before their TTL exhausts, so they always stay on slots.
func denseFlood(n, edges, ttl, maxResults int) bool {
	if n < denseBitsMinNodes || ttl <= 0 || maxResults > 0 {
		return false
	}
	avg := float64(edges) / float64(n)
	if avg <= 1 {
		return false
	}
	return float64(ttl)*math.Log(avg) >= math.Log(float64(n)/4)
}
