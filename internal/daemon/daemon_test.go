package daemon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/pkg/search"
	"repro/pkg/searchclient"
)

// fanClient is a searchclient with enough idle connections for the
// harness's concurrency.
func fanClient(addr string, workers int) *searchclient.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = workers
	return searchclient.New(addr, searchclient.WithHTTPClient(
		&http.Client{Timeout: 30 * time.Second, Transport: tr}))
}

// simHitRate replays a World's query plan through the internal/driver
// simulated twin over the identical graph and content, returning the
// per-query hit outcomes.
func simHitRate(t *testing.T, w *World, plan []QuerySpec, ttl int) []bool {
	t.Helper()
	sess, err := driver.New(driver.Spec{
		Nodes:    w.Nodes,
		Relation: topology.Symmetric,
		Duration: 3600,
		Content:  w,
		Policy:   "flood",
		TTL:      ttl,
		Place:    func(s *driver.Session) { w.WireInto(s.Network()) },
	}, rng.New(7))
	if err != nil {
		t.Fatalf("driver twin: %v", err)
	}
	sess.Start()
	out := make([]bool, len(plan))
	for i, q := range plan {
		res := sess.Do(search.Query{
			ID: uint64(i + 1), Key: q.Key, Origin: q.Origin,
		})
		out[i] = res.Found()
	}
	return out
}

// parityQueries returns the harness size: 10k at full scale, trimmed
// under -short (the race-gated CI smoke), overridable via env for
// larger sweeps.
func parityQueries(t *testing.T) int {
	if v := os.Getenv("DAEMON_PARITY_QUERIES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DAEMON_PARITY_QUERIES %q", v)
		}
		return n
	}
	if testing.Short() {
		return 1500
	}
	return 10_000
}

// TestClusterParityWithDriver is the integration harness of the
// daemon: boot a 50-node cluster in-process, push the deterministic
// query plan through the REST client, and require the hit rate to
// match the simulated driver run on the same world within 1%. Flood
// over a shared deterministic graph is reachability, so live and
// simulated outcomes should agree query-by-query; the tolerance only
// absorbs scheduling-induced loss (inbox drops under saturation).
func TestClusterParityWithDriver(t *testing.T) {
	const (
		nodes, degree, ttl = 50, 3, 3
		keys, replicas     = 200, 3
		seed               = 42
		workers            = 128
	)
	queries := parityQueries(t)

	srv, err := New(Config{
		Nodes: nodes, Degree: degree, TTL: ttl,
		Keys: keys, Replicas: replicas, Seed: seed,
		QueryWindowMillis: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	w := BuildWorld(seed, nodes, degree, keys, replicas)
	plan := w.QueryPlan(queries)

	client := fanClient(srv.Addr(), workers)
	ctx := context.Background()
	liveHit := make([]bool, len(plan))
	var failures atomic.Int64
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, q := range plan {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q QuerySpec) {
			defer wg.Done()
			defer func() { <-sem }()
			origin := int(q.Origin)
			resp, err := client.Query(ctx, searchclient.QueryRequest{
				Key:     uint64(q.Key),
				Origin:  &origin,
				MaxHits: 1, // existence probe: hits return early, only misses pay the window
			})
			if err != nil {
				failures.Add(1)
				return
			}
			liveHit[i] = resp.Found()
		}(i, q)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d/%d REST queries failed", n, queries)
	}

	simHit := simHitRate(t, BuildWorld(seed, nodes, degree, keys, replicas), plan, ttl)

	liveHits, simHits, mismatches := 0, 0, 0
	for i := range plan {
		if liveHit[i] {
			liveHits++
		}
		if simHit[i] {
			simHits++
		}
		if liveHit[i] != simHit[i] {
			mismatches++
		}
	}
	liveRate := float64(liveHits) / float64(queries)
	simRate := float64(simHits) / float64(queries)
	t.Logf("live %.4f vs sim %.4f over %d queries (%d per-query mismatches)",
		liveRate, simRate, queries, mismatches)
	if diff := math.Abs(liveRate - simRate); diff > 0.01 {
		t.Fatalf("hit-rate parity broken: live %.4f vs sim %.4f (diff %.4f > 0.01)",
			liveRate, simRate, diff)
	}

	// The REST plane's own counters must reflect the workload.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["daemon_queries_total"]; got != uint64(queries) {
		t.Fatalf("daemon_queries_total = %d, want %d", got, queries)
	}
	if got := stats["daemon_queries_hit_total"]; got != uint64(liveHits) {
		t.Fatalf("daemon_queries_hit_total = %d, want %d", got, liveHits)
	}
	if stats["node_queries_seen"] == 0 || stats["node_hits_served"] == 0 {
		t.Fatalf("node counters missing from /v1/stats: %v", stats)
	}
}

// TestDrainCompletesInflightQueries: SIGTERM-style drain must let an
// admitted query finish collecting (it holds the inflight group) and
// reject everything after the flip.
func TestDrainCompletesInflightQueries(t *testing.T) {
	srv, err := New(Config{
		Nodes: 16, Degree: 3, TTL: 3, Keys: 64, Replicas: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	client := searchclient.New(srv.Addr())
	ctx := context.Background()

	type outcome struct {
		resp *searchclient.QueryResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		// Full-window collection (no MaxHits) so the query is still in
		// flight when Drain flips the gate.
		resp, err := client.Query(ctx, searchclient.QueryRequest{
			Key: 1, TimeoutMillis: 400,
		})
		done <- outcome{resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the query pass admission

	start := time.Now()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.State() != StateStopped {
		t.Fatalf("state after drain = %v, want stopped", srv.State())
	}
	if waited := time.Since(start); waited < 200*time.Millisecond {
		t.Fatalf("drain returned in %v, before the in-flight window could end", waited)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", out.err)
	}

	if _, err := client.Query(ctx, searchclient.QueryRequest{Key: 1}); err == nil {
		t.Fatal("query after drain succeeded, want refusal")
	}
}

// TestPauseResume: the control plane's pause gate rejects queries with
// 503 and resume restores service; readiness tracks the same state.
func TestPauseResume(t *testing.T) {
	srv, err := New(Config{
		Nodes: 8, Degree: 2, TTL: 2, Keys: 32, Replicas: 2, Seed: 3,
		QueryWindowMillis: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	client := searchclient.New(srv.Addr())
	ctx := context.Background()
	if err := client.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}
	if err := client.Pause(ctx); err != nil {
		t.Fatalf("pause: %v", err)
	}
	if err := client.Ready(ctx); err == nil {
		t.Fatal("readyz succeeded while paused")
	}
	_, err = client.Query(ctx, searchclient.QueryRequest{Key: 1})
	var se *searchclient.Error
	if !asError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("query while paused: got %v, want 503", err)
	}
	if err := client.Pause(ctx); err == nil {
		t.Fatal("double pause succeeded, want conflict")
	}
	if err := client.Resume(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if _, err := client.Query(ctx, searchclient.QueryRequest{Key: 1, MaxHits: 1}); err != nil {
		t.Fatalf("query after resume: %v", err)
	}
}

// asError unwraps a searchclient.Error.
func asError(err error, target **searchclient.Error) bool {
	return errors.As(err, target)
}

// TestQueryValidation: out-of-catalog keys, remote origins and unknown
// policies are 400s, not daemon crashes.
func TestQueryValidation(t *testing.T) {
	srv, err := New(Config{Nodes: 4, Degree: 2, TTL: 2, Keys: 16, Replicas: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())

	client := searchclient.New(srv.Addr())
	ctx := context.Background()
	bad := func(req searchclient.QueryRequest, why string) {
		t.Helper()
		_, err := client.Query(ctx, req)
		var se *searchclient.Error
		if !asError(err, &se) || se.Status != http.StatusBadRequest {
			t.Fatalf("%s: got %v, want 400", why, err)
		}
	}
	bad(searchclient.QueryRequest{Key: 999}, "out-of-catalog key")
	remote := 77
	bad(searchclient.QueryRequest{Key: 1, Origin: &remote}, "remote origin")
	bad(searchclient.QueryRequest{Key: 1, Policy: "no-such-policy"}, "unknown policy")

	// A per-request policy override on a valid request must work.
	if _, err := client.Query(ctx, searchclient.QueryRequest{
		Key: 1, Policy: "random-1", MaxHits: 1, TimeoutMillis: 30,
	}); err != nil {
		t.Fatalf("policy override query: %v", err)
	}
}

// TestThreeServersTCPGossipAndQueries boots a 12-node cluster as three
// TCP-transport shards in one test process: membership must converge
// by gossip from a single seed address, and cross-shard queries must
// match the simulated twin's hit rate.
func TestThreeServersTCPGossipAndQueries(t *testing.T) {
	const (
		total, perShard, degree, ttl = 12, 4, 2, 3
		keys, replicas               = 64, 3
		seed                         = 7
	)
	base := Config{
		Transport: TransportTCP, Total: total, Nodes: perShard,
		Seed: seed, Degree: degree, TTL: ttl, Keys: keys, Replicas: replicas,
		GossipIntervalMillis: 50, QueryWindowMillis: 150,
	}
	var srvs []*Server
	for i := 0; i < 3; i++ {
		cfg := base
		cfg.BaseID = i * perShard
		cfg.Name = fmt.Sprintf("shard%d", i)
		if i > 0 {
			cfg.Join = []string{srvs[0].Addr()}
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		srv.Start()
		defer srv.Drain(context.Background())
		srvs = append(srvs, srv)
	}

	ctx := context.Background()
	clients := make([]*searchclient.Client, 3)
	for i, srv := range srvs {
		clients[i] = searchclient.New(srv.Addr())
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		full := true
		for _, c := range clients {
			info, err := c.Cluster(ctx)
			if err != nil || len(info.Members) != 3 {
				full = false
				break
			}
		}
		if full {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("membership did not converge to 3 shards in 10s")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// One more round so every shard's transport address book covers the
	// last-learned members before queries cross shards.
	time.Sleep(150 * time.Millisecond)

	w := BuildWorld(seed, total, degree, keys, replicas)
	plan := w.QueryPlan(150)
	simHit := simHitRate(t, BuildWorld(seed, total, degree, keys, replicas), plan, ttl)

	liveHits, simHits := 0, 0
	for i, q := range plan {
		origin := int(q.Origin)
		shard := origin / perShard
		resp, err := clients[shard].Query(ctx, searchclient.QueryRequest{
			Key: uint64(q.Key), Origin: &origin, MaxHits: 1,
		})
		if err != nil {
			t.Fatalf("query %d via shard %d: %v", i, shard, err)
		}
		if resp.Found() {
			liveHits++
		}
		if simHit[i] {
			simHits++
		}
	}
	liveRate := float64(liveHits) / float64(len(plan))
	simRate := float64(simHits) / float64(len(plan))
	t.Logf("tcp live %.4f vs sim %.4f over %d queries", liveRate, simRate, len(plan))
	if diff := math.Abs(liveRate - simRate); diff > 0.02 {
		t.Fatalf("tcp hit-rate diverged: live %.4f vs sim %.4f", liveRate, simRate)
	}

	// Epochs moved with gossip, and the view names every shard.
	info, err := clients[2].Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch < 3 {
		t.Fatalf("epoch %d after convergence, want gossip-driven growth", info.Epoch)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard%d", i)
		found := false
		for _, m := range info.Members {
			if m.Name == name && m.Nodes == perShard && m.BaseID == i*perShard {
				found = true
			}
		}
		if !found {
			t.Fatalf("member %s missing or wrong in view %+v", name, info.Members)
		}
	}
}
