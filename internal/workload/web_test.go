package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func smallWebConfig() WebConfig {
	return WebConfig{
		Pages:           2000,
		Interests:       10,
		PopularityTheta: 0.9,
		Proxies:         30,
		LocalFraction:   0.7,
		RequestsPerHour: 100,
	}
}

func TestWebConfigValidation(t *testing.T) {
	if err := DefaultWebConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WebConfig{
		{},
		func() WebConfig { c := smallWebConfig(); c.Pages = 2001; return c }(), // not divisible
		func() WebConfig { c := smallWebConfig(); c.LocalFraction = 1.5; return c }(),
		func() WebConfig { c := smallWebConfig(); c.RequestsPerHour = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestWebSpaceMapping(t *testing.T) {
	w := NewWebSpace(smallWebConfig())
	if w.PagesPerInterest() != 200 {
		t.Fatalf("pages per interest = %d", w.PagesPerInterest())
	}
	p := w.Page(3, 1)
	if w.Interest(p) != 3 {
		t.Fatalf("interest round trip failed for page %d", p)
	}
	if w.Page(0, 1) != 0 || w.Page(9, 200) != 1999 {
		t.Fatal("corner pages wrong")
	}
}

func TestWebSpacePagePanics(t *testing.T) {
	w := NewWebSpace(smallWebConfig())
	for _, bad := range [][2]int{{-1, 1}, {10, 1}, {0, 0}, {0, 201}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Page(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			w.Page(bad[0], bad[1])
		}()
	}
}

func TestWebAssignInterestsInRange(t *testing.T) {
	w := NewWebSpace(smallWebConfig())
	got := w.AssignInterests(rng.New(1))
	if len(got) != 30 {
		t.Fatalf("assigned %d interests", len(got))
	}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("interest %d out of range", v)
		}
	}
}

func TestWebSampleRequestLocalFraction(t *testing.T) {
	w := NewWebSpace(smallWebConfig())
	s := rng.New(2)
	local := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if w.Interest(w.SampleRequest(s, 4)) == 4 {
			local++
		}
	}
	frac := float64(local) / n
	// Local requests plus 1/9 of the remote mass landing back on 4 is
	// impossible (remote excludes own interest), so frac ≈ 0.7 exactly.
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("local fraction %v, want ~0.7", frac)
	}
}

func TestWebSampleRequestRemoteExcludesOwn(t *testing.T) {
	cfg := smallWebConfig()
	cfg.LocalFraction = 0 // every request is remote
	w := NewWebSpace(cfg)
	s := rng.New(3)
	for i := 0; i < 5000; i++ {
		if w.Interest(w.SampleRequest(s, 4)) == 4 {
			t.Fatal("remote request landed on own interest")
		}
	}
}

func TestQuickWebRequestsInUniverse(t *testing.T) {
	f := func(seed uint64, interest uint8) bool {
		w := NewWebSpace(smallWebConfig())
		s := rng.New(seed)
		p := w.SampleRequest(s, int(interest)%10)
		return int(p) >= 0 && int(p) < 2000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
