// Webcache runs the Squid-like distributed caching case study:
// cooperating proxies with pure asymmetric relations, a one-hop search
// before the origin server, explicit exploration (Algo 2) and
// unilateral updates (Algo 3). Run with:
//
//	go run ./examples/webcache [-digests]
package main

import (
	"flag"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/webcache"
	"repro/internal/workload"
)

func main() {
	var (
		digests = flag.Bool("digests", false, "guide searches by neighbor cache digests")
		hours   = flag.Int("hours", 24, "simulated hours")
		seed    = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()

	run := func(mode webcache.Mode) *webcache.Metrics {
		cfg := webcache.DefaultConfig(mode)
		cfg.Web = workload.WebConfig{
			Pages: 20000, Interests: 20, PopularityTheta: 0.9,
			Proxies: 60, LocalFraction: 0.7, RequestsPerHour: 1200,
		}
		cfg.CacheCapacity = 250
		cfg.DurationHours = *hours
		cfg.UseDigests = *digests && mode == webcache.Dynamic
		cfg.Seed = *seed
		return webcache.New(cfg).Run()
	}

	static := run(webcache.Static)
	dynamic := run(webcache.Dynamic)

	table := metrics.NewTable("Distributed web caching (60 proxies)",
		"variant", "local-hit %", "neighbor-hit %", "origin %", "mean latency (ms)")
	for _, v := range []struct {
		name string
		m    *webcache.Metrics
	}{{"static", static}, {"dynamic", dynamic}} {
		req := v.m.Requests.Total()
		table.AddRow(v.name,
			100*v.m.LocalHits.Total()/req,
			100*v.m.NeighborHits.Total()/req,
			100*v.m.OriginFetches.Total()/req,
			v.m.Latency.Mean()*1000)
	}
	fmt.Println(table)
	fmt.Printf("dynamic reconfigurations: %d; exploration messages: %d\n",
		dynamic.Reconfigurations, dynamic.Meter.Total(2))
}
