package search_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/pkg/search"
)

// flakyNet is testNet with one node reported offline.
type flakyNet struct {
	*testNet
	offline search.NodeID
}

func (f *flakyNet) Online(id search.NodeID) bool { return id != f.offline }

// TestWithSnapshotByteIdentical: an Engine running on the frozen CSR
// snapshot returns exactly what the interface-graph Engine returns, for
// every call shape the snapshot changes (Do here; the cascade-level
// differentials live in internal/core).
func TestWithSnapshotByteIdentical(t *testing.T) {
	net := newTestNet(60, 4)
	plain, err := search.New(net, search.WithTTL(5), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := search.New(net, search.WithTTL(5), search.WithDelay(stepDelay),
		search.WithSnapshot(net.n))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for key := 0; key < 40; key++ {
		q := search.Query{ID: uint64(key), Key: search.Key(key), Origin: search.NodeID(key % 7)}
		a, err := plain.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := snap.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: snapshot %+v != plain %+v", key, b, a)
		}
	}
}

// TestOverCSRByteIdentical: passing a frozen *topology.CSR through Over
// (the zero-copy route the scale experiments take) matches the plain
// interface network too.
func TestOverCSRByteIdentical(t *testing.T) {
	net := newTestNet(60, 4)
	csr, err := topology.FreezeView(net.n, net.Out)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := search.New(net, search.WithTTL(5), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := search.New(search.Over(csr, core.ContentFunc(net.HasContent)),
		search.WithTTL(5), search.WithDelay(stepDelay), search.WithScratchHint(net.n))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for key := 0; key < 40; key++ {
		q := search.Query{ID: uint64(key), Key: search.Key(key), Origin: search.NodeID(key % 7)}
		a, err := plain.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := frozen.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: CSR-over %+v != plain %+v", key, b, a)
		}
	}
}

// TestWithSnapshotRejectsOffline: snapshots cannot represent liveness,
// so freezing a network with an offline node must fail loudly at New
// rather than silently resurrect the node.
func TestWithSnapshotRejectsOffline(t *testing.T) {
	net := &flakyNet{testNet: newTestNet(20, 2), offline: 11}
	_, err := search.New(net, search.WithSnapshot(20))
	if err == nil || !strings.Contains(err.Error(), "offline") {
		t.Fatalf("New over an offline node: err = %v, want offline complaint", err)
	}
}

func TestWithSnapshotValidates(t *testing.T) {
	if _, err := search.New(newTestNet(10, 2), search.WithSnapshot(0)); err == nil {
		t.Fatal("WithSnapshot(0) accepted")
	}
	// A freeze over fewer nodes than the network wires to must fail at
	// New (edges would point outside the snapshot), not panic later.
	if _, err := search.New(newTestNet(20, 2), search.WithSnapshot(10)); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("undercounted snapshot: err = %v, want out-of-range complaint", err)
	}
}

// TestOriginBoundsError: on a size-aware graph, an out-of-range origin
// is a validation error that leaves the Engine reusable — never an
// index panic inside the CSR fast path.
func TestOriginBoundsError(t *testing.T) {
	net := newTestNet(20, 2)
	eng, err := search.New(net, search.WithTTL(3), search.WithSnapshot(20))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, origin := range []search.NodeID{-1, 20, 1000} {
		if _, err := eng.Do(ctx, search.Query{ID: 1, Key: 3, Origin: origin}); err == nil {
			t.Errorf("Do with origin %d: no error", origin)
		}
		if _, err := eng.Explore(ctx, search.Exploration{Keys: []search.Key{3}, Origin: origin}); err == nil {
			t.Errorf("Explore with origin %d: no error", origin)
		}
	}
	// Still reusable after the rejections.
	if res, err := eng.Do(ctx, search.Query{ID: 2, Key: 3, Origin: 0}); err != nil || !res.Found() {
		t.Fatalf("engine unusable after validation errors: %+v, %v", res, err)
	}
}

// TestEngineSteadyStateAllocs pins the pooled hot path at the PR 3
// baseline: a steady-state Do through the facade costs at most 4 heap
// allocations — snapshot or not — so the CSR/bucket work cannot have
// added hidden per-query allocation.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	for _, snapshot := range []bool{false, true} {
		opts := []search.Option{search.WithTTL(4), search.WithDelay(stepDelay)}
		name := "plain"
		if snapshot {
			opts = append(opts, search.WithSnapshot(60))
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			eng, err := search.New(newTestNet(60, 4), opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			// Warm the pool to its high-water marks.
			for i := 0; i < 50; i++ {
				if _, err := eng.Do(ctx, search.Query{ID: uint64(i), Key: search.Key(i), Origin: 0}); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := eng.Do(ctx, search.Query{ID: 3, Key: 3, Origin: 0}); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 4 {
				t.Fatalf("steady-state Do allocates %.1f times, want <= 4 (PR 3 baseline)", allocs)
			}
		})
	}
}
