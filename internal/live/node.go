package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Store answers local content membership for a live node.
type Store interface {
	Has(key core.Key) bool
}

// MapStore is a Store over an in-memory key set. It is safe for
// concurrent reads after construction; use Add only before Start.
type MapStore map[core.Key]struct{}

// Has implements Store.
func (m MapStore) Has(key core.Key) bool {
	_, ok := m[key]
	return ok
}

// Add inserts a key.
func (m MapStore) Add(key core.Key) { m[key] = struct{}{} }

// Config parameterizes a live node.
type Config struct {
	// ID is the node's network-unique identity.
	ID topology.NodeID
	// Neighbors is the symmetric neighbor capacity.
	Neighbors int
	// TTL is the default search depth.
	TTL int
	// Transport delivers messages. Required.
	Transport Transport
	// Store answers local content. Required.
	Store Store
	// Class is this node's access-link class, advertised on hits.
	Class netsim.BandwidthClass
	// ReconfigThreshold is θ: reconfigure after this many searches
	// (0 disables automatic reconfiguration).
	ReconfigThreshold int
	// Forward selects which neighbors receive a query at each hop; nil
	// means core.Flood (the Gnutella baseline). Policies resolve from
	// configuration strings via pkg/search's registry (PolicyByName) —
	// cmd/dsearch's -policy flag does exactly that. The policy runs
	// inside this node's single actor goroutine, so an instance need
	// not be concurrency-safe — but for that same reason a stochastic
	// instance (random-<k>'s rng stream) must not be shared across
	// nodes of one process; give each node its own.
	Forward core.ForwardPolicy
	// Stats, when non-nil, receives this node's event counters. One
	// NodeStats is typically shared by every node of a process (the
	// daemon's /v1/stats aggregates per-process, not per-node).
	Stats *NodeStats
}

// NodeStats aggregates the transport-visible events of one or more
// nodes as atomic counters, safe to read from any goroutine while the
// nodes run (internal/daemon exposes them over HTTP).
type NodeStats struct {
	// QueriesSeen counts query envelopes processed after duplicate
	// suppression; QueriesForwarded counts propagated copies.
	QueriesSeen, QueriesForwarded metrics.Counter
	// HitsServed counts local-store answers sent; HitsReceived counts
	// hit replies delivered back to queries this process originated.
	HitsServed, HitsReceived metrics.Counter
	// InboxDropped counts envelopes lost to a saturated inbox.
	InboxDropped metrics.Counter
	// SendFailed counts envelopes the transport refused on the send
	// side (full destination inbox in chan mode, dead peer in TCP
	// mode) — the send-side twin of InboxDropped.
	SendFailed metrics.Counter
}

// SearchHit is one result of a live search.
type SearchHit struct {
	// Holder is the answering node.
	Holder topology.NodeID
	// Hops is the forward distance the query traveled.
	Hops int
	// Class is the answering link's advertised bandwidth class.
	Class netsim.BandwidthClass
}

// Node is one live repository: an actor goroutine owning all mutable
// state (neighbor set, ledger, duplicate cache, pending searches).
type Node struct {
	cfg     Config
	inbox   chan Envelope
	ctl     chan func(*state)
	done    chan struct{}
	closing chan struct{}
	wg      sync.WaitGroup

	stopOnce  sync.Once
	closeOnce sync.Once

	// searches maps pending query IDs to collectors; owned by the actor
	// loop except for the buffered result channels.
	nextQID core.QueryID
}

// state is the actor-owned mutable state.
type state struct {
	neighbors []topology.NodeID
	ledger    *stats.Ledger
	seen      seenSet
	pending   map[core.QueryID]chan SearchHit
	searches  int
	// fwdBuf and fwdQuery are scratch reused across handle calls so the
	// hot path stops allocating per forwarded query: the target slice
	// keeps its grown capacity, and the query escapes through the
	// ForwardPolicy interface call (policies take *core.Query, which
	// escape analysis cannot see through), so a fresh one per message
	// would be a heap allocation each time.
	fwdBuf   []topology.NodeID
	fwdQuery core.Query
}

// NewNode builds a node; Start launches its actor loop.
func NewNode(cfg Config) *Node {
	if cfg.Transport == nil || cfg.Store == nil {
		panic("live: Config requires Transport and Store")
	}
	if cfg.Neighbors <= 0 || cfg.TTL < 1 {
		panic(fmt.Sprintf("live: bad config %+v", cfg))
	}
	if cfg.Forward == nil {
		cfg.Forward = core.Flood{}
	}
	return &Node{
		cfg:     cfg,
		inbox:   make(chan Envelope, 1024),
		ctl:     make(chan func(*state), 64),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
}

// ID returns the node's identity.
func (n *Node) ID() topology.NodeID { return n.cfg.ID }

// Inbox returns the channel a Transport should deliver into. For
// ChanTransport, register this node and copy envelopes in; for TCP,
// wire Listen's deliver callback to Deliver.
func (n *Node) Inbox() chan Envelope { return n.inbox }

// Deliver enqueues an envelope (dropping when the node is saturated).
func (n *Node) Deliver(env Envelope) {
	select {
	case n.inbox <- env:
	case <-n.done:
	default:
		if n.cfg.Stats != nil {
			n.cfg.Stats.InboxDropped.Inc()
		}
	}
}

// Start launches the actor loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.loop()
}

// Stop terminates the actor loop immediately and waits for it; queued
// envelopes are abandoned. Use Close for a draining shutdown.
func (n *Node) Stop() {
	n.markDone()
	n.wg.Wait()
}

// Close drains the node before stopping: delivery of new envelopes
// ceases, every envelope already queued in the inbox (and every queued
// control function) is processed, and only then does the actor loop
// exit. Close returns once the loop is fully gone; like Stop it is
// idempotent, and Stop/Close may be combined in any order.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.closing) })
	n.wg.Wait()
}

// markDone closes the done channel exactly once.
func (n *Node) markDone() {
	n.stopOnce.Do(func() { close(n.done) })
}

// loop is the actor: all state mutations happen here.
func (n *Node) loop() {
	defer n.wg.Done()
	st := &state{
		ledger:  stats.NewLedger(),
		seen:    newSeenSet(),
		pending: make(map[core.QueryID]chan SearchHit),
	}
	for {
		select {
		case <-n.done:
			return
		case <-n.closing:
			// Drain mode: consume whatever is already queued, then
			// declare the node done so Deliver and do stop enqueueing.
			for {
				select {
				case f := <-n.ctl:
					f(st)
				case env := <-n.inbox:
					n.handle(st, env)
				default:
					n.markDone()
					return
				}
			}
		case f := <-n.ctl:
			f(st)
		case env := <-n.inbox:
			n.handle(st, env)
			// Drain what else is already queued with cheap non-blocking
			// receives: under flood fan-in the 4-way select above is a
			// large share of per-message cost, and one wakeup usually
			// finds a burst. Bounded so ctl and done never starve.
		drain:
			for i := 0; i < 256; i++ {
				select {
				case env := <-n.inbox:
					n.handle(st, env)
				default:
					break drain
				}
			}
		}
	}
}

// do runs f inside the actor loop and waits for it.
func (n *Node) do(f func(*state)) {
	doneCh := make(chan struct{})
	select {
	case n.ctl <- func(st *state) { f(st); close(doneCh) }:
	case <-n.done:
		return
	}
	select {
	case <-doneCh:
	case <-n.done:
	}
}

// post runs f inside the actor loop without waiting for it. The ctl
// channel serializes posted functions with everything else the actor
// does, so ordering against later do/post calls is preserved.
func (n *Node) post(f func(*state)) {
	select {
	case n.ctl <- f:
	case <-n.done:
	}
}

// Neighbors returns a snapshot of the current neighbor set.
func (n *Node) Neighbors() []topology.NodeID {
	var out []topology.NodeID
	n.do(func(st *state) {
		out = append(out, st.neighbors...)
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNeighbor links both nodes (used for bootstrap wiring; the remote
// side learns of the edge by receiving our first query or invite, so
// for tests and demos call AddNeighbor on both ends).
func (n *Node) AddNeighbor(id topology.NodeID) {
	n.do(func(st *state) { addNeighbor(st, n.cfg.Neighbors, id) })
}

func addNeighbor(st *state, capacity int, id topology.NodeID) bool {
	for _, v := range st.neighbors {
		if v == id {
			return false
		}
	}
	if len(st.neighbors) >= capacity {
		return false
	}
	st.neighbors = append(st.neighbors, id)
	return true
}

func removeNeighbor(st *state, id topology.NodeID) bool {
	for i, v := range st.neighbors {
		if v == id {
			st.neighbors = append(st.neighbors[:i], st.neighbors[i+1:]...)
			return true
		}
	}
	return false
}

// QueryOpts parameterizes one originated search. The zero value of
// every field defers to the node's configuration.
type QueryOpts struct {
	// Key is the content item requested.
	Key core.Key
	// TTL overrides Config.TTL for this query when positive.
	TTL int
	// Timeout is the hit-collection window. Required.
	Timeout time.Duration
	// MaxHits, when positive, ends collection early once that many
	// hits arrived — a REST frontend answering "is it out there?"
	// returns in a flood round-trip instead of a full window.
	MaxHits int
	// Forward overrides the origin hop's fan-out policy for this query
	// only; forwarding nodes still apply their own configured policies
	// (each hop is autonomous in the live protocol). Nil uses
	// Config.Forward.
	Forward core.ForwardPolicy
	// Cancel, when non-nil, ends hit collection early when it becomes
	// receivable — the hook a serving frontend uses to enforce a total
	// per-request deadline budget tighter than Timeout. Hits already
	// collected are returned; QueryInfo.Stopped records the early end.
	Cancel <-chan struct{}
}

// QueryInfo describes how a query's hit collection ended — the signal
// a serving layer needs to mark a response as degraded rather than
// silently partial.
type QueryInfo struct {
	// Fanout is how many first-hop copies the origin sent. Zero (with
	// no local hit) means the query never left this node — an isolated
	// or fully-partitioned origin.
	Fanout int
	// Stopped reports that collection ended early: Cancel fired or the
	// node shut down before the window closed.
	Stopped bool
}

// Search floods a query and collects hits until timeout. It implements
// Send_Query of Algo 5: statistics update with benefit B/R over the
// collected results, then a reconfiguration check.
func (n *Node) Search(key core.Key, timeout time.Duration) []SearchHit {
	return n.Query(QueryOpts{Key: key, Timeout: timeout})
}

// Query originates one search with explicit options (see QueryOpts);
// Search is the common-case wrapper. Any number of goroutines may
// originate queries on one node concurrently.
func (n *Node) Query(opts QueryOpts) []SearchHit {
	hits, _ := n.QueryInfo(opts)
	return hits
}

// resultsPool recycles hit-collection channels across queries: the
// 256-slot buffer is the single largest per-query allocation on the
// serving path, and a pooled channel is safe to reuse because only the
// actor loop ever writes to it — once the actor has dropped the
// pending entry (and drained stragglers), nothing can touch it again.
var resultsPool = sync.Pool{
	New: func() any { return make(chan SearchHit, 256) },
}

// QueryInfo is Query plus an account of how collection ended (first-hop
// fan-out, early stop) — see the QueryInfo type.
func (n *Node) QueryInfo(opts QueryOpts) ([]SearchHit, QueryInfo) {
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = n.cfg.TTL
	}
	forward := opts.Forward
	if forward == nil {
		forward = n.cfg.Forward
	}
	results := resultsPool.Get().(chan SearchHit)
	var qid core.QueryID
	var info QueryInfo
	n.do(func(st *state) {
		n.nextQID++
		qid = core.QueryID(uint64(n.cfg.ID)<<32) | n.nextQID
		st.pending[qid] = results
		st.seen.add(qid) // our own query must not be re-processed
		q := core.Query{ID: qid, Key: opts.Key, Origin: n.cfg.ID, TTL: ttl}
		targets := forward.Select(&q, n.cfg.ID, topology.None, st.neighbors, st.ledger, nil)
		info.Fanout = len(targets)
		for _, nb := range targets {
			n.send(nb, Envelope{
				Type: MsgQuery, From: n.cfg.ID,
				QueryID: qid, Key: opts.Key, Origin: n.cfg.ID,
				TTL: ttl, Hops: 1,
			})
		}
	})

	deadline := time.NewTimer(opts.Timeout)
	defer deadline.Stop()
	var hits []SearchHit
collect:
	for {
		select {
		case h := <-results:
			hits = append(hits, h)
			if opts.MaxHits > 0 && len(hits) >= opts.MaxHits {
				break collect
			}
		case <-deadline.C:
			break collect
		case <-opts.Cancel:
			info.Stopped = true
			break collect
		case <-n.done:
			info.Stopped = true
			break collect
		}
	}

	// Post-collection bookkeeping is asynchronous: the caller has its
	// hits and need not wait for the ledger update. The actor owns the
	// results channel's retirement — it drops the pending entry, drains
	// stragglers that raced the collection window, and only then
	// recycles the channel, so no writer can ever touch a pooled one.
	n.post(func(st *state) {
		delete(st.pending, qid)
	drain:
		for {
			select {
			case <-results:
			default:
				break drain
			}
		}
		resultsPool.Put(results)
		r := float64(len(hits))
		for _, h := range hits {
			rec := st.ledger.Touch(h.Holder)
			rec.Hits++
			rec.Results++
			rec.Replies++
			rec.Benefit += h.Class.Weight() / r
		}
		st.searches++
		if n.cfg.ReconfigThreshold > 0 && st.searches >= n.cfg.ReconfigThreshold {
			st.searches = 0
			n.reconfigureLocked(st)
		}
	})
	return hits, info
}

// Reconfigure forces one Algo 5 reconfiguration immediately.
func (n *Node) Reconfigure() {
	n.do(n.reconfigureLocked)
}

// reconfigureLocked runs inside the actor loop: invite the single most
// beneficial known non-neighbor, evicting the worst neighbor when full
// (MaxSwaps = 1, as in the paper's case study).
func (n *Node) reconfigureLocked(st *state) {
	ranked := st.ledger.Rank(stats.Cumulative{}, func(p topology.NodeID) bool {
		return p == n.cfg.ID
	})
	for _, cand := range ranked {
		isNeighbor := false
		for _, v := range st.neighbors {
			if v == cand.Peer {
				isNeighbor = true
				break
			}
		}
		if isNeighbor {
			continue
		}
		if len(st.neighbors) >= n.cfg.Neighbors {
			worst := st.ledger.Least(stats.Cumulative{}, st.neighbors)
			worstScore := 0.0
			if r := st.ledger.Get(worst); r != nil {
				worstScore = stats.Cumulative{}.Score(r)
			}
			if cand.Score <= worstScore {
				return // nothing better than the current set
			}
			removeNeighbor(st, worst)
			n.send(worst, Envelope{Type: MsgEvict, From: n.cfg.ID})
		}
		addNeighbor(st, n.cfg.Neighbors, cand.Peer)
		n.send(cand.Peer, Envelope{Type: MsgInvite, From: n.cfg.ID})
		return
	}
}

// handle processes one incoming envelope inside the actor loop.
func (n *Node) handle(st *state, env Envelope) {
	switch env.Type {
	case MsgQuery:
		if st.seen.insert(env.QueryID) {
			return
		}
		if n.cfg.Stats != nil {
			n.cfg.Stats.QueriesSeen.Inc()
		}
		if n.cfg.Store.Has(env.Key) {
			if n.cfg.Stats != nil {
				n.cfg.Stats.HitsServed.Inc()
			}
			n.send(env.Origin, Envelope{
				Type: MsgHit, From: n.cfg.ID,
				QueryID: env.QueryID, Key: env.Key,
				Hops: env.Hops, Class: n.cfg.Class,
			})
			return // the case study does not forward past a serving node
		}
		if env.Hops >= env.TTL {
			return
		}
		// The forward policy picks the propagation targets; Flood keeps
		// the baseline everyone-but-sender-and-origin semantics.
		st.fwdQuery = core.Query{ID: env.QueryID, Key: env.Key, Origin: env.Origin, TTL: env.TTL}
		targets := n.cfg.Forward.Select(&st.fwdQuery, n.cfg.ID, env.From, st.neighbors, st.ledger, st.fwdBuf[:0])
		st.fwdBuf = targets[:0] // keep the grown capacity for the next query
		if n.cfg.Stats != nil {
			n.cfg.Stats.QueriesForwarded.Add(uint64(len(targets)))
		}
		for _, nb := range targets {
			fwd := env
			fwd.From = n.cfg.ID
			fwd.Hops++
			n.send(nb, fwd)
		}
	case MsgHit:
		if n.cfg.Stats != nil {
			n.cfg.Stats.HitsReceived.Inc()
		}
		if ch, ok := st.pending[env.QueryID]; ok {
			select {
			case ch <- SearchHit{Holder: env.From, Hops: env.Hops, Class: env.Class}:
			default:
			}
		}
	case MsgInvite:
		// Always accept (Algo 5), evicting the least beneficial
		// neighbor when full.
		if len(st.neighbors) >= n.cfg.Neighbors {
			worst := st.ledger.Least(stats.Cumulative{}, st.neighbors)
			removeNeighbor(st, worst)
			n.send(worst, Envelope{Type: MsgEvict, From: n.cfg.ID})
		}
		addNeighbor(st, n.cfg.Neighbors, env.From)
		n.send(env.From, Envelope{Type: MsgInviteReply, From: n.cfg.ID, Accept: true})
		st.searches = 0 // reset the reconfiguration counter
	case MsgInviteReply:
		if env.Accept {
			addNeighbor(st, n.cfg.Neighbors, env.From)
		}
	case MsgEvict:
		removeNeighbor(st, env.From)
		// Process_Eviction: reset statistics about the evictor so we do
		// not immediately re-invite it.
		st.ledger.Reset(env.From)
	}
}

// seenSet is the bounded duplicate cache ("each node keeps a list of
// recent messages"): a two-generation open-addressed table. Inserts go
// into the current generation; when it fills, the previous generation
// is discarded wholesale and the tables swap — no per-entry eviction.
// Lookups probe both generations, so the retention window is between
// seenGenCap and 2*seenGenCap recent IDs. The Go-map + eviction-ring
// this replaces was the hottest code on the flood path (hash, probe,
// insert AND delete per message).
const (
	// seenGenCap bounds a generation. 2048 keeps the minimum retention
	// window above anything the fabric can interleave between two
	// copies of one query (inbox depth 1024 plus admission concurrency)
	// while the per-node tables (2 x 32KB) stay cache-resident.
	seenGenCap  = 2048
	seenTabSize = 2 * seenGenCap     // slots per table: load factor <= 1/2
	seenMask    = seenTabSize - 1    // power-of-two probe mask
	seenHashK   = 0x9e3779b97f4a7c15 // Fibonacci multiplier
)

type seenSet struct {
	cur, old []core.QueryID // slots hold qid+1 so 0 means empty
	n        int            // live entries in cur
}

func newSeenSet() seenSet {
	return seenSet{
		cur: make([]core.QueryID, seenTabSize),
		old: make([]core.QueryID, seenTabSize),
	}
}

// seenSlot maps a query ID to its home slot (top bits of a Fibonacci
// hash — query IDs are origin<<32|counter, so low bits alone collide
// across origins).
func seenSlot(qid core.QueryID) int {
	return int((uint64(qid)*seenHashK)>>52) & seenMask
}

func seenProbe(tab []core.QueryID, v core.QueryID, home int) bool {
	for i := home; ; i = (i + 1) & seenMask {
		switch tab[i] {
		case 0:
			return false
		case v:
			return true
		}
	}
}

func (s *seenSet) has(qid core.QueryID) bool {
	home := seenSlot(qid)
	return seenProbe(s.cur, qid+1, home) || seenProbe(s.old, qid+1, home)
}

func (s *seenSet) add(qid core.QueryID) {
	s.insert(qid)
}

// insert records qid and reports whether it was already present — one
// combined walk of the current generation instead of a lookup followed
// by a re-probing add (these random-index walks are pure cache-miss
// cost on the flood path, so every probe chain saved counts).
func (s *seenSet) insert(qid core.QueryID) (dup bool) {
	if s.n >= seenGenCap {
		s.cur, s.old = s.old, s.cur
		clear(s.cur)
		s.n = 0
	}
	v := qid + 1
	home := seenSlot(qid)
	for i := home; ; i = (i + 1) & seenMask {
		switch s.cur[i] {
		case 0:
			if seenProbe(s.old, v, home) {
				return true // still remembered by the previous generation
			}
			s.cur[i] = v
			s.n++
			return false
		case v:
			return true
		}
	}
}

// send delivers without blocking the actor; transport errors keep
// lossy-network semantics (the message is gone) but are counted, so a
// harness can tell a saturated run from a clean one.
func (n *Node) send(to topology.NodeID, env Envelope) {
	if err := n.cfg.Transport.Send(to, env); err != nil && n.cfg.Stats != nil {
		n.cfg.Stats.SendFailed.Inc()
	}
}
