package search_test

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/pkg/search"
)

// storeWorld is the shared fixture of the snapshot-store suite: a
// mutable build-side network, its store, and a pure content oracle
// (node holds key iff their residues mod 97 agree — independent of
// topology, so churn never changes who holds what).
func storeWorld(n int) (*topology.Network, *topology.SnapshotStore, core.ContentFunc) {
	net := topology.NewNetwork(topology.Symmetric, n, 8, 8)
	for i := 0; i < n; i++ {
		net.Connect(topology.NodeID(i), topology.NodeID((i+1)%n))
		net.Connect(topology.NodeID(i), topology.NodeID((i+13)%n))
	}
	content := core.ContentFunc(func(id topology.NodeID, key core.Key) bool {
		return int(id)%97 == int(key)%97
	})
	return net, topology.NewSnapshotStore(net), content
}

// churnDeltas draws one epoch's delta batch: mostly rewires (paired
// disconnect/connect), some raw connects, the occasional isolate.
func churnDeltas(rnd *rand.Rand, n, count int) []topology.Delta {
	ds := make([]topology.Delta, 0, count)
	for len(ds) < count {
		src := topology.NodeID(rnd.Intn(n))
		dst := topology.NodeID(rnd.Intn(n))
		switch rnd.Intn(8) {
		case 0:
			ds = append(ds, topology.Delta{Op: topology.OpIsolate, Src: src})
		case 1, 2:
			ds = append(ds, topology.Delta{Op: topology.OpDisconnect, Src: src, Dst: dst})
		default:
			ds = append(ds, topology.Delta{Op: topology.OpConnect, Src: src, Dst: dst})
		}
	}
	return ds
}

// TestWithSnapshotStoreMatchesSnapshot: on a static network the
// store-backed Engine is byte-identical to a WithSnapshot-style frozen
// Engine — the store adds an epoch tag and nothing else.
func TestWithSnapshotStoreMatchesSnapshot(t *testing.T) {
	net, store, content := storeWorld(120)
	frozen, err := search.New(search.Over(net.Freeze(), content),
		search.WithTTL(4), search.WithDelay(stepDelay), search.WithScratchHint(net.Len()))
	if err != nil {
		t.Fatal(err)
	}
	served, err := search.New(search.OverContent(content),
		search.WithSnapshotStore(store), search.WithTTL(4), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	if served.Store() != store {
		t.Fatal("Store() does not return the configured store")
	}
	ctx := context.Background()
	for key := 0; key < 40; key++ {
		q := search.Query{ID: uint64(key), Key: search.Key(key), Origin: search.NodeID(key * 3 % net.Len())}
		a, err := frozen.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := served.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if b.Epoch != 1 {
			t.Fatalf("key %d: served from epoch %d, want 1", key, b.Epoch)
		}
		b.Epoch = 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: store-served %+v != frozen %+v", key, b, a)
		}
	}
}

// TestSnapshotStoreHammerQuiescedReplay is the PR's acceptance test: 32
// concurrent readers hammer queries through a store-backed Engine while
// the writer forces 100 epoch swaps under their feet, every published
// snapshot is cloned as it appears, and afterwards every single outcome
// is replayed on a quiesced fresh Engine over the clone of the epoch
// that served it — byte-for-byte identical, proving no query ever
// observed a half-frozen graph. Run under -race in CI.
func TestSnapshotStoreHammerQuiescedReplay(t *testing.T) {
	const (
		n         = 600
		readers   = 32
		swaps     = 100
		perReader = 20
	)
	_, store, content := storeWorld(n)
	eng, err := search.New(search.OverContent(content),
		search.WithSnapshotStore(store), search.WithTTL(3))
	if err != nil {
		t.Fatal(err)
	}

	// Clone every published snapshot the moment it appears: the buffer
	// re-enters rotation once drained, but the clone stays comparable.
	epochs := map[uint64]*topology.CSR{}
	snap := func() {
		pin := store.Acquire()
		epochs[pin.Epoch()] = pin.Graph().Clone()
		pin.Release()
	}
	snap() // epoch 1

	type outcome struct {
		q   search.Query
		res search.Result
	}
	ctx := context.Background()
	var (
		wg     sync.WaitGroup
		issued atomic.Int64
	)
	recorded := make([][]outcome, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < perReader; i++ {
				// Interlock with the writer: a reader's i-th query waits
				// for epoch 1+5i, while the writer's s-th swap waits for
				// s*total/(swaps+1) issued queries — so neither side can
				// run to completion before the other starts, and queries
				// straddle swaps at every scheduling.
				for store.Epoch() < uint64(1+i*swaps/perReader) {
					runtime.Gosched()
				}
				q := search.Query{
					ID:     uint64(r*perReader + i),
					Key:    search.Key((r*31 + i*7) % 500),
					Origin: search.NodeID((r*53 + i*17) % n),
				}
				res, err := eng.Do(ctx, q)
				if err != nil {
					t.Errorf("reader %d query %d: %v", r, i, err)
					return
				}
				// A single goroutine's epochs are monotone: the store's
				// pointer only moves forward.
				if res.Epoch < last {
					t.Errorf("reader %d: epoch went backwards %d -> %d", r, last, res.Epoch)
					return
				}
				last = res.Epoch
				recorded[r] = append(recorded[r], outcome{q, res})
				issued.Add(1)
			}
		}()
	}

	// The writer paces its 100 forced swaps against reader progress so
	// queries genuinely straddle swaps at every scheduling.
	total := int64(readers * perReader)
	rnd := rand.New(rand.NewSource(97))
	for s := 1; s <= swaps; s++ {
		for issued.Load() < int64(s)*total/(swaps+1) {
			runtime.Gosched()
		}
		store.Apply(churnDeltas(rnd, n, 20))
		snap()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced replay: group outcomes by serving epoch, rebuild a fresh
	// fixed-graph Engine per epoch over the clone, and demand identity.
	byEpoch := map[uint64][]outcome{}
	distinct := map[uint64]bool{}
	for _, rec := range recorded {
		for _, o := range rec {
			byEpoch[o.res.Epoch] = append(byEpoch[o.res.Epoch], o)
			distinct[o.res.Epoch] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("queries landed on only %d distinct epochs; the hammer degenerated", len(distinct))
	}
	for epoch, outs := range byEpoch {
		csr, ok := epochs[epoch]
		if !ok {
			t.Fatalf("query served from epoch %d, which was never published", epoch)
		}
		replay, err := search.New(search.Over(csr, content),
			search.WithTTL(3), search.WithScratchHint(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			want, err := replay.Do(ctx, o.q)
			if err != nil {
				t.Fatal(err)
			}
			got := o.res
			got.Epoch = 0 // the replay Engine is not store-backed
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("epoch %d query %d: live %+v != quiesced replay %+v",
					epoch, o.q.ID, got, want)
			}
		}
	}
}

// TestSnapshotStorePostSwapMatchesFreshFreeze is the differential
// suite: after a run of delta-published epochs, queries through the
// store-backed Engine are identical to a stop-the-world Engine frozen
// fresh from the mutated network — the double buffer converges to
// exactly what a full pause-and-refreeze would have produced.
func TestSnapshotStorePostSwapMatchesFreshFreeze(t *testing.T) {
	const n = 300
	net, store, content := storeWorld(n)
	served, err := search.New(search.OverContent(content),
		search.WithSnapshotStore(store), search.WithTTL(4), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(5))
	for epoch := 0; epoch < 12; epoch++ {
		store.Apply(churnDeltas(rnd, n, 40))
	}

	fresh, err := search.New(search.Over(net.Freeze(), content),
		search.WithTTL(4), search.WithDelay(stepDelay), search.WithScratchHint(n))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for key := 0; key < 60; key++ {
		q := search.Query{ID: uint64(key), Key: search.Key(key), Origin: search.NodeID(key * 5 % n)}
		a, err := served.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Epoch != 13 {
			t.Fatalf("key %d: served from epoch %d, want 13", key, a.Epoch)
		}
		a.Epoch = 0
		b, err := fresh.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: post-swap %+v != fresh freeze %+v", key, a, b)
		}
	}
}

// TestSaturateUnderChurn: the saturation shard keeps draining while the
// writer publishes epochs, no query errors, every result carries a
// plausible epoch tag, and once the writer quiesces a final saturated
// run is byte-identical to a stop-the-world freeze of the final state.
func TestSaturateUnderChurn(t *testing.T) {
	const n = 400
	net, store, content := storeWorld(n)
	eng, err := search.New(search.OverContent(content),
		search.WithSnapshotStore(store), search.WithTTL(3))
	if err != nil {
		t.Fatal(err)
	}
	sat, err := eng.Saturate(search.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sat.Close()

	mkBatch := func(round int) []search.Query {
		qs := make([]search.Query, 200)
		for i := range qs {
			qs[i] = search.Query{
				ID:     uint64(round*1000 + i),
				Key:    search.Key((round*17 + i) % 400),
				Origin: search.NodeID((round*29 + i*3) % n),
			}
		}
		return qs
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		rnd := rand.New(rand.NewSource(31))
		for {
			select {
			case <-stop:
				return
			default:
				store.Apply(churnDeltas(rnd, n, 15))
				runtime.Gosched()
			}
		}
	}()
	for round := 0; round < 8; round++ {
		results, err := sat.Run(ctx, mkBatch(round))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Epoch < 1 {
				t.Fatalf("round %d query %d: missing epoch tag", round, i)
			}
		}
	}
	close(stop)
	writer.Wait()

	final := store.Epoch()
	fresh, err := search.New(search.Over(net.Freeze(), content),
		search.WithTTL(3), search.WithScratchHint(n))
	if err != nil {
		t.Fatal(err)
	}
	qs := mkBatch(99)
	got, err := sat.Run(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := fresh.Do(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		g := got[i]
		if g.Epoch != final {
			t.Fatalf("post-quiesce query %d served from epoch %d, want %d", i, g.Epoch, final)
		}
		g.Epoch = 0
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("post-quiesce query %d: saturated %+v != fresh freeze %+v", i, g, want)
		}
	}
}

// TestWithSnapshotStoreValidates covers the option's error edges.
func TestWithSnapshotStoreValidates(t *testing.T) {
	if _, err := search.New(newTestNet(10, 2), search.WithSnapshotStore(nil)); err == nil ||
		!strings.Contains(err.Error(), "nil store") {
		t.Fatalf("nil store: err = %v, want nil-store complaint", err)
	}
	_, store, content := storeWorld(20)
	if _, err := search.New(search.OverContent(content),
		search.WithSnapshotStore(store), search.WithSnapshot(20)); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("store+snapshot: err = %v, want exclusivity complaint", err)
	}
}
