package core

import (
	"encoding/json"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// maskGraph is a random adjacency with a liveness mask — the generic
// (non-CSR) graph shape, so the bitset variant is exercised on the
// interface-dispatched path including the Online check.
type maskGraph struct {
	out    [][]topology.NodeID
	online []bool
}

func (g *maskGraph) Out(id topology.NodeID) []topology.NodeID { return g.out[id] }
func (g *maskGraph) Online(id topology.NodeID) bool           { return g.online[id] }

// randomMaskGraph builds a seeded random n-node graph: every node gets
// [1, maxDeg] distinct outgoing neighbors, and offlineFrac of the nodes
// are marked off-line.
func randomMaskGraph(r *rng.Stream, n, maxDeg int, offlineFrac float64) *maskGraph {
	g := &maskGraph{out: make([][]topology.NodeID, n), online: make([]bool, n)}
	for i := range g.online {
		g.online[i] = r.Float64() >= offlineFrac
	}
	for i := 0; i < n; i++ {
		deg := 1 + r.Intn(maxDeg)
		for d := 0; d < deg; d++ {
			nb := topology.NodeID(r.Intn(n))
			if int(nb) == i {
				continue
			}
			dup := false
			for _, have := range g.out[i] {
				if have == nb {
					dup = true
					break
				}
			}
			if !dup {
				g.out[i] = append(g.out[i], nb)
			}
		}
	}
	return g
}

// TestVisitedVariantsByteIdentical is the differential property suite
// of the dense-flood bitset: across 100 seeded random topologies and
// every builtin forward policy, cascades running on the bitset visited
// set produce byte-identical outcomes to cascades running on the
// epoch-stamped slots. Scratches are reused across runs in both
// variants, so the bitset's per-cascade clear discipline is exercised
// under pooling, and half the topologies run with off-line nodes (the
// generic-graph path the heuristic never picks on its own).
func TestVisitedVariantsByteIdentical(t *testing.T) {
	defer func() { ForceVisited = VisitedAuto }()

	type policyCase struct {
		name string
		mk   func(r *rng.Stream, led func(topology.NodeID) *stats.Ledger) ForwardPolicy
	}
	mayHold := func(id topology.NodeID, key Key) bool {
		return (uint64(id)*31+uint64(key)*17)%3 != 0
	}
	policies := []policyCase{
		{"flood", func(*rng.Stream, func(topology.NodeID) *stats.Ledger) ForwardPolicy {
			return Flood{}
		}},
		{"random-2", func(r *rng.Stream, _ func(topology.NodeID) *stats.Ledger) ForwardPolicy {
			return RandomK{K: 2, Intn: r.Intn}
		}},
		{"directed-bft-2", func(_ *rng.Stream, _ func(topology.NodeID) *stats.Ledger) ForwardPolicy {
			return DirectedBFT{K: 2, Benefit: stats.Cumulative{}}
		}},
		{"digest-guided", func(*rng.Stream, func(topology.NodeID) *stats.Ledger) ForwardPolicy {
			return DigestGuided{MayHold: mayHold, Fallback: Flood{}}
		}},
	}

	scratchSlots := NewScratch(0)
	scratchBits := NewScratch(0)
	for topo := 0; topo < 100; topo++ {
		seed := uint64(1000 + topo)
		r := rng.New(seed)
		n := 32 + r.Intn(480)
		offline := 0.0
		if topo%2 == 1 {
			offline = 0.15
		}
		g := randomMaskGraph(r, n, 4, offline)
		content := ContentFunc(func(id topology.NodeID, key Key) bool {
			return uint64(id)%7 == uint64(key)%7
		})
		ledgers := make([]*stats.Ledger, n)
		for i := range ledgers {
			ledgers[i] = stats.NewLedger()
			for _, nb := range g.out[i] {
				ledgers[i].Touch(nb).Benefit = r.Float64()
			}
		}
		ledgerOf := func(id topology.NodeID) *stats.Ledger { return ledgers[id] }
		delay := func(from, to topology.NodeID) float64 {
			return 0.010 + float64((int(from)*13+int(to)*7)%17)/1000
		}

		for _, pc := range policies {
			q := Query{
				ID:             QueryID(topo),
				Key:            Key(r.Intn(n)),
				Origin:         topology.NodeID(r.Intn(n)),
				TTL:            3 + r.Intn(5),
				ForwardWhenHit: topo%3 == 0,
			}
			// Each variant gets its own rng stream at the same seed so
			// stochastic policies draw identical decisions.
			run := func(variant VisitedVariant, s *Scratch) []byte {
				ForceVisited = variant
				defer func() { ForceVisited = VisitedAuto }()
				c := &Cascade{
					Graph:   g,
					Content: content,
					Forward: pc.mk(rng.New(seed^0xbeef), ledgerOf),
					Ledger:  ledgerOf,
					Delay:   delay,
				}
				out := c.RunScratch(&q, s)
				b, err := json.Marshal(out)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			slots := run(VisitedSlots, scratchSlots)
			bits := run(VisitedBits, scratchBits)
			if string(slots) != string(bits) {
				t.Fatalf("topology %d (n=%d, offline=%.2f) policy %s: variants diverged\n  slots: %s\n  bits:  %s",
					topo, n, offline, pc.name, slots, bits)
			}
		}
	}
}

// TestVisitedAutoMatchesForced pins the heuristic path itself: a CSR
// dense flood that denseFlood selects for the bitset must agree with a
// forced-slots run, and the heuristic must actually engage (so the auto
// path is not silently testing slots against slots).
func TestVisitedAutoMatchesForced(t *testing.T) {
	defer func() { ForceVisited = VisitedAuto }()

	const n = denseBitsMinNodes
	net := topology.NewNetwork(topology.PureAsymmetric, n, 4, 0)
	for i := 0; i < n; i++ {
		net.Connect(topology.NodeID(i), topology.NodeID((i+1)%n))
		net.Connect(topology.NodeID(i), topology.NodeID((i+37)%n))
		net.Connect(topology.NodeID(i), topology.NodeID((i+911)%n))
	}
	csr := net.Freeze()
	if !denseFlood(csr.Len(), csr.EdgeCount(), 12, 0) {
		t.Fatalf("heuristic rejected a TTL-12 flood over %d nodes / %d edges", csr.Len(), csr.EdgeCount())
	}
	if denseFlood(csr.Len(), csr.EdgeCount(), 2, 0) {
		t.Fatal("heuristic accepted a TTL-2 (sparse) flood")
	}
	if denseFlood(csr.Len(), csr.EdgeCount(), 12, 1) {
		t.Fatal("heuristic accepted a result-capped query")
	}

	c := &Cascade{
		Graph: csr,
		Content: ContentFunc(func(id topology.NodeID, key Key) bool {
			return uint64(id)%997 == uint64(key)%997
		}),
		Forward: Flood{},
	}
	q := Query{ID: 7, Key: 5, Origin: 123, TTL: 12}

	ForceVisited = VisitedSlots
	want, err := json.Marshal(c.RunScratch(&q, NewScratch(n)))
	if err != nil {
		t.Fatal(err)
	}
	ForceVisited = VisitedAuto
	got, err := json.Marshal(c.RunScratch(&q, NewScratch(n)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("auto (bitset) flood diverged from slots:\n  auto:  %s\n  slots: %s", got, want)
	}
}
