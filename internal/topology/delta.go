package topology

import "fmt"

// DeltaOp enumerates the topology mutations a churn epoch batches.
type DeltaOp uint8

const (
	// OpConnect adds the directed edge Src→Dst (plus the bookkeeping
	// Network.Connect implies: Dst's incoming entry, and the reverse
	// edge in the Symmetric regime).
	OpConnect DeltaOp = iota
	// OpDisconnect removes the edge Src→Dst (Network.Disconnect).
	OpDisconnect
	// OpIsolate removes every edge touching Src, both directions — the
	// "peer logged off" delta. Dst is ignored.
	OpIsolate
)

// String implements fmt.Stringer.
func (op DeltaOp) String() string {
	switch op {
	case OpConnect:
		return "connect"
	case OpDisconnect:
		return "disconnect"
	case OpIsolate:
		return "isolate"
	default:
		return fmt.Sprintf("DeltaOp(%d)", uint8(op))
	}
}

// Delta is one batched topology mutation. Churn producers record
// deltas instead of stopping the world: a SnapshotStore's writer
// applies a batch to its build-side Network and publishes one fresh
// epoch, while readers keep draining queries on the previous one.
//
// Deltas carry Network-method semantics, not raw edge-list edits: a
// Connect that fails (capacity, duplicate, self-edge) is a no-op
// exactly as the interactive call would be, so a delta log replayed
// against an equal starting Network always reproduces the same final
// adjacency (the churn-delta property suite locks this down).
type Delta struct {
	Op       DeltaOp
	Src, Dst NodeID
}

// Rewire returns the two-delta sequence of one reconfiguration step:
// drop src→old, attach src→new.
func Rewire(src, old, new NodeID) [2]Delta {
	return [2]Delta{
		{Op: OpDisconnect, Src: src, Dst: old},
		{Op: OpConnect, Src: src, Dst: new},
	}
}

// Apply executes one delta against the network, reporting whether the
// topology changed (OpIsolate always reports true).
func (net *Network) Apply(d Delta) bool {
	switch d.Op {
	case OpConnect:
		return net.Connect(d.Src, d.Dst)
	case OpDisconnect:
		return net.Disconnect(d.Src, d.Dst)
	case OpIsolate:
		net.Isolate(d.Src)
		return true
	default:
		panic(fmt.Sprintf("topology: apply %v", d.Op))
	}
}

// ApplyAll executes a delta batch in order and returns how many deltas
// changed the topology.
func (net *Network) ApplyAll(ds []Delta) int {
	changed := 0
	for _, d := range ds {
		if net.Apply(d) {
			changed++
		}
	}
	return changed
}
