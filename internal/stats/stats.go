// Package stats implements the statistics collection and benefit
// functions of Section 3.4 of the paper.
//
// Every node keeps a Ledger with one record per peer it has encountered
// through search or exploration — neighbors and non-neighbors alike.
// Neighbor updates sort those records by a Benefit function and promote
// the best peers (Algos 3–5). The paper stresses that the benefit
// function is application specific: B/R for music sharing (bandwidth
// over result-list size), page count and latency for web proxies,
// query processing time for PeerOlap. All of those are provided here;
// new ones only need to implement the one-method Benefit interface.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Record accumulates what one node has observed about one peer.
type Record struct {
	// Benefit is the application-defined cumulative benefit (e.g. the
	// paper's Σ B/R, added per obtained result).
	Benefit float64
	// Hits counts queries this peer answered with a result.
	Hits uint64
	// Results counts individual results obtained from the peer.
	Results uint64
	// Replies counts all replies, including NOT-FOUND.
	Replies uint64
	// LatencySum accumulates observed first-byte latencies (seconds)
	// over Replies.
	LatencySum float64
	// BytesServed accumulates payload served (web-cache benefit input).
	BytesServed uint64
	// CostSaved accumulates saved processing cost (PeerOlap benefit
	// input, in abstract cost units).
	CostSaved float64
	// LastSeen is the simulated time of the latest observation.
	LastSeen float64
}

// MeanLatency returns LatencySum/Replies, or 0 when no replies.
func (r *Record) MeanLatency() float64 {
	if r.Replies == 0 {
		return 0
	}
	return r.LatencySum / float64(r.Replies)
}

// entry pairs a peer with its record. Records stay individually
// heap-allocated so the *Record returned by Get/Touch remains valid
// across later insertions (the entry slice may shift).
type entry struct {
	peer topology.NodeID
	rec  *Record
}

// Ledger holds the Records of one observing node, as a slice of
// entries sorted by peer ID. A node's ledger covers the peers it has
// encountered through search and exploration — tens of entries under
// the paper's parameters — so binary-searched slices beat a map on
// both lookup cost and allocation, and the sorted order makes Peers
// and Rank deterministic without a per-call sort of the key set.
type Ledger struct {
	entries []entry
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{}
}

// find returns the position of peer and whether it is present; absent
// peers report the insertion index that keeps entries sorted.
func (l *Ledger) find(peer topology.NodeID) (int, bool) {
	lo, hi := 0, len(l.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.entries[mid].peer < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.entries) && l.entries[lo].peer == peer
}

// Get returns the record for peer, or nil if none exists.
func (l *Ledger) Get(peer topology.NodeID) *Record {
	if i, ok := l.find(peer); ok {
		return l.entries[i].rec
	}
	return nil
}

// Touch returns the record for peer, creating it if needed.
func (l *Ledger) Touch(peer topology.NodeID) *Record {
	i, ok := l.find(peer)
	if ok {
		return l.entries[i].rec
	}
	r := &Record{}
	l.entries = append(l.entries, entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = entry{peer: peer, rec: r}
	return r
}

// Reset erases everything known about peer. The paper's eviction rule
// (Algo 5, Process_Eviction) resets the evictor's statistics so the
// evicted node does not immediately re-invite it.
func (l *Ledger) Reset(peer topology.NodeID) {
	if i, ok := l.find(peer); ok {
		l.entries = append(l.entries[:i], l.entries[i+1:]...)
	}
}

// Len returns the number of peers with records.
func (l *Ledger) Len() int { return len(l.entries) }

// Peers returns all recorded peer IDs in ascending order (deterministic
// iteration for the simulator).
func (l *Ledger) Peers() []topology.NodeID {
	out := make([]topology.NodeID, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.peer
	}
	return out
}

// Decay multiplies every record's cumulative fields by factor in
// [0, 1]. Periodic decay lets the neighborhood track drifting access
// patterns ("exploration methods continuously update the neighborhoods
// in order to follow changes in access patterns").
func (l *Ledger) Decay(factor float64) {
	if factor < 0 || factor > 1 {
		panic(fmt.Sprintf("stats: decay factor %v outside [0,1]", factor))
	}
	for _, e := range l.entries {
		e.rec.Benefit *= factor
		e.rec.LatencySum *= factor
		e.rec.CostSaved *= factor
	}
}

// Benefit scores a peer record; higher is better. Implementations must
// be pure functions of the record.
type Benefit interface {
	// Score returns the peer's benefit. r is never nil.
	Score(r *Record) float64
	// Name identifies the function in experiment output.
	Name() string
}

// Cumulative is the paper's Section 4 benefit: the externally
// accumulated Σ B/R stored in Record.Benefit.
type Cumulative struct{}

// Score implements Benefit.
func (Cumulative) Score(r *Record) float64 { return r.Benefit }

// Name implements Benefit.
func (Cumulative) Name() string { return "cumulative-B/R" }

// HitCount ranks peers purely by how many queries they answered.
type HitCount struct{}

// Score implements Benefit.
func (HitCount) Score(r *Record) float64 { return float64(r.Hits) }

// Name implements Benefit.
func (HitCount) Name() string { return "hit-count" }

// HitsPerLatency ranks by hits divided by mean observed latency — the
// web-proxy benefit the paper sketches ("the number of retrieved
// pages, combined with the end-to-end latency").
type HitsPerLatency struct{}

// Score implements Benefit.
func (HitsPerLatency) Score(r *Record) float64 {
	lat := r.MeanLatency()
	if lat <= 0 {
		return float64(r.Hits)
	}
	return float64(r.Hits) / lat
}

// Name implements Benefit.
func (HitsPerLatency) Name() string { return "hits-per-latency" }

// HitRatePerLatency ranks by the *fraction* of interactions that
// produced a result, discounted by mean latency. Unlike absolute hit
// counts, rates let a rarely-probed but well-matched peer (seen only
// through exploration) outrank a long-standing neighbor that rarely
// helps — without this, whoever is already a neighbor accumulates
// unbounded absolute counts and reconfiguration can never improve the
// list. Smoothing dampens single-observation flukes: a peer with one
// lucky reply must not outrank a consistently useful neighbor.
type HitRatePerLatency struct {
	// Smoothing is the Laplace prior weight added to the reply count
	// (0 = raw rate).
	Smoothing float64
}

// Score implements Benefit.
func (b HitRatePerLatency) Score(r *Record) float64 {
	if r.Replies == 0 {
		return 0
	}
	rate := float64(r.Hits) / (float64(r.Replies) + b.Smoothing)
	lat := r.MeanLatency()
	if lat <= 0 {
		return rate
	}
	return rate / lat
}

// Name implements Benefit.
func (HitRatePerLatency) Name() string { return "hit-rate-per-latency" }

// CostSaved ranks by accumulated saved processing cost — the PeerOlap
// benefit ("the dominating cost is the query processing time").
type CostSaved struct{}

// Score implements Benefit.
func (CostSaved) Score(r *Record) float64 { return r.CostSaved }

// Name implements Benefit.
func (CostSaved) Name() string { return "cost-saved" }

// Scored pairs a peer with its benefit score.
type Scored struct {
	Peer  topology.NodeID
	Score float64
}

// Rank returns all recorded peers sorted by descending score, ties
// broken by ascending NodeID for determinism. exclude, when non-nil,
// removes peers from consideration (e.g. the node itself or off-line
// peers).
func (l *Ledger) Rank(b Benefit, exclude func(topology.NodeID) bool) []Scored {
	out := make([]Scored, 0, len(l.entries))
	for _, e := range l.entries {
		if exclude != nil && exclude(e.peer) {
			continue
		}
		out = append(out, Scored{Peer: e.peer, Score: b.Score(e.rec)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// TopK returns the k best peers under b, after filtering with exclude.
func (l *Ledger) TopK(b Benefit, k int, exclude func(topology.NodeID) bool) []topology.NodeID {
	ranked := l.Rank(b, exclude)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]topology.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Peer
	}
	return out
}

// Least returns the lowest-scoring peer among candidates under b, ties
// broken by ascending NodeID. Peers with no record score 0 — matching
// the paper's rule that an evicted (reset) peer ranks at the bottom.
// It returns topology.None for an empty candidate list.
func (l *Ledger) Least(b Benefit, candidates []topology.NodeID) topology.NodeID {
	best := topology.None
	bestScore := 0.0
	for _, id := range candidates {
		score := 0.0
		if r := l.Get(id); r != nil {
			score = b.Score(r)
		}
		if best == topology.None || score < bestScore ||
			(score == bestScore && id < best) {
			best, bestScore = id, score
		}
	}
	return best
}
