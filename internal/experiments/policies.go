package experiments

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// The policies experiment family sweeps the pkg/search policy registry
// over one mid-size scale network: the same wiring, holdings and query
// stream under every forward policy, isolating what fan-out alone buys
// and costs. It exists because policies are now config-selectable
// strings — the sweep is literally a list of registry names, and adding
// a policy family via search.RegisterPolicy makes it sweepable with one
// line here.
//
// Stochastic families (random-<k>) draw deterministic per-query streams
// inside the engine, so every cell remains a pure function of (config,
// seed) and cells.json stays byte-comparable at any worker count.

// policySweep lists the registry names the sweep compares. directed-bft
// degenerates to flooding here (no ledgers accumulate in the stateless
// scale harness) and is deliberately included: the sweep pins that
// equivalence down.
var policySweep = []string{"flood", "random-3", "random-2", "random-1", "directed-bft-2"}

// PolicySummary is the deterministic output of one policies cell.
type PolicySummary struct {
	Policy string `json:"policy"`
	ScaleSummary
}

// policyNodes returns the sweep's network size: large enough that
// fan-out differences dominate, small enough for CI.
func policyNodes(s Scale) int {
	if s == Full {
		return 10_000
	}
	return 1_000
}

// PolicyCells returns one cell per registry policy name over the shared
// network shape.
func PolicyCells(experiment string, scale Scale, seed uint64) []runner.Cell {
	// Every cell shares the experiment seed: identical wiring, holdings
	// and query stream, so the comparison isolates the policy itself —
	// the same pairing discipline as the figure experiments.
	cells := make([]runner.Cell, 0, len(policySweep))
	for _, policy := range policySweep {
		policy := policy
		cfg := DefaultScaleConfig(policyNodes(scale), scaleQueries(scale)/2, seed)
		cfg.Policy = policy
		cells = append(cells, runner.Cell{
			Experiment: experiment,
			Name:       policy,
			Seed:       cfg.Seed,
			Run: func(_ context.Context, cellSeed uint64) (any, error) {
				c := cfg
				c.Seed = cellSeed
				sum, _, err := RunScale(c)
				if err != nil {
					return nil, err
				}
				return &PolicySummary{Policy: policy, ScaleSummary: *sum}, nil
			},
		})
	}
	return cells
}

// AssemblePolicies validates the results of PolicyCells, in sweep
// order.
func AssemblePolicies(rs []runner.Result) ([]*PolicySummary, error) {
	out := make([]*PolicySummary, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		sum, ok := r.Value.(*PolicySummary)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *PolicySummary",
				r.Experiment, r.Cell, r.Value)
		}
		out[i] = sum
	}
	return out, nil
}

// PolicyTable renders the sweep.
func PolicyTable(sums []*PolicySummary) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Forward-policy sweep over one %d-node network (pkg/search registry)", sums[0].Nodes),
		"policy", "hit_rate", "msgs/query", "visited", "p50_ms", "p95_ms")
	for _, s := range sums {
		t.AddRow(s.Policy, s.HitRate, s.MsgsPerQuery, s.VisitedMean, s.DelayP50Ms, s.DelayP95Ms)
	}
	return t
}

// Policies runs the sweep on the default pool and returns the
// summaries.
func Policies(scale Scale, seed uint64) []*PolicySummary {
	return must(AssemblePolicies(runLocal(PolicyCells("policies", scale, seed))))
}
