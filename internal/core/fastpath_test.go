package core

import (
	"encoding/json"
	"testing"

	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Differential tests for the hot-path machinery this package gained in
// the CSR/bucketed-queue PR: every fast path (frozen-snapshot graph,
// devirtualized flood, bucketed event queue) must be byte-identical to
// the generic path it replaces.

// indirectFlood is Flood behind a different concrete type, so the
// cascade's devirtualized flood check fails and the generic
// ForwardPolicy.Select path runs — the "before" side of the flood
// fast-path differential.
type indirectFlood struct{}

func (indirectFlood) Select(q *Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	for _, n := range out {
		if n == from || n == q.Origin {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}
func (indirectFlood) Name() string { return "flood-indirect" }

// cascadeDelayModels are the hop-delay regimes the differentials sweep:
// the sorted-run regime (zero, constant), the bucketed regime (netsim),
// and the heap-fallback regime (heavy tail).
func cascadeDelayModels(s *rng.Stream) map[string]DelayFunc {
	return map[string]DelayFunc{
		"zero":     ZeroDelay,
		"constant": func(_, _ topology.NodeID) float64 { return 0.1 },
		"netsim":   func(_, _ topology.NodeID) float64 { return 0.07 + 0.28*s.Float64() },
		"heavy": func(_, _ topology.NodeID) float64 {
			d := 0.01 + 0.04*s.Float64()
			if s.Intn(32) == 0 {
				d *= 1e6
			}
			return d
		},
	}
}

// outcomesJSON drives queries through c with a reused Scratch and
// marshals every outcome.
func outcomesJSON(t *testing.T, c *Cascade, queries int) []byte {
	t.Helper()
	s := NewScratch(0)
	var all []json.RawMessage
	for q := 0; q < queries; q++ {
		o := c.RunScratch(&Query{ID: QueryID(q + 1), Key: Key(q % 7), Origin: topology.NodeID(q % 20), TTL: 4}, s)
		j, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
	}
	out, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBucketHeapByteIdentical: for every delay regime and a spread of
// seeds, cascades running on the bucketed queue produce byte-identical
// outcomes to cascades forced onto the binary-heap fallback.
func TestBucketHeapByteIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for name := range cascadeDelayModels(rng.New(0)) {
			run := func(forceHeap bool) []byte {
				eventq.ForceHeapQueue = forceHeap
				defer func() { eventq.ForceHeapQueue = false }()
				g, content, s := randomCase(seed, 60, 4)
				c := &Cascade{Graph: g, Content: content, Forward: Flood{},
					Delay: cascadeDelayModels(s)[name]}
				return outcomesJSON(t, c, 40)
			}
			if a, b := string(run(false)), string(run(true)); a != b {
				t.Fatalf("seed %d delay %s: bucketed and heap outcomes differ:\n%s\n%s", seed, name, a, b)
			}
		}
	}
}

// TestCSRSnapshotByteIdentical: cascades over a frozen CSR snapshot are
// byte-identical to cascades over the live (fully-online) network view,
// for flood and the generic-Select policies alike.
func TestCSRSnapshotByteIdentical(t *testing.T) {
	policies := map[string]func() ForwardPolicy{
		"flood":          func() ForwardPolicy { return Flood{} },
		"flood-indirect": func() ForwardPolicy { return indirectFlood{} },
		"directed-bft":   func() ForwardPolicy { return DirectedBFT{K: 2, Benefit: stats.Cumulative{}} },
	}
	for _, seed := range []uint64{3, 11} {
		for name, mk := range policies {
			run := func(freeze bool) []byte {
				g, content, s := randomCase(seed, 60, 4)
				led := stats.NewLedger()
				c := &Cascade{Graph: g, Content: content, Forward: mk(),
					Ledger: func(topology.NodeID) *stats.Ledger { return led },
					Delay:  cascadeDelayModels(s)["netsim"]}
				if freeze {
					c.Graph = g.net.Freeze()
				}
				return outcomesJSON(t, c, 40)
			}
			if a, b := string(run(true)), string(run(false)); a != b {
				t.Fatalf("seed %d policy %s: CSR and network outcomes differ", seed, name)
			}
		}
	}
}

// TestFloodFastPathByteIdentical: the devirtualized flood loop sends
// exactly what the generic Select path sends — same messages, same
// order, same outcomes — across all delay regimes.
func TestFloodFastPathByteIdentical(t *testing.T) {
	for _, seed := range []uint64{5, 19} {
		for name := range cascadeDelayModels(rng.New(0)) {
			run := func(fast bool) []byte {
				g, content, s := randomCase(seed, 60, 4)
				var p ForwardPolicy = indirectFlood{}
				if fast {
					p = Flood{}
				}
				c := &Cascade{Graph: g.net.Freeze(), Content: content, Forward: p,
					Delay: cascadeDelayModels(s)[name]}
				return outcomesJSON(t, c, 40)
			}
			if a, b := string(run(true)), string(run(false)); a != b {
				t.Fatalf("seed %d delay %s: fast and generic flood outcomes differ", seed, name)
			}
		}
	}
}

// TestFirstResultDelayGenuineZero: a genuine zero-delay first result
// must survive later, slower results — the former zero-as-unset
// sentinel made the minimum drift upward.
func TestFirstResultDelayGenuineZero(t *testing.T) {
	// 0 -> 1 -> 2; both 1 and 2 hold the key. The 0-1 link is free, the
	// 1-2 link costs 1s each way, so the first result arrives at t=0 and
	// the second at t=3 (two forward hops + two reply hops on 1-2... the
	// forward 0->1 and reply 1->0 hops are free).
	g := chain(3)
	holders := map[topology.NodeID]bool{1: true, 2: true}
	c := &Cascade{
		Graph:   g,
		Content: ContentFunc(func(id topology.NodeID, k Key) bool { return k == 1 && holders[id] }),
		Forward: Flood{},
		Delay: func(from, to topology.NodeID) float64 {
			if from == 2 || to == 2 {
				return 1
			}
			return 0
		},
	}
	o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 2, ForwardWhenHit: true})
	if len(o.Results) != 2 {
		t.Fatalf("want 2 results, got %+v", o.Results)
	}
	if o.FirstResultDelay != 0 {
		t.Fatalf("FirstResultDelay = %v, want the genuine 0 of the first result", o.FirstResultDelay)
	}
	if d, ok := o.FirstDelay(); !ok || d != 0 {
		t.Fatalf("FirstDelay() = (%v, %v), want (0, true)", d, ok)
	}
	// And set-ness is explicit: a miss reports ok=false, not delay 0.
	miss := c.Run(&Query{ID: 2, Key: 99, Origin: 0, TTL: 2})
	if d, ok := miss.FirstDelay(); ok || d != 0 {
		t.Fatalf("miss FirstDelay() = (%v, %v), want (0, false)", d, ok)
	}
}
