package daemon

import (
	"bufio"
	"context"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/pkg/searchclient"
)

// dsearchdProc is one real dsearchd OS process under test.
type dsearchdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

// startDaemon launches the built binary and parses the bound HTTP
// address from its stable "dsearchd: listening http=..." line.
func startDaemon(t *testing.T, bin string, args ...string) *dsearchdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "http="); ok {
				addrCh <- strings.Fields(rest)[0]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()

	p := &dsearchdProc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	select {
	case p.addr = <-addrCh:
	case err := <-p.done:
		t.Fatalf("daemon exited before announcing its address: %v", err)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not announce its address in 10s")
	}
	return p
}

// terminate sends SIGTERM and waits for a clean (exit 0) drain.
func (p *dsearchdProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
}

// TestThreeProcessTCPDrain is the full-scale deployment check: three
// real dsearchd processes form a 12-node cluster over loopback TCP via
// one seed address, serve queries from every shard, and a SIGTERM'd
// member finishes its in-flight query before exiting 0.
func TestThreeProcessTCPDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process boot is not part of the -short smoke")
	}
	bin := filepath.Join(t.TempDir(), "dsearchd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dsearchd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dsearchd: %v\n%s", err, out)
	}

	shared := []string{
		"-transport", "tcp", "-total", "12", "-nodes", "4",
		"-seed", "7", "-degree", "2", "-ttl", "3",
		"-keys", "64", "-replicas", "3",
		"-gossip-interval", "50", "-query-window", "150",
	}
	p0 := startDaemon(t, bin, append(shared, "-base", "0")...)
	defer p0.cmd.Process.Kill()
	p1 := startDaemon(t, bin, append(shared, "-base", "4", "-join", p0.addr)...)
	defer p1.cmd.Process.Kill()
	p2 := startDaemon(t, bin, append(shared, "-base", "8", "-join", p0.addr)...)
	defer p2.cmd.Process.Kill()

	ctx := context.Background()
	procs := []*dsearchdProc{p0, p1, p2}
	clients := make([]*searchclient.Client, 3)
	for i, p := range procs {
		clients[i] = searchclient.New(p.addr)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		full := true
		for _, c := range clients {
			info, err := c.Cluster(ctx)
			if err != nil || len(info.Members) != 3 {
				full = false
				break
			}
		}
		if full {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("3-process membership did not converge in 15s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond) // let transport address books settle

	// Every shard must answer queries, and cross-shard floods must land
	// hits somewhere.
	w := BuildWorld(7, 12, 2, 64, 3)
	plan := w.QueryPlan(36)
	hits := 0
	// neighborHit is a query that answered from one hop out: its hit is
	// pure reachability (the origin always floods all neighbors), so it
	// must keep hitting later — we replay it mid-drain to prove the
	// coalescing writers flushed rather than stranded the final frames.
	var neighborHit *searchclient.QueryRequest
	for i, q := range plan {
		origin := int(q.Origin)
		req := searchclient.QueryRequest{
			Key: uint64(q.Key), Origin: &origin, MaxHits: 1,
		}
		resp, err := clients[origin/4].Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.Found() {
			hits++
			if neighborHit == nil && resp.Hits[0].Hops == 1 {
				neighborHit = &req
			}
		}
	}
	if hits == 0 {
		t.Fatal("no hits across 36 cross-shard queries")
	}
	t.Logf("3-process cluster: %d/%d hits", hits, len(plan))

	// The batch plane works across real processes too: one slab per
	// member, same fabric, hits landing from remote shards.
	for i, c := range clients {
		var breqs []searchclient.QueryRequest
		for _, q := range plan[:24] {
			origin := int(q.Origin)
			if origin/4 != i {
				continue
			}
			breqs = append(breqs, searchclient.QueryRequest{
				Key: uint64(q.Key), Origin: &origin, MaxHits: 1,
			})
		}
		if len(breqs) == 0 {
			continue
		}
		bresp, err := c.QueryBatch(ctx, breqs)
		if err != nil {
			t.Fatalf("batch via member %d: %v", i, err)
		}
		if serr := bresp.BatchStatusError(); serr != nil {
			t.Fatalf("batch via member %d: per-item failures: %v", i, serr)
		}
	}

	// SIGTERM p0 with a full-window query in flight: the drain must let
	// it finish (HTTP 200) before the process exits 0 — and if we have a
	// guaranteed one-hop hit, it must still HIT, which means the
	// coalescing TCP writers flushed the query and hit frames on the way
	// down instead of stranding them in their buffers.
	drainReq := searchclient.QueryRequest{Key: uint64(plan[0].Key), TimeoutMillis: 500}
	mustHit := false
	if neighborHit != nil && *neighborHit.Origin/4 == 0 {
		drainReq = *neighborHit
		drainReq.TimeoutMillis = 500
		drainReq.MaxHits = 0 // hold the window open so SIGTERM lands mid-flight
		mustHit = true
	}
	inflight := make(chan error, 1)
	var drainResp *searchclient.QueryResponse
	go func() {
		var err error
		drainResp, err = clients[0].Query(ctx, drainReq)
		inflight <- err
	}()
	time.Sleep(100 * time.Millisecond) // past admission, inside the window

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p0.terminate(t) }()
	if err := <-inflight; err != nil {
		t.Errorf("in-flight query failed during SIGTERM drain: %v", err)
	} else if mustHit && !drainResp.Found() {
		t.Errorf("one-hop query lost its hit during SIGTERM drain: frames stranded in a coalescing writer?")
	}
	wg.Wait()

	// The surviving members keep serving their shards.
	for i, c := range clients[1:] {
		origin := (i+1)*4 + 1
		if _, err := c.Query(ctx, searchclient.QueryRequest{
			Key: uint64(plan[1].Key), Origin: &origin, MaxHits: 1,
		}); err != nil {
			t.Fatalf("survivor shard %d refused a query after peer drain: %v", i+1, err)
		}
	}
	p1.terminate(t)
	p2.terminate(t)
}
