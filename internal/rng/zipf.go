package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with P(rank = i) ∝ 1/i^theta. The paper uses
// θ = 0.9 both for song popularity within a category and for the
// assignment of users to favorite categories.
//
// Sampling is by inverse transform over a precomputed cumulative table,
// which costs O(log N) per draw and is exact (unlike the rejection
// sampler in math/rand, whose support and parameterization differ).
type Zipf struct {
	n     int
	theta float64
	cdf   []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf builds a Zipf distribution over ranks [1, n] with exponent
// theta >= 0. theta = 0 degenerates to the uniform distribution.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("rng: NewZipf with n=%d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("rng: NewZipf with theta=%v", theta))
	}
	z := &Zipf{n: n, theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// pow avoids math.Pow for the trivial exponents that appear in tests
// and degenerate configurations; table construction dominates otherwise.
func pow(x, y float64) float64 {
	switch y {
	case 0:
		return 1
	case 1:
		return x
	}
	return math.Pow(x, y)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Rank draws a rank in [1, N], rank 1 being the most popular.
func (z *Zipf) Rank(s *Stream) int {
	u := s.Float64()
	// First index whose cdf >= u.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	// sort.SearchFloat64s finds the first cdf[i] >= u; if cdf[i] == u we
	// still want that bucket, which SearchFloat64s already guarantees.
	return i + 1
}

// Index draws a zero-based index in [0, N): Rank-1. Convenient for
// addressing slices ordered by popularity.
func (z *Zipf) Index(s *Stream) int { return z.Rank(s) - 1 }

// P returns the probability mass of the given rank (1-based).
func (z *Zipf) P(rank int) float64 {
	if rank < 1 || rank > z.n {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}

// CDF returns P(rank <= r) for a 1-based rank r.
func (z *Zipf) CDF(r int) float64 {
	if r < 1 {
		return 0
	}
	if r > z.n {
		return 1
	}
	return z.cdf[r-1]
}
