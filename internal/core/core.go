// Package core implements the paper's primary contribution: the
// general framework for searching in distributed data repositories,
// consisting of the three modules of Section 3 —
//
//   - search (Algo 1): propagate a request through the neighbor
//     network until it is satisfied or a terminating condition is met;
//   - exploration (Algo 2): metadata-only queries that discover
//     candidate neighbors and collect statistics;
//   - neighbor update (Algo 3 for asymmetric relations, Algo 4 for
//     symmetric relations): re-rank every encountered peer with an
//     application-defined benefit function and promote the best.
//
// The framework is engine-agnostic: all decision logic (forward
// policies, termination, benefit ranking, update planning, the
// invitation/eviction agreement) is expressed over small interfaces so
// the same code drives both the discrete-event simulator
// (internal/gnutella, internal/webcache, internal/peerolap) and the
// goroutine/TCP runtime (internal/live).
package core

import (
	"fmt"

	"repro/internal/digest"
	"repro/internal/topology"
)

// Key identifies one content item (song, page, OLAP chunk).
type Key = digest.Key

// QueryID identifies a query end-to-end; duplicate suppression ("each
// node keeps a list of recent messages", Algo 5 Process_Query) keys on
// it.
type QueryID uint64

// Query is a search request as it travels the network.
type Query struct {
	// ID is unique per issued query.
	ID QueryID
	// Key is the content item requested. The paper sets "the number of
	// songs that are requested by a query to one"; multi-item requests
	// are expressed as multiple queries.
	Key Key
	// Origin is the issuing repository.
	Origin topology.NodeID
	// TTL is the maximum number of hops ("all propagations terminate
	// after h hops"). TTL = 1 reaches direct neighbors only.
	TTL int
	// MaxResults terminates the search once this many results were
	// obtained; 0 means unlimited (extensive search).
	MaxResults int
	// ForwardWhenHit, when true, makes a node that satisfied the query
	// propagate it anyway ("in some systems (e.g., music sharing), a
	// node may still forward the request even if it can serve it, in
	// order to maximize the number of the results"). The paper's case
	// study sets this to false to limit messages.
	ForwardWhenHit bool
}

// Validate reports configuration errors in a query.
func (q *Query) Validate() error {
	if q.TTL < 0 {
		return fmt.Errorf("core: query %d has negative TTL %d", q.ID, q.TTL)
	}
	if q.MaxResults < 0 {
		return fmt.Errorf("core: query %d has negative MaxResults %d", q.ID, q.MaxResults)
	}
	if q.Origin < 0 {
		return fmt.Errorf("core: query %d has negative origin %d", q.ID, q.Origin)
	}
	return nil
}

// Result is one positive answer obtained by a search.
type Result struct {
	// Holder is the repository that served the request.
	Holder topology.NodeID
	// Hops is the forward-path length from the origin to the holder.
	Hops int
	// Delay is the simulated time (seconds) from query issue until this
	// result arrived back at the origin, accumulated over the forward
	// path and the reverse (reply) route.
	Delay float64
}

// Outcome aggregates everything a search produced; Send_Query in Algo 5
// consumes it to update statistics.
type Outcome struct {
	// Results lists every positive answer, in arrival order.
	Results []Result
	// Messages is the number of query propagations (one per edge
	// traversal, including duplicates that were discarded on arrival) —
	// the quantity plotted in Figures 1(b) and 2(b).
	Messages uint64
	// ReplyMessages counts result replies traveling the reverse route.
	ReplyMessages uint64
	// Visited is the number of distinct repositories that processed the
	// query (excluding the origin).
	Visited int
	// FirstResultDelay is the smallest Result.Delay. It is meaningful
	// iff Hit(): set-ness is len(Results) > 0, not a zero sentinel, so
	// a genuine zero-delay first result (ZeroDelay networks) is
	// distinguishable from "no result" — use FirstDelay for the
	// explicit pair. The field stays 0 when no results, keeping JSON
	// output identical for the non-zero cases.
	FirstResultDelay float64
}

// Hit reports whether at least one result was found.
func (o *Outcome) Hit() bool { return len(o.Results) > 0 }

// FirstDelay returns the delay of the earliest result and whether any
// result exists — the explicit form of the FirstResultDelay field,
// immune to the genuine-zero-delay ambiguity.
func (o *Outcome) FirstDelay() (float64, bool) {
	return o.FirstResultDelay, len(o.Results) > 0
}

// Graph is the topology view a search engine walks. The simulator
// passes the global topology.Network; the live runtime passes each
// node's local view.
type Graph interface {
	// Out returns the outgoing neighbors of id. The slice must not be
	// mutated by the caller and may be invalidated by topology changes.
	Out(id topology.NodeID) []topology.NodeID
	// Online reports whether a node currently participates; off-line
	// nodes neither receive nor forward messages.
	Online(id topology.NodeID) bool
}

// Content answers local-repository membership: does node id hold key?
type Content interface {
	HasContent(id topology.NodeID, key Key) bool
}

// ContentFunc adapts a function to the Content interface.
type ContentFunc func(id topology.NodeID, key Key) bool

// HasContent implements Content.
func (f ContentFunc) HasContent(id topology.NodeID, key Key) bool { return f(id, key) }

// DelayFunc samples the one-way message delay between two adjacent
// nodes, in seconds. Implementations are typically closures over
// netsim.OneWayDelay and the per-node bandwidth classes.
type DelayFunc func(from, to topology.NodeID) float64

// ZeroDelay is a DelayFunc for tests and hop-count-only experiments.
func ZeroDelay(_, _ topology.NodeID) float64 { return 0 }
