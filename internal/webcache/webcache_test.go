package webcache

import (
	"testing"

	"repro/internal/workload"
)

// tinyConfig runs in well under a second.
func tinyConfig(mode Mode) Config {
	c := DefaultConfig(mode)
	c.Web = workload.WebConfig{
		Pages:           5000,
		Interests:       10,
		PopularityTheta: 0.9,
		Proxies:         30,
		LocalFraction:   0.7,
		RequestsPerHour: 600,
	}
	c.CacheCapacity = 100
	c.DurationHours = 12
	return c
}

func TestModeString(t *testing.T) {
	if Static.String() == "" || Dynamic.String() == "" || Static.String() == Dynamic.String() {
		t.Fatal("mode names wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(Dynamic).Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"zero neighbors":    func(c *Config) { c.Neighbors = 0 },
		"zero cache":        func(c *Config) { c.CacheCapacity = 0 },
		"zero explore":      func(c *Config) { c.ExplorePeriodHours = 0 },
		"zero explore TTL":  func(c *Config) { c.ExploreTTL = 0 },
		"zero origin delay": func(c *Config) { c.OriginDelayMean = 0 },
		"zero duration":     func(c *Config) { c.DurationHours = 0 },
	} {
		c := DefaultConfig(Dynamic)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestStaticModeSkipsPeriodChecks(t *testing.T) {
	c := DefaultConfig(Static)
	c.ExplorePeriodHours = 0 // irrelevant in static mode
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestsPartitionIntoOutcomes(t *testing.T) {
	s := New(tinyConfig(Dynamic))
	m := s.Run()
	req := m.Requests.Total()
	if req == 0 {
		t.Fatal("no requests")
	}
	sum := m.LocalHits.Total() + m.NeighborHits.Total() + m.OriginFetches.Total()
	if sum != req {
		t.Fatalf("outcomes %v do not partition requests %v", sum, req)
	}
	if m.Latency.N() != uint64(req) {
		t.Fatalf("latency observations %d != requests %v", m.Latency.N(), req)
	}
}

func TestLocalHitsGrowWithWarmCache(t *testing.T) {
	s := New(tinyConfig(Static))
	m := s.Run()
	cold := m.LocalHits.Bucket(0)
	warm := m.LocalHits.Bucket(11)
	if warm <= cold {
		t.Fatalf("cache never warmed: hour0=%v hour11=%v", cold, warm)
	}
}

func TestDynamicReconfigures(t *testing.T) {
	s := New(tinyConfig(Dynamic))
	m := s.Run()
	if m.Reconfigurations == 0 {
		t.Fatal("dynamic webcache never reconfigured")
	}
	if m.Meter.Total(2) == 0 { // MsgExplore
		t.Fatal("no exploration traffic")
	}
}

func TestStaticDoesNotReconfigure(t *testing.T) {
	s := New(tinyConfig(Static))
	m := s.Run()
	if m.Reconfigurations != 0 {
		t.Fatal("static webcache reconfigured")
	}
	if m.Meter.Total(2) != 0 {
		t.Fatal("static webcache explored")
	}
}

func TestDynamicBeatsStaticOnNeighborHits(t *testing.T) {
	sm := New(tinyConfig(Static)).Run()
	dm := New(tinyConfig(Dynamic)).Run()
	// Compare the warmed-up second half.
	sRatio := sm.NeighborHitRatio(6, 12)
	dRatio := dm.NeighborHitRatio(6, 12)
	if dRatio <= sRatio {
		t.Fatalf("dynamic neighbor-hit ratio %v not above static %v", dRatio, sRatio)
	}
}

func TestDigestGuidanceReducesQueryTraffic(t *testing.T) {
	plain := tinyConfig(Dynamic)
	guided := tinyConfig(Dynamic)
	guided.UseDigests = true
	pm := New(plain).Run()
	gm := New(guided).Run()
	if gm.Meter.Total(0) >= pm.Meter.Total(0) { // MsgQuery
		t.Fatalf("digests did not reduce query traffic: %d vs %d",
			gm.Meter.Total(0), pm.Meter.Total(0))
	}
}

func TestNetworkRemainsConsistent(t *testing.T) {
	s := New(tinyConfig(Dynamic))
	s.Run()
	if !s.Network().Consistent() {
		t.Fatal("asymmetric network inconsistent after run")
	}
}

func TestDeterministic(t *testing.T) {
	a := New(tinyConfig(Dynamic)).Run()
	b := New(tinyConfig(Dynamic)).Run()
	if a.Requests.Total() != b.Requests.Total() ||
		a.NeighborHits.Total() != b.NeighborHits.Total() ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("identical seeds diverged")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Neighbor fetches must be cheaper than origin fetches on average;
	// verify via the aggregate: a run with cooperation must have lower
	// mean latency than one whose proxies have no neighbors.
	coop := tinyConfig(Static)
	loner := tinyConfig(Static)
	loner.Neighbors = 1 // minimal cooperation (0 is invalid)
	cm := New(coop).Run()
	lm := New(loner).Run()
	if cm.Latency.Mean() >= lm.Latency.Mean() {
		t.Fatalf("cooperation did not reduce latency: %v vs %v",
			cm.Latency.Mean(), lm.Latency.Mean())
	}
}
