package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// This file emits the JSON artifacts of one runner invocation:
//
//	<root>/<name>/cells.json    — []Result, deterministic: byte-identical
//	                              for identical cells at any worker count
//	<root>/<name>/summary.json  — RunInfo: run metadata plus per-experiment
//	                              aggregates (wall times, failures)
//
// cells.json is the comparable trajectory artifact (diff it across
// PRs); summary.json carries the measurement context.

// RunInfo is the metadata block of summary.json. Callers fill the
// identity fields; WriteArtifacts fills the aggregates.
type RunInfo struct {
	// Name is the run name (also the artifact directory name).
	Name string `json:"name"`
	// Labels carries free-form context (scale, command line, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// BaseSeed and Workers record how the run was invoked.
	BaseSeed uint64 `json:"base_seed"`
	Workers  int    `json:"workers"`
	// WallSeconds is the whole run's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// Cells and Failed count all cells and the failed subset.
	Cells  int `json:"cells"`
	Failed int `json:"failed"`
	// Experiments aggregates per experiment, in first-appearance order.
	Experiments []ExperimentSummary `json:"experiments"`
}

// ExperimentSummary aggregates the cells of one experiment.
type ExperimentSummary struct {
	Experiment string `json:"experiment"`
	Cells      int    `json:"cells"`
	Failed     int    `json:"failed"`
	// WallSeconds sums the cell execution times (CPU-side cost; the
	// run's elapsed time is in RunInfo.WallSeconds).
	WallSeconds float64 `json:"wall_seconds"`
}

// Summarize aggregates results per experiment in first-appearance
// order.
func Summarize(results []Result) []ExperimentSummary {
	index := map[string]int{}
	var out []ExperimentSummary
	for _, r := range results {
		i, ok := index[r.Experiment]
		if !ok {
			i = len(out)
			index[r.Experiment] = i
			out = append(out, ExperimentSummary{Experiment: r.Experiment})
		}
		out[i].Cells++
		if r.Err != "" {
			out[i].Failed++
		}
		out[i].WallSeconds += r.Wall.Seconds()
	}
	return out
}

// WriteArtifacts writes cells.json and summary.json under
// <root>/<info.Name>/ and returns the directory. The aggregate fields
// of info (Cells, Failed, Experiments) are computed here. Nested run
// names ("sweep/theta4") are allowed, but the directory must stay
// inside root.
func WriteArtifacts(root string, info RunInfo, results []Result) (string, error) {
	if info.Name == "" {
		return "", fmt.Errorf("runner: empty run name")
	}
	sep := string(filepath.Separator)
	if cleaned := filepath.Clean(info.Name); filepath.IsAbs(cleaned) ||
		cleaned == ".." || strings.HasPrefix(cleaned, ".."+sep) {
		return "", fmt.Errorf("runner: run name %q escapes the artifact root", info.Name)
	}
	dir := filepath.Join(root, info.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	info.Cells = len(results)
	info.Failed = Failed(results)
	info.Experiments = Summarize(results)

	if err := writeJSON(filepath.Join(dir, "cells.json"), results); err != nil {
		return "", err
	}
	if err := writeJSON(filepath.Join(dir, "summary.json"), info); err != nil {
		return "", err
	}
	return dir, nil
}

// writeJSON marshals v indented and writes it atomically enough for an
// artifact directory (temp file + rename).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: marshal %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
