// Command dsearch runs one live repository node over TCP, exposing the
// framework's search and reconfiguration on a real socket. Several
// dsearch processes on one machine (or LAN) form a searchable network.
//
// Usage:
//
//	dsearch -id 0 -listen 127.0.0.1:7000 \
//	        -peers "1=127.0.0.1:7001,2=127.0.0.1:7002" \
//	        -neighbors 1,2 -keys 10,11,12 [-policy flood]
//
// -policy accepts any pkg/search registry name ("flood", "random-2",
// "directed-bft-2", ...); run with -policy help to list them.
//
// Commands on stdin:
//
//	search <key>    flood a query and print the hits
//	neighbors       print the current neighbor set
//	reconfigure     run one Algo 5 reconfiguration
//	quit            exit
//
// With -addr, dsearch is instead a client of a running dsearchd
// daemon: no local node is started, and the same stdin commands (plus
// "cluster" and "stats") go over the daemon's HTTP/JSON plane via
// pkg/searchclient.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/pkg/search"
	"repro/pkg/searchclient"
)

func main() {
	var (
		addr      = flag.String("addr", "", "dsearchd HTTP address; client mode, no local node")
		id        = flag.Int("id", 0, "this node's ID (unique in the network)")
		listen    = flag.String("listen", "127.0.0.1:7000", "listen address")
		peers     = flag.String("peers", "", "peer address book: id=host:port,...")
		neighbors = flag.String("neighbors", "", "initial neighbor IDs: 1,2,...")
		keys      = flag.String("keys", "", "content keys this node serves: 10,11,...")
		ttl       = flag.Int("ttl", 4, "search hop limit")
		capacity  = flag.Int("cap", 4, "neighbor capacity")
		timeout   = flag.Duration("timeout", 2*time.Second, "search collection window")
		class     = flag.String("class", "cable", "bandwidth class: 56k, cable or lan")
		policy    = flag.String("policy", "flood", "forward policy by registry name (or 'help' to list)")
		seed      = flag.Uint64("seed", 1, "seed for stochastic forward policies")
	)
	flag.Parse()

	if *policy == "help" {
		fmt.Println("policies:", strings.Join(search.PolicyNames(), " "))
		return
	}
	if *addr != "" {
		clientREPL(*addr, *timeout)
		return
	}
	forward, err := search.PolicyByName(*policy, search.PolicyEnv{Intn: rng.New(*seed).Intn})
	if err != nil {
		fatalf("%v", err)
	}

	store := live.MapStore{}
	for _, k := range splitInts(*keys) {
		store.Add(core.Key(k))
	}

	transport := live.NewTCPTransport()
	defer transport.Close()
	for _, kv := range strings.Split(*peers, ",") {
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			fatalf("bad -peers entry %q (want id=addr)", kv)
		}
		pid, err := strconv.Atoi(parts[0])
		if err != nil {
			fatalf("bad peer id %q: %v", parts[0], err)
		}
		transport.SetAddr(topology.NodeID(pid), parts[1])
	}

	node := live.NewNode(live.Config{
		ID:        topology.NodeID(*id),
		Neighbors: *capacity,
		TTL:       *ttl,
		Transport: transport,
		Store:     store,
		Class:     parseClass(*class),
		Forward:   forward,
	})

	bound, stopListen, err := live.Listen(*listen, node.Deliver)
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer stopListen()
	node.Start()
	defer node.Stop()

	for _, nb := range splitInts(*neighbors) {
		node.AddNeighbor(topology.NodeID(nb))
	}
	fmt.Printf("node %d listening on %s, serving %d keys, neighbors %v\n",
		*id, bound, len(store), node.Neighbors())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "search":
			if len(fields) != 2 {
				fmt.Println("usage: search <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Printf("bad key: %v\n", err)
				break
			}
			hits := node.Search(core.Key(k), *timeout)
			if len(hits) == 0 {
				fmt.Println("NOT FOUND")
			}
			for _, h := range hits {
				fmt.Printf("hit: node %d, %d hop(s), link %v\n", h.Holder, h.Hops, h.Class)
			}
		case "neighbors":
			fmt.Println(node.Neighbors())
		case "reconfigure":
			node.Reconfigure()
			time.Sleep(100 * time.Millisecond)
			fmt.Println(node.Neighbors())
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: search <key> | neighbors | reconfigure | quit")
		}
		fmt.Print("> ")
	}
	// Stdin closed without "quit": keep serving (daemon mode — the node
	// still answers peers' queries). Interrupt to stop.
	fmt.Println("stdin closed; serving until interrupted")
	select {}
}

// clientREPL drives a running dsearchd over pkg/searchclient with the
// same stdin command language as the local-node mode.
func clientREPL(addr string, timeout time.Duration) {
	c := searchclient.New(addr)
	ctx := context.Background()
	if err := c.Ready(ctx); err != nil {
		fatalf("daemon at %s not ready: %v", addr, err)
	}
	fmt.Printf("connected to dsearchd at %s\n", addr)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "search":
			if len(fields) != 2 {
				fmt.Println("usage: search <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Printf("bad key: %v\n", err)
				break
			}
			resp, err := c.Query(ctx, searchclient.QueryRequest{
				Key:           k,
				TimeoutMillis: int(timeout / time.Millisecond),
			})
			if err != nil {
				fmt.Printf("query: %v\n", err)
				break
			}
			if !resp.Found() {
				fmt.Printf("NOT FOUND (origin %d)\n", resp.Origin)
			}
			for _, h := range resp.Hits {
				fmt.Printf("hit: node %d, %d hop(s), link %s\n", h.Holder, h.Hops, h.Class)
			}
		case "cluster":
			info, err := c.Cluster(ctx)
			if err != nil {
				fmt.Printf("cluster: %v\n", err)
				break
			}
			fmt.Printf("self %s, state %s, epoch %d, %d member(s)\n",
				info.Self, info.State, info.Epoch, len(info.Members))
			for _, m := range info.Members {
				fmt.Printf("  %s http=%s nodes [%d,%d)\n",
					m.Name, m.HTTP, m.BaseID, m.BaseID+m.Nodes)
			}
		case "stats":
			stats, err := c.Stats(ctx)
			if err != nil {
				fmt.Printf("stats: %v\n", err)
				break
			}
			for _, k := range sortedKeys(stats) {
				fmt.Printf("  %s %d\n", k, stats[k])
			}
		case "reconfigure":
			if err := c.Reconfig(ctx); err != nil {
				fmt.Printf("reconfigure: %v\n", err)
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: search <key> | cluster | stats | reconfigure | quit")
		}
		fmt.Print("> ")
	}
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// splitInts parses "1,2,3" (empty string allowed).
func splitInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatalf("bad integer list entry %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out
}

// parseClass maps a flag value to a bandwidth class.
func parseClass(s string) netsim.BandwidthClass {
	switch strings.ToLower(s) {
	case "56k", "modem":
		return netsim.Modem56K
	case "cable":
		return netsim.Cable
	case "lan":
		return netsim.LAN
	default:
		fatalf("unknown bandwidth class %q", s)
		panic("unreachable")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsearch: "+format+"\n", args...)
	os.Exit(2)
}
