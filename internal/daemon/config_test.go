package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := Config{Nodes: 8}
	c.ApplyDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	if c.Total != 8 || c.Transport != TransportChan || c.Name != "d0" {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.GossipInterval() <= 0 || c.QueryWindow() <= 0 || c.DrainTimeout() <= 0 {
		t.Fatal("duration accessors returned non-positive values")
	}
}

func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }, "node count"},
		{"negative base", func(c *Config) { c.BaseID = -1 }, "base"},
		{"short total", func(c *Config) { c.Total = 4; c.BaseID = 2 }, "total"},
		{"bad transport", func(c *Config) { c.Transport = "udp" }, "transport"},
		{"chan shard", func(c *Config) { c.Total = 16 }, "whole cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Config{Nodes: 8}
			c.ApplyDefaults()
			tc.mut(&c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "daemon.json")
	if err := os.WriteFile(path, []byte(`{
		"nodes": 12, "seed": 9, "policy": "random-2", "transport": "chan"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 12 || c.Seed != 9 || c.Policy != "random-2" {
		t.Fatalf("unexpected config: %+v", c)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nodez": 12}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("unknown config field accepted")
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	a := BuildWorld(42, 50, 3, 200, 3)
	b := BuildWorld(42, 50, 3, 200, 3)
	for i := 0; i < 50; i++ {
		oa, ob := a.Net.Out(topology.NodeID(i)), b.Net.Out(topology.NodeID(i))
		if len(oa) != len(ob) {
			t.Fatalf("node %d degree differs: %d vs %d", i, len(oa), len(ob))
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("node %d edge %d differs", i, j)
			}
		}
	}
	for k := 0; k < 200; k++ {
		for i := 0; i < 50; i++ {
			if a.HasContent(topology.NodeID(i), core.Key(k)) != b.HasContent(topology.NodeID(i), core.Key(k)) {
				t.Fatalf("placement differs at node %d key %d", i, k)
			}
		}
	}
	pa, pb := a.QueryPlan(100), b.QueryPlan(100)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("query plan differs at %d: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}
