// Package driver implements the session layer shared by every
// simulated application of the paper's framework.
//
// The paper's central claim is that one search framework instantiates
// three distributed-repository applications — Gnutella-style file
// sharing, cooperative web-cache meshes, and PeerOLAP. What those
// applications share is not the search (internal/core owns that) but
// the *session machinery around it*: a discrete-event timeline with a
// neighbor graph, per-node RNG streams, an initial placement, per-node
// query arrival processes, optional on/off churn with resume-on-login
// bookkeeping, per-query dispatch through a pooled search.Engine, and
// trace emission. Before this package each application re-implemented
// that machinery by hand; now each supplies a Spec (topology shape,
// workload processes, policy, delay model) plus domain hooks (content
// model, what happens on a query, how the neighborhood reacts to
// churn) and the Session owns the timeline.
//
// # Determinism
//
// A Session is a pure function of its Spec and the root rng.Stream
// handed to New. The stream-split layout is fixed — application
// world-generation splits first (taken by the caller before New), then
// churn streams (only when churn is configured), query streams, the
// topology stream, the delay stream — and every timeline process draws
// only from its own per-node stream, so runs are bit-for-bit
// reproducible across machines and unchanged by refactors that do not
// move draws. The sim engine is single-threaded with FIFO tie-breaks;
// Start schedules processes in a documented order (placement, Before,
// per-node arrivals+churn in ID order, After) so equal-time events
// fire identically on every run.
package driver

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/search"
)

// Placement wires the initial topology before any timeline process
// runs. The Session is fully constructed (network, streams) when a
// Placement is invoked; draw randomness from s.TopoStream only.
type Placement func(s *Session)

// RandomWire returns the Placement used by the static-membership
// applications (web proxies, OLAP workstations): every node attaches
// to up to degree random peers, in ID order, drawing from the
// session's topology stream.
func RandomWire(degree int) Placement {
	return func(s *Session) {
		topology.RandomWire(s.net, degree, s.topoStream.Intn)
	}
}

// Spec parameterizes one session. Required fields: Nodes, Duration,
// and Content; everything else defaults to "absent" (no placement, no
// arrivals, no churn, no delays, no tracing).
type Spec struct {
	// Nodes is the population size.
	Nodes int
	// Relation, OutCap and InCap shape the neighbor graph (see
	// topology.NewNetwork for how the regime constrains the caps).
	Relation      topology.Relation
	OutCap, InCap int
	// Duration is the simulated horizon in seconds.
	Duration float64

	// Place wires the initial topology; nil leaves nodes isolated
	// (Gnutella-style: nodes attach on login via OnLogin).
	Place Placement
	// Arrivals drives each node's query process; nil schedules none.
	Arrivals Arrivals
	// Churn, when non-nil, drives per-node on/off sessions from
	// dedicated churn streams; nil means every node is permanently
	// online (and no churn streams are split from the root).
	Churn *workload.ChurnConfig

	// Content is the local-content oracle behind the search engine.
	Content core.Content
	// Classes maps nodes to bandwidth classes for the netsim delay
	// model; nil disables per-hop delays.
	Classes func(id topology.NodeID) netsim.BandwidthClass
	// Policy selects the forward policy by pkg/search registry name;
	// empty leaves the engine default (flood) or whatever the Search
	// hook installs.
	Policy string
	// TTL, when positive, sets the engine's default hop bound.
	TTL int
	// Seed is the base seed for the engine's stochastic policy streams
	// (search.WithSeed); 0 leaves the engine default.
	Seed uint64
	// Search, when non-nil, contributes application engine options
	// (observers, digests, deepening, a TTL the app computed itself).
	// It runs during New, after streams and network exist but before
	// the engine does; the passed Session supports the stream and
	// topology accessors but must not be asked to search yet.
	Search func(s *Session) []search.Option

	// OnQuery handles one arrival at node id: sample a key, dispatch
	// through Session.Do, update domain state. Required when Arrivals
	// is set.
	OnQuery func(id topology.NodeID, now float64)
	// OnLogin reacts to a node coming online (wire it into the
	// network, ...). It runs after the online mask flips and before
	// the node's arrival process resumes.
	OnLogin func(id topology.NodeID)
	// OnLogoff reacts to a node going offline (isolate it, trigger
	// neighbor updates, ...). It runs after the online mask flips.
	OnLogoff func(id topology.NodeID, now float64)
	// Before and After schedule domain processes around the per-node
	// loop of Start: Before runs after placement and before any
	// arrival or churn process is armed (periodic tickers, one-shot
	// events like preference drift); After runs once every per-node
	// process exists (reconfiguration tickers of static-membership
	// apps).
	Before, After func()

	// Trace, when non-nil, receives login/logoff events from the
	// session and is available to the application via Emit.
	Trace trace.Sink

	// SnapshotServe dispatches every query from a
	// topology.SnapshotStore epoch instead of the live OnlineView:
	// churn and reconfiguration mutate the build-side network as usual,
	// the session marks the topology dirty, and the next dispatch
	// publishes one fresh epoch — so any number of topology events
	// between two queries coalesce into a single O(nodes+edges)
	// re-freeze instead of pausing dispatch per event, and concurrent
	// consumers of Searcher() (a Saturator feeding on the same engine)
	// keep serving the previous epoch throughout.
	//
	// Snapshots treat every node as online, so under churn the
	// application's OnLogoff hook must fully isolate departing nodes
	// (the Gnutella-style sessions do); otherwise offline nodes keep
	// answering. Applications that mutate topology outside the login/
	// logoff hooks (reconfiguration tickers) must call
	// Session.TopologyChanged after doing so.
	SnapshotServe bool
}

// Validate reports Spec errors. New calls it; exported so experiment
// constructors can fail fast.
func (sp *Spec) Validate() error {
	switch {
	case sp.Nodes <= 0:
		return fmt.Errorf("driver: non-positive node count %d", sp.Nodes)
	case sp.Duration <= 0:
		return fmt.Errorf("driver: non-positive duration %v", sp.Duration)
	case sp.Content == nil:
		return fmt.Errorf("driver: Spec without a Content oracle")
	case sp.Arrivals != nil && sp.OnQuery == nil:
		return fmt.Errorf("driver: Arrivals configured without an OnQuery hook")
	}
	if sp.Arrivals != nil {
		if err := sp.Arrivals.Validate(); err != nil {
			return err
		}
	}
	if sp.Churn != nil {
		if err := sp.Churn.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Session owns one simulation timeline: the engine, the neighbor
// graph with its online overlay, the per-node streams, the pooled
// search engine, and the churn bookkeeping. Applications hold one
// Session and keep only domain state of their own.
type Session struct {
	spec   Spec
	engine *sim.Engine
	net    *topology.Network
	view   *topology.OnlineView

	churnStreams []*rng.Stream
	queryStreams []*rng.Stream
	topoStream   *rng.Stream
	delayStream  *rng.Stream

	searcher *search.Engine
	store    *topology.SnapshotStore
	dirty    bool // topology mutated since the last published epoch
	resume   []func()
	queryID  uint64

	logins, logoffs uint64
}

// New builds a Session from the spec, splitting the session streams
// off root in the fixed layout documented on the package. The caller
// performs its world-generation splits (catalogs, user libraries,
// bandwidth classes) before calling New and may keep splitting root
// afterwards for domain streams of its own.
func New(spec Spec, root *rng.Stream) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		spec:   spec,
		engine: sim.New(),
		net:    topology.NewNetwork(spec.Relation, spec.Nodes, spec.OutCap, spec.InCap),
		resume: make([]func(), spec.Nodes),
	}
	if spec.Churn != nil {
		s.churnStreams = root.SplitN(spec.Nodes)
	}
	s.queryStreams = root.SplitN(spec.Nodes)
	s.topoStream = root.Split()
	s.delayStream = root.Split()

	s.view = &topology.OnlineView{Net: s.net}
	if spec.Churn != nil {
		s.view.Mask = make([]bool, spec.Nodes)
	}

	opts := []search.Option{search.WithScratchHint(spec.Nodes)}
	if spec.Classes != nil {
		opts = append(opts, search.WithDelay(s.SampleDelay))
	}
	if spec.Policy != "" {
		opts = append(opts, search.WithPolicy(spec.Policy))
	}
	if spec.TTL > 0 {
		opts = append(opts, search.WithTTL(spec.TTL))
	}
	if spec.Seed != 0 {
		opts = append(opts, search.WithSeed(spec.Seed))
	}
	if spec.Search != nil {
		opts = append(opts, spec.Search(s)...)
	}
	if spec.SnapshotServe {
		s.store = topology.NewSnapshotStore(s.net)
		opts = append(opts, search.WithSnapshotStore(s.store))
	}
	eng, err := search.New(search.Over(s.view, spec.Content), opts...)
	if err != nil {
		return nil, err
	}
	s.searcher = eng
	return s, nil
}

// Engine exposes the underlying simulator (tests drive partial runs).
func (s *Session) Engine() *sim.Engine { return s.engine }

// Network exposes the neighbor graph.
func (s *Session) Network() *topology.Network { return s.net }

// Searcher exposes the pooled search engine for call shapes Do and
// Explore do not cover. Under SnapshotServe, callers going through it
// directly should call TopologyChanged-aware dispatch via Do/Explore,
// or accept serving the last published epoch.
func (s *Session) Searcher() *search.Engine { return s.searcher }

// Store exposes the snapshot store under SnapshotServe, nil otherwise.
func (s *Session) Store() *topology.SnapshotStore { return s.store }

// TopologyChanged records that the network was mutated outside the
// session's own hooks (application reconfiguration tickers). The next
// dispatch publishes a fresh epoch; without SnapshotServe it is a
// no-op, so applications may call it unconditionally.
func (s *Session) TopologyChanged() { s.dirty = true }

// publishIfDirty coalesces every topology mutation since the last
// dispatch into one published epoch. Called on the dispatch paths, so
// a burst of churn events between two queries costs one re-freeze.
func (s *Session) publishIfDirty() {
	if s.store != nil && s.dirty {
		s.dirty = false
		s.store.Publish()
	}
}

// Now returns the current simulated time in seconds.
func (s *Session) Now() float64 { return s.engine.Now() }

// TopoStream returns the stream feeding every topology decision
// (placement, login attachment, random forward policies).
func (s *Session) TopoStream() *rng.Stream { return s.topoStream }

// QueryStream returns node id's workload stream. The arrival process
// draws inter-arrival times from it; the application samples query
// content from the same stream, which keeps each node's workload one
// self-contained deterministic sequence.
func (s *Session) QueryStream(id topology.NodeID) *rng.Stream {
	return s.queryStreams[id]
}

// DelayStream returns the stream behind SampleDelay, for applications
// that model extra latencies (origin fetches) on the same source.
func (s *Session) DelayStream() *rng.Stream { return s.delayStream }

// SampleDelay draws a one-way hop delay between two nodes from the
// session delay stream using the spec's bandwidth classes. It is the
// engine's DelayFunc and is also called directly by applications that
// charge extra round trips (probe replies, fetches).
func (s *Session) SampleDelay(from, to topology.NodeID) float64 {
	return netsim.OneWayDelay(s.delayStream, s.spec.Classes(from), s.spec.Classes(to))
}

// IsOnline reports whether a node currently participates; without
// churn every node always does.
func (s *Session) IsOnline(id topology.NodeID) bool { return s.view.Online(id) }

// OnlineCount returns the number of currently online nodes.
func (s *Session) OnlineCount() int {
	if s.view.Mask == nil {
		return s.spec.Nodes
	}
	n := 0
	for _, on := range s.view.Mask {
		if on {
			n++
		}
	}
	return n
}

// Logins and Logoffs count churn transitions so far.
func (s *Session) Logins() uint64  { return s.logins }
func (s *Session) Logoffs() uint64 { return s.logoffs }

// NextQueryID returns the next session-unique query ID (1, 2, ...).
func (s *Session) NextQueryID() uint64 {
	s.queryID++
	return s.queryID
}

// Do dispatches one search through the pooled engine. Queries built by
// the session's own applications are well-formed by construction, so
// any error is a programming bug and panics rather than silently
// skewing metrics.
func (s *Session) Do(q search.Query) search.Result {
	s.publishIfDirty()
	out, err := s.searcher.Do(context.Background(), q)
	if err != nil {
		panic(err)
	}
	return out
}

// Explore dispatches one metadata-only census round (Algo 2); errors
// panic for the same reason as in Do.
func (s *Session) Explore(x search.Exploration) *core.ExploreOutcome {
	s.publishIfDirty()
	out, err := s.searcher.Explore(context.Background(), x)
	if err != nil {
		panic(err)
	}
	return out
}

// Emit records a trace event at the current simulated time when the
// session has a sink; without one it costs a nil check.
func (s *Session) Emit(e trace.Event) {
	if s.spec.Trace != nil {
		e.T = s.engine.Now()
		s.spec.Trace.Record(e)
	}
}

// Start schedules every timeline process: placement, the Before hook,
// per-node arrival and churn processes in node-ID order, then the
// After hook. Nodes without churn start with their arrival processes
// armed; with churn, arrival processes arm on (stationary-initialized)
// login. Run calls Start; it is exported for tests that drive the
// engine manually.
func (s *Session) Start() {
	if s.spec.Place != nil {
		s.spec.Place(s)
		s.dirty = true
	}
	if s.spec.Before != nil {
		s.spec.Before()
		s.dirty = true
	}
	for i := 0; i < s.spec.Nodes; i++ {
		id := topology.NodeID(i)
		if s.spec.Arrivals != nil {
			s.resume[i] = s.spec.Arrivals.Schedule(s.engine, s.queryStreams[i],
				func() bool { return s.IsOnline(id) },
				func(now float64) { s.spec.OnQuery(id, now) },
			)
		} else {
			s.resume[i] = func() {}
		}
		if s.spec.Churn != nil {
			if err := workload.ScheduleChurn(s.engine, s.churnStreams[i], *s.spec.Churn,
				func(on bool, now float64) { s.setOnline(id, on, now) }); err != nil {
				// Validate ran in New; reaching this means the spec was
				// mutated after construction.
				panic(err)
			}
		} else {
			s.resume[i]()
		}
	}
	if s.spec.After != nil {
		s.spec.After()
	}
}

// setOnline is the single churn transition path: flip the mask, count,
// run the domain hook, re-arm arrivals on login, trace.
func (s *Session) setOnline(id topology.NodeID, on bool, now float64) {
	if s.view.Mask[id] == on {
		return
	}
	s.view.Mask[id] = on
	if on {
		s.logins++
		if s.spec.OnLogin != nil {
			s.spec.OnLogin(id)
			s.dirty = true
		}
		s.resume[id]()
		s.Emit(trace.Event{Kind: trace.KindLogin, Node: id})
		return
	}
	s.logoffs++
	if s.spec.OnLogoff != nil {
		s.spec.OnLogoff(id, now)
		s.dirty = true
	}
	s.Emit(trace.Event{Kind: trace.KindLogoff, Node: id})
}

// Run executes the full configured duration: set the horizon, start
// every process, drain the timeline.
func (s *Session) Run() {
	s.engine.SetHorizon(s.spec.Duration)
	s.Start()
	s.engine.RunUntil(s.spec.Duration)
}
