package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/runner"
)

// ciSkewConfig returns a small, fast cell for unit tests.
func ciSkewConfig(seed uint64) SkewConfig {
	c := DefaultSkewConfig(400, seed)
	c.DurationHours = 1
	c.RatePerHour = 2
	return c
}

func TestSkewConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*SkewConfig){
		"one node":       func(c *SkewConfig) { c.Nodes = 1 },
		"zero degree":    func(c *SkewConfig) { c.Degree = 0 },
		"no providers":   func(c *SkewConfig) { c.ProviderFraction = 0 },
		"no keys":        func(c *SkewConfig) { c.Keys = 0 },
		"neg theta":      func(c *SkewConfig) { c.Theta = -0.1 },
		"no policy":      func(c *SkewConfig) { c.Policy = "" },
		"zero ttl":       func(c *SkewConfig) { c.TTL = 0 },
		"zero rate":      func(c *SkewConfig) { c.RatePerHour = 0 },
		"zero duration":  func(c *SkewConfig) { c.DurationHours = 0 },
		"neg churn":      func(c *SkewConfig) { c.ChurnMean = -1 },
		"hotless flash":  func(c *SkewConfig) { c.Flash = &FlashSpec{Peak: 2, DurationHours: 1} },
		"too many holds": func(c *SkewConfig) { c.KeysPerProvider = c.Keys + 1 },
		"too-wide flash": func(c *SkewConfig) {
			c.Flash = &FlashSpec{Peak: 2, DurationHours: 1, HotKeys: c.Keys + 1}
		},
	} {
		c := ciSkewConfig(1)
		mutate(&c)
		if _, _, err := RunSkew(c); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestSkewCellIsPureFunctionOfConfig(t *testing.T) {
	cfg := ciSkewConfig(7)
	cfg.ChurnMean = 1800
	a, _, err := RunSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same config diverged:\n%s\n%s", aj, bj)
	}
	cfg.Seed = 8
	c, _, err := RunSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(cj) == string(aj) {
		t.Fatal("different seeds produced identical cells (suspicious)")
	}
}

func TestSkewChurnDegradesCoverage(t *testing.T) {
	stable := ciSkewConfig(3)
	a, _, err := RunSkew(stable)
	if err != nil {
		t.Fatal(err)
	}
	churned := stable
	churned.ChurnMean = 1800
	b, _, err := RunSkew(churned)
	if err != nil {
		t.Fatal(err)
	}
	if a.Logins != 0 || a.Logoffs != 0 {
		t.Fatalf("stable cell churned: %d/%d", a.Logins, a.Logoffs)
	}
	if b.Logins == 0 {
		t.Fatal("churned cell recorded no logins")
	}
	// Half the population (and so half the providers and relays) is
	// offline on average: coverage must drop.
	if b.HitRate >= a.HitRate {
		t.Fatalf("churn did not degrade hit rate: stable %v, churned %v", a.HitRate, b.HitRate)
	}
	// Offline nodes issue nothing: query volume drops toward half.
	if b.Queries >= a.Queries {
		t.Fatalf("churn did not reduce query volume: %d vs %d", b.Queries, a.Queries)
	}
}

func TestSkewSkewRaisesHitRate(t *testing.T) {
	lo := ciSkewConfig(5)
	lo.Theta = 0.3
	hi := ciSkewConfig(5)
	hi.Theta = 1.2
	a, _, err := RunSkew(lo)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunSkew(hi)
	if err != nil {
		t.Fatal(err)
	}
	// Supply and demand concentrate on the same popular keys.
	if b.HitRate <= a.HitRate {
		t.Fatalf("skew did not raise hit rate: theta %v -> %v, theta %v -> %v",
			lo.Theta, a.HitRate, hi.Theta, b.HitRate)
	}
}

func TestSkewFlashCrowdRampsVolume(t *testing.T) {
	cfg := ciSkewConfig(9)
	cfg.DurationHours = 2
	cfg.Flash = &FlashSpec{Peak: 6, StartHour: 1, DurationHours: 0.5, HotKeys: 8}
	sum, _, err := RunSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FlashQueries == 0 {
		t.Fatal("flash window saw no queries")
	}
	// The window is a quarter of the run but carries Peak times the
	// rate: its share of queries must be well above a quarter.
	share := float64(sum.FlashQueries) / float64(sum.Queries)
	if share < 0.4 {
		t.Fatalf("flash window carried only %.0f%% of queries", share*100)
	}
	// Hot-key concentration: in-window queries target the head of the
	// popularity distribution, where provider holdings concentrate.
	if sum.FlashHitRate <= sum.HitRate {
		t.Fatalf("hot-key flash hit rate %v not above overall %v", sum.FlashHitRate, sum.HitRate)
	}
}

// TestSkewWorkerCountInvariance is the family-level determinism check:
// the exact JSON the artifact writer would emit must not depend on the
// worker count.
func TestSkewWorkerCountInvariance(t *testing.T) {
	run := func(workers int) string {
		cells, _ := SkewCells("skew", CI, 1)
		rs, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.FirstError(rs); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if run(1) != run(8) {
		t.Fatal("skew cells.json depends on the worker count")
	}
}

func TestSkewCellsWellFormed(t *testing.T) {
	cells, _ := SkewCells("skew", CI, 1)
	if len(cells) != len(skewThetas)*len(skewChurns)*len(skewPolicies)+1 {
		t.Fatalf("grid has %d cells", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Name] {
			t.Fatalf("duplicate cell %q", c.Name)
		}
		seen[c.Name] = true
		if c.Seed != runner.DeriveSeed(1, "skew", c.Name) {
			t.Fatalf("cell %q seed not derived from its labels", c.Name)
		}
	}
	if !seen["flash"] {
		t.Fatal("flash cell missing")
	}
}
