// Package peerolap implements the PeerOlap-like case study of Section
// 2: workstations cache OLAP result chunks and answer each other's
// queries, falling back to the data warehouse for missing chunks. The
// dominating cost is query processing time at the warehouse, so the
// benefit function accumulates *saved processing cost* per peer
// (stats.CostSaved) and the neighbor update is the asymmetric Algo 3 —
// every peer re-targets its outgoing list unilaterally.
//
// Searches are two-hop, first-result-terminated, chunk by chunk (the
// initiating peer "decomposes [the query] into chunks, and broadcasts
// the request for the chunks").
//
// The timeline (placement, Poisson query arrivals, search dispatch)
// lives in internal/driver; this package keeps only the domain: the
// cube workload, chunk caches, and the cost-saved reconfiguration.
package peerolap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lru"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/pkg/search"
)

// Mode selects fixed random neighbors or adaptive reconfiguration.
type Mode uint8

const (
	// Static keeps the initial random wiring.
	Static Mode = iota
	// Dynamic reconfigures per Algo 3 with the cost-saved benefit.
	Dynamic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Static:
		return "Static_PeerOlap"
	case Dynamic:
		return "Dynamic_PeerOlap"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes one PeerOlap run.
type Config struct {
	// Mode selects the baseline or adaptive variant.
	Mode Mode
	// Olap is the query workload.
	Olap workload.OlapConfig
	// Neighbors is the outgoing-list capacity.
	Neighbors int
	// CacheChunks is each peer's chunk-cache capacity.
	CacheChunks int
	// SearchTTL bounds the per-chunk search depth.
	SearchTTL int
	// ReconfigThreshold is the Algo 3 trigger: reconfigure after this
	// many issued queries.
	ReconfigThreshold int
	// WarehouseCostMean is the mean warehouse processing cost per chunk
	// in seconds (the dominating cost PeerOlap avoids).
	WarehouseCostMean float64
	// PeerCostMean is the mean cost of obtaining a cached chunk from a
	// peer, in seconds (transfer + marshalling; far below warehouse).
	PeerCostMean float64
	// DurationHours is the simulated period.
	DurationHours int
	// Seed determines the run.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:              mode,
		Olap:              workload.DefaultOlapConfig(),
		Neighbors:         4,
		CacheChunks:       400,
		SearchTTL:         2,
		ReconfigThreshold: 10,
		WarehouseCostMean: 4.0,
		PeerCostMean:      0.4,
		DurationHours:     48,
		Seed:              1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Olap.Validate(); err != nil {
		return err
	}
	switch {
	case c.Neighbors <= 0:
		return fmt.Errorf("peerolap: non-positive neighbor capacity %d", c.Neighbors)
	case c.CacheChunks <= 0:
		return fmt.Errorf("peerolap: non-positive cache capacity %d", c.CacheChunks)
	case c.SearchTTL < 1:
		return fmt.Errorf("peerolap: search TTL %d < 1", c.SearchTTL)
	case c.Mode == Dynamic && c.ReconfigThreshold < 1:
		return fmt.Errorf("peerolap: reconfiguration threshold %d < 1", c.ReconfigThreshold)
	case c.WarehouseCostMean <= 0 || c.PeerCostMean <= 0:
		return fmt.Errorf("peerolap: non-positive costs in %+v", c)
	case c.PeerCostMean >= c.WarehouseCostMean:
		return fmt.Errorf("peerolap: peer cost %v must be below warehouse cost %v",
			c.PeerCostMean, c.WarehouseCostMean)
	case c.DurationHours < 1:
		return fmt.Errorf("peerolap: duration %d hours", c.DurationHours)
	}
	return nil
}

// Metrics aggregates one run.
type Metrics struct {
	// Queries counts OLAP queries per hour.
	Queries *metrics.Series
	// ChunkRequests, LocalChunks, PeerChunks, WarehouseChunks are
	// per-hour series; every requested chunk lands in exactly one.
	ChunkRequests, LocalChunks, PeerChunks, WarehouseChunks *metrics.Series
	// QueryCost aggregates total processing cost per query (seconds).
	QueryCost metrics.Welford
	// Meter counts cooperation traffic.
	Meter *netsim.Meter
	// Reconfigurations counts neighbor-list changes.
	Reconfigurations uint64
}

// PeerHitRatio returns peer-served chunks / chunk requests over buckets
// [from, to).
func (m *Metrics) PeerHitRatio(from, to int) float64 {
	req := m.ChunkRequests.Window(from, to)
	if req == 0 {
		return 0
	}
	return m.PeerChunks.Window(from, to) / req
}

// Sim is one bound PeerOlap run: the shared session driver plus the
// OLAP domain state.
type Sim struct {
	cfg     Config
	sess    *driver.Session
	cube    *workload.Cube
	regions []int
	classes []netsim.BandwidthClass
	caches  []*lru.LRU
	ledgers []*stats.Ledger
	queries []int // issued queries since last reconfiguration
	met     *Metrics
	benefit stats.Benefit

	costStream *rng.Stream
}

// New builds a run without starting it.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(cfg.Seed)
	cube := workload.NewCube(cfg.Olap)
	n := cfg.Olap.Peers
	s := &Sim{
		cfg:     cfg,
		cube:    cube,
		regions: cube.AssignRegions(root.Split()),
		classes: netsim.AssignClasses(root.Split().Intn, n),
		caches:  make([]*lru.LRU, n),
		ledgers: make([]*stats.Ledger, n),
		queries: make([]int, n),
		benefit: stats.CostSaved{},
		met: &Metrics{
			Queries:         metrics.NewSeries(3600),
			ChunkRequests:   metrics.NewSeries(3600),
			LocalChunks:     metrics.NewSeries(3600),
			PeerChunks:      metrics.NewSeries(3600),
			WarehouseChunks: metrics.NewSeries(3600),
			Meter:           netsim.NewMeter(3600),
		},
	}
	for i := 0; i < n; i++ {
		s.caches[i] = lru.New(cfg.CacheChunks)
		s.ledgers[i] = stats.NewLedger()
	}
	sess, err := driver.New(driver.Spec{
		Nodes:    n,
		Relation: topology.PureAsymmetric,
		OutCap:   cfg.Neighbors,
		Duration: float64(cfg.DurationHours) * 3600,
		Place:    driver.RandomWire(cfg.Neighbors),
		Arrivals: driver.Poisson{RatePerHour: cfg.Olap.QueriesPerHour},
		Content:  core.ContentFunc(s.hasChunk),
		Classes:  func(id topology.NodeID) netsim.BandwidthClass { return s.classes[id] },
		TTL:      cfg.SearchTTL,
		Search: func(*driver.Session) []search.Option {
			return []search.Option{
				search.WithPolicy("flood"),
				search.WithMaxResults(1),
			}
		},
		OnQuery: s.issueQuery,
	}, root)
	if err != nil {
		panic(err)
	}
	s.sess = sess
	// The warehouse/peer cost stream splits after the session streams,
	// preserving the historical root layout.
	s.costStream = root.Split()
	return s
}

func (s *Sim) hasChunk(id topology.NodeID, key core.Key) bool {
	return s.caches[id].Contains(key)
}

// Engine exposes the simulator.
func (s *Sim) Engine() *sim.Engine { return s.sess.Engine() }

// Network exposes the neighbor graph.
func (s *Sim) Network() *topology.Network { return s.sess.Network() }

// Metrics returns the collected measurements.
func (s *Sim) Metrics() *Metrics { return s.met }

// Run executes the configured duration.
func (s *Sim) Run() *Metrics {
	s.sess.Run()
	return s.met
}

// issueQuery decomposes one OLAP query into chunks and resolves each:
// local cache, then a TTL-bounded peer search, then the warehouse.
func (s *Sim) issueQuery(id topology.NodeID, now float64) {
	chunks := s.cube.SampleQuery(s.sess.QueryStream(id), s.regions[id])
	s.met.Queries.Incr(now)
	led := s.ledgers[id]
	totalCost := 0.0

	for _, ch := range chunks {
		s.met.ChunkRequests.Incr(now)
		if s.caches[id].Get(ch) {
			s.met.LocalChunks.Incr(now)
			continue
		}
		outcome := s.sess.Do(search.Query{
			ID:     s.sess.NextQueryID(),
			Key:    ch,
			Origin: id,
			OnMessage: func(_, _ topology.NodeID) {
				s.met.Meter.Count(netsim.MsgQuery, now, 1)
			},
		})
		warehouse := s.costStream.BoundedNormal(s.cfg.WarehouseCostMean, s.cfg.WarehouseCostMean/4,
			s.cfg.WarehouseCostMean/2, s.cfg.WarehouseCostMean*2)
		if outcome.Found() {
			res := outcome.Hits[0]
			peerCost := res.Delay + s.costStream.BoundedNormal(s.cfg.PeerCostMean, s.cfg.PeerCostMean/4,
				s.cfg.PeerCostMean/2, s.cfg.PeerCostMean*2)
			totalCost += peerCost
			s.met.PeerChunks.Incr(now)
			rec := led.Touch(res.Holder)
			rec.Hits++
			rec.Results++
			rec.Replies++
			rec.LatencySum += res.Delay
			rec.LastSeen = now
			// The benefit is the processing time the peer saved us.
			saved := warehouse - peerCost
			if saved > 0 {
				rec.CostSaved += saved
			}
		} else {
			totalCost += warehouse
			s.met.WarehouseChunks.Incr(now)
		}
		s.caches[id].Put(ch)
	}
	s.met.QueryCost.Observe(totalCost)

	if s.cfg.Mode == Dynamic {
		s.queries[id]++
		if s.queries[id] >= s.cfg.ReconfigThreshold {
			s.queries[id] = 0
			s.reconfigure(id)
		}
	}
}

// reconfigure runs Algo 3: unilateral top-K update by saved cost.
func (s *Sim) reconfigure(id topology.NodeID) {
	net := s.sess.Network()
	desired := core.PlanAsymmetric(s.ledgers[id], s.benefit, s.cfg.Neighbors,
		net.Node(id).Out.IDs(),
		func(p topology.NodeID) bool { return p != id })
	added, removed := core.ApplyOutList(net, id, desired)
	if len(added) > 0 || len(removed) > 0 {
		s.met.Reconfigurations++
	}
}
