package experiments

import (
	"sync"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/peerolap"
	"repro/internal/webcache"
	"repro/internal/workload"
)

// This file implements the ablation experiments of DESIGN.md: the
// orthogonal techniques of [10] composed with reconfiguration, the
// asymmetric-vs-symmetric update regimes, benefit-function sensitivity,
// and the two additional case studies (web caching, PeerOlap).

// VariantRow summarizes one gnutella variant run.
type VariantRow struct {
	Name     string
	Hits     float64
	Messages uint64
	// MeanFirstResultMs is the average first-result delay over
	// satisfied queries, in milliseconds.
	MeanFirstResultMs float64
}

// runVariants executes a set of named gnutella configurations
// concurrently and tabulates them.
func runVariants(names []string, cfgs []gnutella.Config) []VariantRow {
	rows := make([]VariantRow, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := gnutella.New(cfgs[i]).Run()
			rows[i] = VariantRow{
				Name:              names[i],
				Hits:              m.Hits.Total(),
				Messages:          m.Meter.Total(netsim.MsgQuery),
				MeanFirstResultMs: m.FirstResultDelay.Mean() * 1000,
			}
		}()
	}
	wg.Wait()
	return rows
}

// VariantTable renders variant rows.
func VariantTable(title string, rows []VariantRow) *metrics.Table {
	t := metrics.NewTable(title, "variant", "total hits", "query messages", "first result (ms)")
	for _, r := range rows {
		t.AddRow(r.Name, r.Hits, r.Messages, r.MeanFirstResultMs)
	}
	return t
}

// DirectedBFT compares flooding, Directed BFT (K=2) and random-2
// forwarding on the dynamic system — technique (ii) of [10], which the
// paper says can be employed "to further reduce the query cost".
func DirectedBFT(scale Scale, seed uint64) []VariantRow {
	base := scale.config(gnutella.Dynamic, 3, seed)
	directed := base
	directed.Variant.Forward = gnutella.ForwardDirected2
	random := base
	random.Variant.Forward = gnutella.ForwardRandom2
	return runVariants(
		[]string{"flood", "directed-bft-2", "random-2"},
		[]gnutella.Config{base, directed, random},
	)
}

// IterDeepening compares one full-depth flood against the iterative
// deepening schedule {1, TTL} — technique (i) of [10].
func IterDeepening(scale Scale, seed uint64) []VariantRow {
	base := scale.config(gnutella.Dynamic, 3, seed)
	deep := base
	deep.Variant.IterativeDeepening = []int{1, 3}
	deep.Variant.DeepeningTimeout = 2.0
	return runVariants(
		[]string{"flood-ttl3", "deepening-1-3"},
		[]gnutella.Config{base, deep},
	)
}

// LocalIndices compares the plain dynamic flood against technique
// (iii) of [10]: radius-1 local indices with the flood shortened by one
// hop. Same nominal coverage, one hop less propagation.
func LocalIndices(scale Scale, seed uint64) []VariantRow {
	base := scale.config(gnutella.Dynamic, 2, seed)
	indexed := base
	indexed.Variant.UseLocalIndices = true
	return runVariants(
		[]string{"flood-ttl2", "local-indices-r1"},
		[]gnutella.Config{base, indexed},
	)
}

// AsymmetricUpdate compares the paper's symmetric (Algo 4) update with
// the unilateral asymmetric (Algo 3) regime on the same workload.
func AsymmetricUpdate(scale Scale, seed uint64) []VariantRow {
	static := scale.config(gnutella.Static, 2, seed)
	symmetric := scale.config(gnutella.Dynamic, 2, seed)
	asymmetric := symmetric
	asymmetric.Variant.Update = gnutella.AsymmetricUpdate
	return runVariants(
		[]string{"static", "dynamic-symmetric", "dynamic-asymmetric"},
		[]gnutella.Config{static, symmetric, asymmetric},
	)
}

// BenefitFunctions measures the sensitivity of the dynamic gain to the
// benefit definition (Section 3.4: "the benefit function should capture
// the general goals and characteristics of the system").
func BenefitFunctions(scale Scale, seed uint64) []VariantRow {
	br := scale.config(gnutella.Dynamic, 2, seed)
	hits := br
	hits.Variant.Benefit = gnutella.BenefitHitCount
	lat := br
	lat.Variant.Benefit = gnutella.BenefitHitsPerLatency
	return runVariants(
		[]string{"B/R (paper)", "hit-count", "hits-per-latency"},
		[]gnutella.Config{br, hits, lat},
	)
}

// DriftRow is one sampled hour of the preference-drift experiment.
type DriftRow struct {
	Hour                    int
	StaticHits, DynamicHits float64
	DynamicDecayHits        float64
}

// Drift evaluates the framework's central motivation — following
// "changes in access patterns": at mid-run every user's music
// preferences change; the static network cannot react, the dynamic one
// re-adapts, and hourly ledger decay (aging out stale statistics)
// accelerates the recovery.
func Drift(scale Scale, seed uint64) []DriftRow {
	base := scale.config(gnutella.Static, 2, seed)
	duration := base.DurationHours
	at := duration / 2
	mk := func(mode gnutella.Mode, decay float64) gnutella.Config {
		c := scale.config(mode, 2, seed)
		c.DriftAtHour = at
		c.DriftFraction = 1.0
		c.LedgerDecayPerHour = decay
		return c
	}
	var sm, dm, dd *gnutella.Metrics
	var wg sync.WaitGroup
	for _, job := range []struct {
		cfg gnutella.Config
		out **gnutella.Metrics
	}{
		{mk(gnutella.Static, 0), &sm},
		{mk(gnutella.Dynamic, 0), &dm},
		{mk(gnutella.Dynamic, 0.7), &dd},
	} {
		job := job
		wg.Add(1)
		go func() {
			defer wg.Done()
			*job.out = gnutella.New(job.cfg).Run()
		}()
	}
	wg.Wait()
	var rows []DriftRow
	for h := 0; h < duration; h++ {
		rows = append(rows, DriftRow{
			Hour:             h,
			StaticHits:       sm.Hits.Bucket(h),
			DynamicHits:      dm.Hits.Bucket(h),
			DynamicDecayHits: dd.Hits.Bucket(h),
		})
	}
	return rows
}

// DriftTable renders the drift series.
func DriftTable(rows []DriftRow) *metrics.Table {
	t := metrics.NewTable("Extension: preference drift at mid-run (hits per hour, hops=2)",
		"hour", "static", "dynamic", "dynamic+decay")
	for _, r := range rows {
		t.AddRow(r.Hour, r.StaticHits, r.DynamicHits, r.DynamicDecayHits)
	}
	return t
}

// WebCacheRow is one row of the web-caching experiment.
type WebCacheRow struct {
	Name             string
	NeighborHitRatio float64
	MeanLatencyMs    float64
	OriginFetches    float64
}

// WebCache compares static and dynamic Squid-like proxy cooperation,
// with and without digest guidance.
func WebCache(scale Scale, seed uint64) []WebCacheRow {
	cfg := func(mode webcache.Mode, digests bool) webcache.Config {
		c := webcache.DefaultConfig(mode)
		if scale == CI {
			c.Web = workload.WebConfig{
				Pages: 5000, Interests: 10, PopularityTheta: 0.9,
				Proxies: 30, LocalFraction: 0.7, RequestsPerHour: 600,
			}
			c.CacheCapacity = 100
			c.DurationHours = 12
		}
		c.UseDigests = digests
		c.Seed = seed
		return c
	}
	names := []string{"static", "dynamic", "dynamic+digests"}
	cfgs := []webcache.Config{
		cfg(webcache.Static, false),
		cfg(webcache.Dynamic, false),
		cfg(webcache.Dynamic, true),
	}
	rows := make([]WebCacheRow, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := webcache.New(cfgs[i]).Run()
			half := cfgs[i].DurationHours / 2
			rows[i] = WebCacheRow{
				Name:             names[i],
				NeighborHitRatio: m.NeighborHitRatio(half, cfgs[i].DurationHours),
				MeanLatencyMs:    m.Latency.Mean() * 1000,
				OriginFetches:    m.OriginFetches.Total(),
			}
		}()
	}
	wg.Wait()
	return rows
}

// WebCacheTable renders the web-caching rows.
func WebCacheTable(rows []WebCacheRow) *metrics.Table {
	t := metrics.NewTable("Case study: distributed web caching (Squid-like, hops=1)",
		"variant", "neighbor-hit ratio", "mean latency (ms)", "origin fetches")
	for _, r := range rows {
		t.AddRow(r.Name, r.NeighborHitRatio, r.MeanLatencyMs, r.OriginFetches)
	}
	return t
}

// PeerOlapRow is one row of the PeerOlap experiment.
type PeerOlapRow struct {
	Name            string
	MeanQueryCostS  float64
	PeerHitRatio    float64
	WarehouseChunks float64
}

// PeerOlap compares static and dynamic chunk-cache cooperation.
func PeerOlap(scale Scale, seed uint64) []PeerOlapRow {
	cfg := func(mode peerolap.Mode) peerolap.Config {
		c := peerolap.DefaultConfig(mode)
		if scale == CI {
			c.Olap = workload.OlapConfig{
				Chunks: 4800, Regions: 12, PopularityTheta: 0.9,
				Peers: 60, LocalFraction: 0.8, ChunksPerQueryMean: 4,
				QueriesPerHour: 30,
			}
			c.CacheChunks = 150
			c.DurationHours = 16
		}
		c.Seed = seed
		return c
	}
	names := []string{"static", "dynamic"}
	cfgs := []peerolap.Config{cfg(peerolap.Static), cfg(peerolap.Dynamic)}
	rows := make([]PeerOlapRow, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := peerolap.New(cfgs[i]).Run()
			half := cfgs[i].DurationHours / 2
			rows[i] = PeerOlapRow{
				Name:            names[i],
				MeanQueryCostS:  m.QueryCost.Mean(),
				PeerHitRatio:    m.PeerHitRatio(half, cfgs[i].DurationHours),
				WarehouseChunks: m.WarehouseChunks.Total(),
			}
		}()
	}
	wg.Wait()
	return rows
}

// PeerOlapTable renders the PeerOlap rows.
func PeerOlapTable(rows []PeerOlapRow) *metrics.Table {
	t := metrics.NewTable("Case study: PeerOlap chunk caching",
		"variant", "mean query cost (s)", "peer-hit ratio", "warehouse chunks")
	for _, r := range rows {
		t.AddRow(r.Name, r.MeanQueryCostS, r.PeerHitRatio, r.WarehouseChunks)
	}
	return t
}
