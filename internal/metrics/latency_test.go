package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestLatencyQuantiles: quantiles of a known sample set must land in
// the right power-of-two bucket (the histogram trades exactness for
// lock-free fixed memory, so the assertion is bucket-level: within 2x).
func TestLatencyQuantiles(t *testing.T) {
	var h LatencyHistogram
	// 90 fast samples at ~100µs, 10 slow at ~50ms: p50 must read as
	// ~100µs-scale, p99 as ~50ms-scale.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d, want 100", h.N())
	}
	if p50 := h.QuantileMicros(0.50); p50 < 64 || p50 > 256 {
		t.Fatalf("p50 = %dµs, want ~100µs (within its 2x bucket)", p50)
	}
	if p99 := h.QuantileMicros(0.99); p99 < 32_000 || p99 > 131_072 {
		t.Fatalf("p99 = %dµs, want ~50ms (within its 2x bucket)", p99)
	}
	if mean := h.MeanMicros(); mean < 4_000 || mean > 7_000 {
		t.Fatalf("mean = %dµs, want ~5090µs", mean)
	}
}

// TestLatencyEdgeSamples: zero, negative and absurdly large samples
// must not panic or corrupt the counts.
func TestLatencyEdgeSamples(t *testing.T) {
	var h LatencyHistogram
	h.Observe(0)
	h.Observe(-5 * time.Second)
	h.Observe(24 * time.Hour)
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if q := h.QuantileMicros(1); q == 0 {
		t.Fatal("q100 = 0 with an out-of-range sample present")
	}
	// Quantile bounds clamp instead of panicking.
	_ = h.QuantileMicros(-1)
	_ = h.QuantileMicros(2)
}

// TestLatencyEmpty: an untouched histogram reports zeros and stays out
// of the registry snapshot.
func TestLatencyEmpty(t *testing.T) {
	var h LatencyHistogram
	if h.QuantileMicros(0.99) != 0 || h.MeanMicros() != 0 || h.N() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	r := NewRegistry()
	r.Latency("http_idle") // registered but never observed
	r.Latency("http_query").Observe(3 * time.Millisecond)
	snap := r.Snapshot()
	if _, ok := snap["http_idle_p50_us"]; ok {
		t.Fatal("untouched histogram leaked into the snapshot")
	}
	if snap["http_query_count"] != 1 {
		t.Fatalf("http_query_count = %d, want 1", snap["http_query_count"])
	}
	if p99 := snap["http_query_p99_us"]; p99 < 2048 || p99 > 4096 {
		t.Fatalf("http_query_p99_us = %d, want in 3ms's bucket", p99)
	}
}

// TestLatencyConcurrent hammers one histogram from many goroutines
// while a reader polls quantiles — the lock-free contract under -race.
func TestLatencyConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Latency("hammer")
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.QuantileMicros(0.95)
				_ = r.Snapshot()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i%5000) * time.Microsecond)
			}
		}(w)
	}
	for h.N() < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.N() != writers*per {
		t.Fatalf("N = %d, want %d", h.N(), writers*per)
	}
}

// TestLatencyStablePointer: Latency must hand back the same histogram
// for the same name.
func TestLatencyStablePointer(t *testing.T) {
	r := NewRegistry()
	if r.Latency("a") != r.Latency("a") {
		t.Fatal("Latency returned different pointers for one name")
	}
	if r.Latency("a") == r.Latency("b") {
		t.Fatal("distinct names shared a histogram")
	}
}
