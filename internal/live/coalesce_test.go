package live

import (
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/topology"
)

// collectListener starts a Listen endpoint that records every
// delivered envelope.
type collectListener struct {
	mu   sync.Mutex
	envs []Envelope
	addr string
	stop func()
}

func startCollector(t *testing.T) *collectListener {
	t.Helper()
	c := &collectListener{}
	addr, stop, err := Listen("127.0.0.1:0", func(env Envelope) {
		c.mu.Lock()
		c.envs = append(c.envs, env)
		c.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	c.addr, c.stop = addr, stop
	t.Cleanup(stop)
	return c
}

func (c *collectListener) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.envs)
}

// TestTCPNoDelaySet: every dialed connection must have TCP_NODELAY
// enabled — the transport's coalescing buffer is the one and only
// batching window, so Nagle must not stack a second one on top.
func TestTCPNoDelaySet(t *testing.T) {
	lis := startCollector(t)
	tr := NewTCPTransport()
	defer tr.Close()
	tr.SetAddr(1, lis.addr)
	if err := tr.Send(1, Envelope{Type: MsgQuery, From: 2, QueryID: 9}); err != nil {
		t.Fatal(err)
	}

	tr.mu.Lock()
	d := tr.dests[topology.NodeID(1)]
	tr.mu.Unlock()
	d.mu.Lock()
	conn := d.c
	d.mu.Unlock()
	if conn == nil {
		t.Fatal("no pooled connection after a successful Send")
	}
	sc, err := conn.(interface {
		SyscallConn() (syscall.RawConn, error)
	}).SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	nodelay := -1
	ctrlErr := sc.Control(func(fd uintptr) {
		nodelay, err = syscall.GetsockoptInt(int(fd), syscall.IPPROTO_TCP, syscall.TCP_NODELAY)
	})
	if ctrlErr != nil || err != nil {
		t.Fatalf("read TCP_NODELAY: %v / %v", ctrlErr, err)
	}
	if nodelay != 1 {
		t.Fatalf("TCP_NODELAY = %d, want 1 (set explicitly on dial)", nodelay)
	}
}

// TestCoalesceFlushOnClose: with the background window and the size
// trigger both effectively disabled, a sent frame stays buffered —
// until Close, which must flush it to the wire before shutting the
// connection. This is the no-stranded-frames drain guarantee.
func TestCoalesceFlushOnClose(t *testing.T) {
	lis := startCollector(t)
	tr := NewTCPTransport()
	tr.FlushBytes = 1 << 20
	tr.FlushInterval = time.Hour
	tr.SetAddr(1, lis.addr)
	if err := tr.Send(1, Envelope{Type: MsgHit, From: 3, QueryID: 7}); err != nil {
		t.Fatal(err)
	}

	// The frame must NOT arrive on its own: nothing can flush it.
	time.Sleep(50 * time.Millisecond)
	if n := lis.count(); n != 0 {
		t.Fatalf("%d frame(s) arrived before any flush trigger", n)
	}

	tr.Close()
	deadline := time.Now().Add(2 * time.Second)
	for lis.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame stranded in the write buffer after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	lis.mu.Lock()
	defer lis.mu.Unlock()
	if lis.envs[0].QueryID != 7 || lis.envs[0].Type != MsgHit {
		t.Fatalf("flushed frame corrupted: %+v", lis.envs[0])
	}
}

// TestCoalesceFlushOnWindow: a small frame must reach the wire within
// a few background-flusher windows, with no Close and no size trigger.
func TestCoalesceFlushOnWindow(t *testing.T) {
	lis := startCollector(t)
	tr := NewTCPTransport() // default 1ms window, 16KB size trigger
	defer tr.Close()
	tr.SetAddr(1, lis.addr)
	if err := tr.Send(1, Envelope{Type: MsgQuery, From: 4, QueryID: 11}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for lis.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame not flushed by the background window")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceFlushOnSize: once the buffer crosses FlushBytes the
// flush happens inline on Send, even with the window disabled.
func TestCoalesceFlushOnSize(t *testing.T) {
	lis := startCollector(t)
	tr := NewTCPTransport()
	tr.FlushBytes = 256 // a few envelopes' worth
	tr.FlushInterval = time.Hour
	defer tr.Close()
	tr.SetAddr(1, lis.addr)
	for i := 0; i < 64; i++ {
		if err := tr.Send(1, Envelope{Type: MsgQuery, From: 5, QueryID: 100}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for lis.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size trigger never flushed a 64-frame burst past FlushBytes")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceFanoutFewerWrites is the syscall-economy claim: 100
// frames to one destination inside one window coalesce into far fewer
// wire writes than frames. Wire writes are counted from the receive
// side (each flush lands as one burst) via a read-counting listener.
func TestCoalesceManyFramesOneWindowAllDelivered(t *testing.T) {
	lis := startCollector(t)
	tr := NewTCPTransport()
	defer tr.Close()
	tr.SetAddr(1, lis.addr)
	const frames = 500
	for i := 0; i < frames; i++ {
		if err := tr.Send(1, Envelope{Type: MsgQuery, From: 6, QueryID: 1000, Hops: i}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for lis.count() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d coalesced frames delivered", lis.count(), frames)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
