package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/pkg/search"
)

// The churnserve experiment family measures what serving queries
// *during* churn costs — the top open item after PR 4's refreeze cell
// showed a stop-the-world pause per reconfiguration epoch. Each cell
// drives the same saturated query load over the same 30-minute churn
// epochs (rewire deltas at n/100 edges per epoch) in one of two modes:
//
//   - stopworld: the PR-4 baseline. One CSR re-frozen in place between
//     epochs; the saturation shard must fully drain before each
//     re-freeze, so every epoch contributes a stop-the-world window in
//     which zero queries run.
//   - epochswap: the SnapshotStore path. A writer goroutine applies the
//     identical delta batches via store.Apply — freeze into the
//     off-duty buffer, atomic pointer swap — while the saturation
//     shard keeps draining on the previous epoch. Queries never wait
//     for a freeze; the only reader-visible cost is the swap.
//
// Determinism: concurrent serving makes which-epoch-served-which-query
// schedule-dependent, so the during-churn outcomes stay out of
// cells.json. The cell's deterministic value is the config echo, the
// final adjacency size (the delta stream is a pure function of the
// seed), and a sequential post-quiesce probe batch — byte-identical
// between the two modes because both end on the same adjacency
// (TestChurnServeModesAgree locks this down). Queries/sec, downtime
// and publish cost are wall-clock side measurements that land in
// BENCH_churnserve.json, plus a cross-mode "saturate-under-churn"
// headline suitable for BENCH_history.json trajectory points.

// Churnserve cell shape: epochs of n/100 rewires each, a probe batch
// one quarter of the query budget, at the two sizes where the refreeze
// pause is visible.
const (
	churnServeEpochs = 8
	churnServeDenom  = 100 // deltas per epoch = nodes / churnServeDenom
)

var churnServeSizes = []int{100_000, 1_000_000}

// churnServeQueries is the per-cell query budget. It is deliberately
// larger than scaleQueries: the regime under study is long-lived
// serving punctuated by reconfigurations (30-minute churn epochs
// against millisecond freezes), so each epoch's serving window must
// dominate the publish cost or the comparison degenerates into
// back-to-back freezes that neither deployment mode would ever see.
func churnServeQueries(s Scale) int {
	if s == Full {
		return 40_000
	}
	return 8_000
}

// ChurnServeSummary is the deterministic cells.json value of one
// churnserve cell. Identical between the stopworld and epochswap cells
// of one size apart from Mode.
type ChurnServeSummary struct {
	Nodes          int    `json:"nodes"`
	Mode           string `json:"mode"` // "stopworld" or "epochswap"
	Epochs         int    `json:"epochs"`
	DeltasPerEpoch int    `json:"deltas_per_epoch"`
	// ChurnQueries is how many saturated queries drained during churn;
	// their outcomes are schedule-dependent and live in the perf side
	// channel only.
	ChurnQueries int `json:"churn_queries"`
	// FinalEdges is the adjacency size after the last epoch — a pure
	// function of the seed, and the first cross-mode identity check.
	FinalEdges int `json:"final_edges"`
	// Probe* summarize the sequential post-quiesce batch on the final
	// epoch: deterministic, byte-identical across modes.
	ProbeQueries      int     `json:"probe_queries"`
	ProbeHits         int     `json:"probe_hits"`
	ProbeHitRate      float64 `json:"probe_hit_rate"`
	ProbeMessages     uint64  `json:"probe_messages"`
	ProbeMsgsPerQuery float64 `json:"probe_msgs_per_query"`
}

// ChurnServePerfSample is the wall-clock side channel of one cell.
type ChurnServePerfSample struct {
	// WallSeconds spans the during-churn serving loop (build and probe
	// excluded); Queries is how many saturated queries it drained.
	WallSeconds float64
	Queries     int
	// DowntimeSeconds totals time the query pipeline was blocked with no
	// query able to run: the whole FreezeInto for stopworld; for
	// epochswap the time spent enqueueing epoch handoffs to the writer
	// (observed near-zero — the handoff never waits on a publish) —
	// measured, not assumed, so the zero-downtime claim is an
	// observation.
	DowntimeSeconds float64
	// PublishSeconds totals off-thread freeze+swap cost over Publishes
	// epochs (epochswap only — stopworld's freezes are all downtime).
	PublishSeconds float64
	Publishes      int
	// Workers is the saturation shard size.
	Workers int
}

// ChurnServePerf collects the non-deterministic measurements of a
// churnserve run, keyed by cell name. Safe for concurrent cells.
type ChurnServePerf struct {
	mu      sync.Mutex
	samples map[string]ChurnServePerfSample
}

// NewChurnServePerf returns an empty collector.
func NewChurnServePerf() *ChurnServePerf {
	return &ChurnServePerf{samples: make(map[string]ChurnServePerfSample)}
}

func (p *ChurnServePerf) record(cell string, s ChurnServePerfSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples[cell] = s
}

// Report renders the collected samples as a BENCH_churnserve.json
// document: one entry per cell, plus the "saturate-under-churn"
// headline comparing epochswap against stopworld at the largest size —
// the trajectory point BENCH_history.json tracks.
func (p *ChurnServePerf) Report(rs []runner.Result) (*perf.Report, error) {
	rep := perf.NewReport("churnserve-experiment")
	p.mu.Lock()
	defer p.mu.Unlock()
	type modePair struct{ stopQPS, swapQPS, stopDown, swapDown float64 }
	headline := map[int]*modePair{}
	for _, r := range rs {
		if r.Experiment != "churnserve" {
			continue
		}
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: churnserve cell %s failed: %s", r.Cell, r.Err)
		}
		sum, ok := r.Value.(*ChurnServeSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: churnserve cell %s has value %T", r.Cell, r.Value)
		}
		m := map[string]float64{
			"probe_hit_rate":   sum.ProbeHitRate,
			"probe_msgs/query": sum.ProbeMsgsPerQuery,
		}
		s, ok := p.samples[r.Cell]
		if ok && s.WallSeconds > 0 {
			m["queries/sec"] = float64(s.Queries) / s.WallSeconds
			m["downtime_ms"] = s.DowntimeSeconds * 1000
			m["wall_seconds"] = s.WallSeconds
			m["workers"] = float64(s.Workers)
			if s.Publishes > 0 {
				m["publish_ms"] = s.PublishSeconds / float64(s.Publishes) * 1000
			}
			h := headline[sum.Nodes]
			if h == nil {
				h = &modePair{}
				headline[sum.Nodes] = h
			}
			if sum.Mode == "epochswap" {
				h.swapQPS, h.swapDown = m["queries/sec"], m["downtime_ms"]
			} else {
				h.stopQPS, h.stopDown = m["queries/sec"], m["downtime_ms"]
			}
		}
		rep.Add("churnserve/"+r.Cell, m)
	}
	largest := 0
	for n := range headline {
		if n > largest {
			largest = n
		}
	}
	if h := headline[largest]; h != nil && h.stopQPS > 0 && h.swapQPS > 0 {
		rep.Add("saturate-under-churn", map[string]float64{
			"nodes":                 float64(largest),
			"epochswap_qps":         h.swapQPS,
			"stopworld_qps":         h.stopQPS,
			"qps_ratio":             h.swapQPS / h.stopQPS,
			"epochswap_downtime_ms": h.swapDown,
			"stopworld_downtime_ms": h.stopDown,
		})
	}
	return rep, nil
}

// ChurnServeCells returns the stopworld/epochswap pair per size, plus
// the collector receiving each cell's wall-clock measurements.
func ChurnServeCells(experiment string, scale Scale, seed uint64) ([]runner.Cell, *ChurnServePerf) {
	collector := NewChurnServePerf()
	var cells []runner.Cell
	for _, n := range churnServeSizes {
		for _, mode := range []string{"stopworld", "epochswap"} {
			name := fmt.Sprintf("%s-n%d", mode, n)
			// Both modes of one size share a seed, so their worlds and
			// delta streams — and therefore their summaries — agree.
			cfg := DefaultScaleConfig(n, churnServeQueries(scale),
				runner.DeriveSeed(seed, experiment, fmt.Sprintf("n%d", n)))
			epochSwap := mode == "epochswap"
			cells = append(cells, runner.Cell{
				Experiment: experiment,
				Name:       name,
				Seed:       cfg.Seed,
				Run: func(_ context.Context, cellSeed uint64) (any, error) {
					c := cfg
					c.Seed = cellSeed
					sum, sample, err := RunChurnServe(c, churnServeEpochs,
						c.Nodes/churnServeDenom, c.Queries/4, 0, epochSwap)
					if err != nil {
						return nil, err
					}
					collector.record(name, sample)
					return sum, nil
				},
			})
		}
	}
	return cells, collector
}

// churnServeDeltas draws one epoch's delta batch against the current
// adjacency: count rewires, each disconnecting one existing edge of a
// random source and reconnecting it to a random peer. Failed connects
// (self, duplicate, capacity) are no-ops under delta semantics, so the
// batch sequence — and the final adjacency — is a pure function of the
// stream no matter which mode applies it.
func churnServeDeltas(net *topology.Network, count int, s *rng.Stream) []topology.Delta {
	n := net.Len()
	ds := make([]topology.Delta, 0, 2*count)
	for i := 0; i < count; i++ {
		src := topology.NodeID(s.Intn(n))
		out := net.Out(src)
		if len(out) == 0 {
			continue
		}
		rw := topology.Rewire(src, out[s.Intn(len(out))], topology.NodeID(s.Intn(n)))
		ds = append(ds, rw[:]...)
	}
	return ds
}

// drawChurnQueries pre-draws a query batch from the fixture's query
// stream (origins uniform over clients, keys Zipf), so saturated
// serving consumes no randomness concurrently.
func drawChurnQueries(fx *scaleFixture, firstID uint64, count int) []search.Query {
	qs := make([]search.Query, count)
	for i := range qs {
		qs[i] = search.Query{
			ID:     firstID + uint64(i),
			Key:    keyOf(fx, fx.query),
			Origin: fx.clientIDs[fx.query.Intn(len(fx.clientIDs))],
		}
	}
	return qs
}

func keyOf(fx *scaleFixture, s *rng.Stream) search.Key {
	return search.Key(fx.zipf.Index(s))
}

// RunChurnServe executes one churnserve cell: epochs delta batches of
// deltasPerEpoch rewires each, cfg.Queries saturated queries drained
// across them (workers <= 0 means GOMAXPROCS), then probeQueries
// sequential post-quiesce queries for the deterministic summary.
// epochSwap selects the serving mode (see the package comment above).
func RunChurnServe(cfg ScaleConfig, epochs, deltasPerEpoch, probeQueries, workers int, epochSwap bool) (*ChurnServeSummary, ChurnServePerfSample, error) {
	if epochs < 1 || deltasPerEpoch < 1 || probeQueries < 1 {
		return nil, ChurnServePerfSample{}, fmt.Errorf("experiments: churnserve with %d epochs, %d deltas, %d probes",
			epochs, deltasPerEpoch, probeQueries)
	}
	if cfg.Queries < epochs {
		return nil, ChurnServePerfSample{}, fmt.Errorf("experiments: churnserve with %d queries over %d epochs", cfg.Queries, epochs)
	}
	fx, err := buildScaleFixture(cfg)
	if err != nil {
		return nil, ChurnServePerfSample{}, err
	}
	churnStream := fx.root.Split()
	churnQs := drawChurnQueries(fx, 1, cfg.Queries)
	probeQs := drawChurnQueries(fx, uint64(cfg.Queries)+1, probeQueries)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "flood"
	}
	baseOpts := []search.Option{
		search.WithPolicy(policy),
		search.WithSeed(cfg.Seed),
		search.WithTTL(cfg.TTL),
		search.WithScratchHint(cfg.Nodes),
	}

	mode := "stopworld"
	if epochSwap {
		mode = "epochswap"
	}
	sum := &ChurnServeSummary{
		Nodes:          cfg.Nodes,
		Mode:           mode,
		Epochs:         epochs,
		DeltasPerEpoch: deltasPerEpoch,
		ChurnQueries:   cfg.Queries,
		ProbeQueries:   probeQueries,
	}
	sample := ChurnServePerfSample{Queries: cfg.Queries, Workers: workers}

	var eng *search.Engine
	if epochSwap {
		eng, err = serveEpochSwap(fx, churnStream, churnQs, epochs, deltasPerEpoch, workers, baseOpts, &sample)
	} else {
		eng, err = serveStopWorld(fx, churnStream, churnQs, epochs, deltasPerEpoch, workers, baseOpts, &sample)
	}
	if err != nil {
		return nil, ChurnServePerfSample{}, err
	}

	// Post-quiesce probe: sequential, on the final adjacency — the
	// deterministic, mode-independent half of the cell.
	sum.FinalEdges = fx.net.EdgeCount()
	ctx := context.Background()
	for i := range probeQs {
		out, err := eng.Do(ctx, probeQs[i])
		if err != nil {
			return nil, ChurnServePerfSample{}, err
		}
		sum.ProbeMessages += out.Messages
		if out.Found() {
			sum.ProbeHits++
		}
	}
	sum.ProbeHitRate = float64(sum.ProbeHits) / float64(probeQueries)
	sum.ProbeMsgsPerQuery = float64(sum.ProbeMessages) / float64(probeQueries)
	return sum, sample, nil
}

// epochChunks splits qs into epochs contiguous chunks (remainder on the
// last), one serving chunk per churn epoch.
func epochChunks(qs []search.Query, epochs int) [][]search.Query {
	per := len(qs) / epochs
	chunks := make([][]search.Query, epochs)
	for e := 0; e < epochs; e++ {
		lo := e * per
		hi := lo + per
		if e == epochs-1 {
			hi = len(qs)
		}
		chunks[e] = qs[lo:hi]
	}
	return chunks
}

// serveStopWorld is the baseline: apply each epoch's deltas, re-freeze
// the single CSR in place with the shard fully drained (the whole
// freeze is downtime), then drain that epoch's chunk.
func serveStopWorld(fx *scaleFixture, churn *rng.Stream, qs []search.Query,
	epochs, deltasPerEpoch, workers int, opts []search.Option, sample *ChurnServePerfSample) (*search.Engine, error) {
	csr := fx.net.Freeze()
	eng, err := search.New(search.Over(csr, fx.content()), opts...)
	if err != nil {
		return nil, err
	}
	sat, err := eng.Saturate(search.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer sat.Close()

	ctx := context.Background()
	chunks := epochChunks(qs, epochs)
	start := time.Now()
	for e := 0; e < epochs; e++ {
		ds := churnServeDeltas(fx.net, deltasPerEpoch, churn)
		fx.net.ApplyAll(ds)
		// The shard is idle here by construction — re-freezing in place
		// under live readers would tear their cascades. This wait is the
		// stop-the-world window the epochswap mode eliminates.
		t0 := time.Now()
		fx.net.FreezeInto(csr)
		sample.DowntimeSeconds += time.Since(t0).Seconds()
		if _, err := sat.Run(ctx, chunks[e]); err != nil {
			return nil, err
		}
	}
	sample.WallSeconds = time.Since(start).Seconds()
	return eng, nil
}

// serveEpochSwap is the zero-downtime mode: a writer goroutine applies
// each epoch's deltas through the snapshot store while the shard keeps
// draining the epoch's chunk on whatever epoch its queries pinned.
// The handoff channel is buffered to the epoch count, so the pipeline
// never waits on a publish — if the writer lags, queries simply keep
// serving an older epoch, which is the whole point of the store. The
// handoff cost is still measured into DowntimeSeconds rather than
// assumed away; it should read as zero.
//
// Determinism is unaffected by the buffering: the writer consumes
// handoffs serially in FIFO order, so delta batch k is always drawn
// against the adjacency left by batches 1..k-1 — the identical stream
// the stopworld mode applies.
func serveEpochSwap(fx *scaleFixture, churn *rng.Stream, qs []search.Query,
	epochs, deltasPerEpoch, workers int, opts []search.Option, sample *ChurnServePerfSample) (*search.Engine, error) {
	store := topology.NewSnapshotStore(fx.net)
	eng, err := search.New(search.OverContent(fx.content()),
		append(opts, search.WithSnapshotStore(store))...)
	if err != nil {
		return nil, err
	}
	sat, err := eng.Saturate(search.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer sat.Close()

	epochCh := make(chan struct{}, epochs)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range epochCh {
			ds := churnServeDeltas(fx.net, deltasPerEpoch, churn)
			t0 := time.Now()
			store.Apply(ds)
			sample.PublishSeconds += time.Since(t0).Seconds()
			sample.Publishes++
		}
	}()

	ctx := context.Background()
	chunks := epochChunks(qs, epochs)
	start := time.Now()
	for e := 0; e < epochs; e++ {
		t0 := time.Now()
		epochCh <- struct{}{}
		sample.DowntimeSeconds += time.Since(t0).Seconds()
		if _, err := sat.Run(ctx, chunks[e]); err != nil {
			return nil, err
		}
	}
	// Wall covers serving the full query budget; the trailing publishes
	// below are quiescence for the probe, not serving time.
	sample.WallSeconds = time.Since(start).Seconds()
	close(epochCh)
	wg.Wait()
	return eng, nil
}

// AssembleChurnServe validates the results of ChurnServeCells into
// summaries, in sweep order.
func AssembleChurnServe(rs []runner.Result) ([]*ChurnServeSummary, error) {
	out := make([]*ChurnServeSummary, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		sum, ok := r.Value.(*ChurnServeSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *ChurnServeSummary",
				r.Experiment, r.Cell, r.Value)
		}
		out[i] = sum
	}
	return out, nil
}
