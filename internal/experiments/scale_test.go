package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/topology"
)

// smallScaleConfig keeps unit tests fast: the family's structure at a
// few hundred nodes.
func smallScaleConfig(seed uint64) ScaleConfig {
	cfg := DefaultScaleConfig(400, 300, seed)
	return cfg
}

func TestRunScaleDeterministic(t *testing.T) {
	a, _, err := RunScale(smallScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunScale(smallScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same config, different summaries:\n%s\n%s", aj, bj)
	}
	if a.Hits == 0 {
		t.Fatal("no query was satisfied; workload degenerate")
	}
	if a.Clients+a.Providers+a.Bystanders != a.Nodes {
		t.Fatalf("roles don't partition: %+v", a)
	}
	if a.Messages == 0 || a.MsgsPerQuery <= 0 {
		t.Fatalf("no traffic recorded: %+v", a)
	}
	if a.DelayP50Ms > a.DelayP95Ms || a.DelayP95Ms > a.DelayP99Ms {
		t.Fatalf("percentiles not monotone: %+v", a)
	}
}

func TestRunScaleSeedSensitivity(t *testing.T) {
	a, _, err := RunScale(smallScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunScale(smallScaleConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages == b.Messages && a.Hits == b.Hits {
		t.Fatal("distinct seeds produced identical runs; seed is ignored somewhere")
	}
}

func TestScaleConfigValidate(t *testing.T) {
	bad := []func(*ScaleConfig){
		func(c *ScaleConfig) { c.Nodes = 1 },
		func(c *ScaleConfig) { c.Degree = 0 },
		func(c *ScaleConfig) { c.ProviderFraction = 0 },
		func(c *ScaleConfig) { c.ProviderFraction = 0.8; c.ClientFraction = 0.5 },
		func(c *ScaleConfig) { c.Keys = 0 },
		func(c *ScaleConfig) { c.Queries = 0 },
		func(c *ScaleConfig) { c.TTL = 0 },
	}
	for i, mutate := range bad {
		cfg := smallScaleConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
	if err := smallScaleConfig(1).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestScaleWire: deterministic, degree-bounded, self-loop-free wiring
// in O(N*degree).
func TestScaleWire(t *testing.T) {
	build := func() *topology.Network {
		net := topology.NewNetwork(topology.Symmetric, 500, 4, 4)
		scaleWire(net, 4, rng.New(3))
		return net
	}
	a, b := build(), build()
	for i := 0; i < a.Len(); i++ {
		id := topology.NodeID(i)
		out := a.Out(id)
		if len(out) > 4 {
			t.Fatalf("node %d has degree %d > 4", i, len(out))
		}
		for _, nb := range out {
			if nb == id {
				t.Fatalf("node %d wired to itself", i)
			}
		}
		bOut := b.Out(id)
		if len(out) != len(bOut) {
			t.Fatalf("wiring nondeterministic at node %d", i)
		}
		for j := range out {
			if out[j] != bOut[j] {
				t.Fatalf("wiring nondeterministic at node %d", i)
			}
		}
	}
	if !a.Consistent() {
		t.Fatal("wired network violates the consistency invariant")
	}
	if a.EdgeCount() == 0 {
		t.Fatal("no edges wired")
	}
}

// TestScaleCellsWorkerInvariance is the family's own determinism gate:
// the full sweep (1k/10k/100k) must produce byte-identical result
// values at 1 and 4 workers. This is the in-process version of the CI
// smoke check that diffs runs/<name>/cells.json.
func TestScaleCellsWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	run := func(workers int) string {
		cells, _ := ScaleCells("scale", CI, 1)
		rs, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.FirstError(rs); err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	if a, b := run(1), run(4); a != b {
		t.Fatal("scale results differ between 1 and 4 workers")
	}
}

// TestScalePerfReport: the collector renders one BENCH entry per cell
// with both deterministic and wall-clock metrics.
func TestScalePerfReport(t *testing.T) {
	cfg := smallScaleConfig(5)
	collector := NewScalePerf()
	cells := []runner.Cell{{
		Experiment: "scale",
		Name:       "n400",
		Seed:       cfg.Seed,
		Run: func(_ context.Context, seed uint64) (any, error) {
			c := cfg
			c.Seed = seed
			sum, sample, err := RunScale(c)
			if err != nil {
				return nil, err
			}
			collector.record("n400", sample)
			return sum, nil
		},
	}}
	rs, err := runner.Run(context.Background(), cells, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := collector.Report(rs)
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Get("scale/n400")
	if e == nil {
		t.Fatalf("missing entry; report: %+v", rep)
	}
	for _, m := range []string{"msgs/query", "hit-rate", "events/sec", "allocs/query", "delay_p95_ms"} {
		if _, ok := e.Metric(m); !ok {
			t.Errorf("metric %q missing: %+v", m, e.Metrics)
		}
	}
}
