package searchclient

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// rtFunc lets a test script transport-level outcomes directly.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okResponse() *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("{}")),
		Header:     http.Header{},
	}
}

func errResponse(code int) *http.Response {
	return &http.Response{
		StatusCode: code,
		Body:       io.NopCloser(strings.NewReader(`{"error":"scripted"}`)),
		Header:     http.Header{},
	}
}

// A 503 is retried until the daemon recovers; the successful attempt's
// response comes back as if nothing happened.
func TestRetryRecoversFromTemporaryErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
			return
		}
		json.NewEncoder(w).Encode(QueryResponse{Origin: 1})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	resp, err := c.Query(context.Background(), QueryRequest{Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Origin != 1 || calls.Load() != 3 {
		t.Fatalf("origin %d after %d calls, want 1 after 3", resp.Origin, calls.Load())
	}
}

// Hard HTTP errors are not retried: the request is wrong, not the
// moment.
func TestNoRetryOnHardErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad key"})
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetry(5, time.Millisecond)).
		Query(context.Background(), QueryRequest{Key: 1})
	var he *Error
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 *Error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("hard error was attempted %d times, want 1", calls.Load())
	}
}

// The request context's deadline cuts the retry loop short, and the
// returned error carries both the context verdict and the last attempt.
func TestContextDeadlineCutsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := New(ts.URL, WithRetry(50, 30*time.Millisecond)).Ready(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry loop ran %v past a 50ms deadline", elapsed)
	}
}

// Retry-After is parsed into the surfaced error so callers that manage
// their own retrying see the daemon's hint.
func TestRetryAfterParsed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	err := New(ts.URL, WithRetry(0, 0)).Ready(context.Background())
	var he *Error
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *Error", err)
	}
	if he.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", he.RetryAfter)
	}
	if !he.Temporary() {
		t.Fatal("503 not Temporary")
	}
}

// Temporary covers exactly the admit-later statuses.
func TestErrorTemporary(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   bool
	}{
		{http.StatusServiceUnavailable, true},
		{http.StatusTooManyRequests, true},
		{http.StatusBadRequest, false},
		{http.StatusConflict, false},
		{http.StatusInternalServerError, false},
	} {
		e := &Error{Status: tc.status}
		if e.Temporary() != tc.want {
			t.Errorf("Temporary(%d) = %v, want %v", tc.status, e.Temporary(), tc.want)
		}
	}
}

// The breaker opens after consecutive transport failures, fails fast
// while open, and a successful half-open probe closes it again.
func TestBreakerOpensAndRecloses(t *testing.T) {
	var transportUp atomic.Bool
	var dials atomic.Int32
	hc := &http.Client{Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
		dials.Add(1)
		if !transportUp.Load() {
			return nil, errors.New("dial tcp: connection refused")
		}
		return okResponse(), nil
	})}
	c := New("127.0.0.1:1", WithHTTPClient(hc), WithRetry(0, 0))
	c.br = newBreaker(2, 30*time.Millisecond)

	for i := 0; i < 2; i++ {
		if err := c.Ready(context.Background()); err == nil {
			t.Fatal("scripted dial failure returned nil")
		}
	}
	// Open: fails fast without touching the transport.
	before := dials.Load()
	err := c.Ready(context.Background())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v, want ErrCircuitOpen", err)
	}
	if dials.Load() != before {
		t.Fatal("open breaker still dialed")
	}

	// After the cooldown a probe goes through; success recloses.
	transportUp.Store(true)
	time.Sleep(40 * time.Millisecond)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

// A failed half-open probe reopens the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	hc := &http.Client{Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
		return nil, errors.New("dial tcp: connection refused")
	})}
	c := New("127.0.0.1:1", WithHTTPClient(hc), WithRetry(0, 0))
	c.br = newBreaker(1, 20*time.Millisecond)

	_ = c.Ready(context.Background()) // opens
	time.Sleep(30 * time.Millisecond)
	_ = c.Ready(context.Background()) // probe fails, reopens
	if err := c.Ready(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v, want ErrCircuitOpen after failed probe", err)
	}
}

// HTTP error responses — even a stream of them — never open the
// breaker: the endpoint is demonstrably serving.
func TestBreakerIgnoresHTTPErrors(t *testing.T) {
	hc := &http.Client{Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
		return errResponse(http.StatusServiceUnavailable), nil
	})}
	c := New("127.0.0.1:1", WithHTTPClient(hc), WithRetry(0, 0))
	c.br = newBreaker(2, time.Minute)

	for i := 0; i < 10; i++ {
		err := c.Ready(context.Background())
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker opened on HTTP 503 at call %d", i)
		}
		var he *Error
		if !errors.As(err, &he) {
			t.Fatalf("got %v, want *Error", err)
		}
	}
}

// Crash and Restart post the fault-control bodies the daemon expects.
func TestCrashRestartEndpoints(t *testing.T) {
	type call struct {
		path string
		node int
	}
	var calls []call
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Node int `json:"node"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("decode body: %v", err)
		}
		calls = append(calls, call{r.URL.Path, body.Node})
		json.NewEncoder(w).Encode(map[string]any{"node": body.Node})
	}))
	defer ts.Close()

	c := New(ts.URL)
	if err := c.Crash(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	want := []call{{"/v1/control/crash", 7}, {"/v1/control/restart", 7}}
	if len(calls) != 2 || calls[0] != want[0] || calls[1] != want[1] {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
}

// The backoff jitter stays within [d/2, d] and actually varies.
func TestClientJitterBounds(t *testing.T) {
	c := New("127.0.0.1:1")
	const d = 100 * time.Millisecond
	seen := map[time.Duration]struct{}{}
	for i := 0; i < 200; i++ {
		j := c.jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter %v outside [%v, %v]", j, d/2, d)
		}
		seen[j] = struct{}{}
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct values", len(seen))
	}
}
