package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// TrialTracker implements Section 3.4's solution (a) to the
// cold-invitation problem: when an invited node has no statistics about
// the inviter, it establishes "a temporary relationship in order to
// start exchanging search and exploration messages and gather
// statistics; the relationship will either become permanent or will
// terminate after a certain time threshold".
//
// The tracker is engine-agnostic: the host runtime calls Begin when an
// invitation is accepted provisionally and Expire periodically with the
// current time. A trial converts to permanent silently (the edge simply
// stays) when the guest proved beneficial; otherwise the host evicts
// the guest through the normal eviction path (statistics reset
// included).
type TrialTracker struct {
	// Threshold is the probation length in seconds.
	Threshold float64
	// Benefit scores the guest at expiry.
	Benefit stats.Benefit
	// Updater performs the eviction of failed guests.
	Updater *SymmetricUpdater

	trials []trial
}

type trial struct {
	host, guest topology.NodeID
	deadline    float64
}

// Begin registers a provisional relationship: host accepted guest's
// invitation without statistics. Duplicate registrations for a live
// (host, guest) pair are ignored.
func (t *TrialTracker) Begin(now float64, host, guest topology.NodeID) {
	if t.Threshold <= 0 {
		panic(fmt.Sprintf("core: TrialTracker threshold %v", t.Threshold))
	}
	for _, tr := range t.trials {
		if tr.host == host && tr.guest == guest {
			return
		}
	}
	t.trials = append(t.trials, trial{host: host, guest: guest, deadline: now + t.Threshold})
}

// Pending returns the number of unresolved trials.
func (t *TrialTracker) Pending() int { return len(t.trials) }

// Expire resolves every trial whose deadline passed: the guest stays if
// its benefit score at the host outranks zero AND it is still a
// neighbor; otherwise the host evicts it. It returns how many trials
// became permanent and how many ended in eviction.
func (t *TrialTracker) Expire(env SymmetricEnv, now float64) (kept, evicted int) {
	if t.Updater == nil || t.Benefit == nil {
		panic("core: TrialTracker requires Updater and Benefit")
	}
	remaining := t.trials[:0]
	for _, tr := range t.trials {
		if tr.deadline > now {
			remaining = append(remaining, tr)
			continue
		}
		if !env.Net().Node(tr.host).Out.Contains(tr.guest) {
			// The relationship already dissolved through other churn;
			// nothing to resolve.
			continue
		}
		score := 0.0
		if r := env.Ledger(tr.host).Get(tr.guest); r != nil {
			score = t.Benefit.Score(r)
		}
		if score > 0 {
			kept++
			continue // permanent: the edge stays, the trial is forgotten
		}
		t.Updater.evict(env, tr.host, tr.guest)
		evicted++
	}
	t.trials = remaining
	return kept, evicted
}

// Drop abandons all trials involving a node (it went off-line).
func (t *TrialTracker) Drop(node topology.NodeID) {
	remaining := t.trials[:0]
	for _, tr := range t.trials {
		if tr.host != node && tr.guest != node {
			remaining = append(remaining, tr)
		}
	}
	t.trials = remaining
}
