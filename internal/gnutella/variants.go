package gnutella

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/pkg/search"
)

// This file holds the ablation knobs of DESIGN.md: alternative update
// regimes, benefit functions, forward policies and the iterative-
// deepening driver. The headline figures use the defaults (symmetric
// always-accept updates, cumulative B/R benefit, flooding); each knob
// answers one "what if" the paper raises in Sections 3-4.

// UpdateMode selects the neighbor-update regime for the dynamic
// variant.
type UpdateMode uint8

const (
	// SymmetricUpdate is Algo 4/5: invitation-based agreement, the
	// paper's choice for file sharing ("the symmetric relationship is
	// imposed by the fact that each user tries independently to
	// maximize his/her own potential").
	SymmetricUpdate UpdateMode = iota
	// AsymmetricUpdate is Algo 3 applied to the same workload: nodes
	// re-target their outgoing lists unilaterally. The paper argues
	// this unbalances file sharing — nodes with many songs serve
	// everyone and get nothing back; the ablation quantifies it.
	AsymmetricUpdate
)

// String implements fmt.Stringer.
func (m UpdateMode) String() string {
	switch m {
	case SymmetricUpdate:
		return "symmetric"
	case AsymmetricUpdate:
		return "asymmetric"
	default:
		return fmt.Sprintf("UpdateMode(%d)", uint8(m))
	}
}

// BenefitKind selects the ranking function for neighbor updates.
type BenefitKind uint8

const (
	// BenefitBR is the paper's Section 4 benefit: Σ B/R.
	BenefitBR BenefitKind = iota
	// BenefitHitCount ranks by answered queries only, ignoring
	// bandwidth and result-list size.
	BenefitHitCount
	// BenefitHitsPerLatency ranks by hits over mean observed latency.
	BenefitHitsPerLatency
)

// String implements fmt.Stringer.
func (k BenefitKind) String() string {
	switch k {
	case BenefitBR:
		return "B/R"
	case BenefitHitCount:
		return "hit-count"
	case BenefitHitsPerLatency:
		return "hits-per-latency"
	default:
		return fmt.Sprintf("BenefitKind(%d)", uint8(k))
	}
}

// benefit materializes the kind.
func (k BenefitKind) benefit() stats.Benefit {
	switch k {
	case BenefitBR:
		return stats.Cumulative{}
	case BenefitHitCount:
		return stats.HitCount{}
	case BenefitHitsPerLatency:
		return stats.HitsPerLatency{}
	default:
		panic(fmt.Sprintf("gnutella: unknown benefit kind %d", k))
	}
}

// ForwardKind selects the query propagation policy.
type ForwardKind uint8

const (
	// ForwardFlood sends to every neighbor (the case study's choice).
	ForwardFlood ForwardKind = iota
	// ForwardDirected2 is Directed BFT with K=2: each node forwards to
	// its two most beneficial neighbors only.
	ForwardDirected2
	// ForwardRandom2 forwards to two uniformly chosen neighbors — the
	// control for Directed BFT (same fan-out, no history).
	ForwardRandom2
)

// String implements fmt.Stringer.
func (k ForwardKind) String() string {
	switch k {
	case ForwardFlood:
		return "flood"
	case ForwardDirected2:
		return "directed-bft-2"
	case ForwardRandom2:
		return "random-2"
	default:
		return fmt.Sprintf("ForwardKind(%d)", uint8(k))
	}
}

// Variant bundles the ablation knobs; the zero value reproduces the
// paper's case study exactly.
type Variant struct {
	// Update selects the neighbor-update regime (dynamic mode only).
	Update UpdateMode
	// Benefit selects the ranking function (dynamic mode only).
	Benefit BenefitKind
	// Forward selects the propagation policy.
	Forward ForwardKind
	// IterativeDeepening, when non-empty, replaces the single TTL-bound
	// flood with successive cascades at these depths (strictly
	// increasing; the last entry caps at the configured TTL semantics
	// of [10]).
	IterativeDeepening []int
	// DeepeningTimeout is the per-cycle wait in seconds before the next
	// deepening cycle starts (only with IterativeDeepening).
	DeepeningTimeout float64
	// TrialPeriodHours, when positive, runs Section 3.4's solution (a):
	// accepted invitations are provisional; a guest that proved no
	// benefit within the period is evicted. Expiry is checked hourly.
	TrialPeriodHours float64
	// UseLocalIndices enables technique (iii) of [10] with radius 1:
	// every node answers on behalf of its direct neighbors (whose
	// libraries it indexes), and searches run with TTL−1 — same
	// coverage, one hop less flooding.
	UseLocalIndices bool
}

// variantOptions translates the variant into pkg/search Engine options
// and installs its non-search side effects (updater benefit, trial
// tracking, the index radius). Called from the driver's Search hook
// while assembling the facade; sess is the session under construction
// (streams and network exist, the engine does not yet).
func (s *Sim) variantOptions(sess *driver.Session) []search.Option {
	v := s.cfg.Variant
	s.updater.Benefit = v.Benefit.benefit()

	var opts []search.Option
	switch v.Forward {
	case ForwardFlood:
		opts = append(opts, search.WithForward(core.Flood{}))
	case ForwardDirected2:
		// WithForward, not WithPolicy: the simulator's policy instances
		// share its deterministic rng and ledger state.
		opts = append(opts,
			search.WithForward(core.DirectedBFT{K: 2, Benefit: v.Benefit.benefit()}),
			search.WithLedgers(func(id topology.NodeID) *stats.Ledger { return s.ledgers[id] }))
	case ForwardRandom2:
		opts = append(opts, search.WithForward(core.RandomK{K: 2, Intn: sess.TopoStream().Intn}))
	default:
		panic(fmt.Sprintf("gnutella: unknown forward kind %d", v.Forward))
	}
	if len(v.IterativeDeepening) > 0 {
		opts = append(opts, search.WithDeepening(v.IterativeDeepening, v.DeepeningTimeout))
	}
	if v.TrialPeriodHours > 0 {
		s.trials = &core.TrialTracker{
			Threshold: v.TrialPeriodHours * 3600,
			Benefit:   v.Benefit.benefit(),
			Updater:   s.updater,
		}
	}
	if v.UseLocalIndices {
		ix := core.IndexFunc(func(at topology.NodeID, key core.Key) []topology.NodeID {
			var holders []topology.NodeID
			for _, nb := range sess.Network().Out(at) {
				if sess.IsOnline(nb) && s.users[nb].Has(key) {
					holders = append(holders, nb)
				}
			}
			return holders
		})
		s.indexRadius = ix.Radius()
		opts = append(opts, search.WithIndex(ix))
	}
	return opts
}

// applyUpdate dispatches the reconfiguration to the selected regime.
func (s *Sim) applyUpdate(id topology.NodeID) {
	switch s.cfg.Variant.Update {
	case SymmetricUpdate:
		rep := s.updater.Reconfigure((*updateEnv)(s), id)
		if rep.Changed() {
			s.met.Reconfigurations++
			s.sess.Emit(trace.Event{Kind: trace.KindReconfig, Node: id, N: len(rep.Accepted) + len(rep.Evicted)})
		}
		if s.trials != nil {
			// Each acceptor hosted our node without prior statistics;
			// the relationship is on probation.
			for _, host := range rep.Accepted {
				s.trials.Begin(s.sess.Now(), host, id)
			}
		}
	case AsymmetricUpdate:
		// Algo 3: unilateral outgoing-list re-targeting. The network
		// was built symmetric for the default regime, so the ablation
		// uses a dedicated asymmetric network (see New).
		desired := core.PlanAsymmetric(s.ledgers[id], s.updater.Benefit, s.cfg.Neighbors,
			s.sess.Network().Node(id).Out.IDs(),
			func(p topology.NodeID) bool { return p != id && s.sess.IsOnline(p) })
		added, removed := core.ApplyOutList(s.sess.Network(), id, desired)
		s.reqCount[id] = 0
		if len(added) > 0 || len(removed) > 0 {
			s.met.Reconfigurations++
		}
	default:
		panic(fmt.Sprintf("gnutella: unknown update mode %d", s.cfg.Variant.Update))
	}
}
