package core

import "repro/internal/topology"

// Index is the Local Indices technique of [10], which the paper lists
// as orthogonal to dynamic reconfiguration: "each node maintains an
// index over the data of all peers within r hops of itself, allowing
// each search to terminate after L−r hops". A visited node consults its
// index and answers *on behalf of* the indexed peers, so the flood can
// stop r hops short of the nominal depth with unchanged coverage.
//
// Implementations may be exact (metadata replicas, as in [10]) or
// approximate (Bloom digests from internal/digest; false positives then
// surface as holders that fail the subsequent fetch).
type Index interface {
	// Holders returns the peers within the index radius of node `at`
	// that (claim to) hold key — excluding `at` itself, whose local
	// content the cascade checks directly.
	Holders(at topology.NodeID, key Key) []topology.NodeID
	// Radius returns the hop radius the index covers; callers shorten
	// the search TTL by this much.
	Radius() int
}

// IndexFunc adapts a function to the Index interface with radius 1 (the
// common neighbor-index case).
type IndexFunc func(at topology.NodeID, key Key) []topology.NodeID

// Holders implements Index.
func (f IndexFunc) Holders(at topology.NodeID, key Key) []topology.NodeID { return f(at, key) }

// Radius implements Index.
func (IndexFunc) Radius() int { return 1 }

// indexResults emits results for the index holders visible from node
// `at`, deduplicating holders across the whole query (several visited
// nodes may index the same holder) via the scratch's epoch-stamped
// answered set. It reports whether any new result was produced.
// replyDelay is the reverse-route delay from `at` to the origin; an
// indexed answer costs one extra hop to reach the holder beyond the
// indexing node, which the delay hook charges.
func (c *Cascade) indexResults(q *Query, out *Outcome, s *Scratch,
	at topology.NodeID, hops int, now, replyDelay float64, delay DelayFunc) bool {
	found := false
	for _, h := range c.Index.Holders(at, q.Key) {
		if h == q.Origin {
			continue
		}
		slot := s.slot(h)
		if slot.idxEpoch == s.epoch {
			continue
		}
		slot.idxEpoch = s.epoch
		found = true
		total := now + replyDelay
		if h != at {
			total += delay(at, h) // indexing node pinged the holder
		}
		res := Result{Holder: h, Hops: hops + 1, Delay: total}
		out.Results = append(out.Results, res)
		if len(out.Results) == 1 || total < out.FirstResultDelay {
			out.FirstResultDelay = total
		}
		if c.OnResult != nil {
			c.OnResult(res)
		}
		if q.MaxResults > 0 && len(out.Results) >= q.MaxResults {
			break
		}
	}
	return found
}
