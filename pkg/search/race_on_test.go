//go:build race

package search_test

// raceEnabled reports that the race detector instruments this build;
// allocation-count assertions are meaningless under it.
const raceEnabled = true
