package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// synthCells builds n cells whose output is a pure function of
// (experiment, name, seed), with a seed-dependent sleep so completion
// order differs from submission order under concurrency.
func synthCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cell%02d", i)
		cells[i] = Cell{
			Experiment: fmt.Sprintf("exp%d", i%3),
			Name:       name,
			Seed:       DeriveSeed(42, "synth", name),
			Run: func(ctx context.Context, seed uint64) (any, error) {
				time.Sleep(time.Duration(seed%7) * time.Millisecond)
				return map[string]uint64{"out": seed*2 + 1}, nil
			},
		}
	}
	return cells
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	marshal := func(workers int) []byte {
		rs, err := Run(context.Background(), synthCells(40), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := marshal(1)
	for _, w := range []int{2, 8, 64} {
		if got := marshal(w); string(got) != string(one) {
			t.Fatalf("workers=%d results differ from workers=1:\n%s\nvs\n%s", w, got, one)
		}
	}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	cells := synthCells(20)
	rs, err := Run(context.Background(), cells, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(rs), len(cells))
	}
	for i, r := range rs {
		if r.Cell != cells[i].Name || r.Experiment != cells[i].Experiment {
			t.Fatalf("result %d is %s/%s, want %s/%s", i, r.Experiment, r.Cell,
				cells[i].Experiment, cells[i].Name)
		}
		if r.Err != "" || r.Attempts != 1 {
			t.Fatalf("result %d: err=%q attempts=%d", i, r.Err, r.Attempts)
		}
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	var flakyAttempts atomic.Int32
	cells := []Cell{
		{Experiment: "e", Name: "ok", Seed: 1, Run: func(ctx context.Context, seed uint64) (any, error) {
			return "fine", nil
		}},
		{Experiment: "e", Name: "always-panics", Seed: 2, Run: func(ctx context.Context, seed uint64) (any, error) {
			panic("boom")
		}},
		{Experiment: "e", Name: "flaky", Seed: 3, Run: func(ctx context.Context, seed uint64) (any, error) {
			if flakyAttempts.Add(1) == 1 {
				panic("first attempt only")
			}
			return "recovered", nil
		}},
		{Experiment: "e", Name: "errors", Seed: 4, Run: func(ctx context.Context, seed uint64) (any, error) {
			return nil, errors.New("model rejected config")
		}},
	}
	rs, err := Run(context.Background(), cells, Options{Workers: 2, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != "" || rs[0].Value != "fine" {
		t.Fatalf("healthy cell disturbed: %+v", rs[0])
	}
	if rs[1].Err == "" || !strings.Contains(rs[1].Err, "panicked: boom") || rs[1].Attempts != 3 {
		t.Fatalf("panicking cell: %+v", rs[1])
	}
	if rs[1].Stack == "" {
		t.Fatal("panicking cell recorded no stack")
	}
	if rs[2].Err != "" || rs[2].Value != "recovered" || rs[2].Attempts != 2 {
		t.Fatalf("flaky cell: %+v", rs[2])
	}
	if rs[3].Err == "" || rs[3].Attempts != 3 {
		t.Fatalf("erroring cell: %+v", rs[3])
	}
	if Failed(rs) != 2 {
		t.Fatalf("Failed = %d, want 2", Failed(rs))
	}
	if err := FirstError(rs); err == nil || !strings.Contains(err.Error(), "always-panics") {
		t.Fatalf("FirstError = %v", err)
	}
}

func TestCancellationSkipsPendingCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := make([]Cell, 10)
	for i := range cells {
		i := i
		cells[i] = Cell{Experiment: "e", Name: fmt.Sprintf("c%d", i), Seed: uint64(i + 1),
			Run: func(ctx context.Context, seed uint64) (any, error) {
				if i == 0 {
					cancel()
				}
				return i, nil
			}}
	}
	rs, err := Run(ctx, cells, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs[0].Err != "" {
		t.Fatalf("first cell should have completed: %+v", rs[0])
	}
	skipped := 0
	for _, r := range rs[1:] {
		if r.Err == skippedErr {
			skipped++
		}
	}
	// With one worker the feed loop notices cancellation after at most
	// one more cell is handed out.
	if skipped < len(cells)-2 {
		t.Fatalf("only %d cells skipped after cancel: %+v", skipped, rs)
	}
}

func TestCanceledRunDoesNotRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int32
	cells := []Cell{{Experiment: "e", Name: "c", Seed: 1,
		Run: func(ctx context.Context, seed uint64) (any, error) {
			attempts.Add(1)
			cancel()
			panic("late panic")
		}}}
	rs, _ := Run(ctx, cells, Options{Workers: 1, Retries: 5})
	if got := attempts.Load(); got != 1 {
		t.Fatalf("cell retried %d times into a canceled run", got)
	}
	if rs[0].Err == "" {
		t.Fatalf("canceled cell reported success: %+v", rs[0])
	}
}

func TestProgressReporting(t *testing.T) {
	var mu []Progress
	cells := synthCells(12)
	_, err := Run(context.Background(), cells, Options{Workers: 4,
		OnProgress: func(p Progress) { mu = append(mu, p) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != len(cells) {
		t.Fatalf("got %d progress events for %d cells", len(mu), len(cells))
	}
	for i, p := range mu {
		if p.Done != i+1 || p.Total != len(cells) {
			t.Fatalf("event %d: %+v", i, p)
		}
		if p.ETA < 0 || p.Elapsed < 0 {
			t.Fatalf("negative timing: %+v", p)
		}
	}
	if last := mu[len(mu)-1]; last.Done != last.Total || last.ETA != 0 {
		t.Fatalf("final event: %+v", last)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "fig1", "static")
	if a != DeriveSeed(1, "fig1", "static") {
		t.Fatal("DeriveSeed not stable")
	}
	distinct := map[uint64]string{}
	for _, labels := range [][]string{
		{"fig1", "static"}, {"fig1", "dynamic"}, {"fig2", "static"},
		{"fig1static"}, {"", "fig1static"}, {},
	} {
		s := DeriveSeed(1, labels...)
		if s == 0 {
			t.Fatalf("DeriveSeed(%v) = 0", labels)
		}
		if prev, dup := distinct[s]; dup {
			t.Fatalf("collision between %v and %q", labels, prev)
		}
		distinct[s] = strings.Join(labels, "|")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
	// Length prefixing keeps arbitrary label contents unambiguous.
	if DeriveSeed(1, "a\xff", "b") == DeriveSeed(1, "a", "\xffb") {
		t.Fatal("label boundaries ambiguous")
	}
	if DeriveSeed(1, "ab", "") == DeriveSeed(1, "a", "b") {
		t.Fatal("label boundaries ambiguous")
	}
}

func TestWriteArtifacts(t *testing.T) {
	rs, err := Run(context.Background(), synthCells(9), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	info := RunInfo{Name: "synth-run", BaseSeed: 42, Workers: 3,
		Labels: map[string]string{"scale": "ci"}, WallSeconds: 1.5}
	dir, err := WriteArtifacts(root, info, rs)
	if err != nil {
		t.Fatal(err)
	}
	cellsA, err := os.ReadFile(filepath.Join(dir, "cells.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal(cellsA, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rs) || decoded[0].Cell != rs[0].Cell || decoded[0].Seed != rs[0].Seed {
		t.Fatalf("cells.json round trip mismatch: %+v", decoded)
	}

	var summary RunInfo
	data, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Cells != 9 || summary.Failed != 0 || len(summary.Experiments) != 3 {
		t.Fatalf("summary aggregates wrong: %+v", summary)
	}
	if summary.Labels["scale"] != "ci" || summary.BaseSeed != 42 {
		t.Fatalf("summary metadata lost: %+v", summary)
	}

	// cells.json must not depend on wall time or worker count: rerun
	// with different workers, byte-compare.
	rs2, err := Run(context.Background(), synthCells(9), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteArtifacts(root, RunInfo{Name: "synth-run2"}, rs2); err != nil {
		t.Fatal(err)
	}
	cellsB, err := os.ReadFile(filepath.Join(root, "synth-run2", "cells.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cellsA) != string(cellsB) {
		t.Fatalf("cells.json differs across worker counts:\n%s\nvs\n%s", cellsA, cellsB)
	}
}

func TestWriteArtifactsRejectsBadNames(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"", "..", "../escape", "a/../../escape", "/abs/path"} {
		if _, err := WriteArtifacts(root, RunInfo{Name: name}, nil); err == nil {
			t.Fatalf("run name %q accepted", name)
		}
	}
	// Nested names inside the root are fine.
	if _, err := WriteArtifacts(root, RunInfo{Name: "sweep/theta4"}, nil); err != nil {
		t.Fatalf("nested run name rejected: %v", err)
	}
}

func TestRunEmptyCellList(t *testing.T) {
	rs, err := Run(context.Background(), nil, Options{Workers: 4})
	if err != nil || len(rs) != 0 {
		t.Fatalf("empty run: %v, %v", rs, err)
	}
}
