package topology

import (
	"sync"
	"sync/atomic"
)

// SnapshotStore serves immutable CSR snapshots of one mutable Network
// to concurrent readers while a writer re-freezes behind their backs —
// the zero-downtime replacement for the stop-the-world FreezeInto
// pattern, where every reader had to drain before an epoch could turn
// over.
//
// The store is a double buffer generalized by epoch-based reclamation:
//
//   - Readers call Acquire, which pins the current epoch's *CSR behind
//     a per-epoch reference count, run any number of cascades on it,
//     and Release the pin. A pinned snapshot is immutable for the whole
//     pin lifetime, no matter how many epochs the writer publishes
//     meanwhile — a cascade can never observe a half-frozen graph.
//   - The writer mutates the build-side Network (directly, or through
//     delta batches via Apply) and calls Publish, which freezes the
//     network into an off-duty buffer (recycled from a fully-drained
//     retired epoch when one exists, freshly allocated otherwise) and
//     installs it with one atomic pointer swap. The swap is the
//     linearization point: queries pinned before it run to completion
//     on the old adjacency, queries pinned after it see the new one,
//     and no query sees anything in between.
//   - A retired epoch's buffer is reclaimed (pushed onto the free
//     list for the next Freeze to reuse) only when its last pin drains.
//     At steady state — readers shorter than the inter-publish interval
//     — exactly two buffers alternate and publishing allocates nothing
//     beyond the small per-epoch header; a long-held pin keeps its
//     epoch's buffer out of rotation (the store grows a third buffer)
//     rather than blocking the writer or, worse, being overwritten
//     under the reader.
//
// Writer methods (Publish, Apply) serialize on an internal mutex, so
// multiple writer goroutines are safe, but the intended shape is a
// single writer: the mutation of the build-side Network itself is the
// caller's to serialize, and interleaved half-applied batches from two
// writers would publish half-applied epochs. Readers never take the
// writer lock — Acquire/Release are a handful of atomic operations —
// and the writer never waits for readers.
type SnapshotStore struct {
	net *Network
	cur atomic.Pointer[storeEpoch]

	// mu serializes writers and guards free. Readers touch it only on
	// the reclamation edge (the last Release of a retired epoch).
	mu   sync.Mutex
	free []*CSR

	// allocs counts CSR buffers ever allocated (see Buffers).
	allocs atomic.Int64
}

// storeEpoch is one published snapshot plus its reclamation state. The
// header is allocated fresh per publish and never reused, so an epoch
// pointer read from the store can never be confused with a later
// epoch (no ABA on the Acquire re-check).
type storeEpoch struct {
	store *SnapshotStore
	csr   *CSR
	seq   uint64
	// refs counts pins plus one store-held reference while the epoch
	// is current; the store's reference is dropped at retirement, so
	// refs reaching zero means "retired and drained".
	refs atomic.Int64
	// retired flips once, before the store's reference is dropped;
	// recycled guards the buffer handoff so the transient
	// increment/decrement of a racing Acquire re-check cannot push one
	// buffer onto the free list twice.
	retired  atomic.Bool
	recycled atomic.Bool
}

// Pin is one reader's lease on an epoch: the snapshot it may search
// and the obligation to Release. The zero Pin is invalid; Pins are
// value types (acquiring allocates nothing) and must not be copied
// into two owners — exactly one Release per Acquire.
type Pin struct {
	ep *storeEpoch
}

// Graph returns the pinned snapshot. Valid until Release.
func (p Pin) Graph() *CSR { return p.ep.csr }

// Epoch returns the pinned epoch's sequence number (1 for the epoch
// NewSnapshotStore froze, +1 per Publish).
func (p Pin) Epoch() uint64 { return p.ep.seq }

// Release drops the pin. The last release of a retired epoch recycles
// its buffer into the writer's free list. Release must be called
// exactly once; the Pin is dead afterwards.
func (p Pin) Release() { p.ep.unref() }

// NewSnapshotStore freezes net into epoch 1 and returns the store
// serving it. The store takes over snapshot production for net: the
// caller keeps mutating net (it remains the build representation) but
// must route all freezing through Publish so buffer recycling stays
// sound — a concurrent caller-side FreezeInto onto a CSR the store
// owns would corrupt pinned readers.
func NewSnapshotStore(net *Network) *SnapshotStore {
	s := &SnapshotStore{net: net}
	ep := &storeEpoch{store: s, csr: net.Freeze(), seq: 1}
	ep.refs.Store(1) // the store's own reference
	s.allocs.Store(1)
	s.cur.Store(ep)
	return s
}

// Network returns the build-side network. Only the writer may mutate
// it, and mutations are invisible to readers until Publish.
func (s *SnapshotStore) Network() *Network { return s.net }

// Len returns the node count (fixed for the store's lifetime).
func (s *SnapshotStore) Len() int { return s.net.Len() }

// Epoch returns the current epoch's sequence number.
func (s *SnapshotStore) Epoch() uint64 { return s.cur.Load().seq }

// Acquire pins the current epoch and returns the lease. The
// increment-then-re-check loop closes the race with a concurrent
// Publish: if the epoch pointer moved between the load and the
// increment, the pin may have landed on a retired (even drained)
// epoch, so it is dropped and the acquire retried on the fresh
// pointer. The transient reference is harmless — unref recycles a
// retired epoch's buffer at most once — and the loop runs at most a
// handful of times even under a publish storm, because each retry
// re-reads a pointer that a finite number of publishes can move.
func (s *SnapshotStore) Acquire() Pin {
	for {
		ep := s.cur.Load()
		ep.refs.Add(1)
		if s.cur.Load() == ep {
			return Pin{ep: ep}
		}
		ep.unref()
	}
}

// unref drops one reference; the reference that retires *and* drains
// the epoch hands its buffer to the free list. The store's own
// reference (dropped in Publish after retired flips) guarantees that
// whoever takes refs to zero observes retired == true.
func (ep *storeEpoch) unref() {
	if ep.refs.Add(-1) == 0 && ep.retired.Load() &&
		ep.recycled.CompareAndSwap(false, true) {
		st := ep.store
		st.mu.Lock()
		st.free = append(st.free, ep.csr)
		st.mu.Unlock()
	}
}

// Publish freezes the network's current adjacency into the next epoch
// and atomically swaps it in, returning the new sequence number. The
// freeze itself runs on the writer's goroutine against an off-duty
// buffer, so readers are never paused: the only reader-visible effect
// is the pointer swap at the end.
func (s *SnapshotStore) Publish() uint64 {
	s.mu.Lock()
	seq, old := s.publishLocked()
	s.mu.Unlock()
	old.unref() // drop the store's reference; recycles if already drained
	return seq
}

// Apply applies one delta batch to the build-side network and
// publishes the resulting epoch — the single call a churn consumer
// needs. Batch application and the freeze happen under one writer
// critical section, so concurrent Apply calls never publish an epoch
// holding half of another call's batch. It returns the new epoch's
// sequence number.
func (s *SnapshotStore) Apply(ds []Delta) uint64 {
	s.mu.Lock()
	s.net.ApplyAll(ds)
	seq, old := s.publishLocked()
	s.mu.Unlock()
	old.unref()
	return seq
}

// publishLocked is the freeze-and-swap core, called with mu held. It
// returns the new sequence number plus the retired epoch, whose
// store-held reference the caller must drop *after* releasing mu —
// unref's reclamation edge takes mu itself, and dropping the reference
// inside the critical section would deadlock exactly when no reader
// holds the retired epoch (the common case).
func (s *SnapshotStore) publishLocked() (uint64, *storeEpoch) {
	var buf *CSR
	if n := len(s.free); n > 0 {
		buf, s.free = s.free[n-1], s.free[:n-1]
	} else {
		s.allocs.Add(1)
	}
	csr := s.net.FreezeInto(buf)
	old := s.cur.Load()
	ep := &storeEpoch{store: s, csr: csr, seq: old.seq + 1}
	ep.refs.Store(1)
	s.cur.Store(ep) // linearization point: new pins land here
	old.retired.Store(true)
	return ep.seq, old
}

// Buffers reports how many CSR buffers the store owns in total: the
// live epoch's, those of retired-but-still-pinned epochs, and the free
// list. The store never frees a buffer, so this equals the number of
// publishes that found the free list empty, plus the initial freeze.
// Two is the steady state (the double buffer proper); the excess over
// two measures how far behind the slowest reader has fallen —
// observability for the reclamation tests and serving telemetry.
func (s *SnapshotStore) Buffers() int { return int(s.allocs.Load()) }
