// Package searchclient is the thin HTTP/JSON client for a running
// dsearchd cluster daemon — the public companion to pkg/search: where
// search is the in-process engine API, searchclient talks to the
// long-running service (cmd/dsearchd) that owns engine lifecycle,
// membership and serving.
//
// The types in this package are the wire contract — the daemon
// marshals exactly these structs, so any other consumer (curl, a
// dashboard) can rely on the same JSON shapes.
//
// The client is resilient by default: transient failures (connection
// errors, HTTP 503/429) retry a bounded number of times with jittered
// exponential backoff, honoring both the request context's deadline
// and any Retry-After the daemon sends, and a small circuit breaker
// fails fast once an endpoint has been unreachable long enough that
// retrying every caller is just load (any HTTP response, even an
// error, keeps the circuit closed). Non-2xx responses surface as
// *Error;
// Error.Temporary distinguishes "back off and retry" (a draining or
// paused daemon) from hard failures.
//
//	c := searchclient.New("127.0.0.1:7080")
//	resp, err := c.Query(ctx, searchclient.QueryRequest{Key: 42})
//	if err == nil && resp.Found() { ... }
package searchclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to one dsearchd process. Methods are safe for
// concurrent use (the underlying http.Client is; the retry and breaker
// state carry their own locks).
type Client struct {
	base string
	hc   *http.Client

	// maxRetries is how many times a failed attempt is retried (so a
	// call makes at most maxRetries+1 attempts); retryBase is the first
	// backoff, doubled per retry and jittered to [x/2, x].
	maxRetries int
	retryBase  time.Duration

	br *breaker

	jmu sync.Mutex
	jst uint64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client (custom timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry overrides the retry budget: maxRetries re-attempts after
// the first failure, starting at base backoff. WithRetry(0, 0)
// disables retrying entirely.
func WithRetry(maxRetries int, base time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = maxRetries
		c.retryBase = base
	}
}

// WithoutBreaker disables the circuit breaker (tests that hammer a
// deliberately dead endpoint and want every attempt on the wire).
func WithoutBreaker() Option {
	return func(c *Client) { c.br = nil }
}

// defaultTransport returns the client's tuned connection pool. The
// stdlib default keeps only 2 idle connections per host — a saturating
// caller (QueryBatchPipelined, or many goroutines sharing one Client)
// would churn through fresh TCP handshakes for every burst. Keep-alive
// reuse across sequential calls is part of the client's contract
// (asserted by test).
func defaultTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 128
	tr.MaxIdleConnsPerHost = 32
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// New returns a client for the daemon at addr ("host:port" or a full
// "http://..." base URL).
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:       strings.TrimSuffix(base, "/"),
		hc:         &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport()},
		maxRetries: 3,
		retryBase:  25 * time.Millisecond,
		br:         newBreaker(8, 500*time.Millisecond),
		jst:        uint64(time.Now().UnixNano()),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// QueryRequest is the body of POST /v1/query. Zero-valued fields
// defer to the daemon's configuration.
type QueryRequest struct {
	// Key is the content item searched for.
	Key uint64 `json:"key"`
	// TTL overrides the daemon's search depth when positive.
	TTL int `json:"ttl,omitempty"`
	// Policy names a pkg/search registry policy applied at the origin
	// hop of this query only; forwarding nodes keep their configured
	// policies (each live hop is autonomous). Empty uses the daemon's.
	Policy string `json:"policy,omitempty"`
	// Origin pins the originating node ID; nil lets the daemon pick a
	// local node round-robin. The node must be hosted by the daemon
	// receiving the request. If the pinned node is crashed, the daemon
	// reroutes to a live local node and marks the response Degraded.
	Origin *int `json:"origin,omitempty"`
	// TimeoutMillis bounds the hit-collection window; 0 uses the
	// daemon's default window.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
	// DeadlineMillis is a hard total budget for the request: the daemon
	// clamps the collection window to what remains of it and, if the
	// budget expires mid-collection, returns the hits gathered so far
	// marked Degraded instead of hanging. 0 means no budget beyond the
	// collection window.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
	// MaxHits ends collection early after that many hits (1 turns the
	// query into an existence probe that returns in a flood
	// round-trip); 0 collects for the full window.
	MaxHits int `json:"max_hits,omitempty"`
}

// Hit is one positive answer of a query.
type Hit struct {
	// Holder is the answering node; Hops the forward distance the
	// query traveled; Class the answering link's advertised bandwidth
	// class ("56K", "cable", "LAN").
	Holder int    `json:"holder"`
	Hops   int    `json:"hops"`
	Class  string `json:"class"`
}

// QueryResponse is the body answering POST /v1/query.
type QueryResponse struct {
	// Origin is the node that originated the search.
	Origin int `json:"origin"`
	// Hits lists the collected answers in arrival order.
	Hits []Hit `json:"hits"`
	// ElapsedMillis is the server-side collection time.
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Degraded marks a response the daemon knows may be incomplete:
	// the deadline budget cut collection short, the pinned origin was
	// crashed and the query was rerouted, the origin could not fan out
	// at all, or the failure detector currently suspects cluster
	// members. The hits are still valid — there may just be fewer than
	// a healthy cluster would have found.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReasons lists why, when Degraded ("deadline",
	// "origin-crashed", "no-fanout", "suspect-members",
	// "crashed-nodes").
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
}

// Found reports whether the query produced at least one hit.
func (r *QueryResponse) Found() bool { return len(r.Hits) > 0 }

// Degradation reasons carried in QueryResponse.DegradedReasons.
const (
	// ReasonDeadline: the deadline budget expired mid-collection.
	ReasonDeadline = "deadline"
	// ReasonOriginCrashed: the pinned origin was crashed; the query ran
	// from a substitute node.
	ReasonOriginCrashed = "origin-crashed"
	// ReasonNoFanout: the origin could not forward to any neighbor and
	// found nothing locally.
	ReasonNoFanout = "no-fanout"
	// ReasonSuspects: the failure detector currently suspects cluster
	// members, so parts of the overlay may not have been searched.
	ReasonSuspects = "suspect-members"
	// ReasonCrashedNodes: the answering process hosts crashed nodes.
	ReasonCrashedNodes = "crashed-nodes"
)

// MemberInfo describes one cluster member in GET /v1/cluster.
type MemberInfo struct {
	Name   string `json:"name"`
	HTTP   string `json:"http"`
	BaseID int    `json:"base_id"`
	Nodes  int    `json:"nodes"`
	// Status is the answering member's failure-detector verdict on
	// this member: "alive", "suspect" or "dead".
	Status string `json:"status,omitempty"`
}

// NodeInfo describes one locally hosted node.
type NodeInfo struct {
	ID     int `json:"id"`
	Degree int `json:"degree"`
	// Crashed marks a node currently fault-injected down.
	Crashed bool `json:"crashed,omitempty"`
}

// ClusterInfo is the body of GET /v1/cluster.
type ClusterInfo struct {
	// Self names the answering member; Epoch is its membership-view
	// version (monotone per process — it bumps on every view change).
	Self  string `json:"self"`
	Epoch uint64 `json:"epoch"`
	// State is the lifecycle state: "starting", "ready", "paused",
	// "draining" or "stopped".
	State string `json:"state"`
	// Members is the full membership view, sorted by name.
	Members []MemberInfo `json:"members"`
	// Suspects lists members the answering process currently suspects
	// or has evicted, sorted.
	Suspects []string `json:"suspects,omitempty"`
	// LocalNodes lists the answering member's nodes with their current
	// neighbor degrees.
	LocalNodes []NodeInfo `json:"local_nodes"`
}

// Stats is the body of GET /v1/stats: counter name to value.
type Stats map[string]uint64

// Error is a non-2xx daemon response.
type Error struct {
	// Status is the HTTP status code; Message the daemon's error text.
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("searchclient: %d %s", e.Status, e.Message)
}

// Temporary reports whether the failure is worth retrying: the daemon
// exists but is not admitting right now (503 while paused, draining or
// booting; 429 under shed). Hard client errors (4xx) are not.
func (e *Error) Temporary() bool {
	return e.Status == http.StatusServiceUnavailable ||
		e.Status == http.StatusTooManyRequests
}

// ErrCircuitOpen is returned (wrapped) while the client's circuit
// breaker is open: recent attempts all failed and the cooldown has not
// elapsed, so the call failed fast without touching the network.
var ErrCircuitOpen = errors.New("searchclient: circuit open")

// Query runs one search through the daemon.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.post(ctx, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cluster fetches the membership view.
func (c *Client) Cluster(ctx context.Context) (*ClusterInfo, error) {
	var info ClusterInfo
	if err := c.get(ctx, "/v1/cluster", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the counter snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	if err := c.get(ctx, "/v1/stats", &s); err != nil {
		return nil, err
	}
	return s, nil
}

// Pause stops query admission (in-flight queries finish; new ones are
// rejected until Resume).
func (c *Client) Pause(ctx context.Context) error {
	return c.post(ctx, "/v1/control/pause", nil, nil)
}

// Resume re-opens query admission after Pause.
func (c *Client) Resume(ctx context.Context) error {
	return c.post(ctx, "/v1/control/resume", nil, nil)
}

// Reconfig triggers one Algo 5 neighborhood reconfiguration on every
// node the daemon hosts.
func (c *Client) Reconfig(ctx context.Context) error {
	return c.post(ctx, "/v1/control/reconfig", nil, nil)
}

// Crash fault-injects one locally hosted node down: the daemon blocks
// its traffic and routes around it until Restart.
func (c *Client) Crash(ctx context.Context, node int) error {
	return c.post(ctx, "/v1/control/crash", map[string]int{"node": node}, nil)
}

// Restart lifts a Crash.
func (c *Client) Restart(ctx context.Context, node int) error {
	return c.post(ctx, "/v1/control/restart", map[string]int{"node": node}, nil)
}

// Ready reports nil when the daemon admits queries (GET /v1/readyz).
func (c *Client) Ready(ctx context.Context) error {
	return c.get(ctx, "/v1/readyz", nil)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	var data []byte
	if body != nil {
		// Pooled encode buffer: do() only reads data and returns before
		// the buffer goes back to the pool.
		buf := readBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer readBufPool.Put(buf)
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return err
		}
		data = buf.Bytes()
	}
	return c.do(ctx, http.MethodPost, path, data, out)
}

// errBody is the daemon's error envelope: {"error": "..."}.
type errBody struct {
	Error string `json:"error"`
}

// retryable reports whether err is worth another attempt: transport
// failures and Temporary daemon errors are; context expiry and hard
// HTTP errors are not.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *Error
	if errors.As(err, &he) {
		return he.Temporary()
	}
	return true // transport-level failure: connection refused, reset, ...
}

// do runs one call with retry, backoff and the circuit breaker. The
// body is kept as bytes so every attempt rebuilds a fresh request.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 0; ; attempt++ {
		if bErr := c.allow(); bErr != nil {
			return bErr
		}
		err = c.once(ctx, method, path, body, out)
		c.record(err)
		if err == nil || attempt >= c.maxRetries || !retryable(err) {
			return err
		}
		// Jittered exponential backoff, stretched to any Retry-After the
		// daemon sent, cut short by the request context.
		wait := c.jitter(c.retryBase << attempt)
		var he *Error
		if errors.As(err, &he) && he.RetryAfter > wait {
			wait = he.RetryAfter
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("searchclient: %w (last attempt: %v)", ctx.Err(), err)
		case <-timer.C:
		}
	}
}

// readBufPool recycles response-read buffers across calls: a batch
// response can run to megabytes, and io.ReadAll's grow-by-doubling
// garbage on every call is the client's biggest allocation source.
var readBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// once is a single request/response cycle.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf := readBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer readBufPool.Put(buf)
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return err
	}
	data := buf.Bytes()
	if resp.StatusCode/100 != 2 {
		var eb errBody
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		he := &Error{Status: resp.StatusCode, Message: msg}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return he
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("searchclient: decode %s response: %w", path, err)
	}
	return nil
}

// jitter maps d to a uniform duration in [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.jmu.Lock()
	c.jst += 0x9e3779b97f4a7c15
	z := c.jst
	c.jmu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d/2 + time.Duration(float64(z>>11)/(1<<53)*float64(d/2))
}

// allow consults the breaker before an attempt.
func (c *Client) allow() error {
	if c.br == nil {
		return nil
	}
	if !c.br.allow() {
		return fmt.Errorf("%w (endpoint %s)", ErrCircuitOpen, c.base)
	}
	return nil
}

// record feeds an attempt's outcome to the breaker. Any HTTP response
// counts as a success — even a 503 proves the endpoint is up and
// serving; the breaker guards against unreachable endpoints, not
// admission refusals (retry handles those).
func (c *Client) record(err error) {
	if c.br == nil {
		return
	}
	var he *Error
	if err == nil || errors.As(err, &he) {
		c.br.success()
		return
	}
	c.br.failure()
}

// breaker is a minimal three-state circuit breaker: closed counts
// consecutive failures; at threshold it opens and fails fast for
// cooldown; then a single half-open probe either closes it or reopens
// the cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openUntil time.Time
	probing   bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(b.openUntil) {
		return false
	}
	// Cooldown over: admit one probe, hold everyone else.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.probing = false
}

func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		b.probing = false
		b.failures = 0
	}
}
