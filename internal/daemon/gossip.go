package daemon

import (
	"sort"
	"sync"
)

// Member describes one dsearchd process in the membership protocol.
type Member struct {
	// Name is the process's cluster-unique identity.
	Name string `json:"name"`
	// HTTP is the process's control-plane base address (host:port).
	HTTP string `json:"http"`
	// BaseID and Nodes give the dense live-node ID range this process
	// hosts: [BaseID, BaseID+Nodes).
	BaseID int `json:"base_id"`
	Nodes  int `json:"nodes"`
	// NodeAddrs lists per-local-node envelope listener addresses in
	// local-index order (TCP transport; empty for in-process fabrics).
	NodeAddrs []string `json:"node_addrs,omitempty"`
	// Beat is the member's heartbeat counter: its own liveness tick,
	// as last observed by whoever holds this entry. Higher wins on
	// merge, so refreshed entries displace stale ones.
	Beat uint64 `json:"beat"`
}

// View is a membership view keyed by member name. Views travel on the
// wire (POST /v1/gossip bodies and responses) as plain JSON objects.
type View map[string]Member

// Clone returns an independent copy.
func (v View) Clone() View {
	out := make(View, len(v))
	for k, m := range v {
		out[k] = m
	}
	return out
}

// Merge folds other into v: unknown members are adopted, known ones
// are replaced when the incoming heartbeat is strictly newer. It
// reports whether v changed.
func (v View) Merge(other View) bool {
	changed := false
	for name, m := range other {
		cur, ok := v[name]
		if !ok || m.Beat > cur.Beat {
			v[name] = m
			changed = true
		}
	}
	return changed
}

// Gossip is the anti-entropy membership state of one process: its own
// member entry plus everything it has heard. Bootstrap is a seed list
// of peer HTTP addresses (held by the Server, not here); steady state
// is periodic push-pull peer exchange — each round the process picks a
// few random members from its view, sends them its whole view and
// merges whatever they answer. Every view change bumps Version, the
// cluster epoch surfaced on GET /v1/cluster.
//
// The structure is deliberately transport-free: the convergence and
// partition/rejoin property tests drive Exchange directly, and the
// Server wires it to HTTP.
type Gossip struct {
	mu      sync.Mutex
	self    string
	view    View
	version uint64
	// fd is the heartbeat failure detector (detector.go): Tick drives
	// its round clock, merges consult its eviction tombstones.
	fd fdState
}

// NewGossip starts a membership view containing only self, with the
// default failure-detector thresholds (the detector stays inert until
// something calls Tick).
func NewGossip(self Member) *Gossip {
	g := &Gossip{
		self:    self.Name,
		view:    View{self.Name: self},
		version: 1,
		fd:      newFDState(DefaultDetection()),
	}
	return g
}

// Self returns the current self entry.
func (g *Gossip) Self() Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view[g.self]
}

// Beat advances the self heartbeat, refreshing this process's own
// entry so peers' merges keep it newest-wins fresh.
func (g *Gossip) Beat() {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.view[g.self]
	m.Beat++
	g.view[g.self] = m
	g.version++
}

// UpdateSelf mutates the self entry (a node listener that just bound,
// for instance) and bumps its heartbeat.
func (g *Gossip) UpdateSelf(f func(*Member)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.view[g.self]
	f(&m)
	m.Beat++
	g.view[g.self] = m
	g.version++
}

// Exchange is one push-pull step from the receiving side: merge the
// remote view, return a snapshot of the (possibly updated) local view
// for the caller to merge in turn.
func (g *Gossip) Exchange(remote View) View {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.view.Merge(g.filterTombstoned(remote)) {
		g.version++
	}
	return g.view.Clone()
}

// Absorb merges a view learned out-of-band (a gossip response).
func (g *Gossip) Absorb(remote View) {
	g.Exchange(remote)
}

// Snapshot returns a copy of the current view.
func (g *Gossip) Snapshot() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Clone()
}

// Members returns the view sorted by name.
func (g *Gossip) Members() []Member {
	v := g.Snapshot()
	out := make([]Member, 0, len(v))
	for _, m := range v {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Version returns the cluster epoch: a counter bumped by every local
// view change (including own heartbeats), so it is monotone per
// process, not globally agreed.
func (g *Gossip) Version() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

// Targets picks up to fanout distinct random members other than self,
// drawing indices from intn.
func (g *Gossip) Targets(fanout int, intn func(int) int) []Member {
	peers := g.Members()
	// Drop self.
	for i, m := range peers {
		if m.Name == g.self {
			peers = append(peers[:i], peers[i+1:]...)
			break
		}
	}
	if fanout >= len(peers) {
		return peers
	}
	// Partial Fisher-Yates over the prefix.
	for i := 0; i < fanout; i++ {
		j := i + intn(len(peers)-i)
		peers[i], peers[j] = peers[j], peers[i]
	}
	return peers[:fanout]
}
