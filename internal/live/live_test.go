package live

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// cluster spins up n in-process nodes on a shared ChanTransport.
func cluster(t *testing.T, n, neighbors, ttl, threshold int) ([]*Node, *ChanTransport) {
	t.Helper()
	tr := NewChanTransport()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Config{
			ID:                topology.NodeID(i),
			Neighbors:         neighbors,
			TTL:               ttl,
			Transport:         tr,
			Store:             MapStore{},
			Class:             netsim.Cable,
			ReconfigThreshold: threshold,
		})
		tr.Attach(nodes[i])
		nodes[i].Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return nodes, tr
}

// link wires a symmetric edge for bootstrap.
func link(a, b *Node) {
	a.AddNeighbor(b.ID())
	b.AddNeighbor(a.ID())
}

func TestMapStore(t *testing.T) {
	s := MapStore{}
	if s.Has(1) {
		t.Fatal("empty store has key")
	}
	s.Add(1)
	if !s.Has(1) {
		t.Fatal("store lost key")
	}
}

func TestSearchFindsDirectNeighbor(t *testing.T) {
	nodes, _ := cluster(t, 3, 4, 2, 0)
	nodes[1].cfg.Store.(MapStore).Add(42)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	hits := nodes[0].Search(42, 200*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].Hops != 1 {
		t.Fatalf("hops = %d", hits[0].Hops)
	}
	if hits[0].Class != netsim.Cable {
		t.Fatalf("class = %v", hits[0].Class)
	}
}

func TestSearchTraversesMultipleHops(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 3, 0)
	// Chain 0-1-2-3; content at 3 (three hops away).
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(7)
	hits := nodes[0].Search(7, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 3 || hits[0].Hops != 3 {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestSearchRespectsTTL(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(7)
	if hits := nodes[0].Search(7, 200*time.Millisecond); len(hits) != 0 {
		t.Fatalf("TTL 2 found a 3-hop holder: %+v", hits)
	}
}

func TestSearchMiss(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 2, 0)
	link(nodes[0], nodes[1])
	if hits := nodes[0].Search(999, 100*time.Millisecond); len(hits) != 0 {
		t.Fatalf("miss returned hits: %+v", hits)
	}
}

func TestSearchCollectsMultipleHolders(t *testing.T) {
	nodes, _ := cluster(t, 4, 4, 1, 0)
	for i := 1; i < 4; i++ {
		link(nodes[0], nodes[i])
		nodes[i].cfg.Store.(MapStore).Add(5)
	}
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 3 {
		t.Fatalf("expected 3 holders, got %+v", hits)
	}
}

func TestServingNodeDoesNotForward(t *testing.T) {
	nodes, _ := cluster(t, 3, 4, 3, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[2].cfg.Store.(MapStore).Add(5)
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("propagation past a serving node: %+v", hits)
	}
}

func TestStatisticsAccumulate(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 1, 0)
	link(nodes[0], nodes[1])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[0].Search(5, 200*time.Millisecond)
	var benefit float64
	nodes[0].do(func(st *state) {
		if r := st.ledger.Get(1); r != nil {
			benefit = r.Benefit
		}
	})
	// One result, R=1, cable weight 2 => benefit 2.
	if benefit != 2 {
		t.Fatalf("benefit = %v, want 2", benefit)
	}
}

func TestReconfigureInvitesBestPeer(t *testing.T) {
	// Capacity 2 so the relay node 1 can hold both edges of the chain
	// 0-1-2; node 2 holds the content two hops away.
	nodes, _ := cluster(t, 4, 2, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[2].cfg.Store.(MapStore).Add(9)
	hits := nodes[0].Search(9, 300*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 2 {
		t.Fatalf("setup search failed: %+v", hits)
	}
	nodes[0].Reconfigure()
	deadline := time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[0], 2) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("node 0 never adopted the discovered holder: %v", nodes[0].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
	// The invited node must now list 0 as a neighbor too.
	deadline = time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[2], 0) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("invited node did not add the inviter: %v", nodes[2].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// hasNeighbor reports whether node n currently lists id.
func hasNeighbor(n *Node, id topology.NodeID) bool {
	for _, v := range n.Neighbors() {
		if v == id {
			return true
		}
	}
	return false
}

func TestEvictionResetsStatistics(t *testing.T) {
	nodes, _ := cluster(t, 2, 4, 2, 0)
	link(nodes[0], nodes[1])
	nodes[1].cfg.Store.(MapStore).Add(5)
	nodes[0].Search(5, 200*time.Millisecond)
	// Node 0 evicts node 1 by hand.
	nodes[0].do(func(st *state) {
		removeNeighbor(st, 1)
	})
	nodes[1].Deliver(Envelope{Type: MsgEvict, From: 0})
	time.Sleep(50 * time.Millisecond)
	var hasStats bool
	nodes[1].do(func(st *state) { hasStats = st.ledger.Get(0) != nil })
	if hasStats {
		t.Fatal("evicted node kept statistics about evictor")
	}
	for _, v := range nodes[1].Neighbors() {
		if v == 0 {
			t.Fatal("evicted edge still present")
		}
	}
}

func TestAutomaticReconfigurationAfterThreshold(t *testing.T) {
	nodes, _ := cluster(t, 3, 2, 2, 2) // θ=2, capacity 2
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	nodes[2].cfg.Store.(MapStore).Add(9)
	nodes[0].Search(9, 200*time.Millisecond)
	nodes[0].Search(9, 200*time.Millisecond) // second search crosses θ
	deadline := time.After(2 * time.Second)
	for {
		if hasNeighbor(nodes[0], 2) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("automatic reconfiguration never happened: %v", nodes[0].Neighbors())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Diamond 0-{1,2}-3: node 3 must answer exactly once.
	nodes, _ := cluster(t, 4, 4, 2, 0)
	link(nodes[0], nodes[1])
	link(nodes[0], nodes[2])
	link(nodes[1], nodes[3])
	link(nodes[2], nodes[3])
	nodes[3].cfg.Store.(MapStore).Add(5)
	hits := nodes[0].Search(5, 300*time.Millisecond)
	if len(hits) != 1 {
		t.Fatalf("duplicate replies: %+v", hits)
	}
}

func TestNodePanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"nil transport": {Store: MapStore{}, Neighbors: 1, TTL: 1},
		"nil store":     {Transport: NewChanTransport(), Neighbors: 1, TTL: 1},
		"zero cap":      {Transport: NewChanTransport(), Store: MapStore{}, TTL: 1},
		"zero ttl":      {Transport: NewChanTransport(), Store: MapStore{}, Neighbors: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			NewNode(cfg)
		}()
	}
}

func TestChanTransportUnknownNode(t *testing.T) {
	tr := NewChanTransport()
	if err := tr.Send(99, Envelope{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestChanTransportUnregister(t *testing.T) {
	tr := NewChanTransport()
	tr.Register(1)
	tr.Unregister(1)
	if err := tr.Send(1, Envelope{}); err == nil {
		t.Fatal("send after unregister succeeded")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, m := range []MsgType{MsgQuery, MsgHit, MsgInvite, MsgInviteReply, MsgEvict} {
		if m.String() == "" {
			t.Fatalf("type %d has empty string", m)
		}
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()

	a := NewNode(Config{ID: 0, Neighbors: 4, TTL: 2, Transport: tr, Store: MapStore{}, Class: netsim.LAN})
	b := NewNode(Config{ID: 1, Neighbors: 4, TTL: 2, Transport: tr, Store: MapStore{5: {}}, Class: netsim.LAN})
	addrA, stopA, err := Listen("127.0.0.1:0", a.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer stopA()
	addrB, stopB, err := Listen("127.0.0.1:0", b.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer stopB()
	tr.SetAddr(0, addrA)
	tr.SetAddr(1, addrB)

	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	a.AddNeighbor(1)
	b.AddNeighbor(0)

	hits := a.Search(5, 500*time.Millisecond)
	if len(hits) != 1 || hits[0].Holder != 1 {
		t.Fatalf("TCP search hits: %+v", hits)
	}
}

func TestTCPTransportUnknownAddress(t *testing.T) {
	tr := NewTCPTransport()
	if err := tr.Send(42, Envelope{}); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
}
