package gnutella

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

// tinyConfig runs in well under a second.
func tinyConfig(mode Mode, ttl int) Config {
	c := DefaultConfig(mode, ttl)
	c.Music = workload.MusicConfig{
		Songs:             5000,
		Categories:        50,
		PopularityTheta:   0.9,
		UserCategoryTheta: 0.9,
		Users:             100,
		LibraryMean:       40,
		LibraryStd:        10,
		FavoriteFraction:  0.5,
		OtherCategories:   5,
	}
	c.DurationHours = 6
	return c
}

func TestModeString(t *testing.T) {
	if Static.String() != "Gnutella" || Dynamic.String() != "Dynamic_Gnutella" {
		t.Fatal("mode names drifted from the paper's legend")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(Dynamic, 2)
	if c.Neighbors != 4 || c.ReconfigThreshold != 2 || c.DurationHours != 96 {
		t.Fatalf("default config drifted: %+v", c)
	}
	if c.MaxSwaps != 1 {
		t.Fatalf("MaxSwaps = %d, want 1 per the paper", c.MaxSwaps)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"zero neighbors": func(c *Config) { c.Neighbors = 0 },
		"zero TTL":       func(c *Config) { c.TTL = 0 },
		"zero threshold": func(c *Config) { c.ReconfigThreshold = 0 },
		"zero duration":  func(c *Config) { c.DurationHours = 0 },
	} {
		c := DefaultConfig(Dynamic, 2)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestRunProducesActivity(t *testing.T) {
	s := New(tinyConfig(Static, 2))
	m := s.Run()
	if m.Queries.Total() == 0 {
		t.Fatal("no queries issued")
	}
	if m.Meter.Total(0) == 0 { // MsgQuery
		t.Fatal("no query messages propagated")
	}
	if m.LoginCount == 0 {
		t.Fatal("no churn activity")
	}
	if m.Hits.Total() == 0 {
		t.Fatal("no hits at all — workload or search broken")
	}
	if m.Hits.Total() > m.Queries.Total() {
		t.Fatal("more hits than queries")
	}
}

func TestNetworkStaysConsistentDuringRun(t *testing.T) {
	for _, mode := range []Mode{Static, Dynamic} {
		s := New(tinyConfig(mode, 2))
		horizon := 6 * 3600.0
		s.Engine().SetHorizon(horizon)
		s.Run()
		if !s.Network().Consistent() {
			t.Fatalf("%v network inconsistent after run", mode)
		}
		for i := 0; i < 100; i++ {
			out, in := s.Network().Degree(topology.NodeID(i))
			if out > 4 || in > 4 {
				t.Fatalf("%v node %d degree (%d,%d) exceeds cap", mode, i, out, in)
			}
		}
	}
}

func TestOfflineNodesAreIsolated(t *testing.T) {
	s := New(tinyConfig(Dynamic, 2))
	s.Run()
	for i := 0; i < 100; i++ {
		id := topology.NodeID(i)
		out, in := s.Network().Degree(id)
		if !s.IsOnline(id) && (out != 0 || in != 0) {
			t.Fatalf("offline node %d still wired (%d,%d)", i, out, in)
		}
	}
}

func TestOnlineFractionNearHalf(t *testing.T) {
	s := New(tinyConfig(Static, 2))
	s.Run()
	frac := float64(s.OnlineCount()) / 100
	if frac < 0.25 || frac > 0.75 {
		t.Fatalf("online fraction %v far from stationary 0.5", frac)
	}
}

func TestDynamicReconfigures(t *testing.T) {
	s := New(tinyConfig(Dynamic, 2))
	m := s.Run()
	if m.Reconfigurations == 0 {
		t.Fatal("dynamic mode never reconfigured")
	}
	// Control traffic must exist (invitations/evictions).
	if m.Meter.Total(3) == 0 { // MsgInvite
		t.Fatal("no invitations sent")
	}
}

func TestStaticNeverReconfigures(t *testing.T) {
	s := New(tinyConfig(Static, 2))
	m := s.Run()
	if m.Reconfigurations != 0 {
		t.Fatal("static mode reconfigured")
	}
	if m.Meter.Total(3) != 0 {
		t.Fatal("static mode sent invitations")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := New(tinyConfig(Dynamic, 2)).Run()
	b := New(tinyConfig(Dynamic, 2)).Run()
	if a.Hits.Total() != b.Hits.Total() ||
		a.Queries.Total() != b.Queries.Total() ||
		a.Meter.Total(0) != b.Meter.Total(0) ||
		a.TotalResults != b.TotalResults {
		t.Fatal("identical seeds produced different runs")
	}
}

func TestSeedChangesRun(t *testing.T) {
	c1 := tinyConfig(Dynamic, 2)
	c2 := tinyConfig(Dynamic, 2)
	c2.Seed = 999
	a := New(c1).Run()
	b := New(c2).Run()
	if a.Queries.Total() == b.Queries.Total() && a.Meter.Total(0) == b.Meter.Total(0) {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestHigherTTLFindsMore(t *testing.T) {
	c1 := tinyConfig(Static, 1)
	c2 := tinyConfig(Static, 3)
	h1 := New(c1).Run().Hits.Total()
	h3 := New(c2).Run().Hits.Total()
	if h3 <= h1 {
		t.Fatalf("TTL 3 hits (%v) not above TTL 1 hits (%v)", h3, h1)
	}
}

func TestFirstResultDelayPlausible(t *testing.T) {
	s := New(tinyConfig(Static, 2))
	m := s.Run()
	if m.FirstResultDelay.N() == 0 {
		t.Fatal("no delay observations")
	}
	mean := m.FirstResultDelay.Mean()
	// One round trip over 1-2 hops with 70-300ms one-way delays.
	if mean < 0.1 || mean > 3 {
		t.Fatalf("mean first-result delay %v s implausible", mean)
	}
}
