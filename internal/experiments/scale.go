package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/pkg/search"
)

// The scale experiment family stresses the cascade engine itself at
// network sizes far beyond the paper's 2,000 users: N ∈ {1k, 10k,
// 100k, 1M} nodes split into the client/provider/bystander roles of
// content-routing testplans (clients issue queries, providers hold the
// content, bystanders only route). Unlike the gnutella experiments it
// has no churn or reconfiguration — it isolates the per-query hot path
// (CSR topology snapshots, flat-slice visited sets, pooled Scratch,
// the monotone bucketed event queue) so its numbers move only when the
// engine does. The refreeze cell is the exception that proves the
// snapshot contract: it churns edges between epochs and re-freezes the
// CSR in place, measuring what a reconfiguration epoch costs the hot
// path.
//
// Each cell's deterministic outcome (message counts, hit rate, delay
// percentiles) lands in runs/<name>/cells.json like every other
// experiment; the wall-clock measurements (events/sec, allocs/query)
// go to a side channel that cmd/repro writes as BENCH_scale.json via
// internal/perf — those depend on the machine and on how many sibling
// cells run concurrently, so they must stay out of the byte-comparable
// artifact. For clean allocs/query, run the bench job with -workers 1.

// ScaleConfig parameterizes one scale cell.
type ScaleConfig struct {
	// Nodes is the network size.
	Nodes int
	// Degree is the per-node neighbor capacity (symmetric regime).
	Degree int
	// ProviderFraction and ClientFraction split the population;
	// the remainder are bystanders that only route.
	ProviderFraction, ClientFraction float64
	// Keys is the size of the content key space; each provider holds
	// KeysPerProvider keys Zipf-sampled (skew Theta) from it.
	Keys, KeysPerProvider int
	Theta                 float64
	// Queries is how many searches the cell drives.
	Queries int
	// TTL bounds each search.
	TTL int
	// Policy selects the forward policy by pkg/search registry name;
	// empty means "flood" (the canonical cells). Stochastic families
	// draw per-query streams derived from Seed, so any policy keeps the
	// cell a pure function of its config.
	Policy string
	// Seed determines wiring, roles, holdings and the query stream.
	Seed uint64
}

// DefaultScaleConfig returns the canonical cell at the given network
// size: degree 4 (the paper's neighbor cap), 10% providers, 30%
// clients, a key space that grows with the network (so hit rates stay
// comparable across sizes) and Zipf(0.9) popularity.
func DefaultScaleConfig(nodes, queries int, seed uint64) ScaleConfig {
	return ScaleConfig{
		Nodes:            nodes,
		Degree:           4,
		ProviderFraction: 0.10,
		ClientFraction:   0.30,
		Keys:             nodes / 2,
		KeysPerProvider:  16,
		Theta:            0.9,
		Queries:          queries,
		TTL:              4,
		Seed:             seed,
	}
}

// Validate reports configuration errors.
func (c ScaleConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("experiments: scale with %d nodes", c.Nodes)
	case c.Degree < 1:
		return fmt.Errorf("experiments: scale degree %d", c.Degree)
	case c.ProviderFraction <= 0 || c.ClientFraction <= 0 ||
		c.ProviderFraction+c.ClientFraction > 1:
		return fmt.Errorf("experiments: scale fractions %v+%v invalid",
			c.ProviderFraction, c.ClientFraction)
	case c.Keys < 1 || c.KeysPerProvider < 1:
		return fmt.Errorf("experiments: scale key space %d/%d", c.Keys, c.KeysPerProvider)
	case c.Queries < 1:
		return fmt.Errorf("experiments: scale with %d queries", c.Queries)
	case c.TTL < 1:
		return fmt.Errorf("experiments: scale TTL %d", c.TTL)
	}
	return nil
}

// ScaleSummary is the deterministic (JSON-stable) output of one scale
// cell — the `value` schema of scale cells in cells.json.
type ScaleSummary struct {
	Nodes      int `json:"nodes"`
	Clients    int `json:"clients"`
	Providers  int `json:"providers"`
	Bystanders int `json:"bystanders"`
	Edges      int `json:"edges"`
	Queries    int `json:"queries"`
	// Hits counts satisfied queries; HitRate = Hits/Queries.
	Hits    int     `json:"hits"`
	HitRate float64 `json:"hit_rate"`
	// Messages and ReplyMessages total the query propagations and
	// reverse-route reply hops over all queries.
	Messages      uint64  `json:"messages"`
	ReplyMessages uint64  `json:"reply_messages"`
	MsgsPerQuery  float64 `json:"msgs_per_query"`
	// VisitedMean is the mean number of distinct repositories that
	// processed each query.
	VisitedMean float64 `json:"visited_mean"`
	// DelayP50Ms/P95Ms/P99Ms are first-result delay percentiles over
	// satisfied queries, in milliseconds.
	DelayP50Ms float64 `json:"delay_p50_ms"`
	DelayP95Ms float64 `json:"delay_p95_ms"`
	DelayP99Ms float64 `json:"delay_p99_ms"`
}

// ScalePerfSample is the wall-clock side channel of one cell: the
// machine-dependent measurements that stay out of cells.json.
type ScalePerfSample struct {
	// WallSeconds is the query loop's execution time (excluding the
	// network build).
	WallSeconds float64
	// Events counts messages plus reply hops processed in the loop.
	Events uint64
	// Allocs counts heap allocations during the loop (runtime.MemStats
	// deltas: an upper bound when sibling cells run concurrently).
	Allocs uint64
	// Queries is the number of searches driven.
	Queries int
	// RefreezeSeconds totals the time spent re-freezing the CSR
	// snapshot after churn epochs; Refreezes counts the re-freezes.
	// Both are zero for the static cells.
	RefreezeSeconds float64
	Refreezes       int
}

// ScalePerf collects the non-deterministic measurements of a scale
// run, keyed by cell name. It is safe for concurrent cells.
type ScalePerf struct {
	mu      sync.Mutex
	samples map[string]ScalePerfSample
}

// NewScalePerf returns an empty collector.
func NewScalePerf() *ScalePerf {
	return &ScalePerf{samples: make(map[string]ScalePerfSample)}
}

func (p *ScalePerf) record(cell string, s ScalePerfSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples[cell] = s
}

// Report renders the collected samples plus the deterministic
// per-cell metrics as a BENCH_scale.json document.
func (p *ScalePerf) Report(rs []runner.Result) (*perf.Report, error) {
	rep := perf.NewReport("scale-experiment")
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rs {
		if r.Experiment != "scale" {
			continue
		}
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: scale cell %s failed: %s", r.Cell, r.Err)
		}
		sum, ok := r.Value.(*ScaleSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: scale cell %s has value %T", r.Cell, r.Value)
		}
		m := map[string]float64{
			"msgs/query":   sum.MsgsPerQuery,
			"hit-rate":     sum.HitRate,
			"delay_p50_ms": sum.DelayP50Ms,
			"delay_p95_ms": sum.DelayP95Ms,
			"delay_p99_ms": sum.DelayP99Ms,
		}
		if s, ok := p.samples[r.Cell]; ok && s.WallSeconds > 0 && s.Queries > 0 {
			m["events/sec"] = float64(s.Events) / s.WallSeconds
			m["allocs/query"] = float64(s.Allocs) / float64(s.Queries)
			m["wall_seconds"] = s.WallSeconds
			if s.Refreezes > 0 {
				m["refreeze_ms"] = s.RefreezeSeconds / float64(s.Refreezes) * 1000
			}
		}
		rep.Add("scale/"+r.Cell, m)
	}
	return rep, nil
}

// scaleSizes is the sweep of the scale experiment family.
var scaleSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// scaleQueries returns the per-cell query count: enough work to
// measure throughput without dominating CI wall-clock.
func scaleQueries(s Scale) int {
	if s == Full {
		return 20_000
	}
	return 2_000
}

// Refreeze-cell shape: the 100k network re-frozen after churn epochs.
// Each epoch rewires refreezeChurn edges, re-freezes the CSR snapshot
// in place, and drives its share of the cell's queries over the fresh
// snapshot.
const (
	refreezeNodes  = 100_000
	refreezeEpochs = 8
	refreezeChurn  = 1_000
)

// ScaleCells returns one cell per network size, plus the refreeze cell,
// plus the collector that receives each cell's wall-clock measurements.
func ScaleCells(experiment string, scale Scale, seed uint64) ([]runner.Cell, *ScalePerf) {
	collector := NewScalePerf()
	cells := make([]runner.Cell, 0, len(scaleSizes)+1)
	for _, n := range scaleSizes {
		name := fmt.Sprintf("n%d", n)
		cfg := DefaultScaleConfig(n, scaleQueries(scale), runner.DeriveSeed(seed, experiment, name))
		cells = append(cells, runner.Cell{
			Experiment: experiment,
			Name:       name,
			Seed:       cfg.Seed,
			Run: func(_ context.Context, cellSeed uint64) (any, error) {
				c := cfg
				c.Seed = cellSeed
				sum, sample, err := RunScale(c)
				if err != nil {
					return nil, err
				}
				collector.record(name, sample)
				return sum, nil
			},
		})
	}
	refreeze := fmt.Sprintf("refreeze-n%d", refreezeNodes)
	refreezeCfg := DefaultScaleConfig(refreezeNodes, scaleQueries(scale),
		runner.DeriveSeed(seed, experiment, refreeze))
	cells = append(cells, runner.Cell{
		Experiment: experiment,
		Name:       refreeze,
		Seed:       refreezeCfg.Seed,
		Run: func(_ context.Context, cellSeed uint64) (any, error) {
			c := refreezeCfg
			c.Seed = cellSeed
			sum, sample, err := RunRefreeze(c, refreezeEpochs, refreezeChurn)
			if err != nil {
				return nil, err
			}
			collector.record(refreeze, sample)
			return sum, nil
		},
	})
	return cells, collector
}

// scaleFixture is the engine-less part of a scale world: the wired
// network, roles, holdings and streams. The churnserve family shares it
// (with its own engines); buildScaleWorld layers the delay model and
// CSR engine on top. The stream-split order here is load-bearing: it
// must not change, or every scale cells.json shifts.
type scaleFixture struct {
	net       *topology.Network
	clientIDs []topology.NodeID
	holdings  []map[core.Key]struct{}
	zipf      *rng.Zipf
	providers int
	root      *rng.Stream
	query     *rng.Stream
	delay     *rng.Stream
}

// buildScaleFixture wires, partitions and stocks one cell's network.
// Everything is a pure function of cfg.
func buildScaleFixture(cfg ScaleConfig) (*scaleFixture, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	wireStream := root.Split()
	roleStream := root.Split()
	holdStream := root.Split()
	queryStream := root.Split()
	delayStream := root.Split()

	n := cfg.Nodes
	net := topology.NewNetwork(topology.Symmetric, n, cfg.Degree, cfg.Degree)
	scaleWire(net, cfg.Degree, wireStream)

	// Role assignment: a random permutation split into providers,
	// clients, bystanders.
	perm := roleStream.Perm(n)
	providers := int(float64(n) * cfg.ProviderFraction)
	clients := int(float64(n) * cfg.ClientFraction)
	if providers < 1 {
		providers = 1
	}
	if clients < 1 {
		clients = 1
	}
	clientIDs := make([]topology.NodeID, clients)
	for i := 0; i < clients; i++ {
		clientIDs[i] = topology.NodeID(perm[providers+i])
	}

	// Provider holdings: KeysPerProvider Zipf-sampled keys each,
	// stored per node for O(1) membership on the hot path.
	holdings := make([]map[core.Key]struct{}, n)
	zipf := rng.NewZipf(cfg.Keys, cfg.Theta)
	for i := 0; i < providers; i++ {
		id := perm[i]
		h := make(map[core.Key]struct{}, cfg.KeysPerProvider)
		for len(h) < cfg.KeysPerProvider {
			h[core.Key(zipf.Index(holdStream))] = struct{}{}
		}
		holdings[id] = h
	}
	return &scaleFixture{
		net:       net,
		clientIDs: clientIDs,
		holdings:  holdings,
		zipf:      zipf,
		providers: providers,
		root:      root,
		query:     queryStream,
		delay:     delayStream,
	}, nil
}

// content returns the fixture's membership oracle. Pure and immutable,
// hence safe for saturated concurrent searches.
func (fx *scaleFixture) content() core.ContentFunc {
	holdings := fx.holdings
	return func(id topology.NodeID, key core.Key) bool {
		_, ok := holdings[id][key]
		return ok
	}
}

// scaleWorld is the deterministic fixture of one scale cell: the wired
// network with its frozen snapshot, roles, holdings and the streams the
// query loop consumes.
type scaleWorld struct {
	net       *topology.Network
	csr       *topology.CSR
	clientIDs []topology.NodeID
	holdings  []map[core.Key]struct{}
	zipf      *rng.Zipf
	providers int
	root      *rng.Stream
	query     *rng.Stream
	eng       *search.Engine
}

// buildScaleWorld wires, partitions and freezes one cell's network and
// constructs its engine over the CSR snapshot. Everything is a pure
// function of cfg.
func buildScaleWorld(cfg ScaleConfig) (*scaleWorld, error) {
	fx, err := buildScaleFixture(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Nodes
	classes := netsim.AssignClasses(fx.root.Split().Intn, n)
	policy := cfg.Policy
	if policy == "" {
		policy = "flood"
	}
	// The engine searches the frozen CSR snapshot, not the mutable
	// network: the cascade core devirtualizes neighbor lookup on it.
	// RunRefreeze re-freezes the same *CSR in place after churn epochs,
	// which the engine sees through the shared pointer.
	csr := fx.net.Freeze()
	delayStream := fx.delay
	eng, err := search.New(
		search.Over(csr, fx.content()),
		search.WithPolicy(policy),
		search.WithSeed(cfg.Seed),
		search.WithTTL(cfg.TTL),
		search.WithScratchHint(n),
		search.WithDelay(func(from, to topology.NodeID) float64 {
			return netsim.OneWayDelay(delayStream, classes[from], classes[to])
		}))
	if err != nil {
		return nil, err
	}
	return &scaleWorld{
		net:       fx.net,
		csr:       csr,
		clientIDs: fx.clientIDs,
		holdings:  fx.holdings,
		zipf:      fx.zipf,
		providers: fx.providers,
		root:      fx.root,
		query:     fx.query,
		eng:       eng,
	}, nil
}

// runQueries drives queries [first, first+count) of the cell through
// the world's engine, accumulating into sum and delays.
func (w *scaleWorld) runQueries(sum *ScaleSummary, delays *[]float64, visitedSum *int, first, count int) error {
	ctx := context.Background()
	for q := first; q < first+count; q++ {
		origin := w.clientIDs[w.query.Intn(len(w.clientIDs))]
		key := core.Key(w.zipf.Index(w.query))
		outcome, err := w.eng.Do(ctx, search.Query{
			ID:     uint64(q + 1),
			Key:    key,
			Origin: origin,
		})
		if err != nil {
			return err
		}
		sum.Messages += outcome.Messages
		sum.ReplyMessages += outcome.ReplyMessages
		*visitedSum += outcome.Visited
		if outcome.Found() {
			sum.Hits++
			*delays = append(*delays, outcome.FirstResultDelay)
		}
	}
	return nil
}

// finish folds the accumulated tallies into the summary's rates and
// percentiles.
func (sum *ScaleSummary) finish(delays []float64, visitedSum int) {
	sum.HitRate = float64(sum.Hits) / float64(sum.Queries)
	sum.MsgsPerQuery = float64(sum.Messages) / float64(sum.Queries)
	sum.VisitedMean = float64(visitedSum) / float64(sum.Queries)
	sort.Float64s(delays)
	sum.DelayP50Ms = quantileMs(delays, 0.50)
	sum.DelayP95Ms = quantileMs(delays, 0.95)
	sum.DelayP99Ms = quantileMs(delays, 0.99)
}

// RunScale executes one scale cell: build the role-partitioned network,
// freeze its CSR snapshot, drive the configured number of cascades
// through the pooled engine, and summarize. The summary is a pure
// function of the config; the returned sample carries the wall-clock
// side measurements.
func RunScale(cfg ScaleConfig) (*ScaleSummary, ScalePerfSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, ScalePerfSample{}, err
	}
	w, err := buildScaleWorld(cfg)
	if err != nil {
		return nil, ScalePerfSample{}, err
	}
	sum := &ScaleSummary{
		Nodes:      cfg.Nodes,
		Clients:    len(w.clientIDs),
		Providers:  w.providers,
		Bystanders: cfg.Nodes - len(w.clientIDs) - w.providers,
		Edges:      w.csr.EdgeCount(),
		Queries:    cfg.Queries,
	}
	delays := make([]float64, 0, cfg.Queries)
	visitedSum := 0

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if err := w.runQueries(sum, &delays, &visitedSum, 0, cfg.Queries); err != nil {
		return nil, ScalePerfSample{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)

	sum.finish(delays, visitedSum)
	sample := ScalePerfSample{
		WallSeconds: wall.Seconds(),
		Events:      sum.Messages + sum.ReplyMessages,
		Allocs:      ms1.Mallocs - ms0.Mallocs,
		Queries:     cfg.Queries,
	}
	return sum, sample, nil
}

// RunRefreeze executes the refreeze cell: the same world as RunScale,
// but the query budget is split across epochs and every epoch rewires
// churn edges of the mutable network and re-freezes the CSR snapshot
// in place (topology.FreezeInto — zero allocations at steady state)
// before its queries run. The summary is a pure function of (cfg,
// epochs, churn); the sample's RefreezeSeconds/Refreezes record what a
// reconfiguration epoch costs the hot path.
func RunRefreeze(cfg ScaleConfig, epochs, churn int) (*ScaleSummary, ScalePerfSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, ScalePerfSample{}, err
	}
	if epochs < 1 || cfg.Queries < epochs {
		return nil, ScalePerfSample{}, fmt.Errorf("experiments: refreeze with %d epochs over %d queries", epochs, cfg.Queries)
	}
	w, err := buildScaleWorld(cfg)
	if err != nil {
		return nil, ScalePerfSample{}, err
	}
	churnStream := w.root.Split()
	sum := &ScaleSummary{
		Nodes:      cfg.Nodes,
		Clients:    len(w.clientIDs),
		Providers:  w.providers,
		Bystanders: cfg.Nodes - len(w.clientIDs) - w.providers,
		Queries:    cfg.Queries,
	}
	delays := make([]float64, 0, cfg.Queries)
	visitedSum := 0
	perEpoch := cfg.Queries / epochs

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	sample := ScalePerfSample{}
	done := 0
	for e := 0; e < epochs; e++ {
		scaleChurn(w.net, churn, churnStream)
		t0 := time.Now()
		w.net.FreezeInto(w.csr)
		sample.RefreezeSeconds += time.Since(t0).Seconds()
		sample.Refreezes++
		count := perEpoch
		if e == epochs-1 {
			count = cfg.Queries - done // remainder rides the last epoch
		}
		if err := w.runQueries(sum, &delays, &visitedSum, done, count); err != nil {
			return nil, ScalePerfSample{}, err
		}
		done += count
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)

	sum.Edges = w.csr.EdgeCount() // post-churn: the snapshot the last epoch searched
	sum.finish(delays, visitedSum)
	sample.WallSeconds = wall.Seconds()
	sample.Events = sum.Messages + sum.ReplyMessages
	sample.Allocs = ms1.Mallocs - ms0.Mallocs
	sample.Queries = cfg.Queries
	return sum, sample, nil
}

// scaleChurn rewires up to count edges: each step disconnects one
// random existing edge and reconnects its source to a random peer (the
// unilateral neighbor change of a reconfiguration epoch, without the
// benefit machinery). All randomness comes from s.
func scaleChurn(net *topology.Network, count int, s *rng.Stream) {
	n := net.Len()
	for i := 0; i < count; i++ {
		src := topology.NodeID(s.Intn(n))
		out := net.Out(src)
		if len(out) == 0 {
			continue
		}
		net.Disconnect(src, out[s.Intn(len(out))])
		for attempts := 8; attempts > 0; attempts-- {
			dst := topology.NodeID(s.Intn(n))
			if dst != src && net.Connect(src, dst) {
				break
			}
		}
	}
}

// quantileMs returns the q-quantile of sorted (ascending) delays, in
// milliseconds; 0 when empty (no satisfied queries).
func quantileMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i] * 1000
}

// scaleWire attaches every node to up to degree random peers in O(N *
// degree): bounded random probing instead of topology.RandomWire's
// per-node permutation of the full candidate set, which is quadratic
// and prohibitive at 100k nodes. Nodes are processed in ID order and
// all randomness comes from s, so the wiring is a pure function of the
// seed. A node whose probes all land on full peers ends under-degree —
// the same shortfall a late-joining Gnutella node sees.
func scaleWire(net *topology.Network, degree int, s *rng.Stream) {
	n := net.Len()
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		need := degree - net.Node(id).Out.Len()
		for attempts := 8 * degree; need > 0 && attempts > 0; attempts-- {
			c := topology.NodeID(s.Intn(n))
			if c == id {
				continue
			}
			if net.Connect(id, c) {
				need--
			}
		}
	}
}

// AssembleScale validates the results of ScaleCells into summaries, in
// sweep order.
func AssembleScale(rs []runner.Result) ([]*ScaleSummary, error) {
	out := make([]*ScaleSummary, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: cell %s/%s failed: %s", r.Experiment, r.Cell, r.Err)
		}
		sum, ok := r.Value.(*ScaleSummary)
		if !ok {
			return nil, fmt.Errorf("experiments: cell %s/%s has value %T, want *ScaleSummary",
				r.Experiment, r.Cell, r.Value)
		}
		out[i] = sum
	}
	return out, nil
}

// Scale runs the sweep on the default pool and returns the summaries.
func ScaleSweep(scale Scale, seed uint64) []*ScaleSummary {
	cells, _ := ScaleCells("scale", scale, seed)
	return must(AssembleScale(runLocal(cells)))
}
