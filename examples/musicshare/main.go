// Musicshare runs the paper's Section 4 case study at reduced scale:
// static Gnutella vs the dynamic variant on the synthetic music
// workload, printing the Figure 1-style hourly series. Run with:
//
//	go run ./examples/musicshare [-hours 24] [-users 200] [-ttl 2]
package main

import (
	"flag"
	"fmt"

	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func main() {
	var (
		hours = flag.Int("hours", 24, "simulated hours")
		users = flag.Int("users", 200, "network size")
		ttl   = flag.Int("ttl", 2, "search hop limit")
		seed  = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()

	run := func(mode gnutella.Mode) *gnutella.Metrics {
		cfg := gnutella.CIConfig(mode, *ttl)
		cfg.DurationHours = *hours
		cfg.Seed = *seed
		scale := 2000 / *users
		if scale < 1 {
			scale = 1
		}
		cfg.Music = gnutella.DefaultConfig(mode, *ttl).Music.Scaled(scale)
		cfg.DurationHours = *hours
		return gnutella.New(cfg).Run()
	}

	static := run(gnutella.Static)
	dynamic := run(gnutella.Dynamic)

	table := metrics.NewTable(
		fmt.Sprintf("Music sharing, %d users, %d hours, hops=%d", *users, *hours, *ttl),
		"hour", "Gnutella hits", "Dynamic hits", "Gnutella msgs", "Dynamic msgs")
	for h := 0; h < *hours; h++ {
		table.AddRow(h,
			static.Hits.Bucket(h), dynamic.Hits.Bucket(h),
			static.Meter.Bucket(netsim.MsgQuery, h), dynamic.Meter.Bucket(netsim.MsgQuery, h))
	}
	fmt.Println(table)

	fmt.Printf("totals: static %v hits / %d msgs; dynamic %v hits / %d msgs (%d reconfigurations)\n",
		static.Hits.Total(), static.Meter.Total(netsim.MsgQuery),
		dynamic.Hits.Total(), dynamic.Meter.Total(netsim.MsgQuery),
		dynamic.Reconfigurations)
	fmt.Printf("first-result delay: static %.0f ms, dynamic %.0f ms\n",
		static.FirstResultDelay.Mean()*1000, dynamic.FirstResultDelay.Mean()*1000)
}
