package gnutella

import (
	"testing"

	"repro/internal/topology"
)

// Failure injection: configurations that stress the reconfiguration
// machinery far beyond the paper's operating point must neither panic
// nor corrupt the network invariant.

func TestChurnStormKeepsNetworkConsistent(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	// Sessions of ~3 minutes instead of 3 hours: each user logs in and
	// out ~60x more often, so login wiring, logoff isolation and
	// eviction interleave constantly.
	c.Churn.MeanOnline = 180
	c.Churn.MeanOffline = 180
	s := New(c)
	m := s.Run()
	if !s.Network().Consistent() {
		t.Fatal("network inconsistent after churn storm")
	}
	if m.LoginCount < 1000 {
		t.Fatalf("storm produced only %d logins", m.LoginCount)
	}
	for i := 0; i < c.Music.Users; i++ {
		id := topology.NodeID(i)
		out, in := s.Network().Degree(id)
		if out > c.Neighbors || in > c.Neighbors {
			t.Fatalf("node %d degree (%d,%d) exceeds cap", i, out, in)
		}
		if !s.IsOnline(id) && (out != 0 || in != 0) {
			t.Fatalf("offline node %d still wired", i)
		}
	}
}

func TestHyperactiveReconfiguration(t *testing.T) {
	// θ=1 with unlimited swaps: every request rewires as much as it
	// can. The run must stay consistent and still outperform no
	// neighbors at all.
	c := tinyConfig(Dynamic, 2)
	c.ReconfigThreshold = 1
	c.MaxSwaps = 0 // unlimited
	s := New(c)
	m := s.Run()
	if !s.Network().Consistent() {
		t.Fatal("network inconsistent under hyperactive reconfiguration")
	}
	if m.Hits.Total() == 0 {
		t.Fatal("hyperactive reconfiguration killed all hits")
	}
}

func TestSingleNeighborCapacity(t *testing.T) {
	// Degenerate capacity: the network is a partial matching; searches
	// and reconfigurations must still work.
	c := tinyConfig(Dynamic, 2)
	c.Neighbors = 1
	s := New(c)
	m := s.Run()
	if !s.Network().Consistent() {
		t.Fatal("inconsistent with capacity 1")
	}
	if m.Queries.Total() == 0 {
		t.Fatal("no queries with capacity 1")
	}
}

func TestVeryShortRun(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.DurationHours = 1
	m := New(c).Run()
	if m.Queries.Total() == 0 {
		t.Fatal("one-hour run issued no queries")
	}
}

func TestHighTTLDoesNotExplode(t *testing.T) {
	// TTL far beyond the network diameter: duplicate suppression must
	// bound the cascade.
	c := tinyConfig(Static, 10)
	c.DurationHours = 2
	m := New(c).Run()
	perQuery := float64(m.Meter.Total(0)) / m.Queries.Total()
	// With 100 users (~50 online), a query can visit each node at most
	// once but may traverse each edge in both directions.
	if perQuery > 500 {
		t.Fatalf("%.0f messages per query: duplicate suppression broken", perQuery)
	}
}
