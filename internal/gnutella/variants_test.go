package gnutella

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

func TestVariantStrings(t *testing.T) {
	for _, s := range []string{
		SymmetricUpdate.String(), AsymmetricUpdate.String(),
		BenefitBR.String(), BenefitHitCount.String(), BenefitHitsPerLatency.String(),
		ForwardFlood.String(), ForwardDirected2.String(), ForwardRandom2.String(),
	} {
		if s == "" {
			t.Fatal("variant knob with empty name")
		}
	}
}

func TestAsymmetricUpdateRuns(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.Variant.Update = AsymmetricUpdate
	s := New(c)
	m := s.Run()
	if m.Reconfigurations == 0 {
		t.Fatal("asymmetric variant never reconfigured")
	}
	if !s.Network().Consistent() {
		t.Fatal("asymmetric network inconsistent after run")
	}
	// Pure asymmetric: incoming lists are unbounded, outgoing capped.
	for i := 0; i < 100; i++ {
		out, _ := s.Network().Degree(topology.NodeID(i))
		if out > c.Neighbors {
			t.Fatalf("node %d out-degree %d exceeds cap", i, out)
		}
	}
}

func TestDirectedBFTReducesMessages(t *testing.T) {
	flood := tinyConfig(Dynamic, 3)
	directed := tinyConfig(Dynamic, 3)
	directed.Variant.Forward = ForwardDirected2
	fm := New(flood).Run()
	dm := New(directed).Run()
	if dm.Meter.Total(0) >= fm.Meter.Total(0) {
		t.Fatalf("directed BFT did not reduce messages: %d vs %d",
			dm.Meter.Total(0), fm.Meter.Total(0))
	}
}

func TestRandomKReducesMessages(t *testing.T) {
	flood := tinyConfig(Dynamic, 3)
	random := tinyConfig(Dynamic, 3)
	random.Variant.Forward = ForwardRandom2
	fm := New(flood).Run()
	rm := New(random).Run()
	if rm.Meter.Total(0) >= fm.Meter.Total(0) {
		t.Fatalf("random-2 did not reduce messages: %d vs %d",
			rm.Meter.Total(0), fm.Meter.Total(0))
	}
}

func TestBenefitVariantsRun(t *testing.T) {
	for _, k := range []BenefitKind{BenefitBR, BenefitHitCount, BenefitHitsPerLatency} {
		c := tinyConfig(Dynamic, 2)
		c.Variant.Benefit = k
		m := New(c).Run()
		if m.Hits.Total() == 0 {
			t.Fatalf("benefit %v produced no hits", k)
		}
	}
}

func TestIterativeDeepeningVariant(t *testing.T) {
	// Deepening pays off when many queries are satisfied in the first
	// cycle ([10]); a content-rich library makes depth-1 hits common.
	rich := func(ttl int) Config {
		c := tinyConfig(Dynamic, ttl)
		c.Music.Songs = 2000
		c.Music.Categories = 50
		c.Music.LibraryMean = 200
		c.Music.LibraryStd = 40
		return c
	}
	plain := rich(3)
	deep := rich(3)
	deep.Variant.IterativeDeepening = []int{1, 3}
	deep.Variant.DeepeningTimeout = 2.0
	pm := New(plain).Run()
	dm := New(deep).Run()
	if dm.Hits.Total() == 0 {
		t.Fatal("deepening produced no hits")
	}
	// Queries satisfied at depth 1 skip the depth-3 cycle entirely, so
	// deepening must save messages relative to one full-depth flood.
	if dm.Meter.Total(0) >= pm.Meter.Total(0) {
		t.Fatalf("deepening did not reduce messages: %d vs %d",
			dm.Meter.Total(0), pm.Meter.Total(0))
	}
	// And it must not lose hits: every query still reaches depth 3 if
	// unsatisfied earlier.
	if float64(dm.Hits.Total()) < 0.9*float64(pm.Hits.Total()) {
		t.Fatalf("deepening lost hits: %v vs %v", dm.Hits.Total(), pm.Hits.Total())
	}
}

func TestLocalIndicesReduceMessagesKeepHits(t *testing.T) {
	plain := tinyConfig(Dynamic, 2)
	indexed := tinyConfig(Dynamic, 2)
	indexed.Variant.UseLocalIndices = true
	pm := New(plain).Run()
	im := New(indexed).Run()
	// Technique (iii) of [10]: terminate the flood one hop early with
	// the radius-1 index answering for the last hop — far fewer
	// messages, comparable coverage.
	if im.Meter.Total(0) >= pm.Meter.Total(0) {
		t.Fatalf("local indices did not reduce messages: %d vs %d",
			im.Meter.Total(0), pm.Meter.Total(0))
	}
	if float64(im.Hits.Total()) < 0.8*float64(pm.Hits.Total()) {
		t.Fatalf("local indices lost coverage: %v vs %v hits",
			im.Hits.Total(), pm.Hits.Total())
	}
}

func TestDriftChangesPreferences(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.DriftAtHour = 3
	c.DriftFraction = 1.0 // everyone drifts
	s := New(c)
	before := make([]int, len(s.users))
	for i, u := range s.users {
		before[i] = u.Favorite
	}
	s.Run()
	changed := 0
	for i, u := range s.users {
		if u.Favorite != before[i] {
			changed++
		}
	}
	// With 50 categories and Zipf reassignment, the vast majority of
	// re-rolls land on a different favorite.
	if changed < len(s.users)/2 {
		t.Fatalf("only %d/%d users drifted", changed, len(s.users))
	}
}

func TestDriftValidation(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.DriftFraction = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("drift fraction 1.5 accepted")
	}
	c = tinyConfig(Dynamic, 2)
	c.LedgerDecayPerHour = -0.1
	if err := c.Validate(); err == nil {
		t.Fatal("negative decay accepted")
	}
}

func TestLedgerDecayRuns(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.LedgerDecayPerHour = 0.5
	m := New(c).Run()
	if m.Hits.Total() == 0 {
		t.Fatal("decay run produced no hits")
	}
}

func TestDynamicRecoversFromDrift(t *testing.T) {
	// After a mass preference drift, the dynamic system must re-adapt:
	// hits in the final hours recover above the immediate post-drift
	// level.
	c := tinyConfig(Dynamic, 2)
	c.DurationHours = 16
	c.DriftAtHour = 8
	c.DriftFraction = 1.0
	m := New(c).Run()
	justAfter := m.Hits.Window(8, 10)
	recovered := m.Hits.Window(14, 16)
	if recovered <= justAfter {
		t.Fatalf("no recovery after drift: hours 8-10 %v, hours 14-16 %v",
			justAfter, recovered)
	}
}

func TestTrialPeriodVariantRuns(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.Variant.TrialPeriodHours = 1
	s := New(c)
	m := s.Run()
	if m.Hits.Total() == 0 {
		t.Fatal("trial variant produced no hits")
	}
	if !s.Network().Consistent() {
		t.Fatal("network inconsistent with trial periods")
	}
}

func TestTrialPeriodResolvesTrials(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	c.Variant.TrialPeriodHours = 1
	s := New(c)
	m := s.Run()
	invites := m.Meter.Total(3) // MsgInvite
	if invites == 0 {
		t.Fatal("no invitations, trials never started")
	}
	// Most probations must have been resolved (kept or evicted); only
	// the last hour's accepts may still be pending.
	if pending := s.trials.Pending(); uint64(pending)*4 > invites {
		t.Fatalf("%d of %d trials still pending at run end", pending, invites)
	}
}

func TestTraceCapturesProtocolEvents(t *testing.T) {
	c := tinyConfig(Dynamic, 2)
	var buf trace.Buffer
	c.Trace = &buf
	m := New(c).Run()
	if buf.Count(trace.KindQuery) != int(m.Queries.Total()) {
		t.Fatalf("traced %d queries, metrics counted %v",
			buf.Count(trace.KindQuery), m.Queries.Total())
	}
	if buf.Count(trace.KindHit) != int(m.Hits.Total()) {
		t.Fatalf("traced %d hits, metrics counted %v",
			buf.Count(trace.KindHit), m.Hits.Total())
	}
	if uint64(buf.Count(trace.KindLogin)) != m.LoginCount {
		t.Fatalf("traced %d logins, metrics counted %d",
			buf.Count(trace.KindLogin), m.LoginCount)
	}
	if uint64(buf.Count(trace.KindReconfig)) != m.Reconfigurations {
		t.Fatalf("traced %d reconfigs, metrics counted %d",
			buf.Count(trace.KindReconfig), m.Reconfigurations)
	}
	if buf.Count(trace.KindInvite) == 0 || buf.Count(trace.KindEvict) == 0 {
		t.Fatal("control events not traced")
	}
	// Event times must be non-decreasing (simulator order).
	prev := 0.0
	for _, e := range buf.Events() {
		if e.T < prev {
			t.Fatalf("trace out of order: %v after %v", e.T, prev)
		}
		prev = e.T
	}
}

func TestTraceDisabledIsFree(t *testing.T) {
	// A nil sink must behave identically to a Discard sink run.
	a := New(tinyConfig(Dynamic, 2)).Run()
	c := tinyConfig(Dynamic, 2)
	c.Trace = trace.Discard
	b := New(c).Run()
	if a.Hits.Total() != b.Hits.Total() || a.Meter.Total(0) != b.Meter.Total(0) {
		t.Fatal("tracing changed simulation behavior")
	}
}
