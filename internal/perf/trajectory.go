package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// History is the cross-PR performance trajectory: an append-only series
// of labeled benchmark reports (BENCH_history.json). Where a single
// Report answers "how fast is this commit", the History answers "which
// way is it moving" — cmd/perfcheck appends one point per intentional
// refresh and reports every run's movement against the latest point.
// Wall-clock metrics are REPORTED against the trajectory, never gated:
// the same no-time-thresholds policy as the baseline gate.
type History struct {
	// Schema versions the document layout.
	Schema string `json:"schema"`
	// Points is chronological: Points[len-1] is the latest.
	Points []Point `json:"points"`
}

// Point is one recorded position on the trajectory.
type Point struct {
	// Label identifies the run ("pr6", a commit hash, ...).
	Label string `json:"label"`
	// Source says which producer measured it (Report.Source).
	Source string `json:"source"`
	// Entries is the measured report body, sorted by name.
	Entries []Entry `json:"entries"`
}

// Get returns the point's entry with the given name, or nil.
func (p *Point) Get(name string) *Entry {
	for i := range p.Entries {
		if p.Entries[i].Name == name {
			return &p.Entries[i]
		}
	}
	return nil
}

// HistorySchemaVersion is the current value of History.Schema.
const HistorySchemaVersion = "repro-bench-history/v1"

// NewHistory returns an empty trajectory.
func NewHistory() *History {
	return &History{Schema: HistorySchemaVersion}
}

// ReadHistory loads a trajectory; a missing file is NOT an error — it
// returns an empty History, so first runs bootstrap cleanly.
func ReadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewHistory(), nil
	}
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if h.Schema != HistorySchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %q, want %q", path, h.Schema, HistorySchemaVersion)
	}
	return &h, nil
}

// Append records r as the new latest point under the given label.
func (h *History) Append(label string, r *Report) {
	r.sorted()
	entries := make([]Entry, len(r.Entries))
	for i, e := range r.Entries {
		m := make(map[string]float64, len(e.Metrics))
		for k, v := range e.Metrics {
			m[k] = v
		}
		entries[i] = Entry{Name: e.Name, Metrics: m}
	}
	h.Points = append(h.Points, Point{Label: label, Source: r.Source, Entries: entries})
}

// Latest returns the most recent point, or nil for an empty trajectory.
func (h *History) Latest() *Point {
	if len(h.Points) == 0 {
		return nil
	}
	return &h.Points[len(h.Points)-1]
}

// WriteHistory marshals the trajectory to path (atomic rename, parent
// directories created), mirroring Report.Write.
func (h *History) WriteHistory(path string) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Verdict classifies one metric's movement against the trajectory.
type Verdict string

const (
	// VerdictRegression: the metric moved in the bad direction beyond
	// the tolerance band.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: the metric moved in the good direction beyond
	// the tolerance band.
	VerdictImprovement Verdict = "improvement"
	// VerdictSteady: movement within the tolerance band.
	VerdictSteady Verdict = "steady"
	// VerdictNoPrior: the trajectory has no usable previous value — no
	// point at all, the entry or metric is new, or the previous value
	// cannot anchor a ratio (zero, negative, NaN or infinite).
	VerdictNoPrior Verdict = "no-prior"
)

// Movement is one (entry, metric) comparison against the latest point.
type Movement struct {
	Entry  string
	Metric string
	// Prev and Cur are the compared values; Prev is NaN under
	// VerdictNoPrior when the metric was absent.
	Prev, Cur float64
	// Ratio is Cur/Prev, 0 when undefined (VerdictNoPrior).
	Ratio   float64
	Verdict Verdict
}

// String implements fmt.Stringer.
func (m Movement) String() string {
	if m.Verdict == VerdictNoPrior {
		return fmt.Sprintf("%s %s: %s (%.4g)", m.Entry, m.Metric, m.Verdict, m.Cur)
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%.2fx, %s)", m.Entry, m.Metric, m.Prev, m.Cur, m.Ratio, m.Verdict)
}

// LowerIsBetter reports the good direction of a metric: throughput
// metrics (anything per second, or a rate like hit-rate) improve
// upward; cost metrics (ns/op, allocs/op, B/op, delays, wall-clock
// milliseconds) improve downward. Unknown names default to cost.
func LowerIsBetter(metric string) bool {
	if strings.HasSuffix(metric, "/sec") || strings.HasSuffix(metric, "-rate") {
		return false
	}
	return true
}

// Trajectory compares cur against the latest trajectory point (prev,
// which may be nil) for the listed metrics, classifying every movement
// on cur's entries. tol is the steady band as a ratio: with tol = 1.10
// anything within ±10% is VerdictSteady. Direction is metric-aware via
// LowerIsBetter. Previous values that cannot anchor a ratio — the
// zero ns/op of a parse gap, a NaN from a corrupted file — classify as
// VerdictNoPrior rather than poisoning the report, as does a
// non-finite current value.
func Trajectory(prev *Point, cur *Report, tol float64, metrics ...string) []Movement {
	if tol < 1 {
		tol = 1
	}
	cur.sorted()
	var out []Movement
	for _, ce := range cur.Entries {
		for _, metric := range metrics {
			cv, ok := ce.Metric(metric)
			if !ok {
				continue
			}
			m := Movement{Entry: ce.Name, Metric: metric, Prev: math.NaN(), Cur: cv, Verdict: VerdictNoPrior}
			var pe *Entry
			if prev != nil {
				pe = prev.Get(ce.Name)
			}
			if pe != nil {
				if pv, ok := pe.Metric(metric); ok {
					m.Prev = pv
				}
			}
			pv := m.Prev
			switch {
			case math.IsNaN(pv) || math.IsInf(pv, 0) || pv <= 0,
				math.IsNaN(cv) || math.IsInf(cv, 0) || cv < 0:
				// No usable anchor: stays VerdictNoPrior.
			default:
				m.Ratio = cv / pv
				worse := m.Ratio > tol
				better := m.Ratio < 1/tol
				if !LowerIsBetter(metric) {
					worse, better = better, worse
				}
				switch {
				case worse:
					m.Verdict = VerdictRegression
				case better:
					m.Verdict = VerdictImprovement
				default:
					m.Verdict = VerdictSteady
				}
			}
			out = append(out, m)
		}
	}
	return out
}
