package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Cascade executes the generic search of Algo 1 over a topology view:
// the query spreads from the origin along outgoing-neighbor edges,
// every repository processes it at most once (duplicate suppression by
// query ID, as in Algo 5's Process_Query), nodes holding the key reply
// to the origin over the reverse route, and propagation obeys the TTL
// and result-count terminating conditions.
//
// The cascade resolves the entire query within one simulator event:
// per-hop delays are sampled and accumulated analytically, which is
// exact as long as node state does not change during the (seconds-long)
// life of one query — see DESIGN.md, substitution table.
//
// All per-query state (visited set, reverse routes, frontier heap,
// result buffers) lives in a Scratch of epoch-stamped flat slices; see
// RunScratch for the pooled, allocation-free hot path.
type Cascade struct {
	// Graph supplies outgoing neighbors and liveness. Required.
	Graph Graph
	// Content answers local repository membership. Required.
	Content Content
	// Forward selects propagation targets. Required.
	Forward ForwardPolicy
	// Index, when non-nil, lets every visited node (and the origin)
	// answer on behalf of peers within Index.Radius() hops — the Local
	// Indices technique of [10]. Callers typically shorten the query
	// TTL by the radius.
	Index Index
	// Delay samples one-way hop delays; nil means ZeroDelay.
	Delay DelayFunc
	// Ledger, when non-nil, returns the statistics ledger of a
	// forwarding node (used by history-based forward policies).
	Ledger func(id topology.NodeID) *stats.Ledger
	// OnMessage, when non-nil, is invoked for every query propagation
	// (from -> to), including duplicates discarded on arrival.
	OnMessage func(from, to topology.NodeID)
	// OnReplyHop, when non-nil, is invoked for every hop of a reply on
	// the reverse route.
	OnReplyHop func(from, to topology.NodeID)
	// OnResult, when non-nil, is invoked for every result the moment its
	// reply reaches the origin — before the cascade finishes — enabling
	// incremental (streaming) consumption. The Result is passed by value
	// and safe to retain.
	OnResult func(Result)
	// Halt, when non-nil, is polled between cascade hops (once per
	// arrival processed) and before each deepening iteration; when it
	// returns true the search stops and returns the partial outcome
	// accumulated so far. External cancellation (context.Context) plugs
	// in here; pkg/search wires it for every call.
	Halt func() bool
}

// Run executes the search for query q and returns its outcome. It
// panics on an invalid query or an incomplete cascade configuration;
// both are programming errors, not runtime conditions.
//
// Run allocates fresh state per call and the caller owns the returned
// outcome indefinitely. Hot loops that issue many queries should hold a
// Scratch and call RunScratch instead.
func (c *Cascade) Run(q *Query) *Outcome {
	return c.RunScratch(q, nil)
}

// RunScratch is Run over caller-pooled working memory: the visited set,
// frontier heap and result buffer all come from s and are reused across
// cascades, so a steady-state query costs zero heap allocations beyond
// the Outcome header. The returned outcome (its Results slice) aliases
// s and is valid until the next RunScratch/ExploreScratch call with the
// same Scratch. A nil s runs with fresh state, exactly like Run.
//
// For identical inputs, RunScratch returns identical outcomes whether s
// is nil, fresh, or arbitrarily reused — pooling is invisible to the
// search semantics (asserted by TestScratchReuseByteIdentical).
func (c *Cascade) RunScratch(q *Query, s *Scratch) *Outcome {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	if c.Graph == nil || c.Content == nil || c.Forward == nil {
		panic("core: Cascade requires Graph, Content and Forward")
	}
	if s == nil {
		s = NewScratch(0)
	}
	delay := c.Delay
	noDelay := delay == nil
	if noDelay {
		delay = ZeroDelay // only for indexResults; the loops below skip it
	}
	ledger := func(topology.NodeID) *stats.Ledger { return nil }
	if c.Ledger != nil {
		ledger = c.Ledger
	}

	// Devirtualized fast paths: when the topology view is a frozen
	// *topology.CSR, neighbor lookup is an inlined slice expression and
	// the per-arrival Online call disappears (snapshots are fully
	// online by contract); when the policy is the common Flood, the
	// dynamic Select call and the intermediate fwd buffer are replaced
	// by a direct loop over the out-slice. Both paths send exactly the
	// messages the generic path would, in the same order.
	csr, fastGraph := c.Graph.(*topology.CSR)
	_, fastFlood := c.Forward.(Flood)

	// Visited-set variant: dense floods over big snapshots answer the
	// membership question from a bitset (one bit per node) instead of
	// the 24-byte slot array — duplicate arrivals, the bulk of a dense
	// flood's queue traffic, then probe 512 nodes per cache line. The
	// slot array still records the reverse routes; cascades with a
	// local Index always stay on slots (the idxEpoch stamp lives
	// there). Both variants realize identical semantics — see
	// TestVisitedVariantsByteIdentical.
	useBits := false
	if c.Index == nil {
		switch ForceVisited {
		case VisitedAuto:
			useBits = fastGraph && denseFlood(csr.Len(), csr.EdgeCount(), q.TTL, q.MaxResults)
		case VisitedBits:
			useBits = true
		}
	}

	s.begin()
	if useBits {
		hint := 0
		if fastGraph {
			hint = csr.Len()
		}
		s.beginBits(hint)
	}
	out := &Outcome{Results: s.results[:0]}
	defer func() {
		// Keep the (possibly grown) buffer for the next cascade, and
		// normalize an empty result list to nil so pooled and fresh
		// runs marshal identically.
		s.results = out.Results[:0]
		if len(out.Results) == 0 {
			out.Results = nil
		}
	}()

	origin := s.slot(q.Origin)
	origin.epoch = s.epoch
	origin.parent = topology.None
	if useBits {
		s.setBit(q.Origin)
	}

	send := func(from, to topology.NodeID, t float64, hops int32) {
		out.Messages++
		if c.OnMessage != nil {
			c.OnMessage(from, to)
		}
		if !noDelay {
			t += delay(from, to)
		}
		s.pushArrival(t, to, from, hops)
	}
	// forward propagates from node `at` (whose query copy came from
	// `from`) at time t over its out-neighbors.
	forward := func(at, from topology.NodeID, outs []topology.NodeID, t float64, hops int32) {
		if fastFlood {
			for _, n := range outs {
				if n == from || n == q.Origin {
					continue
				}
				send(at, n, t, hops)
			}
			return
		}
		s.fwd = c.Forward.Select(q, at, from, outs, ledger(at), s.fwd[:0])
		for _, n := range s.fwd {
			send(at, n, t, hops)
		}
	}

	// With a local index the origin answers from its own index first —
	// a zero-message lookup over its Radius()-hop neighborhood.
	originHit := false
	if c.Index != nil {
		originHit = c.indexResults(q, out, s, q.Origin, 0, 0, 0, delay)
	}

	// The origin forwards to its selected neighbors at t = 0
	// (Send_Query: "sends the query to its neighbors"). TTL counts
	// hops, so TTL = 0 means no propagation at all.
	if q.TTL >= 1 && !(originHit && !q.ForwardWhenHit) &&
		!(q.MaxResults > 0 && len(out.Results) >= q.MaxResults) {
		forward(q.Origin, topology.None, c.Graph.Out(q.Origin), 0, 1)
	}

	for {
		if c.Halt != nil && c.Halt() {
			break
		}
		a, ok := s.popArrival()
		if !ok {
			break
		}
		if q.MaxResults > 0 && len(out.Results) >= q.MaxResults {
			// Terminating condition met; remaining in-flight copies are
			// abandoned (they were already counted as messages).
			break
		}
		now := a.time
		if useBits {
			// Process_Query duplicate suppression, bitset representation.
			if s.testBit(a.node) {
				continue
			}
		} else if s.visited(a.node) {
			continue // Process_Query: "if the same message has been received before, return"
		}
		if !fastGraph && !c.Graph.Online(a.node) {
			continue // message reached a node that just went off-line
		}
		st := s.slot(a.node)
		st.epoch = s.epoch
		if useBits {
			s.setBit(a.node)
		}
		st.parent = a.from
		st.forwardDelay = now
		st.hops = a.hops
		out.Visited++

		hit := c.Content.HasContent(a.node, q.Key)
		if hit && c.Index != nil && s.visits[a.node].idxEpoch == s.epoch {
			hit = false // already answered on this node's behalf upstream
		}
		if hit || c.Index != nil {
			// Reply travels the reverse route (Gnutella semantics);
			// each reverse hop samples a fresh delay. With no delay
			// model the accumulation walk is pure zeros — skip it.
			replyDelay := 0.0
			if !noDelay {
				node := a.node
				for node != q.Origin {
					parent := s.visits[node].parent
					replyDelay += delay(node, parent)
					node = parent
				}
			}
			if hit {
				node := a.node
				for node != q.Origin {
					out.ReplyMessages++
					parent := s.visits[node].parent
					if c.OnReplyHop != nil {
						c.OnReplyHop(node, parent)
					}
					node = parent
				}
				if c.Index != nil {
					s.visits[a.node].idxEpoch = s.epoch
				}
				total := now + replyDelay
				res := Result{Holder: a.node, Hops: int(a.hops), Delay: total}
				out.Results = append(out.Results, res)
				// First appended result opens the minimum; set-ness is
				// len(Results) > 0, never a zero sentinel — a genuine
				// zero-delay first result survives later, slower ones.
				if len(out.Results) == 1 || total < out.FirstResultDelay {
					out.FirstResultDelay = total
				}
				if c.OnResult != nil {
					c.OnResult(res)
				}
			}
			// Answer for indexed peers beyond this node.
			if c.Index != nil &&
				!(q.MaxResults > 0 && len(out.Results) >= q.MaxResults) {
				if c.indexResults(q, out, s, a.node, int(a.hops), now, replyDelay, delay) {
					hit = true
				}
			}
		}

		// Propagation: a serving node stops unless ForwardWhenHit; TTL
		// bounds the hop count.
		if (hit && !q.ForwardWhenHit) || int(a.hops) >= q.TTL {
			continue
		}
		var outs []topology.NodeID
		if fastGraph {
			outs = csr.Out(a.node)
		} else {
			outs = c.Graph.Out(a.node)
		}
		forward(a.node, a.from, outs, now, a.hops+1)
	}
	return out
}

// IterativeDeepening implements technique (i) of [10] as a search
// driver: successive cascades with growing TTL until the query is
// satisfied or the maximum depth is reached. Message counts accumulate
// across iterations (re-propagation is the technique's cost); the
// returned outcome is the final iteration's results with the summed
// overhead.
//
// The paper notes the technique is orthogonal to dynamic
// reconfiguration and can be combined with it — the ablation benchmark
// does exactly that.
type IterativeDeepening struct {
	// Depths is the TTL schedule, strictly increasing (e.g. 1, 2, 4).
	Depths []int
	// CycleTimeout is how long the initiator waits before declaring a
	// cycle unsatisfied and deepening (seconds). Each failed cycle adds
	// this to the first-result delay of the final outcome.
	CycleTimeout float64
}

// Run executes the deepening schedule for q over cascade c. The TTL in
// q is ignored; Depths governs.
func (d IterativeDeepening) Run(c *Cascade, q *Query) *Outcome {
	return d.RunScratch(c, q, nil)
}

// RunScratch is Run over caller-pooled working memory; see
// Cascade.RunScratch for the aliasing contract. Only the satisfied
// (final) iteration's results are retained, so intermediate cascades
// reusing s never clobber returned data.
func (d IterativeDeepening) RunScratch(c *Cascade, q *Query, s *Scratch) *Outcome {
	if len(d.Depths) == 0 {
		panic("core: IterativeDeepening needs at least one depth")
	}
	prev := 0
	var total Outcome
	waited := 0.0
	for _, depth := range d.Depths {
		if depth <= prev {
			panic(fmt.Sprintf("core: deepening schedule not increasing at depth %d", depth))
		}
		prev = depth
		if c.Halt != nil && c.Halt() {
			break // halted mid-schedule: do not deepen into a canceled run
		}
		qq := *q
		qq.TTL = depth
		o := c.RunScratch(&qq, s)
		total.Messages += o.Messages
		total.ReplyMessages += o.ReplyMessages
		if o.Visited > total.Visited {
			total.Visited = o.Visited
		}
		if o.Hit() {
			total.Results = o.Results
			total.FirstResultDelay = waited + o.FirstResultDelay
			break
		}
		waited += d.CycleTimeout
	}
	return &total
}
