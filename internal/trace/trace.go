// Package trace provides structured event tracing for the simulation
// case studies: every protocol-level occurrence (query, hit,
// reconfiguration, invitation, eviction, login, logoff) can be streamed
// to a sink for debugging, visualization or offline analysis. Sinks are
// optional and cost nothing when unset; the JSONL sink emits one JSON
// object per line so runs can be grepped, diffed and replayed with
// standard tools.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/topology"
)

// Kind classifies events.
type Kind string

// The protocol-level event kinds.
const (
	KindQuery    Kind = "query"    // a node issued a search
	KindHit      Kind = "hit"      // a search was satisfied
	KindReconfig Kind = "reconfig" // a node changed its neighborhood
	KindInvite   Kind = "invite"   // an invitation was sent
	KindEvict    Kind = "evict"    // an eviction was sent
	KindLogin    Kind = "login"    // a node came on-line
	KindLogoff   Kind = "logoff"   // a node went off-line
)

// Event is one traced occurrence. Fields that do not apply to a kind
// stay at their zero values and are omitted from JSON.
type Event struct {
	// T is the simulated time in seconds.
	T float64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is the acting repository.
	Node topology.NodeID `json:"node"`
	// Peer is the counterparty (invitee, evictee, result holder...).
	Peer topology.NodeID `json:"peer,omitempty"`
	// Key is the content item involved, if any.
	Key uint64 `json:"key,omitempty"`
	// N carries a count (results obtained, messages sent...).
	N int `json:"n,omitempty"`
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%.3fs %s node=%d peer=%d key=%d n=%d", e.T, e.Kind, e.Node, e.Peer, e.Key, e.N)
}

// Sink consumes events. Implementations must tolerate concurrent calls
// only if the producing runtime is concurrent (the simulator is
// single-threaded; the live runtime is not).
type Sink interface {
	Record(Event)
}

// Discard is a Sink that drops everything.
var Discard Sink = discard{}

type discard struct{}

// Record implements Sink.
func (discard) Record(Event) {}

// Buffer is an in-memory Sink for tests and small runs.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Sink.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a snapshot of all recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Filter returns the recorded events of one kind.
func (b *Buffer) Filter(kind Kind) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of one kind were recorded.
func (b *Buffer) Count(kind Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// JSONL streams events as JSON lines to a writer.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   uint64
	err error
}

// NewJSONL wraps w. Encoding errors are sticky and reported by Err;
// tracing must never abort a simulation.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Record implements Sink.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Written returns the number of events successfully encoded.
func (j *JSONL) Written() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL decodes a JSONL stream back into events (replay/analysis).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
