// Command perfcheck turns `go test -bench` output into a BENCH_*.json
// artifact and gates CI on allocation regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x . | \
//	    go run ./cmd/perfcheck -out BENCH_ci.json -baseline BENCH_baseline.json
//
//	go run ./cmd/perfcheck -in bench.out -out BENCH_ci.json            # parse only
//	go run ./cmd/perfcheck -in bench.out -baseline BENCH_baseline.json # gate only
//	go run ./cmd/perfcheck -in bench.out -baseline BENCH_baseline.json -update
//
// -in-json loads an already-rendered BENCH_*.json report (as the
// experiment families emit — BENCH_scale.json, BENCH_churnserve.json)
// instead of parsing bench text; given together with -in (or piped
// bench output), the two merge into one report, so a single history
// point can carry both the Go benchmarks and an experiment's headline:
//
//	go run ./cmd/perfcheck -in bench.out \
//	    -in-json runs/churnserve-ci/BENCH_churnserve.json \
//	    -history BENCH_history.json -append-history -label pr7
//
// The gate fails (exit 1) when any baseline benchmark worsens its
// allocs/op by more than -max-ratio (default 2), disappears, or drops
// the metric. A partial bench run gates against the matching slice of
// the baseline with -gate-prefix (CI's daemon job benches only
// BenchmarkDaemonREST but shares BENCH_baseline.json with the full
// sweep). Wall-clock metrics (ns/op) are *reported* — a per-entry
// baseline→current delta table on stderr — but never gated: CI
// machines are too noisy for time thresholds, while allocation counts
// are schedule-independent and stable.
//
// To refresh the baseline after an intentional change, run with
// -update (rewrites the -baseline file from the current run, skipping
// the gate) and commit the file. -update refuses to run on a dirty
// working tree — a refreshed baseline must be attributable to exactly
// one commit; pass -allow-dirty to override.
//
// Beyond the one-commit baseline gate, perfcheck tracks the cross-PR
// trajectory: -history BENCH_history.json reports each entry's ns/op
// and queries/sec movement against the latest recorded point (verdicts
// regression / improvement / steady / no-prior — reported, never
// gated), and -append-history -label pr7 records this run as the new
// latest point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/perf"
)

func main() {
	var (
		in         = flag.String("in", "", "bench output file (default stdin)")
		inJSON     = flag.String("in-json", "", "BENCH_*.json report to load; merges with bench input when both are given")
		out        = flag.String("out", "", "write parsed BENCH json here")
		baseline   = flag.String("baseline", "", "checked-in baseline BENCH json to gate against")
		maxRatio   = flag.Float64("max-ratio", 2, "fail when current allocs/op exceeds baseline*ratio")
		metric     = flag.String("metric", "allocs/op", "comma-free metric name to gate on")
		update     = flag.Bool("update", false, "rewrite the -baseline file from this run instead of gating")
		gatePrefix = flag.String("gate-prefix", "", "gate only baseline entries whose name starts with this prefix (partial bench runs)")
		history    = flag.String("history", "", "trajectory BENCH_history json to report movement against")
		appendHist = flag.Bool("append-history", false, "record this run as the -history file's new latest point")
		label      = flag.String("label", "", "label for the appended history point (required with -append-history)")
		allowDirty = flag.Bool("allow-dirty", false, "let -update/-append-history rewrite tracked files despite a dirty working tree")
		trajTol    = flag.Float64("trajectory-tol", 1.10, "steady band for trajectory verdicts (ratio)")
	)
	flag.Parse()

	// With only -in-json there is no bench text to parse (stdin is not
	// consulted); with both, the JSON report's entries merge into the
	// parsed one, which keeps "go-bench" as the merged source.
	var rep *perf.Report
	if *inJSON == "" || *in != "" {
		var src io.Reader = os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			src = f
		}
		var err error
		rep, err = perf.ParseBench(src)
		if err != nil {
			fatal(err)
		}
		if len(rep.Entries) == 0 {
			fatal(fmt.Errorf("perfcheck: no benchmark results in input"))
		}
		fmt.Fprintf(os.Stderr, "perfcheck: parsed %d benchmark entries\n", len(rep.Entries))
	}
	if *inJSON != "" {
		jrep, err := perf.Read(*inJSON)
		if err != nil {
			fatal(err)
		}
		if rep == nil {
			rep = jrep
		} else {
			for _, e := range jrep.Entries {
				rep.Add(e.Name, e.Metrics)
			}
		}
		fmt.Fprintf(os.Stderr, "perfcheck: loaded %d report entries from %s\n", len(jrep.Entries), *inJSON)
	}

	if *out != "" {
		if err := rep.Write(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfcheck: wrote %s\n", *out)
	}

	if *history != "" {
		if err := runTrajectory(rep, *history, *appendHist, *label, *allowDirty, *trajTol); err != nil {
			fatal(err)
		}
	} else if *appendHist {
		fatal(fmt.Errorf("perfcheck: -append-history needs -history to know which file to extend"))
	}

	if *baseline == "" {
		if *update {
			fatal(fmt.Errorf("perfcheck: -update needs -baseline to know which file to rewrite"))
		}
		return
	}
	if *update {
		refuseDirty("-update", *baseline, *allowDirty)
		if err := rep.Write(*baseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfcheck: baseline %s rewritten from this run (no gate)\n", *baseline)
		return
	}
	base, err := perf.Read(*baseline)
	if err != nil {
		fatal(err)
	}
	// A partial bench run (e.g. CI's daemon job benches only the REST
	// path) gates against the matching slice of the baseline; without
	// the filter every unbenched baseline entry would count as missing.
	if *gatePrefix != "" {
		filtered := &perf.Report{Schema: base.Schema, Source: base.Source}
		for _, e := range base.Entries {
			if strings.HasPrefix(e.Name, *gatePrefix) {
				filtered.Add(e.Name, e.Metrics)
			}
		}
		if len(filtered.Entries) == 0 {
			fatal(fmt.Errorf("perfcheck: no baseline entries match -gate-prefix %q", *gatePrefix))
		}
		base = filtered
	}
	reportTimeDeltas(base, rep)
	regs := perf.Compare(base, rep, *maxRatio, *metric)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %d %s regression(s) beyond %.1fx:\n", len(regs), *metric, *maxRatio)
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", g)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perfcheck: %s within %.1fx of baseline for all %d entries\n",
		*metric, *maxRatio, len(base.Entries))
}

// trajectoryMetrics are the movements worth a line in the report: the
// wall-clock cost and the saturation throughput.
var trajectoryMetrics = []string{"ns/op", "queries/sec"}

// runTrajectory reports this run's movement against the history file's
// latest point and, with append set, records the run as the new latest.
// Movement verdicts are informational only — the trajectory is the
// record CI keeps, not a gate.
func runTrajectory(rep *perf.Report, path string, appendHist bool, label string, allowDirty bool, tol float64) error {
	h, err := perf.ReadHistory(path)
	if err != nil {
		return err
	}
	prev := h.Latest()
	if prev == nil {
		fmt.Fprintf(os.Stderr, "perfcheck: trajectory %s is empty (every metric is no-prior)\n", path)
	} else {
		fmt.Fprintf(os.Stderr, "perfcheck: trajectory vs %q (reported, never gated):\n", prev.Label)
	}
	for _, m := range perf.Trajectory(prev, rep, tol, trajectoryMetrics...) {
		fmt.Fprintf(os.Stderr, "  %s\n", m)
	}
	if !appendHist {
		return nil
	}
	if label == "" {
		return fmt.Errorf("perfcheck: -append-history needs -label to name the new point")
	}
	refuseDirty("-append-history", path, allowDirty)
	h.Append(label, rep)
	if err := h.WriteHistory(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perfcheck: appended point %q to %s (%d points)\n", label, path, len(h.Points))
	return nil
}

// refuseDirty aborts a tracked-file rewrite when the working tree has
// uncommitted changes: a refreshed baseline or history point must be
// attributable to exactly one commit, not a half-edited tree. Outside a
// git checkout (or without git on PATH) it warns and proceeds — the
// refusal is a guard for the development workflow, not a hard
// dependency on git.
func refuseDirty(op, path string, allowDirty bool) {
	if allowDirty {
		return
	}
	dirty, err := workingTreeStatus("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: cannot check working tree (%v); proceeding with %s\n", err, op)
		return
	}
	if dirty == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "perfcheck: refusing %s of %s on a dirty working tree:\n", op, path)
	for _, line := range strings.Split(dirty, "\n") {
		fmt.Fprintf(os.Stderr, "  %s\n", line)
	}
	fmt.Fprintln(os.Stderr, "perfcheck: commit or stash first, or pass -allow-dirty to override")
	os.Exit(1)
}

// workingTreeStatus returns `git status --porcelain` for dir (empty =
// current directory), trimmed; empty output means a clean tree.
func workingTreeStatus(dir string) (string, error) {
	cmd := exec.Command("git", "status", "--porcelain")
	cmd.Dir = dir
	out, err := cmd.Output()
	return strings.TrimSpace(string(out)), err
}

// reportTimeDeltas prints the per-entry ns/op movement against the
// baseline — informational only, never gated (wall-clock is machine-
// and schedule-dependent; the trajectory matters, not a threshold).
func reportTimeDeltas(base, cur *perf.Report) {
	dst := os.Stderr
	fmt.Fprintln(dst, "perfcheck: ns/op vs baseline (reported, never gated):")
	names := make([]string, 0, len(base.Entries))
	for _, e := range base.Entries {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv, ok := base.Get(name).Metric("ns/op")
		if !ok {
			continue
		}
		ce := cur.Get(name)
		if ce == nil {
			fmt.Fprintf(dst, "  %-40s %12.0f -> (missing)\n", name, bv)
			continue
		}
		cv, ok := ce.Metric("ns/op")
		if !ok {
			fmt.Fprintf(dst, "  %-40s %12.0f -> (no ns/op)\n", name, bv)
			continue
		}
		ratio := 0.0
		if bv > 0 {
			ratio = cv / bv
		}
		fmt.Fprintf(dst, "  %-40s %12.0f -> %12.0f  (%.2fx)\n", name, bv, cv, ratio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
