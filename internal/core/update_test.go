package core

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// testEnv implements SymmetricEnv over a global network.
type testEnv struct {
	net     *topology.Network
	ledgers map[topology.NodeID]*stats.Ledger
	offline map[topology.NodeID]bool
	control map[netsim.MessageKind]int
	resets  map[topology.NodeID]int
}

func newTestEnv(n int, cap_ int) *testEnv {
	e := &testEnv{
		net:     topology.NewNetwork(topology.Symmetric, n, cap_, cap_),
		ledgers: map[topology.NodeID]*stats.Ledger{},
		offline: map[topology.NodeID]bool{},
		control: map[netsim.MessageKind]int{},
		resets:  map[topology.NodeID]int{},
	}
	for i := 0; i < n; i++ {
		e.ledgers[topology.NodeID(i)] = stats.NewLedger()
	}
	return e
}

func (e *testEnv) Net() *topology.Network                  { return e.net }
func (e *testEnv) Ledger(id topology.NodeID) *stats.Ledger { return e.ledgers[id] }
func (e *testEnv) Online(id topology.NodeID) bool          { return !e.offline[id] }
func (e *testEnv) ResetCounter(id topology.NodeID)         { e.resets[id]++ }
func (e *testEnv) Control(k netsim.MessageKind, _, _ topology.NodeID) {
	e.control[k]++
}

func TestPlanAsymmetricTopK(t *testing.T) {
	led := stats.NewLedger()
	for i := 1; i <= 5; i++ {
		led.Touch(topology.NodeID(i)).Benefit = float64(i)
	}
	got := PlanAsymmetric(led, stats.Cumulative{}, 3, nil, nil)
	if len(got) != 3 || got[0] != 5 || got[1] != 4 || got[2] != 3 {
		t.Fatalf("PlanAsymmetric = %v", got)
	}
}

func TestPlanAsymmetricFillsFromCurrent(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(9).Benefit = 5
	got := PlanAsymmetric(led, stats.Cumulative{}, 3, ids(1, 2), nil)
	if len(got) != 3 || got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("PlanAsymmetric = %v", got)
	}
}

func TestPlanAsymmetricEligibility(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(1).Benefit = 10
	led.Touch(2).Benefit = 5
	got := PlanAsymmetric(led, stats.Cumulative{}, 2, nil,
		func(id topology.NodeID) bool { return id != 1 })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("PlanAsymmetric = %v", got)
	}
}

func TestPlanAsymmetricNoDuplicateFromCurrent(t *testing.T) {
	led := stats.NewLedger()
	led.Touch(1).Benefit = 10
	got := PlanAsymmetric(led, stats.Cumulative{}, 2, ids(1, 2), nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("PlanAsymmetric = %v", got)
	}
}

func TestPlanAsymmetricPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	PlanAsymmetric(stats.NewLedger(), stats.Cumulative{}, 0, nil, nil)
}

func TestApplyOutList(t *testing.T) {
	net := topology.NewNetwork(topology.PureAsymmetric, 5, 3, 0)
	net.Connect(0, 1)
	net.Connect(0, 2)
	added, removed := ApplyOutList(net, 0, ids(2, 3, 4))
	if len(added) != 2 || added[0] != 3 || added[1] != 4 {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != 1 {
		t.Fatalf("removed = %v", removed)
	}
	if !net.Consistent() {
		t.Fatal("network inconsistent after ApplyOutList")
	}
	out := net.Out(0)
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestApplyOutListIgnoresSelf(t *testing.T) {
	net := topology.NewNetwork(topology.PureAsymmetric, 3, 3, 0)
	added, _ := ApplyOutList(net, 0, ids(0, 1))
	if len(added) != 1 || added[0] != 1 {
		t.Fatalf("added = %v", added)
	}
}

func TestReconfigureInvitesBestCandidate(t *testing.T) {
	e := newTestEnv(5, 2)
	// Node 0 currently linked to 1; ledger says 3 is great.
	e.net.Connect(0, 1)
	e.ledgers[0].Touch(3).Benefit = 10
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	rep := u.Reconfigure(e, 0)
	if len(rep.Accepted) != 1 || rep.Accepted[0] != 3 {
		t.Fatalf("report: %+v", rep)
	}
	if !e.net.Node(0).Out.Contains(3) || !e.net.Node(3).Out.Contains(0) {
		t.Fatal("symmetric edge not created")
	}
	if len(rep.Evicted) != 0 {
		t.Fatalf("needless eviction: %+v", rep)
	}
	if !e.net.Consistent() {
		t.Fatal("inconsistent after reconfigure")
	}
	if e.resets[0] != 1 {
		t.Fatal("reconfiguring node's counter not reset")
	}
	if e.resets[3] != 1 {
		t.Fatal("invited node's counter not reset")
	}
	if e.control[netsim.MsgInvite] != 1 || e.control[netsim.MsgInviteReply] != 1 {
		t.Fatalf("control traffic: %v", e.control)
	}
}

func TestReconfigureEvictsWorstWhenFull(t *testing.T) {
	e := newTestEnv(5, 2)
	e.net.Connect(0, 1)
	e.net.Connect(0, 2)
	e.ledgers[0].Touch(1).Benefit = 1
	e.ledgers[0].Touch(2).Benefit = 5
	e.ledgers[0].Touch(3).Benefit = 10
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	rep := u.Reconfigure(e, 0)
	if len(rep.Evicted) != 1 || rep.Evicted[0] != 1 {
		t.Fatalf("evicted: %v", rep.Evicted)
	}
	if len(rep.Accepted) != 1 || rep.Accepted[0] != 3 {
		t.Fatalf("accepted: %v", rep.Accepted)
	}
	out := e.net.Out(0)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if e.net.Node(0).Out.Contains(1) {
		t.Fatal("worst neighbor still present")
	}
	// Process_Eviction: the victim resets its statistics about the
	// evictor.
	if e.ledgers[1].Get(0) != nil {
		t.Fatal("evicted node kept statistics about evictor")
	}
	if !e.net.Consistent() {
		t.Fatal("inconsistent after eviction")
	}
	if e.control[netsim.MsgEvict] != 1 {
		t.Fatalf("eviction messages: %v", e.control)
	}
}

func TestReconfigureKeepsBetterIncumbents(t *testing.T) {
	e := newTestEnv(5, 2)
	e.net.Connect(0, 1)
	e.net.Connect(0, 2)
	e.ledgers[0].Touch(1).Benefit = 8
	e.ledgers[0].Touch(2).Benefit = 9
	e.ledgers[0].Touch(3).Benefit = 5 // worse than both incumbents
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	rep := u.Reconfigure(e, 0)
	if rep.Changed() {
		t.Fatalf("reconfigure changed a superior neighborhood: %+v", rep)
	}
	if e.resets[0] != 1 {
		t.Fatal("counter must reset even without changes")
	}
}

func TestReconfigureMaxSwaps(t *testing.T) {
	e := newTestEnv(8, 4)
	for i := 3; i <= 6; i++ {
		e.ledgers[0].Touch(topology.NodeID(i)).Benefit = float64(i)
	}
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 4, Invite: AlwaysAccept, MaxSwaps: 1}
	rep := u.Reconfigure(e, 0)
	if len(rep.Accepted) != 1 {
		t.Fatalf("MaxSwaps=1 accepted %d", len(rep.Accepted))
	}
	if rep.Accepted[0] != 6 {
		t.Fatalf("must invite the single best candidate, got %v", rep.Accepted)
	}
	// Unlimited swaps fills the whole list.
	e2 := newTestEnv(8, 4)
	for i := 3; i <= 6; i++ {
		e2.ledgers[0].Touch(topology.NodeID(i)).Benefit = float64(i)
	}
	rep2 := u2Reconfigure(e2)
	if len(rep2.Accepted) != 4 {
		t.Fatalf("unlimited swaps accepted %d", len(rep2.Accepted))
	}
}

func u2Reconfigure(e *testEnv) ReconfigReport {
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 4, Invite: AlwaysAccept}
	return u.Reconfigure(e, 0)
}

func TestReconfigureSkipsOfflineCandidates(t *testing.T) {
	e := newTestEnv(4, 2)
	e.ledgers[0].Touch(2).Benefit = 10
	e.ledgers[0].Touch(3).Benefit = 5
	e.offline[2] = true
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	rep := u.Reconfigure(e, 0)
	if len(rep.Accepted) != 1 || rep.Accepted[0] != 3 {
		t.Fatalf("accepted: %v", rep.Accepted)
	}
}

func TestReconfigureSkipsExistingNeighbors(t *testing.T) {
	e := newTestEnv(4, 2)
	e.net.Connect(0, 1)
	e.ledgers[0].Touch(1).Benefit = 10
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	rep := u.Reconfigure(e, 0)
	if len(rep.Invited) != 0 {
		t.Fatalf("invited an existing neighbor: %+v", rep)
	}
}

func TestDeliverInvitationAlwaysAcceptEvicts(t *testing.T) {
	e := newTestEnv(5, 2)
	// Node 3 is full with 1 and 2; it values 1 less.
	e.net.Connect(3, 1)
	e.net.Connect(3, 2)
	e.ledgers[3].Touch(1).Benefit = 1
	e.ledgers[3].Touch(2).Benefit = 5
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	if !u.DeliverInvitation(e, 0, 3) {
		t.Fatal("always-accept refused")
	}
	if !e.net.Node(3).Out.Contains(0) {
		t.Fatal("edge to inviter missing")
	}
	if e.net.Node(3).Out.Contains(1) {
		t.Fatal("least beneficial neighbor not evicted")
	}
	if e.ledgers[1].Get(3) != nil {
		t.Fatal("victim kept stats about evictor")
	}
	if !e.net.Consistent() {
		t.Fatal("inconsistent after invitation")
	}
}

func TestDeliverInvitationBenefitBasedRejects(t *testing.T) {
	e := newTestEnv(5, 2)
	e.net.Connect(3, 1)
	e.net.Connect(3, 2)
	e.ledgers[3].Touch(1).Benefit = 5
	e.ledgers[3].Touch(2).Benefit = 6
	e.ledgers[3].Touch(0).Benefit = 1 // inviter is worse than both
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: BenefitBased}
	if u.DeliverInvitation(e, 0, 3) {
		t.Fatal("benefit-based accepted an inferior inviter")
	}
	if e.net.Node(3).Out.Len() != 2 {
		t.Fatal("rejection must not change edges")
	}
	if e.control[netsim.MsgInviteReply] != 1 {
		t.Fatal("negative reply not sent")
	}
}

func TestDeliverInvitationBenefitBasedAcceptsWhenBetter(t *testing.T) {
	e := newTestEnv(5, 2)
	e.net.Connect(3, 1)
	e.net.Connect(3, 2)
	e.ledgers[3].Touch(1).Benefit = 1
	e.ledgers[3].Touch(2).Benefit = 6
	e.ledgers[3].Touch(0).Benefit = 4 // better than neighbor 1
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: BenefitBased}
	if !u.DeliverInvitation(e, 0, 3) {
		t.Fatal("benefit-based refused a superior inviter")
	}
	if e.net.Node(3).Out.Contains(1) {
		t.Fatal("inferior incoming neighbor not evicted")
	}
}

func TestDeliverInvitationBenefitBasedAcceptsWhenRoom(t *testing.T) {
	e := newTestEnv(3, 2)
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: BenefitBased}
	if !u.DeliverInvitation(e, 0, 1) {
		t.Fatal("refused despite free slots")
	}
}

func TestDeliverInvitationOfflineRefuses(t *testing.T) {
	e := newTestEnv(3, 2)
	e.offline[1] = true
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	if u.DeliverInvitation(e, 0, 1) {
		t.Fatal("offline node accepted")
	}
}

func TestDeliverInvitationSelfRefuses(t *testing.T) {
	e := newTestEnv(3, 2)
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	if u.DeliverInvitation(e, 1, 1) {
		t.Fatal("self-invitation accepted")
	}
}

func TestDeliverInvitationExistingNeighborRefuses(t *testing.T) {
	e := newTestEnv(3, 2)
	e.net.Connect(0, 1)
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 2, Invite: AlwaysAccept}
	if u.DeliverInvitation(e, 0, 1) {
		t.Fatal("re-invitation of an existing neighbor accepted")
	}
}

func TestReconfigurePanicsOnZeroCapacity(t *testing.T) {
	e := newTestEnv(2, 2)
	u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	u.Reconfigure(e, 0)
}

func TestInvitePolicyString(t *testing.T) {
	if AlwaysAccept.String() == "" || BenefitBased.String() == "" {
		t.Fatal("invite policies must render")
	}
}

// Property: arbitrary sequences of reconfigurations and invitations
// keep the symmetric network consistent and within capacity — the
// paper's central structural claim for Algo 4.
func TestQuickReconfigurePreservesConsistency(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		s := rng.New(seed)
		const n, capacity = 12, 3
		e := newTestEnv(n, capacity)
		u := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: capacity, Invite: AlwaysAccept, MaxSwaps: 1}
		ub := &SymmetricUpdater{Benefit: stats.Cumulative{}, Capacity: capacity, Invite: BenefitBased}
		for step := 0; step < int(steps); step++ {
			id := topology.NodeID(s.Intn(n))
			peer := topology.NodeID(s.Intn(n))
			switch s.Intn(5) {
			case 0:
				e.ledgers[id].Touch(peer).Benefit += float64(s.Intn(10))
			case 1:
				u.Reconfigure(e, id)
			case 2:
				ub.Reconfigure(e, id)
			case 3:
				e.offline[id] = !e.offline[id]
				if e.offline[id] {
					e.net.Isolate(id)
				}
			case 4:
				if !e.net.Node(id).Out.Full() {
					u.DeliverInvitation(e, id, peer)
				}
			}
			if !e.net.Consistent() {
				return false
			}
			for i := 0; i < n; i++ {
				out, in := e.net.Degree(topology.NodeID(i))
				if out > capacity || in > capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
