package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestClassString(t *testing.T) {
	for c, want := range map[BandwidthClass]string{
		Modem56K: "56K", Cable: "cable", LAN: "LAN",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestWeightOrdering(t *testing.T) {
	if !(Modem56K.Weight() < Cable.Weight() && Cable.Weight() < LAN.Weight()) {
		t.Fatal("benefit weights must increase with bandwidth")
	}
}

func TestGovernIsSlower(t *testing.T) {
	if Govern(Modem56K, LAN) != Modem56K {
		t.Fatal("slow endpoint must govern")
	}
	if Govern(LAN, Cable) != Cable {
		t.Fatal("slow endpoint must govern")
	}
	if Govern(LAN, LAN) != LAN {
		t.Fatal("identical classes govern themselves")
	}
}

func TestGovernCommutative(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := BandwidthClass(a%3), BandwidthClass(b%3)
		return Govern(x, y) == Govern(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOneWayDelayMeans(t *testing.T) {
	s := rng.New(1)
	cases := []struct {
		a, b BandwidthClass
		want float64
	}{
		{Modem56K, Modem56K, 0.300},
		{Modem56K, LAN, 0.300},
		{Cable, LAN, 0.150},
		{Cable, Cable, 0.150},
		{LAN, LAN, 0.070},
	}
	for _, tc := range cases {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += OneWayDelay(s, tc.a, tc.b)
		}
		got := sum / n
		if math.Abs(got-tc.want) > 0.002 {
			t.Fatalf("%v-%v mean delay %v, want ~%v", tc.a, tc.b, got, tc.want)
		}
		if MeanOneWayDelay(tc.a, tc.b) != tc.want {
			t.Fatalf("analytic mean mismatch for %v-%v", tc.a, tc.b)
		}
	}
}

func TestOneWayDelayAlwaysPositive(t *testing.T) {
	s := rng.New(2)
	for i := 0; i < 200000; i++ {
		d := OneWayDelay(s, LAN, LAN) // tightest case: 70ms ± 50ms cap
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
	}
}

func TestOneWayDelayBounded(t *testing.T) {
	s := rng.New(3)
	for i := 0; i < 100000; i++ {
		d := OneWayDelay(s, Modem56K, Cable)
		if d < 0.300-delayBound || d > 0.300+delayBound {
			t.Fatalf("delay %v escaped ±%v around 300ms", d, delayBound)
		}
	}
}

func TestAssignClassesEquallyLikely(t *testing.T) {
	s := rng.New(4)
	const n = 90000
	classes := AssignClasses(s.Intn, n)
	if len(classes) != n {
		t.Fatalf("got %d classes", len(classes))
	}
	counts := map[BandwidthClass]int{}
	for _, c := range classes {
		counts[c]++
	}
	for c, got := range counts {
		if math.Abs(float64(got)-n/3.0) > 5*math.Sqrt(n/3.0) {
			t.Fatalf("class %v count %d, want ~%d", c, got, n/3)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("saw %d distinct classes, want 3", len(counts))
	}
}

func TestMeterBuckets(t *testing.T) {
	m := NewMeter(3600)
	m.Count(MsgQuery, 0, 5)
	m.Count(MsgQuery, 3599, 1)
	m.Count(MsgQuery, 3600, 2)
	m.Count(MsgReply, 7200, 7)
	if got := m.Bucket(MsgQuery, 0); got != 6 {
		t.Fatalf("bucket 0 = %d, want 6", got)
	}
	if got := m.Bucket(MsgQuery, 1); got != 2 {
		t.Fatalf("bucket 1 = %d, want 2", got)
	}
	if got := m.Bucket(MsgReply, 2); got != 7 {
		t.Fatalf("reply bucket 2 = %d, want 7", got)
	}
	if got := m.Bucket(MsgReply, 0); got != 0 {
		t.Fatalf("untouched bucket = %d, want 0", got)
	}
	if m.Buckets() != 3 {
		t.Fatalf("Buckets() = %d, want 3", m.Buckets())
	}
}

func TestMeterTotals(t *testing.T) {
	m := NewMeter(10)
	m.Count(MsgQuery, 5, 3)
	m.Count(MsgQuery, 15, 4)
	m.Count(MsgInvite, 5, 1)
	if m.Total(MsgQuery) != 7 {
		t.Fatalf("Total(query) = %d", m.Total(MsgQuery))
	}
	if m.TotalAll() != 8 {
		t.Fatalf("TotalAll = %d", m.TotalAll())
	}
}

func TestMeterSeriesIsCopy(t *testing.T) {
	m := NewMeter(1)
	m.Count(MsgQuery, 0, 1)
	s := m.Series(MsgQuery)
	s[0] = 99
	if m.Bucket(MsgQuery, 0) != 1 {
		t.Fatal("Series must return a copy")
	}
}

func TestMeterPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bucket":   func() { NewMeter(0) },
		"bad kind":      func() { NewMeter(1).Count(numMessageKinds, 0, 1) },
		"negative time": func() { NewMeter(1).Count(MsgQuery, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMessageKindString(t *testing.T) {
	for k := MessageKind(0); k < numMessageKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
}

func TestQuickMeterTotalEqualsSumOfBuckets(t *testing.T) {
	f := func(times []uint16) bool {
		m := NewMeter(100)
		for _, tm := range times {
			m.Count(MsgQuery, float64(tm), 1)
		}
		var sum uint64
		for _, v := range m.Series(MsgQuery) {
			sum += v
		}
		return sum == uint64(len(times)) && sum == m.Total(MsgQuery)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOneWayDelay(b *testing.B) {
	s := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = OneWayDelay(s, Modem56K, Cable)
	}
}
