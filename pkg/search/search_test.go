package search_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/pkg/search"
)

// testNet is a deterministic in-memory Network: n nodes wired in a
// ring with a +7 chord, where node h holds key k iff h == int(k) % n.
// It is immutable, hence safe for concurrent searches.
type testNet struct {
	n   int
	out [][]search.NodeID
}

func newTestNet(n, degree int) *testNet {
	t := &testNet{n: n, out: make([][]search.NodeID, n)}
	for i := 0; i < n; i++ {
		nb := []search.NodeID{
			search.NodeID((i + 1) % n),
			search.NodeID((i + n - 1) % n),
		}
		if degree > 2 && n > 14 {
			nb = append(nb, search.NodeID((i+7)%n))
			nb = append(nb, search.NodeID((i+n-7)%n))
		}
		t.out[i] = nb
	}
	return t
}

func (t *testNet) Out(id search.NodeID) []search.NodeID { return t.out[id] }
func (t *testNet) Online(search.NodeID) bool            { return true }
func (t *testNet) HasContent(id search.NodeID, key search.Key) bool {
	return int(id) == int(key)%t.n
}

// stepDelay is a pure per-edge delay: deterministic under concurrency.
func stepDelay(from, to search.NodeID) float64 {
	return float64((int(from)*31+int(to)*17)%11+1) / 1000
}

func TestDoFindsRingHolder(t *testing.T) {
	net := newTestNet(10, 2)
	eng, err := search.New(net, search.WithTTL(7), search.WithDelay(func(_, _ search.NodeID) float64 { return 0.1 }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Do(context.Background(), search.Query{ID: 1, Key: 5, Origin: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Hits[0].Holder != 5 || res.Hits[0].Hops != 5 {
		t.Fatalf("Do = %+v, want a 5-hop hit on node 5", res)
	}
	if res.FirstResultDelay != 1.0 { // 5 forward + 5 reply hops at 100 ms
		t.Errorf("FirstResultDelay = %v, want 1.0", res.FirstResultDelay)
	}
	if res.Messages == 0 || res.Visited == 0 {
		t.Errorf("missing overhead accounting: %+v", res)
	}
}

// TestDoMatchesRawCascade: the facade is a veneer — outcomes are
// field-for-field what a hand-assembled core.Cascade produces.
func TestDoMatchesRawCascade(t *testing.T) {
	net := newTestNet(60, 4)
	eng, err := search.New(net, search.WithTTL(5), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	raw := &core.Cascade{
		Graph:   net,
		Content: core.ContentFunc(net.HasContent),
		Forward: core.Flood{},
		Delay:   stepDelay,
	}
	for key := 0; key < 40; key++ {
		q := search.Query{ID: uint64(key), Key: search.Key(key), Origin: search.NodeID(key % 3)}
		got, err := eng.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := raw.Run(&core.Query{ID: core.QueryID(key), Key: q.Key, Origin: q.Origin, TTL: 5})
		if got.Messages != want.Messages || got.ReplyMessages != want.ReplyMessages ||
			got.Visited != want.Visited || got.FirstResultDelay != want.FirstResultDelay ||
			!reflect.DeepEqual(got.Hits, want.Results) {
			t.Fatalf("key %d: facade %+v != raw %+v", key, got, want)
		}
	}
}

func TestQueryDefaultsAndOverrides(t *testing.T) {
	net := newTestNet(30, 2)
	eng, err := search.New(net, search.WithTTL(2), search.WithMaxResults(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Default TTL 2 cannot reach node 5 on the plain ring.
	res, err := eng.Do(ctx, search.Query{Key: 5, Origin: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("TTL-2 search found %+v, want miss", res.Hits)
	}
	// Per-query TTL override reaches it.
	res, err = eng.Do(ctx, search.Query{Key: 5, Origin: 0, TTL: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("TTL-6 override still missed")
	}

	// MaxResults default 1 stops after the first hit even when two
	// holders are equidistant; -1 lifts the cap.
	wide, err := search.New(newTestNet(10, 2), search.WithTTL(5))
	if err != nil {
		t.Fatal(err)
	}
	one, err := wide.Do(ctx, search.Query{Key: 15, Origin: 0, MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	all, err := wide.Do(ctx, search.Query{Key: 15, Origin: 0, MaxResults: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Hits) != 1 || len(all.Hits) != 1 {
		t.Logf("one=%+v all=%+v", one, all) // ring holds one copy; counts differ on richer nets
	}

	// Invalid queries error instead of panicking through the facade.
	if _, err := eng.Do(ctx, search.Query{Key: 1, Origin: 0, TTL: -3}); err == nil {
		t.Error("negative TTL did not error")
	}
}

func TestDoCanceledContext(t *testing.T) {
	net := newTestNet(1000, 4)
	eng, err := search.New(net, search.WithTTL(50))
	if err != nil {
		t.Fatal(err)
	}

	// Already-canceled context: no work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Do(ctx, search.Query{Key: 999999, Origin: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on canceled ctx = %v, want context.Canceled", err)
	}

	// Mid-cascade cancellation: stop between hops after ~100 messages,
	// far short of the thousands a TTL-50 flood of a 1000-node network
	// generates.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	msgs := 0
	q := search.Query{Key: 999999, Origin: 0, OnMessage: func(_, _ search.NodeID) {
		msgs++
		if msgs == 100 {
			cancel()
		}
	}}
	if _, err := eng.Do(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-cascade cancel = %v, want context.Canceled", err)
	}
	if msgs > 1200 { // a few in-flight arrivals may still fan out once
		t.Errorf("cascade kept flooding after cancel: %d messages", msgs)
	}
}

func TestStreamIncremental(t *testing.T) {
	// Put three holders of key 45 at staggered distances.
	net := newTestNet(15, 2)
	eng, err := search.New(net, search.WithTTL(7), search.WithDelay(stepDelay))
	if err != nil {
		t.Fatal(err)
	}
	// 45 % 15 == 0 → origin holds it; search from 5 so hits arrive from
	// elsewhere. Holder set on this net: node 0 only. Use a richer net
	// for multi-hit streaming instead:
	rich := newTestNet(30, 4)
	richEng, err := search.New(rich, search.WithTTL(6), search.WithDelay(stepDelay), search.WithForwardWhenHit(true))
	if err != nil {
		t.Fatal(err)
	}

	// Stream and Do agree on the hit sequence.
	for _, tc := range []struct {
		eng    *search.Engine
		origin search.NodeID
		key    search.Key
	}{{eng, 5, 45}, {richEng, 3, 7}, {richEng, 11, 41}} {
		q := search.Query{Key: tc.key, Origin: tc.origin, MaxResults: -1}
		want, err := tc.eng.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var got []search.Hit
		for h, err := range tc.eng.Stream(context.Background(), q) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, h)
		}
		if !reflect.DeepEqual(got, want.Hits) {
			t.Fatalf("Stream = %+v, Do = %+v", got, want.Hits)
		}
	}

	// Breaking early stops the cascade: with ForwardWhenHit the flood
	// would otherwise run to the TTL; the message observer must go
	// quiet shortly after the break.
	var afterBreak int
	broke := false
	q := search.Query{Key: 7, Origin: 3, MaxResults: -1, OnMessage: func(_, _ search.NodeID) {
		if broke {
			afterBreak++
		}
	}}
	for range richEng.Stream(context.Background(), q) {
		broke = true
		break
	}
	full, err := richEng.Do(context.Background(), search.Query{Key: 7, Origin: 3, MaxResults: -1})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(afterBreak) >= full.Messages {
		t.Errorf("break did not stop the cascade: %d messages after break, full flood %d", afterBreak, full.Messages)
	}
}

// TestStreamBreakWithIndexBurst: one arrival can yield several results
// back-to-back (index answers) with no halt poll in between; breaking
// on the first must not panic the range-over-func contract.
func TestStreamBreakWithIndexBurst(t *testing.T) {
	net := newTestNet(10, 2)
	ix := core.IndexFunc(func(at search.NodeID, key search.Key) []search.NodeID {
		// Every visited node indexes two holders.
		return []search.NodeID{(at + 3) % 10, (at + 4) % 10}
	})
	eng, err := search.New(net, search.WithTTL(4), search.WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range eng.Stream(context.Background(), search.Query{Key: 999, Origin: 0, MaxResults: -1}) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break
	}
	if n != 1 {
		t.Fatalf("yielded %d hits after break, want 1", n)
	}
}

func TestStreamYieldsError(t *testing.T) {
	net := newTestNet(10, 2)
	eng, err := search.New(net, search.WithTTL(3))
	if err != nil {
		t.Fatal(err)
	}
	var last error
	n := 0
	for _, err := range eng.Stream(context.Background(), search.Query{Key: 1, Origin: 0, TTL: -1}) {
		n++
		last = err
	}
	if n != 1 || last == nil {
		t.Fatalf("invalid query streamed %d pairs, last err %v; want single error pair", n, last)
	}
}

// TestBatchMatchesSequentialDo: Batch at several worker counts is
// byte-identical to sequential Do — including with a stochastic
// policy, whose per-query streams derive from the query, not from
// shared state.
func TestBatchMatchesSequentialDo(t *testing.T) {
	net := newTestNet(64, 4)
	mk := func() *search.Engine {
		eng, err := search.New(net,
			search.WithPolicy("random-2"),
			search.WithSeed(7),
			search.WithTTL(8),
			search.WithDelay(stepDelay))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	qs := make([]search.Query, 40)
	for i := range qs {
		qs[i] = search.Query{ID: uint64(i), Key: search.Key(i * 3), Origin: search.NodeID(i % 64)}
	}

	seq := make([]search.Result, len(qs))
	seqEng := mk()
	for i, q := range qs {
		r, err := seqEng.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}
	want, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 32} {
		eng, err := search.New(net,
			search.WithPolicy("random-2"),
			search.WithSeed(7),
			search.WithTTL(8),
			search.WithDelay(stepDelay),
			search.WithBatchWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Batch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(want) {
			t.Fatalf("Batch(workers=%d) diverges from sequential Do", workers)
		}
	}
}

func TestBatchPropagatesErrors(t *testing.T) {
	eng, err := search.New(newTestNet(10, 2), search.WithTTL(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Batch(context.Background(), []search.Query{
		{Key: 1, Origin: 0},
		{Key: 2, Origin: 0, TTL: -1},
	})
	if err == nil {
		t.Fatal("batch with invalid query succeeded")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Batch(ctx, []search.Query{{Key: 1, Origin: 0}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch = %v, want context.Canceled", err)
	}
}

func TestExplore(t *testing.T) {
	net := newTestNet(12, 2)
	eng, err := search.New(net, search.WithTTL(2))
	if err != nil {
		t.Fatal(err)
	}
	msgs := 0
	out, err := eng.Explore(context.Background(), search.Exploration{
		Keys:      []search.Key{2, 3, 99},
		Origin:    0,
		OnMessage: func(_, _ search.NodeID) { msgs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(msgs) != out.Messages {
		t.Errorf("observer saw %d messages, outcome says %d", msgs, out.Messages)
	}
	// TTL 2 reaches nodes 1, 2, 10, 11: node 2 holds key 2 (2%12), the
	// others hold none of the probes.
	if len(out.Findings) != 4 {
		t.Fatalf("explored %d nodes, want 4: %+v", len(out.Findings), out.Findings)
	}
	holders := out.Holders(2)
	if len(holders) != 1 || holders[0] != 2 {
		t.Errorf("Holders(2) = %v, want [2]", holders)
	}
	// The outcome is caller-owned: a subsequent search through the same
	// engine must not clobber it.
	snap, _ := json.Marshal(out)
	if _, err := eng.Do(context.Background(), search.Query{Key: 5, Origin: 0, TTL: 6}); err != nil {
		t.Fatal(err)
	}
	after, _ := json.Marshal(out)
	if string(snap) != string(after) {
		t.Error("explore outcome aliased pooled memory")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := search.New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
	net := newTestNet(4, 2)
	if _, err := search.New(net, search.WithTTL(-1)); err == nil {
		t.Error("WithTTL(-1) accepted")
	}
	if _, err := search.New(net, search.WithDeepening(nil, 0)); err == nil {
		t.Error("empty deepening accepted")
	}
	if _, err := search.New(net, search.WithDeepening([]int{2, 2}, 0)); err == nil {
		t.Error("non-increasing deepening accepted")
	}
}

func TestDeepening(t *testing.T) {
	net := newTestNet(20, 2)
	eng, err := search.New(net,
		search.WithDeepening([]int{1, 2, 4, 8}, 1.5),
		search.WithDelay(func(_, _ search.NodeID) float64 { return 0.1 }))
	if err != nil {
		t.Fatal(err)
	}
	// Holder 4 hops away: satisfied on the third cycle (TTL 4), so two
	// failed cycles contribute 2 * 1.5 s of waiting.
	res, err := eng.Do(context.Background(), search.Query{Key: 4, Origin: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Hits[0].Holder != 4 {
		t.Fatalf("deepening missed: %+v", res)
	}
	if res.FirstResultDelay != 2*1.5+0.8 { // 4 fwd + 4 reply hops at 0.1
		t.Errorf("FirstResultDelay = %v, want 3.8", res.FirstResultDelay)
	}
	// Stream under deepening yields the final result set.
	var hits []search.Hit
	for h, err := range eng.Stream(context.Background(), search.Query{Key: 4, Origin: 0}) {
		if err != nil {
			t.Fatal(err)
		}
		hits = append(hits, h)
	}
	if !reflect.DeepEqual(hits, res.Hits) {
		t.Errorf("deepening Stream = %+v, want %+v", hits, res.Hits)
	}
}

// TestScratchPooledAcrossCalls: results survive the next call on the
// same engine (no aliasing of pooled buffers leaks to callers).
func TestScratchPooledAcrossCalls(t *testing.T) {
	net := newTestNet(30, 4)
	eng, err := search.New(net, search.WithTTL(5), search.WithForwardWhenHit(true))
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Do(context.Background(), search.Query{Key: 7, Origin: 0, MaxResults: -1})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := json.Marshal(first)
	for i := 0; i < 50; i++ {
		if _, err := eng.Do(context.Background(), search.Query{Key: search.Key(i), Origin: 3}); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := json.Marshal(first)
	if string(snap) != string(after) {
		t.Error("Result aliased pooled scratch memory")
	}
}
