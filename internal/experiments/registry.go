package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/runner"
)

// Definition is one named experiment, materialized for a scale and
// seed: the runner cells to execute plus the renderer that turns the
// finished results into paper-shaped tables. The CLI concatenates the
// cells of every selected definition into a single runner.Run, so the
// whole evaluation shares one worker pool.
type Definition struct {
	// Name is the CLI name ("fig1", "directed", ...).
	Name string
	// About is the one-line description `repro -list` prints.
	About string
	// Cells are the independent simulations, in a fixed order the
	// Tables renderer relies on.
	Cells []runner.Cell
	// Tables renders this definition's slice of the results (same
	// order and length as Cells).
	Tables func(rs []runner.Result) ([]*metrics.Table, error)
	// Perf, when non-nil, renders the experiment's wall-clock side
	// measurements as a BENCH_<name>.json document (see internal/perf).
	// The stress families (scale, skew, churnserve) set it; figure
	// experiments are fully described by their deterministic cells.
	Perf func(rs []runner.Result) (*perf.Report, error)
}

// Registry returns every canonical experiment in presentation order —
// the set run by `repro -exp all`. Aliases that re-render a subset of
// another experiment's tables (fig1a, fig2b, ...) are resolved by Find
// but excluded here so their cells never run twice.
func Registry(scale Scale, seed uint64) []Definition {
	figTables := func(ttl int, hits, msgs string) func(rs []runner.Result) ([]*metrics.Table, error) {
		return func(rs []runner.Result) ([]*metrics.Table, error) {
			f, err := AssembleFigSeries(scale, ttl, rs)
			if err != nil {
				return nil, err
			}
			var out []*metrics.Table
			if hits != "" {
				out = append(out, f.HitsTable(hits))
			}
			if msgs != "" {
				out = append(out, f.MsgsTable(msgs))
			}
			return out, nil
		}
	}
	variantTables := func(title string) func(rs []runner.Result) ([]*metrics.Table, error) {
		return func(rs []runner.Result) ([]*metrics.Table, error) {
			rows, err := AssembleVariants(rs)
			if err != nil {
				return nil, err
			}
			return []*metrics.Table{VariantTable(title, rows)}, nil
		}
	}
	return []Definition{
		{
			Name:  "fig1",
			About: "Figure 1: hits and query overhead per hour at hops=2, static vs dynamic",
			Cells: FigHourlyCells("fig1", scale, 2, seed),
			Tables: figTables(2,
				"Figure 1(a): queries satisfied per hour (hops=2)",
				"Figure 1(b): query overhead per hour (hops=2)"),
		},
		{
			Name:  "fig2",
			About: "Figure 2: hits and query overhead per hour at hops=4, static vs dynamic",
			Cells: FigHourlyCells("fig2", scale, 4, seed),
			Tables: figTables(4,
				"Figure 2(a): queries satisfied per hour (hops=4)",
				"Figure 2(b): query overhead per hour (hops=4)"),
		},
		{
			Name:  "fig3a",
			About: "Figure 3(a): first-result response time and result counts over TTL 1-4",
			Cells: Fig3aCells("fig3a", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				rows, err := AssembleFig3a(rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{Fig3aTable(rows)}, nil
			},
		},
		{
			Name:  "fig3b",
			About: "Figure 3(b): total hits over the reconfiguration threshold sweep",
			Cells: Fig3bCells("fig3b", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				rows, err := AssembleFig3b(rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{Fig3bTable(rows)}, nil
			},
		},
		{
			Name:   "directed",
			About:  "Ablation: Directed BFT vs flooding vs random-2 forwarding",
			Cells:  DirectedBFTCells("directed", scale, seed),
			Tables: variantTables("Ablation: Directed BFT vs flooding (dynamic, hops=3)"),
		},
		{
			Name:   "iterdeep",
			About:  "Ablation: iterative deepening {1,3} vs one full-depth flood",
			Cells:  IterDeepeningCells("iterdeep", scale, seed),
			Tables: variantTables("Ablation: iterative deepening (dynamic, max depth 3)"),
		},
		{
			Name:   "localindex",
			About:  "Ablation: radius-1 local indices with the flood shortened one hop",
			Cells:  LocalIndicesCells("localindex", scale, seed),
			Tables: variantTables("Ablation: local indices r=1 (technique iii of [10], hops=2)"),
		},
		{
			Name:   "asym",
			About:  "Ablation: symmetric (Algo 4) vs asymmetric (Algo 3) neighbor updates",
			Cells:  AsymmetricUpdateCells("asym", scale, seed),
			Tables: variantTables("Ablation: symmetric (Algo 4) vs asymmetric (Algo 3) updates (hops=2)"),
		},
		{
			Name:   "benefit",
			About:  "Ablation: benefit-function sensitivity of the dynamic gain",
			Cells:  BenefitFunctionsCells("benefit", scale, seed),
			Tables: variantTables("Ablation: benefit-function sensitivity (dynamic, hops=2)"),
		},
		{
			Name:  "drift",
			About: "Extension: mid-run preference drift and recovery, with ledger decay",
			Cells: DriftCells("drift", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				rows, err := AssembleDrift(scale, seed, rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{DriftTable(rows)}, nil
			},
		},
		{
			Name:  "webcache",
			About: "Case study: Squid-like cooperating proxies (one-hop, origin fallback)",
			Cells: WebCacheCells("webcache", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				rows, err := AssembleWebCache(rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{WebCacheTable(rows)}, nil
			},
		},
		{
			Name:  "peerolap",
			About: "Case study: PeerOlap chunk caching against a data warehouse",
			Cells: PeerOlapCells("peerolap", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				rows, err := AssemblePeerOlap(rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{PeerOlapTable(rows)}, nil
			},
		},
		scaleDefinition(scale, seed),
		{
			Name:  "policies",
			About: "Forward-policy registry swept over one shared network",
			Cells: PolicyCells("policies", scale, seed),
			Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
				sums, err := AssemblePolicies(rs)
				if err != nil {
					return nil, err
				}
				return []*metrics.Table{PolicyTable(sums)}, nil
			},
		},
		skewDefinition(scale, seed),
		churnServeDefinition(scale, seed),
		faultsDefinition(scale, seed),
	}
}

// churnServeDefinition wires the churnserve family (see churnserve.go)
// into the registry: deterministic post-quiesce summaries render as a
// table; the wall-clock collector renders as BENCH_churnserve.json with
// the saturate-under-churn headline.
func churnServeDefinition(scale Scale, seed uint64) Definition {
	cells, collector := ChurnServeCells("churnserve", scale, seed)
	return Definition{
		Name:  "churnserve",
		About: "Serving under churn: stop-the-world re-freeze vs zero-downtime epoch swaps",
		Cells: cells,
		Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
			sums, err := AssembleChurnServe(rs)
			if err != nil {
				return nil, err
			}
			return []*metrics.Table{ChurnServeTable(sums)}, nil
		},
		Perf: collector.Report,
	}
}

// ChurnServeTable renders the churnserve sweep. The stopworld and
// epochswap rows of one size must agree on everything but the mode —
// the table doubles as a visual identity check.
func ChurnServeTable(sums []*ChurnServeSummary) *metrics.Table {
	t := metrics.NewTable("Churnserve: saturated queries across churn epochs (post-quiesce probe)",
		"nodes", "mode", "epochs", "deltas/epoch", "final_edges", "probe_hit_rate", "probe_msgs/query")
	for _, s := range sums {
		t.AddRow(s.Nodes, s.Mode, s.Epochs, s.DeltasPerEpoch, s.FinalEdges,
			s.ProbeHitRate, s.ProbeMsgsPerQuery)
	}
	return t
}

// skewDefinition wires the skew family (see skew.go) into the
// registry: the session-driver grid renders as a table; the wall-clock
// collector renders as BENCH_skew.json.
func skewDefinition(scale Scale, seed uint64) Definition {
	cells, collector := SkewCells("skew", scale, seed)
	return Definition{
		Name:  "skew",
		About: "Session driver grid: Zipf skew × churn × policy, plus a flash crowd",
		Cells: cells,
		Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
			sums, err := AssembleSkew(rs)
			if err != nil {
				return nil, err
			}
			return []*metrics.Table{SkewTable(rs, sums)}, nil
		},
		Perf: collector.Report,
	}
}

// scaleDefinition wires the scale family (see scale.go) into the
// registry: deterministic summaries render as a table; the wall-clock
// collector renders as BENCH_scale.json.
func scaleDefinition(scale Scale, seed uint64) Definition {
	cells, collector := ScaleCells("scale", scale, seed)
	return Definition{
		Name:  "scale",
		About: "Engine stress: 1k-1M-node cascade sweeps plus the CSR re-freeze cell",
		Cells: cells,
		Tables: func(rs []runner.Result) ([]*metrics.Table, error) {
			sums, err := AssembleScale(rs)
			if err != nil {
				return nil, err
			}
			return []*metrics.Table{ScaleTable(sums)}, nil
		},
		Perf: collector.Report,
	}
}

// ScaleTable renders the scale sweep.
func ScaleTable(sums []*ScaleSummary) *metrics.Table {
	t := metrics.NewTable("Scale: cascade engine at 1k-100k nodes (clients/providers/bystanders)",
		"nodes", "clients", "providers", "hit_rate", "msgs/query", "visited", "p50_ms", "p95_ms", "p99_ms")
	for _, s := range sums {
		t.AddRow(s.Nodes, s.Clients, s.Providers, s.HitRate, s.MsgsPerQuery, s.VisitedMean,
			s.DelayP50Ms, s.DelayP95Ms, s.DelayP99Ms)
	}
	return t
}

// aliases maps single-table shortcuts to (canonical experiment, which
// table to keep): fig1a is the hits half of fig1, fig1b the overhead
// half, and so on.
var aliases = map[string]struct {
	canonical string
	table     int
}{
	"fig1a": {"fig1", 0},
	"fig1b": {"fig1", 1},
	"fig2a": {"fig2", 0},
	"fig2b": {"fig2", 1},
}

// Names returns the canonical experiment names in presentation order.
func Names() []string {
	defs := Registry(CI, 1)
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// Find resolves an experiment name (canonical or alias) to a
// definition at the given scale and seed.
func Find(name string, scale Scale, seed uint64) (Definition, error) {
	target, tableIdx := name, -1
	if a, ok := aliases[name]; ok {
		target, tableIdx = a.canonical, a.table
	}
	for _, d := range Registry(scale, seed) {
		if d.Name != target {
			continue
		}
		if tableIdx < 0 {
			return d, nil
		}
		inner := d.Tables
		idx := tableIdx
		d.Name = name
		d.Tables = func(rs []runner.Result) ([]*metrics.Table, error) {
			tables, err := inner(rs)
			if err != nil {
				return nil, err
			}
			if idx >= len(tables) {
				return nil, fmt.Errorf("experiments: alias %q wants table %d of %d", name, idx, len(tables))
			}
			return tables[idx : idx+1], nil
		}
		return d, nil
	}
	return Definition{}, fmt.Errorf("experiments: unknown experiment %q (want one of %s, or %s)",
		name, strings.Join(Names(), " "), "fig1a fig1b fig2a fig2b")
}
