// Package perf defines the machine-readable benchmark artifact emitted
// by this repository's performance pipeline: the BENCH_*.json files
// that CI uploads on every run and that the repository tracks as its
// performance trajectory across PRs.
//
// Two producers feed the format:
//
//   - the scale experiment family (internal/experiments) measures the
//     cascade engine directly — events/sec, allocs/query, message
//     counts, delay percentiles — and writes BENCH_scale.json next to
//     its deterministic runs/<name>/ artifacts;
//   - cmd/perfcheck parses `go test -bench` output into the same
//     schema (BENCH_ci.json) and gates CI on allocs/op regressions
//     against the checked-in baseline (BENCH_baseline.json).
//
// Unlike cells.json, BENCH files are NOT byte-deterministic: they carry
// wall-clock throughput. Regression gating therefore only compares
// schedule-independent metrics — CI gates on allocs/op (see
// cmd/perfcheck); wall-clock metrics are recorded but never gated.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Entry is one benchmarked unit: a Go benchmark, or one cell of the
// scale experiment.
type Entry struct {
	// Name identifies the unit ("BenchmarkFig1", "scale/n100000", ...).
	Name string `json:"name"`
	// Metrics maps metric name to value. Conventional keys: "ns/op",
	// "B/op", "allocs/op", "events/sec", "allocs/query", "msgs/query",
	// "delay_p50_ms", "delay_p95_ms", "delay_p99_ms".
	Metrics map[string]float64 `json:"metrics"`
}

// Metric returns a metric value and whether it is present.
func (e *Entry) Metric(name string) (float64, bool) {
	v, ok := e.Metrics[name]
	return v, ok
}

// Report is the toplevel BENCH_*.json document.
type Report struct {
	// Schema versions the document layout.
	Schema string `json:"schema"`
	// Source says which producer wrote the file ("go-bench",
	// "scale-experiment").
	Source string `json:"source"`
	// Entries is sorted by Name for stable diffs.
	Entries []Entry `json:"entries"`
}

// SchemaVersion is the current value of Report.Schema.
const SchemaVersion = "repro-bench/v1"

// NewReport returns an empty report from the given source.
func NewReport(source string) *Report {
	return &Report{Schema: SchemaVersion, Source: source}
}

// Add appends or merges an entry: metrics of an existing name are
// overwritten key-wise, so producers can accumulate incrementally.
func (r *Report) Add(name string, metrics map[string]float64) {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			for k, v := range metrics {
				r.Entries[i].Metrics[k] = v
			}
			return
		}
	}
	m := make(map[string]float64, len(metrics))
	for k, v := range metrics {
		m[k] = v
	}
	r.Entries = append(r.Entries, Entry{Name: name, Metrics: m})
}

// Get returns the entry with the given name, or nil.
func (r *Report) Get(name string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// sorted returns the entries ordered by name (writing normalizes order
// so reports diff cleanly regardless of production order).
func (r *Report) sorted() {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
}

// Write marshals the report (entries sorted by name) to path, creating
// parent directories as needed.
func (r *Report) Write(path string) error {
	r.sorted()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Read loads a report from path and validates the schema.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Regression is one metric that worsened beyond the allowed ratio.
type Regression struct {
	Entry    string  // entry name
	Metric   string  // metric name
	Baseline float64 // checked-in value
	Current  float64 // measured value
	Ratio    float64 // Current / Baseline
}

// String implements fmt.Stringer.
func (g Regression) String() string {
	return fmt.Sprintf("%s %s: %.0f -> %.0f (%.2fx)", g.Entry, g.Metric, g.Baseline, g.Current, g.Ratio)
}

// Compare gates current against baseline: for every baseline entry and
// every listed metric present on both sides, the current value may be
// at most maxRatio times the baseline. Entries or metrics missing from
// current are regressions too (a silently dropped benchmark must not
// pass the gate); entries only in current are ignored (new benchmarks
// need no baseline to land). Zero baselines gate on current > 0.
func Compare(baseline, current *Report, maxRatio float64, metrics ...string) []Regression {
	var out []Regression
	for _, be := range baseline.Entries {
		ce := current.Get(be.Name)
		for _, m := range metrics {
			bv, ok := be.Metric(m)
			if !ok {
				continue
			}
			if ce == nil {
				out = append(out, Regression{Entry: be.Name, Metric: m, Baseline: bv, Current: -1, Ratio: -1})
				continue
			}
			cv, ok := ce.Metric(m)
			if !ok {
				out = append(out, Regression{Entry: be.Name, Metric: m, Baseline: bv, Current: -1, Ratio: -1})
				continue
			}
			switch {
			case bv == 0:
				if cv > 0 {
					out = append(out, Regression{Entry: be.Name, Metric: m, Baseline: bv, Current: cv, Ratio: -1})
				}
			case cv > bv*maxRatio:
				out = append(out, Regression{Entry: be.Name, Metric: m, Baseline: bv, Current: cv, Ratio: cv / bv})
			}
		}
	}
	return out
}
