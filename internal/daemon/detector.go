package daemon

import "sort"

// MemberStatus is a failure detector verdict about one member.
type MemberStatus string

// Detector verdicts. A member is Alive while its heartbeat keeps
// advancing, Suspect once it has been silent for SuspectAfter local
// rounds, and Dead (evicted from the view, remembered by a tombstone)
// after EvictAfter rounds of silence.
const (
	StatusAlive   MemberStatus = "alive"
	StatusSuspect MemberStatus = "suspect"
	StatusDead    MemberStatus = "dead"
)

// Detection parameterizes the heartbeat failure detector. All spans
// are in local gossip rounds (one Tick per round), so the wall-clock
// thresholds scale with the configured gossip interval.
type Detection struct {
	// SuspectAfter is how many rounds without a heartbeat advance mark
	// a member suspect.
	SuspectAfter uint64
	// EvictAfter is how many silent rounds confirm death and evict the
	// member from the view (must exceed SuspectAfter).
	EvictAfter uint64
	// Amnesty is how many rounds an eviction tombstone blocks
	// re-adoption of beats at or below the evicted one. A member that
	// kept beating behind a partition returns immediately (its beat
	// outruns the tombstone); one that restarted from beat zero waits
	// out the amnesty window.
	Amnesty uint64
}

// DefaultDetection is the detector configuration servers start with:
// suspect at 3 silent rounds, evict at 6, tombstones expire after 12.
func DefaultDetection() Detection {
	return Detection{SuspectAfter: 3, EvictAfter: 6, Amnesty: 12}
}

// tombstone remembers an eviction: entries with Beat <= beat are
// rejected until round expire.
type tombstone struct {
	beat   uint64
	expire uint64
}

// fdState is the detector side of a Gossip, guarded by Gossip.mu.
type fdState struct {
	det   Detection
	round uint64
	// lastBeat/lastAdvance track, per member, the newest heartbeat seen
	// and the local round it arrived in.
	lastBeat    map[string]uint64
	lastAdvance map[string]uint64
	tombs       map[string]tombstone
}

func newFDState(det Detection) fdState {
	return fdState{
		det:         det,
		lastBeat:    make(map[string]uint64),
		lastAdvance: make(map[string]uint64),
		tombs:       make(map[string]tombstone),
	}
}

// SetDetection replaces the detector thresholds (before serving
// starts; the zero SuspectAfter disables suspicion entirely).
func (g *Gossip) SetDetection(det Detection) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fd.det = det
}

// Tick advances the failure detector one round: members whose
// heartbeat has not advanced for EvictAfter rounds are evicted from
// the view behind a tombstone. It returns the names evicted this
// round, sorted. Tick is deliberately separate from Beat — Beat is
// "I am alive", Tick is "judge everyone else" — so transport-free
// gossip tests can drive rounds without a detector in the loop.
func (g *Gossip) Tick() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fd.round++
	now := g.fd.round
	// Expire old tombstones so restarted members can rejoin.
	for name, ts := range g.fd.tombs {
		if now >= ts.expire {
			delete(g.fd.tombs, name)
		}
	}
	if g.fd.det.EvictAfter == 0 {
		return nil
	}
	var evicted []string
	for name, m := range g.view {
		if name == g.self {
			continue
		}
		last, known := g.fd.lastAdvance[name]
		if !known || m.Beat > g.fd.lastBeat[name] {
			g.fd.lastBeat[name] = m.Beat
			g.fd.lastAdvance[name] = now
			continue
		}
		if now-last >= g.fd.det.EvictAfter {
			delete(g.view, name)
			delete(g.fd.lastBeat, name)
			delete(g.fd.lastAdvance, name)
			g.fd.tombs[name] = tombstone{beat: m.Beat, expire: now + g.fd.det.Amnesty}
			g.version++
			evicted = append(evicted, name)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// statusLocked classifies one member under g.mu.
func (g *Gossip) statusLocked(name string) MemberStatus {
	if name == g.self {
		return StatusAlive
	}
	if _, dead := g.fd.tombs[name]; dead {
		return StatusDead
	}
	if g.fd.det.SuspectAfter == 0 {
		return StatusAlive
	}
	last, known := g.fd.lastAdvance[name]
	if !known {
		// Never judged yet (adopted this round); innocent until silent.
		return StatusAlive
	}
	silent := g.fd.round - last
	switch {
	case silent >= g.fd.det.EvictAfter:
		return StatusDead
	case silent >= g.fd.det.SuspectAfter:
		return StatusSuspect
	default:
		return StatusAlive
	}
}

// Status returns the detector's verdict on one member. Unknown,
// untombstoned names report Dead (we have no evidence they live).
func (g *Gossip) Status(name string) MemberStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.view[name]; !ok {
		return StatusDead
	}
	return g.statusLocked(name)
}

// Statuses returns the verdict for every member currently in the view.
func (g *Gossip) Statuses() map[string]MemberStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]MemberStatus, len(g.view))
	for name := range g.view {
		out[name] = g.statusLocked(name)
	}
	return out
}

// Suspects returns the members currently suspected or worse, sorted —
// the query plane's signal that responses may be missing a shard.
func (g *Gossip) Suspects() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for name := range g.view {
		if name == g.self {
			continue
		}
		if s := g.statusLocked(name); s != StatusAlive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// filterTombstoned drops remote entries an unexpired tombstone rejects
// (beat not newer than at eviction); an entry that outruns its
// tombstone earns amnesty and clears it. Called under g.mu.
func (g *Gossip) filterTombstoned(remote View) View {
	if len(g.fd.tombs) == 0 {
		return remote
	}
	out := make(View, len(remote))
	for name, m := range remote {
		if ts, dead := g.fd.tombs[name]; dead {
			if m.Beat <= ts.beat {
				continue
			}
			delete(g.fd.tombs, name) // rejoin amnesty: it is provably alive
		}
		out[name] = m
	}
	return out
}
