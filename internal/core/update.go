package core

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file implements the neighbor-update module of Section 3.4:
// Algo 3 for (pure) asymmetric relations, where a node reconfigures
// unilaterally, and Algo 4 for symmetric relations, where changes
// require the invitation/eviction agreement. The Gnutella case study's
// Algo 5 is Algo 4 with the "invited node always accepts" policy and a
// one-swap-per-reconfiguration limit.

// PlanAsymmetric computes the new outgoing list for a node under
// Algo 3: rank every peer in the ledger by the benefit function, take
// the top capacity eligible ones. current is used to fill remaining
// slots (in current order) when the ledger knows fewer than capacity
// eligible peers, so a node never discards neighbors for lack of
// information.
func PlanAsymmetric(led *stats.Ledger, b stats.Benefit, capacity int, current []topology.NodeID, eligible func(topology.NodeID) bool) []topology.NodeID {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: PlanAsymmetric with capacity %d", capacity))
	}
	exclude := func(id topology.NodeID) bool { return eligible != nil && !eligible(id) }
	desired := led.TopK(b, capacity, exclude)
	if len(desired) < capacity {
		have := make(map[topology.NodeID]bool, len(desired))
		for _, id := range desired {
			have[id] = true
		}
		for _, id := range current {
			if len(desired) >= capacity {
				break
			}
			if !have[id] && (eligible == nil || eligible(id)) {
				desired = append(desired, id)
				have[id] = true
			}
		}
	}
	return desired
}

// ApplyOutList reconciles node id's outgoing list with desired on an
// asymmetric network: evict neighbors not in desired, then connect the
// missing ones. It returns what actually changed (a connect can fail if
// the target's incoming list is capped).
func ApplyOutList(net *topology.Network, id topology.NodeID, desired []topology.NodeID) (added, removed []topology.NodeID) {
	want := make(map[topology.NodeID]bool, len(desired))
	for _, d := range desired {
		want[d] = true
	}
	for _, cur := range net.Node(id).Out.Snapshot() {
		if !want[cur] {
			if net.Disconnect(id, cur) {
				removed = append(removed, cur)
			}
		}
	}
	for _, d := range desired {
		if d == id || net.Node(id).Out.Contains(d) {
			continue
		}
		if net.Connect(id, d) {
			added = append(added, d)
		}
	}
	return added, removed
}

// InvitePolicy selects how an invited node decides (Section 3.4
// distinguishes the two cases).
type InvitePolicy uint8

const (
	// AlwaysAccept is case (i): the invited node always accepts,
	// evicting its least beneficial neighbor when full — the Gnutella
	// case-study choice (Algo 5 Process_Invitation).
	AlwaysAccept InvitePolicy = iota
	// BenefitBased is case (ii): the invited node accepts only when its
	// incoming list has room or the inviter is more beneficial than at
	// least one current incoming neighbor.
	BenefitBased
)

// String implements fmt.Stringer.
func (p InvitePolicy) String() string {
	switch p {
	case AlwaysAccept:
		return "always-accept"
	case BenefitBased:
		return "benefit-based"
	default:
		return fmt.Sprintf("InvitePolicy(%d)", uint8(p))
	}
}

// SymmetricEnv is what the symmetric updater needs from its runtime.
// The simulator implements it over the global network; the live runtime
// implements it over real message exchange.
type SymmetricEnv interface {
	// Net returns the (symmetric-regime) network being reconfigured.
	Net() *topology.Network
	// Ledger returns a node's statistics ledger.
	Ledger(id topology.NodeID) *stats.Ledger
	// Online reports node liveness; off-line nodes are never invited
	// and never accept.
	Online(id topology.NodeID) bool
	// Control meters one control message (invite, eviction, reply).
	Control(kind netsim.MessageKind, from, to topology.NodeID)
	// ResetCounter resets a node's reconfiguration counter (Algo 5:
	// accepting an invitation resets the invited node's counter "to
	// avoid updating the neighborhood in the near future, which could
	// trigger cascading updates").
	ResetCounter(id topology.NodeID)
}

// SymmetricUpdater executes Algo 4 reconfigurations.
type SymmetricUpdater struct {
	// Benefit ranks peers. Required.
	Benefit stats.Benefit
	// Capacity is the maximum number of neighbors (the paper uses 4).
	Capacity int
	// Invite selects the invited node's decision rule.
	Invite InvitePolicy
	// MaxSwaps bounds how many new neighbors one reconfiguration may
	// invite; 0 means unlimited. The paper's case study exchanges one
	// neighbor per reconfiguration ("only one neighbor is exchanged
	// during each reconfiguration").
	MaxSwaps int
}

// ReconfigReport describes what one reconfiguration did.
type ReconfigReport struct {
	// Invited lists invitation targets, in rank order.
	Invited []topology.NodeID
	// Accepted lists invitations that were accepted (edges created).
	Accepted []topology.NodeID
	// Evicted lists neighbors the reconfiguring node evicted.
	Evicted []topology.NodeID
}

// Changed reports whether the reconfiguration modified any edge.
func (r *ReconfigReport) Changed() bool {
	return len(r.Accepted) > 0 || len(r.Evicted) > 0
}

// Reconfigure runs Algo 4 (equivalently Algo 5's Reconfigure) for node
// id: compute the most beneficial eligible peers, invite the best
// non-neighbors (evicting the least beneficial current neighbors to
// make room), and reset the node's reconfiguration counter.
func (u *SymmetricUpdater) Reconfigure(env SymmetricEnv, id topology.NodeID) ReconfigReport {
	if u.Capacity <= 0 {
		panic(fmt.Sprintf("core: SymmetricUpdater capacity %d", u.Capacity))
	}
	var rep ReconfigReport
	net := env.Net()
	led := env.Ledger(id)
	self := net.Node(id)

	// Rank candidates: online peers, excluding self.
	ranked := led.Rank(u.Benefit, func(p topology.NodeID) bool {
		return p == id || !env.Online(p)
	})

	// Lnew = the top-capacity peers; invitations go to those not
	// currently neighbors (Algo 5: "invitation messages are sent to the
	// ones that do not belong to the current list of neighbors").
	// Following the Algo 4 ordering, eviction of the node's own worst
	// neighbor happens only after a positive reply.
	swaps := 0
	for _, cand := range ranked {
		if u.MaxSwaps > 0 && swaps >= u.MaxSwaps {
			break
		}
		if len(rep.Invited) >= u.Capacity {
			break
		}
		if self.Out.Contains(cand.Peer) {
			continue
		}
		// If the outgoing list is full, the candidate must actually
		// outrank the least beneficial current neighbor; ranked is
		// sorted, so once one candidate fails this test none can pass.
		var worst topology.NodeID = topology.None
		if self.Out.Full() {
			worst = led.Least(u.Benefit, self.Out.IDs())
			worstScore := 0.0
			if r := led.Get(worst); r != nil {
				worstScore = u.Benefit.Score(r)
			}
			if cand.Score <= worstScore {
				break
			}
		}
		rep.Invited = append(rep.Invited, cand.Peer)
		env.Control(netsim.MsgInvite, id, cand.Peer)
		if !u.decideInvitation(env, id, cand.Peer) {
			env.Control(netsim.MsgInviteReply, cand.Peer, id)
			continue
		}
		// Positive reply: make room on both sides, then connect.
		if worst != topology.None && self.Out.Full() {
			u.evict(env, id, worst)
			rep.Evicted = append(rep.Evicted, worst)
		}
		u.makeRoom(env, cand.Peer)
		ok := net.Connect(id, cand.Peer)
		env.Control(netsim.MsgInviteReply, cand.Peer, id)
		if ok {
			rep.Accepted = append(rep.Accepted, cand.Peer)
			env.ResetCounter(cand.Peer)
			swaps++
		}
	}
	env.ResetCounter(id)
	return rep
}

// evict implements the eviction message: the edge disappears in both
// directions and the victim resets its statistics about the evictor
// (Algo 5 Process_Eviction), so it will not attempt to reconnect soon.
func (u *SymmetricUpdater) evict(env SymmetricEnv, from, victim topology.NodeID) {
	env.Control(netsim.MsgEvict, from, victim)
	env.Net().Disconnect(from, victim)
	env.Ledger(victim).Reset(from)
}

// decideInvitation evaluates Algo 4's "On Neighboring Invitation
// Arrival" decision at the invited node, without side effects.
func (u *SymmetricUpdater) decideInvitation(env SymmetricEnv, inviter, invited topology.NodeID) bool {
	if !env.Online(invited) || inviter == invited {
		return false
	}
	node := env.Net().Node(invited)
	if node.Out.Contains(inviter) {
		return false // already neighbors; nothing to do
	}
	switch u.Invite {
	case AlwaysAccept:
		return true
	case BenefitBased:
		if !node.In.Full() {
			return true
		}
		led := env.Ledger(invited)
		worst := led.Least(u.Benefit, node.In.IDs())
		worstScore := 0.0
		if r := led.Get(worst); r != nil {
			worstScore = u.Benefit.Score(r)
		}
		inviterScore := 0.0
		if r := led.Get(inviter); r != nil {
			inviterScore = u.Benefit.Score(r)
		}
		return inviterScore > worstScore
	default:
		panic(fmt.Sprintf("core: unknown invite policy %d", u.Invite))
	}
}

// makeRoom evicts the invited node's least beneficial neighbor if its
// outgoing list is full (Algo 5 Process_Invitation: "evict least
// beneficial neighbor according to statistics").
func (u *SymmetricUpdater) makeRoom(env SymmetricEnv, invited topology.NodeID) {
	node := env.Net().Node(invited)
	if node.Out.Full() {
		worst := env.Ledger(invited).Least(u.Benefit, node.Out.IDs())
		u.evict(env, invited, worst)
	}
}

// DeliverInvitation processes an invitation at the invited node and
// reports acceptance (Algo 4 "On Neighboring Invitation Arrival" /
// Algo 5 Process_Invitation). On acceptance the invited node makes
// room, the symmetric edge is created, and the invited node's
// reconfiguration counter resets. The inviter must have room in its own
// outgoing list (the Reconfigure loop guarantees this; external callers
// such as the live runtime check before inviting).
func (u *SymmetricUpdater) DeliverInvitation(env SymmetricEnv, inviter, invited topology.NodeID) bool {
	if !u.decideInvitation(env, inviter, invited) {
		env.Control(netsim.MsgInviteReply, invited, inviter)
		return false
	}
	u.makeRoom(env, invited)
	ok := env.Net().Connect(invited, inviter)
	env.Control(netsim.MsgInviteReply, invited, inviter)
	if ok {
		env.ResetCounter(invited)
	}
	return ok
}
