package eventq

import (
	"math"
	"sort"
	"testing"
)

// refQueue is the trusted oracle: the existing indexed binary heap.
type refQueue struct{ q *Queue }

func (r *refQueue) push(t float64, v int) { r.q.Push(t, v) }
func (r *refQueue) pop() (float64, int, bool) {
	it := r.q.Pop()
	if it == nil {
		return 0, 0, false
	}
	return it.Time, it.Value.(int), true
}

// lcg is a tiny deterministic generator so the tests need no seeding
// policy from the rng package.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) float() float64 { // in [0, 1)
	return float64(g.next()>>11) / (1 << 53)
}

// delayModels are the distributions a cascade might sample hop delays
// from; every one must produce byte-identical pop sequences between
// Monotone and the reference heap.
var delayModels = map[string]func(g *lcg) float64{
	"zero":     func(*lcg) float64 { return 0 },
	"constant": func(*lcg) float64 { return 0.125 },
	"netsim":   func(g *lcg) float64 { return 0.070 + 0.280*g.float() },
	"tiny-spread": func(g *lcg) float64 {
		return 0.1 + 1e-9*g.float() // near-identical delays: degenerate width
	},
	"heavy-tail": func(g *lcg) float64 {
		d := 0.01 + 0.04*g.float()
		if g.next()%64 == 0 {
			d *= 1e5 // occasional enormous delay: forces the heap fallback
		}
		return d
	},
	"micro": func(g *lcg) float64 { return 1e-7 * g.float() },
}

// driveCascade emulates the cascade's push/pop pattern: a seed burst,
// then each pop triggers a random fan-out of pushes at now + delay.
// It returns the pop sequence (time, payload) of the queue under test.
func driveCascade(t *testing.T, push func(float64, int), pop func() (float64, int, bool),
	seed uint64, delay func(*lcg) float64, events int) (times []float64, vals []int) {
	t.Helper()
	g := lcg(seed)
	n := 0
	for i := 0; i < 4; i++ {
		push(delay(&g), n)
		n++
	}
	for {
		tm, v, ok := pop()
		if !ok {
			break
		}
		times = append(times, tm)
		vals = append(vals, v)
		if n < events {
			fan := int(g.next() % 4)
			for i := 0; i < fan && n < events; i++ {
				push(tm+delay(&g), n)
				n++
			}
		}
	}
	return times, vals
}

// TestMonotoneMatchesHeapOrder: under every delay model, the bucketed
// queue pops the exact sequence the reference binary heap does.
func TestMonotoneMatchesHeapOrder(t *testing.T) {
	for name, delay := range delayModels {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				m := NewMonotone[int](0)
				ref := &refQueue{q: New()}
				mt, mv := driveCascade(t, m.Push, m.Pop, seed, delay, 500)
				rt, rv := driveCascade(t, func(tm float64, v int) { ref.push(tm, v) }, ref.pop, seed, delay, 500)
				if len(mt) != len(rt) {
					t.Fatalf("seed %d: %d pops vs %d reference pops", seed, len(mt), len(rt))
				}
				for i := range mt {
					if mt[i] != rt[i] || mv[i] != rv[i] {
						t.Fatalf("seed %d pop %d: (%v, %d) vs reference (%v, %d) [mode %s]",
							seed, i, mt[i], mv[i], rt[i], rv[i], m.Mode())
					}
				}
			}
		})
	}
}

// TestMonotoneReuseMatchesFresh: a Reset queue reproduces a fresh
// queue's pop sequence exactly — the pooling contract core.Scratch
// relies on.
func TestMonotoneReuseMatchesFresh(t *testing.T) {
	reused := NewMonotone[int](0)
	for name, delay := range delayModels {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				fresh := NewMonotone[int](0)
				reused.Reset()
				ft, fv := driveCascade(t, fresh.Push, fresh.Pop, seed, delay, 300)
				rt, rv := driveCascade(t, reused.Push, reused.Pop, seed, delay, 300)
				if len(ft) != len(rt) {
					t.Fatalf("seed %d: fresh %d pops, reused %d", seed, len(ft), len(rt))
				}
				for i := range ft {
					if ft[i] != rt[i] || fv[i] != rv[i] {
						t.Fatalf("seed %d pop %d: reused queue diverged", seed, i)
					}
				}
			}
		})
	}
}

// TestMonotoneModes pins the representation transitions: sorted (and
// small out-of-order) pushes stay in the run, a large-frontier
// inversion moves to buckets, and a runaway spread degrades to the
// heap — with the pop order exact throughout.
func TestMonotoneModes(t *testing.T) {
	q := NewMonotone[int](0)
	if q.Mode() != "run" {
		t.Fatalf("fresh queue in mode %s, want run", q.Mode())
	}
	type entry struct {
		t float64
		v int
	}
	var want []entry
	push := func(tm float64, v int) {
		q.Push(tm, v)
		want = append(want, entry{tm, v})
	}
	push(1, 0)
	push(2, 1)
	push(2, 2)   // ties append
	push(1.5, 3) // small-frontier inversion: binary insert, still the run
	if q.Mode() != "run" {
		t.Fatalf("small inversion left the run: %s", q.Mode())
	}
	// Grow the pending set beyond the run-insert bound, then invert.
	v := 4
	for ; v < 4+runInsertMax; v++ {
		push(3+float64(v)/1000, v)
	}
	push(2.5, v)
	v++
	if q.Mode() != "buckets" {
		t.Fatalf("large-frontier inversion did not bucket: %s", q.Mode())
	}
	push(1e9, v) // far beyond the window: re-buckets with a wider width
	v++
	if q.Mode() != "buckets" {
		t.Fatalf("out-of-window push did not re-bucket: %s", q.Mode())
	}
	// A spread that keeps outgrowing geometrically widened windows
	// exhausts the re-bucketing budget and degrades to the heap.
	next := 1e13
	for q.Mode() == "buckets" && v < 200 {
		push(next, v)
		next *= 1e4
		v++
	}
	if q.Mode() != "heap" {
		t.Fatal("runaway spread never degraded to heap")
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
	for i, w := range want {
		tm, got, ok := q.Pop()
		if !ok || tm != w.t || got != w.v {
			t.Fatalf("pop %d = (%v, %v, %v), want (%v, %d, true)", i, tm, got, ok, w.t, w.v)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue reported ok")
	}
}

// TestMonotoneNaNDegrades: a NaN time cannot be bucketed; the queue
// must degrade instead of corrupting its index arithmetic.
func TestMonotoneNaNDegrades(t *testing.T) {
	q := NewMonotone[int](0)
	for v := 0; v <= runInsertMax; v++ {
		q.Push(2+float64(v)/1000, v)
	}
	q.Push(1, -1) // large-frontier inversion: to buckets
	if q.Mode() != "buckets" {
		t.Fatalf("setup failed: mode %s, want buckets", q.Mode())
	}
	q.Push(math.NaN(), -2)
	if q.Mode() != "heap" {
		t.Fatalf("NaN push left mode %s, want heap", q.Mode())
	}
	if n := q.Len(); n != runInsertMax+3 {
		t.Fatalf("Len = %d, want %d", n, runInsertMax+3)
	}
}

// TestMonotoneForceHeap: the differential-test hook starts the queue on
// the heap and produces the same order.
func TestMonotoneForceHeap(t *testing.T) {
	ForceHeapQueue = true
	defer func() { ForceHeapQueue = false }()
	q := NewMonotone[int](0)
	if q.Mode() != "heap" {
		t.Fatalf("ForceHeapQueue ignored: mode %s", q.Mode())
	}
	delay := delayModels["netsim"]
	ref := &refQueue{q: New()}
	mt, mv := driveCascade(t, q.Push, q.Pop, 7, delay, 300)
	rt, rv := driveCascade(t, func(tm float64, v int) { ref.push(tm, v) }, ref.pop, 7, delay, 300)
	for i := range mt {
		if mt[i] != rt[i] || mv[i] != rv[i] {
			t.Fatalf("forced heap diverged at pop %d", i)
		}
	}
}

// TestMonotoneGrow: pre-sizing keeps the first run allocation-free and
// does not disturb pending items.
func TestMonotoneGrow(t *testing.T) {
	q := NewMonotone[int](64)
	if cap(q.run) < 64 {
		t.Fatalf("hint ignored: cap %d", cap(q.run))
	}
	q.Push(1, 1)
	q.Grow(128)
	if tm, v, ok := q.Pop(); !ok || tm != 1 || v != 1 {
		t.Fatalf("Grow lost the pending item: (%v, %d, %v)", tm, v, ok)
	}
	allocs := testing.AllocsPerRun(100, func() {
		q.Reset()
		for i := 0; i < 64; i++ {
			q.Push(float64(i), i)
		}
		for {
			if _, _, ok := q.Pop(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("sorted-run cycle allocated %.1f times per run, want 0", allocs)
	}
}
