// Livenet demonstrates the framework on real concurrent nodes: a
// cluster of goroutine-backed repositories exchanging protocol messages
// over localhost TCP, searching, and reconfiguring their neighborhoods
// live. Run with:
//
//	go run ./examples/livenet [-nodes 8] [-tcp]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/pkg/search"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 8, "cluster size")
		useTCP = flag.Bool("tcp", false, "use localhost TCP instead of in-process channels")
		policy = flag.String("policy", "flood", "forward policy (pkg/search registry name)")
	)
	flag.Parse()

	// Policies are config strings: any pkg/search registry name works
	// here ("flood", "random-2", "directed-bft-2", ...). Each node gets
	// its own instance — live nodes run concurrent actor goroutines, and
	// stochastic policies carry an unsynchronized rng stream.
	forwardFor := func(i int) core.ForwardPolicy {
		p, err := search.PolicyByName(*policy, search.PolicyEnv{Intn: rng.New(uint64(i + 1)).Intn})
		if err != nil {
			panic(err)
		}
		return p
	}

	// Content: node i holds keys 100*i .. 100*i+9.
	stores := make([]live.MapStore, *nodes)
	for i := range stores {
		stores[i] = live.MapStore{}
		for k := 0; k < 10; k++ {
			stores[i].Add(core.Key(100*i + k))
		}
	}

	var transport live.Transport
	var stops []func()
	cluster := make([]*live.Node, *nodes)

	if *useTCP {
		tcp := live.NewTCPTransport()
		defer tcp.Close()
		transport = tcp
		for i := range cluster {
			cluster[i] = newNode(i, transport, stores[i], forwardFor(i))
			addr, stop, err := live.Listen("127.0.0.1:0", cluster[i].Deliver)
			if err != nil {
				panic(err)
			}
			stops = append(stops, stop)
			tcp.SetAddr(topology.NodeID(i), addr)
			fmt.Printf("node %d listening on %s\n", i, addr)
		}
	} else {
		ch := live.NewChanTransport()
		transport = ch
		for i := range cluster {
			cluster[i] = newNode(i, transport, stores[i], forwardFor(i))
			ch.Attach(cluster[i])
		}
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()

	for _, n := range cluster {
		n.Start()
		defer n.Stop()
	}

	// Random ring + chords bootstrap.
	s := rng.New(1)
	for i := range cluster {
		cluster[i].AddNeighbor(topology.NodeID((i + 1) % *nodes))
		cluster[(i+1)%*nodes].AddNeighbor(topology.NodeID(i))
		chord := topology.NodeID(s.Intn(*nodes))
		if int(chord) != i {
			cluster[i].AddNeighbor(chord)
			cluster[chord].AddNeighbor(topology.NodeID(i))
		}
	}

	// Search from node 0 for content on the far side of the ring.
	target := core.Key(100*(*nodes/2) + 3)
	fmt.Printf("\nnode 0 searches for key %d (held by node %d)\n", target, *nodes/2)
	hits := cluster[0].Search(target, 500*time.Millisecond)
	for _, h := range hits {
		fmt.Printf("  hit from node %d at %d hops (link class %v)\n", h.Holder, h.Hops, h.Class)
	}
	if len(hits) == 0 {
		fmt.Println("  no hits within TTL — try more nodes or a larger TTL")
	}

	// Reconfigure: node 0 adopts the holder it just discovered.
	fmt.Printf("\nneighbors before: %v\n", cluster[0].Neighbors())
	cluster[0].Reconfigure()
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("neighbors after:  %v\n", cluster[0].Neighbors())

	// The repeat search should now be a single hop.
	hits = cluster[0].Search(target, 500*time.Millisecond)
	if len(hits) > 0 {
		fmt.Printf("\nrepeat search: hit at %d hop(s)\n", hits[0].Hops)
	}
}

func newNode(i int, tr live.Transport, store live.MapStore, forward core.ForwardPolicy) *live.Node {
	return live.NewNode(live.Config{
		ID:        topology.NodeID(i),
		Neighbors: 4,
		TTL:       4,
		Transport: tr,
		Store:     store,
		Class:     netsim.BandwidthClass(i % 3),
		Forward:   forward,
	})
}
