// Package faults is the deterministic fault-injection plane: it makes
// degraded networks a first-class, reproducible test condition instead
// of something CI hopes never happens.
//
// Three instruments share one seed discipline:
//
//   - Transport wraps any live.Transport and perturbs message delivery
//     — drop, duplication, extra delay, reordering — with per-link
//     decision streams derived from (seed, from, to, sequence). The
//     k-th message a link carries meets the same fate in every run at
//     every parallelism, because the decision is a pure function of
//     the link's identity and its own message counter, never of wall
//     clock or goroutine scheduling. The wrapper also enforces node
//     crashes and network partitions (messages to, from, or across
//     them are silently lost — the lossy semantics the protocol
//     already tolerates).
//
//   - LossyPolicy wraps a core.ForwardPolicy for the simulated engine:
//     each selected forwarding target survives with probability
//     1-rate, drawn from a deterministic stream, which models per-link
//     query loss inside the single-threaded cascade where outcomes
//     must stay byte-identical. The `faults` experiment family is
//     built on it.
//
//   - Schedule scripts node crash/restart (and partition/heal) events
//     against a Target — the in-process cluster (daemon.Server
//     implements Target) or a real dsearchd process driven over HTTP.
//     Schedules are generated from runner.DeriveSeed streams and
//     marshal to canonical JSON, so "the same seed reproduces the
//     identical fault schedule" is checkable byte-for-byte.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/topology"

	"repro/internal/live"
)

// Config parameterizes the message-level faults of a Transport. Rates
// are per-message probabilities in [0,1); the zero value injects
// nothing (the wrapper becomes a pass-through with counters).
type Config struct {
	// Seed roots every per-link decision stream. Two Transports with
	// equal Config fate messages identically.
	Seed uint64 `json:"seed"`
	// Drop is the probability a message is silently lost.
	Drop float64 `json:"drop"`
	// Dup is the probability a message is delivered twice.
	Dup float64 `json:"dup"`
	// Reorder is the probability a message is deferred by ReorderDelay
	// so later traffic on its link overtakes it.
	Reorder float64 `json:"reorder"`
	// ReorderDelay is how long a reordered message is held (default
	// 2ms when Reorder > 0).
	ReorderDelay time.Duration `json:"-"`
	// DelayMin/DelayMax add uniform extra latency to every message when
	// DelayMax > 0 (a traffic-shaped link, not a fault schedule).
	DelayMin, DelayMax time.Duration `json:"-"`
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dup", c.Dup}, {"reorder", c.Reorder}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1)", r.name, r.v)
		}
	}
	if c.DelayMax < c.DelayMin {
		return fmt.Errorf("faults: delay max %v < min %v", c.DelayMax, c.DelayMin)
	}
	return nil
}

// active reports whether any message-level fault can fire.
func (c Config) active() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.DelayMax > 0
}

// Stats counts what the injector did, safe to read concurrently.
type Stats struct {
	// Sent counts messages offered to the wrapper; Dropped, Duplicated,
	// Reordered and Delayed count injected faults; Blocked counts
	// messages lost to crashes or partitions.
	Sent, Dropped, Duplicated, Reordered, Delayed, Blocked metrics.Counter
}

// Snapshot returns the counters as a map (the daemon folds it into
// /v1/stats).
func (s *Stats) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"faults_sent":       s.Sent.Load(),
		"faults_dropped":    s.Dropped.Load(),
		"faults_duplicated": s.Duplicated.Load(),
		"faults_reordered":  s.Reordered.Load(),
		"faults_delayed":    s.Delayed.Load(),
		"faults_blocked":    s.Blocked.Load(),
	}
}

// mix64 is the splitmix64 finalizer — the same mixer internal/rng
// uses, duplicated here so link decisions never consume (and therefore
// never perturb) any shared rng.Stream.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps 64 random bits to a float in [0,1).
func unit(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// Per-decision salts: one message draws three independent verdicts
// (drop, dup, reorder) from one (link, seq) pair.
const (
	saltDrop    = 0x9e3779b97f4a7c15
	saltDup     = 0xc2b2ae3d27d4eb4f
	saltReorder = 0x165667b19e3779f9
	saltDelay   = 0x27d4eb2f165667c5
)

// linkKey identifies one directed link.
type linkKey struct {
	from, to topology.NodeID
}

// linkState is a link's decision stream position.
type linkState struct {
	seed uint64
	seq  uint64
}

// Transport wraps an inner live.Transport with deterministic
// message-level fault injection plus crash and partition enforcement.
// It is safe for concurrent use; decisions on one link are serialized
// by the link's own counter, so each link's fault pattern is a pure
// function of Config and the link's send count.
type Transport struct {
	cfg   Config
	inner live.Transport
	stats Stats

	mu      sync.Mutex
	links   map[linkKey]*linkState
	crashed map[topology.NodeID]bool
	// group assigns nodes to partition sides; nil means no partition.
	group map[topology.NodeID]int
	// restricted is nonzero while any crash or partition is in force —
	// the cheap gate that lets the zero-fault Send path skip the mutex.
	restricted atomic.Int32
}

// Wrap returns a fault-injecting view of inner. It panics on an
// invalid Config (fault plans are test fixtures; failing loudly at
// construction beats silently serving a different experiment).
func Wrap(inner live.Transport, cfg Config) *Transport {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Reorder > 0 && cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = 2 * time.Millisecond
	}
	return &Transport{
		cfg:     cfg,
		inner:   inner,
		links:   make(map[linkKey]*linkState),
		crashed: make(map[topology.NodeID]bool),
	}
}

// Stats exposes the fault counters.
func (t *Transport) Stats() *Stats { return &t.stats }

// Config returns the fault configuration.
func (t *Transport) Config() Config { return t.cfg }

// Crash makes a node unreachable: every message to or from it is
// blocked until Restart. Idempotent.
func (t *Transport) Crash(id topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
	t.updateRestrictedLocked()
}

// Restart lifts a crash. Idempotent.
func (t *Transport) Restart(id topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.crashed, id)
	t.updateRestrictedLocked()
}

// updateRestrictedLocked recomputes the fast-path gate under t.mu.
func (t *Transport) updateRestrictedLocked() {
	if len(t.crashed) > 0 || t.group != nil {
		t.restricted.Store(1)
	} else {
		t.restricted.Store(0)
	}
}

// Crashed returns the currently crashed nodes, sorted.
func (t *Transport) Crashed() []topology.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]topology.NodeID, 0, len(t.crashed))
	for id := range t.crashed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partition splits the network into the given groups: messages between
// nodes of different groups (or from/to nodes in no group) are blocked
// until Heal.
func (t *Transport) Partition(groups [][]topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.group = make(map[topology.NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			t.group[id] = gi
		}
	}
	t.updateRestrictedLocked()
}

// Heal lifts the partition.
func (t *Transport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.group = nil
	t.updateRestrictedLocked()
}

// linkSeed derives the decision-stream root of one directed link.
func (t *Transport) linkSeed(from, to topology.NodeID) uint64 {
	return mix64(t.cfg.Seed ^ mix64(uint64(from)<<32|uint64(uint32(to))))
}

// verdict is one message's fate, drawn under the transport lock.
type verdict struct {
	blocked bool
	drop    bool
	dup     bool
	reorder bool
	delay   time.Duration
}

// decide draws the fate of the next message on link (from, to).
func (t *Transport) decide(from, to topology.NodeID) verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v verdict
	if t.crashed[from] || t.crashed[to] {
		v.blocked = true
		return v
	}
	if t.group != nil {
		gf, okf := t.group[from]
		gt, okt := t.group[to]
		if !okf || !okt || gf != gt {
			v.blocked = true
			return v
		}
	}
	if !t.cfg.active() {
		return v
	}
	k := linkKey{from, to}
	ls := t.links[k]
	if ls == nil {
		ls = &linkState{seed: t.linkSeed(from, to)}
		t.links[k] = ls
	}
	ls.seq++
	base := ls.seed + ls.seq
	v.drop = t.cfg.Drop > 0 && unit(mix64(base^saltDrop)) < t.cfg.Drop
	v.dup = t.cfg.Dup > 0 && unit(mix64(base^saltDup)) < t.cfg.Dup
	v.reorder = t.cfg.Reorder > 0 && unit(mix64(base^saltReorder)) < t.cfg.Reorder
	if t.cfg.DelayMax > 0 {
		span := t.cfg.DelayMax - t.cfg.DelayMin
		v.delay = t.cfg.DelayMin + time.Duration(unit(mix64(base^saltDelay))*float64(span))
	}
	return v
}

// Send implements live.Transport. Dropped, blocked and reordered-away
// messages report success: on a lossy network the sender cannot tell.
func (t *Transport) Send(to topology.NodeID, env live.Envelope) error {
	t.stats.Sent.Inc()
	// Fast path: no fault can fire and no crash or partition is in
	// force — pure pass-through. restricted is a conservative flag (it
	// may lag a racing Crash by one in-flight message, which is
	// indistinguishable from the message having left just before the
	// crash), so the deterministic decision streams are untouched: they
	// only exist when cfg.active(), which never takes this path.
	if !t.cfg.active() && t.restricted.Load() == 0 {
		return t.inner.Send(to, env)
	}
	v := t.decide(env.From, to)
	switch {
	case v.blocked:
		t.stats.Blocked.Inc()
		return nil
	case v.drop:
		t.stats.Dropped.Inc()
		return nil
	}
	if v.reorder {
		// Defer past ReorderDelay so in-flight traffic on the link
		// overtakes this message; crash/partition state is re-checked at
		// fire time so a message cannot outlive its sender's crash.
		t.stats.Reordered.Inc()
		time.AfterFunc(t.cfg.ReorderDelay+v.delay, func() {
			if late := t.decide(env.From, to); late.blocked {
				t.stats.Blocked.Inc()
				return
			}
			_ = t.inner.Send(to, env)
		})
		return nil
	}
	if v.delay > 0 {
		t.stats.Delayed.Inc()
		time.AfterFunc(v.delay, func() { _ = t.inner.Send(to, env) })
		if v.dup {
			t.stats.Duplicated.Inc()
			time.AfterFunc(v.delay, func() { _ = t.inner.Send(to, env) })
		}
		return nil
	}
	err := t.inner.Send(to, env)
	if v.dup {
		t.stats.Duplicated.Inc()
		_ = t.inner.Send(to, env)
	}
	return err
}

// DecisionTrace returns the next n drop/dup/reorder verdicts of a link
// as a compact string ("." pass, "D" drop, "2" dup, "R" reorder; a
// message with several verdicts shows the first in that order). It
// advances the link's stream exactly as n sends would — use it on a
// fresh Transport to pin the deterministic fault pattern in tests.
func (t *Transport) DecisionTrace(from, to topology.NodeID, n int) string {
	out := make([]byte, n)
	for i := range out {
		v := t.decide(from, to)
		switch {
		case v.drop:
			out[i] = 'D'
		case v.dup:
			out[i] = '2'
		case v.reorder:
			out[i] = 'R'
		default:
			out[i] = '.'
		}
	}
	return string(out)
}
