package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// ChurnConfig models Section 4.2's session behavior: "each user will
// stay on-line for a period of time, which is exponentially distributed
// with mean 3 hours, and then go off-line for a period of time, which
// is also exponentially distributed with the same mean".
type ChurnConfig struct {
	// MeanOnline is the mean on-line session duration in seconds.
	MeanOnline float64
	// MeanOffline is the mean off-line period in seconds.
	MeanOffline float64
}

// DefaultChurnConfig returns the paper's 3h/3h setting.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{MeanOnline: 3 * 3600, MeanOffline: 3 * 3600}
}

// Validate reports configuration errors.
func (c ChurnConfig) Validate() error {
	if c.MeanOnline <= 0 || c.MeanOffline <= 0 {
		return fmt.Errorf("workload: non-positive churn means %+v", c)
	}
	return nil
}

// StationaryOnlineProbability returns the long-run fraction of time a
// user is on-line (0.5 for the paper's symmetric means, giving "on
// average 1,000 users simultaneously on-line").
func (c ChurnConfig) StationaryOnlineProbability() float64 {
	return c.MeanOnline / (c.MeanOnline + c.MeanOffline)
}

// ScheduleChurn drives one user's on/off transitions on the engine.
// The user starts in the stationary distribution (online with
// probability MeanOnline/(MeanOnline+MeanOffline)); thanks to the
// memorylessness of the exponential, the remaining session time is a
// fresh draw. set is invoked immediately for the initial state (at the
// engine's current time) and on every subsequent transition.
//
// An invalid cfg returns its validation error before anything is
// scheduled or drawn from s; the engine and stream are untouched.
func ScheduleChurn(e *sim.Engine, s *rng.Stream, cfg ChurnConfig, set func(online bool, now float64)) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	online := s.Bernoulli(cfg.StationaryOnlineProbability())
	set(online, e.Now())
	var flip func(en *sim.Engine)
	state := online
	flip = func(en *sim.Engine) {
		state = !state
		set(state, en.Now())
		mean := cfg.MeanOffline
		if state {
			mean = cfg.MeanOnline
		}
		en.In(s.Exp(mean), flip)
	}
	mean := cfg.MeanOffline
	if online {
		mean = cfg.MeanOnline
	}
	e.In(s.Exp(mean), flip)
	return nil
}

// QueryConfig models query issuing: "when on-line, each user will issue
// queries with the same frequency". The paper omits the rate; DESIGN.md
// derives 12 queries/hour from the reported message volumes.
type QueryConfig struct {
	// RatePerHour is each on-line user's Poisson query rate.
	RatePerHour float64
}

// DefaultQueryConfig returns the derived 12 queries/hour.
func DefaultQueryConfig() QueryConfig { return QueryConfig{RatePerHour: 12} }

// Validate reports configuration errors.
func (c QueryConfig) Validate() error {
	if c.RatePerHour <= 0 {
		return fmt.Errorf("workload: non-positive query rate %v", c.RatePerHour)
	}
	return nil
}

// MeanInterarrival returns the mean seconds between queries.
func (c QueryConfig) MeanInterarrival() float64 { return 3600 / c.RatePerHour }

// ScheduleQueries drives one user's Poisson query process: fire is
// invoked at each query instant while online() holds. The process
// self-suspends while the user is off-line and is re-armed by the next
// call to Resume (returned function), which the churn callback invokes
// on re-login.
func ScheduleQueries(e *sim.Engine, s *rng.Stream, cfg QueryConfig, online func() bool, fire func(now float64)) (resume func()) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mean := cfg.MeanInterarrival()
	var tick func(en *sim.Engine)
	armed := false
	tick = func(en *sim.Engine) {
		if !online() {
			armed = false // suspend; Resume re-arms on next login
			return
		}
		fire(en.Now())
		en.In(s.Exp(mean), tick)
	}
	resume = func() {
		if armed || !online() {
			return
		}
		armed = true
		e.In(s.Exp(mean), tick)
	}
	return resume
}
