package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestBufferRecordsInOrder(t *testing.T) {
	var b Buffer
	b.Record(Event{T: 1, Kind: KindQuery, Node: 1})
	b.Record(Event{T: 2, Kind: KindHit, Node: 1, Peer: 2})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	ev := b.Events()
	if ev[0].Kind != KindQuery || ev[1].Kind != KindHit {
		t.Fatalf("events: %v", ev)
	}
}

func TestBufferFilterAndCount(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: KindQuery})
	}
	b.Record(Event{Kind: KindEvict})
	if b.Count(KindQuery) != 5 || b.Count(KindEvict) != 1 || b.Count(KindLogin) != 0 {
		t.Fatal("counts wrong")
	}
	if len(b.Filter(KindQuery)) != 5 {
		t.Fatal("filter wrong")
	}
}

func TestBufferEventsIsSnapshot(t *testing.T) {
	var b Buffer
	b.Record(Event{Kind: KindQuery})
	ev := b.Events()
	ev[0].Kind = KindEvict
	if b.Events()[0].Kind != KindQuery {
		t.Fatal("Events aliases the buffer")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Event{Kind: KindQuery}) // must not panic
}

func TestJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	want := []Event{
		{T: 1.5, Kind: KindQuery, Node: 3, Key: 42, N: 16},
		{T: 2.25, Kind: KindHit, Node: 3, Peer: 7, Key: 42, N: 2},
		{T: 3, Kind: KindLogoff, Node: 9},
	}
	for _, e := range want {
		j.Record(e)
	}
	if j.Written() != 3 || j.Err() != nil {
		t.Fatalf("written=%d err=%v", j.Written(), j.Err())
	}
	got, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLOneObjectPerLine(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Record(Event{Kind: KindQuery})
	j.Record(Event{Kind: KindHit})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %q", sb.String())
	}
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	j.Record(Event{Kind: KindQuery})
	j.Record(Event{Kind: KindQuery})
	if j.Err() == nil {
		t.Fatal("error not surfaced")
	}
	if j.Written() != 0 {
		t.Fatalf("written = %d after failures", j.Written())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errors.New("write refused")
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad input accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 1.5, Kind: KindHit, Node: 2, Peer: 3, Key: 9, N: 4}
	s := e.String()
	for _, want := range []string{"hit", "node=2", "peer=3", "key=9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestQuickJSONLRoundTrip(t *testing.T) {
	f := func(ts []float64, nodes []int32) bool {
		var sb strings.Builder
		j := NewJSONL(&sb)
		n := len(ts)
		if len(nodes) < n {
			n = len(nodes)
		}
		var want []Event
		for i := 0; i < n; i++ {
			if math.IsNaN(ts[i]) || math.IsInf(ts[i], 0) {
				continue // JSON cannot carry non-finite floats
			}
			e := Event{T: ts[i], Kind: KindQuery, Node: topology.NodeID(nodes[i])}
			want = append(want, e)
			j.Record(e)
		}
		got, err := ReadJSONL(strings.NewReader(sb.String()))
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
