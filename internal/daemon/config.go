package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Transport selection for a daemon's envelope plane.
const (
	// TransportChan runs the whole cluster in one process over the
	// in-process channel fabric (Total must equal Nodes). This is the
	// CI-scale deployment and the parity harness's subject.
	TransportChan = "chan"
	// TransportTCP gives every local node a loopback TCP listener and
	// delivers cross-process envelopes over gob/TCP; membership gossip
	// distributes the listener addresses.
	TransportTCP = "tcp"
)

// Config parameterizes one dsearchd process. The zero value is not
// runnable; ApplyDefaults fills the optional fields and Validate
// rejects the rest. Durations are carried as integer milliseconds so a
// config file is plain JSON numbers.
type Config struct {
	// Name is this process's cluster-unique member name; defaults to
	// "d<BaseID>".
	Name string `json:"name"`
	// HTTPAddr is the control/query-plane listen address; ":0" and
	// "127.0.0.1:0" bind an ephemeral port (Server.Addr reports it).
	HTTPAddr string `json:"http_addr"`
	// Transport is TransportChan or TransportTCP.
	Transport string `json:"transport"`
	// NodeHost is the host node listeners bind on in TCP mode.
	NodeHost string `json:"node_host"`

	// Nodes is the local shard size; BaseID its first node ID; Total
	// the whole cluster's node count (0 means Nodes — single-process).
	Nodes  int `json:"nodes"`
	BaseID int `json:"base_id"`
	Total  int `json:"total"`

	// Seed, Degree, Keys and Replicas parameterize the shared World;
	// every member of one cluster must agree on them (and on Total).
	Seed     uint64 `json:"seed"`
	Degree   int    `json:"degree"`
	Keys     int    `json:"keys"`
	Replicas int    `json:"replicas"`

	// TTL is the default search depth; Policy the pkg/search registry
	// name each node forwards with; Class the advertised bandwidth
	// class ("56k", "cable", "lan").
	TTL    int    `json:"ttl"`
	Policy string `json:"policy"`
	Class  string `json:"class"`

	// Join lists seed daemon HTTP addresses for membership bootstrap.
	Join []string `json:"join"`
	// GossipIntervalMillis paces peer-exchange rounds; GossipFanout is
	// how many peers each round contacts.
	GossipIntervalMillis int `json:"gossip_interval_ms"`
	GossipFanout         int `json:"gossip_fanout"`

	// QueryWindowMillis is the default per-query hit-collection window
	// when a request does not carry its own.
	QueryWindowMillis int `json:"query_window_ms"`
	// BatchWorkers is how many resident workers drain one
	// POST /v1/query/batch slab; misses pay the full collection window,
	// so the worker count bounds how many such windows overlap.
	BatchWorkers int `json:"batch_workers"`
	// MaxBatch caps the number of queries one batch request may carry;
	// larger slabs are rejected whole (400).
	MaxBatch int `json:"max_batch"`
	// DrainTimeoutMillis bounds how long Drain waits for in-flight
	// queries before giving up on them.
	DrainTimeoutMillis int `json:"drain_timeout_ms"`

	// FDSuspectRounds/FDEvictRounds/FDAmnestyRounds tune the heartbeat
	// failure detector, in gossip rounds: a member is suspected after
	// FDSuspectRounds without a heartbeat advance, evicted after
	// FDEvictRounds, and its eviction tombstone expires after
	// FDAmnestyRounds (so a restarted member can rejoin). Defaults
	// 3/6/12.
	FDSuspectRounds int `json:"fd_suspect_rounds"`
	FDEvictRounds   int `json:"fd_evict_rounds"`
	FDAmnestyRounds int `json:"fd_amnesty_rounds"`

	// Faults configures deterministic message-fault injection on this
	// process's transport (all zero: no injection). Crash/partition
	// control is always available regardless.
	Faults FaultsConfig `json:"faults"`
}

// FaultsConfig is the config-file face of faults.Config: per-message
// fault rates for the process's transport plane.
type FaultsConfig struct {
	// Seed roots the per-link decision streams; 0 derives one from the
	// cluster seed so all processes of a seeded cluster agree.
	Seed uint64 `json:"seed"`
	// Drop, Dup and Reorder are per-message probabilities in [0,1).
	Drop    float64 `json:"drop"`
	Dup     float64 `json:"dup"`
	Reorder float64 `json:"reorder"`
	// DelayMinMillis/DelayMaxMillis add uniform per-message latency.
	DelayMinMillis int `json:"delay_min_ms"`
	DelayMaxMillis int `json:"delay_max_ms"`
}

// Enabled reports whether any message fault can fire.
func (f FaultsConfig) Enabled() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Reorder > 0 || f.DelayMaxMillis > 0
}

// ApplyDefaults fills unset optional fields in place.
func (c *Config) ApplyDefaults() {
	if c.Transport == "" {
		c.Transport = TransportChan
	}
	if c.NodeHost == "" {
		c.NodeHost = "127.0.0.1"
	}
	if c.Total == 0 {
		c.Total = c.Nodes
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("d%d", c.BaseID)
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.Keys == 0 {
		c.Keys = 256
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.TTL == 0 {
		c.TTL = 4
	}
	if c.Policy == "" {
		c.Policy = "flood"
	}
	if c.Class == "" {
		c.Class = "cable"
	}
	if c.GossipIntervalMillis == 0 {
		c.GossipIntervalMillis = 500
	}
	if c.GossipFanout == 0 {
		c.GossipFanout = 2
	}
	if c.QueryWindowMillis == 0 {
		c.QueryWindowMillis = 100
	}
	if c.DrainTimeoutMillis == 0 {
		c.DrainTimeoutMillis = 10_000
	}
	if c.BatchWorkers == 0 {
		c.BatchWorkers = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16_384
	}
	if c.FDSuspectRounds == 0 {
		c.FDSuspectRounds = 3
	}
	if c.FDEvictRounds == 0 {
		c.FDEvictRounds = 6
	}
	if c.FDAmnestyRounds == 0 {
		c.FDAmnestyRounds = 12
	}
	if c.Faults.Seed == 0 {
		c.Faults.Seed = c.Seed ^ 0xfa017fa017fa017
	}
}

// Validate reports configuration errors after defaulting.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("daemon: non-positive local node count %d", c.Nodes)
	case c.BaseID < 0:
		return fmt.Errorf("daemon: negative base ID %d", c.BaseID)
	case c.Total < c.BaseID+c.Nodes:
		return fmt.Errorf("daemon: total %d < base %d + nodes %d", c.Total, c.BaseID, c.Nodes)
	case c.Transport != TransportChan && c.Transport != TransportTCP:
		return fmt.Errorf("daemon: unknown transport %q", c.Transport)
	case c.Transport == TransportChan && (c.Total != c.Nodes || c.BaseID != 0):
		return fmt.Errorf("daemon: chan transport requires the whole cluster in-process (base 0, total == nodes)")
	case c.Degree <= 0 || c.TTL <= 0 || c.Keys <= 0 || c.Replicas <= 0:
		return fmt.Errorf("daemon: degree/ttl/keys/replicas must be positive")
	case c.GossipFanout <= 0 || c.GossipIntervalMillis <= 0:
		return fmt.Errorf("daemon: gossip fanout and interval must be positive")
	case c.BatchWorkers <= 0 || c.MaxBatch <= 0:
		return fmt.Errorf("daemon: batch_workers and max_batch must be positive")
	case c.FDEvictRounds <= c.FDSuspectRounds:
		return fmt.Errorf("daemon: fd_evict_rounds %d must exceed fd_suspect_rounds %d",
			c.FDEvictRounds, c.FDSuspectRounds)
	case badRate(c.Faults.Drop) || badRate(c.Faults.Dup) || badRate(c.Faults.Reorder):
		return fmt.Errorf("daemon: fault rates must lie in [0,1)")
	case c.Faults.DelayMaxMillis < c.Faults.DelayMinMillis:
		return fmt.Errorf("daemon: fault delay max %dms < min %dms",
			c.Faults.DelayMaxMillis, c.Faults.DelayMinMillis)
	}
	return nil
}

func badRate(r float64) bool { return r < 0 || r >= 1 }

// GossipInterval, QueryWindow and DrainTimeout return the millisecond
// fields as durations.
func (c *Config) GossipInterval() time.Duration {
	return time.Duration(c.GossipIntervalMillis) * time.Millisecond
}
func (c *Config) QueryWindow() time.Duration {
	return time.Duration(c.QueryWindowMillis) * time.Millisecond
}
func (c *Config) DrainTimeout() time.Duration {
	return time.Duration(c.DrainTimeoutMillis) * time.Millisecond
}

// LoadConfig reads a JSON config file; unknown fields are errors so a
// typo fails the boot instead of silently defaulting.
func LoadConfig(path string) (Config, error) {
	var c Config
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("daemon: read config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("daemon: parse config %s: %w", path, err)
	}
	return c, nil
}
