package search_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/pkg/search"
)

// satQueries builds n distinct queries over an m-node net.
func satQueries(n, m int) []search.Query {
	qs := make([]search.Query, n)
	for i := range qs {
		qs[i] = search.Query{
			ID:     uint64(i),
			Key:    search.Key(i * 5),
			Origin: search.NodeID((i * 13) % m),
		}
	}
	return qs
}

func marshalResults(t *testing.T, rs []search.Result) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i := range rs {
		b, err := json.Marshal(rs[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestSaturatorWorkerInvariance is the serving-layer determinism
// contract: Run's results over a shared CSR snapshot are byte-identical
// to a sequential Do replay with the same runner.DeriveSeed streams, at
// every worker count and admission-batch size. CI runs this explicitly
// as the saturation worker-invariance check.
func TestSaturatorWorkerInvariance(t *testing.T) {
	const n = 256
	net := newTestNet(n, 4)
	mk := func() *search.Engine {
		eng, err := search.New(net,
			search.WithPolicy("random-2"),
			search.WithSeed(42),
			search.WithTTL(8),
			search.WithDelay(stepDelay),
			search.WithSnapshot(n))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	qs := satQueries(300, n)

	ref := mk()
	want := make([]string, len(qs))
	for i, q := range qs {
		r, err := ref.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(b)
	}

	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{1, 7, 64} {
			eng := mk()
			sat, err := eng.Saturate(search.WithWorkers(workers), search.WithAdmitBatch(batch))
			if err != nil {
				t.Fatal(err)
			}
			rs, err := sat.Run(context.Background(), qs)
			sat.Close()
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			got := marshalResults(t, rs)
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("workers=%d batch=%d query %d diverged:\n  saturated:  %s\n  sequential: %s",
						workers, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSaturatorConcurrentRuns issues Run from many goroutines against
// one Saturator; every call must independently match the reference.
func TestSaturatorConcurrentRuns(t *testing.T) {
	const n = 128
	net := newTestNet(n, 4)
	eng, err := search.New(net, search.WithTTL(6), search.WithSnapshot(n))
	if err != nil {
		t.Fatal(err)
	}
	qs := satQueries(100, n)
	want, err := eng.Batch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalResults(t, want)

	sat, err := eng.Saturate(search.WithWorkers(4), search.WithAdmitBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sat.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := sat.Run(context.Background(), qs)
			if err != nil {
				t.Error(err)
				return
			}
			got := marshalResults(t, rs)
			for i := range got {
				if got[i] != wantJSON[i] {
					t.Errorf("concurrent Run query %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSaturatorLifecycle covers the close and error paths: Run after
// Close fails with ErrSaturatorClosed, Close is idempotent, a bad query
// aborts the call with a positioned error, and a canceled context
// surfaces.
func TestSaturatorLifecycle(t *testing.T) {
	net := newTestNet(64, 4)
	eng, err := search.New(net, search.WithTTL(4), search.WithSnapshot(64))
	if err != nil {
		t.Fatal(err)
	}

	sat, err := eng.Saturate(search.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := sat.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	if _, err := sat.Run(context.Background(), nil); err != nil {
		t.Fatalf("empty Run: %v", err)
	}
	sat.Close()
	sat.Close() // idempotent
	if _, err := sat.Run(context.Background(), satQueries(4, 64)); !errors.Is(err, search.ErrSaturatorClosed) {
		t.Fatalf("Run after Close = %v, want ErrSaturatorClosed", err)
	}

	sat2, err := eng.Saturate(search.WithWorkers(2), search.WithAdmitBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sat2.Close()
	bad := satQueries(8, 64)
	bad[5].TTL = -1
	if _, err := sat2.Run(context.Background(), bad); err == nil {
		t.Fatal("Run with an invalid query succeeded")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sat2.Run(ctx, satQueries(8, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with canceled ctx = %v, want context.Canceled", err)
	}

	if _, err := eng.Saturate(search.WithAdmitBatch(0)); err == nil {
		t.Fatal("Saturate with batch 0 succeeded")
	}
}
