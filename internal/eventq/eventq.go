// Package eventq implements the timed priority queue that backs the
// discrete-event simulation engine in internal/sim.
//
// It is a classic indexed binary min-heap keyed on (time, sequence):
// ties in simulated time break by insertion order so that the engine is
// fully deterministic regardless of map iteration or scheduling
// artifacts. Cancellation is O(log n) via the index kept inside each
// item.
package eventq

import "fmt"

// Item is a scheduled entry. The zero value is not useful; items are
// created by Queue.Push, which returns a handle usable with Cancel.
type Item struct {
	Time  float64 // simulated seconds
	Seq   uint64  // tiebreaker: insertion order
	Value any     // payload interpreted by the engine
	index int     // position in the heap, -1 when popped/cancelled
}

// Queue is a deterministic time-ordered priority queue. It is not safe
// for concurrent use; the simulation engine is single-threaded by
// design (determinism first).
type Queue struct {
	heap []*Item
	seq  uint64
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending items.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules value at time t and returns a cancellable handle.
func (q *Queue) Push(t float64, value any) *Item {
	it := &Item{Time: t, Seq: q.seq, Value: value, index: len(q.heap)}
	q.seq++
	q.heap = append(q.heap, it)
	q.up(it.index)
	return it
}

// Peek returns the earliest item without removing it, or nil when the
// queue is empty.
func (q *Queue) Peek() *Item {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest item, or nil when empty.
func (q *Queue) Pop() *Item {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// Cancel removes a previously pushed item. It returns false if the item
// was already popped or cancelled.
func (q *Queue) Cancel(it *Item) bool {
	if it == nil || it.index < 0 {
		return false
	}
	i := it.index
	if q.heap[i] != it {
		panic(fmt.Sprintf("eventq: corrupted heap index %d", i))
	}
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		if !q.down(i) {
			q.up(i)
		}
	}
	it.index = -1
	return true
}

// Reschedule moves a pending item to a new time, preserving its
// identity. It returns false if the item is no longer pending.
func (q *Queue) Reschedule(it *Item, t float64) bool {
	if it == nil || it.index < 0 {
		return false
	}
	it.Time = t
	it.Seq = q.seq
	q.seq++
	if !q.down(it.index) {
		q.up(it.index)
	}
	return true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts index i toward the leaves; it reports whether the item
// moved (used by Cancel/Reschedule to decide whether to sift up).
func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}
