// Package live runs the framework on real concurrent nodes instead of
// the discrete-event simulator: every node is a goroutine-driven actor
// with an inbox, and messages travel over a pluggable Transport — an
// in-process channel fabric for tests and single-binary demos, or
// TCP with gob encoding for multi-process deployments (cmd/dsearch).
//
// The protocol is the paper's Algo 5 adapted to a real network: queries
// flood with a TTL and duplicate suppression, hits reply directly to
// the origin (carrying the answering link's bandwidth class, as the
// Gnutella Ping-Pong protocol does), and neighbor updates use
// invitation/eviction messages with the always-accept policy.
package live

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgQuery MsgType = iota
	MsgHit
	MsgInvite
	MsgInviteReply
	MsgEvict
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgHit:
		return "hit"
	case MsgInvite:
		return "invite"
	case MsgInviteReply:
		return "invite-reply"
	case MsgEvict:
		return "evict"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Envelope is the wire message. All fields are exported and
// gob-encodable; unused fields stay zero.
type Envelope struct {
	Type MsgType
	From topology.NodeID

	// Query / Hit fields.
	QueryID core.QueryID
	Key     core.Key
	Origin  topology.NodeID
	TTL     int
	Hops    int
	// Class is the answering node's bandwidth class on hits.
	Class netsim.BandwidthClass

	// InviteReply field.
	Accept bool
}

// Transport delivers envelopes between nodes. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Send delivers env to node to. Delivery is asynchronous;
	// implementations may drop messages to unknown or stopped nodes
	// and report the failure.
	Send(to topology.NodeID, env Envelope) error
}

// ChanTransport is an in-process fabric: one buffered channel per node.
// The routing table is copy-on-write — registrations (boot-time, rare)
// publish a fresh map; Send (the flood hot path, millions per run)
// reads it with one atomic load and no lock.
type ChanTransport struct {
	mu    sync.Mutex // serializes writers only
	boxes atomic.Pointer[map[topology.NodeID]chan Envelope]
}

// NewChanTransport returns an empty fabric.
func NewChanTransport() *ChanTransport {
	t := &ChanTransport{}
	m := map[topology.NodeID]chan Envelope{}
	t.boxes.Store(&m)
	return t
}

// mutate publishes a modified copy of the routing table under t.mu.
func (t *ChanTransport) mutate(f func(map[topology.NodeID]chan Envelope)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.boxes.Load()
	m := make(map[topology.NodeID]chan Envelope, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	f(m)
	t.boxes.Store(&m)
}

// Register creates (or returns) the inbox for node id.
func (t *ChanTransport) Register(id topology.NodeID) chan Envelope {
	t.mu.Lock()
	if box, ok := (*t.boxes.Load())[id]; ok {
		t.mu.Unlock()
		return box
	}
	t.mu.Unlock()
	box := make(chan Envelope, 1024)
	t.mutate(func(m map[topology.NodeID]chan Envelope) {
		if existing, ok := m[id]; ok {
			box = existing
			return
		}
		m[id] = box
	})
	return box
}

// Attach wires a node's inbox into the fabric, replacing any channel
// previously registered for its ID.
func (t *ChanTransport) Attach(n *Node) {
	t.mutate(func(m map[topology.NodeID]chan Envelope) { m[n.ID()] = n.Inbox() })
}

// Unregister removes a node's inbox; pending messages are dropped.
func (t *ChanTransport) Unregister(id topology.NodeID) {
	t.mutate(func(m map[topology.NodeID]chan Envelope) { delete(m, id) })
}

// Send implements Transport. A full inbox drops the message (backpressure
// by loss, as UDP-era Gnutella did) rather than blocking the sender.
func (t *ChanTransport) Send(to topology.NodeID, env Envelope) error {
	box, ok := (*t.boxes.Load())[to]
	if !ok {
		return fmt.Errorf("live: no inbox for node %d", to)
	}
	select {
	case box <- env:
		return nil
	default:
		return fmt.Errorf("live: inbox of node %d is full", to)
	}
}

// TCPTransport sends envelopes over TCP connections with gob encoding.
// Every process registers its peers' listen addresses; connections are
// pooled per destination, and each destination carries its own lock so
// a slow or dead peer never blocks sends to healthy ones.
//
// Dial failures are non-fatal: Send retries a bounded number of times
// with exponential backoff (a peer that is still booting becomes
// reachable mid-bootstrap instead of losing the message), and after
// the final failure the destination enters a cooldown during which
// sends fail fast — the lossy-network semantics the protocol already
// tolerates, without a dial storm against a dead peer.
//
// Writes coalesce: every destination owns a persistent gob encoder
// over a buffered writer, so one cascade fan-out burst becomes one
// syscall per destination instead of one per message. Frames flush
// when the buffer reaches FlushBytes, every FlushInterval from a
// background flusher, and unconditionally on Flush and Close — a
// drained process never strands buffered frames. TCP_NODELAY is set
// explicitly on every dialed connection: the coalescing window is the
// transport's own (bounded, observable) batching policy, not the
// kernel's.
type TCPTransport struct {
	// MaxDialAttempts bounds connection attempts per Send (default 4).
	MaxDialAttempts int
	// DialBackoff is the base of the first retry delay; each attempt
	// doubles it and the actual sleep is jittered uniformly over
	// [base/2, base] so peers retrying the same dead destination never
	// synchronize into a dial storm (default 25ms).
	DialBackoff time.Duration
	// DialCooldown is how long a destination fails fast after
	// MaxDialAttempts consecutive dial failures (default 250ms).
	DialCooldown time.Duration
	// FlushBytes flushes a destination's write buffer inline once it
	// holds at least this many bytes (default 16KB); FlushInterval is
	// the background flusher's coalescing window — the longest a frame
	// waits buffered before hitting the wire (default 1ms). Both are
	// read at first Send; set them before using the transport.
	FlushBytes    int
	FlushInterval time.Duration

	mu    sync.Mutex
	dests map[topology.NodeID]*tcpDest
	// closed is closed by Close; backoff sleeps and the background
	// flusher select on it so a draining process is never pinned by a
	// peer mid-retry.
	closed    chan struct{}
	closeOnce sync.Once
	// flusherOnce launches the background flusher on the first dialed
	// connection (a transport that never sends never ticks).
	flusherOnce sync.Once
	// jitterState seeds the backoff jitter stream (splitmix64 steps
	// under mu; no dependency on the deterministic rng package — dial
	// timing is wall-clock territory).
	jitterState uint64
}

type tcpDest struct {
	mu        sync.Mutex
	addr      string
	c         net.Conn
	bw        *bufio.Writer
	enc       *gob.Encoder
	downUntil time.Time
}

// NewTCPTransport returns a transport with no known peers and default
// retry and coalescing parameters.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		MaxDialAttempts: 4,
		DialBackoff:     25 * time.Millisecond,
		DialCooldown:    250 * time.Millisecond,
		FlushBytes:      16 << 10,
		FlushInterval:   time.Millisecond,
		dests:           make(map[topology.NodeID]*tcpDest),
		closed:          make(chan struct{}),
		jitterState:     uint64(time.Now().UnixNano()),
	}
}

// jitter maps backoff to a uniform duration in [backoff/2, backoff].
func (t *TCPTransport) jitter(backoff time.Duration) time.Duration {
	t.mu.Lock()
	t.jitterState += 0x9e3779b97f4a7c15
	z := t.jitterState
	t.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return backoff/2 + time.Duration(u*float64(backoff/2))
}

// SetAddr registers the listen address of a peer. Re-registering the
// same address is a no-op (gossip refreshes are idempotent); a changed
// address closes the pooled connection so the next Send re-dials.
func (t *TCPTransport) SetAddr(id topology.NodeID, addr string) {
	t.mu.Lock()
	d, ok := t.dests[id]
	if !ok {
		t.dests[id] = &tcpDest{addr: addr}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addr == addr {
		return
	}
	d.addr = addr
	d.downUntil = time.Time{}
	d.dropConnLocked()
}

// dropConnLocked abandons the pooled connection (and any frames still
// buffered for it — they are lost, like any message to a dead peer).
// Callers hold d.mu.
func (d *tcpDest) dropConnLocked() {
	if d.c != nil {
		d.c.Close()
		d.c, d.bw, d.enc = nil, nil, nil
	}
}

// flushLocked pushes buffered frames to the wire; a write failure
// drops the connection so the next Send re-dials. Callers hold d.mu.
func (d *tcpDest) flushLocked() {
	if d.bw == nil || d.bw.Buffered() == 0 {
		return
	}
	if err := d.bw.Flush(); err != nil {
		d.dropConnLocked()
	}
}

// Addrs returns a snapshot of the registered peer address book.
func (t *TCPTransport) Addrs() map[topology.NodeID]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[topology.NodeID]string, len(t.dests))
	for id, d := range t.dests {
		d.mu.Lock()
		out[id] = d.addr
		d.mu.Unlock()
	}
	return out
}

// Send implements Transport.
func (t *TCPTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.Lock()
	d, ok := t.dests[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("live: no address for node %d", to)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c == nil {
		if until := d.downUntil; !until.IsZero() && time.Now().Before(until) {
			return fmt.Errorf("live: node %d unreachable (cooldown)", to)
		}
		attempts := t.MaxDialAttempts
		if attempts < 1 {
			attempts = 1
		}
		backoff := t.DialBackoff
		var err error
		for i := 0; i < attempts; i++ {
			if i > 0 {
				// Jittered, interruptible backoff: Close unblocks the sleep
				// immediately so a draining process is not held hostage by a
				// peer in retry.
				timer := time.NewTimer(t.jitter(backoff))
				select {
				case <-t.closed:
					timer.Stop()
					return fmt.Errorf("live: transport closed while dialing node %d: %w", to, err)
				case <-timer.C:
				}
				backoff *= 2
			}
			select {
			case <-t.closed:
				return fmt.Errorf("live: transport closed while dialing node %d", to)
			default:
			}
			var c net.Conn
			if c, err = net.Dial("tcp", d.addr); err == nil {
				// The coalescing buffer is the batching policy; the kernel
				// must not add its own (Nagle would stack a second, opaque
				// delay window on top of FlushInterval).
				if tc, ok := c.(*net.TCPConn); ok {
					_ = tc.SetNoDelay(true)
				}
				bufBytes := t.FlushBytes
				if bufBytes < 1 {
					bufBytes = 1
				}
				d.c = c
				d.bw = bufio.NewWriterSize(c, bufBytes)
				d.enc = gob.NewEncoder(d.bw)
				d.downUntil = time.Time{}
				t.flusherOnce.Do(func() { go t.flushLoop() })
				break
			}
		}
		if d.c == nil {
			d.downUntil = time.Now().Add(t.DialCooldown)
			return fmt.Errorf("live: dial node %d: %w", to, err)
		}
	}
	if err := d.enc.Encode(env); err != nil {
		d.dropConnLocked()
		return fmt.Errorf("live: send to node %d: %w", to, err)
	}
	// Size-triggered inline flush; smaller bursts wait (at most
	// FlushInterval) for the background flusher, coalescing a fan-out
	// burst into one write.
	if d.bw.Buffered() >= t.FlushBytes {
		d.flushLocked()
		if d.c == nil {
			return fmt.Errorf("live: flush to node %d failed", to)
		}
	}
	return nil
}

// flushLoop is the background coalescing flusher: every FlushInterval
// it pushes each destination's buffered frames to the wire. It exits
// when the transport closes (Close flushes one final time itself).
func (t *TCPTransport) flushLoop() {
	interval := t.FlushInterval
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-tick.C:
			t.Flush()
		}
	}
}

// Flush pushes every destination's buffered frames to the wire now.
func (t *TCPTransport) Flush() {
	t.mu.Lock()
	dests := make([]*tcpDest, 0, len(t.dests))
	for _, d := range t.dests {
		dests = append(dests, d)
	}
	t.mu.Unlock()
	for _, d := range dests {
		d.mu.Lock()
		d.flushLocked()
		d.mu.Unlock()
	}
}

// Close flushes and shuts all pooled connections and unblocks any Send
// waiting in dial backoff; subsequent Sends fail fast. The flush-first
// order is the no-stranded-frames guarantee a draining process relies
// on: everything buffered before Close reaches the wire.
func (t *TCPTransport) Close() {
	t.closeOnce.Do(func() { close(t.closed) })
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.dests {
		d.mu.Lock()
		d.flushLocked()
		d.dropConnLocked()
		d.mu.Unlock()
	}
}

// Listen starts a TCP listener that decodes envelopes into deliver.
// It returns the bound address and a stop function.
func Listen(addr string, deliver func(Envelope)) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		done  = make(chan struct{})
	)
	track := func(c net.Conn) bool {
		mu.Lock()
		defer mu.Unlock()
		select {
		case <-done:
			return false
		default:
		}
		conns[c] = struct{}{}
		return true
	}
	untrack := func(c net.Conn) {
		mu.Lock()
		delete(conns, c)
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Transient Accept errors (EMFILE, aborted handshakes) back off
		// geometrically instead of spinning hot; any success resets.
		backoff := time.Duration(0)
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
				}
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff < 100*time.Millisecond {
					backoff *= 2
				}
				time.Sleep(backoff)
				continue
			}
			backoff = 0
			if !track(conn) {
				conn.Close()
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer untrack(c)
				defer c.Close()
				// One reused envelope per connection: gob decodes into the
				// same frame every iteration and deliver receives a value
				// copy, so the steady-state receive path allocates nothing
				// per hop.
				dec := gob.NewDecoder(bufio.NewReader(c))
				env := new(Envelope)
				for {
					*env = Envelope{}
					if err := dec.Decode(env); err != nil {
						return
					}
					deliver(*env)
				}
			}(conn)
		}
	}()
	stop := func() {
		mu.Lock()
		close(done)
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		ln.Close()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}
