package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/eventq"
	"repro/internal/runner"
)

// TestExperimentsHeapBucketByteIdentical is the end-to-end differential
// for the bucketed event queue: whole experiment families — a Figure-1
// run (gnutella workload with reconfiguration), a scale cell (CSR
// snapshot + netsim delays) and the policies sweep (every registry
// family, including stochastic ones) — must produce byte-identical
// results whether cascades run on the bucketed queue or are forced onto
// the binary-heap fallback.
func TestExperimentsHeapBucketByteIdentical(t *testing.T) {
	families := map[string]func() any{
		"fig1": func() any { return Fig1(CI, 1) },
		"scale": func() any {
			sum, _, err := RunScale(smallScaleConfig(11))
			if err != nil {
				t.Fatal(err)
			}
			return sum
		},
		"refreeze": func() any {
			sum, _, err := RunRefreeze(smallScaleConfig(13), 4, 40)
			if err != nil {
				t.Fatal(err)
			}
			return sum
		},
		"policies": func() any {
			cells := PolicyCells("policies", CI, 1)
			rs, err := runner.Run(context.Background(), cells, runner.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			sums, err := AssemblePolicies(rs)
			if err != nil {
				t.Fatal(err)
			}
			return sums
		},
	}
	for name, run := range families {
		t.Run(name, func(t *testing.T) {
			marshal := func(forceHeap bool) string {
				eventq.ForceHeapQueue = forceHeap
				defer func() { eventq.ForceHeapQueue = false }()
				j, err := json.Marshal(run())
				if err != nil {
					t.Fatal(err)
				}
				return string(j)
			}
			if bucket, heap := marshal(false), marshal(true); bucket != heap {
				t.Fatalf("%s: bucketed and heap-fallback runs differ:\n%s\n%s", name, bucket, heap)
			}
		})
	}
}
