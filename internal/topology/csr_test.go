package topology

import (
	"math/rand"
	"testing"
)

// assertCSRMatches verifies the snapshot's adjacency is exactly the
// network's, node by node, in insertion order.
func assertCSRMatches(t *testing.T, net *Network, c *CSR) {
	t.Helper()
	if c.Len() != net.Len() {
		t.Fatalf("CSR has %d nodes, network %d", c.Len(), net.Len())
	}
	if c.EdgeCount() != net.EdgeCount() {
		t.Fatalf("CSR has %d edges, network %d", c.EdgeCount(), net.EdgeCount())
	}
	for i := 0; i < net.Len(); i++ {
		id := NodeID(i)
		want, got := net.Out(id), c.Out(id)
		if len(want) != len(got) {
			t.Fatalf("node %d: CSR degree %d, network %d", i, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("node %d edge %d: CSR %d, network %d", i, j, got[j], want[j])
			}
		}
		if c.Degree(id) != len(want) {
			t.Fatalf("node %d: Degree() = %d, want %d", i, c.Degree(id), len(want))
		}
		if !c.Online(id) {
			t.Fatalf("node %d: snapshot reports offline", i)
		}
	}
}

// wireRandom connects roughly e random edges on net.
func wireRandom(net *Network, e int, r *rand.Rand) {
	n := net.Len()
	for i := 0; i < e; i++ {
		net.Connect(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
}

func TestFreezeMatchesNetwork(t *testing.T) {
	for _, rel := range []Relation{PureAsymmetric, Symmetric} {
		r := rand.New(rand.NewSource(1))
		net := NewNetwork(rel, 200, 4, 4)
		wireRandom(net, 600, r)
		assertCSRMatches(t, net, net.Freeze())
	}
}

func TestFreezeEmptyAndAllToAll(t *testing.T) {
	assertCSRMatches(t, NewNetwork(PureAsymmetric, 3, 4, 0), NewNetwork(PureAsymmetric, 3, 4, 0).Freeze())
	net := NewNetwork(AllToAll, 17, 0, 0)
	assertCSRMatches(t, net, net.Freeze())
}

// TestFreezeIsSnapshot: mutations after Freeze are invisible to the
// snapshot until re-freeze.
func TestFreezeIsSnapshot(t *testing.T) {
	net := NewNetwork(PureAsymmetric, 4, 4, 0)
	net.Connect(0, 1)
	c := net.Freeze()
	net.Connect(0, 2)
	net.Disconnect(0, 1)
	if out := c.Out(0); len(out) != 1 || out[0] != 1 {
		t.Fatalf("snapshot drifted with the network: %v", out)
	}
	assertCSRMatches(t, net, net.Freeze())
}

// TestFreezeIntoAfterChurn is the re-freeze property test: arbitrary
// Connect/Disconnect interleavings followed by FreezeInto always yield
// exactly the network's adjacency, reusing the snapshot's arrays.
func TestFreezeIntoAfterChurn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	net := NewNetwork(Symmetric, 100, 5, 5)
	c := net.Freeze()
	for round := 0; round < 50; round++ {
		for op := 0; op < 40; op++ {
			a, b := NodeID(r.Intn(100)), NodeID(r.Intn(100))
			if r.Intn(3) == 0 {
				net.Disconnect(a, b)
			} else {
				net.Connect(a, b)
			}
		}
		got := net.FreezeInto(c)
		if got != c {
			t.Fatal("FreezeInto did not return its receiver")
		}
		assertCSRMatches(t, net, c)
	}
}

// TestFreezeIntoSteadyStateAllocs: once the snapshot has reached its
// high-water capacity, re-freezing allocates nothing — the property
// that makes per-epoch re-freezing viable on the hot path.
func TestFreezeIntoSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	net := NewNetwork(PureAsymmetric, 500, 4, 0)
	wireRandom(net, 1500, r)
	c := net.Freeze()
	allocs := testing.AllocsPerRun(20, func() {
		net.FreezeInto(c)
	})
	if allocs != 0 {
		t.Fatalf("steady-state FreezeInto allocates %.1f times, want 0", allocs)
	}
}

func TestFreezeView(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	net := NewNetwork(PureAsymmetric, 150, 6, 0)
	wireRandom(net, 500, r)
	c, err := FreezeView(net.Len(), net.Out)
	if err != nil {
		t.Fatal(err)
	}
	assertCSRMatches(t, net, c)
	empty, err := FreezeView(0, func(NodeID) []NodeID { return nil })
	if err != nil || empty.Len() != 0 || empty.EdgeCount() != 0 {
		t.Fatalf("empty view: %v, %d nodes / %d edges", err, empty.Len(), empty.EdgeCount())
	}
}

// TestFreezeViewRejectsBadViews: negative n and edges outside [0, n)
// are freeze-time errors, not mid-cascade panics.
func TestFreezeViewRejectsBadViews(t *testing.T) {
	if _, err := FreezeView(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := FreezeView(2, func(NodeID) []NodeID { return []NodeID{5} }); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	if _, err := FreezeView(2, func(NodeID) []NodeID { return []NodeID{-1} }); err == nil {
		t.Error("negative neighbor accepted")
	}
}
