package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Property tests on the search cascade over randomly generated
// networks: structural invariants that must hold for every topology,
// content placement and query.

// randomCase builds a random pure-asymmetric network with random
// content placement and returns it with a content checker.
func randomCase(seed uint64, nodes, degree int) (*testGraph, Content, *rng.Stream) {
	s := rng.New(seed)
	net := topology.NewNetwork(topology.PureAsymmetric, nodes, degree, 0)
	topology.RandomWire(net, degree, s.Intn)
	holders := map[topology.NodeID]bool{}
	for i := 0; i < nodes; i++ {
		if s.Bernoulli(0.2) {
			holders[topology.NodeID(i)] = true
		}
	}
	g := &testGraph{net: net, offline: map[topology.NodeID]bool{}}
	content := ContentFunc(func(id topology.NodeID, _ Key) bool { return holders[id] })
	return g, content, s
}

// Property: every result's hop count is within [1, TTL], the visited
// count never exceeds the network size, and FirstResultDelay is the
// minimum of the result delays.
func TestQuickCascadeStructuralInvariants(t *testing.T) {
	f := func(seed uint64, ttlRaw uint8) bool {
		const nodes = 40
		ttl := int(ttlRaw)%6 + 1
		g, content, _ := randomCase(seed, nodes, 4)
		c := &Cascade{Graph: g, Content: content, Forward: Flood{},
			Delay: func(_, _ topology.NodeID) float64 { return 0.05 }}
		o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: ttl})
		if o.Visited >= nodes {
			return false
		}
		minDelay := 0.0
		for i, r := range o.Results {
			if r.Hops < 1 || r.Hops > ttl {
				return false
			}
			if i == 0 || r.Delay < minDelay {
				minDelay = r.Delay
			}
		}
		if o.Hit() && o.FirstResultDelay != minDelay {
			return false
		}
		if !o.Hit() && o.FirstResultDelay != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising the TTL never loses hits (same seed, same network,
// ForwardWhenHit so truncation cannot interact).
func TestQuickCascadeTTLMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g, content, _ := randomCase(seed, 40, 4)
		c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
		prev := 0
		for ttl := 1; ttl <= 5; ttl++ {
			o := c.Run(&Query{ID: QueryID(ttl), Key: 1, Origin: 0, TTL: ttl, ForwardWhenHit: true})
			if len(o.Results) < prev {
				return false
			}
			prev = len(o.Results)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: stop-at-server truncation can only reduce traffic and
// never reduces the binary hit outcome.
func TestQuickStopAtServerSafe(t *testing.T) {
	f := func(seed uint64, ttlRaw uint8) bool {
		ttl := int(ttlRaw)%5 + 1
		g, content, _ := randomCase(seed, 40, 4)
		c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
		stop := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: ttl})
		flood := c.Run(&Query{ID: 2, Key: 1, Origin: 0, TTL: ttl, ForwardWhenHit: true})
		if stop.Messages > flood.Messages {
			return false
		}
		return stop.Hit() == flood.Hit()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: message count is bounded by edges times two directions —
// duplicate suppression guarantees each node forwards at most once, so
// each directed edge carries at most one copy of the query.
func TestQuickCascadeMessageBound(t *testing.T) {
	f := func(seed uint64, ttlRaw uint8) bool {
		ttl := int(ttlRaw)%8 + 1
		g, content, _ := randomCase(seed, 30, 3)
		c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
		o := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: ttl, ForwardWhenHit: true})
		return o.Messages <= uint64(g.net.EdgeCount())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: DirectedBFT with K >= degree equals Flood on any network
// (selection of everything is flooding).
func TestQuickDirectedBFTDegeneratesToFlood(t *testing.T) {
	f := func(seed uint64) bool {
		g, content, _ := randomCase(seed, 30, 3)
		led := stats.NewLedger()
		ledger := func(topology.NodeID) *stats.Ledger { return led }
		flood := &Cascade{Graph: g, Content: content, Forward: Flood{}}
		directed := &Cascade{Graph: g, Content: content,
			Forward: DirectedBFT{K: 64, Benefit: stats.Cumulative{}}, Ledger: ledger}
		a := flood.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: 3})
		b := directed.Run(&Query{ID: 2, Key: 1, Origin: 0, TTL: 3})
		return a.Messages == b.Messages && len(a.Results) == len(b.Results)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: exploration visits a superset of what a same-TTL search
// visits when the search finds nothing (identical propagation), and
// findings count equals visited nodes.
func TestQuickExploreCensusComplete(t *testing.T) {
	f := func(seed uint64, ttlRaw uint8) bool {
		ttl := int(ttlRaw)%4 + 1
		g, _, _ := randomCase(seed, 30, 3)
		none := ContentFunc(func(topology.NodeID, Key) bool { return false })
		c := &Cascade{Graph: g, Content: none, Forward: Flood{}}
		search := c.Run(&Query{ID: 1, Key: 1, Origin: 0, TTL: ttl})
		explore := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: ttl})
		return len(explore.Findings) == search.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
