package digest

import (
	"fmt"

	"repro/internal/topology"
)

// LocalIndex implements Yang & Garcia-Molina's Local Indices technique
// as the paper describes it: "each node maintains an index over the
// data of all peers within r hops of itself, allowing each search to
// terminate after r hops". The index here is a per-peer Bloom digest
// plus a merged r-hop view, so a node can answer membership queries on
// behalf of its r-hop neighborhood without forwarding.
type LocalIndex struct {
	radius int
	// perPeer holds each contributing peer's own digest, so entries can
	// be replaced when a peer re-publishes or leaves.
	perPeer map[topology.NodeID]*Bloom
	merged  *Bloom
	geomN   int
	geomFP  float64
	stale   bool
}

// NewLocalIndex builds an index of the given hop radius. n and fp size
// the per-peer Bloom digests.
func NewLocalIndex(radius, n int, fp float64) *LocalIndex {
	if radius < 0 {
		panic(fmt.Sprintf("digest: negative index radius %d", radius))
	}
	return &LocalIndex{
		radius:  radius,
		perPeer: make(map[topology.NodeID]*Bloom),
		merged:  NewBloom(n, fp),
		geomN:   n,
		geomFP:  fp,
	}
}

// Radius returns the hop radius the index covers.
func (ix *LocalIndex) Radius() int { return ix.radius }

// Publish installs (or replaces) peer's digest. The caller passes the
// peer's own content digest; LocalIndex keeps its own clone.
func (ix *LocalIndex) Publish(peer topology.NodeID, d *Bloom) {
	ix.perPeer[peer] = d.Clone()
	ix.stale = true
}

// Withdraw removes peer's contribution (peer left or went off-line).
func (ix *LocalIndex) Withdraw(peer topology.NodeID) {
	if _, ok := ix.perPeer[peer]; ok {
		delete(ix.perPeer, peer)
		ix.stale = true
	}
}

// Peers returns the number of contributing peers.
func (ix *LocalIndex) Peers() int { return len(ix.perPeer) }

// rebuild recomputes the merged digest from per-peer digests.
func (ix *LocalIndex) rebuild() {
	ix.merged = NewBloom(ix.geomN, ix.geomFP)
	for _, d := range ix.perPeer {
		// Per-peer digests may have different geometry than the merged
		// one if the application sized them differently; fall back to
		// key-less union only when identical.
		if d.Bits() == ix.merged.Bits() && d.K() == ix.merged.K() {
			ix.merged.Union(d)
		} else {
			panic("digest: per-peer digest geometry differs from index geometry")
		}
	}
	ix.stale = false
}

// MayContain reports whether any indexed peer may hold key. No false
// negatives: if every peer published a complete digest, a false here
// proves the key is not within the radius.
func (ix *LocalIndex) MayContain(key Key) bool {
	if ix.stale {
		ix.rebuild()
	}
	return ix.merged.Contains(key)
}

// Holders returns the peers whose individual digests claim the key, in
// unspecified order. Some may be false positives.
func (ix *LocalIndex) Holders(key Key) []topology.NodeID {
	var out []topology.NodeID
	for id, d := range ix.perPeer {
		if d.Contains(key) {
			out = append(out, id)
		}
	}
	return out
}
