package core

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Cascade executes the generic search of Algo 1 over a topology view:
// the query spreads from the origin along outgoing-neighbor edges,
// every repository processes it at most once (duplicate suppression by
// query ID, as in Algo 5's Process_Query), nodes holding the key reply
// to the origin over the reverse route, and propagation obeys the TTL
// and result-count terminating conditions.
//
// The cascade resolves the entire query within one simulator event:
// per-hop delays are sampled and accumulated analytically, which is
// exact as long as node state does not change during the (seconds-long)
// life of one query — see DESIGN.md, substitution table.
type Cascade struct {
	// Graph supplies outgoing neighbors and liveness. Required.
	Graph Graph
	// Content answers local repository membership. Required.
	Content Content
	// Forward selects propagation targets. Required.
	Forward ForwardPolicy
	// Index, when non-nil, lets every visited node (and the origin)
	// answer on behalf of peers within Index.Radius() hops — the Local
	// Indices technique of [10]. Callers typically shorten the query
	// TTL by the radius.
	Index Index
	// Delay samples one-way hop delays; nil means ZeroDelay.
	Delay DelayFunc
	// Ledger, when non-nil, returns the statistics ledger of a
	// forwarding node (used by history-based forward policies).
	Ledger func(id topology.NodeID) *stats.Ledger
	// OnMessage, when non-nil, is invoked for every query propagation
	// (from -> to), including duplicates discarded on arrival.
	OnMessage func(from, to topology.NodeID)
	// OnReplyHop, when non-nil, is invoked for every hop of a reply on
	// the reverse route.
	OnReplyHop func(from, to topology.NodeID)
}

// arrival is one in-flight copy of the query.
type arrival struct {
	node topology.NodeID
	from topology.NodeID // forwarding neighbor (reverse-route next hop)
	hops int
}

// visitState records the reverse route for replies.
type visitState struct {
	parent       topology.NodeID
	forwardDelay float64
	hops         int
}

// Run executes the search for query q and returns its outcome. It
// panics on an invalid query or an incomplete cascade configuration;
// both are programming errors, not runtime conditions.
func (c *Cascade) Run(q *Query) *Outcome {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	if c.Graph == nil || c.Content == nil || c.Forward == nil {
		panic("core: Cascade requires Graph, Content and Forward")
	}
	delay := c.Delay
	if delay == nil {
		delay = ZeroDelay
	}
	ledger := func(topology.NodeID) *stats.Ledger { return nil }
	if c.Ledger != nil {
		ledger = c.Ledger
	}

	out := &Outcome{}
	visited := map[topology.NodeID]*visitState{q.Origin: {parent: topology.None}}
	pq := eventq.New()
	var indexedHolders map[topology.NodeID]bool
	if c.Index != nil {
		indexedHolders = make(map[topology.NodeID]bool)
	}

	send := func(from, to topology.NodeID, t float64, hops int) {
		out.Messages++
		if c.OnMessage != nil {
			c.OnMessage(from, to)
		}
		pq.Push(t+delay(from, to), arrival{node: to, from: from, hops: hops})
	}

	// With a local index the origin answers from its own index first —
	// a zero-message lookup over its Radius()-hop neighborhood.
	originHit := false
	if c.Index != nil {
		originHit = c.indexResults(q, out, indexedHolders, q.Origin, 0, 0, 0, delay)
	}

	// The origin forwards to its selected neighbors at t = 0
	// (Send_Query: "sends the query to its neighbors"). TTL counts
	// hops, so TTL = 0 means no propagation at all.
	if q.TTL >= 1 && !(originHit && !q.ForwardWhenHit) &&
		!(q.MaxResults > 0 && len(out.Results) >= q.MaxResults) {
		for _, n := range c.Forward.Select(q, q.Origin, topology.None, c.Graph.Out(q.Origin), ledger(q.Origin)) {
			send(q.Origin, n, 0, 1)
		}
	}

	for {
		item := pq.Pop()
		if item == nil {
			break
		}
		if q.MaxResults > 0 && len(out.Results) >= q.MaxResults {
			// Terminating condition met; remaining in-flight copies are
			// abandoned (they were already counted as messages).
			break
		}
		now := item.Time
		a := item.Value.(arrival)
		if _, dup := visited[a.node]; dup {
			continue // Process_Query: "if the same message has been received before, return"
		}
		if !c.Graph.Online(a.node) {
			continue // message reached a node that just went off-line
		}
		st := &visitState{parent: a.from, forwardDelay: now, hops: a.hops}
		visited[a.node] = st
		out.Visited++

		hit := c.Content.HasContent(a.node, q.Key)
		if hit && indexedHolders != nil && indexedHolders[a.node] {
			hit = false // already answered on this node's behalf upstream
		}
		if hit || c.Index != nil {
			// Reply travels the reverse route (Gnutella semantics);
			// each reverse hop samples a fresh delay.
			replyDelay := 0.0
			node := a.node
			for node != q.Origin {
				s := visited[node]
				replyDelay += delay(node, s.parent)
				node = s.parent
			}
			if hit {
				node = a.node
				for node != q.Origin {
					out.ReplyMessages++
					if c.OnReplyHop != nil {
						c.OnReplyHop(node, visited[node].parent)
					}
					node = visited[node].parent
				}
				if indexedHolders != nil {
					indexedHolders[a.node] = true
				}
				total := now + replyDelay
				out.Results = append(out.Results, Result{Holder: a.node, Hops: a.hops, Delay: total})
				if out.FirstResultDelay == 0 || total < out.FirstResultDelay {
					out.FirstResultDelay = total
				}
			}
			// Answer for indexed peers beyond this node.
			if c.Index != nil &&
				!(q.MaxResults > 0 && len(out.Results) >= q.MaxResults) {
				if c.indexResults(q, out, indexedHolders, a.node, a.hops, now, replyDelay, delay) {
					hit = true
				}
			}
		}

		// Propagation: a serving node stops unless ForwardWhenHit; TTL
		// bounds the hop count.
		if (hit && !q.ForwardWhenHit) || a.hops >= q.TTL {
			continue
		}
		for _, n := range c.Forward.Select(q, a.node, a.from, c.Graph.Out(a.node), ledger(a.node)) {
			send(a.node, n, now, a.hops+1)
		}
	}
	return out
}

// IterativeDeepening implements technique (i) of [10] as a search
// driver: successive cascades with growing TTL until the query is
// satisfied or the maximum depth is reached. Message counts accumulate
// across iterations (re-propagation is the technique's cost); the
// returned outcome is the final iteration's results with the summed
// overhead.
//
// The paper notes the technique is orthogonal to dynamic
// reconfiguration and can be combined with it — the ablation benchmark
// does exactly that.
type IterativeDeepening struct {
	// Depths is the TTL schedule, strictly increasing (e.g. 1, 2, 4).
	Depths []int
	// CycleTimeout is how long the initiator waits before declaring a
	// cycle unsatisfied and deepening (seconds). Each failed cycle adds
	// this to the first-result delay of the final outcome.
	CycleTimeout float64
}

// Run executes the deepening schedule for q over cascade c. The TTL in
// q is ignored; Depths governs.
func (d IterativeDeepening) Run(c *Cascade, q *Query) *Outcome {
	if len(d.Depths) == 0 {
		panic("core: IterativeDeepening needs at least one depth")
	}
	prev := 0
	var total Outcome
	waited := 0.0
	for _, depth := range d.Depths {
		if depth <= prev {
			panic(fmt.Sprintf("core: deepening schedule not increasing at depth %d", depth))
		}
		prev = depth
		qq := *q
		qq.TTL = depth
		o := c.Run(&qq)
		total.Messages += o.Messages
		total.ReplyMessages += o.ReplyMessages
		if o.Visited > total.Visited {
			total.Visited = o.Visited
		}
		if o.Hit() {
			total.Results = o.Results
			total.FirstResultDelay = waited + o.FirstResultDelay
			break
		}
		waited += d.CycleTimeout
	}
	return &total
}
