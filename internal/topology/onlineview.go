package topology

// OnlineView adapts a Network plus a liveness mask to the graph shape
// the cascade core searches (Out + Online). Before it existed, every
// simulation application hand-rolled the same adapter (gnutella's
// simGraph, webcache's proxyGraph, peerolap's peerGraph); the session
// driver now builds one OnlineView per run and shares it between the
// search engine and the application's own liveness checks.
//
// The view holds live references: topology changes to Net and flips of
// Mask entries are visible to subsequent calls immediately, which is
// exactly what churning simulations need. It is not safe for
// concurrent mutation; the single-threaded simulator is the intended
// producer.
type OnlineView struct {
	// Net is the neighbor graph being searched.
	Net *Network
	// Mask records per-node liveness, indexed by NodeID. A nil Mask
	// means every node is permanently online (the no-churn case: web
	// proxies, OLAP workstations).
	Mask []bool
}

// Out returns id's outgoing neighbors (shared backing array).
func (v *OnlineView) Out(id NodeID) []NodeID { return v.Net.Out(id) }

// Online reports whether id currently participates.
func (v *OnlineView) Online(id NodeID) bool { return v.Mask == nil || v.Mask[id] }

// Len returns the node count (lets engines pre-size per-query state).
func (v *OnlineView) Len() int { return v.Net.Len() }
