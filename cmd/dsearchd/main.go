// Command dsearchd is the long-running cluster daemon: one process
// hosts a shard of live repository nodes, finds the other shards by
// seed-list + gossip membership, and serves the HTTP/JSON
// query+control plane that pkg/searchclient speaks.
//
// Single-process cluster (in-process channel fabric):
//
//	dsearchd -nodes 50 -degree 3 -ttl 3 -seed 42 -http 127.0.0.1:7080
//
// Three-process cluster over loopback TCP (all members must agree on
// -total, -seed, -degree, -keys and -replicas — the shared world):
//
//	dsearchd -transport tcp -total 12 -nodes 4 -base 0 -http 127.0.0.1:7080
//	dsearchd -transport tcp -total 12 -nodes 4 -base 4 -join 127.0.0.1:7080
//	dsearchd -transport tcp -total 12 -nodes 4 -base 8 -join 127.0.0.1:7080
//
// Deterministic chaos on a live cluster — seeded per-link message
// faults at boot, crash/restart via the control plane at runtime:
//
//	dsearchd -nodes 50 -seed 42 -fault-drop 0.10 -fault-delay-max 20
//	curl -d '{"node":3}' http://127.0.0.1:7080/v1/control/crash
//
// Profiling is off by default; -pprof-addr serves net/http/pprof on a
// separate listener:
//
//	dsearchd -nodes 50 -pprof-addr 127.0.0.1:6060
//	go tool pprof "http://127.0.0.1:6060/debug/pprof/profile?seconds=10"
//
// A JSON config file (-config, same field names as the flags' JSON
// tags) seeds the configuration; explicitly set flags override it.
// SIGINT/SIGTERM trigger a graceful drain: admission stops, in-flight
// queries finish, nodes drain their inboxes, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only when -pprof-addr is set
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/daemon"
)

func main() {
	var (
		cfgPath = flag.String("config", "", "JSON config file (flags override it)")
		name    = flag.String("name", "", "cluster-unique member name (default d<base>)")
		httpA   = flag.String("http", "127.0.0.1:0", "HTTP listen address (:0 = ephemeral)")
		trans   = flag.String("transport", daemon.TransportChan, "envelope transport: chan or tcp")
		host    = flag.String("node-host", "127.0.0.1", "host node listeners bind on (tcp)")

		nodes  = flag.Int("nodes", 8, "local node count")
		baseID = flag.Int("base", 0, "first local node ID")
		total  = flag.Int("total", 0, "cluster node count (0 = nodes)")

		seed     = flag.Uint64("seed", 1, "world seed (cluster-wide)")
		degree   = flag.Int("degree", 4, "overlay wiring degree")
		keys     = flag.Int("keys", 256, "catalog size")
		replicas = flag.Int("replicas", 3, "copies per key")

		ttl    = flag.Int("ttl", 4, "default search hop limit")
		policy = flag.String("policy", "flood", "forward policy registry name")
		class  = flag.String("class", "cable", "bandwidth class: 56k, cable or lan")

		join    = flag.String("join", "", "seed daemon HTTP addresses, comma-separated")
		gossipI = flag.Int("gossip-interval", 500, "gossip round interval (ms)")
		gossipF = flag.Int("gossip-fanout", 2, "peers contacted per gossip round")
		window  = flag.Int("query-window", 100, "default hit-collection window (ms)")
		drainT  = flag.Int("drain-timeout", 10_000, "graceful drain bound (ms)")

		batchW   = flag.Int("batch-workers", 64, "resident workers draining one /v1/query/batch slab")
		maxBatch = flag.Int("max-batch", 16_384, "largest query slab one batch request may carry")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty)")

		fdSuspect = flag.Int("fd-suspect-rounds", 3, "gossip rounds without a heartbeat before suspecting a member")
		fdEvict   = flag.Int("fd-evict-rounds", 6, "gossip rounds without a heartbeat before evicting a member")
		fdAmnesty = flag.Int("fd-amnesty-rounds", 12, "gossip rounds an eviction tombstone blocks rejoin")

		faultSeed     = flag.Uint64("fault-seed", 0, "fault decision-stream seed (0 = derive from -seed)")
		faultDrop     = flag.Float64("fault-drop", 0, "per-message drop probability [0,1)")
		faultDup      = flag.Float64("fault-dup", 0, "per-message duplication probability [0,1)")
		faultReorder  = flag.Float64("fault-reorder", 0, "per-message reorder probability [0,1)")
		faultDelayMin = flag.Int("fault-delay-min", 0, "injected per-message delay lower bound (ms)")
		faultDelayMax = flag.Int("fault-delay-max", 0, "injected per-message delay upper bound (ms)")
	)
	flag.Parse()

	var cfg daemon.Config
	if *cfgPath != "" {
		var err error
		if cfg, err = daemon.LoadConfig(*cfgPath); err != nil {
			fatalf("%v", err)
		}
	}

	// Explicitly set flags override the file; otherwise flags only fill
	// fields the file left zero (so file values survive the defaults
	// baked into flag declarations).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if cfg.Name == "" || set["name"] {
		cfg.Name = *name
	}
	if cfg.HTTPAddr == "" || set["http"] {
		cfg.HTTPAddr = *httpA
	}
	if cfg.Transport == "" || set["transport"] {
		cfg.Transport = *trans
	}
	if cfg.NodeHost == "" || set["node-host"] {
		cfg.NodeHost = *host
	}
	if cfg.Nodes == 0 || set["nodes"] {
		cfg.Nodes = *nodes
	}
	if cfg.BaseID == 0 || set["base"] {
		cfg.BaseID = *baseID
	}
	if cfg.Total == 0 || set["total"] {
		cfg.Total = *total
	}
	if cfg.Seed == 0 || set["seed"] {
		cfg.Seed = *seed
	}
	if cfg.Degree == 0 || set["degree"] {
		cfg.Degree = *degree
	}
	if cfg.Keys == 0 || set["keys"] {
		cfg.Keys = *keys
	}
	if cfg.Replicas == 0 || set["replicas"] {
		cfg.Replicas = *replicas
	}
	if cfg.TTL == 0 || set["ttl"] {
		cfg.TTL = *ttl
	}
	if cfg.Policy == "" || set["policy"] {
		cfg.Policy = *policy
	}
	if cfg.Class == "" || set["class"] {
		cfg.Class = *class
	}
	if *join != "" {
		cfg.Join = nil
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Join = append(cfg.Join, a)
			}
		}
	}
	if cfg.GossipIntervalMillis == 0 || set["gossip-interval"] {
		cfg.GossipIntervalMillis = *gossipI
	}
	if cfg.GossipFanout == 0 || set["gossip-fanout"] {
		cfg.GossipFanout = *gossipF
	}
	if cfg.QueryWindowMillis == 0 || set["query-window"] {
		cfg.QueryWindowMillis = *window
	}
	if cfg.DrainTimeoutMillis == 0 || set["drain-timeout"] {
		cfg.DrainTimeoutMillis = *drainT
	}
	if cfg.BatchWorkers == 0 || set["batch-workers"] {
		cfg.BatchWorkers = *batchW
	}
	if cfg.MaxBatch == 0 || set["max-batch"] {
		cfg.MaxBatch = *maxBatch
	}
	if cfg.FDSuspectRounds == 0 || set["fd-suspect-rounds"] {
		cfg.FDSuspectRounds = *fdSuspect
	}
	if cfg.FDEvictRounds == 0 || set["fd-evict-rounds"] {
		cfg.FDEvictRounds = *fdEvict
	}
	if cfg.FDAmnestyRounds == 0 || set["fd-amnesty-rounds"] {
		cfg.FDAmnestyRounds = *fdAmnesty
	}
	if cfg.Faults.Seed == 0 || set["fault-seed"] {
		cfg.Faults.Seed = *faultSeed
	}
	if cfg.Faults.Drop == 0 || set["fault-drop"] {
		cfg.Faults.Drop = *faultDrop
	}
	if cfg.Faults.Dup == 0 || set["fault-dup"] {
		cfg.Faults.Dup = *faultDup
	}
	if cfg.Faults.Reorder == 0 || set["fault-reorder"] {
		cfg.Faults.Reorder = *faultReorder
	}
	if cfg.Faults.DelayMinMillis == 0 || set["fault-delay-min"] {
		cfg.Faults.DelayMinMillis = *faultDelayMin
	}
	if cfg.Faults.DelayMaxMillis == 0 || set["fault-delay-max"] {
		cfg.Faults.DelayMaxMillis = *faultDelayMax
	}

	// Optional profiling plane, off by default and never on the query
	// listener. Capture a CPU profile of a running daemon with:
	//
	//	go tool pprof "http://127.0.0.1:6060/debug/pprof/profile?seconds=10"
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers on http.DefaultServeMux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dsearchd: pprof: %v\n", err)
			}
		}()
	}

	srv, err := daemon.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	srv.Start()
	// The three-process harness and shell scripts parse this line for
	// the ephemeral port; keep its shape stable.
	fmt.Printf("dsearchd: listening http=%s nodes=%d base=%d transport=%s\n",
		srv.Addr(), cfg.Nodes, cfg.BaseID, cfg.Transport)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("dsearchd: draining")
	if err := srv.Drain(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "dsearchd: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("dsearchd: stopped")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsearchd: "+format+"\n", args...)
	os.Exit(2)
}
