package experiments

import (
	"strings"
	"testing"
)

// These are the repository's integration tests: full (CI-scale)
// simulations of every figure, asserting the paper's qualitative
// claims. Absolute numbers differ from the paper (different scale and
// substrate); the shapes must not.

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Fatalf("ParseScale(full) = %v, %v", s, err)
	}
	if s, err := ParseScale("ci"); err != nil || s != CI {
		t.Fatalf("ParseScale(ci) = %v, %v", s, err)
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
	if Full.String() != "full" || CI.String() != "ci" {
		t.Fatal("scale names wrong")
	}
}

func TestReportHours(t *testing.T) {
	full := Full.reportHours()
	if len(full) != 6 || full[0] != 12 || full[5] != 87 {
		t.Fatalf("full report hours = %v", full)
	}
	ci := CI.reportHours()
	if len(ci) == 0 || ci[0] != CI.warmupHours() {
		t.Fatalf("ci report hours = %v", ci)
	}
}

func TestFig1Shape(t *testing.T) {
	f := Fig1(CI, 1)
	if len(f.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Claim 1: the dynamic approach satisfies more queries overall.
	if f.DynamicHitsTotal <= f.StaticHitsTotal {
		t.Fatalf("dynamic hits %v not above static %v", f.DynamicHitsTotal, f.StaticHitsTotal)
	}
	// Claim 2: the dynamic approach produces less query overhead.
	if f.DynamicMsgsTotal >= f.StaticMsgsTotal {
		t.Fatalf("dynamic messages %v not below static %v", f.DynamicMsgsTotal, f.StaticMsgsTotal)
	}
	// Claim 3: dynamic wins at (almost) every sampled hour after
	// steady state.
	wins := 0
	for _, r := range f.Rows {
		if r.DynamicHits > r.StaticHits {
			wins++
		}
	}
	if wins < len(f.Rows)-1 {
		t.Fatalf("dynamic won only %d/%d sampled hours", wins, len(f.Rows))
	}
}

func TestFig2Shape(t *testing.T) {
	f := Fig2(CI, 1)
	if f.DynamicHitsTotal <= f.StaticHitsTotal {
		t.Fatalf("dynamic hits %v not above static %v", f.DynamicHitsTotal, f.StaticHitsTotal)
	}
	if f.DynamicMsgsTotal >= f.StaticMsgsTotal {
		t.Fatalf("dynamic messages %v not below static %v", f.DynamicMsgsTotal, f.StaticMsgsTotal)
	}
	// Claim: the overhead gap is larger at hops=4 than at hops=2
	// ("the performance difference is significant if we allow the
	// queries to propagate for a larger number of hops").
	f1 := Fig1(CI, 1)
	gap2 := f1.StaticMsgsTotal / f1.DynamicMsgsTotal
	gap4 := f.StaticMsgsTotal / f.DynamicMsgsTotal
	if gap4 <= gap2 {
		t.Fatalf("hops=4 overhead ratio %v not above hops=2 ratio %v", gap4, gap2)
	}
}

func TestFig3aShape(t *testing.T) {
	rows := Fig3a(CI, 1)
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	// Claim 1: static delay grows with the terminating condition.
	for i := 1; i < 4; i++ {
		if rows[i].StaticDelayMs <= rows[i-1].StaticDelayMs {
			t.Fatalf("static delay not increasing at TTL %d: %+v", rows[i].TTL, rows)
		}
	}
	// Claim 2: the dynamic scheme answers faster at every depth >= 2
	// (at depth 1 both search only direct neighbors).
	for _, r := range rows[1:] {
		if r.DynamicDelayMs >= r.StaticDelayMs {
			t.Fatalf("dynamic delay %v not below static %v at TTL %d",
				r.DynamicDelayMs, r.StaticDelayMs, r.TTL)
		}
	}
	// Claim 3: result counts grow with depth for both variants.
	for i := 1; i < 4; i++ {
		if rows[i].StaticResults <= rows[i-1].StaticResults ||
			rows[i].DynamicResults <= rows[i-1].DynamicResults {
			t.Fatalf("results not increasing with TTL: %+v", rows)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	rows := Fig3b(CI, 1)
	if len(rows) != 5 {
		t.Fatalf("rows: %v", rows)
	}
	// Claim 1: every dynamic configuration beats static in total hits.
	for _, r := range rows {
		if r.DynamicHits <= r.StaticHits {
			t.Fatalf("θ=%d dynamic hits %v not above static %v",
				r.Threshold, r.DynamicHits, r.StaticHits)
		}
	}
	// Claim 2: the curve has an interior optimum (neither θ=1 nor θ=16
	// is the best configuration).
	best, bestHits := 0, rows[0].DynamicHits
	for i, r := range rows {
		if r.DynamicHits > bestHits {
			best, bestHits = i, r.DynamicHits
		}
	}
	if best == 0 || best == len(rows)-1 {
		t.Fatalf("optimum at boundary θ=%d: %+v", rows[best].Threshold, rows)
	}
}

func TestDirectedBFTAblation(t *testing.T) {
	rows := DirectedBFT(CI, 1)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	flood, directed, random := rows[0], rows[1], rows[2]
	if directed.Messages >= flood.Messages {
		t.Fatalf("directed BFT messages %d not below flood %d", directed.Messages, flood.Messages)
	}
	// History-based selection must beat blind random selection at equal
	// fan-out.
	if directed.Hits <= random.Hits {
		t.Fatalf("directed hits %v not above random-2 hits %v", directed.Hits, random.Hits)
	}
}

func TestIterDeepeningAblation(t *testing.T) {
	rows := IterDeepening(CI, 1)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[1].Hits == 0 {
		t.Fatal("deepening produced no hits")
	}
	// First results still arrive; the deepening delay penalty shows in
	// the first-result column (failed cycles wait CycleTimeout).
	if rows[1].MeanFirstResultMs <= 0 {
		t.Fatalf("deepening first-result delay missing: %+v", rows[1])
	}
}

func TestAsymmetricUpdateAblation(t *testing.T) {
	rows := AsymmetricUpdate(CI, 1)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	static, symmetric := rows[0], rows[1]
	if symmetric.Hits <= static.Hits {
		t.Fatalf("symmetric dynamic hits %v not above static %v", symmetric.Hits, static.Hits)
	}
}

func TestBenefitFunctionsAblation(t *testing.T) {
	rows := BenefitFunctions(CI, 1)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if r.Hits == 0 {
			t.Fatalf("benefit variant %q produced no hits", r.Name)
		}
	}
}

func TestWebCacheExperiment(t *testing.T) {
	rows := WebCache(CI, 1)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	static, dynamic := rows[0], rows[1]
	if dynamic.NeighborHitRatio <= static.NeighborHitRatio {
		t.Fatalf("dynamic neighbor-hit ratio %v not above static %v",
			dynamic.NeighborHitRatio, static.NeighborHitRatio)
	}
	if dynamic.MeanLatencyMs >= static.MeanLatencyMs {
		t.Fatalf("dynamic latency %v not below static %v",
			dynamic.MeanLatencyMs, static.MeanLatencyMs)
	}
}

func TestPeerOlapExperiment(t *testing.T) {
	rows := PeerOlap(CI, 1)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	static, dynamic := rows[0], rows[1]
	if dynamic.MeanQueryCostS >= static.MeanQueryCostS {
		t.Fatalf("dynamic query cost %v not below static %v",
			dynamic.MeanQueryCostS, static.MeanQueryCostS)
	}
}

func TestTablesRender(t *testing.T) {
	f := Fig1(CI, 2)
	for _, tbl := range []interface{ String() string }{
		f.HitsTable("t1"),
		f.MsgsTable("t2"),
		Fig3aTable(Fig3a(CI, 2)),
		Fig3bTable(Fig3b(CI, 2)),
	} {
		out := tbl.String()
		if !strings.Contains(out, "Gnutella") {
			t.Fatalf("table missing series label:\n%s", out)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Fig1(CI, 7)
	b := Fig1(CI, 7)
	if a.DynamicHitsTotal != b.DynamicHitsTotal || a.StaticMsgsTotal != b.StaticMsgsTotal {
		t.Fatal("same seed produced different experiment results")
	}
}

func TestLocalIndicesAblation(t *testing.T) {
	rows := LocalIndices(CI, 1)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	flood, indexed := rows[0], rows[1]
	// Technique (iii) of [10]: one hop less flooding with the radius-1
	// index answering for the frontier — large message savings at
	// essentially unchanged coverage.
	if indexed.Messages >= flood.Messages/2 {
		t.Fatalf("local indices saved too little: %d vs %d messages",
			indexed.Messages, flood.Messages)
	}
	if indexed.Hits < 0.8*flood.Hits {
		t.Fatalf("local indices lost coverage: %v vs %v hits", indexed.Hits, flood.Hits)
	}
}

func TestDriftExperiment(t *testing.T) {
	rows := Drift(CI, 1)
	if len(rows) != 24 {
		t.Fatalf("expected 24 hourly rows, got %d", len(rows))
	}
	at := len(rows) / 2
	window := func(f func(DriftRow) float64, from, to int) float64 {
		sum := 0.0
		for _, r := range rows[from:to] {
			sum += f(r)
		}
		return sum
	}
	dyn := func(r DriftRow) float64 { return r.DynamicHits }
	sta := func(r DriftRow) float64 { return r.StaticHits }
	// Before the drift, the adapted dynamic network clearly beats
	// static.
	if window(dyn, at-4, at) <= window(sta, at-4, at) {
		t.Fatalf("pre-drift dynamic %v not above static %v",
			window(dyn, at-4, at), window(sta, at-4, at))
	}
	// The drift hurts: the dynamic advantage right after the change is
	// smaller than right before it (neighborhoods optimized for stale
	// preferences).
	gainBefore := window(dyn, at-3, at) - window(sta, at-3, at)
	gainAfter := window(dyn, at, at+3) - window(sta, at, at+3)
	if gainAfter >= gainBefore {
		t.Fatalf("drift did not dent the dynamic advantage: before %v, after %v",
			gainBefore, gainAfter)
	}
	// And the system recovers: by the final quarter the dynamic
	// advantage is positive again.
	tail := len(rows) - len(rows)/4
	if window(dyn, tail, len(rows)) <= window(sta, tail, len(rows)) {
		t.Fatalf("no recovery: tail dynamic %v vs static %v",
			window(dyn, tail, len(rows)), window(sta, tail, len(rows)))
	}
}
