// Package lru provides the fixed-capacity least-recently-used cache of
// content keys shared by the caching case studies: Squid-style proxies
// keep hot pages, PeerOlap peers keep hot chunks. Only presence matters
// to the search framework, so values are not stored.
//
// The implementation is an intrusive doubly linked list over a map,
// giving O(1) Get/Put/eviction without container/list's interface
// boxing.
package lru

import (
	"fmt"

	"repro/internal/digest"
)

// LRU is a fixed-capacity least-recently-used cache of content keys.
type LRU struct {
	capacity int
	items    map[digest.Key]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	// evicted, when non-nil, observes evictions (digest maintenance).
	evicted func(digest.Key)
}

type lruNode struct {
	key        digest.Key
	prev, next *lruNode
}

// New returns an empty cache with the given capacity.
func New(capacity int) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("lru: LRU capacity %d", capacity))
	}
	return &LRU{capacity: capacity, items: make(map[digest.Key]*lruNode, capacity)}
}

// OnEvict registers an eviction observer (may be nil).
func (c *LRU) OnEvict(f func(digest.Key)) { c.evicted = f }

// Len returns the number of cached keys.
func (c *LRU) Len() int { return len(c.items) }

// Cap returns the capacity.
func (c *LRU) Cap() int { return c.capacity }

// Contains reports presence without refreshing recency.
func (c *LRU) Contains(key digest.Key) bool {
	_, ok := c.items[key]
	return ok
}

// Get reports presence and refreshes recency on hit.
func (c *LRU) Get(key digest.Key) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.moveToFront(n)
	return true
}

// Put inserts key (refreshing recency if present), evicting the LRU
// entry when full. It reports whether the key was newly inserted.
func (c *LRU) Put(key digest.Key) bool {
	if n, ok := c.items[key]; ok {
		c.moveToFront(n)
		return false
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		if c.evicted != nil {
			c.evicted(lru.key)
		}
	}
	n := &lruNode{key: key}
	c.items[key] = n
	c.pushFront(n)
	return true
}

// Keys returns all cached keys from most to least recently used.
func (c *LRU) Keys() []digest.Key {
	out := make([]digest.Key, 0, len(c.items))
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

func (c *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
