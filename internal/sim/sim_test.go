package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("new engine at t=%v", e.Now())
	}
}

func TestEventsFireInOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func(*Engine) { order = append(order, 3) })
	e.At(1, func(*Engine) { order = append(order, 1) })
	e.At(2, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v", order)
	}
}

func TestNowMatchesScheduledTime(t *testing.T) {
	e := New()
	e.At(5, func(en *Engine) {
		if en.Now() != 5 {
			t.Fatalf("handler saw Now=%v, want 5", en.Now())
		}
	})
	e.Run()
	if e.Now() != 5 {
		t.Fatalf("after run Now=%v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(1, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestInSchedulesRelative(t *testing.T) {
	e := New()
	var at float64
	e.At(10, func(en *Engine) {
		en.In(5, func(en2 *Engine) { at = en2.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("relative event fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Fatal("scheduling in the past did not panic")
			}
		}()
		en.At(5, func(*Engine) {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().In(-1, func(*Engine) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().At(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func(*Engine) { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("cancel of pending event returned false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel returned true")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	e.Run() // resume
	if count != 10 {
		t.Fatalf("resume ran to %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func(*Engine) { fired = append(fired, tm) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("RunUntil left Now=%v", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("second RunUntil fired %v", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now=%v, want 10", e.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := New()
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	e.RunUntil(1)
}

func TestHorizonDropsLateEvents(t *testing.T) {
	e := New()
	e.SetHorizon(10)
	fired := 0
	if ev := e.At(11, func(*Engine) { fired++ }); ev != nil {
		t.Fatal("event past horizon returned non-nil handle")
	}
	e.At(9, func(*Engine) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
}

func TestTicker(t *testing.T) {
	e := New()
	e.SetHorizon(10)
	var times []float64
	e.Ticker(1, 2, func(en *Engine) { times = append(times, en.Now()) })
	e.Run()
	want := []float64{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestTickerCancel(t *testing.T) {
	e := New()
	count := 0
	var cancel func()
	cancel = e.Ticker(0, 1, func(*Engine) {
		count++
		if count == 3 {
			cancel()
		}
	})
	e.RunUntil(100)
	if count != 3 {
		t.Fatalf("cancelled ticker fired %d times, want 3", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period did not panic")
		}
	}()
	New().Ticker(0, 0, func(*Engine) {})
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func(*Engine) {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed=%d, want 7", e.Processed())
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.At(1, func(*Engine) {})
	e.At(2, func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending=%d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", e.Pending())
	}
}

func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		prev := -1.0
		ok := true
		for _, d := range delays {
			e.At(float64(d), func(en *Engine) {
				if en.Now() < prev {
					ok = false
				}
				prev = en.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	var h Handler
	h = func(en *Engine) {
		if en.Processed() < uint64(b.N) {
			en.In(1, h)
		}
	}
	e.At(0, h)
	b.ResetTimer()
	e.Run()
}
