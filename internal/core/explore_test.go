package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

func TestExploreCensusesNeighborhood(t *testing.T) {
	g := chain(4) // 0 -> 1 -> 2 -> 3
	content := ContentFunc(func(id topology.NodeID, k Key) bool {
		return id == 2 && k == 7
	})
	c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	o := c.Explore(&Exploration{Keys: []Key{7, 8}, Origin: 0, TTL: 2})
	if len(o.Findings) != 2 {
		t.Fatalf("findings: %+v", o.Findings)
	}
	// Node 1 holds nothing, node 2 holds key 7.
	byNode := map[topology.NodeID][]Key{}
	for _, f := range o.Findings {
		byNode[f.Node] = f.Held
	}
	if len(byNode[1]) != 0 {
		t.Fatalf("node 1 held %v", byNode[1])
	}
	if len(byNode[2]) != 1 || byNode[2][0] != 7 {
		t.Fatalf("node 2 held %v", byNode[2])
	}
}

func TestExploreDoesNotStopAtHolders(t *testing.T) {
	// Unlike search, exploration passes through nodes that hold keys.
	g := chain(4)
	content := ContentFunc(func(id topology.NodeID, k Key) bool { return true })
	c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	o := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: 3})
	if len(o.Findings) != 3 {
		t.Fatalf("exploration stopped early: %d findings", len(o.Findings))
	}
}

func TestExploreHolders(t *testing.T) {
	g := star(5)
	content := ContentFunc(func(id topology.NodeID, k Key) bool {
		return (id == 2 || id == 4) && k == 9
	})
	c := &Cascade{Graph: g, Content: content, Forward: Flood{}}
	o := c.Explore(&Exploration{Keys: []Key{9}, Origin: 0, TTL: 1})
	h := o.Holders(9)
	if len(h) != 2 {
		t.Fatalf("holders: %v", h)
	}
	if len(o.Holders(1234)) != 0 {
		t.Fatal("holders of unprobed key must be empty")
	}
}

func TestExploreTTLZero(t *testing.T) {
	g := star(3)
	c := &Cascade{Graph: g, Content: holders(1), Forward: Flood{}}
	o := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: 0})
	if len(o.Findings) != 0 || o.Messages != 0 {
		t.Fatalf("TTL 0 exploration did work: %+v", o)
	}
}

func TestExploreNegativeTTLPanics(t *testing.T) {
	g := star(2)
	c := &Cascade{Graph: g, Content: holders(), Forward: Flood{}}
	defer func() {
		if recover() == nil {
			t.Fatal("negative TTL did not panic")
		}
	}()
	c.Explore(&Exploration{Origin: 0, TTL: -1})
}

func TestExploreCountsMessages(t *testing.T) {
	g := star(4)
	var metered int
	c := &Cascade{
		Graph: g, Content: holders(), Forward: Flood{},
		OnMessage: func(_, _ topology.NodeID) { metered++ },
	}
	o := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: 1})
	if o.Messages != 3 || metered != 3 {
		t.Fatalf("messages = %d, metered = %d", o.Messages, metered)
	}
	// Reports travel back one hop each.
	if o.ReplyMessages != 3 {
		t.Fatalf("reply messages = %d", o.ReplyMessages)
	}
}

func TestExploreDelays(t *testing.T) {
	g := chain(3)
	c := &Cascade{
		Graph: g, Content: holders(), Forward: Flood{},
		Delay: func(_, _ topology.NodeID) float64 { return 0.1 },
	}
	o := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: 2})
	for _, f := range o.Findings {
		want := 0.2 * float64(f.Hops) // forward + reverse
		if f.Delay < want-1e-9 || f.Delay > want+1e-9 {
			t.Fatalf("node %d delay %v, want %v", f.Node, f.Delay, want)
		}
	}
}

func TestExploreSkipsOffline(t *testing.T) {
	g := star(4)
	g.offline[2] = true
	c := &Cascade{Graph: g, Content: holders(), Forward: Flood{}}
	o := c.Explore(&Exploration{Keys: []Key{1}, Origin: 0, TTL: 1})
	if len(o.Findings) != 2 {
		t.Fatalf("findings: %+v", o.Findings)
	}
	for _, f := range o.Findings {
		if f.Node == 2 {
			t.Fatal("offline node reported")
		}
	}
}

func TestRecordFindings(t *testing.T) {
	led := stats.NewLedger()
	o := &ExploreOutcome{Findings: []Finding{
		{Node: 1, Held: []Key{5, 6}, Hops: 1, Delay: 0.2},
		{Node: 2, Held: nil, Hops: 2, Delay: 0.5},
	}}
	RecordFindings(led, o, 100, func(id topology.NodeID) float64 { return 2 })
	r1 := led.Get(1)
	if r1 == nil || r1.Hits != 1 || r1.Results != 2 || r1.Benefit != 4 {
		t.Fatalf("record 1: %+v", r1)
	}
	if r1.Replies != 1 || r1.LatencySum != 0.2 || r1.LastSeen != 100 {
		t.Fatalf("record 1 bookkeeping: %+v", r1)
	}
	r2 := led.Get(2)
	if r2 == nil || r2.Hits != 0 || r2.Benefit != 0 || r2.Replies != 1 {
		t.Fatalf("record 2: %+v", r2)
	}
}

func TestRecordFindingsNilWeight(t *testing.T) {
	led := stats.NewLedger()
	o := &ExploreOutcome{Findings: []Finding{{Node: 1, Held: []Key{5}}}}
	RecordFindings(led, o, 0, nil)
	if led.Get(1).Benefit != 0 {
		t.Fatal("nil weight must not add benefit")
	}
	if led.Get(1).Hits != 1 {
		t.Fatal("hits must still accumulate")
	}
}
