package core

import (
	"repro/internal/stats"
	"repro/internal/topology"
)

// Exploration implements Algo 2: a metadata-only query about a
// collection of data items that propagates like a search but fetches
// nothing — visited repositories "return statistics and summarized
// information", and the initiator uses the findings to update the
// ledger from which neighbor updates are computed.
//
// Unlike a search, an exploration never stops at serving nodes: its
// purpose is to census the neighborhood out to the TTL.
type Exploration struct {
	// Keys is the set of data items to query for (Algo 2: "select set
	// of data items to query for").
	Keys []Key
	// Origin is the initiating repository.
	Origin topology.NodeID
	// TTL bounds propagation depth.
	TTL int
}

// Finding is one visited repository's report.
type Finding struct {
	// Node is the reporting repository.
	Node topology.NodeID
	// Held lists which of the probed keys the repository holds.
	Held []Key
	// Hops is the forward-path distance from the initiator.
	Hops int
	// Delay is when the report arrived back at the initiator (seconds
	// after the exploration started), over the reverse route.
	Delay float64
}

// ExploreOutcome aggregates an exploration round.
type ExploreOutcome struct {
	// Findings holds one entry per visited repository, in arrival
	// order, including repositories that hold none of the keys (their
	// statistics still matter: a NOT-FOUND reply is information).
	Findings []Finding
	// Messages counts exploration propagations (metered as MsgExplore
	// by callers).
	Messages uint64
	// ReplyMessages counts report hops on reverse routes.
	ReplyMessages uint64
}

// Holders returns the nodes that reported holding key.
func (o *ExploreOutcome) Holders(key Key) []topology.NodeID {
	var out []topology.NodeID
	for _, f := range o.Findings {
		for _, k := range f.Held {
			if k == key {
				out = append(out, f.Node)
				break
			}
		}
	}
	return out
}

// Explore runs one exploration round over the cascade's topology view.
// The cascade's Forward policy selects propagation targets exactly as
// in search; OnMessage metering is the caller's (exploration traffic is
// usually metered as netsim.MsgExplore). The caller owns the returned
// outcome; hot loops should use ExploreScratch.
func (c *Cascade) Explore(x *Exploration) *ExploreOutcome {
	return c.ExploreScratch(x, nil)
}

// ExploreScratch is Explore over caller-pooled working memory. The
// returned outcome (its Findings and their Held slices) aliases s and
// is valid until the next RunScratch/ExploreScratch call with the same
// Scratch. A nil s runs with fresh state, exactly like Explore.
func (c *Cascade) ExploreScratch(x *Exploration, s *Scratch) *ExploreOutcome {
	if c.Graph == nil || c.Content == nil || c.Forward == nil {
		panic("core: Cascade requires Graph, Content and Forward")
	}
	if x.TTL < 0 {
		panic("core: negative exploration TTL")
	}
	if s == nil {
		s = NewScratch(0)
	}
	delay := c.Delay
	if delay == nil {
		delay = ZeroDelay
	}
	ledger := func(topology.NodeID) *stats.Ledger { return nil }
	if c.Ledger != nil {
		ledger = c.Ledger
	}
	// Exploration reuses the query-shaped forward policies; the pseudo
	// query carries no key semantics (policies only inspect Origin).
	pseudo := &Query{Origin: x.Origin, TTL: x.TTL}

	s.begin()
	out := &ExploreOutcome{Findings: s.findings[:0]}
	held := s.heldBuf[:0]
	defer func() {
		// As in RunScratch: retain buffers, normalize empty to nil.
		s.findings = out.Findings[:0]
		s.heldBuf = held[:0]
		if len(out.Findings) == 0 {
			out.Findings = nil
		}
	}()

	origin := s.slot(x.Origin)
	origin.epoch = s.epoch
	origin.parent = topology.None

	send := func(from, to topology.NodeID, t float64, hops int32) {
		out.Messages++
		if c.OnMessage != nil {
			c.OnMessage(from, to)
		}
		s.pushArrival(t+delay(from, to), to, from, hops)
	}

	if x.TTL >= 1 {
		s.fwd = c.Forward.Select(pseudo, x.Origin, topology.None, c.Graph.Out(x.Origin), ledger(x.Origin), s.fwd[:0])
		for _, n := range s.fwd {
			send(x.Origin, n, 0, 1)
		}
	}

	for {
		if c.Halt != nil && c.Halt() {
			break
		}
		a, ok := s.popArrival()
		if !ok {
			break
		}
		now := a.time
		if s.visited(a.node) {
			continue
		}
		if !c.Graph.Online(a.node) {
			continue
		}
		st := s.slot(a.node)
		st.epoch = s.epoch
		st.parent = a.from
		st.forwardDelay = now
		st.hops = a.hops

		// Collect the held subset into the pooled backing; each finding
		// keeps its own sub-slice (growth reallocates the backing, which
		// leaves earlier findings pointing at the old array — still
		// valid, just no longer contiguous with later ones).
		start := len(held)
		for _, k := range x.Keys {
			if c.Content.HasContent(a.node, k) {
				held = append(held, k)
			}
		}
		var heldView []Key
		if len(held) > start {
			heldView = held[start:len(held):len(held)]
		}

		// The report travels the reverse route regardless of outcome.
		replyDelay := 0.0
		node := a.node
		for node != x.Origin {
			parent := s.visits[node].parent
			replyDelay += delay(node, parent)
			out.ReplyMessages++
			if c.OnReplyHop != nil {
				c.OnReplyHop(node, parent)
			}
			node = parent
		}
		out.Findings = append(out.Findings, Finding{
			Node:  a.node,
			Held:  heldView,
			Hops:  int(a.hops),
			Delay: now + replyDelay,
		})

		if int(a.hops) >= x.TTL {
			continue
		}
		s.fwd = c.Forward.Select(pseudo, a.node, a.from, c.Graph.Out(a.node), ledger(a.node), s.fwd[:0])
		for _, n := range s.fwd {
			send(a.node, n, now, a.hops+1)
		}
	}
	return out
}

// RecordFindings folds an exploration outcome into the initiator's
// ledger ("obtain results and update statistics"): every reporting node
// gets a reply observation; nodes holding probed keys get hit/result
// credit weighted by weight (the application's benefit increment, e.g.
// the bandwidth weight of the reporting link).
func RecordFindings(led *stats.Ledger, o *ExploreOutcome, now float64, weight func(topology.NodeID) float64) {
	for _, f := range o.Findings {
		r := led.Touch(f.Node)
		r.Replies++
		r.LatencySum += f.Delay
		r.LastSeen = now
		if len(f.Held) > 0 {
			r.Hits++
			r.Results += uint64(len(f.Held))
			if weight != nil {
				r.Benefit += weight(f.Node) * float64(len(f.Held))
			}
		}
	}
}
