package repro

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Section 4.3) plus one per ablation in DESIGN.md. Each benchmark runs
// the corresponding experiment at CI scale (10x-reduced, same shape)
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. The full-scale (paper-sized)
// series are produced by `go run ./cmd/repro -exp all -scale full`.
//
// Every experiment decomposes into independent cells executed by
// internal/runner's worker pool (the Fig*/ablation entry points below
// route through it); BenchmarkRunnerWorkers measures how one figure's
// cell set scales with the pool size.

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/pkg/search"
	"repro/pkg/searchclient"
)

// BenchmarkFig1 regenerates Figure 1 (hops = 2): queries satisfied per
// hour (a) and query overhead per hour (b), static vs dynamic.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig1(experiments.CI, uint64(i+1))
		b.ReportMetric(f.StaticHitsTotal, "static-hits")
		b.ReportMetric(f.DynamicHitsTotal, "dynamic-hits")
		b.ReportMetric(f.StaticMsgsTotal, "static-msgs")
		b.ReportMetric(f.DynamicMsgsTotal, "dynamic-msgs")
	}
}

// BenchmarkFig2 regenerates Figure 2 (hops = 4).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2(experiments.CI, uint64(i+1))
		b.ReportMetric(f.StaticHitsTotal, "static-hits")
		b.ReportMetric(f.DynamicHitsTotal, "dynamic-hits")
		b.ReportMetric(f.StaticMsgsTotal, "static-msgs")
		b.ReportMetric(f.DynamicMsgsTotal, "dynamic-msgs")
	}
}

// BenchmarkFig3a regenerates Figure 3(a): mean first-result delay vs
// terminating condition (reported for the deepest setting, TTL = 4).
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3a(experiments.CI, uint64(i+1))
		last := rows[len(rows)-1]
		b.ReportMetric(last.StaticDelayMs, "static-delay-ms")
		b.ReportMetric(last.DynamicDelayMs, "dynamic-delay-ms")
		b.ReportMetric(float64(last.StaticResults), "static-results")
		b.ReportMetric(float64(last.DynamicResults), "dynamic-results")
	}
}

// BenchmarkFig3b regenerates Figure 3(b): total hits vs reconfiguration
// threshold (reported: hits at the optimum and at the boundaries).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3b(experiments.CI, uint64(i+1))
		best := rows[0].DynamicHits
		for _, r := range rows {
			if r.DynamicHits > best {
				best = r.DynamicHits
			}
		}
		b.ReportMetric(rows[0].StaticHits, "static-hits")
		b.ReportMetric(rows[0].DynamicHits, "theta1-hits")
		b.ReportMetric(best, "best-theta-hits")
		b.ReportMetric(rows[len(rows)-1].DynamicHits, "theta16-hits")
	}
}

// BenchmarkDirectedBFT is the [10]-technique composition ablation.
func BenchmarkDirectedBFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DirectedBFT(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "directed-msgs")
		b.ReportMetric(rows[1].Hits, "directed-hits")
		b.ReportMetric(rows[2].Hits, "random2-hits")
	}
}

// BenchmarkIterativeDeepening is the deepening-schedule ablation.
func BenchmarkIterativeDeepening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.IterDeepening(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "deepening-msgs")
		b.ReportMetric(rows[1].MeanFirstResultMs, "deepening-first-ms")
	}
}

// BenchmarkLocalIndices is the [10] technique-(iii) ablation.
func BenchmarkLocalIndices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.LocalIndices(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "indexed-msgs")
		b.ReportMetric(rows[0].Hits, "flood-hits")
		b.ReportMetric(rows[1].Hits, "indexed-hits")
	}
}

// BenchmarkAsymmetricUpdate compares Algo 3 vs Algo 4 on the Gnutella
// workload.
func BenchmarkAsymmetricUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AsymmetricUpdate(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].Hits, "static-hits")
		b.ReportMetric(rows[1].Hits, "symmetric-hits")
		b.ReportMetric(rows[2].Hits, "asymmetric-hits")
	}
}

// BenchmarkBenefitFunctions measures benefit-definition sensitivity.
func BenchmarkBenefitFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BenefitFunctions(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].Hits, "BR-hits")
		b.ReportMetric(rows[1].Hits, "hitcount-hits")
		b.ReportMetric(rows[2].Hits, "latency-hits")
	}
}

// BenchmarkDrift measures re-adaptation after a mid-run preference
// change, with and without ledger decay.
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Drift(experiments.CI, uint64(i+1))
		n := len(rows)
		var staticEnd, dynEnd, decayEnd float64
		for _, r := range rows[n-n/4:] {
			staticEnd += r.StaticHits
			dynEnd += r.DynamicHits
			decayEnd += r.DynamicDecayHits
		}
		b.ReportMetric(staticEnd, "static-tail-hits")
		b.ReportMetric(dynEnd, "dynamic-tail-hits")
		b.ReportMetric(decayEnd, "decay-tail-hits")
	}
}

// benchNet is an immutable 4-regular network (ring plus ±7 chords)
// where node h holds key k iff h == int(k) % n — the per-query
// benchmark fixture shared by the facade and raw-cascade paths.
type benchNet struct {
	n   int
	out [][]topology.NodeID
}

func newBenchNet(n int) *benchNet {
	bn := &benchNet{n: n, out: make([][]topology.NodeID, n)}
	for i := 0; i < n; i++ {
		bn.out[i] = []topology.NodeID{
			topology.NodeID((i + 1) % n),
			topology.NodeID((i + n - 1) % n),
			topology.NodeID((i + 7) % n),
			topology.NodeID((i + n - 7) % n),
		}
	}
	return bn
}

func (b *benchNet) Out(id topology.NodeID) []topology.NodeID { return b.out[id] }
func (b *benchNet) Online(topology.NodeID) bool              { return true }
func (b *benchNet) HasContent(id topology.NodeID, key core.Key) bool {
	return int(id) == int(key)%b.n
}

// BenchmarkEnginePooled proves the pkg/search facade adds ~0 allocs/op
// over the expert-only core.RunScratch path it wraps: all
// sub-benchmarks drive identical TTL-4 floods of a 10k-node network,
// one query per op. "raw" holds one caller-managed Scratch; "engine"
// goes through Engine.Do (scratch pool, context plumbing, caller-owned
// results); "snapshot" is "engine" over the frozen CSR fast path
// (WithSnapshot). cmd/perfcheck gates the entries' allocs/op in CI.
func BenchmarkEnginePooled(b *testing.B) {
	const n = 10_000
	net := newBenchNet(n)
	query := func(i int) (origin topology.NodeID, key core.Key) {
		origin = topology.NodeID((i * 13) % n)
		return origin, core.Key((int(origin) + 2) % n) // holder two ring-hops out
	}

	b.Run("engine", func(b *testing.B) {
		eng, err := search.New(net, search.WithTTL(4), search.WithScratchHint(n))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		// Warm the scratch pool to its high-water marks so allocs/op
		// reflects the steady state, as in the raw path.
		if _, err := eng.Do(ctx, search.Query{Key: 2, Origin: 0}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			origin, key := query(i)
			res, err := eng.Do(ctx, search.Query{ID: uint64(i), Key: key, Origin: origin})
			if err != nil {
				b.Fatal(err)
			}
			hits += len(res.Hits)
		}
		if hits != b.N {
			b.Fatalf("%d hits over %d queries, want one each", hits, b.N)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		eng, err := search.New(net, search.WithTTL(4), search.WithSnapshot(n))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := eng.Do(ctx, search.Query{Key: 2, Origin: 0}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			origin, key := query(i)
			res, err := eng.Do(ctx, search.Query{ID: uint64(i), Key: key, Origin: origin})
			if err != nil {
				b.Fatal(err)
			}
			hits += len(res.Hits)
		}
		if hits != b.N {
			b.Fatalf("%d hits over %d queries, want one each", hits, b.N)
		}
	})
	b.Run("raw", func(b *testing.B) {
		cascade := &core.Cascade{
			Graph:   net,
			Content: core.ContentFunc(net.HasContent),
			Forward: core.Flood{},
		}
		scratch := core.NewScratch(n)
		cascade.RunScratch(&core.Query{Key: 2, Origin: 0, TTL: 4}, scratch)
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			origin, key := query(i)
			out := cascade.RunScratch(&core.Query{
				ID: core.QueryID(i), Key: key, Origin: origin, TTL: 4,
			}, scratch)
			hits += len(out.Results)
		}
		if hits != b.N {
			b.Fatalf("%d hits over %d queries, want one each", hits, b.N)
		}
	})
}

// BenchmarkEngineSaturation is the serving-layer headline: queries/sec
// through Engine.Saturate — N pinned-scratch workers draining a batched
// admission queue against ONE shared CSR snapshot — at 1/4/8/GOMAXPROCS
// workers over 100k- and 1M-node networks. Each op pushes a 1024-query
// slab through Saturator.Run; the queries/sec metric is what the
// repository's BENCH_history.json trajectory tracks across PRs. Workers
// share only the immutable snapshot, so on an m-core machine the curve
// should be near-linear up to m (the acceptance bar is >= 3x at 8
// workers vs 1 on the 100k net); on GOMAXPROCS=1 every worker count
// collapses to the same serial throughput and the benchmark degrades to
// an overhead check on the admission queue.
func BenchmarkEngineSaturation(b *testing.B) {
	const slab = 1024
	workerCounts := []int{1, 4, 8}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 && p != 8 {
		workerCounts = append(workerCounts, p)
	}
	sizes := []struct {
		name string
		n    int
	}{
		{"n100k", 100_000},
		{"n1M", 1_000_000},
	}
	for _, sz := range sizes {
		net := newBenchNet(sz.n)
		eng, err := search.New(net, search.WithTTL(4), search.WithSnapshot(sz.n))
		if err != nil {
			b.Fatal(err)
		}
		qs := make([]search.Query, slab)
		for i := range qs {
			origin := topology.NodeID((i * 13) % sz.n)
			qs[i] = search.Query{
				ID:     uint64(i),
				Key:    core.Key((int(origin) + 2) % sz.n), // holder two ring-hops out
				Origin: origin,
			}
		}
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s/w%d", sz.name, workers), func(b *testing.B) {
				sat, err := eng.Saturate(search.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				defer sat.Close()
				ctx := context.Background()
				// Warm every worker's pinned scratch to its high-water
				// marks so the timed region measures the steady state.
				if _, err := sat.Run(ctx, qs); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				hits := 0
				for i := 0; i < b.N; i++ {
					rs, err := sat.Run(ctx, qs)
					if err != nil {
						b.Fatal(err)
					}
					for k := range rs {
						hits += len(rs[k].Hits)
					}
				}
				b.StopTimer()
				if hits != b.N*slab {
					b.Fatalf("%d hits over %d queries, want one each", hits, b.N*slab)
				}
				b.ReportMetric(float64(b.N*slab)/b.Elapsed().Seconds(), "queries/sec")
			})
		}
	}
}

// indirectFlood is flood behind a type the cascade cannot devirtualize,
// reproducing the generic ForwardPolicy.Select path of earlier PRs.
type indirectFlood struct{}

func (indirectFlood) Select(q *core.Query, _, from topology.NodeID, out []topology.NodeID, _ *stats.Ledger, dst []topology.NodeID) []topology.NodeID {
	for _, n := range out {
		if n == from || n == q.Origin {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}
func (indirectFlood) Name() string { return "flood-indirect" }

// BenchmarkCascadeHotPath is the PR's headline differential: identical
// TTL-4 flood cascades over a 10k-node network on the legacy hot path
// (interface-dispatched graph, generic Select, binary-heap event queue)
// versus the optimized one (CSR snapshot, devirtualized flood, monotone
// bucketed queue), under both the zero-delay and a netsim-like delay
// regime. The acceptance bar is fast >= 2x legacy on ns/op; outcomes
// are byte-identical by the differential tests in internal/core.
func BenchmarkCascadeHotPath(b *testing.B) {
	const n = 10_000
	net := newBenchNet(n)
	csr, err := topology.FreezeView(n, net.Out)
	if err != nil {
		b.Fatal(err)
	}
	netsimDelay := func(from, to topology.NodeID) float64 {
		// Deterministic stand-in for netsim.OneWayDelay: varied enough
		// to exercise the bucketed queue, free of rng stream state.
		return 0.070 + float64((int(from)*31+int(to)*17)%29)/100
	}
	paths := []struct {
		name      string
		graph     core.Graph
		forward   core.ForwardPolicy
		forceHeap bool
	}{
		{"legacy", net, indirectFlood{}, true},
		{"fast", csr, core.Flood{}, false},
	}
	delays := []struct {
		name string
		fn   core.DelayFunc
	}{
		{"zerodelay", nil},
		{"netsim", netsimDelay},
	}
	for _, d := range delays {
		for _, p := range paths {
			b.Run(d.name+"/"+p.name, func(b *testing.B) {
				eventq.ForceHeapQueue = p.forceHeap
				defer func() { eventq.ForceHeapQueue = false }()
				cascade := &core.Cascade{
					Graph:   p.graph,
					Content: core.ContentFunc(net.HasContent),
					Forward: p.forward,
					Delay:   d.fn,
				}
				scratch := core.NewScratch(n)
				cascade.RunScratch(&core.Query{Key: 2, Origin: 0, TTL: 4}, scratch)
				b.ResetTimer()
				hits := 0
				for i := 0; i < b.N; i++ {
					origin := topology.NodeID((i * 13) % n)
					key := core.Key((int(origin) + 2) % n)
					out := cascade.RunScratch(&core.Query{
						ID: core.QueryID(i), Key: key, Origin: origin, TTL: 4,
					}, scratch)
					hits += len(out.Results)
				}
				if hits != b.N {
					b.Fatalf("%d hits over %d queries, want one each", hits, b.N)
				}
			})
		}
	}
}

// BenchmarkCascade100k drives the scale family's largest cell: 2,000
// queries over a 100k-node client/provider/bystander network through
// the facade's pooled engine. The custom metrics isolate the query
// loop (the network build is inside the op, so allocs/op includes
// setup; allocs-per-query is the hot-path number).
func BenchmarkCascade100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultScaleConfig(100_000, 2_000, uint64(i+1))
		sum, sample, err := experiments.RunScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sample.Events)/sample.WallSeconds, "events/sec")
		b.ReportMetric(float64(sample.Allocs)/float64(sample.Queries), "allocs/query")
		b.ReportMetric(sum.MsgsPerQuery, "msgs/query")
		b.ReportMetric(sum.HitRate, "hit-rate")
	}
}

// BenchmarkCascade1M is BenchmarkCascade100k at the scale family's new
// ceiling: a 1,000,000-node network, 2,000 queries per op. The network
// build and CSR freeze dominate ns/op; events/sec isolates the query
// loop.
func BenchmarkCascade1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultScaleConfig(1_000_000, 2_000, uint64(i+1))
		sum, sample, err := experiments.RunScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sample.Events)/sample.WallSeconds, "events/sec")
		b.ReportMetric(float64(sample.Allocs)/float64(sample.Queries), "allocs/query")
		b.ReportMetric(sum.MsgsPerQuery, "msgs/query")
		b.ReportMetric(sum.HitRate, "hit-rate")
	}
}

// BenchmarkRunnerWorkers shards the Figure 3(a) cell set (eight
// independent simulations) across worker pools of increasing size —
// the scaling curve of the experiment-orchestration layer itself.
func BenchmarkRunnerWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells := experiments.Fig3aCells("fig3a", experiments.CI, uint64(i+1))
				results, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if err := runner.FirstError(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDaemonREST measures queries/sec through the dsearchd REST
// path: an in-process 50-node chan-transport daemon (the CI-scale
// deployment) queried through pkg/searchclient, every query an
// existence probe (MaxHits 1). Relative to the in-process saturation
// benchmarks this adds HTTP round-trips, JSON codecs and the live
// actor fabric — the serving stack a deployment actually pays.
//
// "single" is the classic plane (the pr8 point of BENCH_history.json):
// a fixed 2,000-query slab fanned out as 2,000 POST /v1/query over 64
// client goroutines per op. "batch" is the pr10 headline: one POST
// /v1/query/batch carrying a 10,000-query slab drained by the daemon's
// resident batch workers — same fabric, ~1/10,000th the HTTP and
// admission overhead. cmd/perfcheck gates both entries' allocs/op and
// queries/sec against BENCH_baseline.json in CI.
func BenchmarkDaemonREST(b *testing.B) {
	const (
		singleSlab    = 2_000
		singleWorkers = 64
		batchSlab     = 16_384
	)
	srv, err := daemon.New(daemon.Config{
		Nodes: 50, Degree: 3, TTL: 3, Keys: 200, Replicas: 3, Seed: 42,
		QueryWindowMillis: 100, BatchWorkers: 512,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Drain(context.Background())
	w := daemon.BuildWorld(42, 50, 3, 200, 3)
	ctx := context.Background()

	b.Run("single", func(b *testing.B) {
		plan := w.QueryPlan(singleSlab)
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = singleWorkers
		client := searchclient.New(srv.Addr(), searchclient.WithHTTPClient(
			&http.Client{Timeout: 30 * time.Second, Transport: tr}))

		run := func() (hits int64) {
			var count atomic.Int64
			var wg sync.WaitGroup
			sem := make(chan struct{}, singleWorkers)
			for _, q := range plan {
				wg.Add(1)
				sem <- struct{}{}
				go func(q daemon.QuerySpec) {
					defer wg.Done()
					defer func() { <-sem }()
					origin := int(q.Origin)
					resp, err := client.Query(ctx, searchclient.QueryRequest{
						Key: uint64(q.Key), Origin: &origin, MaxHits: 1,
					})
					if err == nil && resp.Found() {
						count.Add(1)
					}
				}(q)
			}
			wg.Wait()
			return count.Load()
		}
		run() // warm connections and actor fabric outside the timed region
		b.ResetTimer()
		var hits int64
		for i := 0; i < b.N; i++ {
			hits += run()
		}
		b.StopTimer()
		if hits == 0 {
			b.Fatal("no hits through the REST path")
		}
		b.ReportMetric(float64(b.N*singleSlab)/b.Elapsed().Seconds(), "queries/sec")
		b.ReportMetric(float64(hits)/float64(b.N*singleSlab), "hit-rate")
	})

	b.Run("batch", func(b *testing.B) {
		plan := w.QueryPlan(batchSlab)
		client := searchclient.New(srv.Addr())
		origins := make([]int, len(plan))
		reqs := make([]searchclient.QueryRequest, len(plan))
		for i, q := range plan {
			origins[i] = int(q.Origin)
			reqs[i] = searchclient.QueryRequest{
				Key: uint64(q.Key), Origin: &origins[i], MaxHits: 1,
			}
		}

		run := func() int64 {
			resp, err := client.QueryBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			return int64(resp.Hits())
		}
		run() // warm the connection and actor fabric
		b.ResetTimer()
		var hits int64
		for i := 0; i < b.N; i++ {
			hits += run()
		}
		b.StopTimer()
		if hits == 0 {
			b.Fatal("no hits through the batch path")
		}
		b.ReportMetric(float64(b.N*batchSlab)/b.Elapsed().Seconds(), "queries/sec")
		b.ReportMetric(float64(hits)/float64(b.N*batchSlab), "hit-rate")
	})
}

// BenchmarkWebCache runs the Squid-like case study.
func BenchmarkWebCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.WebCache(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].NeighborHitRatio, "static-nbr-ratio")
		b.ReportMetric(rows[1].NeighborHitRatio, "dynamic-nbr-ratio")
		b.ReportMetric(rows[1].MeanLatencyMs, "dynamic-latency-ms")
	}
}

// BenchmarkPeerOlap runs the chunk-cache case study.
func BenchmarkPeerOlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.PeerOlap(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].MeanQueryCostS, "static-cost-s")
		b.ReportMetric(rows[1].MeanQueryCostS, "dynamic-cost-s")
		b.ReportMetric(rows[1].PeerHitRatio, "dynamic-peer-ratio")
	}
}
