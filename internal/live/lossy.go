package live

import (
	"sync"

	"repro/internal/topology"
)

// LossyTransport wraps another Transport and drops a configurable
// fraction of messages — failure injection for the protocol's loss
// tolerance. Gnutella-era networks lose queries and replies routinely;
// the framework's correctness properties (no duplicate processing, no
// neighbor-list corruption) must survive arbitrary loss, and its
// liveness degrades gracefully (fewer results, never a wedged node).
type LossyTransport struct {
	inner Transport
	// DropEveryN drops every Nth message (deterministic, so tests are
	// reproducible without sharing an RNG across goroutines).
	dropEveryN uint64

	mu      sync.Mutex
	counter uint64
	dropped uint64
}

// NewLossyTransport wraps inner, dropping every nth message (n >= 2;
// n = 0 disables dropping).
func NewLossyTransport(inner Transport, n uint64) *LossyTransport {
	if n == 1 {
		panic("live: LossyTransport dropping every message")
	}
	return &LossyTransport{inner: inner, dropEveryN: n}
}

// Send implements Transport.
func (t *LossyTransport) Send(to topology.NodeID, env Envelope) error {
	t.mu.Lock()
	t.counter++
	drop := t.dropEveryN > 0 && t.counter%t.dropEveryN == 0
	if drop {
		t.dropped++
	}
	t.mu.Unlock()
	if drop {
		return nil // silently lost, as on a real lossy link
	}
	return t.inner.Send(to, env)
}

// Dropped returns how many messages were lost so far.
func (t *LossyTransport) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
