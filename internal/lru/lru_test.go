package lru

import (
	"testing"
	"testing/quick"

	"repro/internal/digest"
)

func TestLRUBasics(t *testing.T) {
	c := New(2)
	if c.Len() != 0 || c.Cap() != 2 {
		t.Fatal("new LRU wrong")
	}
	if !c.Put(1) || !c.Put(2) {
		t.Fatal("fresh puts must report insertion")
	}
	if c.Put(1) {
		t.Fatal("re-put must not report insertion")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("membership wrong")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := New(2)
	c.Put(1)
	c.Put(2)
	c.Put(3) // evicts 1
	if c.Contains(1) {
		t.Fatal("LRU entry not evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("wrong entry evicted")
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := New(2)
	c.Put(1)
	c.Put(2)
	if !c.Get(1) { // 1 becomes MRU
		t.Fatal("Get missed present key")
	}
	c.Put(3) // evicts 2, not 1
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("Get did not refresh recency")
	}
}

func TestLRUPutRefreshesRecency(t *testing.T) {
	c := New(2)
	c.Put(1)
	c.Put(2)
	c.Put(1) // refresh
	c.Put(3) // evicts 2
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("Put did not refresh recency")
	}
}

func TestLRUContainsDoesNotRefresh(t *testing.T) {
	c := New(2)
	c.Put(1)
	c.Put(2)
	c.Contains(1) // must NOT refresh
	c.Put(3)      // evicts 1
	if c.Contains(1) {
		t.Fatal("Contains refreshed recency")
	}
}

func TestLRUGetMiss(t *testing.T) {
	if New(1).Get(42) {
		t.Fatal("Get on empty hit")
	}
}

func TestLRUEvictionObserver(t *testing.T) {
	c := New(1)
	var evicted []digest.Key
	c.OnEvict(func(k digest.Key) { evicted = append(evicted, k) })
	c.Put(1)
	c.Put(2)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evictions: %v", evicted)
	}
}

func TestLRUKeysOrder(t *testing.T) {
	c := New(3)
	c.Put(1)
	c.Put(2)
	c.Put(3)
	c.Get(1)
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 2 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestLRUSingleCapacity(t *testing.T) {
	c := New(1)
	c.Put(1)
	c.Put(2)
	if c.Contains(1) || !c.Contains(2) || c.Len() != 1 {
		t.Fatal("capacity-1 LRU wrong")
	}
}

func TestLRUZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New(0)
}

// Property: Len never exceeds capacity and a just-inserted key is
// always present.
func TestQuickLRUInvariants(t *testing.T) {
	f := func(keys []uint16, capacity uint8) bool {
		capN := int(capacity)%16 + 1
		c := New(capN)
		for _, k := range keys {
			c.Put(digest.Key(k))
			if c.Len() > capN {
				return false
			}
			if !c.Contains(digest.Key(k)) {
				return false
			}
		}
		return len(c.Keys()) == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the eviction order of distinct inserts without Gets is FIFO.
func TestQuickLRUFIFOWhenUntouched(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n)%20 + 2
		c := New(size)
		for i := 0; i < size*2; i++ {
			c.Put(digest.Key(i))
		}
		// The survivors must be exactly the last `size` keys.
		for i := size; i < size*2; i++ {
			if !c.Contains(digest.Key(i)) {
				return false
			}
		}
		for i := 0; i < size; i++ {
			if c.Contains(digest.Key(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := New(1024)
	for i := 0; i < b.N; i++ {
		c.Put(digest.Key(i % 4096))
		c.Get(digest.Key((i * 7) % 4096))
	}
}
