package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

// TestGoldenCellsByteIdentity pins the deterministic artifact of every
// pre-driver experiment family: testdata/golden_cells_ci_s1.json is
// the cells.json of `repro -exp all -scale ci -seed 1` captured before
// the three applications were rewired onto internal/driver. The
// session-layer refactor (and any future one) must keep these bytes
// exactly — the driver owns stream splitting and event scheduling now,
// and any reordering of draws or same-time events shows up here
// immediately.
//
// The skew, churnserve and faults families postdate the capture, so
// they are excluded; their determinism is covered by
// TestSkewWorkerCountInvariance, TestChurnServeModesAgree and
// TestFaultsWorkerCountInvariance.
func TestGoldenCellsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full CI-scale registry run")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_cells_ci_s1.json"))
	if err != nil {
		t.Fatal(err)
	}

	var cells []runner.Cell
	for _, d := range Registry(CI, 1) {
		if d.Name == "skew" || d.Name == "churnserve" || d.Name == "faults" {
			continue
		}
		cells = append(cells, d.Cells...)
	}
	rs, err := runner.Run(context.Background(), cells, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.FirstError(rs); err != nil {
		t.Fatal(err)
	}

	// Marshal exactly as runner.WriteArtifacts does for cells.json.
	got, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if string(got) == string(want) {
		return
	}
	// Byte mismatch: find the first diverging cell for a usable error.
	var wantCells []struct {
		Experiment string          `json:"experiment"`
		Cell       string          `json:"cell"`
		Value      json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(want, &wantCells); err != nil {
		t.Fatalf("artifact diverged from golden and golden is unreadable: %v", err)
	}
	var gotCells []struct {
		Experiment string          `json:"experiment"`
		Cell       string          `json:"cell"`
		Value      json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(got, &gotCells); err != nil {
		t.Fatal(err)
	}
	if len(gotCells) != len(wantCells) {
		t.Fatalf("cell count diverged: got %d, golden %d", len(gotCells), len(wantCells))
	}
	for i := range wantCells {
		if gotCells[i].Experiment != wantCells[i].Experiment || gotCells[i].Cell != wantCells[i].Cell {
			t.Fatalf("cell %d identity diverged: got %s/%s, golden %s/%s",
				i, gotCells[i].Experiment, gotCells[i].Cell, wantCells[i].Experiment, wantCells[i].Cell)
		}
		if string(gotCells[i].Value) != string(wantCells[i].Value) {
			t.Fatalf("cell %s/%s value diverged from the pre-driver golden:\ngot:    %.200s\ngolden: %.200s",
				gotCells[i].Experiment, gotCells[i].Cell, gotCells[i].Value, wantCells[i].Value)
		}
	}
	t.Fatal("artifact bytes diverged from golden outside cell values (ordering or envelope)")
}
