package experiments

import (
	"strings"
	"testing"

	"repro/internal/runner"
)

func TestRegistryWellFormed(t *testing.T) {
	defs := Registry(CI, 1)
	if len(defs) != 17 {
		t.Fatalf("registry has %d definitions", len(defs))
	}
	seenDef := map[string]bool{}
	for _, d := range defs {
		if seenDef[d.Name] {
			t.Fatalf("duplicate definition %q", d.Name)
		}
		seenDef[d.Name] = true
		if len(d.Cells) == 0 {
			t.Fatalf("definition %q has no cells", d.Name)
		}
		if d.Tables == nil {
			t.Fatalf("definition %q has no renderer", d.Name)
		}
		if d.About == "" {
			t.Fatalf("definition %q has no -list description", d.Name)
		}
		seenCell := map[string]bool{}
		for _, c := range d.Cells {
			if c.Experiment != d.Name {
				t.Fatalf("definition %q owns cell tagged %q", d.Name, c.Experiment)
			}
			if seenCell[c.Name] {
				t.Fatalf("definition %q has duplicate cell %q", d.Name, c.Name)
			}
			seenCell[c.Name] = true
			if c.Run == nil {
				t.Fatalf("cell %s/%s has no body", d.Name, c.Name)
			}
			// Cells of paired-comparison experiments (the policies
			// sweep included) share the experiment seed so variant
			// comparisons run identical workload streams; only the
			// scale and skew families (independent cells, nothing
			// paired) derive one stable seed per cell from its labels.
			// Churnserve is paired the other way around: both modes of
			// one size share the seed derived from the size label, so
			// their worlds — and deterministic summaries — agree.
			// Either way the seed is fixed at construction time, never
			// at run time.
			want := uint64(1)
			switch d.Name {
			case "scale", "skew", "faults":
				want = runner.DeriveSeed(1, d.Name, c.Name)
			case "churnserve":
				_, size, ok := strings.Cut(c.Name, "-")
				if !ok {
					t.Fatalf("churnserve cell %q not mode-n<size> shaped", c.Name)
				}
				want = runner.DeriveSeed(1, d.Name, size)
			}
			if c.Seed != want {
				t.Fatalf("cell %s/%s has seed %d, want %d", d.Name, c.Name, c.Seed, want)
			}
		}
	}
}

func TestFindResolvesAliases(t *testing.T) {
	for _, name := range []string{"fig1a", "fig1b", "fig2a", "fig2b"} {
		d, err := Find(name, CI, 1)
		if err != nil {
			t.Fatalf("Find(%q): %v", name, err)
		}
		if d.Name != name || len(d.Cells) != 2 {
			t.Fatalf("Find(%q) = %q with %d cells", name, d.Name, len(d.Cells))
		}
	}
	if _, err := Find("fig1", CI, 1); err != nil {
		t.Fatalf("Find(fig1): %v", err)
	}
	if _, err := Find("bogus", CI, 1); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestAssembleRejectsWrongShape(t *testing.T) {
	d, err := Find("fig3a", CI, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tables(nil); err == nil {
		t.Fatal("empty result slice accepted")
	}
}
