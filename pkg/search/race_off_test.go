//go:build !race

package search_test

// raceEnabled reports that the race detector instruments this build.
const raceEnabled = false
