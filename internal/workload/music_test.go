package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// smallConfig is a fast, valid configuration for unit tests.
func smallConfig() MusicConfig {
	return MusicConfig{
		Songs:             5000,
		Categories:        50,
		PopularityTheta:   0.9,
		UserCategoryTheta: 0.9,
		Users:             200,
		LibraryMean:       40,
		LibraryStd:        10,
		FavoriteFraction:  0.5,
		OtherCategories:   5,
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultMusicConfig()
	if c.Songs != 200000 || c.Categories != 50 || c.Users != 2000 {
		t.Fatalf("default config drifted: %+v", c)
	}
	if c.PopularityTheta != 0.9 || c.UserCategoryTheta != 0.9 {
		t.Fatalf("zipf parameters drifted: %+v", c)
	}
	if c.LibraryMean != 200 || c.LibraryStd != 50 {
		t.Fatalf("library parameters drifted: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []MusicConfig{
		{},
		{Songs: 100, Categories: 7, Users: 10, LibraryMean: 10, OtherCategories: 2}, // not divisible
		func() MusicConfig { c := smallConfig(); c.OtherCategories = 50; return c }(),
		func() MusicConfig { c := smallConfig(); c.LibraryMean = 0; return c }(),
		func() MusicConfig { c := smallConfig(); c.FavoriteFraction = 1.5; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
}

func TestScaled(t *testing.T) {
	c := DefaultMusicConfig().Scaled(10)
	if c.Users != 200 || c.Songs != 20000 {
		t.Fatalf("scaled config: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := DefaultMusicConfig().Scaled(1); got.Users != 2000 {
		t.Fatal("Scaled(1) must be identity")
	}
}

func TestCatalogSongMapping(t *testing.T) {
	cat := NewCatalog(smallConfig())
	if cat.SongsPerCategory() != 100 {
		t.Fatalf("songs per category = %d", cat.SongsPerCategory())
	}
	s := cat.Song(3, 1)
	if cat.Category(s) != 3 {
		t.Fatalf("category round trip failed: song %d -> cat %d", s, cat.Category(s))
	}
	if cat.Song(0, 1) != 0 {
		t.Fatal("first song must be ID 0")
	}
	if cat.Song(49, 100) != 4999 {
		t.Fatal("last song must be ID 4999")
	}
}

func TestCatalogSongPanicsOutOfRange(t *testing.T) {
	cat := NewCatalog(smallConfig())
	for _, bad := range [][2]int{{-1, 1}, {50, 1}, {0, 0}, {0, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Song(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			cat.Song(bad[0], bad[1])
		}()
	}
}

func TestSampleSongRespectsCategory(t *testing.T) {
	cat := NewCatalog(smallConfig())
	s := rng.New(1)
	for i := 0; i < 1000; i++ {
		song := cat.SampleSong(s, 7)
		if cat.Category(song) != 7 {
			t.Fatalf("sampled song %d in category %d", song, cat.Category(song))
		}
	}
}

func TestSampleSongIsSkewed(t *testing.T) {
	cat := NewCatalog(smallConfig())
	s := rng.New(2)
	counts := map[SongID]int{}
	for i := 0; i < 50000; i++ {
		counts[cat.SampleSong(s, 0)]++
	}
	if counts[cat.Song(0, 1)] <= counts[cat.Song(0, 100)]*5 {
		t.Fatalf("rank 1 (%d) not much more popular than rank 100 (%d)",
			counts[cat.Song(0, 1)], counts[cat.Song(0, 100)])
	}
}

func TestGenerateUsersLibraryShape(t *testing.T) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(3))
	if len(users) != cfg.Users {
		t.Fatalf("users = %d", len(users))
	}
	var sizes float64
	for _, u := range users {
		if u.LibrarySize() == 0 {
			t.Fatal("user with empty library")
		}
		sizes += float64(u.LibrarySize())
		if len(u.Others) != cfg.OtherCategories {
			t.Fatalf("user has %d other categories", len(u.Others))
		}
		for _, o := range u.Others {
			if o == u.Favorite {
				t.Fatal("favorite category among others")
			}
		}
	}
	mean := sizes / float64(len(users))
	if math.Abs(mean-cfg.LibraryMean) > cfg.LibraryStd {
		t.Fatalf("mean library size %v, want ~%v", mean, cfg.LibraryMean)
	}
}

func TestGenerateUsersFavoriteShare(t *testing.T) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(4))
	// Across users, about half of each library must come from the
	// favorite category.
	var favFrac float64
	for _, u := range users {
		fav := 0
		for s := range u.Library {
			if cat.Category(s) == u.Favorite {
				fav++
			}
		}
		favFrac += float64(fav) / float64(u.LibrarySize())
	}
	favFrac /= float64(len(users))
	if math.Abs(favFrac-0.5) > 0.1 {
		t.Fatalf("favorite share %v, want ~0.5", favFrac)
	}
}

func TestGenerateUsersFavoriteAssignmentSkewed(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 2000
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(5))
	counts := make([]int, cfg.Categories)
	for _, u := range users {
		counts[u.Favorite]++
	}
	// Zipf(50, 0.9): category 0 must dominate category 49.
	if counts[0] <= counts[49]*3 {
		t.Fatalf("favorite assignment not skewed: c0=%d c49=%d", counts[0], counts[49])
	}
}

func TestGenerateUsersDeterministic(t *testing.T) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	a := GenerateUsers(cat, rng.New(7))
	b := GenerateUsers(cat, rng.New(7))
	for i := range a {
		if a[i].Favorite != b[i].Favorite || a[i].LibrarySize() != b[i].LibrarySize() {
			t.Fatalf("generation not deterministic at user %d", i)
		}
		for s := range a[i].Library {
			if !b[i].Has(s) {
				t.Fatalf("library mismatch at user %d", i)
			}
		}
	}
}

func TestTotalSongsApproximation(t *testing.T) {
	// Paper: 2000 users x mean 200 songs ≈ 400k songs total. Scaled
	// here: 200 users x mean 40 = 8000.
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(8))
	total := TotalSongs(users)
	want := float64(cfg.Users) * cfg.LibraryMean
	if math.Abs(float64(total)-want) > want*0.15 {
		t.Fatalf("total songs %d, want ~%v", total, want)
	}
}

func TestSampleQueryCategories(t *testing.T) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(9))
	s := rng.New(10)
	u := users[0]
	favorite, other := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		q := SampleQuery(cat, s, u)
		c := cat.Category(q)
		if c == u.Favorite {
			favorite++
			continue
		}
		found := false
		for _, o := range u.Others {
			if c == o {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query category %d not in user profile", c)
		}
		other++
	}
	frac := float64(favorite) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("favorite query fraction %v, want ~0.5", frac)
	}
}

func TestSampleQueryAvoidsOwnedSongs(t *testing.T) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	users := GenerateUsers(cat, rng.New(11))
	s := rng.New(12)
	owned := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if users[1].Has(SampleQuery(cat, s, users[1])) {
			owned++
		}
	}
	// Bounded resampling tolerates rare fallthroughs only.
	if owned > n/50 {
		t.Fatalf("%d/%d queries for owned songs", owned, n)
	}
}

func TestQuickLibraryWithinCatalog(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := smallConfig()
		cfg.Users = 20
		cat := NewCatalog(cfg)
		users := GenerateUsers(cat, rng.New(seed))
		for _, u := range users {
			for s := range u.Library {
				if int(s) >= cfg.Songs {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateUsers(b *testing.B) {
	cfg := smallConfig()
	cat := NewCatalog(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GenerateUsers(cat, rng.New(uint64(i)))
	}
}
