package eventq

import "testing"

// fuzzRef is the executable specification of the (time, seq) total
// order: a flat slice popped by linear minimum scan. O(n) per pop is
// irrelevant at fuzz sizes and leaves no room for the bugs a clever
// structure could share with the implementation under test.
type fuzzRef struct {
	entries []monoEntry[uint32]
	seq     uint64
}

func (r *fuzzRef) push(t float64, v uint32) {
	r.entries = append(r.entries, monoEntry[uint32]{time: t, seq: r.seq, v: v})
	r.seq++
}

func (r *fuzzRef) pop() (float64, uint32, bool) {
	if len(r.entries) == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < len(r.entries); i++ {
		if entryLess(r.entries[i], r.entries[best]) {
			best = i
		}
	}
	e := r.entries[best]
	r.entries = append(r.entries[:best], r.entries[best+1:]...)
	return e.time, e.v, true
}

func (r *fuzzRef) reset() { r.entries = r.entries[:0]; r.seq = 0 }

// delayScales maps the two scale bits of an op byte to a delay unit.
// The spread — sub-millisecond to 1e7 — is what drives the queue
// through every representation: tight scales stay in the sorted run,
// mixed scales spill to buckets, and the huge one forces re-bucketing
// and the heap fallback.
var delayScales = [4]float64{0.001, 0.13, 37, 1e7}

// FuzzMonotoneOrder feeds one arbitrary (but contract-respecting)
// push/pop/reset sequence to three queues at once — a Monotone on its
// adaptive run/buckets path, a Monotone pinned to its binary-heap
// fallback (ForceHeapQueue), and the naive reference — and requires all
// three to pop identical (time, value) sequences, mid-stream and on the
// final drain. This is the fuzz extension of the differential suites:
// whatever representation an arbitrary delay distribution lands the
// queue in, the exact (time, seq) total order must survive.
//
// Input grammar: two bytes per operation. Low two bits of the first
// byte select the op (0/1 push, 2 reset, 3 pop); bits 2-3 select the
// delay scale; the second byte is the delay magnitude. Pushes happen at
// the monotone floor (the last popped time) plus the delay, so every
// generated sequence respects the queue's monotonicity contract.
func FuzzMonotoneOrder(f *testing.F) {
	f.Add([]byte{})
	// Zero delays: pure FIFO appends, run mode throughout.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x03, 0x00})
	// Small mixed delays with interleaved pops: binary-insert run path.
	f.Add([]byte{0x00, 0x05, 0x04, 0x01, 0x00, 0x09, 0x03, 0x00, 0x04, 0x02, 0x03, 0x00})
	// A burst big enough to spill to buckets, then a huge-scale push
	// (far beyond the bucket window), then a full drain.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 80; i++ {
			b = append(b, 0x04, byte(97*i%251))
		}
		b = append(b, 0x0c, 0xff)
		for i := 0; i < 81; i++ {
			b = append(b, 0x03, 0x00)
		}
		return b
	}())
	// Reset in the middle of a mixed run, then fresh traffic.
	f.Add([]byte{0x04, 0x40, 0x04, 0x01, 0x04, 0x80, 0x02, 0x00, 0x04, 0x10, 0x03, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("bounded: the reference pop is quadratic")
		}
		defer func(prev bool) { ForceHeapQueue = prev }(ForceHeapQueue)
		ForceHeapQueue = true
		heapQ := NewMonotone[uint32](0)
		ForceHeapQueue = false
		adaptive := NewMonotone[uint32](0)
		ref := &fuzzRef{}

		now := 0.0 // the monotone floor: time of the last pop
		var nextVal uint32

		popCheck := func(where string) {
			at, av, aok := adaptive.Pop()
			ht, hv, hok := heapQ.Pop()
			rt, rv, rok := ref.pop()
			if aok != rok || hok != rok {
				t.Fatalf("%s: ok diverged: adaptive=%v heap=%v ref=%v", where, aok, hok, rok)
			}
			if !rok {
				return
			}
			if at != rt || av != rv {
				t.Fatalf("%s: adaptive (t=%v v=%d, mode=%s) != ref (t=%v v=%d)",
					where, at, av, adaptive.Mode(), rt, rv)
			}
			if ht != rt || hv != rv {
				t.Fatalf("%s: heap (t=%v v=%d) != ref (t=%v v=%d)", where, ht, hv, rt, rv)
			}
			now = rt
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, mag := data[i], data[i+1]
			switch op & 0x3 {
			case 3:
				popCheck("mid-stream")
			case 2:
				adaptive.Reset()
				heapQ.Reset()
				ref.reset()
				now = 0
			default:
				d := float64(mag) * delayScales[(op>>2)&0x3]
				adaptive.Push(now+d, nextVal)
				heapQ.Push(now+d, nextVal)
				ref.push(now+d, nextVal)
				nextVal++
			}
		}

		if adaptive.Len() != len(ref.entries) || heapQ.Len() != len(ref.entries) {
			t.Fatalf("pending diverged: adaptive=%d heap=%d ref=%d",
				adaptive.Len(), heapQ.Len(), len(ref.entries))
		}
		for len(ref.entries) > 0 {
			popCheck("drain")
		}
		popCheck("empty")
	})
}
