// Package topology implements the neighbor-relation layer of Section
// 3.1 of the paper: per-repository outgoing and incoming neighbor
// lists, capacity limits, the three relation regimes (all-to-all, pure
// asymmetric, symmetric), and the network-consistency invariant
//
//	j ∈ out(i)  ⇒  i ∈ in(j)
//
// which the paper requires at all times in the symmetric regime and
// gets for free in the pure asymmetric regime.
//
// The package stores the *global* view used by the simulator; the
// distributed runtime in internal/live maintains the same lists
// per-process using the same types.
package topology

import "fmt"

// NodeID identifies a repository. IDs are dense, 0-based indices so
// simulations can use slices instead of maps on the hot path.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Relation is the neighbor-relation regime of Section 3.1.
type Relation uint8

const (
	// AllToAll connects every node to every other node (single
	// multicast group; only feasible for small N).
	AllToAll Relation = iota
	// PureAsymmetric caps the outgoing list but leaves the incoming
	// list unbounded (capacity N); the network is always consistent and
	// every node reconfigures unilaterally (Algo 3).
	PureAsymmetric
	// Symmetric forces out(i) == in(i); changes require the
	// invitation/eviction agreement of Algo 4.
	Symmetric
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case AllToAll:
		return "all-to-all"
	case PureAsymmetric:
		return "pure-asymmetric"
	case Symmetric:
		return "symmetric"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// NeighborList is a small ordered set of node IDs with a capacity.
// Order is maintained for determinism (iteration order == insertion
// order), and membership tests are O(len) — lists hold a handful of
// entries (the paper uses 4), so linear scans beat map overhead.
//
// The zero value is an unbounded empty list; Network embeds lists by
// value so building an n-node network costs one slice allocation, not
// 3n. Always use NeighborList through a pointer (methods have pointer
// receivers); copying a list aliases its backing array.
type NeighborList struct {
	ids []NodeID
	cap int
}

// NewNeighborList returns an empty list with the given capacity.
// capacity <= 0 means unbounded.
func NewNeighborList(capacity int) *NeighborList {
	return &NeighborList{cap: capacity}
}

// Cap returns the capacity (0 = unbounded).
func (l *NeighborList) Cap() int { return l.cap }

// Len returns the number of members.
func (l *NeighborList) Len() int { return len(l.ids) }

// Full reports whether the list is at capacity.
func (l *NeighborList) Full() bool { return l.cap > 0 && len(l.ids) >= l.cap }

// Contains reports membership.
func (l *NeighborList) Contains(id NodeID) bool {
	for _, v := range l.ids {
		if v == id {
			return true
		}
	}
	return false
}

// Add appends id if absent and under capacity. It reports whether the
// list changed.
func (l *NeighborList) Add(id NodeID) bool {
	if l.Full() || l.Contains(id) {
		return false
	}
	if l.ids == nil && l.cap > 0 {
		// First member of a capped list: size the backing array exactly
		// once — capped lists (the simulation case) never reallocate.
		l.ids = make([]NodeID, 0, l.cap)
	}
	l.ids = append(l.ids, id)
	return true
}

// Remove deletes id preserving order; it reports whether id was
// present.
func (l *NeighborList) Remove(id NodeID) bool {
	for i, v := range l.ids {
		if v == id {
			l.ids = append(l.ids[:i], l.ids[i+1:]...)
			return true
		}
	}
	return false
}

// IDs returns the members in insertion order. The returned slice is the
// backing array; callers must not mutate it. Use Snapshot for a copy.
func (l *NeighborList) IDs() []NodeID { return l.ids }

// Snapshot returns a copy of the members.
func (l *NeighborList) Snapshot() []NodeID {
	out := make([]NodeID, len(l.ids))
	copy(out, l.ids)
	return out
}

// Clear removes all members.
func (l *NeighborList) Clear() { l.ids = l.ids[:0] }

// Node is one repository's neighborhood state: the outgoing list L_i
// (where its own requests go) and the incoming list I_i (who may send
// to it). Nodes are stored by value inside Network.nodes — always
// access them through Network.Node (a stable pointer into that slice),
// never copy a Node.
type Node struct {
	ID  NodeID
	Out NeighborList
	In  NeighborList
}

// Network is the global neighbor graph for n nodes, stored as one flat
// node slice indexed by NodeID — building a 100k-node network is a
// single allocation plus the lazily-created neighbor backing arrays.
type Network struct {
	relation Relation
	nodes    []Node
}

// NewNetwork builds a network of n isolated nodes under the given
// relation regime. outCap bounds every outgoing list; inCap bounds
// incoming lists and is forced to 0 (unbounded) for PureAsymmetric and
// to outCap for Symmetric, per Section 3.1.
func NewNetwork(relation Relation, n, outCap, inCap int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("topology: NewNetwork with n=%d", n))
	}
	switch relation {
	case PureAsymmetric:
		inCap = 0
	case Symmetric:
		inCap = outCap
	case AllToAll:
		outCap, inCap = 0, 0
	}
	net := &Network{relation: relation, nodes: make([]Node, n)}
	for i := range net.nodes {
		net.nodes[i].ID = NodeID(i)
		net.nodes[i].Out.cap = outCap
		net.nodes[i].In.cap = inCap
	}
	if relation == AllToAll {
		for i := range net.nodes {
			for j := range net.nodes {
				if i != j {
					net.nodes[i].Out.Add(NodeID(j))
					net.nodes[i].In.Add(NodeID(j))
				}
			}
		}
	}
	return net
}

// Relation returns the regime the network was built with.
func (net *Network) Relation() Relation { return net.relation }

// Len returns the number of nodes.
func (net *Network) Len() int { return len(net.nodes) }

// Node returns the state of one node. The pointer stays valid for the
// network's lifetime (the node slice never reallocates).
func (net *Network) Node(id NodeID) *Node {
	return &net.nodes[id]
}

// Out returns node id's outgoing neighbor IDs (shared backing array).
func (net *Network) Out(id NodeID) []NodeID { return net.nodes[id].Out.IDs() }

// In returns node id's incoming neighbor IDs (shared backing array).
func (net *Network) In(id NodeID) []NodeID { return net.nodes[id].In.IDs() }

// Connect makes dst an outgoing neighbor of src, updating dst's
// incoming list to preserve consistency. It reports whether the edge
// was added; it fails when either side is at capacity, the edge exists,
// or src == dst. In the Symmetric regime the reverse edge is added too
// (and the call fails atomically if the reverse edge cannot be added).
func (net *Network) Connect(src, dst NodeID) bool {
	if src == dst {
		return false
	}
	s, d := &net.nodes[src], &net.nodes[dst]
	if s.Out.Contains(dst) || s.Out.Full() || d.In.Full() {
		return false
	}
	if net.relation == Symmetric {
		// Need room for the reverse edge as well.
		if d.Out.Full() || s.In.Full() {
			return false
		}
		s.Out.Add(dst)
		d.In.Add(src)
		d.Out.Add(src)
		s.In.Add(dst)
		return true
	}
	s.Out.Add(dst)
	d.In.Add(src)
	return true
}

// Disconnect removes dst from src's outgoing list (and the reverse
// edge in the Symmetric regime). It reports whether an edge was
// removed.
func (net *Network) Disconnect(src, dst NodeID) bool {
	s, d := &net.nodes[src], &net.nodes[dst]
	if !s.Out.Remove(dst) {
		return false
	}
	d.In.Remove(src)
	if net.relation == Symmetric {
		d.Out.Remove(src)
		s.In.Remove(dst)
	}
	return true
}

// Isolate removes every edge touching id (both directions). Used when a
// node goes off-line.
func (net *Network) Isolate(id NodeID) {
	n := &net.nodes[id]
	for _, out := range n.Out.Snapshot() {
		net.Disconnect(id, out)
	}
	for _, in := range n.In.Snapshot() {
		net.Disconnect(in, id)
	}
}

// Degree returns len(out), len(in) for a node.
func (net *Network) Degree(id NodeID) (out, in int) {
	return net.nodes[id].Out.Len(), net.nodes[id].In.Len()
}

// InconsistentEdge describes a violation of the consistency invariant.
type InconsistentEdge struct {
	Src, Dst NodeID
	// Reverse is true when the violation is a dangling incoming entry
	// (Dst lists Src as incoming but Src does not list Dst as outgoing).
	Reverse bool
}

// String implements fmt.Stringer.
func (e InconsistentEdge) String() string {
	if e.Reverse {
		return fmt.Sprintf("in(%d) contains %d but out(%d) misses %d", e.Dst, e.Src, e.Src, e.Dst)
	}
	return fmt.Sprintf("out(%d) contains %d but in(%d) misses %d", e.Src, e.Dst, e.Dst, e.Src)
}

// AuditConsistency returns every violation of the paper's consistency
// definition, in both directions, plus symmetry violations when the
// regime is Symmetric. An empty slice means the network is consistent.
func (net *Network) AuditConsistency() []InconsistentEdge {
	var bad []InconsistentEdge
	for i := range net.nodes {
		n := &net.nodes[i]
		for _, dst := range n.Out.IDs() {
			if !net.nodes[dst].In.Contains(n.ID) {
				bad = append(bad, InconsistentEdge{Src: n.ID, Dst: dst})
			}
		}
		for _, src := range n.In.IDs() {
			if !net.nodes[src].Out.Contains(n.ID) {
				bad = append(bad, InconsistentEdge{Src: src, Dst: n.ID, Reverse: true})
			}
		}
		if net.relation == Symmetric {
			for _, dst := range n.Out.IDs() {
				if !net.nodes[dst].Out.Contains(n.ID) {
					bad = append(bad, InconsistentEdge{Src: n.ID, Dst: dst})
				}
			}
		}
	}
	return bad
}

// Consistent reports whether the network satisfies the invariant.
func (net *Network) Consistent() bool { return len(net.AuditConsistency()) == 0 }

// EdgeCount returns the total number of directed edges.
func (net *Network) EdgeCount() int {
	n := 0
	for i := range net.nodes {
		n += net.nodes[i].Out.Len()
	}
	return n
}
