package digest

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(Key(i * 7919))
	}
	for i := 0; i < 1000; i++ {
		if !b.Contains(Key(i * 7919)) {
			t.Fatalf("false negative for key %d", i*7919)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(10000, 0.01)
	for i := 0; i < 10000; i++ {
		b.Add(Key(i))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if b.Contains(Key(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %v, want <= ~0.01", rate)
	}
}

func TestBloomEmpty(t *testing.T) {
	b := NewBloom(100, 0.01)
	if b.Contains(42) {
		t.Fatal("empty filter claims membership")
	}
	if b.Count() != 0 {
		t.Fatal("empty filter count != 0")
	}
}

func TestBloomCount(t *testing.T) {
	b := NewBloom(100, 0.01)
	b.Add(1)
	b.Add(2)
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
}

func TestBloomFillRatioGrows(t *testing.T) {
	b := NewBloom(1000, 0.01)
	before := b.FillRatio()
	for i := 0; i < 500; i++ {
		b.Add(Key(i))
	}
	if b.FillRatio() <= before {
		t.Fatal("fill ratio did not grow")
	}
	if b.FillRatio() > 1 {
		t.Fatal("fill ratio above 1")
	}
}

func TestBloomUnion(t *testing.T) {
	a := NewBloom(1000, 0.01)
	b := NewBloom(1000, 0.01)
	a.Add(1)
	b.Add(2)
	a.Union(b)
	if !a.Contains(1) || !a.Contains(2) {
		t.Fatal("union lost keys")
	}
	if a.Count() != 2 {
		t.Fatalf("union count = %d", a.Count())
	}
}

func TestBloomUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible union did not panic")
		}
	}()
	NewBloom(100, 0.01).Union(NewBloom(100000, 0.001))
}

func TestBloomCloneIndependent(t *testing.T) {
	a := NewBloom(100, 0.01)
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) && a.Count() == 2 {
		t.Fatal("clone aliases parent")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("clone lost keys")
	}
}

func TestBloomClear(t *testing.T) {
	b := NewBloom(100, 0.01)
	b.Add(7)
	b.Clear()
	if b.Contains(7) || b.Count() != 0 || b.FillRatio() != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestBloomPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":  func() { NewBloom(0, 0.01) },
		"fp=0": func() { NewBloom(10, 0) },
		"fp=1": func() { NewBloom(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuickBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		b := NewBloom(len(keys), 0.01)
		for _, k := range keys {
			b.Add(Key(k))
		}
		for _, k := range keys {
			if !b.Contains(Key(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalIndexPublishAndQuery(t *testing.T) {
	ix := NewLocalIndex(2, 1000, 0.01)
	d1 := NewBloom(1000, 0.01)
	d1.Add(100)
	d2 := NewBloom(1000, 0.01)
	d2.Add(200)
	ix.Publish(1, d1)
	ix.Publish(2, d2)
	if !ix.MayContain(100) || !ix.MayContain(200) {
		t.Fatal("index lost published keys")
	}
	if ix.Peers() != 2 {
		t.Fatalf("Peers = %d", ix.Peers())
	}
	if ix.Radius() != 2 {
		t.Fatalf("Radius = %d", ix.Radius())
	}
}

func TestLocalIndexHolders(t *testing.T) {
	ix := NewLocalIndex(1, 1000, 0.001)
	for peer := topology.NodeID(1); peer <= 3; peer++ {
		d := NewBloom(1000, 0.001)
		d.Add(Key(peer) * 1000)
		ix.Publish(peer, d)
	}
	holders := ix.Holders(2000)
	if len(holders) != 1 || holders[0] != 2 {
		t.Fatalf("Holders = %v", holders)
	}
}

func TestLocalIndexWithdraw(t *testing.T) {
	ix := NewLocalIndex(1, 1000, 0.01)
	d := NewBloom(1000, 0.01)
	d.Add(77)
	ix.Publish(1, d)
	ix.Withdraw(1)
	if ix.MayContain(77) {
		t.Fatal("withdrawn peer's keys still indexed")
	}
	if ix.Peers() != 0 {
		t.Fatal("peer count wrong after withdraw")
	}
	ix.Withdraw(99) // no-op must not panic
}

func TestLocalIndexRepublishReplaces(t *testing.T) {
	ix := NewLocalIndex(1, 1000, 0.01)
	d1 := NewBloom(1000, 0.01)
	d1.Add(1)
	ix.Publish(5, d1)
	d2 := NewBloom(1000, 0.01)
	d2.Add(2)
	ix.Publish(5, d2)
	if ix.MayContain(1) {
		t.Fatal("republish did not replace old digest")
	}
	if !ix.MayContain(2) {
		t.Fatal("republish lost new digest")
	}
}

func TestLocalIndexPublishClones(t *testing.T) {
	ix := NewLocalIndex(1, 1000, 0.01)
	d := NewBloom(1000, 0.01)
	ix.Publish(1, d)
	d.Add(42) // mutate after publish
	if ix.MayContain(42) {
		t.Fatal("index aliases the published digest")
	}
}

func TestLocalIndexNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative radius did not panic")
		}
	}()
	NewLocalIndex(-1, 100, 0.01)
}

func BenchmarkBloomAdd(b *testing.B) {
	f := NewBloom(100000, 0.01)
	for i := 0; i < b.N; i++ {
		f.Add(Key(i))
	}
}

func BenchmarkBloomContains(b *testing.B) {
	f := NewBloom(100000, 0.01)
	s := rng.New(1)
	for i := 0; i < 100000; i++ {
		f.Add(Key(s.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Contains(Key(i))
	}
}
