package topology

import "testing"

// FuzzFreezeRoundTrip drives Network mutation with an arbitrary op
// stream — connects (including duplicate edges, which Connect must
// dedup), disconnects, and node isolation (the off-line transition) —
// then freezes the result three ways and requires every snapshot to
// reproduce the live adjacency exactly:
//
//   - Freeze into a fresh CSR,
//   - FreezeView over the same adjacency function,
//   - FreezeInto reusing the first snapshot's arrays after a second
//     round of mutation (the steady-state re-freeze path).
//
// Input grammar: one leading byte picks the size and relation regime;
// then three bytes per op (op selector, src, dst).
func FuzzFreezeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	// Small asymmetric net: a few edges, one dup, one disconnect.
	f.Add([]byte{
		0x07,
		0x00, 0x01, 0x02,
		0x00, 0x01, 0x02, // duplicate edge
		0x00, 0x02, 0x03,
		0x06, 0x01, 0x02, // disconnect
	})
	// Symmetric regime with an isolation (off-line node).
	f.Add([]byte{
		0x85,
		0x00, 0x00, 0x01,
		0x00, 0x01, 0x02,
		0x00, 0x02, 0x03,
		0x07, 0x01, 0x00, // isolate node 1
		0x00, 0x03, 0x04,
	})
	// Dense little clique, heavy duplication.
	f.Add(func() []byte {
		b := []byte{0x04}
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				b = append(b, 0x00, byte(i), byte(j))
				b = append(b, 0x00, byte(i), byte(j))
			}
		}
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		header := data[0]
		n := int(header&0x3f) + 1
		relation := PureAsymmetric
		if header&0x80 != 0 {
			relation = Symmetric
		}
		net := NewNetwork(relation, n, 0, 0)

		apply := func(ops []byte) {
			for i := 0; i+2 < len(ops); i += 3 {
				op := ops[i]
				src := NodeID(int(ops[i+1]) % n)
				dst := NodeID(int(ops[i+2]) % n)
				switch op % 8 {
				case 6:
					net.Disconnect(src, dst)
				case 7:
					net.Isolate(src) // the node goes off-line
				default:
					net.Connect(src, dst)
				}
			}
		}

		// check asserts csr is an exact snapshot of net's live adjacency.
		check := func(csr *CSR, label string) {
			if csr.Len() != n {
				t.Fatalf("%s: Len = %d, want %d", label, csr.Len(), n)
			}
			if csr.EdgeCount() != net.EdgeCount() {
				t.Fatalf("%s: EdgeCount = %d, want %d", label, csr.EdgeCount(), net.EdgeCount())
			}
			for id := NodeID(0); int(id) < n; id++ {
				want := net.Out(id)
				got := csr.Out(id)
				if len(got) != len(want) || csr.Degree(id) != len(want) {
					t.Fatalf("%s: node %d degree %d (Degree %d), want %d",
						label, id, len(got), csr.Degree(id), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%s: node %d neighbor %d = %d, want %d (order must be preserved)",
							label, id, k, got[k], want[k])
					}
				}
				if !csr.Online(id) {
					t.Fatalf("%s: snapshotted node %d reported off-line", label, id)
				}
			}
		}

		half := 1 + (len(data)-1)/2
		apply(data[1:half])
		if bad := net.AuditConsistency(); len(bad) != 0 {
			t.Fatalf("network inconsistent after ops: %v", bad)
		}

		csr := net.Freeze()
		check(csr, "Freeze")

		view, err := FreezeView(n, net.Out)
		if err != nil {
			t.Fatalf("FreezeView: %v", err)
		}
		check(view, "FreezeView")

		// Second mutation round, then the zero-alloc re-freeze path.
		apply(data[half:])
		refrozen := net.FreezeInto(csr)
		check(refrozen, "FreezeInto")
	})
}
