package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestLossyTransportDropsDeterministically(t *testing.T) {
	inner := NewChanTransport()
	inner.Register(1)
	lossy := NewLossyTransport(inner, 3)
	for i := 0; i < 9; i++ {
		if err := lossy.Send(1, Envelope{}); err != nil {
			t.Fatal(err)
		}
	}
	if lossy.Dropped() != 3 {
		t.Fatalf("dropped %d of 9, want 3", lossy.Dropped())
	}
}

func TestLossyTransportZeroDisables(t *testing.T) {
	inner := NewChanTransport()
	inner.Register(1)
	lossy := NewLossyTransport(inner, 0)
	for i := 0; i < 10; i++ {
		lossy.Send(1, Envelope{})
	}
	if lossy.Dropped() != 0 {
		t.Fatalf("n=0 dropped %d messages", lossy.Dropped())
	}
}

func TestLossyTransportPanicsOnDropAll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 did not panic")
		}
	}()
	NewLossyTransport(NewChanTransport(), 1)
}

// Failure injection: a cluster running over a transport that loses a
// third of all messages must keep functioning — searches still succeed
// often (redundant paths), nodes never wedge, and repeated searches
// degrade gracefully instead of erroring.
func TestClusterSurvivesMessageLoss(t *testing.T) {
	inner := NewChanTransport()
	lossy := NewLossyTransport(inner, 3)
	const n = 8
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		store := MapStore{}
		store.Add(core.Key(100 + i))
		nodes[i] = NewNode(Config{
			ID:        topology.NodeID(i),
			Neighbors: 4,
			TTL:       4,
			Transport: lossy,
			Store:     store,
			Class:     netsim.Cable,
		})
		inner.Attach(nodes[i])
		nodes[i].Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	// Dense ring + cross links for path redundancy.
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2} {
			a, b := nodes[i], nodes[(i+d)%n]
			a.AddNeighbor(b.ID())
			b.AddNeighbor(a.ID())
		}
	}

	found := 0
	const tries = 20
	for k := 0; k < tries; k++ {
		target := core.Key(100 + (k % n))
		if target == 100 {
			continue // own content, not searched
		}
		if hits := nodes[0].Search(target, 200*time.Millisecond); len(hits) > 0 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no search succeeded under 33% loss")
	}
	if lossy.Dropped() == 0 {
		t.Fatal("loss injection inactive")
	}
	// Every node must still be responsive (actor loop not wedged).
	for _, nd := range nodes {
		_ = nd.Neighbors()
	}
}
