package repro

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Section 4.3) plus one per ablation in DESIGN.md. Each benchmark runs
// the corresponding experiment at CI scale (10x-reduced, same shape)
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. The full-scale (paper-sized)
// series are produced by `go run ./cmd/repro -exp all -scale full`.
//
// Every experiment decomposes into independent cells executed by
// internal/runner's worker pool (the Fig*/ablation entry points below
// route through it); BenchmarkRunnerWorkers measures how one figure's
// cell set scales with the pool size.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// BenchmarkFig1 regenerates Figure 1 (hops = 2): queries satisfied per
// hour (a) and query overhead per hour (b), static vs dynamic.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig1(experiments.CI, uint64(i+1))
		b.ReportMetric(f.StaticHitsTotal, "static-hits")
		b.ReportMetric(f.DynamicHitsTotal, "dynamic-hits")
		b.ReportMetric(f.StaticMsgsTotal, "static-msgs")
		b.ReportMetric(f.DynamicMsgsTotal, "dynamic-msgs")
	}
}

// BenchmarkFig2 regenerates Figure 2 (hops = 4).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2(experiments.CI, uint64(i+1))
		b.ReportMetric(f.StaticHitsTotal, "static-hits")
		b.ReportMetric(f.DynamicHitsTotal, "dynamic-hits")
		b.ReportMetric(f.StaticMsgsTotal, "static-msgs")
		b.ReportMetric(f.DynamicMsgsTotal, "dynamic-msgs")
	}
}

// BenchmarkFig3a regenerates Figure 3(a): mean first-result delay vs
// terminating condition (reported for the deepest setting, TTL = 4).
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3a(experiments.CI, uint64(i+1))
		last := rows[len(rows)-1]
		b.ReportMetric(last.StaticDelayMs, "static-delay-ms")
		b.ReportMetric(last.DynamicDelayMs, "dynamic-delay-ms")
		b.ReportMetric(float64(last.StaticResults), "static-results")
		b.ReportMetric(float64(last.DynamicResults), "dynamic-results")
	}
}

// BenchmarkFig3b regenerates Figure 3(b): total hits vs reconfiguration
// threshold (reported: hits at the optimum and at the boundaries).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3b(experiments.CI, uint64(i+1))
		best := rows[0].DynamicHits
		for _, r := range rows {
			if r.DynamicHits > best {
				best = r.DynamicHits
			}
		}
		b.ReportMetric(rows[0].StaticHits, "static-hits")
		b.ReportMetric(rows[0].DynamicHits, "theta1-hits")
		b.ReportMetric(best, "best-theta-hits")
		b.ReportMetric(rows[len(rows)-1].DynamicHits, "theta16-hits")
	}
}

// BenchmarkDirectedBFT is the [10]-technique composition ablation.
func BenchmarkDirectedBFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DirectedBFT(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "directed-msgs")
		b.ReportMetric(rows[1].Hits, "directed-hits")
		b.ReportMetric(rows[2].Hits, "random2-hits")
	}
}

// BenchmarkIterativeDeepening is the deepening-schedule ablation.
func BenchmarkIterativeDeepening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.IterDeepening(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "deepening-msgs")
		b.ReportMetric(rows[1].MeanFirstResultMs, "deepening-first-ms")
	}
}

// BenchmarkLocalIndices is the [10] technique-(iii) ablation.
func BenchmarkLocalIndices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.LocalIndices(experiments.CI, uint64(i+1))
		b.ReportMetric(float64(rows[0].Messages), "flood-msgs")
		b.ReportMetric(float64(rows[1].Messages), "indexed-msgs")
		b.ReportMetric(rows[0].Hits, "flood-hits")
		b.ReportMetric(rows[1].Hits, "indexed-hits")
	}
}

// BenchmarkAsymmetricUpdate compares Algo 3 vs Algo 4 on the Gnutella
// workload.
func BenchmarkAsymmetricUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AsymmetricUpdate(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].Hits, "static-hits")
		b.ReportMetric(rows[1].Hits, "symmetric-hits")
		b.ReportMetric(rows[2].Hits, "asymmetric-hits")
	}
}

// BenchmarkBenefitFunctions measures benefit-definition sensitivity.
func BenchmarkBenefitFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BenefitFunctions(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].Hits, "BR-hits")
		b.ReportMetric(rows[1].Hits, "hitcount-hits")
		b.ReportMetric(rows[2].Hits, "latency-hits")
	}
}

// BenchmarkDrift measures re-adaptation after a mid-run preference
// change, with and without ledger decay.
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Drift(experiments.CI, uint64(i+1))
		n := len(rows)
		var staticEnd, dynEnd, decayEnd float64
		for _, r := range rows[n-n/4:] {
			staticEnd += r.StaticHits
			dynEnd += r.DynamicHits
			decayEnd += r.DynamicDecayHits
		}
		b.ReportMetric(staticEnd, "static-tail-hits")
		b.ReportMetric(dynEnd, "dynamic-tail-hits")
		b.ReportMetric(decayEnd, "decay-tail-hits")
	}
}

// BenchmarkCascade100k drives the scale family's largest cell: 2,000
// queries over a 100k-node client/provider/bystander network through
// one pooled core.Scratch. The custom metrics isolate the query loop
// (the network build is inside the op, so allocs/op includes setup;
// allocs-per-query is the hot-path number).
func BenchmarkCascade100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultScaleConfig(100_000, 2_000, uint64(i+1))
		sum, sample, err := experiments.RunScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sample.Events)/sample.WallSeconds, "events/sec")
		b.ReportMetric(float64(sample.Allocs)/float64(sample.Queries), "allocs/query")
		b.ReportMetric(sum.MsgsPerQuery, "msgs/query")
		b.ReportMetric(sum.HitRate, "hit-rate")
	}
}

// BenchmarkRunnerWorkers shards the Figure 3(a) cell set (eight
// independent simulations) across worker pools of increasing size —
// the scaling curve of the experiment-orchestration layer itself.
func BenchmarkRunnerWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells := experiments.Fig3aCells("fig3a", experiments.CI, uint64(i+1))
				results, err := runner.Run(context.Background(), cells, runner.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if err := runner.FirstError(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWebCache runs the Squid-like case study.
func BenchmarkWebCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.WebCache(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].NeighborHitRatio, "static-nbr-ratio")
		b.ReportMetric(rows[1].NeighborHitRatio, "dynamic-nbr-ratio")
		b.ReportMetric(rows[1].MeanLatencyMs, "dynamic-latency-ms")
	}
}

// BenchmarkPeerOlap runs the chunk-cache case study.
func BenchmarkPeerOlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.PeerOlap(experiments.CI, uint64(i+1))
		b.ReportMetric(rows[0].MeanQueryCostS, "static-cost-s")
		b.ReportMetric(rows[1].MeanQueryCostS, "dynamic-cost-s")
		b.ReportMetric(rows[1].PeerHitRatio, "dynamic-peer-ratio")
	}
}
