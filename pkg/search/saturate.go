package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ErrSaturatorClosed is returned by Saturator.Run after Close.
var ErrSaturatorClosed = errors.New("search: saturator is closed")

// Saturator is the Engine's machine-saturation serving mode: a fixed
// shard of worker goroutines, each owning one pinned core.Scratch (and
// therefore its own eventq.Monotone frontier queue), pulling batches of
// queries from a shared admission queue and running every cascade
// against the Engine's single shared topology view — one frozen
// *topology.CSR when the Engine was built with WithSnapshot, which is
// the intended deployment: the snapshot is immutable, so N cores read
// it with zero synchronization.
//
// Pinning replaces the sync.Pool handshake of Do/Batch on the hot
// path: a worker's scratch is at its steady-state high-water marks
// after the first few queries and never migrates between workers, so a
// saturated query costs no pool traffic, no growth pauses and no
// cross-core scratch bouncing. Admission is batched (WithAdmitBatch)
// so one channel operation amortizes over a whole chunk of queries.
//
// Determinism: each query's stochastic-policy stream is derived from
// the Engine seed and the query's identifying fields alone (the same
// runner.DeriveSeed derivation Do and Batch use), and scratch reuse is
// invisible to cascade semantics, so Run's results are byte-identical
// to issuing the same queries sequentially through Do — at any worker
// count, whichever worker served which chunk. The race-hammer suite
// (TestSaturationHammerByteIdentical) locks this down under -race.
//
// A Saturator is safe for concurrent use: any number of goroutines may
// call Run at once; their batches interleave on the shared admission
// queue. Close must not be called concurrently with itself (concurrent
// Run calls are fine and fail with ErrSaturatorClosed once closed).
type Saturator struct {
	e       *Engine
	workers int
	batch   int
	queue   chan satBatch

	mu     sync.RWMutex // guards closed vs in-flight queue sends
	closed bool
	done   sync.WaitGroup // running workers
}

// satJob is the shared state of one Run call: its context, completion
// group, and the first error any chunk hit (which aborts the rest).
type satJob struct {
	ctx context.Context
	wg  sync.WaitGroup
	err atomic.Pointer[error]
}

func (j *satJob) fail(err error) { j.err.CompareAndSwap(nil, &err) }

// satBatch is one admission unit: a contiguous chunk of a Run call's
// query list plus the result window it fills. Chunks of one job write
// disjoint windows, so workers never synchronize on results.
type satBatch struct {
	job     *satJob
	base    int // index of qs[0] in the Run call's query list
	qs      []Query
	results []Result
}

// ServeOption configures a Saturator at construction.
type ServeOption func(*serveConfig)

type serveConfig struct {
	workers int
	batch   int
	err     error
}

// WithWorkers sets the worker-shard size; n <= 0 (the default) means
// GOMAXPROCS — one worker per schedulable core, the saturation point
// for the CPU-bound cascade.
func WithWorkers(n int) ServeOption {
	return func(c *serveConfig) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithAdmitBatch sets how many queries one admission-queue operation
// carries (default 32). Larger batches amortize channel synchronization
// further but coarsen load balancing between workers; the default is
// far off the contention cliff either way.
func WithAdmitBatch(n int) ServeOption {
	return func(c *serveConfig) {
		if n < 1 {
			if c.err == nil {
				c.err = fmt.Errorf("search: admission batch %d < 1", n)
			}
			return
		}
		c.batch = n
	}
}

// Saturate starts the Engine's saturation serving mode and returns its
// handle. The worker goroutines live until Close; each owns a scratch
// pre-sized like the Engine's pooled ones (WithSnapshot/WithScratchHint
// pre-sizing applies). The Engine remains fully usable alongside — Do,
// Stream and Batch traffic may interleave with saturation traffic on
// the same shared snapshot.
func (e *Engine) Saturate(opts ...ServeOption) (*Saturator, error) {
	cfg := serveConfig{workers: runtime.GOMAXPROCS(0), batch: 32}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	s := &Saturator{
		e:       e,
		workers: cfg.workers,
		batch:   cfg.batch,
		// A small buffer keeps admission ahead of the shard without
		// letting an abandoned Run queue unbounded work.
		queue: make(chan satBatch, 2*cfg.workers),
	}
	s.done.Add(cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Workers returns the shard size the Saturator runs with.
func (s *Saturator) Workers() int { return s.workers }

// worker is one shard member: it owns its scratch for its whole life.
func (s *Saturator) worker() {
	defer s.done.Done()
	scratch := core.NewScratch(s.e.hint)
	for b := range s.queue {
		job := b.job
		for i := range b.qs {
			if job.err.Load() != nil {
				break // a sibling chunk failed; the job is aborted
			}
			q := &b.qs[i]
			r, err := s.e.runWith(job.ctx, q, s.e.querySeed(q), scratch, nil)
			if err != nil {
				job.fail(fmt.Errorf("search: saturate query %d: %w", b.base+i, err))
				break
			}
			b.results[i] = r
		}
		job.wg.Done()
	}
}

// Run drives qs through the worker shard and returns one Result per
// query, in input order, byte-identical to a sequential replay of the
// same queries through Do. The first query error aborts the call (a
// canceled context returns ctx.Err()); after Close it returns
// ErrSaturatorClosed.
func (s *Saturator) Run(ctx context.Context, qs []Query) ([]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	results := make([]Result, len(qs))
	job := &satJob{ctx: ctx}
	chunks := (len(qs) + s.batch - 1) / s.batch
	job.wg.Add(chunks)

	// The read lock spans every send: Close's write lock therefore
	// cannot close the channel while a send is in flight.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrSaturatorClosed
	}
	for lo := 0; lo < len(qs); lo += s.batch {
		hi := lo + s.batch
		if hi > len(qs) {
			hi = len(qs)
		}
		s.queue <- satBatch{job: job, base: lo, qs: qs[lo:hi], results: results[lo:hi]}
	}
	s.mu.RUnlock()

	job.wg.Wait()
	if p := job.err.Load(); p != nil {
		return nil, *p
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Close stops the shard and waits for its workers to exit. In-flight
// Run calls complete; later ones return ErrSaturatorClosed. Close is
// idempotent.
func (s *Saturator) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.done.Wait()
}
