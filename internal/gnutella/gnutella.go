// Package gnutella implements the paper's Section 4 case study: an
// adaptive content-sharing network. It binds the framework of
// internal/core to the shared session driver with the exact parameters
// of Section 4.1/4.2 and provides both protocol variants of the
// evaluation:
//
//   - Static: plain Gnutella — random neighbors chosen at login, only
//     replaced (randomly) when a neighbor logs off;
//   - Dynamic: Algo 5 — combined search/exploration, benefit B/R per
//     obtained result, reconfiguration every θ requests and on neighbor
//     log-off, invitations always accepted, evictions reset the
//     victim's statistics about the evictor.
//
// The timeline (churn, Poisson query arrivals, search dispatch, trace
// plumbing) lives in internal/driver; this package keeps only the
// domain: the music workload, the B/R benefit bookkeeping, and the
// login/logoff/reconfiguration reactions.
package gnutella

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/search"
)

// Mode selects the protocol variant.
type Mode uint8

const (
	// Static is the paper's baseline Gnutella configuration.
	Static Mode = iota
	// Dynamic is the paper's adaptive variant (Algo 5).
	Dynamic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Static:
		return "Gnutella"
	case Dynamic:
		return "Dynamic_Gnutella"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Mode selects static baseline or dynamic reconfiguration.
	Mode Mode
	// Music, Churn and Query describe the synthetic workload.
	Music workload.MusicConfig
	Churn workload.ChurnConfig
	Query workload.QueryConfig
	// Neighbors is the symmetric neighbor capacity ("the maximum number
	// of neighbors was set to 4").
	Neighbors int
	// TTL is the search terminating condition in hops (2 and 4 in
	// Figures 1-2; 1-4 in Figure 3(a)).
	TTL int
	// ReconfigThreshold is θ: reconfigure after this many satisfied
	// requests ("the reconfiguration threshold was set to 2 requests").
	ReconfigThreshold int
	// MaxSwaps bounds neighbors exchanged per reconfiguration ("only
	// one neighbor is exchanged during each reconfiguration").
	MaxSwaps int
	// Variant bundles the ablation knobs (update regime, benefit,
	// forward policy, iterative deepening); the zero value is the
	// paper's case study.
	Variant Variant
	// ForwardWhenHit makes serving nodes keep propagating the query.
	// Plain Gnutella (the static baseline) floods to the TTL regardless
	// of hits; the paper's dynamic variant stops at serving nodes "in
	// order to limit the number of messages" (Section 4.1).
	ForwardWhenHit bool
	// DurationHours is the simulated period (the paper runs 4 days).
	DurationHours int
	// DriftAtHour, when positive, changes the music preferences of
	// DriftFraction of the users at that simulated hour — the "changes
	// in access patterns" the framework claims to follow. Libraries
	// stay fixed (users keep their songs); only future queries shift.
	DriftAtHour int
	// DriftFraction is the share of users whose preferences drift.
	DriftFraction float64
	// LedgerDecayPerHour, in (0, 1], multiplies every statistics ledger
	// hourly, aging out stale observations so reconfiguration tracks
	// drift faster. 0 disables decay (the paper's setting: preferences
	// "remain rather static").
	LedgerDecayPerHour float64
	// Seed determines the entire run.
	Seed uint64
	// Trace, when non-nil, receives protocol-level events (queries,
	// hits, reconfigurations, churn) for debugging and analysis.
	Trace trace.Sink
}

// DefaultConfig returns the paper's settings for the given mode and
// TTL.
func DefaultConfig(mode Mode, ttl int) Config {
	return Config{
		Mode:              mode,
		Music:             workload.DefaultMusicConfig(),
		Churn:             workload.DefaultChurnConfig(),
		Query:             workload.DefaultQueryConfig(),
		Neighbors:         4,
		TTL:               ttl,
		ReconfigThreshold: 2,
		MaxSwaps:          1,
		ForwardWhenHit:    mode == Static,
		DurationHours:     96,
		Seed:              1,
	}
}

// CIConfig returns a reduced-scale configuration with the same shape,
// for tests and benchmarks (200 users, 1 simulated day).
func CIConfig(mode Mode, ttl int) Config {
	c := DefaultConfig(mode, ttl)
	c.Music = c.Music.Scaled(10)
	c.DurationHours = 24
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Music.Validate(); err != nil {
		return err
	}
	if err := c.Churn.Validate(); err != nil {
		return err
	}
	if err := c.Query.Validate(); err != nil {
		return err
	}
	switch {
	case c.Neighbors <= 0:
		return fmt.Errorf("gnutella: non-positive neighbor capacity %d", c.Neighbors)
	case c.TTL < 1:
		return fmt.Errorf("gnutella: TTL %d < 1", c.TTL)
	case c.Mode == Dynamic && c.ReconfigThreshold < 1:
		return fmt.Errorf("gnutella: reconfiguration threshold %d < 1", c.ReconfigThreshold)
	case c.DurationHours < 1:
		return fmt.Errorf("gnutella: duration %d hours", c.DurationHours)
	case c.DriftFraction < 0 || c.DriftFraction > 1:
		return fmt.Errorf("gnutella: drift fraction %v outside [0,1]", c.DriftFraction)
	case c.LedgerDecayPerHour < 0 || c.LedgerDecayPerHour > 1:
		return fmt.Errorf("gnutella: ledger decay %v outside [0,1]", c.LedgerDecayPerHour)
	}
	return nil
}

// Metrics aggregates everything the paper's figures need from one run.
type Metrics struct {
	// Hits counts satisfied queries per hour (Figures 1(a), 2(a)).
	Hits *metrics.Series
	// Queries counts issued queries per hour.
	Queries *metrics.Series
	// Meter counts messages per hour by kind (Figures 1(b), 2(b) plot
	// the MsgQuery series).
	Meter *netsim.Meter
	// FirstResultDelay aggregates the delay until the first result over
	// satisfied queries (Figure 3(a)).
	FirstResultDelay metrics.Welford
	// TotalResults counts every obtained result (Figure 3(a)
	// annotations).
	TotalResults uint64
	// Reconfigurations counts reconfiguration events that changed the
	// neighborhood.
	Reconfigurations uint64
	// LoginCount and LogoffCount track churn volume.
	LoginCount, LogoffCount uint64
}

// Sim is one bound simulation run: the shared session driver plus the
// music-sharing domain state.
type Sim struct {
	cfg     Config
	sess    *driver.Session
	catalog *workload.Catalog
	users   []*workload.User
	ledgers []*stats.Ledger
	// reqCount is the per-node issued-request counter driving θ.
	reqCount []int
	updater  *core.SymmetricUpdater
	trials   *core.TrialTracker
	// indexRadius is the configured local-index radius (0 without
	// indices); searches run with TTL shortened by it.
	indexRadius int
	met         *Metrics
}

// New builds a simulation (generating the dataset) without running it.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(cfg.Seed)
	catalog := workload.NewCatalog(cfg.Music)
	users := workload.GenerateUsers(catalog, root.Split())

	// The asymmetric-update ablation needs a pure asymmetric network
	// (unbounded incoming lists); the paper's case study is symmetric.
	relation := topology.Symmetric
	if cfg.Variant.Update == AsymmetricUpdate {
		relation = topology.PureAsymmetric
	}
	s := &Sim{
		cfg:      cfg,
		catalog:  catalog,
		users:    users,
		ledgers:  make([]*stats.Ledger, cfg.Music.Users),
		reqCount: make([]int, cfg.Music.Users),
		met: &Metrics{
			Hits:    metrics.NewSeries(3600),
			Queries: metrics.NewSeries(3600),
			Meter:   netsim.NewMeter(3600),
		},
	}
	for i := range s.ledgers {
		s.ledgers[i] = stats.NewLedger()
	}
	s.updater = &core.SymmetricUpdater{
		Benefit:  stats.Cumulative{},
		Capacity: cfg.Neighbors,
		Invite:   core.AlwaysAccept,
		MaxSwaps: cfg.MaxSwaps,
	}
	churn := cfg.Churn
	sess, err := driver.New(driver.Spec{
		Nodes:    cfg.Music.Users,
		Relation: relation,
		OutCap:   cfg.Neighbors,
		InCap:    cfg.Neighbors,
		Duration: float64(cfg.DurationHours) * 3600,
		Arrivals: driver.Poisson{RatePerHour: cfg.Query.RatePerHour},
		Churn:    &churn,
		Content:  core.ContentFunc(s.hasContent),
		Classes:  func(id topology.NodeID) netsim.BandwidthClass { return s.users[id].Class },
		Search:   s.searchOptions,
		OnQuery:  s.issueQuery,
		OnLogin:  s.login,
		OnLogoff: s.logoff,
		Before:   s.scheduleDomainProcesses,
		Trace:    cfg.Trace,
	}, root)
	if err != nil {
		panic(err)
	}
	s.sess = sess
	return s
}

// searchOptions assembles the facade: the base options encode the
// paper's case-study parameters, the variant contributes the ablation
// knobs (forward policy, deepening, local indices). The driver already
// installed the delay model and the scratch hint.
func (s *Sim) searchOptions(sess *driver.Session) []search.Option {
	opts := []search.Option{
		search.WithForwardWhenHit(s.cfg.ForwardWhenHit),
		search.WithOnMessage(func(_, _ topology.NodeID) {
			s.met.Meter.Count(netsim.MsgQuery, sess.Now(), 1)
		}),
	}
	opts = append(opts, s.variantOptions(sess)...)
	// Local indices answer for peers within the radius, so the flood
	// runs that much shorter with unchanged coverage.
	ttl := s.cfg.TTL - s.indexRadius
	if ttl < 0 {
		ttl = 0
	}
	return append(opts, search.WithTTL(ttl))
}

func (s *Sim) hasContent(id topology.NodeID, key core.Key) bool {
	return s.users[id].Has(key)
}

// Engine exposes the underlying simulator (tests drive partial runs).
func (s *Sim) Engine() *sim.Engine { return s.sess.Engine() }

// Network exposes the neighbor graph.
func (s *Sim) Network() *topology.Network { return s.sess.Network() }

// Metrics returns the collected measurements.
func (s *Sim) Metrics() *Metrics { return s.met }

// OnlineCount returns the number of currently on-line users.
func (s *Sim) OnlineCount() int { return s.sess.OnlineCount() }

// IsOnline reports whether a node is currently on-line.
func (s *Sim) IsOnline(id topology.NodeID) bool { return s.sess.IsOnline(id) }

// Run executes the full configured duration and returns the metrics.
func (s *Sim) Run() *Metrics {
	s.sess.Run()
	s.met.LoginCount = s.sess.Logins()
	s.met.LogoffCount = s.sess.Logoffs()
	return s.met
}

// scheduleDomainProcesses schedules the domain-side timeline (the
// driver owns churn and arrivals): preference drift, trial expiry,
// ledger decay.
func (s *Sim) scheduleDomainProcesses() {
	en := s.sess.Engine()
	if s.cfg.DriftAtHour > 0 {
		en.At(float64(s.cfg.DriftAtHour)*3600, func(*sim.Engine) { s.drift() })
	}
	if s.trials != nil {
		en.Ticker(3600, 3600, func(en *sim.Engine) {
			s.trials.Expire((*updateEnv)(s), en.Now())
		})
	}
	if f := s.cfg.LedgerDecayPerHour; f > 0 && f < 1 {
		en.Ticker(3600, 3600, func(*sim.Engine) {
			for _, led := range s.ledgers {
				led.Decay(f)
			}
		})
	}
}

// login wires a fresh node into the network with random neighbors —
// the Gnutella bootstrap used by both variants ("both the initial
// configuration and the changes are purely random").
func (s *Sim) login(id topology.NodeID) {
	candidates := s.onlineCandidates(id)
	topology.RandomAttach(s.sess.Network(), id, candidates, s.cfg.Neighbors, s.sess.TopoStream().Intn)
}

// logoff removes the node from the network; its ex-neighbors react per
// the mode ("neighbor log-offs trigger the update process").
func (s *Sim) logoff(id topology.NodeID, _ float64) {
	net := s.sess.Network()
	neighbors := net.Node(id).Out.Snapshot()
	net.Isolate(id)
	s.reqCount[id] = 0
	if s.trials != nil {
		s.trials.Drop(id)
	}
	for _, n := range neighbors {
		if !s.sess.IsOnline(n) {
			continue
		}
		if s.cfg.Mode == Dynamic {
			s.applyUpdate(n)
		}
		// Both variants fall back to the bootstrap server for fresh
		// random neighbors when slots stay open: pure Gnutella refills
		// randomly; the dynamic variant only tops up what benefit-based
		// invitations could not fill, keeping the network connected
		// while statistics are still sparse.
		if deficit := s.cfg.Neighbors - net.Node(n).Out.Len(); deficit > 0 {
			topology.RandomAttach(net, n, s.onlineCandidates(n), deficit, s.sess.TopoStream().Intn)
		}
	}
}

// onlineCandidates lists all on-line nodes except self.
func (s *Sim) onlineCandidates(self topology.NodeID) []topology.NodeID {
	n := s.cfg.Music.Users
	out := make([]topology.NodeID, 0, n/2)
	for i := 0; i < n; i++ {
		if id := topology.NodeID(i); id != self && s.sess.IsOnline(id) {
			out = append(out, id)
		}
	}
	return out
}

// issueQuery runs Send_Query for one end-user request.
func (s *Sim) issueQuery(id topology.NodeID, now float64) {
	song := workload.SampleQuery(s.catalog, s.sess.QueryStream(id), s.users[id])
	s.met.Queries.Incr(now)
	outcome := s.sess.Do(search.Query{
		ID:     s.sess.NextQueryID(),
		Key:    song,
		Origin: id,
	})
	s.sess.Emit(trace.Event{Kind: trace.KindQuery, Node: id, Key: uint64(song), N: int(outcome.Messages)})
	if outcome.Found() {
		s.met.Hits.Incr(now)
		s.sess.Emit(trace.Event{Kind: trace.KindHit, Node: id, Key: uint64(song),
			Peer: outcome.Hits[0].Holder, N: len(outcome.Hits)})
		s.met.TotalResults += uint64(len(outcome.Hits))
		s.met.FirstResultDelay.Observe(outcome.FirstResultDelay)

		// Send_Query: "update the statistics of each node in nlist".
		// Each result accounts for a benefit of B/R (B = bandwidth
		// weight of the answering link, R = total number of results of
		// this query).
		led := s.ledgers[id]
		r := float64(len(outcome.Hits))
		for _, res := range outcome.Hits {
			rec := led.Touch(res.Holder)
			rec.Hits++
			rec.Results++
			rec.Replies++
			rec.LatencySum += res.Delay
			rec.LastSeen = now
			rec.Benefit += s.users[res.Holder].Class.Weight() / r
		}
	}

	// The reconfiguration counter ticks on every issued request ("the
	// reconfiguration threshold was set to 2 requests"), not only on
	// satisfied ones; reconfiguring with unchanged statistics is a
	// cheap no-op.
	if s.cfg.Mode == Dynamic {
		s.reqCount[id]++
		if s.reqCount[id] >= s.cfg.ReconfigThreshold {
			s.applyUpdate(id)
		}
	}
}

// updateEnv adapts Sim to core.SymmetricEnv.
type updateEnv Sim

// Net implements core.SymmetricEnv.
func (e *updateEnv) Net() *topology.Network { return e.sess.Network() }

// Ledger implements core.SymmetricEnv.
func (e *updateEnv) Ledger(id topology.NodeID) *stats.Ledger { return e.ledgers[id] }

// Online implements core.SymmetricEnv.
func (e *updateEnv) Online(id topology.NodeID) bool { return e.sess.IsOnline(id) }

// Control implements core.SymmetricEnv.
func (e *updateEnv) Control(kind netsim.MessageKind, from, to topology.NodeID) {
	e.met.Meter.Count(kind, e.sess.Now(), 1)
	switch kind {
	case netsim.MsgInvite:
		e.sess.Emit(trace.Event{Kind: trace.KindInvite, Node: from, Peer: to})
	case netsim.MsgEvict:
		e.sess.Emit(trace.Event{Kind: trace.KindEvict, Node: from, Peer: to})
	}
}

// ResetCounter implements core.SymmetricEnv.
func (e *updateEnv) ResetCounter(id topology.NodeID) { e.reqCount[id] = 0 }

// drift re-rolls the preference profile of DriftFraction of the users:
// a fresh favorite category and fresh secondary categories, sampled
// from the same distributions as at generation time. Future queries
// follow the new profile immediately.
func (s *Sim) drift() {
	for i, u := range s.users {
		st := s.sess.QueryStream(topology.NodeID(i))
		if !st.Bernoulli(s.cfg.DriftFraction) {
			continue
		}
		u.Favorite = s.catalog.SampleFavoriteCategory(st)
		others := make([]int, 0, len(u.Others))
		seen := map[int]bool{u.Favorite: true}
		for len(others) < cap(others) {
			c := st.Intn(s.cfg.Music.Categories)
			if !seen[c] {
				seen[c] = true
				others = append(others, c)
			}
		}
		u.Others = others
	}
}
